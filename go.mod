module ldcflood

go 1.22

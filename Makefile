# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short test-race bench bench-engine docscheck figures figures-quick examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l . | tee /dev/stderr | wc -l | grep -q '^0$$'

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass over the whole module (mirrors the CI "Race" step);
# the batch runner and every refactored fan-out must stay clean under it.
test-race:
	$(GO) test -race -short ./...

bench: bench-engine
	$(GO) test -bench=. -benchmem ./...

# Refresh the committed engine-throughput baseline (slow vs compact path
# on the BenchmarkEngine grid); fails if the two paths ever diverge.
bench-engine:
	$(GO) run ./cmd/engbench -o BENCH_engine.json

# Documentation lints (mirrored in CI): godoc coverage + markdown links.
docscheck:
	$(GO) run ./cmd/doccheck internal cmd
	$(GO) run ./cmd/linkcheck README.md CHANGELOG.md CONTRIBUTING.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md

# Regenerate every paper table/figure at full scale (M=100).
figures:
	$(GO) run ./cmd/figures -fig all

figures-quick:
	$(GO) run ./cmd/figures -fig all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/theory
	$(GO) run ./examples/dutycycle
	$(GO) run ./examples/protocols
	$(GO) run ./examples/crosslayer

clean:
	$(GO) clean ./...

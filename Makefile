# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short test-race bench bench-engine bench-scale bench-guard docscheck figures figures-quick faults floodd-smoke floodd-chaos trace-smoke protocol-smoke fuzz-faults fuzz-shard fuzz-trace examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l . | tee /dev/stderr | wc -l | grep -q '^0$$'

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass over the whole module (mirrors the CI "Race" step);
# the batch runner and every refactored fan-out must stay clean under it.
test-race:
	$(GO) test -race -short ./...

bench: bench-engine
	$(GO) test -bench=. -benchmem ./...

# Refresh the committed engine-throughput baseline (slow vs compact path
# on the BenchmarkEngine grid); fails if the two paths ever diverge.
bench-engine:
	$(GO) run ./cmd/engbench -o BENCH_engine.json

# Refresh the committed large-topology baseline (10k/100k-node GreenOrbs
# scaling grid, serial vs sharded engine, 3 reps per cell).
bench-scale:
	$(GO) run ./cmd/engbench -scale -o BENCH_scale.json

# Assert the clean (no-fault) engine has not regressed against the
# committed baselines: slot horizons exactly, wall clock within 50%, and
# the modeled parallel speedup at or above each case's committed
# workers_speedup_floor.
bench-guard:
	$(GO) run ./cmd/engbench -against BENCH_engine.json -tolerance 0.5 -o ""
	$(GO) run ./cmd/engbench -scale -against BENCH_scale.json -tolerance 0.5 -o ""

# Documentation lints (mirrored in CI): godoc coverage + markdown links.
docscheck:
	$(GO) run ./cmd/doccheck internal cmd
	$(GO) run ./cmd/linkcheck README.md CHANGELOG.md CONTRIBUTING.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md

# Regenerate every paper table/figure at full scale (M=100).
figures:
	$(GO) run ./cmd/figures -fig all

figures-quick:
	$(GO) run ./cmd/figures -fig all -quick

# The fault-injection resilience experiment (docs/FAULTS.md).
faults:
	$(GO) run ./cmd/figures -fig faults -quick

# Black-box smoke of the job daemon (docs/SERVICE.md): boot floodd on an
# ephemeral port, submit a tiny sweep with curl, assert the result CSV
# and the telemetry mount, drain on SIGTERM, then kill -9 a daemon
# mid-job and assert the restart resumes it. Mirrored in CI.
floodd-smoke:
	sh scripts/floodd-smoke.sh

# Chaos-kill certification for distributed sweeps: SIGKILL three workers
# and the daemon mid-sweep, run a deliberate zombie worker, and require
# the final CSV to be byte-identical to an uninterrupted reference run.
# CI runs the same script with CHAOS_SHORT=1 on a smaller grid.
floodd-chaos:
	sh scripts/floodd-chaos.sh

# End-to-end exercise of the trace pipeline (docs/TRACE.md): emit both
# encodings, certify lossless text <-> binary round trips byte-for-byte,
# validate physical consistency, tolerate a torn tail, and check per-cell
# sweep traces. Mirrored in CI.
trace-smoke:
	sh scripts/trace-smoke.sh

# Timer-protocol certification through the CLI: a small trickle+dflood
# sweep built with -race, byte-identical CSVs at shard workers 1 vs 4,
# and a deterministic serial rerun. Mirrored in CI.
protocol-smoke:
	sh scripts/protocol-smoke.sh

# Randomized fault schedules vs engine invariants and compact-path
# equivalence; CI runs a 10s smoke of this.
fuzz-faults:
	$(GO) test -fuzz FuzzFaultSchedule -fuzztime 30s ./internal/flood

# Randomized chunk sizes / worker counts / fault schedules vs the sharded
# merge path's byte-identity contracts; CI runs a 10s smoke of this.
fuzz-shard:
	$(GO) test -fuzz FuzzShardMerge -fuzztime 30s ./internal/sim

# Random bytes vs the binary trace reader's crash-safety taxonomy (clean /
# torn / corrupt, never a panic); CI runs a 10s smoke of this.
fuzz-trace:
	$(GO) test -fuzz FuzzReader -fuzztime 30s ./internal/tracebin

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/theory
	$(GO) run ./examples/dutycycle
	$(GO) run ./examples/protocols
	$(GO) run ./examples/crosslayer

clean:
	$(GO) clean ./...

#!/bin/sh
# protocol-smoke: CI certification for the timer-driven protocols
# (trickle, dflood). Builds cmd/sweep under the race detector, runs a
# small trickle+dflood grid with shard workers 1 and 4, and requires the
# two CSVs to be byte-identical — the sharded engine's worker-count
# invariance, end to end through the CLI. The serial engine (-workers 0)
# is a different engine family with its own RNG discipline, so it is not
# compared against the sharded runs; instead it is run twice and required
# to be deterministic. Run via `make protocol-smoke`; CI runs the same
# script.
set -eu

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -race -o "$workdir/sweep" ./cmd/sweep

grid="-protocols trickle,dflood -duties 0.05,0.10 -seeds 2 -m 5"

"$workdir/sweep" $grid -workers 1 -out "$workdir/w1.csv"
"$workdir/sweep" $grid -workers 4 -out "$workdir/w4.csv"
if ! cmp -s "$workdir/w1.csv" "$workdir/w4.csv"; then
  echo "sharded sweep CSVs differ between -workers 1 and -workers 4:" >&2
  diff "$workdir/w1.csv" "$workdir/w4.csv" >&2 || true
  exit 1
fi

"$workdir/sweep" $grid -workers 0 -out "$workdir/s1.csv"
"$workdir/sweep" $grid -workers 0 -out "$workdir/s2.csv"
if ! cmp -s "$workdir/s1.csv" "$workdir/s2.csv"; then
  echo "serial sweep CSV is not deterministic across reruns" >&2
  exit 1
fi

# The grid must actually have exercised both protocols.
for proto in trickle dflood; do
  if ! grep -qi "^$proto," "$workdir/w1.csv"; then
    echo "protocol $proto missing from the sweep CSV" >&2
    exit 1
  fi
done

echo "protocol-smoke: OK (trickle+dflood grid; workers 1 == workers 4, serial deterministic)"

#!/bin/sh
# floodd-chaos: chaos-kill certification for distributed sweeps
# (docs/SERVICE.md "Distributed sweeps"). Builds floodd + floodworker +
# sweep, computes a reference CSV with the flag front-end, then runs the
# same grid as a distributed job while the harness:
#
#   - SIGKILLs three workers at random points mid-sweep,
#   - runs one deliberate zombie worker (-complete-delay > lease TTL) and
#     asserts its double-completions are observed via telemetry and
#     provably dropped (lease.zombie.completions, lease.cells.duplicate),
#   - SIGKILLs the daemon itself mid-sweep and restarts it over the same
#     job directory, asserting the job is requeued and resumed,
#
# and finally requires the job's result CSV to be byte-identical to the
# uninterrupted single-process reference. CHAOS_SHORT=1 shrinks the grid
# for CI. Run via `make floodd-chaos`.
set -eu

short=${CHAOS_SHORT:-0}

workdir=$(mktemp -d)
pids=""
cleanup() {
  for p in $pids; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/floodd" ./cmd/floodd
go build -o "$workdir/floodworker" ./cmd/floodworker
go build -o "$workdir/sweep" ./cmd/sweep

if [ "$short" = "1" ]; then
  protocols="opt,dbao,of" duties="0.02,0.05" seeds=4 m=20
else
  protocols="opt,dbao,of" duties="0.02,0.05,0.1" seeds=4 m=50
fi
ttl=2s

# JSON forms of the grid axes for the job submission.
jproto="\"$(printf '%s' "$protocols" | sed 's/,/","/g')\""
jduties=$duties

echo "floodd-chaos: reference sweep ($protocols x $duties x $seeds seeds, m=$m)"
"$workdir/sweep" -protocols "$protocols" -duties "$duties" -seeds "$seeds" \
  -m "$m" -coverage 0.99 -toposeed 1 -out "$workdir/ref.csv"

# scrape_url FILE: wait for a daemon to announce its listen URL on stderr.
scrape_url() {
  url=""
  for _ in $(seq 1 100); do
    url=$(sed -n 's/^floodd: serving on //p' "$1" | head -1)
    [ -n "$url" ] && return 0
    sleep 0.1
  done
  echo "floodd never announced its listen URL" >&2
  cat "$1" >&2
  return 1
}

# counter NAME: print the integer value of a /debug/vars entry (0 if absent).
counter() {
  v=$(curl -fsS "$url/debug/vars" | sed -n "s/^ *\"$1\": \([0-9][0-9]*\).*/\1/p" | head -1)
  echo "${v:-0}"
}

# wait_counter NAME MIN TRIES: poll until counter NAME reaches MIN.
wait_counter() {
  for _ in $(seq 1 "$3"); do
    [ "$(counter "$1")" -ge "$2" ] && return 0
    sleep 0.1
  done
  echo "counter $1 never reached $2 (last: $(counter "$1"))" >&2
  return 1
}

job_state() {
  curl -fsS "$url/v1/jobs/$id" | sed -n 's/.*"state"[": ]*\([a-z]*\)".*/\1/p'
}

# --- Phase 1: distributed daemon + worker fleet under fire. -----------------

"$workdir/floodd" -addr 127.0.0.1:0 -dir "$workdir/jobs" \
  -distributed -chunk 1 -lease-ttl "$ttl" -lease-attempts 10 \
  -local-grace 120s 2> "$workdir/floodd1.err" &
dpid=$!
pids="$pids $dpid"
scrape_url "$workdir/floodd1.err"
echo "floodd-chaos: daemon 1 at $url"

id=$(curl -fsS -X POST "$url/v1/jobs" \
  -d "{\"protocols\":[$jproto],\"duties\":[$jduties],\"seeds\":$seeds,\"m\":$m,\"coverage\":0.99,\"toposeed\":1}" |
  sed -n 's/.*"id"[": ]*\([0-9]*\)".*/\1/p')
[ -n "$id" ] || { echo "submit did not return a job id" >&2; exit 1; }
echo "floodd-chaos: submitted job $id"

# Three paced workers plus one zombie: -complete-delay 800ms keeps the
# sweep slow enough to kill things mid-flight while staying under the 2s
# TTL; the zombie's 4.5s delay overruns it, so every chunk the zombie
# reports has already expired and been reassigned.
"$workdir/floodworker" -server "$url" -name w1 -poll 200ms \
  -complete-delay 800ms 2> "$workdir/w1.err" &
w1pid=$!
"$workdir/floodworker" -server "$url" -name w2 -poll 200ms \
  -complete-delay 800ms 2> "$workdir/w2.err" &
w2pid=$!
"$workdir/floodworker" -server "$url" -name w3 -poll 200ms \
  -complete-delay 800ms 2> "$workdir/w3.err" &
w3pid=$!
"$workdir/floodworker" -server "$url" -name zombie -poll 200ms \
  -complete-delay 4.5s 2> "$workdir/zombie.err" &
zpid=$!
pids="$pids $w1pid $w2pid $w3pid $zpid"

# Kill worker 1 once the fleet has made some progress.
wait_counter "job.$id.lease.chunks.done" 1 300
kill -9 "$w1pid"
echo "floodd-chaos: SIGKILLed worker 1"

# Wait for the zombie certification: a double-completion observed via
# telemetry AND its cells provably dropped as duplicates.
wait_counter "job.$id.lease.zombie.completions" 1 600
wait_counter "job.$id.lease.cells.duplicate" 1 600
zombies=$(counter "job.$id.lease.zombie.completions")
dups=$(counter "job.$id.lease.cells.duplicate")
expired=$(counter "job.$id.lease.expired")
requeues=$(counter "job.$id.lease.requeues")
echo "floodd-chaos: zombie certified (zombie.completions=$zombies cells.duplicate=$dups expired=$expired requeues=$requeues)"
[ "$expired" -ge 1 ] || { echo "no lease ever expired" >&2; exit 1; }
[ "$requeues" -ge 1 ] || { echo "no chunk was ever requeued" >&2; exit 1; }

# SIGKILL the rest of the fleet: zombie plus workers 2 and 3.
for p in $zpid $w2pid $w3pid; do
  kill -9 "$p" 2>/dev/null || true
done
echo "floodd-chaos: SIGKILLed workers 2, 3 and the zombie"

# With every worker dead and a 120s local grace, the job cannot finish:
# the daemon dies mid-sweep by construction.
state=$(job_state)
if [ "$state" != "running" ]; then
  echo "job $id is $state before the daemon kill; expected running" >&2
  exit 1
fi
kill -9 "$dpid"
echo "floodd-chaos: SIGKILLed daemon 1 mid-sweep"

# --- Phase 2: restart over the same directory and finish. -------------------

"$workdir/floodd" -addr 127.0.0.1:0 -dir "$workdir/jobs" \
  -distributed -chunk 1 -lease-ttl "$ttl" -lease-attempts 10 \
  -local-grace 1s 2> "$workdir/floodd2.err" &
dpid2=$!
pids="$pids $dpid2"
scrape_url "$workdir/floodd2.err"
echo "floodd-chaos: daemon 2 at $url"
grep -q "job $id: requeued for resume" "$workdir/floodd2.err" || {
  # The scan log may land just after the listen line; give it a moment.
  sleep 1
  grep -q "job $id: requeued for resume" "$workdir/floodd2.err"
}

# A fresh worker joins the restarted sweep; the daemon's own executor
# kicks in after the 1s grace, so the job finishes either way.
"$workdir/floodworker" -server "$url" -name w4 -poll 200ms \
  -idle-exit 5s 2> "$workdir/w4.err" &
pids="$pids $!"

state=""
for _ in $(seq 1 1200); do
  state=$(job_state)
  case "$state" in
    done) break ;;
    failed|canceled)
      echo "job $id ended $state after restart" >&2
      curl -fsS "$url/v1/jobs/$id" >&2
      exit 1 ;;
  esac
  sleep 0.1
done
if [ "$state" != "done" ]; then
  echo "job $id never finished after restart (last state: $state)" >&2
  exit 1
fi

resumed=$(curl -fsS "$url/v1/jobs/$id" | sed -n 's/.*"resumed"[": ]*\([0-9]*\).*/\1/p')
[ "${resumed:-0}" -ge 1 ] || {
  echo "restarted job replayed ${resumed:-0} journaled cells; expected >= 1" >&2
  exit 1
}
echo "floodd-chaos: job resumed with $resumed journaled cells and finished"

# --- The certification: byte-identical to the uninterrupted reference. ------

curl -fsS "$url/v1/jobs/$id/result" -o "$workdir/result.csv"
if ! cmp -s "$workdir/ref.csv" "$workdir/result.csv"; then
  echo "chaos-run CSV differs from the uninterrupted reference:" >&2
  diff "$workdir/ref.csv" "$workdir/result.csv" >&2 || true
  exit 1
fi

kill -TERM "$dpid2" 2>/dev/null || true
echo "floodd-chaos: ok (result byte-identical to reference)"

#!/bin/sh
# trace-smoke: end-to-end exercise of the trace pipeline documented in
# docs/TRACE.md. Runs one flood twice — once per trace encoding — then
# certifies with tracecat that the two encodings are losslessly
# interchangeable (text -> bin -> text and bin -> text -> bin are both
# byte-identical), that the binary file is smaller, that both decode to a
# consistent event stream (-validate), and that a sweep writes per-cell
# traces in both formats. Run via `make trace-smoke`; CI runs the same
# script.
set -eu

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/floodsim" ./cmd/floodsim
go build -o "$workdir/tracecat" ./cmd/tracecat
go build -o "$workdir/sweep" ./cmd/sweep

run="-m 20 -seed 7 -coverage 0.99"

# One run per encoding. The runs are deterministic, so the two files
# describe the identical event stream.
"$workdir/floodsim" $run -trace "$workdir/flood.trace" > /dev/null
"$workdir/floodsim" $run -trace "$workdir/flood.tracebin" -trace-format bin > /dev/null

text_size=$(wc -c < "$workdir/flood.trace")
bin_size=$(wc -c < "$workdir/flood.tracebin")
if [ "$bin_size" -ge "$text_size" ]; then
  echo "binary trace ($bin_size bytes) is not smaller than text ($text_size bytes)" >&2
  exit 1
fi
echo "trace-smoke: text $text_size bytes, binary $bin_size bytes"

# Lossless both ways: converting each file into the other encoding must
# reproduce the directly-emitted bytes exactly.
"$workdir/tracecat" -to bin -o "$workdir/packed.tracebin" "$workdir/flood.trace"
cmp "$workdir/packed.tracebin" "$workdir/flood.tracebin"
"$workdir/tracecat" -to text -o "$workdir/unpacked.trace" "$workdir/flood.tracebin"
cmp "$workdir/unpacked.trace" "$workdir/flood.trace"
echo "trace-smoke: text <-> binary round trips are byte-identical"

# Both encodings must pass the physical-consistency replay.
"$workdir/tracecat" -validate "$workdir/flood.trace" > /dev/null
"$workdir/tracecat" -validate "$workdir/flood.tracebin" > /dev/null

# The summaries must agree (same events, different bytes).
"$workdir/tracecat" -summary "$workdir/flood.trace" > "$workdir/sum.text"
"$workdir/tracecat" -summary "$workdir/flood.tracebin" > "$workdir/sum.bin"
cmp "$workdir/sum.text" "$workdir/sum.bin"
echo "trace-smoke: summaries agree across encodings"

# A torn binary tail (writer killed mid-record) must still decode up to
# the tear, with a warning rather than an error.
head -c $((bin_size - 1)) "$workdir/flood.tracebin" > "$workdir/torn.tracebin"
"$workdir/tracecat" -summary "$workdir/torn.tracebin" > /dev/null 2> "$workdir/torn.err"
grep -q "torn tail" "$workdir/torn.err"
echo "trace-smoke: torn tail tolerated"

# Per-cell sweep traces in both formats.
"$workdir/sweep" -protocols opt -duties 0.05 -seeds 2 -m 5 \
  -trace-dir "$workdir/cells-bin" -trace-format bin > /dev/null
"$workdir/sweep" -protocols opt -duties 0.05 -seeds 2 -m 5 \
  -trace-dir "$workdir/cells-text" > /dev/null
[ "$(ls "$workdir/cells-bin"/*.tracebin | wc -l)" -eq 2 ]
[ "$(ls "$workdir/cells-text"/*.trace | wc -l)" -eq 2 ]
for f in "$workdir/cells-bin"/*.tracebin; do
  "$workdir/tracecat" -validate "$f" > /dev/null
done
echo "trace-smoke: sweep wrote and validated per-cell traces"

echo "trace-smoke: OK"

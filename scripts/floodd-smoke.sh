#!/bin/sh
# floodd-smoke: black-box smoke test for the job daemon. Builds floodd,
# boots it on an ephemeral port, drives the worked session from
# docs/SERVICE.md with curl (submit -> poll status -> fetch result),
# checks the telemetry mount, and SIGTERM-drains it; then kill -9s a
# daemon mid-job and asserts a restart over the same directory resumes
# and finishes it. Run via `make floodd-smoke`; CI runs the same script.
set -eu

workdir=$(mktemp -d)
trap 'kill -9 "$pid" "$pid2" 2>/dev/null || true; rm -rf "$workdir"' EXIT
pid2=""

go build -o "$workdir/floodd" ./cmd/floodd

"$workdir/floodd" -addr 127.0.0.1:0 -dir "$workdir/jobs" 2> "$workdir/floodd.err" &
pid=$!

# Scrape the announced listen URL from stderr.
url=""
for _ in $(seq 1 100); do
  url=$(sed -n 's/^floodd: serving on //p' "$workdir/floodd.err" | head -1)
  [ -n "$url" ] && break
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.1
done
if [ -z "$url" ]; then
  echo "floodd never announced its listen URL" >&2
  cat "$workdir/floodd.err" >&2
  exit 1
fi
echo "floodd-smoke: daemon at $url"

curl -fsS "$url/healthz" | grep -q ok

# Submit a tiny sweep and scrape the job id from the 201 body.
id=$(curl -fsS -X POST "$url/v1/jobs" \
  -d '{"protocols":["opt","dbao"],"duties":[0.1],"seeds":2,"m":10}' |
  sed -n 's/.*"id"[": ]*\([0-9]*\)".*/\1/p')
if [ -z "$id" ]; then
  echo "submit did not return a job id" >&2
  exit 1
fi
echo "floodd-smoke: submitted job $id"

# Poll until terminal.
state=""
for _ in $(seq 1 300); do
  state=$(curl -fsS "$url/v1/jobs/$id" | sed -n 's/.*"state"[": ]*\([a-z]*\)".*/\1/p')
  case "$state" in
    done) break ;;
    failed|canceled)
      echo "job $id ended $state" >&2
      curl -fsS "$url/v1/jobs/$id" >&2
      exit 1 ;;
  esac
  sleep 0.1
done
if [ "$state" != "done" ]; then
  echo "job $id never finished (last state: $state)" >&2
  exit 1
fi

# The artifact: CSV header plus 2 protocols x 1 duty x 2 seeds rows.
curl -fsS "$url/v1/jobs/$id/result" -o "$workdir/result.csv"
head -1 "$workdir/result.csv" | grep -q '^protocol,duty,period,seed,'
rows=$(wc -l < "$workdir/result.csv")
if [ "$rows" -ne 5 ]; then
  echo "result has $rows lines, want 5 (header + 4 cells)" >&2
  cat "$workdir/result.csv" >&2
  exit 1
fi

# Telemetry: server counters plus the job's mounted registry.
curl -fsS "$url/debug/vars" -o "$workdir/vars.json"
grep -q '"floodd.jobs.submitted": 1' "$workdir/vars.json"
grep -q "\"job.$id.runner.jobs.done\": 4" "$workdir/vars.json"
grep -q "\"job.$id.sim.tx.attempts\"" "$workdir/vars.json"

# Graceful drain on SIGTERM.
kill -TERM "$pid"
for _ in $(seq 1 100); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
  echo "floodd did not drain within 10s" >&2
  exit 1
fi
grep -q 'floodd: drained' "$workdir/floodd.err"

# Crash-resume: boot a fresh daemon on its own directory, submit a
# slower serial job, kill -9 the daemon mid-run, and require a restart
# over the same directory to requeue, resume from the journal, and
# finish with the full CSV.
"$workdir/floodd" -addr 127.0.0.1:0 -dir "$workdir/jobs2" 2> "$workdir/floodd2.err" &
pid2=$!
url2=""
for _ in $(seq 1 100); do
  url2=$(sed -n 's/^floodd: serving on //p' "$workdir/floodd2.err" | head -1)
  [ -n "$url2" ] && break
  sleep 0.1
done
[ -n "$url2" ] || { echo "second floodd never announced its listen URL" >&2; exit 1; }

id2=$(curl -fsS -X POST "$url2/v1/jobs" \
  -d '{"protocols":["opt","dbao","of"],"duties":[0.02,0.05],"seeds":3,"m":50,"parallel":1}' |
  sed -n 's/.*"id"[": ]*\([0-9]*\)".*/\1/p')
[ -n "$id2" ] || { echo "submit did not return a job id" >&2; exit 1; }

# Wait for the first journaled cell, then pull the plug.
for _ in $(seq 1 300); do
  done_cells=$(curl -fsS "$url2/debug/vars" |
    sed -n "s/^ *\"job\.$id2\.runner\.jobs\.done\": \([0-9][0-9]*\).*/\1/p" | head -1)
  [ "${done_cells:-0}" -ge 1 ] && break
  sleep 0.1
done
[ "${done_cells:-0}" -ge 1 ] || { echo "job $id2 never finished a cell" >&2; exit 1; }
kill -9 "$pid2"
echo "floodd-smoke: SIGKILLed daemon mid-job"

"$workdir/floodd" -addr 127.0.0.1:0 -dir "$workdir/jobs2" 2> "$workdir/floodd3.err" &
pid2=$!
url3=""
for _ in $(seq 1 100); do
  url3=$(sed -n 's/^floodd: serving on //p' "$workdir/floodd3.err" | head -1)
  [ -n "$url3" ] && break
  sleep 0.1
done
[ -n "$url3" ] || { echo "restarted floodd never announced its listen URL" >&2; exit 1; }

state=""
for _ in $(seq 1 600); do
  state=$(curl -fsS "$url3/v1/jobs/$id2" | sed -n 's/.*"state"[": ]*\([a-z]*\)".*/\1/p')
  case "$state" in
    done) break ;;
    failed|canceled)
      echo "resumed job $id2 ended $state" >&2
      curl -fsS "$url3/v1/jobs/$id2" >&2
      exit 1 ;;
  esac
  sleep 0.1
done
[ "$state" = "done" ] || { echo "resumed job $id2 never finished (last state: $state)" >&2; exit 1; }
grep -q "job $id2: requeued for resume" "$workdir/floodd3.err"
resumed=$(curl -fsS "$url3/v1/jobs/$id2" | sed -n 's/.*"resumed"[": ]*\([0-9]*\).*/\1/p')
[ "${resumed:-0}" -ge 1 ] || { echo "restart replayed ${resumed:-0} cells; expected >= 1" >&2; exit 1; }
curl -fsS "$url3/v1/jobs/$id2/result" -o "$workdir/result2.csv"
rows=$(wc -l < "$workdir/result2.csv")
[ "$rows" -eq 19 ] || { echo "resumed result has $rows lines, want 19" >&2; exit 1; }
echo "floodd-smoke: kill -9 resume replayed $resumed cells and finished"

kill -TERM "$pid2"

echo "floodd-smoke: ok"

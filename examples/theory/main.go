// Theory playground: exercises the analytical side of the library — the
// Galton-Watson view of single-packet flooding (Lemma 1/2), the
// multi-packet delay limits (Theorem 1/2 and their knee), Algorithm 1 on
// the compact time scale, and the k-class link-loss characteristic root.
package main

import (
	"fmt"
	"log"

	"ldcflood/internal/analysis"
	"ldcflood/internal/matrixflood"
	"ldcflood/internal/rngutil"
)

func main() {
	fmt.Println("--- Lemma 2: single-packet flooding waiting limit ---")
	for _, n := range []int{256, 1024, 4096} {
		fmt.Printf("N=%5d: FWL floor = %2d compact slots (ideal links)\n",
			n, analysis.FWLFloor(n))
	}
	gw, err := analysis.NewGaltonWatson(0.7)
	if err != nil {
		log.Fatal(err)
	}
	rng := rngutil.New(1)
	gens, ok := gw.GenerationsToReach(1025, 1000, rng)
	fmt.Printf("simulated Galton-Watson (links 70%% reliable): covered N=1024 in %d generations (ok=%v);\n", gens, ok)
	fmt.Printf("Lemma 2 predicts %d\n\n", analysis.Lemma2FWL(1024, gw.Mu()))

	fmt.Println("--- Theorem 1: the knee in the multi-packet delay limit ---")
	n, T := 1024, 5
	knee := analysis.KneePoint(n)
	for _, m := range []int{1, knee / 2, knee, knee * 2} {
		fmt.Printf("N=%d, T=%d, M=%2d: E[FDL] = %6.1f slots", n, T, m, analysis.FDLTheorem1(n, m, T))
		if m == knee {
			fmt.Printf("   <- knee at M = m = %d", knee)
		}
		fmt.Println()
	}
	b := analysis.FDLTheorem2(300, 10, 5)
	fmt.Printf("arbitrary N=300, M=10: Theorem 2 brackets E[FDL] in [%.1f, %.1f]\n\n", b.Lower, b.Upper)

	fmt.Println("--- Algorithm 1 on the compact time scale (N=64, M=10) ---")
	res, err := matrixflood.Run(matrixflood.Config{N: 64, M: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-packet waitings: %v\n", res.Waitings)
	fmt.Printf("Table I bounds:      %v\n", analysis.Waitings(64, 10))
	fmt.Printf("total %d compact slots (%d type-2 slots doubled under half-duplex: %d)\n\n",
		res.TotalSlots, res.Type2Slots, res.HalfDuplexSlots)

	fmt.Println("--- Section IV-B: link loss magnifies the duty-cycle delay ---")
	fmt.Println("duty    k=1.25   k=2.00   amplification")
	for _, duty := range []float64{0.20, 0.10, 0.05, 0.02} {
		T := int(1/duty + 0.5)
		good := analysis.PredictedDelay(298, 0.99, 1.25, T)
		bad := analysis.PredictedDelay(298, 0.99, 2.00, T)
		fmt.Printf("%4.0f%%  %7.1f  %7.1f  %.2fx\n", duty*100, good, bad, bad/good)
	}
}

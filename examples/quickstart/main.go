// Quickstart: build a low-duty-cycle sensor network, flood packets through
// it with the DBAO protocol, and print the flooding delay — the minimal
// end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"ldcflood/internal/flood"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

func main() {
	// 1. A topology: the synthetic 298-node GreenOrbs forest trace.
	g := topology.GreenOrbs(1)
	fmt.Printf("topology: %s, mean link PRR %.2f\n", g, g.MeanLinkPRR())

	// 2. Working schedules: every sensor picks one random active slot in a
	//    20-slot period — a 5% duty cycle, the paper's default.
	period := schedule.PeriodForDuty(0.05)
	scheds := schedule.AssignUniform(g.N(), period, rngutil.New(7).SubName("schedule"))

	// 3. A protocol and a run: flood 20 packets from node 0 until 99% of
	//    the sensors hold each of them.
	p, err := flood.New("dbao")
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Graph:     g,
		Schedules: scheds,
		Protocol:  p,
		M:         20,
		Coverage:  0.99,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("flooded %d packets in %d slots\n", res.M, res.TotalSlots)
	fmt.Printf("mean flooding delay: %.1f slots\n", res.MeanDelay())
	fmt.Printf("transmissions: %d, failures: %d, overheard receptions: %d\n",
		res.Transmissions, res.Failures(), res.Overheard)
	for _, p := range []int{0, 9, 19} {
		fmt.Printf("  packet %2d: injected slot %d, 99%% coverage at slot %d (delay %d)\n",
			p, res.InjectTime[p], res.CoverTime[p], res.Delay[p])
	}
}

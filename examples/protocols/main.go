// Protocol comparison: Fig. 9/10 in miniature. Floods the same packet
// stream through OPT (oracle), DBAO, OF and the naive baseline on the
// GreenOrbs trace at 5% duty cycle and prints the per-packet delay
// staircase plus the summary table — the blocking effect saturating for
// OPT/DBAO (Corollary 1) and OF trailing both is visible directly.
package main

import (
	"fmt"
	"log"

	"ldcflood/internal/asciichart"
	"ldcflood/internal/flood"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

func main() {
	g := topology.GreenOrbs(1)
	period := schedule.PeriodForDuty(0.05)
	m := 30

	chart := asciichart.Chart{
		Title:  "per-packet flooding delay (GreenOrbs, duty 5%)",
		XLabel: "packet index",
		YLabel: "delay / slots",
		Width:  68, Height: 16,
	}
	var rows [][]string
	for _, name := range flood.Names() {
		p, err := flood.New(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Graph:     g,
			Schedules: schedule.AssignUniform(g.N(), period, rngutil.New(11).SubName("schedule")),
			Protocol:  p,
			M:         m,
			Coverage:  0.99,
			Seed:      11,
		})
		if err != nil {
			log.Fatal(err)
		}
		var xs, ys []float64
		for pkt, d := range res.Delay {
			if d >= 0 {
				xs = append(xs, float64(pkt))
				ys = append(ys, float64(d))
			}
		}
		chart.MustAdd(res.Protocol, xs, ys)
		rows = append(rows, []string{
			res.Protocol,
			fmt.Sprintf("%.1f", res.MeanDelay()),
			fmt.Sprintf("%d", res.Transmissions),
			fmt.Sprintf("%d", res.Failures()),
			fmt.Sprintf("%d", res.Overheard),
		})
	}
	fmt.Println(chart.Render())
	fmt.Println(asciichart.Table(
		[]string{"protocol", "mean delay", "tx", "failures", "overheard"}, rows))
	fmt.Println("OPT bounds what any practical protocol can achieve; DBAO tracks it closely")
	fmt.Println("(the residue is hidden-terminal collisions), OF pays for tree waiting, and")
	fmt.Println("the naive baseline shows why duty-cycle-aware flooding matters.")
}

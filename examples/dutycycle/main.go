// Duty-cycle trade-off: the paper's closing message (Section V-C2) is that
// it is NOT always beneficial to set the duty cycle extremely low — the
// lifetime gained linearly is outweighed by the exponentially deteriorating
// flooding delay. This example sweeps the duty cycle on the GreenOrbs
// trace, measures flooding delay with DBAO, combines it with the energy
// model, and shows the networking gain peaking at an intermediate duty.
package main

import (
	"fmt"
	"log"

	"ldcflood/internal/flood"
	"ldcflood/internal/metrics"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

func main() {
	g := topology.GreenOrbs(1)
	em := metrics.DefaultEnergyModel()
	duties := []float64{0.50, 0.20, 0.10, 0.05, 0.02, 0.01}

	fmt.Println("duty    period  delay/slots  lifetime/days  gain (lifetime/delay)")
	bestDuty, bestGain := 0.0, 0.0
	for _, duty := range duties {
		period := schedule.PeriodForDuty(duty)
		p, err := flood.New("dbao")
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Graph:     g,
			Schedules: schedule.AssignUniform(g.N(), period, rngutil.New(3).SubName("schedule")),
			Protocol:  p,
			M:         20,
			Coverage:  0.99,
			Seed:      3,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Completed {
			log.Fatalf("duty %.0f%%: flood incomplete", duty*100)
		}
		txRate := float64(res.Transmissions) / float64(g.N()) /
			(float64(res.TotalSlots) * em.SlotSeconds)
		lifetime, delaySec, gain := em.NetworkingGain(duty, res.MeanDelay(), txRate)
		fmt.Printf("%4.0f%%   %6d  %11.1f  %13.1f  %10.0f\n",
			duty*100, period, res.MeanDelay(), lifetime/86400, gain)
		_ = delaySec
		if gain > bestGain {
			bestGain, bestDuty = gain, duty
		}
	}
	fmt.Printf("\nnetworking gain peaks at duty %.0f%% — going lower trades away more delay\n", bestDuty*100)
	fmt.Println("than the lifetime it buys (the paper's Section V-C2 conclusion).")
}

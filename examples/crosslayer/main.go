// Cross-layer design: the paper's closing future-work direction — combine
// the opportunistic forwarding technique with duty-cycle-length
// optimization. This example (1) sweeps duty cycle × protocol and charts
// the networking gain of each combination, and (2) runs the duty-cycle
// optimizer against the simulation-backed delay of the best protocol,
// reporting the jointly optimal operating point.
package main

import (
	"fmt"
	"log"

	"ldcflood/internal/experiments"
	"ldcflood/internal/optimize"
)

func main() {
	opts := experiments.QuickSimOptions()
	opts.M = 20
	opts.Duties = []float64{0.02, 0.05, 0.10, 0.20, 0.50}
	opts.Protocols = []string{"dbao", "of"}

	fd, err := experiments.CrossLayer(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fd.Render())

	// Refine the duty choice for DBAO with the optimizer driving the
	// simulator directly.
	delay := experiments.SimDelayFunc("dbao", opts)
	res, err := optimize.Maximize(optimize.Config{
		TxPerSecond: 0.05,
		MinDuty:     0.01,
		MaxDuty:     0.5,
		Samples:     8,
		Refinements: 6,
	}, delay)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizer refinement (DBAO, simulation-backed):\n")
	fmt.Printf("  best duty %.1f%% (period %d slots): delay %.0f slots, lifetime %.0f days, gain %.0f\n",
		res.Best.Duty*100, res.Best.Period, res.Best.Delay, res.Best.Lifetime/86400, res.Best.Gain)

	// And the delay-constrained view: the longest lifetime meeting a
	// 500-slot flooding-delay budget.
	p, err := optimize.MinDutyForDelayBudget(optimize.Config{
		TxPerSecond: 0.05, MinDuty: 0.01, MaxDuty: 0.5,
	}, delay, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  delay budget 500 slots -> minimum duty %.1f%% (delay %.0f slots, lifetime %.0f days)\n",
		p.Duty*100, p.Delay, p.Lifetime/86400)
}

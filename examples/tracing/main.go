// Tracing: attach a tracelog.Logger to a simulation, then mine the event
// log offline — per-node transmission load, outcome breakdown, and the
// packet timeline. This is the workflow for debugging a protocol or
// feeding the simulator's raw events into external analysis.
package main

import (
	"bytes"
	"fmt"
	"log"
	"sort"

	"ldcflood/internal/flood"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
	"ldcflood/internal/tracelog"
)

func main() {
	g := topology.GreenOrbs(1)
	p, err := flood.New("dbao")
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	logger := tracelog.NewLogger(&buf)
	res, err := sim.Run(sim.Config{
		Graph:     g,
		Schedules: schedule.AssignUniform(g.N(), 20, rngutil.New(3).SubName("schedule")),
		Protocol:  p,
		M:         10,
		Coverage:  0.99,
		Seed:      3,
		Observer:  logger,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := logger.Flush(); err != nil {
		log.Fatal(err)
	}

	events, err := tracelog.Parse(&buf)
	if err != nil {
		log.Fatal(err)
	}
	s := tracelog.Summarize(events)
	fmt.Printf("trace: %d events over slots [%d, %d] (%.1f KiB)\n",
		s.Events, s.FirstSlot, s.LastSlot, float64(buf.Len())/1024)
	fmt.Printf("transmissions: %d  outcomes:", s.Transmissions)
	for _, o := range []sim.TxOutcome{sim.TxSuccess, sim.TxLoss, sim.TxCollision, sim.TxBusy} {
		fmt.Printf(" %s=%d", o, s.Outcomes[o])
	}
	fmt.Printf("\noverheard: %d  covered packets: %d\n\n", s.Overheard, s.Covered)

	// Hottest transmitters — the relays carrying the flood.
	type load struct{ node, tx int }
	var loads []load
	for node, tx := range s.PerNodeTx {
		loads = append(loads, load{node, tx})
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].tx != loads[j].tx {
			return loads[i].tx > loads[j].tx
		}
		return loads[i].node < loads[j].node
	})
	fmt.Println("busiest transmitters:")
	for i := 0; i < 5 && i < len(loads); i++ {
		fmt.Printf("  node %3d: %d transmissions (degree %d)\n",
			loads[i].node, loads[i].tx, g.Degree(loads[i].node))
	}

	// Packet timeline from the engine's own accounting.
	fmt.Println("\npacket timeline (inject -> 99% coverage):")
	for pkt := 0; pkt < res.M; pkt++ {
		fmt.Printf("  packet %d: slot %4d -> %4d (delay %d)\n",
			pkt, res.InjectTime[pkt], res.CoverTime[pkt], res.Delay[pkt])
	}
}

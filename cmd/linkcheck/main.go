// Command linkcheck validates the local links in the repository's
// markdown documentation. For every `[text](target)` in the given files
// it checks that a relative target exists on disk and, when the target
// carries a #fragment into a markdown file, that the fragment matches a
// heading's GitHub-style anchor. External links (http, https, mailto) are
// deliberately not fetched — CI must not depend on the network.
//
// Usage:
//
//	go run ./cmd/linkcheck README.md docs/*.md
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links and images: [text](target) with an
// optional title. Targets containing spaces or nested parens are not used
// in this repository's docs.
var linkRE = regexp.MustCompile(`\]\(([^()\s]+)(?:\s+"[^"]*")?\)`)

// headingRE matches ATX headings, whose text defines anchor slugs.
var headingRE = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*#*\s*$`)

func main() {
	files := os.Args[1:]
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck file.md ...")
		os.Exit(2)
	}
	anchors := map[string]map[string]bool{} // file -> slug set, lazily built
	broken := 0
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(1)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
				if msg := checkTarget(f, m[1], anchors); msg != "" {
					fmt.Fprintf(os.Stderr, "%s:%d: %s\n", f, i+1, msg)
					broken++
				}
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

// checkTarget validates one link target found in file; it returns a
// problem description or "" when the link is fine.
func checkTarget(file, target string, anchors map[string]map[string]bool) string {
	switch {
	case strings.HasPrefix(target, "http://"),
		strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"):
		return "" // external; not checked
	}
	path, frag, _ := strings.Cut(target, "#")
	dest := file
	if path != "" {
		dest = filepath.Join(filepath.Dir(file), path)
		if _, err := os.Stat(dest); err != nil {
			return fmt.Sprintf("broken link %q: %s does not exist", target, dest)
		}
	}
	if frag == "" || !strings.HasSuffix(dest, ".md") {
		return ""
	}
	set, ok := anchors[dest]
	if !ok {
		var err error
		set, err = headingAnchors(dest)
		if err != nil {
			return fmt.Sprintf("broken link %q: %v", target, err)
		}
		anchors[dest] = set
	}
	if !set[strings.ToLower(frag)] {
		return fmt.Sprintf("broken link %q: no heading with anchor #%s in %s", target, frag, dest)
	}
	return ""
}

// headingAnchors parses a markdown file and returns the set of GitHub
// anchor slugs its headings generate (duplicates get -1, -2, … suffixes).
func headingAnchors(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	counts := map[string]int{}
	for _, m := range headingRE.FindAllStringSubmatch(string(data), -1) {
		slug := slugify(m[1])
		if n := counts[slug]; n > 0 {
			set[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			set[slug] = true
		}
		counts[slug]++
	}
	return set, nil
}

// slugify reproduces GitHub's heading-to-anchor transformation closely
// enough for this repository: inline markup is stripped, the text is
// lowercased, spaces become hyphens, and everything but letters, digits,
// hyphens, and underscores is dropped.
func slugify(heading string) string {
	// Strip inline code/emphasis markers and link syntax before slugging.
	h := strings.NewReplacer("`", "", "*", "", "_", "_").Replace(heading)
	if m := linkRE.FindStringSubmatchIndex(h); m != nil {
		h = regexp.MustCompile(`\[([^\]]*)\]\([^)]*\)`).ReplaceAllString(h, "$1")
	}
	var b strings.Builder
	for _, r := range strings.ToLower(h) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteRune('-')
		}
	}
	return b.String()
}

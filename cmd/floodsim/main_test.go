package main

import (
	"os"
	"path/filepath"
	"testing"

	"ldcflood/internal/tracelog"
)

func TestRunGreenOrbs(t *testing.T) {
	if err := run("opt", "greenorbs", 0.10, 5, 0.99, 1, 1, 1, 0, true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunTestbedTopology(t *testing.T) {
	if err := run("dbao", "testbed", 0.10, 3, 0.99, 1, 1, 1, 0, false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllProtocols(t *testing.T) {
	for _, p := range []string{"opt", "dbao", "of", "naive"} {
		if err := run(p, "greenorbs", 0.20, 3, 0.99, 2, 1, 1, 0, false, ""); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name  string
		proto string
		topo  string
		duty  float64
	}{
		{"bad protocol", "bogus", "greenorbs", 0.1},
		{"bad duty", "opt", "greenorbs", 0},
		{"bad duty high", "opt", "greenorbs", 1.5},
		{"missing file", "opt", "/nonexistent/trace.txt", 0.1},
	}
	for _, c := range cases {
		if err := run(c.proto, c.topo, c.duty, 2, 0.99, 1, 1, 1, 0, false, ""); err == nil {
			t.Fatalf("%s accepted", c.name)
		}
	}
}

func TestRunWithTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.txt")
	if err := run("dbao", "greenorbs", 0.10, 3, 0.99, 1, 1, 1, 0, false, path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := tracelog.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	s := tracelog.Summarize(events)
	if s.Injections != 3 || s.Transmissions == 0 || s.Covered != 3 {
		t.Fatalf("trace summary: %+v", s)
	}
}

func TestLoadTopologyFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topo.txt")
	content := "graph demo 3\nlink 0 1 0.9\nlink 1 2 0.9\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := loadTopology(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.Name != "demo" {
		t.Fatalf("loaded wrong graph: %v", g)
	}
	if err := run("opt", path, 0.5, 2, 1, 1, 1, 1, 0, false, ""); err != nil {
		t.Fatal(err)
	}
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldcflood/internal/tracelog"
)

// testOptions returns a small, fast run; tests override individual fields.
func testOptions() options {
	return options{
		protoName: "opt",
		topoName:  "greenorbs",
		duty:      0.10,
		m:         5,
		coverage:  0.99,
		seed:      1,
		topoSeed:  1,
		inject:    1,
	}
}

func TestRunGreenOrbs(t *testing.T) {
	o := testOptions()
	o.verbose = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunTestbedTopology(t *testing.T) {
	o := testOptions()
	o.protoName = "dbao"
	o.topoName = "testbed"
	o.m = 3
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllProtocols(t *testing.T) {
	for _, p := range []string{"opt", "dbao", "of", "naive"} {
		o := testOptions()
		o.protoName = p
		o.duty = 0.20
		o.m = 3
		o.seed = 2
		if err := run(o); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name  string
		proto string
		topo  string
		duty  float64
	}{
		{"bad protocol", "bogus", "greenorbs", 0.1},
		{"bad duty", "opt", "greenorbs", 0},
		{"bad duty high", "opt", "greenorbs", 1.5},
		{"missing file", "opt", "/nonexistent/trace.txt", 0.1},
	}
	for _, c := range cases {
		o := testOptions()
		o.protoName = c.proto
		o.topoName = c.topo
		o.duty = c.duty
		o.m = 2
		if err := run(o); err == nil {
			t.Fatalf("%s accepted", c.name)
		}
	}
}

func TestRunWithTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.txt")
	o := testOptions()
	o.protoName = "dbao"
	o.m = 3
	o.traceFile = path
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := tracelog.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	s := tracelog.Summarize(events)
	if s.Injections != 3 || s.Transmissions == 0 || s.Covered != 3 {
		t.Fatalf("trace summary: %+v", s)
	}
}

// TestRunStatsTable: -stats must print the sim counter catalog after a
// run, and attaching telemetry must not break the run itself.
func TestRunStatsTable(t *testing.T) {
	var statsBuf bytes.Buffer
	o := testOptions()
	o.statsOut = &statsBuf
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"sim.runs.completed", "sim.tx.attempts", "sim.slots.visited"} {
		if !strings.Contains(statsBuf.String(), k) {
			t.Errorf("stats table missing %q:\n%s", k, statsBuf.String())
		}
	}
}

// TestRunDebugAddr: the debug server must start and stop cleanly around a
// run (endpoint content is covered by internal/telemetry's server tests).
func TestRunDebugAddr(t *testing.T) {
	o := testOptions()
	o.debugAddr = "127.0.0.1:0"
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestLoadTopologyFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topo.txt")
	content := "graph demo 3\nlink 0 1 0.9\nlink 1 2 0.9\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := loadTopology(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.Name != "demo" {
		t.Fatalf("loaded wrong graph: %v", g)
	}
	o := testOptions()
	o.topoName = path
	o.duty = 0.5
	o.m = 2
	o.coverage = 1
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

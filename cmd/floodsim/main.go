// Command floodsim runs one low-duty-cycle flooding simulation and prints
// its metrics: per-packet flooding delay at the coverage target,
// transmission/failure counts, and energy-model projections.
//
// Usage:
//
//	floodsim [-protocol opt|dbao|of|naive] [-duty 0.05] [-m 100]
//	         [-coverage 0.99] [-seed 1] [-topo greenorbs|<file>]
//	         [-toposeed 1] [-inject 1] [-v]
//
// The default topology is the synthetic 298-node GreenOrbs trace; -topo
// accepts a trace file in the topogen text format instead.
package main

import (
	"flag"
	"fmt"
	"os"

	"ldcflood/internal/flood"
	"ldcflood/internal/metrics"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
	"ldcflood/internal/tracelog"
)

func main() {
	var (
		protoName = flag.String("protocol", "opt", "flooding protocol: opt, dbao, of, naive")
		duty      = flag.Float64("duty", 0.05, "duty cycle in (0,1]")
		m         = flag.Int("m", 100, "number of packets to flood")
		coverage  = flag.Float64("coverage", 0.99, "delivery-ratio target for the delay metric")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		topoName  = flag.String("topo", "greenorbs", "topology: 'greenorbs', 'testbed', or a trace file path")
		topoSeed  = flag.Uint64("toposeed", 1, "seed for the synthetic topology")
		inject    = flag.Int("inject", 1, "slots between packet injections")
		maxSlots  = flag.Int64("maxslots", 0, "slot horizon (0 = automatic)")
		verbose   = flag.Bool("v", false, "print per-packet delays")
		traceFile = flag.String("trace", "", "write the full event trace to this file")
	)
	flag.Parse()

	if err := run(*protoName, *topoName, *duty, *m, *coverage, *seed, *topoSeed, *inject, *maxSlots, *verbose, *traceFile); err != nil {
		fmt.Fprintln(os.Stderr, "floodsim:", err)
		os.Exit(1)
	}
}

func run(protoName, topoName string, duty float64, m int, coverage float64, seed, topoSeed uint64, inject int, maxSlots int64, verbose bool, traceFile string) error {
	g, err := loadTopology(topoName, topoSeed)
	if err != nil {
		return err
	}
	p, err := flood.New(protoName)
	if err != nil {
		return err
	}
	if duty <= 0 || duty > 1 {
		return fmt.Errorf("duty %v outside (0,1]", duty)
	}
	period := schedule.PeriodForDuty(duty)
	scheds := schedule.AssignUniform(g.N(), period, rngutil.New(seed).SubName("schedule"))
	var observer sim.Observer
	var logger *tracelog.Logger
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		logger = tracelog.NewLogger(f)
		observer = logger
	}
	res, err := sim.Run(sim.Config{
		Graph:          g,
		Schedules:      scheds,
		Protocol:       p,
		M:              m,
		InjectInterval: inject,
		Coverage:       coverage,
		Seed:           seed,
		MaxSlots:       maxSlots,
		Observer:       observer,
	})
	if err != nil {
		return err
	}
	if logger != nil {
		if err := logger.Flush(); err != nil {
			return err
		}
	}

	fmt.Printf("topology:       %s (%d nodes, %d links, mean PRR %.2f)\n",
		g.Name, g.N(), g.NumLinks(), g.MeanLinkPRR())
	fmt.Printf("protocol:       %s\n", res.Protocol)
	fmt.Printf("duty cycle:     %.1f%% (period %d slots)\n", duty*100, period)
	fmt.Printf("packets:        %d (coverage target %d/%d nodes)\n", res.M, res.CoverNodes, g.N())
	fmt.Printf("completed:      %v in %d slots\n", res.Completed, res.TotalSlots)
	fmt.Printf("mean delay:     %.1f slots\n", res.MeanDelay())
	fmt.Printf("transmissions:  %d\n", res.Transmissions)
	fmt.Printf("failures:       %d (loss %d, collision %d, busy %d)\n",
		res.Failures(), res.LossFailures, res.CollisionFailures, res.BusyFailures)
	fmt.Printf("overheard:      %d\n", res.Overheard)

	em := metrics.DefaultEnergyModel()
	totalSeconds := float64(res.TotalSlots) * em.SlotSeconds
	txRate := 0.0
	if totalSeconds > 0 {
		txRate = float64(res.Transmissions) / float64(g.N()) / totalSeconds
	}
	lifetime, delay, gain := em.NetworkingGain(duty, res.MeanDelay(), txRate)
	fmt.Printf("est. lifetime:  %.1f days   flooding delay: %.2f s   gain: %.0f\n",
		lifetime/86400, delay, gain)

	if verbose {
		fmt.Println("\npacket  inject  cover   delay")
		for p := 0; p < res.M; p++ {
			fmt.Printf("%6d  %6d  %5d  %6d\n", p, res.InjectTime[p], res.CoverTime[p], res.Delay[p])
		}
	}
	return nil
}

func loadTopology(name string, topoSeed uint64) (*topology.Graph, error) {
	switch name {
	case "greenorbs":
		return topology.GreenOrbs(topoSeed), nil
	case "testbed":
		return topology.Testbed(topoSeed), nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return topology.ReadText(f)
}

// Command floodsim runs one low-duty-cycle flooding simulation and prints
// its metrics: per-packet flooding delay at the coverage target,
// transmission/failure counts, and energy-model projections.
//
// Usage:
//
//	floodsim [-protocol opt|dbao|of|naive|trickle|dflood|flash] [-duty 0.05] [-m 100]
//	         [-coverage 0.99] [-seed 1] [-topo greenorbs|<file>]
//	         [-toposeed 1] [-inject 1] [-v]
//	         [-trace FILE] [-trace-format text|bin]
//	         [-debug-addr :8080] [-stats]
//
// The default topology is the synthetic 298-node GreenOrbs trace; -topo
// accepts a trace file in the topogen text format instead.
//
// -trace writes the full event trace; -trace-format selects the text
// format (internal/tracelog, default) or the compact binary format
// (internal/tracebin, ~several times smaller — see docs/TRACE.md).
// Convert or inspect either with cmd/tracecat.
//
// -debug-addr serves the live telemetry snapshot (expvar-compatible
// /debug/vars) and net/http/pprof on the given address while the run
// executes; -stats prints the final counter table to stderr. Neither
// affects the simulation. See docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ldcflood/internal/flood"
	"ldcflood/internal/metrics"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/telemetry"
	"ldcflood/internal/topology"
	"ldcflood/internal/tracebin"
	"ldcflood/internal/tracelog"
)

// options collects the flag values one run consumes.
type options struct {
	protoName   string
	topoName    string
	duty        float64
	m           int
	coverage    float64
	seed        uint64
	topoSeed    uint64
	inject      int
	maxSlots    int64
	verbose     bool
	traceFile   string
	traceFormat string
	debugAddr   string    // "" disables the /debug/vars + pprof server
	statsOut    io.Writer // nil disables the final telemetry table
}

func main() {
	var o options
	flag.StringVar(&o.protoName, "protocol", "opt", "flooding protocol: opt, dbao, of, naive, trickle, dflood, flash")
	flag.Float64Var(&o.duty, "duty", 0.05, "duty cycle in (0,1]")
	flag.IntVar(&o.m, "m", 100, "number of packets to flood")
	flag.Float64Var(&o.coverage, "coverage", 0.99, "delivery-ratio target for the delay metric")
	flag.Uint64Var(&o.seed, "seed", 1, "simulation seed")
	flag.StringVar(&o.topoName, "topo", "greenorbs", "topology: 'greenorbs', 'testbed', or a trace file path")
	flag.Uint64Var(&o.topoSeed, "toposeed", 1, "seed for the synthetic topology")
	flag.IntVar(&o.inject, "inject", 1, "slots between packet injections")
	flag.Int64Var(&o.maxSlots, "maxslots", 0, "slot horizon (0 = automatic)")
	flag.BoolVar(&o.verbose, "v", false, "print per-packet delays")
	flag.StringVar(&o.traceFile, "trace", "", "write the full event trace to this file")
	flag.StringVar(&o.traceFormat, "trace-format", "text", "trace encoding: 'text' (tracelog) or 'bin' (compact binary, docs/TRACE.md)")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "serve live telemetry (/debug/vars) and pprof on this address during the run (e.g. :8080, :0 for an ephemeral port)")
	stats := flag.Bool("stats", false, "print the final telemetry counter table to stderr")
	flag.Parse()
	if *stats {
		o.statsOut = os.Stderr
	}

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "floodsim:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	g, err := loadTopology(o.topoName, o.topoSeed)
	if err != nil {
		return err
	}
	p, err := flood.New(o.protoName)
	if err != nil {
		return err
	}
	if o.duty <= 0 || o.duty > 1 {
		return fmt.Errorf("duty %v outside (0,1]", o.duty)
	}
	period := schedule.PeriodForDuty(o.duty)
	scheds := schedule.AssignUniform(g.N(), period, rngutil.New(o.seed).SubName("schedule"))
	var observer sim.Observer
	var flush func() error
	var binWriter *tracebin.Writer
	if o.traceFile != "" {
		f, err := os.Create(o.traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		switch o.traceFormat {
		case "":
			o.traceFormat = "text"
			fallthrough
		case "text":
			logger := tracelog.NewLogger(f)
			observer, flush = logger, logger.Flush
		case "bin":
			binWriter = tracebin.NewWriter(f)
			observer, flush = binWriter, binWriter.Flush
		default:
			return fmt.Errorf("unknown -trace-format %q (want 'text' or 'bin')", o.traceFormat)
		}
	}
	var reg *telemetry.Registry
	if o.debugAddr != "" || o.statsOut != nil {
		reg = telemetry.New()
		if binWriter != nil {
			binWriter.Instrument(reg)
		}
		// Timer-driven protocols export message/suppression counters
		// (flood.messages, flood.<name>.suppressed) into the registry.
		if ip, ok := p.(interface{ Instrument(*telemetry.Registry) }); ok {
			ip.Instrument(reg)
		}
		if o.debugAddr != "" {
			srv, err := telemetry.Serve(o.debugAddr, reg)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "floodsim: telemetry: serving debug endpoints on %s\n", srv.URL())
		}
		if o.statsOut != nil {
			defer func() {
				if err := reg.Snapshot().WriteTable(o.statsOut); err != nil {
					fmt.Fprintln(os.Stderr, "floodsim: warning:", err)
				}
			}()
		}
	}
	res, err := sim.Run(sim.Config{
		Graph:          g,
		Schedules:      scheds,
		Protocol:       p,
		M:              o.m,
		InjectInterval: o.inject,
		Coverage:       o.coverage,
		Seed:           o.seed,
		MaxSlots:       o.maxSlots,
		Observer:       observer,
		Telemetry:      reg,
	})
	if err != nil {
		return err
	}
	if flush != nil {
		if err := flush(); err != nil {
			return err
		}
	}

	fmt.Printf("topology:       %s (%d nodes, %d links, mean PRR %.2f)\n",
		g.Name, g.N(), g.NumLinks(), g.MeanLinkPRR())
	fmt.Printf("protocol:       %s\n", res.Protocol)
	fmt.Printf("duty cycle:     %.1f%% (period %d slots)\n", o.duty*100, period)
	fmt.Printf("packets:        %d (coverage target %d/%d nodes)\n", res.M, res.CoverNodes, g.N())
	fmt.Printf("completed:      %v in %d slots\n", res.Completed, res.TotalSlots)
	fmt.Printf("mean delay:     %.1f slots\n", res.MeanDelay())
	fmt.Printf("transmissions:  %d\n", res.Transmissions)
	fmt.Printf("failures:       %d (loss %d, collision %d, busy %d)\n",
		res.Failures(), res.LossFailures, res.CollisionFailures, res.BusyFailures)
	fmt.Printf("overheard:      %d\n", res.Overheard)
	if messages, suppressed, ok := metrics.ProtocolCounters(p); ok {
		fmt.Printf("suppressed:     %d (of %d timer firings considered)\n",
			suppressed, messages+suppressed)
		if summary, ok := metrics.SuppressionSummary(p); ok {
			fmt.Printf("supp. per node: mean %.1f, median %.0f, max %.0f\n",
				summary.Mean, summary.Median, summary.Max)
		}
	}

	em := metrics.DefaultEnergyModel()
	totalSeconds := float64(res.TotalSlots) * em.SlotSeconds
	txRate := 0.0
	if totalSeconds > 0 {
		txRate = float64(res.Transmissions) / float64(g.N()) / totalSeconds
	}
	lifetime, delay, gain := em.NetworkingGain(o.duty, res.MeanDelay(), txRate)
	fmt.Printf("est. lifetime:  %.1f days   flooding delay: %.2f s   gain: %.0f\n",
		lifetime/86400, delay, gain)

	if o.verbose {
		fmt.Println("\npacket  inject  cover   delay")
		for p := 0; p < res.M; p++ {
			fmt.Printf("%6d  %6d  %5d  %6d\n", p, res.InjectTime[p], res.CoverTime[p], res.Delay[p])
		}
	}
	return nil
}

func loadTopology(name string, topoSeed uint64) (*topology.Graph, error) {
	switch name {
	case "greenorbs":
		return topology.GreenOrbs(topoSeed), nil
	case "testbed":
		return topology.Testbed(topoSeed), nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return topology.ReadText(f)
}

package main

import (
	"bytes"
	"encoding/csv"
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"ldcflood/internal/runner"
)

// testConfig returns a small, fast sweep configuration; tests override
// individual fields.
func testConfig() sweepConfig {
	return sweepConfig{
		protocolsCSV: "opt",
		dutiesCSV:    "0.10",
		seeds:        1,
		m:            5,
		coverage:     0.99,
		topoSeed:     1,
		parallel:     1,
	}
}

func TestRunProducesCSV(t *testing.T) {
	var buf bytes.Buffer
	sc := testConfig()
	sc.protocolsCSV = "opt,dbao"
	sc.dutiesCSV = "0.10,0.20"
	sc.seeds = 2
	sc.parallel = 2
	if err := run(&buf, sc); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 2 protocols × 2 duties × 2 seeds.
	if len(records) != 1+8 {
		t.Fatalf("rows = %d, want 9", len(records))
	}
	if records[0][0] != "protocol" || len(records[0]) != 16 {
		t.Fatalf("bad header: %v", records[0])
	}
	for _, rec := range records[1:] {
		if rec[15] != "true" {
			t.Fatalf("incomplete run in row %v", rec)
		}
		delay, err := strconv.ParseFloat(rec[4], 64)
		if err != nil || delay <= 0 {
			t.Fatalf("bad mean delay %q", rec[4])
		}
	}
}

func TestRunOrderingIsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	sa := testConfig()
	sa.seeds = 3
	sa.parallel = 4
	if err := run(&a, sa); err != nil {
		t.Fatal(err)
	}
	sb := sa
	sb.parallel = 1
	if err := run(&b, sb); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("parallelism changed the output")
	}
}

func TestRunSyncErrColumn(t *testing.T) {
	var buf bytes.Buffer
	sc := testConfig()
	sc.syncErr = 0.3
	if err := run(&buf, sc); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	syncFails, err := strconv.Atoi(records[1][12])
	if err != nil || syncFails == 0 {
		t.Fatalf("sync failures column = %q, want > 0", records[1][12])
	}
}

func TestRunTimeoutYieldsTypedError(t *testing.T) {
	var buf bytes.Buffer
	sc := testConfig()
	sc.m = 100
	sc.dutiesCSV = "0.02"
	sc.timeout = time.Microsecond // no 298-node run finishes this fast
	err := run(&buf, sc)
	if err == nil {
		t.Fatal("timeout accepted")
	}
	if !errors.Is(err, runner.ErrTimeout) {
		t.Fatalf("err = %v, want runner.ErrTimeout", err)
	}
	if !strings.Contains(err.Error(), "duty 0.02") {
		t.Fatalf("error %q does not name the failing cell", err)
	}
}

func TestRunProgressOutput(t *testing.T) {
	var buf, prog bytes.Buffer
	sc := testConfig()
	sc.seeds = 2
	sc.progress = &prog
	if err := run(&buf, sc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.String(), "2/2 runs") {
		t.Fatalf("progress output %q missing final snapshot", prog.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	cases := []struct {
		protocols, duties string
		seeds, m          int
	}{
		{"bogus", "0.1", 1, 5},
		{"opt", "zero", 1, 5},
		{"opt", "0", 1, 5},
		{"opt", "1.5", 1, 5},
		{"opt", "0.1", 0, 5},
		{"opt", "0.1", 1, 0},
	}
	for i, c := range cases {
		sc := testConfig()
		sc.protocolsCSV = c.protocols
		sc.dutiesCSV = c.duties
		sc.seeds = c.seeds
		sc.m = c.m
		if err := run(&buf, sc); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

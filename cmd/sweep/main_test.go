package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"ldcflood/internal/runner"
	"ldcflood/internal/service"
)

// testConfig returns a small, fast sweep configuration; tests override
// individual fields.
func testConfig() sweepConfig {
	return sweepConfig{
		protocolsCSV: "opt",
		dutiesCSV:    "0.10",
		seeds:        1,
		m:            5,
		coverage:     0.99,
		topoSeed:     1,
		parallel:     1,
	}
}

func TestRunProducesCSV(t *testing.T) {
	var buf bytes.Buffer
	sc := testConfig()
	sc.protocolsCSV = "opt,dbao"
	sc.dutiesCSV = "0.10,0.20"
	sc.seeds = 2
	sc.parallel = 2
	if err := run(&buf, sc); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 2 protocols × 2 duties × 2 seeds.
	if len(records) != 1+8 {
		t.Fatalf("rows = %d, want 9", len(records))
	}
	if records[0][0] != "protocol" || len(records[0]) != 19 {
		t.Fatalf("bad header: %v", records[0])
	}
	for _, rec := range records[1:] {
		if rec[18] != "true" {
			t.Fatalf("incomplete run in row %v", rec)
		}
		delay, err := strconv.ParseFloat(rec[4], 64)
		if err != nil || delay <= 0 {
			t.Fatalf("bad mean delay %q", rec[4])
		}
	}
}

func TestRunOrderingIsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	sa := testConfig()
	sa.seeds = 3
	sa.parallel = 4
	if err := run(&a, sa); err != nil {
		t.Fatal(err)
	}
	sb := sa
	sb.parallel = 1
	if err := run(&b, sb); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("parallelism changed the output")
	}
}

func TestRunSyncErrColumn(t *testing.T) {
	var buf bytes.Buffer
	sc := testConfig()
	sc.syncErr = 0.3
	if err := run(&buf, sc); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	syncFails, err := strconv.Atoi(records[1][12])
	if err != nil || syncFails == 0 {
		t.Fatalf("sync failures column = %q, want > 0", records[1][12])
	}
}

func TestRunTimeoutYieldsTypedError(t *testing.T) {
	var buf bytes.Buffer
	sc := testConfig()
	sc.m = 100
	sc.dutiesCSV = "0.02"
	sc.timeout = time.Microsecond // no 298-node run finishes this fast
	err := run(&buf, sc)
	if err == nil {
		t.Fatal("timeout accepted")
	}
	if !errors.Is(err, runner.ErrTimeout) {
		t.Fatalf("err = %v, want runner.ErrTimeout", err)
	}
	if !strings.Contains(err.Error(), "duty 0.02") {
		t.Fatalf("error %q does not name the failing cell", err)
	}
}

func TestRunProgressOutput(t *testing.T) {
	var buf, prog bytes.Buffer
	sc := testConfig()
	sc.seeds = 2
	sc.progress = &prog
	if err := run(&buf, sc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.String(), "jobs=2/2") {
		t.Fatalf("progress output %q missing final snapshot", prog.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	cases := []struct {
		protocols, duties string
		seeds, m          int
	}{
		{"bogus", "0.1", 1, 5},
		{"opt", "zero", 1, 5},
		{"opt", "0", 1, 5},
		{"opt", "1.5", 1, 5},
		{"opt", "0.1", 0, 5},
		{"opt", "0.1", 1, 0},
	}
	for i, c := range cases {
		sc := testConfig()
		sc.protocolsCSV = c.protocols
		sc.dutiesCSV = c.duties
		sc.seeds = c.seeds
		sc.m = c.m
		if err := run(&buf, sc); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

// writeFaultSpec drops a small fault schedule (a jam over a node list plus
// one crash/reboot) into a temp file and returns its path.
func writeFaultSpec(t *testing.T) string {
	t.Helper()
	spec := `{
		"jams": [{"from": 0, "until": 200, "nodes": [5, 6, 7]}],
		"crashes": [{"node": 9, "at": 10, "reboot_at": 100}]
	}`
	path := filepath.Join(t.TempDir(), "faults.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFaultColumns(t *testing.T) {
	var clean, faulted bytes.Buffer
	sc := testConfig()
	if err := run(&clean, sc); err != nil {
		t.Fatal(err)
	}
	sc.faultsPath = writeFaultSpec(t)
	if err := run(&faulted, sc); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&faulted).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	rec := records[1]
	if jam, _ := strconv.Atoi(rec[13]); jam == 0 {
		t.Fatalf("jam column = %q, want > 0", rec[13])
	}
	if rec[15] != "1" || rec[16] != "1" {
		t.Fatalf("crashes/reboots = %q/%q, want 1/1", rec[15], rec[16])
	}
	// The clean sweep reports zeros in the same columns.
	records, err = csv.NewReader(&clean).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	rec = records[1]
	if rec[13] != "0" || rec[15] != "0" || rec[16] != "0" {
		t.Fatalf("clean run has fault counters: %v", rec)
	}
}

func TestRunFaultsBadSpec(t *testing.T) {
	var buf bytes.Buffer
	sc := testConfig()
	sc.faultsPath = filepath.Join(t.TempDir(), "missing.json")
	if err := run(&buf, sc); err == nil {
		t.Fatal("missing fault file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	// Node 0 is the source; crashing it is rejected by validation.
	os.WriteFile(path, []byte(`{"crashes": [{"node": 0, "at": 1, "reboot_at": -1}]}`), 0o644)
	sc.faultsPath = path
	if err := run(&buf, sc); err == nil {
		t.Fatal("invalid fault spec accepted")
	}
}

func TestRunJournalResumeByteIdentical(t *testing.T) {
	sc := testConfig()
	sc.protocolsCSV = "opt,of"
	sc.seeds = 2
	sc.faultsPath = writeFaultSpec(t)

	// Reference: one uninterrupted sweep, no journal.
	var want bytes.Buffer
	if err := run(&want, sc); err != nil {
		t.Fatal(err)
	}

	// Interrupted sweep: run the full grid once with a journal, then strip
	// the journal back to its first two records — the state a kill would
	// leave behind.
	path := filepath.Join(t.TempDir(), "sweep.journal")
	var scratch bytes.Buffer
	scJ := sc
	scJ.journalPath = path
	if err := run(&scratch, scJ); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("journal has %d lines, want header + 4 records", len(lines))
	}
	truncated := bytes.Join(lines[:3], nil) // header + 2 records
	if err := os.WriteFile(path, truncated, 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume against the truncated journal: 2 cells replay, 2 re-run.
	var got bytes.Buffer
	scR := scJ
	scR.resume = true
	if err := run(&got, scR); err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Fatal("resumed sweep CSV differs from the uninterrupted run")
	}

	// Resuming the now-complete journal with different grid parameters must
	// fail loudly.
	scBad := scR
	scBad.seeds = 3
	if err := run(&got, scBad); err == nil {
		t.Fatal("resume with a different grid accepted")
	}
}

func TestRunResumeLegacyJournal(t *testing.T) {
	// A journal keyed by a pre-canonicalization release ("0.10" as typed,
	// not "0.1") must fail resume with a migration message, not a bare key
	// mismatch.
	sc := testConfig() // dutiesCSV "0.10" canonicalizes to "0.1"
	spec, err := sc.spec()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := service.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := grid.JournalKey()
	legacy := strings.Replace(want, "|duties=0.1|", "|duties=0.10|", 1)
	if legacy == want {
		t.Fatalf("key %q lacks the expected canonical duty segment", want)
	}

	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := runner.OpenJournal(path, legacy, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	var buf bytes.Buffer
	sc.journalPath = path
	sc.resume = true
	err = run(&buf, sc)
	if err == nil {
		t.Fatal("resume against a legacy-keyed journal accepted")
	}
	if !strings.Contains(err.Error(), "older sweep release") {
		t.Fatalf("legacy journal error lacks migration guidance: %v", err)
	}

	// A genuinely different grid must keep the plain mismatch error.
	scOther := sc
	scOther.seeds = 2
	err = run(&buf, scOther)
	if err == nil {
		t.Fatal("resume with a different grid accepted")
	}
	if strings.Contains(err.Error(), "older sweep release") {
		t.Fatalf("grid mismatch misdiagnosed as legacy journal: %v", err)
	}
}

func TestRunResumeNeedsJournal(t *testing.T) {
	var buf bytes.Buffer
	sc := testConfig()
	sc.resume = true
	if err := run(&buf, sc); err == nil {
		t.Fatal("-resume without -journal accepted")
	}
}

func TestRunCompactMatchesReference(t *testing.T) {
	var slow, fast bytes.Buffer
	sc := testConfig()
	sc.seeds = 2
	if err := run(&slow, sc); err != nil {
		t.Fatal(err)
	}
	sc.compact = true
	if err := run(&fast, sc); err != nil {
		t.Fatal(err)
	}
	if slow.String() != fast.String() {
		t.Fatal("compact-time sweep differs from the reference path")
	}
}

// TestRunDebugAddrAndStats runs a sweep with the debug server and stats
// table enabled, fetching /debug/vars and a pprof endpoint while (or just
// after) the grid executes — the in-process version of the CI smoke step.
func TestRunDebugAddrAndStats(t *testing.T) {
	var buf, statsBuf bytes.Buffer
	sc := testConfig()
	sc.seeds = 2
	sc.debugAddr = ":0"
	sc.statsOut = &statsBuf
	var varsBody, pprofStatus string
	sc.debugReady = func(url string) {
		varsBody = httpGet(t, url+"/debug/vars")
		resp, err := http.Get(url + "/debug/pprof/")
		if err != nil {
			t.Errorf("pprof index: %v", err)
			return
		}
		resp.Body.Close()
		pprofStatus = resp.Status
	}
	if err := run(&buf, sc); err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(varsBody), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, varsBody)
	}
	// The fetch happens before the batch registers its counters, so only
	// the structural expvar keys are guaranteed here; counter content is
	// asserted on the (post-run) stats table below and in
	// internal/telemetry's server tests.
	for _, k := range []string{"cmdline", "memstats"} {
		if _, ok := vars[k]; !ok {
			t.Errorf("/debug/vars missing %q", k)
		}
	}
	if !strings.HasPrefix(pprofStatus, "200") {
		t.Errorf("pprof index status = %q, want 200", pprofStatus)
	}
	for _, k := range []string{"runner.jobs.done", "sim.runs.completed", "sim.tx.attempts"} {
		if !strings.Contains(statsBuf.String(), k) {
			t.Errorf("stats table missing %q:\n%s", k, statsBuf.String())
		}
	}
}

// httpGet fetches a URL and returns its body, failing the test on error.
func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s\n%s", url, resp.Status, body)
	}
	return string(body)
}

// TestRunMatchesServiceResult is the service-parity acceptance check: the
// same grid submitted as an HTTP job to internal/service must yield a
// result byte-identical to this command's CSV, because both compile
// through service.Compile and render through Grid.WriteCSV.
func TestRunMatchesServiceResult(t *testing.T) {
	sc := testConfig()
	sc.protocolsCSV = "opt,dbao"
	sc.seeds = 2
	sc.faultsPath = writeFaultSpec(t)

	var want bytes.Buffer
	if err := run(&want, sc); err != nil {
		t.Fatal(err)
	}

	svc, err := service.New(service.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Drain(ctx)
	}()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	spec, err := sc.spec()
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st service.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/jobs = %d", resp.StatusCode)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		j, ok := svc.Job(st.ID)
		if !ok {
			t.Fatalf("job %s vanished", st.ID)
		}
		if s := j.State(); s.Terminal() {
			if s != service.StateDone {
				t.Fatalf("job %s = %s (%s)", st.ID, s, j.Status().Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish within 60s")
		}
		time.Sleep(5 * time.Millisecond)
	}

	got := httpGet(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	if got != want.String() {
		t.Fatalf("HTTP job result differs from cmd/sweep output:\n%s\nvs\n%s", got, want.String())
	}
}

package main

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"
)

func TestRunProducesCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "opt,dbao", "0.10,0.20", 2, 5, 0.99, 1, 0, 2); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 2 protocols × 2 duties × 2 seeds.
	if len(records) != 1+8 {
		t.Fatalf("rows = %d, want 9", len(records))
	}
	if records[0][0] != "protocol" || len(records[0]) != 16 {
		t.Fatalf("bad header: %v", records[0])
	}
	for _, rec := range records[1:] {
		if rec[15] != "true" {
			t.Fatalf("incomplete run in row %v", rec)
		}
		delay, err := strconv.ParseFloat(rec[4], 64)
		if err != nil || delay <= 0 {
			t.Fatalf("bad mean delay %q", rec[4])
		}
	}
}

func TestRunOrderingIsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a, "opt", "0.10", 1, 3, 0.99, 1, 0, 4); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "opt", "0.10", 1, 3, 0.99, 1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("parallelism changed the output")
	}
}

func TestRunSyncErrColumn(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "opt", "0.10", 1, 5, 0.99, 1, 0.3, 1); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	syncFails, err := strconv.Atoi(records[1][12])
	if err != nil || syncFails == 0 {
		t.Fatalf("sync failures column = %q, want > 0", records[1][12])
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	cases := []struct {
		protocols, duties string
		seeds, m          int
	}{
		{"bogus", "0.1", 1, 5},
		{"opt", "zero", 1, 5},
		{"opt", "0", 1, 5},
		{"opt", "1.5", 1, 5},
		{"opt", "0.1", 0, 5},
		{"opt", "0.1", 1, 0},
	}
	for i, c := range cases {
		if err := run(&buf, c.protocols, c.duties, c.seeds, c.m, 0.99, 1, 0, 1); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

// Command sweep runs a protocol × duty-cycle × seed grid of flooding
// simulations and writes one CSV row per run — the batch front-end for
// custom analyses beyond the canned figures.
//
// Usage:
//
//	sweep [-protocols opt,dbao,of] [-duties 0.02,0.05,0.1,0.2] [-seeds 3]
//	      [-m 100] [-coverage 0.99] [-toposeed 1] [-syncerr 0]
//	      [-faults spec.json] [-compact]
//	      [-journal sweep.journal] [-resume] [-retries 0] [-backoff 1s]
//	      [-out results.csv] [-parallel 0] [-timeout 0] [-progress]
//	      [-debug-addr :8080] [-stats]
//
// The grid executes on the internal/runner batch executor: -parallel
// bounds the worker pool, a failing cell (panic or -timeout overrun)
// reports a typed job error naming the cell, and the CSV is byte-identical
// for every -parallel value.
//
// -progress prints a throttled structured line (jobs done/total, failures,
// slots/sec, ETA) to stderr. -debug-addr serves the live telemetry
// snapshot (expvar-compatible /debug/vars) and net/http/pprof on the given
// address for the duration of the sweep; -stats prints the final counter
// table to stderr. Both observe the simulation without affecting it — the
// CSV stays byte-identical. See docs/OBSERVABILITY.md.
//
// -faults applies a JSON fault schedule (see internal/fault) to every
// cell; -compact opts into the compact-time fast path, which silently
// falls back per-run when the schedule is dynamic. -journal checkpoints
// each finished run to a JSON-lines file, and -resume replays a prior
// journal so a killed sweep restarts where it left off — the resumed CSV
// is byte-identical to an uninterrupted run. The journal is keyed to the
// full grid definition (including the fault spec), so resuming with
// different parameters fails instead of mixing sweeps. -retries re-runs
// cells that fail retryably (timeout, panic) with exponential -backoff.
//
// Columns: protocol, duty, period, seed, mean_delay, p50_delay, p99_delay,
// transmissions, failures, loss, collision, busy, sync, jam, overheard,
// crashes, reboots, total_slots, completed.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"ldcflood/internal/fault"
	"ldcflood/internal/flood"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/runner"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/stats"
	"ldcflood/internal/telemetry"
	"ldcflood/internal/topology"
)

func main() {
	var (
		protocols = flag.String("protocols", "opt,dbao,of", "comma-separated protocol names")
		duties    = flag.String("duties", "0.02,0.05,0.10,0.20", "comma-separated duty cycles")
		seeds     = flag.Int("seeds", 1, "number of seeds per cell (0..seeds-1)")
		m         = flag.Int("m", 100, "packets per flood")
		coverage  = flag.Float64("coverage", 0.99, "delivery-ratio target")
		topoSeed  = flag.Uint64("toposeed", 1, "synthetic GreenOrbs topology seed")
		syncErr   = flag.Float64("syncerr", 0, "local-synchronization miss probability")
		faults    = flag.String("faults", "", "JSON fault-schedule file applied to every cell (see internal/fault)")
		compact   = flag.Bool("compact", false, "use the compact-time fast path (falls back per-run for dynamic fault schedules)")
		journal   = flag.String("journal", "", "checkpoint finished runs to this JSON-lines file")
		resume    = flag.Bool("resume", false, "resume from an existing -journal, skipping already-completed runs")
		retries   = flag.Int("retries", 0, "re-run a retryably failing cell (timeout, panic) up to this many times")
		backoff   = flag.Duration("backoff", time.Second, "base delay before the first retry, doubling per attempt")
		out       = flag.String("out", "", "output CSV path (default stdout)")
		parallel  = flag.Int("parallel", 0, "batch-runner workers (0 = GOMAXPROCS); the CSV is identical for every value")
		workers   = flag.Int("workers", 0, "per-run shard workers: 0 = historical serial engine, >= 1 = sharded deterministic mode (identical results for every count), -1 = auto-split the machine between batch and shard workers")
		timeout   = flag.Duration("timeout", 0, "per-run wall-clock budget (0 = none); an overrunning cell fails with a typed timeout error")
		progress  = flag.Bool("progress", false, "print live batch progress to stderr")
		debugAddr = flag.String("debug-addr", "", "serve live telemetry (/debug/vars) and pprof on this address during the sweep (e.g. :8080, :0 for an ephemeral port)")
		statsFlag = flag.Bool("stats", false, "print the final telemetry counter table to stderr")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	cfg := sweepConfig{
		protocolsCSV: *protocols,
		dutiesCSV:    *duties,
		seeds:        *seeds,
		m:            *m,
		coverage:     *coverage,
		topoSeed:     *topoSeed,
		syncErr:      *syncErr,
		faultsPath:   *faults,
		compact:      *compact,
		journalPath:  *journal,
		resume:       *resume,
		retries:      *retries,
		backoff:      *backoff,
		parallel:     *parallel,
		workers:      *workers,
		timeout:      *timeout,
		debugAddr:    *debugAddr,
	}
	if *progress {
		cfg.progress = os.Stderr
	}
	if *statsFlag {
		cfg.statsOut = os.Stderr
	}
	if err := run(w, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

type cell struct {
	protocol string
	duty     float64
	seed     uint64
}

type sweepConfig struct {
	protocolsCSV string
	dutiesCSV    string
	seeds        int
	m            int
	coverage     float64
	topoSeed     uint64
	syncErr      float64
	faultsPath   string // JSON fault schedule, "" for a clean sweep
	compact      bool
	journalPath  string // "" disables checkpointing
	resume       bool
	retries      int
	backoff      time.Duration
	parallel     int
	workers      int // sim.Config.Workers; -1 = auto-split with the batch runner
	timeout      time.Duration
	progress     io.Writer // nil disables progress reporting
	debugAddr    string    // "" disables the /debug/vars + pprof server
	statsOut     io.Writer // nil disables the final telemetry table
	// debugReady, when non-nil, receives the debug server's base URL once
	// it is listening — tests use it to curl the endpoints mid-sweep.
	debugReady func(url string)
}

// journalKey identifies the grid a journal belongs to: every parameter
// that changes the simulation output, including the fault spec itself (not
// its file name, so an edited spec invalidates old checkpoints) and the
// engine discipline (serial vs sharded — two different, individually
// deterministic RNG streams). The exact shard-worker count is NOT keyed:
// every count >= 1 produces identical results by construction, so a
// journal written at -workers 1 resumes cleanly at -workers 4.
func (sc sweepConfig) journalKey(faultJSON []byte, shardWorkers int) string {
	h := fnv.New64a()
	h.Write(faultJSON)
	return fmt.Sprintf("sweep|protocols=%s|duties=%s|seeds=%d|m=%d|coverage=%g|toposeed=%d|syncerr=%g|compact=%v|sharded=%v|faults=%x",
		sc.protocolsCSV, sc.dutiesCSV, sc.seeds, sc.m, sc.coverage, sc.topoSeed, sc.syncErr, sc.compact, shardWorkers > 0, h.Sum64())
}

func run(w io.Writer, sc sweepConfig) error {
	protocols := strings.Split(sc.protocolsCSV, ",")
	for i := range protocols {
		protocols[i] = strings.TrimSpace(protocols[i])
		if _, err := flood.New(protocols[i]); err != nil {
			return err
		}
	}
	var duties []float64
	for _, d := range strings.Split(sc.dutiesCSV, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(d), 64)
		if err != nil {
			return fmt.Errorf("bad duty %q: %v", d, err)
		}
		if v <= 0 || v > 1 {
			return fmt.Errorf("duty %v outside (0,1]", v)
		}
		duties = append(duties, v)
	}
	if sc.seeds < 1 {
		return fmt.Errorf("need at least one seed")
	}
	if sc.m < 1 {
		return fmt.Errorf("need m >= 1")
	}

	g := topology.GreenOrbs(sc.topoSeed)
	var spec *fault.Schedule
	var faultJSON []byte
	if sc.faultsPath != "" {
		var err error
		if faultJSON, err = os.ReadFile(sc.faultsPath); err != nil {
			return err
		}
		if spec, err = fault.Parse(faultJSON); err != nil {
			return err
		}
		if err := spec.Validate(g); err != nil {
			return err
		}
	}
	var cells []cell
	for _, p := range protocols {
		for _, d := range duties {
			for s := 0; s < sc.seeds; s++ {
				cells = append(cells, cell{protocol: p, duty: d, seed: uint64(s)})
			}
		}
	}
	// Resolve the engine discipline before jobs are built: -workers -1
	// splits the machine budget between batch-level and shard-level
	// parallelism (both layers are deterministic, so the CSV is identical
	// for every split).
	batchWorkers, shardWorkers := sc.parallel, sc.workers
	if sc.workers < 0 {
		batchWorkers, shardWorkers = runner.SplitParallelism(sc.parallel, len(cells))
	}

	jobs := make([]sim.Config, len(cells))
	for i, c := range cells {
		p, err := flood.New(c.protocol)
		if err != nil {
			return err
		}
		period := schedule.PeriodForDuty(c.duty)
		jobs[i] = sim.Config{
			Graph:         g,
			Schedules:     schedule.AssignUniform(g.N(), period, rngutil.New(c.seed).SubName("schedule")),
			Protocol:      p,
			M:             sc.m,
			Coverage:      sc.coverage,
			Seed:          c.seed,
			SyncErrorProb: sc.syncErr,
			Faults:        spec,
			CompactTime:   sc.compact,
			Workers:       shardWorkers,
		}
	}

	ropts := runner.Options{
		Workers:      batchWorkers,
		Timeout:      sc.timeout,
		Retries:      sc.retries,
		RetryBackoff: sc.backoff,
	}
	if sc.debugAddr != "" || sc.statsOut != nil {
		reg := telemetry.New()
		ropts.Telemetry = reg
		for i := range jobs {
			jobs[i].Telemetry = reg
		}
		if sc.debugAddr != "" {
			srv, err := telemetry.Serve(sc.debugAddr, reg)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "sweep: telemetry: serving debug endpoints on %s\n", srv.URL())
			if sc.debugReady != nil {
				sc.debugReady(srv.URL())
			}
		}
		if sc.statsOut != nil {
			defer func() {
				if err := reg.Snapshot().WriteTable(sc.statsOut); err != nil {
					fmt.Fprintln(os.Stderr, "sweep: warning:", err)
				}
			}()
		}
	}
	if sc.journalPath != "" {
		j, err := runner.OpenJournal(sc.journalPath, sc.journalKey(faultJSON, shardWorkers), sc.resume)
		if err != nil {
			return err
		}
		defer j.Close()
		ropts.Journal = j
		defer func() {
			if err := j.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "sweep: warning:", err)
			}
		}()
	} else if sc.resume {
		return fmt.Errorf("-resume needs -journal")
	}
	if sc.progress != nil {
		ropts.Progress = runner.ProgressPrinter(sc.progress, time.Second)
	}
	rs, _ := runner.Run(context.Background(), jobs, ropts)
	for i := range rs {
		if rs[i].Err != nil {
			c := cells[i]
			return fmt.Errorf("%s at duty %v seed %d: %w", c.protocol, c.duty, c.seed, rs[i].Err)
		}
	}

	cw := csv.NewWriter(w)
	header := []string{
		"protocol", "duty", "period", "seed",
		"mean_delay", "p50_delay", "p99_delay",
		"transmissions", "failures", "loss", "collision", "busy", "sync", "jam",
		"overheard", "crashes", "reboots", "total_slots", "completed",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range rs {
		if err := cw.Write(row(cells[i], rs[i].Res)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// row formats one finished cell as a CSV record.
func row(c cell, res *sim.Result) []string {
	var delays []float64
	for _, d := range res.Delay {
		if d >= 0 {
			delays = append(delays, float64(d))
		}
	}
	p50, p99 := "", ""
	if len(delays) > 0 {
		p50 = fmt.Sprintf("%.1f", stats.Percentile(delays, 50))
		p99 = fmt.Sprintf("%.1f", stats.Percentile(delays, 99))
	}
	return []string{
		res.Protocol,
		fmt.Sprintf("%.4f", c.duty),
		fmt.Sprintf("%d", schedule.PeriodForDuty(c.duty)),
		fmt.Sprintf("%d", c.seed),
		fmt.Sprintf("%.1f", res.MeanDelay()),
		p50,
		p99,
		fmt.Sprintf("%d", res.Transmissions),
		fmt.Sprintf("%d", res.Failures()),
		fmt.Sprintf("%d", res.LossFailures),
		fmt.Sprintf("%d", res.CollisionFailures),
		fmt.Sprintf("%d", res.BusyFailures),
		fmt.Sprintf("%d", res.SyncFailures),
		fmt.Sprintf("%d", res.JamFailures),
		fmt.Sprintf("%d", res.Overheard),
		fmt.Sprintf("%d", res.Crashes),
		fmt.Sprintf("%d", res.Reboots),
		fmt.Sprintf("%d", res.TotalSlots),
		fmt.Sprintf("%v", res.Completed),
	}
}

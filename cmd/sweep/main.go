// Command sweep runs a protocol × duty-cycle × seed grid of flooding
// simulations and writes one CSV row per run — the batch front-end for
// custom analyses beyond the canned figures.
//
// Usage:
//
//	sweep [-protocols opt,dbao,of] [-duties 0.02,0.05,0.1,0.2] [-seeds 3]
//	      [-m 100] [-coverage 0.99] [-toposeed 1] [-syncerr 0]
//	      [-out results.csv] [-parallel 0]
//
// Columns: protocol, duty, period, seed, mean_delay, p50_delay, p99_delay,
// transmissions, failures, loss, collision, busy, sync, overheard,
// total_slots, completed.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"ldcflood/internal/flood"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/stats"
	"ldcflood/internal/topology"
)

func main() {
	var (
		protocols = flag.String("protocols", "opt,dbao,of", "comma-separated protocol names")
		duties    = flag.String("duties", "0.02,0.05,0.10,0.20", "comma-separated duty cycles")
		seeds     = flag.Int("seeds", 1, "number of seeds per cell (0..seeds-1)")
		m         = flag.Int("m", 100, "packets per flood")
		coverage  = flag.Float64("coverage", 0.99, "delivery-ratio target")
		topoSeed  = flag.Uint64("toposeed", 1, "synthetic GreenOrbs topology seed")
		syncErr   = flag.Float64("syncerr", 0, "local-synchronization miss probability")
		out       = flag.String("out", "", "output CSV path (default stdout)")
		parallel  = flag.Int("parallel", 0, "concurrent runs (0 = GOMAXPROCS)")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := run(w, *protocols, *duties, *seeds, *m, *coverage, *topoSeed, *syncErr, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

type cell struct {
	protocol string
	duty     float64
	seed     uint64
}

func run(w io.Writer, protocolsCSV, dutiesCSV string, seeds, m int, coverage float64, topoSeed uint64, syncErr float64, parallel int) error {
	protocols := strings.Split(protocolsCSV, ",")
	for i := range protocols {
		protocols[i] = strings.TrimSpace(protocols[i])
		if _, err := flood.New(protocols[i]); err != nil {
			return err
		}
	}
	var duties []float64
	for _, d := range strings.Split(dutiesCSV, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(d), 64)
		if err != nil {
			return fmt.Errorf("bad duty %q: %v", d, err)
		}
		if v <= 0 || v > 1 {
			return fmt.Errorf("duty %v outside (0,1]", v)
		}
		duties = append(duties, v)
	}
	if seeds < 1 {
		return fmt.Errorf("need at least one seed")
	}
	if m < 1 {
		return fmt.Errorf("need m >= 1")
	}
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}

	g := topology.GreenOrbs(topoSeed)
	var cells []cell
	for _, p := range protocols {
		for _, d := range duties {
			for s := 0; s < seeds; s++ {
				cells = append(cells, cell{protocol: p, duty: d, seed: uint64(s)})
			}
		}
	}

	rows := make([][]string, len(cells))
	errs := make([]error, len(cells))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rows[i], errs[i] = runCell(g, c, m, coverage, syncErr)
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	cw := csv.NewWriter(w)
	header := []string{
		"protocol", "duty", "period", "seed",
		"mean_delay", "p50_delay", "p99_delay",
		"transmissions", "failures", "loss", "collision", "busy", "sync",
		"overheard", "total_slots", "completed",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func runCell(g *topology.Graph, c cell, m int, coverage, syncErr float64) ([]string, error) {
	p, err := flood.New(c.protocol)
	if err != nil {
		return nil, err
	}
	period := schedule.PeriodForDuty(c.duty)
	scheds := schedule.AssignUniform(g.N(), period, rngutil.New(c.seed).SubName("schedule"))
	res, err := sim.Run(sim.Config{
		Graph:         g,
		Schedules:     scheds,
		Protocol:      p,
		M:             m,
		Coverage:      coverage,
		Seed:          c.seed,
		SyncErrorProb: syncErr,
	})
	if err != nil {
		return nil, fmt.Errorf("%s at duty %v seed %d: %w", c.protocol, c.duty, c.seed, err)
	}
	var delays []float64
	for _, d := range res.Delay {
		if d >= 0 {
			delays = append(delays, float64(d))
		}
	}
	p50, p99 := "", ""
	if len(delays) > 0 {
		p50 = fmt.Sprintf("%.1f", stats.Percentile(delays, 50))
		p99 = fmt.Sprintf("%.1f", stats.Percentile(delays, 99))
	}
	return []string{
		res.Protocol,
		fmt.Sprintf("%.4f", c.duty),
		fmt.Sprintf("%d", period),
		fmt.Sprintf("%d", c.seed),
		fmt.Sprintf("%.1f", res.MeanDelay()),
		p50,
		p99,
		fmt.Sprintf("%d", res.Transmissions),
		fmt.Sprintf("%d", res.Failures()),
		fmt.Sprintf("%d", res.LossFailures),
		fmt.Sprintf("%d", res.CollisionFailures),
		fmt.Sprintf("%d", res.BusyFailures),
		fmt.Sprintf("%d", res.SyncFailures),
		fmt.Sprintf("%d", res.Overheard),
		fmt.Sprintf("%d", res.TotalSlots),
		fmt.Sprintf("%v", res.Completed),
	}, nil
}

// Command sweep runs a protocol × duty-cycle × seed grid of flooding
// simulations and writes one CSV row per run — the batch front-end for
// custom analyses beyond the canned figures.
//
// Usage:
//
//	sweep [-protocols opt,dbao,of] [-duties 0.02,0.05,0.1,0.2] [-seeds 3]
//	      [-m 100] [-coverage 0.99] [-toposeed 1] [-syncerr 0]
//	      [-faults spec.json] [-compact]
//	      [-journal sweep.journal] [-resume] [-retries 0] [-backoff 1s]
//	      [-out results.csv] [-parallel 0] [-timeout 0] [-progress]
//	      [-trace-dir DIR] [-trace-format text|bin]
//	      [-debug-addr :8080] [-stats]
//
// The grid executes on the internal/runner batch executor: -parallel
// bounds the worker pool, a failing cell (panic or -timeout overrun)
// reports a typed job error naming the cell, and the CSV is byte-identical
// for every -parallel value.
//
// -progress prints a throttled structured line (jobs done/total, failures,
// slots/sec, ETA) to stderr. -debug-addr serves the live telemetry
// snapshot (expvar-compatible /debug/vars) and net/http/pprof on the given
// address for the duration of the sweep; -stats prints the final counter
// table to stderr. Both observe the simulation without affecting it — the
// CSV stays byte-identical. See docs/OBSERVABILITY.md.
//
// -trace-dir writes one full event trace per cell into the directory
// (created if missing), named <protocol>_duty<duty>_seed<seed> with a
// .trace (text) or .tracebin (binary) extension; -trace-format selects
// the encoding (default text). Binary traces are several times smaller
// and convert losslessly with cmd/tracecat — see docs/TRACE.md. Tracing
// observes the simulation without affecting it: the CSV stays
// byte-identical, and so do the trace bytes for every -parallel and
// -workers value within the same engine family.
//
// -faults applies a JSON fault schedule (see internal/fault) to every
// cell; -compact opts into the compact-time fast path, which silently
// falls back per-run when the schedule is dynamic. -journal checkpoints
// each finished run to a JSON-lines file, and -resume replays a prior
// journal so a killed sweep restarts where it left off — the resumed CSV
// is byte-identical to an uninterrupted run. The journal is keyed to the
// full grid definition (including the fault spec), so resuming with
// different parameters fails instead of mixing sweeps. -retries re-runs
// cells that fail retryably (timeout, panic) with exponential -backoff.
//
// Columns: protocol, duty, period, seed, mean_delay, p50_delay, p99_delay,
// transmissions, failures, loss, collision, busy, sync, jam, overheard,
// crashes, reboots, total_slots, completed.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"ldcflood/internal/runner"
	"ldcflood/internal/service"
	"ldcflood/internal/telemetry"
	"ldcflood/internal/tracebin"
	"ldcflood/internal/tracelog"
)

func main() {
	var (
		protocols = flag.String("protocols", "opt,dbao,of", "comma-separated protocol names")
		duties    = flag.String("duties", "0.02,0.05,0.10,0.20", "comma-separated duty cycles")
		seeds     = flag.Int("seeds", 1, "number of seeds per cell (0..seeds-1)")
		m         = flag.Int("m", 100, "packets per flood")
		coverage  = flag.Float64("coverage", 0.99, "delivery-ratio target")
		topoSeed  = flag.Uint64("toposeed", 1, "synthetic GreenOrbs topology seed")
		syncErr   = flag.Float64("syncerr", 0, "local-synchronization miss probability")
		faults    = flag.String("faults", "", "JSON fault-schedule file applied to every cell (see internal/fault)")
		compact   = flag.Bool("compact", false, "use the compact-time fast path (falls back per-run for dynamic fault schedules)")
		journal   = flag.String("journal", "", "checkpoint finished runs to this JSON-lines file")
		resume    = flag.Bool("resume", false, "resume from an existing -journal, skipping already-completed runs")
		retries   = flag.Int("retries", 0, "re-run a retryably failing cell (timeout, panic) up to this many times")
		backoff   = flag.Duration("backoff", time.Second, "base delay before the first retry, doubling per attempt")
		out       = flag.String("out", "", "output CSV path (default stdout)")
		parallel  = flag.Int("parallel", 0, "batch-runner workers (0 = GOMAXPROCS); the CSV is identical for every value")
		workers   = flag.Int("workers", 0, "per-run shard workers: 0 = historical serial engine, >= 1 = sharded deterministic mode (identical results for every count), -1 = auto-split the machine between batch and shard workers")
		timeout   = flag.Duration("timeout", 0, "per-run wall-clock budget (0 = none); an overrunning cell fails with a typed timeout error")
		progress  = flag.Bool("progress", false, "print live batch progress to stderr")
		traceDir  = flag.String("trace-dir", "", "write one event trace per cell into this directory (created if missing)")
		traceFmt  = flag.String("trace-format", "text", "trace encoding for -trace-dir: 'text' (tracelog) or 'bin' (compact binary, docs/TRACE.md)")
		debugAddr = flag.String("debug-addr", "", "serve live telemetry (/debug/vars) and pprof on this address during the sweep (e.g. :8080, :0 for an ephemeral port)")
		statsFlag = flag.Bool("stats", false, "print the final telemetry counter table to stderr")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	cfg := sweepConfig{
		protocolsCSV: *protocols,
		dutiesCSV:    *duties,
		seeds:        *seeds,
		m:            *m,
		coverage:     *coverage,
		topoSeed:     *topoSeed,
		syncErr:      *syncErr,
		faultsPath:   *faults,
		compact:      *compact,
		journalPath:  *journal,
		resume:       *resume,
		retries:      *retries,
		backoff:      *backoff,
		parallel:     *parallel,
		workers:      *workers,
		timeout:      *timeout,
		traceDir:     *traceDir,
		traceFormat:  *traceFmt,
		debugAddr:    *debugAddr,
	}
	if *progress {
		cfg.progress = os.Stderr
	}
	if *statsFlag {
		cfg.statsOut = os.Stderr
	}
	if err := run(w, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

type sweepConfig struct {
	protocolsCSV string
	dutiesCSV    string
	seeds        int
	m            int
	coverage     float64
	topoSeed     uint64
	syncErr      float64
	faultsPath   string // JSON fault schedule, "" for a clean sweep
	compact      bool
	journalPath  string // "" disables checkpointing
	resume       bool
	retries      int
	backoff      time.Duration
	parallel     int
	workers      int // sim.Config.Workers; -1 = auto-split with the batch runner
	timeout      time.Duration
	traceDir     string    // "" disables per-cell trace files
	traceFormat  string    // "text" or "bin"; only read when traceDir is set
	progress     io.Writer // nil disables progress reporting
	debugAddr    string    // "" disables the /debug/vars + pprof server
	statsOut     io.Writer // nil disables the final telemetry table
	// debugReady, when non-nil, receives the debug server's base URL once
	// it is listening — tests use it to curl the endpoints mid-sweep.
	debugReady func(url string)
}

// spec translates the flag set into the shared service.Spec — the same
// surface POST /v1/jobs validates — so a flag sweep and an HTTP job
// compile to the identical grid, journal key, and CSV bytes.
func (sc sweepConfig) spec() (service.Spec, error) {
	spec := service.Spec{
		Protocols: strings.Split(sc.protocolsCSV, ","),
		Seeds:     sc.seeds,
		M:         sc.m,
		Coverage:  sc.coverage,
		TopoSeed:  sc.topoSeed,
		SyncErr:   sc.syncErr,
		Compact:   sc.compact,
		Workers:   sc.workers,
		Parallel:  sc.parallel,
		Timeout:   service.Duration(sc.timeout),
		Retries:   sc.retries,
		Backoff:   service.Duration(sc.backoff),
	}
	for _, d := range strings.Split(sc.dutiesCSV, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(d), 64)
		if err != nil {
			return spec, fmt.Errorf("bad duty %q: %v", d, err)
		}
		spec.Duties = append(spec.Duties, v)
	}
	if sc.faultsPath != "" {
		faultJSON, err := os.ReadFile(sc.faultsPath)
		if err != nil {
			return spec, err
		}
		spec.Faults = faultJSON
	}
	return spec, nil
}

// diagnoseResume upgrades a -resume journal-open failure into an
// actionable message when the journal is recognizably from an older sweep
// release. Pre-canonicalization releases keyed the journal with the duty
// axis exactly as typed ("0.10,0.20"), so resuming such a journal with a
// current binary always fails the key check even though its records are
// valid results for the same grid. Any other failure is returned as-is.
func diagnoseResume(err error, path, want string) error {
	stored, kerr := runner.ReadJournalKey(path)
	if kerr != nil || !service.LegacyJournalKey(stored, want) {
		return err
	}
	return fmt.Errorf("%v\n"+
		"the journal was written by an older sweep release that keyed the grid with duties exactly as typed (%q); "+
		"current releases canonicalize duty formatting, so the key can never match even though the journal's records "+
		"are valid for this grid. Either re-run without -resume to recompute into a fresh journal, or migrate this one "+
		"by replacing the \"key\" field on its first line with %q and resuming again", err, stored, want)
}

func run(w io.Writer, sc sweepConfig) error {
	spec, err := sc.spec()
	if err != nil {
		return err
	}
	grid, err := service.Compile(spec)
	if err != nil {
		return err
	}
	jobs := grid.Jobs

	ropts := grid.Options()
	var reg *telemetry.Registry
	if sc.debugAddr != "" || sc.statsOut != nil {
		reg = telemetry.New()
		ropts.Telemetry = reg
		for i := range jobs {
			jobs[i].Telemetry = reg
		}
		if sc.debugAddr != "" {
			srv, err := telemetry.Serve(sc.debugAddr, reg)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "sweep: telemetry: serving debug endpoints on %s\n", srv.URL())
			if sc.debugReady != nil {
				sc.debugReady(srv.URL())
			}
		}
		if sc.statsOut != nil {
			defer func() {
				if err := reg.Snapshot().WriteTable(sc.statsOut); err != nil {
					fmt.Fprintln(os.Stderr, "sweep: warning:", err)
				}
			}()
		}
	}
	var flushTraces []func() error
	if sc.traceDir != "" {
		var ext string
		switch sc.traceFormat {
		case "":
			sc.traceFormat = "text"
			fallthrough
		case "text":
			ext = "trace"
		case "bin":
			ext = "tracebin"
		default:
			return fmt.Errorf("unknown -trace-format %q (want 'text' or 'bin')", sc.traceFormat)
		}
		if err := os.MkdirAll(sc.traceDir, 0o755); err != nil {
			return err
		}
		for i := range jobs {
			c := grid.Cells[i]
			name := fmt.Sprintf("%s_duty%.4f_seed%d.%s", c.Protocol, c.Duty, c.Seed, ext)
			f, err := os.Create(filepath.Join(sc.traceDir, name))
			if err != nil {
				return err
			}
			defer f.Close()
			if sc.traceFormat == "text" {
				l := tracelog.NewLogger(f)
				jobs[i].Observer = l
				flushTraces = append(flushTraces, l.Flush)
			} else {
				bw := tracebin.NewWriter(f)
				if reg != nil {
					bw.Instrument(reg)
				}
				jobs[i].Observer = bw
				flushTraces = append(flushTraces, bw.Flush)
			}
		}
	}
	if sc.journalPath != "" {
		j, err := runner.OpenJournal(sc.journalPath, grid.JournalKey(), sc.resume)
		if err != nil {
			if sc.resume {
				return diagnoseResume(err, sc.journalPath, grid.JournalKey())
			}
			return err
		}
		defer j.Close()
		ropts.Journal = j
		defer func() {
			if err := j.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "sweep: warning:", err)
			}
		}()
	} else if sc.resume {
		return fmt.Errorf("-resume needs -journal")
	}
	if sc.progress != nil {
		ropts.Progress = runner.ProgressPrinter(sc.progress, time.Second)
	}
	rs, _ := runner.Run(context.Background(), jobs, ropts)
	for _, flush := range flushTraces {
		if err := flush(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	return grid.WriteCSV(w, rs)
}

package main

import "testing"

func TestRunAnalyticMaximize(t *testing.T) {
	if err := run("dbao", 10, true, 0, 0.01, 0.5, 1, 1, 0.05); err != nil {
		t.Fatal(err)
	}
}

func TestRunAnalyticBudget(t *testing.T) {
	if err := run("dbao", 10, true, 1000, 0.01, 0.5, 1, 1, 0.05); err != nil {
		t.Fatal(err)
	}
	// Impossible budget.
	if err := run("dbao", 10, true, 1, 0.01, 0.5, 1, 1, 0.05); err == nil {
		t.Fatal("impossible budget accepted")
	}
}

func TestRunSimulationBacked(t *testing.T) {
	if err := run("opt", 5, false, 300, 0.02, 0.5, 1, 1, 0.05); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadProtocol(t *testing.T) {
	// Simulation-backed mode resolves the protocol lazily inside the delay
	// function; a bogus name must surface as an error.
	if err := run("bogus", 5, false, 0, 0.02, 0.5, 1, 1, 0.05); err == nil {
		t.Fatal("bogus protocol accepted")
	}
}

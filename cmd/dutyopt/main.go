// Command dutyopt configures the duty cycle — the paper's first
// future-work direction. It drives the duty-cycle optimizer against the
// simulator (or the analytic Section IV-B model) and prints the
// gain-maximizing duty cycle plus the full gain curve, or, with -budget,
// the minimum duty meeting a flooding-delay budget.
//
// Usage:
//
//	dutyopt [-protocol dbao] [-m 20] [-analytic] [-budget 0]
//	        [-minduty 0.01] [-maxduty 0.5] [-toposeed 1] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"ldcflood/internal/asciichart"
	"ldcflood/internal/experiments"
	"ldcflood/internal/optimize"
	"ldcflood/internal/topology"
)

func main() {
	var (
		protocol = flag.String("protocol", "dbao", "protocol whose delay drives the optimization")
		m        = flag.Int("m", 20, "packets per flood")
		analytic = flag.Bool("analytic", false, "use the Section IV-B analytic delay model instead of simulation")
		budget   = flag.Float64("budget", 0, "flooding-delay budget in slots (0 = maximize gain instead)")
		minDuty  = flag.Float64("minduty", 0.01, "lower duty bracket")
		maxDuty  = flag.Float64("maxduty", 0.5, "upper duty bracket")
		topoSeed = flag.Uint64("toposeed", 1, "synthetic GreenOrbs topology seed")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		txRate   = flag.Float64("txrate", 0.05, "per-node transmissions/second for the lifetime model")
	)
	flag.Parse()
	if err := run(*protocol, *m, *analytic, *budget, *minDuty, *maxDuty, *topoSeed, *seed, *txRate); err != nil {
		fmt.Fprintln(os.Stderr, "dutyopt:", err)
		os.Exit(1)
	}
}

func run(protocol string, m int, analytic bool, budget, minDuty, maxDuty float64, topoSeed, seed uint64, txRate float64) error {
	var delay optimize.DelayFunc
	if analytic {
		g := topology.GreenOrbs(topoSeed)
		d, err := optimize.AnalyticDelay(g.N()-1, g.MeanLinkPRR(), 0.99, m)
		if err != nil {
			return err
		}
		delay = d
		fmt.Printf("delay model: analytic (Section IV-B, mean PRR %.2f)\n", g.MeanLinkPRR())
	} else {
		opts := experiments.QuickSimOptions()
		opts.M = m
		opts.TopoSeed = topoSeed
		opts.Seed = seed
		delay = experiments.SimDelayFunc(protocol, opts)
		fmt.Printf("delay model: simulation (%s, M=%d, GreenOrbs seed %d)\n", protocol, m, topoSeed)
	}
	cfg := optimize.Config{
		TxPerSecond: txRate,
		MinDuty:     minDuty,
		MaxDuty:     maxDuty,
		Samples:     10,
		Refinements: 8,
	}
	if budget > 0 {
		p, err := optimize.MinDutyForDelayBudget(cfg, delay, budget)
		if err != nil {
			return err
		}
		fmt.Printf("delay budget %.0f slots:\n", budget)
		fmt.Printf("  minimum duty %.2f%% (period %d slots)\n", p.Duty*100, p.Period)
		fmt.Printf("  delay %.0f slots, lifetime %.0f days\n", p.Delay, p.Lifetime/86400)
		return nil
	}
	res, err := optimize.Maximize(cfg, delay)
	if err != nil {
		return err
	}
	rows := make([][]string, 0, len(res.Curve))
	var xs, ys []float64
	for _, p := range res.Curve {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f%%", p.Duty*100),
			fmt.Sprintf("%d", p.Period),
			fmt.Sprintf("%.0f", p.Delay),
			fmt.Sprintf("%.0f", p.Lifetime/86400),
			fmt.Sprintf("%.0f", p.Gain),
		})
		xs = append(xs, p.Duty*100)
		ys = append(ys, p.Gain)
	}
	fmt.Println(asciichart.Table([]string{"duty", "period", "delay/slots", "lifetime/days", "gain"}, rows))
	chart := asciichart.Chart{Title: "networking gain vs duty cycle", XLabel: "duty (%)", YLabel: "gain", Width: 60, Height: 12}
	if err := chart.Add("gain", xs, ys); err == nil {
		fmt.Println(chart.Render())
	}
	fmt.Printf("optimum: duty %.2f%% (period %d) — delay %.0f slots, lifetime %.0f days, gain %.0f\n",
		res.Best.Duty*100, res.Best.Period, res.Best.Delay, res.Best.Lifetime/86400, res.Best.Gain)
	return nil
}

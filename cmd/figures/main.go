// Command figures regenerates the tables and figures of the paper's
// evaluation (Table I and Figures 3, 5, 6, 7, 8, 9, 10, 11) as text charts
// and data tables.
//
// Usage:
//
//	figures [-fig all|fig3,table1,fig5,...] [-quick] [-m 100] [-runs 1]
//	        [-toposeed 1] [-seed 1] [-workers 0] [-progress]
//
// Analytic figures are exact; simulation figures (8-11) run the simulator
// on the synthetic GreenOrbs topology. -quick cuts the simulated workload
// (M=20, four duty points) while preserving every qualitative shape. The
// simulation sweeps execute on the internal/runner batch executor:
// -workers bounds the pool (results never depend on it) and -progress
// prints a throttled jobs/ETA/throughput line to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ldcflood/internal/experiments"
	"ldcflood/internal/runner"
)

func main() {
	var (
		figFlag  = flag.String("fig", "all", "comma-separated figure ids (fig3, table1, fig5-fig11, gw, halfduplex, crosslayer, granularity, nodecdf, syncerr, hetero, backlog, robustness, adaptive, faults, scale), 'all' (paper figures) or 'extensions'")
		quick    = flag.Bool("quick", false, "cut-down simulation effort (M=20, 4 duty points)")
		m        = flag.Int("m", 0, "packets per flood (default: 100, or 20 with -quick)")
		runs     = flag.Int("runs", 1, "independent runs to average per configuration")
		topoSeed = flag.Uint64("toposeed", 1, "synthetic GreenOrbs topology seed")
		seed     = flag.Uint64("seed", 1, "simulation seed (schedules + link loss)")
		outDir   = flag.String("out", "", "write each figure to <dir>/<id>.txt instead of stdout")
		workers  = flag.Int("workers", 0, "batch-runner workers for simulation sweeps (0 = GOMAXPROCS); results never depend on it")
		progress = flag.Bool("progress", false, "print live batch progress to stderr during simulation sweeps")
	)
	flag.Parse()

	opts := experiments.PaperSimOptions()
	if *quick {
		opts = experiments.QuickSimOptions()
	}
	if *m > 0 {
		opts.M = *m
	}
	opts.Runs = *runs
	opts.TopoSeed = *topoSeed
	opts.Seed = *seed
	opts.Workers = *workers
	if *progress {
		opts.Progress = runner.ProgressPrinter(os.Stderr, time.Second)
	}

	if err := run(*figFlag, opts, *outDir); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(figFlag string, opts experiments.SimOptions, outDir string) error {
	emit := func(fd *experiments.FigureData) error {
		if outDir == "" {
			fmt.Println(fd.Render())
			return nil
		}
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(outDir, fd.ID+".txt"), []byte(fd.Render()), 0o644)
	}
	switch figFlag {
	case "all":
		figs, err := experiments.All(opts)
		for _, fd := range figs {
			if e := emit(fd); e != nil {
				return e
			}
		}
		return err
	case "extensions":
		figs, err := experiments.AllExtensions(opts)
		for _, fd := range figs {
			if e := emit(fd); e != nil {
				return e
			}
		}
		return err
	}
	for _, id := range strings.Split(figFlag, ",") {
		fd, err := one(strings.TrimSpace(strings.ToLower(id)), opts)
		if err != nil {
			return err
		}
		if err := emit(fd); err != nil {
			return err
		}
	}
	return nil
}

func one(id string, opts experiments.SimOptions) (*experiments.FigureData, error) {
	switch id {
	case "fig3", "3":
		return experiments.Fig3()
	case "table1", "tablei", "t1":
		return experiments.TableI()
	case "fig5", "5":
		return experiments.Fig5()
	case "fig6", "6":
		return experiments.Fig6()
	case "fig7", "7":
		return experiments.Fig7()
	case "fig8", "8":
		return experiments.Fig8(opts.TopoSeed)
	case "fig9", "9":
		return experiments.Fig9(opts)
	case "fig10", "10":
		f10, _, err := experiments.Fig10And11(opts)
		return f10, err
	case "fig11", "11":
		_, f11, err := experiments.Fig10And11(opts)
		return f11, err
	case "crosslayer":
		// Beyond the paper: the Section VI cross-layer future-work sweep.
		return experiments.CrossLayer(opts)
	case "granularity":
		// Beyond the paper: schedule granularity at fixed duty ratio.
		return experiments.ScheduleGranularity(opts)
	case "nodecdf":
		// Beyond the paper: per-node reception-delay distribution.
		return experiments.NodeDelayCDF(opts)
	case "syncerr":
		// Beyond the paper: local-synchronization sensitivity.
		return experiments.SyncError(opts)
	case "halfduplex":
		// Section IV-A2: the cost of splitting type-2 slots.
		return experiments.HalfDuplex()
	case "hetero":
		// Section IV-B: the heterogeneous-link case, by simulation.
		return experiments.Heterogeneity(opts)
	case "backlog":
		// Section IV-B/V: the source-queue blow-up under saturation.
		return experiments.Backlog(opts)
	case "robustness":
		// Beyond the paper: the conclusions on a second deployment.
		return experiments.Robustness(opts)
	case "gw":
		// Lemma 1 illustrated: normalized branching-process sample paths.
		return experiments.GaltonWatson()
	case "adaptive":
		// DutyCon-style dynamic duty control vs static configuration.
		return experiments.Adaptive(opts)
	case "faults":
		// Resilience under scripted fault injection (internal/fault).
		return experiments.Faults(opts)
	case "scale":
		// Timer-protocol message load vs network size (300 → 100k nodes,
		// density-preserving scaled GreenOrbs) against the Meyfroyt et al.
		// constant-per-node Trickle prediction.
		return experiments.TrickleScalability(opts)
	default:
		return nil, fmt.Errorf("unknown figure %q (fig3, table1, fig5-fig11, gw, halfduplex, crosslayer, granularity, nodecdf, syncerr, hetero, backlog, robustness, adaptive, faults, scale)", id)
	}
}

package main

import (
	"os"
	"path/filepath"
	"testing"

	"ldcflood/internal/experiments"
)

func testOpts() experiments.SimOptions {
	o := experiments.QuickSimOptions()
	o.M = 5
	o.Duties = []float64{0.10, 0.20}
	return o
}

func TestOneResolvesAllIDs(t *testing.T) {
	ids := []string{
		"fig3", "3", "table1", "tablei", "t1",
		"fig5", "5", "fig6", "6", "fig7", "7", "fig8", "8",
	}
	for _, id := range ids {
		fd, err := one(id, testOpts())
		if err != nil {
			t.Fatalf("one(%q): %v", id, err)
		}
		if fd == nil || fd.ID == "" {
			t.Fatalf("one(%q) returned empty figure", id)
		}
	}
}

func TestOneSimulationFigures(t *testing.T) {
	for _, id := range []string{"fig9", "fig10", "fig11"} {
		fd, err := one(id, testOpts())
		if err != nil {
			t.Fatalf("one(%q): %v", id, err)
		}
		if len(fd.Series) == 0 {
			t.Fatalf("one(%q) has no series", id)
		}
	}
}

func TestOneUnknownID(t *testing.T) {
	if _, err := one("fig99", testOpts()); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRunCommaList(t *testing.T) {
	if err := run("fig5, fig6", testOpts(), ""); err != nil {
		t.Fatal(err)
	}
	if err := run("bogus", testOpts(), ""); err == nil {
		t.Fatal("bogus list accepted")
	}
}

func TestRunWritesFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run("fig5,fig7", testOpts(), dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig5.txt", "fig7.txt"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 100 {
			t.Fatalf("%s too small (%d bytes)", name, len(data))
		}
	}
}

func TestRunExtensionIDs(t *testing.T) {
	opts := testOpts()
	for _, id := range []string{"halfduplex"} {
		fd, err := one(id, opts)
		if err != nil {
			t.Fatalf("one(%q): %v", id, err)
		}
		if fd.ID != id {
			t.Fatalf("id mismatch: %q", fd.ID)
		}
	}
}

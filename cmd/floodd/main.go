// Command floodd is the simulation-as-a-service daemon: a long-running
// HTTP server that accepts sweep specifications as JSON jobs, schedules
// them one at a time on the internal/runner batch executor, streams
// progress as server-sent events, and serves the finished CSV artifacts.
// Every job is journal-backed on disk, so killing the daemon mid-job and
// restarting it resumes the sweep byte-identically (docs/SERVICE.md
// documents the API, the job spec schema, and the resume semantics).
//
// Usage:
//
//	floodd [-addr 127.0.0.1:8080] [-dir floodd-data] [-queue 16]
//	       [-job-timeout 0] [-drain-timeout 30s]
//	       [-distributed] [-chunk 4] [-lease-ttl 15s] [-lease-attempts 5]
//	       [-local-grace 0]
//
// Endpoints:
//
//	POST   /v1/jobs              submit a sweep spec (JSON), 201 + status
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         job status (state, progress, ETA)
//	GET    /v1/jobs/{id}/events  live progress stream (SSE)
//	GET    /v1/jobs/{id}/result  result CSV (?format=json for rows)
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	GET    /v1/work              job currently accepting leases (-distributed)
//	POST   /v1/jobs/{id}/lease   claim a chunk; heartbeat and complete
//	                             sub-resources renew it and report results
//	GET    /healthz              liveness (503 while draining)
//	GET    /debug/vars           telemetry: floodd.* + per-job job.<id>.*
//	GET    /debug/pprof/         live profiling
//
// With -distributed, jobs execute through the worker-pull lease protocol
// (docs/SERVICE.md, "Distributed sweeps"): remote floodworker processes
// claim chunks of the sweep over HTTP, heartbeat while simulating, and
// report results the daemon journals. The daemon's own local executor
// completes any job no worker picks up, so -distributed with zero
// workers behaves like a plain daemon — and the result CSV is
// byte-identical either way.
//
// On SIGINT/SIGTERM the daemon drains: it stops accepting jobs, cancels
// the active batch with the runner's shutdown cause (the job stays
// resumable, not canceled), and exits once the scheduler settles or
// -drain-timeout expires. The announced listen URL is printed to stderr
// as "floodd: serving on http://..." so scripts can scrape it when
// -addr uses port 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ldcflood/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; use :0 for an ephemeral port)")
		dir          = flag.String("dir", "floodd-data", "job state root: one journal-backed directory per job, resumed on restart")
		queue        = flag.Int("queue", 16, "bounded job queue: max queued+running jobs before submissions get 429")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-job wall-clock budget covering the whole sweep (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain may take before forced exit")

		distributed   = flag.Bool("distributed", false, "execute jobs via the worker-pull lease protocol (floodworker clients)")
		chunk         = flag.Int("chunk", 4, "distributed: cells per lease")
		leaseTTL      = flag.Duration("lease-ttl", 15*time.Second, "distributed: lease lifetime between heartbeats")
		leaseAttempts = flag.Int("lease-attempts", 5, "distributed: per-chunk attempts before poisoning the job")
		localGrace    = flag.Duration("local-grace", 0, "distributed: head start workers get before the daemon simulates chunks itself")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage: floodd [flags]

The simulation job daemon: POST sweep specs to /v1/jobs, watch
/v1/jobs/{id}/events, fetch /v1/jobs/{id}/result. Jobs are journal-backed
under -dir and resume byte-identically after a kill. See docs/SERVICE.md.

flags:
`)
		flag.PrintDefaults()
	}
	flag.Parse()
	lo := service.LeaseOptions{
		Enabled:     *distributed,
		ChunkSize:   *chunk,
		TTL:         *leaseTTL,
		MaxAttempts: *leaseAttempts,
		LocalGrace:  *localGrace,
	}
	if err := run(*addr, *dir, *queue, *jobTimeout, *drainTimeout, lo); err != nil {
		fmt.Fprintln(os.Stderr, "floodd:", err)
		os.Exit(1)
	}
}

// run starts the service and HTTP server, then blocks until a signal
// drains them.
func run(addr, dir string, queue int, jobTimeout, drainTimeout time.Duration, lo service.LeaseOptions) error {
	svc, err := service.New(service.Options{
		Dir:        dir,
		QueueLimit: queue,
		JobTimeout: jobTimeout,
		Lease:      lo,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "floodd: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 5 * time.Second}
	fmt.Fprintf(os.Stderr, "floodd: serving on %s\n", listenURL(ln))
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "floodd: %v: draining\n", sig)
	case err := <-errc:
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainErr := svc.Drain(ctx)
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w (unfinished jobs will resume on restart)", drainErr)
	}
	fmt.Fprintln(os.Stderr, "floodd: drained")
	return nil
}

// listenURL renders ln's bound address as a dialable http URL, mapping
// wildcard hosts to localhost (the telemetry.Server convention).
func listenURL(ln net.Listener) string {
	host, port, err := net.SplitHostPort(ln.Addr().String())
	if err != nil {
		return "http://" + ln.Addr().String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "localhost"
	}
	return "http://" + net.JoinHostPort(host, port)
}

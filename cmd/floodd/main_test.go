package main

// End-to-end daemon tests: run() against a real listener, submit a job
// over HTTP, drain via the signal path. The doc-sync checks pin the
// package comment's endpoint table and the flag set to docs/SERVICE.md
// (satellite: -help and the doc must not drift apart).

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"ldcflood/internal/service"
)

// TestRunServesAndDrains boots the daemon on an ephemeral port, submits
// a tiny job, waits for the result, and SIGTERMs the process group path
// by signalling ourselves — run() must drain and return nil.
func TestRunServesAndDrains(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	done := make(chan error, 1)
	go func() {
		done <- run(addr, t.TempDir(), 4, 0, 30*time.Second, service.LeaseOptions{})
	}()

	base := "http://" + addr
	// Wait for the listener.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	spec := `{"protocols":["opt"],"duties":[0.1],"seeds":1,"m":5}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/jobs = %d: %s", resp.StatusCode, body.String())
	}
	loc := resp.Header.Get("Location")

	deadline = time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + loc + "/result")
		if err != nil {
			t.Fatal(err)
		}
		ok := resp.StatusCode == http.StatusOK
		var csv bytes.Buffer
		csv.ReadFrom(resp.Body)
		resp.Body.Close()
		if ok {
			if !strings.HasPrefix(csv.String(), "protocol,") {
				t.Fatalf("result is not the sweep CSV:\n%s", csv.String())
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The signal path: SIGTERM to our own process reaches run()'s
	// signal.Notify; it must drain and exit cleanly.
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain within 30s")
	}
}

// TestDocEndpointTableMatchesService pins the package comment's endpoint
// table and docs/SERVICE.md to the mux: every route the handler serves
// must appear in both, so -help, the doc, and the code cannot drift.
func TestDocEndpointTableMatchesService(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := os.ReadFile("../../docs/SERVICE.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, route := range []string{
		"POST /v1/jobs",
		"GET /v1/jobs",
		"GET /v1/jobs/{id}",
		"GET /v1/jobs/{id}/events",
		"GET /v1/jobs/{id}/result",
		"DELETE /v1/jobs/{id}",
		"GET /v1/work",
		"POST /v1/jobs/{id}/lease",
		"GET /healthz",
		"GET /debug/vars",
	} {
		method, path, _ := strings.Cut(route, " ")
		// The package comment uses aligned columns; collapse whitespace.
		squashed := strings.Join(strings.Fields(string(src)), " ")
		if !strings.Contains(squashed, method+" "+path) {
			t.Errorf("package comment missing endpoint %q", route)
		}
		if !bytes.Contains(doc, []byte(path)) {
			t.Errorf("docs/SERVICE.md missing endpoint path %q", path)
		}
	}
}

// TestFlagsDocumented pins every flag to docs/SERVICE.md's ops section.
func TestFlagsDocumented(t *testing.T) {
	doc, err := os.ReadFile("../../docs/SERVICE.md")
	if err != nil {
		t.Fatal(err)
	}
	// Keep this list in sync with main()'s flag declarations; the source
	// check below catches a rename, the doc check a stale SERVICE.md.
	for _, name := range []string{
		"-addr", "-dir", "-queue", "-job-timeout", "-drain-timeout",
		"-distributed", "-chunk", "-lease-ttl", "-lease-attempts", "-local-grace",
	} {
		if !bytes.Contains(doc, []byte("`"+name+"`")) {
			t.Errorf("docs/SERVICE.md missing flag %s", name)
		}
	}
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"addr", "dir", "queue", "job-timeout", "drain-timeout",
		"distributed", "chunk", "lease-ttl", "lease-attempts", "local-grace",
	} {
		if !bytes.Contains(src, []byte(fmt.Sprintf("%q", name))) {
			t.Errorf("main.go missing flag declaration %q", name)
		}
	}
}

// Command doccheck enforces the repository's godoc discipline: every
// exported package-level symbol (and every package) under the given
// directories must carry a doc comment, and every exported method of an
// exported interface must carry its own (the interface's doc comment does
// not excuse its methods — they are the contract). Exported consts and
// vars inside grouped declarations each need their own comment too — a
// group doc describes the family, not what any one member means. CI runs
// it over internal/ and cmd/; a missing comment fails the build with a
// file:line listing.
//
// The check is intentionally stdlib-only (go/parser + go/ast — no
// external linters): it verifies presence and placement of doc comments,
// not their style.
//
// Usage:
//
//	go run ./cmd/doccheck [dir ...]   (default: internal cmd)
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: doccheck [dir ...]   (default: internal cmd)")
	}
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"internal", "cmd"}
	}
	var problems []string
	for _, root := range roots {
		p, err := checkTree(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(1)
		}
		problems = append(problems, p...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported symbol(s)\n", len(problems))
		os.Exit(1)
	}
}

// checkTree walks root and returns one problem line per undocumented
// exported symbol (or undocumented package) found in non-test Go files.
func checkTree(root string) ([]string, error) {
	pkgFiles := map[string][]string{} // directory -> files
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		pkgFiles[dir] = append(pkgFiles[dir], path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var problems []string
	for dir, files := range pkgFiles {
		sort.Strings(files)
		fset := token.NewFileSet()
		hasPkgDoc := false
		for _, f := range files {
			file, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			if file.Doc != nil {
				hasPkgDoc = true
			}
			problems = append(problems, checkFile(fset, file)...)
		}
		if !hasPkgDoc {
			problems = append(problems, fmt.Sprintf("%s: package has no package doc comment", dir))
		}
	}
	return problems, nil
}

// checkFile reports exported package-level declarations without a doc
// comment. A declaration-level comment covers a lone spec; inside a
// multi-spec const/var group each exported member needs its own comment
// (grouped types always do). Methods of an exported interface are part of
// its contract, so each exported method must carry its own comment — the
// type's doc does not cover them.
func checkFile(fset *token.FileSet, file *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			name := d.Name.Name
			if d.Recv != nil {
				recv, exported := receiverType(d.Recv)
				if !exported {
					continue
				}
				name = recv + "." + name
			}
			report(d.Pos(), "function", name)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if d.Doc == nil && s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
					if s.Name.IsExported() {
						if it, ok := s.Type.(*ast.InterfaceType); ok {
							checkInterface(s.Name.Name, it, report)
						}
					}
				case *ast.ValueSpec:
					// A doc comment on the declaration covers a lone spec
					// ("// Foo is ...\nconst Foo = 1") but not the members of
					// a multi-spec group: there the group doc describes the
					// family while each exported member still needs its own
					// comment saying what that member means.
					if s.Doc != nil || s.Comment != nil {
						continue
					}
					if d.Doc != nil && len(d.Specs) == 1 {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), "value", n.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// checkInterface reports exported methods of an exported interface that
// lack their own doc comment. Embedded interfaces (fields without names)
// are documented at their own declaration and are skipped.
func checkInterface(typeName string, it *ast.InterfaceType, report func(token.Pos, string, string)) {
	for _, m := range it.Methods.List {
		for _, n := range m.Names {
			if n.IsExported() && m.Doc == nil && m.Comment == nil {
				report(n.Pos(), "interface method", typeName+"."+n.Name)
			}
		}
	}
}

// receiverType extracts the receiver's type name and whether it is
// exported; methods on unexported types need no doc comment.
func receiverType(recv *ast.FieldList) (string, bool) {
	if len(recv.List) == 0 {
		return "", false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name, tt.IsExported()
		default:
			return "", false
		}
	}
}

// Command engbench produces the committed engine-throughput baseline
// BENCH_engine.json: the BenchmarkEngine grid (298-node GreenOrbs ×
// {OPT, DBAO, OF} × duty {1%, 5%}) timed with the slot-by-slot reference
// path and the compact-time fast path side by side.
//
// Each case runs -reps times per path through the batch runner
// (single-worker, so timings are not perturbed by sibling jobs) and
// reports the minimum wall-clock per run — the least noisy estimator on a
// shared machine. The slow and compact results of every case are compared
// field-for-field; a mismatch fails the command, so a committed baseline
// also certifies fast-path equivalence on the full grid.
//
// Each case also re-times the compact path with a full event trace
// attached in both encodings (text tracelog vs binary tracebin), recording
// the emit cost and the deterministic per-run byte counts — the committed
// baseline doubles as the measured size-reduction record referenced by
// docs/TRACE.md and EXPERIMENTS.md.
//
// Usage:
//
//	go run ./cmd/engbench [-reps 5] [-o BENCH_engine.json]
//	go run ./cmd/engbench -against BENCH_engine.json -tolerance 0.5 -o ""
//
// With -against, the fresh measurement is additionally checked against a
// committed baseline: every case's slot horizon must match exactly (a
// mismatch means the engine's clean-path behavior changed), and wall-clock
// per path may not regress by more than -tolerance (a fraction; wall time
// on shared machines is noisy, so keep it generous). Passing -o "" skips
// rewriting the baseline, turning the command into a pure regression
// guard.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"time"

	"ldcflood/internal/flood"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/runner"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/telemetry"
	"ldcflood/internal/topology"
	"ldcflood/internal/tracebin"
	"ldcflood/internal/tracelog"
)

// benchCase is one grid cell of the committed baseline.
type benchCase struct {
	Protocol string `json:"protocol"`
	Duty     string `json:"duty"`
	Period   int    `json:"period"`
	// SlowNS / CompactNS are minimum wall-clock nanoseconds per run over
	// -reps repetitions of each path.
	SlowNS    int64 `json:"slow_ns"`
	CompactNS int64 `json:"compact_ns"`
	// Speedup = SlowNS / CompactNS.
	Speedup float64 `json:"speedup"`
	// Slots is the simulated-slot horizon of the run (identical for both
	// paths — the fast path skips visiting slots, not simulating them).
	Slots int64 `json:"slots"`
	// Identical records that the two paths produced field-for-field equal
	// sim.Results; engbench fails before writing output if any case is
	// false, so a committed file always says true.
	Identical bool `json:"identical"`
	// TelemetryNS is the compact path re-timed with a telemetry.Registry
	// attached, and TelemetryOverhead its fractional cost versus CompactNS
	// (may dip below zero on a noisy machine). Baselines written before the
	// telemetry layer omit both; guard then skips the telemetry check.
	TelemetryNS       int64   `json:"telemetry_ns,omitempty"`
	TelemetryOverhead float64 `json:"telemetry_overhead,omitempty"`
	// TraceTextNS / TraceBinNS are the compact path re-timed with a full
	// event-trace observer attached — the text encoding (internal/tracelog)
	// versus the binary one (internal/tracebin). TraceTextBytes /
	// TraceBinBytes are the bytes one run emits in each encoding; they are
	// deterministic, so guard demands exact equality, while the timings get
	// the usual tolerance. Baselines written before the trace layer omit
	// all four; guard then skips the trace checks.
	TraceTextNS    int64 `json:"trace_text_ns,omitempty"`
	TraceBinNS     int64 `json:"trace_bin_ns,omitempty"`
	TraceTextBytes int64 `json:"trace_text_bytes,omitempty"`
	TraceBinBytes  int64 `json:"trace_bin_bytes,omitempty"`
}

// baseline is the BENCH_engine.json document.
type baseline struct {
	Generator string      `json:"generator"`
	Topology  string      `json:"topology"`
	Nodes     int         `json:"nodes"`
	M         int         `json:"m"`
	Coverage  float64     `json:"coverage"`
	Seed      int64       `json:"seed"`
	Reps      int         `json:"reps"`
	Cases     []benchCase `json:"cases"`
}

func main() {
	reps := flag.Int("reps", 5, "repetitions per case per path; the minimum wall-clock is reported")
	out := flag.String("o", "BENCH_engine.json", "output file (empty skips writing)")
	against := flag.String("against", "", "committed baseline to guard against (empty skips the check)")
	tolerance := flag.Float64("tolerance", 0.5, "allowed fractional wall-clock regression vs -against")
	scale := flag.Bool("scale", false, "run the large-topology sharded-engine grid (BENCH_scale.json) instead of the engine grid")
	scaleReps := flag.Int("scale-reps", 3, "repetitions per -scale cell per worker count (all cells, including 100k); the minimum wall-clock is reported")
	smoke := flag.Bool("scale-smoke", false, "run the CI scale smoke (10k-node rgg, workers 1 vs 4 byte-equality) and exit")
	smokeWorkers := flag.Int("smoke-workers", 8, "additional worker count the -scale-smoke gate checks beyond 1 and 4")
	flag.Parse()

	if *smoke {
		if err := runScaleSmoke(*smokeWorkers); err != nil {
			fmt.Fprintln(os.Stderr, "engbench:", err)
			os.Exit(1)
		}
		return
	}
	if *scale {
		o := *out
		if o == "BENCH_engine.json" { // untouched default: scale mode names its own file
			o = "BENCH_scale.json"
		}
		if err := runScale(o, *against, *tolerance, *scaleReps); err != nil {
			fmt.Fprintln(os.Stderr, "engbench:", err)
			os.Exit(1)
		}
		return
	}

	doc, err := measure(*reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "engbench:", err)
		os.Exit(1)
	}
	if *against != "" {
		if err := guard(doc, *against, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "engbench:", err)
			os.Exit(1)
		}
		fmt.Printf("baseline %s holds within %.0f%%\n", *against, *tolerance*100)
	}
	if *out == "" {
		return
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "engbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "engbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d cases)\n", *out, len(doc.Cases))
}

// guard compares a fresh measurement against a committed baseline. Slot
// horizons must match exactly — they are deterministic, so any drift means
// the clean path's behavior changed, not that the machine was busy. Wall
// clock may not regress by more than tol per path.
func guard(doc *baseline, path string, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	byCell := make(map[string]benchCase, len(base.Cases))
	for _, c := range base.Cases {
		byCell[c.Protocol+"/"+c.Duty] = c
	}
	for _, c := range doc.Cases {
		b, ok := byCell[c.Protocol+"/"+c.Duty]
		if !ok {
			return fmt.Errorf("%s: baseline lacks case %s/%s", path, c.Protocol, c.Duty)
		}
		if c.Slots != b.Slots {
			return fmt.Errorf("%s/%s: slot horizon %d differs from baseline %d — engine behavior changed",
				c.Protocol, c.Duty, c.Slots, b.Slots)
		}
		if lim := float64(b.SlowNS) * (1 + tol); float64(c.SlowNS) > lim {
			return fmt.Errorf("%s/%s: reference path %.2fms regressed past baseline %.2fms +%.0f%%",
				c.Protocol, c.Duty, float64(c.SlowNS)/1e6, float64(b.SlowNS)/1e6, tol*100)
		}
		if lim := float64(b.CompactNS) * (1 + tol); float64(c.CompactNS) > lim {
			return fmt.Errorf("%s/%s: compact path %.2fms regressed past baseline %.2fms +%.0f%%",
				c.Protocol, c.Duty, float64(c.CompactNS)/1e6, float64(b.CompactNS)/1e6, tol*100)
		}
		// Baselines predating the telemetry layer carry no TelemetryNS;
		// skip rather than fail so old baselines keep guarding.
		if b.TelemetryNS > 0 {
			if lim := float64(b.TelemetryNS) * (1 + tol); float64(c.TelemetryNS) > lim {
				return fmt.Errorf("%s/%s: telemetry-attached path %.2fms regressed past baseline %.2fms +%.0f%%",
					c.Protocol, c.Duty, float64(c.TelemetryNS)/1e6, float64(b.TelemetryNS)/1e6, tol*100)
			}
		}
		// Likewise for baselines predating the trace layer. The byte counts
		// are deterministic: any drift means an encoding changed, not that
		// the machine was busy, so they must match exactly.
		if b.TraceBinBytes > 0 {
			if c.TraceTextBytes != b.TraceTextBytes {
				return fmt.Errorf("%s/%s: text trace emits %d bytes, baseline %d — encoding changed",
					c.Protocol, c.Duty, c.TraceTextBytes, b.TraceTextBytes)
			}
			if c.TraceBinBytes != b.TraceBinBytes {
				return fmt.Errorf("%s/%s: binary trace emits %d bytes, baseline %d — encoding changed",
					c.Protocol, c.Duty, c.TraceBinBytes, b.TraceBinBytes)
			}
			if lim := float64(b.TraceTextNS) * (1 + tol); float64(c.TraceTextNS) > lim {
				return fmt.Errorf("%s/%s: text-traced path %.2fms regressed past baseline %.2fms +%.0f%%",
					c.Protocol, c.Duty, float64(c.TraceTextNS)/1e6, float64(b.TraceTextNS)/1e6, tol*100)
			}
			if lim := float64(b.TraceBinNS) * (1 + tol); float64(c.TraceBinNS) > lim {
				return fmt.Errorf("%s/%s: binary-traced path %.2fms regressed past baseline %.2fms +%.0f%%",
					c.Protocol, c.Duty, float64(c.TraceBinNS)/1e6, float64(b.TraceBinNS)/1e6, tol*100)
			}
		}
	}
	return nil
}

// measure runs the full grid and assembles the baseline document.
func measure(reps int) (*baseline, error) {
	g := topology.GreenOrbs(1)
	doc := &baseline{
		Generator: "cmd/engbench",
		Topology:  "greenorbs",
		Nodes:     g.N(),
		M:         10,
		Coverage:  0.99,
		Seed:      1,
		Reps:      reps,
	}
	for _, duty := range []struct {
		name   string
		period int
	}{
		{"1pct", 100},
		{"5pct", 20},
	} {
		scheds := schedule.AssignUniform(g.N(), duty.period, rngutil.New(1).SubName("schedule"))
		for _, name := range []string{"opt", "dbao", "of", "trickle", "dflood"} {
			c := benchCase{Protocol: name, Duty: duty.name, Period: duty.period}
			slowNS, slowRes, err := timeCase(g, scheds, name, false, reps, nil)
			if err != nil {
				return nil, fmt.Errorf("%s/%s slow: %w", name, duty.name, err)
			}
			compactNS, compactRes, err := timeCase(g, scheds, name, true, reps, nil)
			if err != nil {
				return nil, fmt.Errorf("%s/%s compact: %w", name, duty.name, err)
			}
			// The telemetry-on/off comparison: the same compact cell with a
			// live registry attached. Its result must stay bit-identical —
			// telemetry observes the engine, never steers it.
			telNS, telRes, err := timeCase(g, scheds, name, true, reps, telemetry.New())
			if err != nil {
				return nil, fmt.Errorf("%s/%s telemetry: %w", name, duty.name, err)
			}
			// Trace-emission cost: the same compact cell re-timed with a
			// full event trace streaming to a byte-counting sink, once per
			// encoding. Results must again stay bit-identical.
			textNS, textBytes, textRes, err := timeTraced(g, scheds, name, "text", reps)
			if err != nil {
				return nil, fmt.Errorf("%s/%s text trace: %w", name, duty.name, err)
			}
			binNS, binBytes, binRes, err := timeTraced(g, scheds, name, "bin", reps)
			if err != nil {
				return nil, fmt.Errorf("%s/%s binary trace: %w", name, duty.name, err)
			}
			c.SlowNS, c.CompactNS, c.TelemetryNS = slowNS, compactNS, telNS
			c.TraceTextNS, c.TraceBinNS = textNS, binNS
			c.TraceTextBytes, c.TraceBinBytes = textBytes, binBytes
			c.Speedup = float64(slowNS) / float64(compactNS)
			c.TelemetryOverhead = float64(telNS)/float64(compactNS) - 1
			c.Slots = slowRes.TotalSlots
			c.Identical = reflect.DeepEqual(slowRes, compactRes) && reflect.DeepEqual(compactRes, telRes)
			if !reflect.DeepEqual(slowRes, compactRes) {
				return nil, fmt.Errorf("%s/%s: compact path diverged from the reference path", name, duty.name)
			}
			if !reflect.DeepEqual(compactRes, telRes) {
				return nil, fmt.Errorf("%s/%s: attaching telemetry changed the result", name, duty.name)
			}
			if !reflect.DeepEqual(compactRes, textRes) || !reflect.DeepEqual(compactRes, binRes) {
				return nil, fmt.Errorf("%s/%s: attaching a trace observer changed the result", name, duty.name)
			}
			fmt.Printf("%-5s duty=%s  slow=%8.2fms  compact=%8.2fms  speedup=%.2fx  telemetry=%+.1f%%  trace text=%6.2fms bin=%6.2fms (%.1fx smaller)\n",
				name, duty.name, float64(slowNS)/1e6, float64(compactNS)/1e6, c.Speedup, c.TelemetryOverhead*100,
				float64(textNS)/1e6, float64(binNS)/1e6, float64(textBytes)/float64(binBytes))
			doc.Cases = append(doc.Cases, c)
		}
	}
	return doc, nil
}

// timeCase runs one (protocol, duty, path) cell reps times through the
// single-worker batch runner and returns the minimum wall-clock per run
// plus the (deterministic, rep-independent) simulation result. A non-nil
// reg attaches live telemetry to every run, measuring its overhead.
func timeCase(g *topology.Graph, scheds []*schedule.Schedule, name string, compact bool, reps int, reg *telemetry.Registry) (int64, *sim.Result, error) {
	p, err := flood.New(name)
	if err != nil {
		return 0, nil, err
	}
	cfg := sim.Config{
		Graph:       g,
		Schedules:   scheds,
		Protocol:    p,
		M:           10,
		Coverage:    0.99,
		Seed:        1,
		CompactTime: compact,
		Telemetry:   reg,
	}
	// Warm-up run: lets the protocol's Reset memoization (carrier-sense
	// matrix, energy-optimal tree) build once outside the timed region,
	// exactly as it amortizes across a sweep's runs.
	warm, _ := runner.Run(context.Background(), []sim.Config{cfg}, runner.Options{Workers: 1})
	if err := warm.Err(); err != nil {
		return 0, nil, err
	}
	var best time.Duration
	for i := 0; i < reps; i++ {
		rs, st := runner.Run(context.Background(), []sim.Config{cfg}, runner.Options{Workers: 1})
		if err := rs.Err(); err != nil {
			return 0, nil, err
		}
		if !rs[0].Res.Completed {
			return 0, nil, fmt.Errorf("run did not complete within %d slots", rs[0].Res.TotalSlots)
		}
		if i == 0 || st.Wall < best {
			best = st.Wall
		}
	}
	return best.Nanoseconds(), warm[0].Res, nil
}

// countWriter counts the bytes written through it and discards them.
type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) { c.n += int64(len(p)); return len(p), nil }

// timeTraced re-times the compact path with a full event-trace observer
// attached in the given encoding ("text" or "bin"), streaming to a
// byte-counting sink. It returns the minimum wall-clock per run, the
// (deterministic) bytes one run emits, and the simulation result. Each
// repetition gets a fresh writer — both encoders carry per-document state
// (the binary one delta-encodes against previous records).
func timeTraced(g *topology.Graph, scheds []*schedule.Schedule, name, format string, reps int) (int64, int64, *sim.Result, error) {
	p, err := flood.New(name)
	if err != nil {
		return 0, 0, nil, err
	}
	one := func() (*sim.Result, time.Duration, int64, error) {
		cw := &countWriter{}
		var obs sim.Observer
		var flush func() error
		if format == "text" {
			l := tracelog.NewLogger(cw)
			obs, flush = l, l.Flush
		} else {
			w := tracebin.NewWriter(cw)
			obs, flush = w, w.Flush
		}
		cfg := sim.Config{
			Graph:       g,
			Schedules:   scheds,
			Protocol:    p,
			M:           10,
			Coverage:    0.99,
			Seed:        1,
			CompactTime: true,
			Observer:    obs,
		}
		rs, st := runner.Run(context.Background(), []sim.Config{cfg}, runner.Options{Workers: 1})
		if err := rs.Err(); err != nil {
			return nil, 0, 0, err
		}
		if err := flush(); err != nil {
			return nil, 0, 0, err
		}
		return rs[0].Res, st.Wall, cw.n, nil
	}
	res, _, bytes, err := one() // warm-up, and the canonical byte count
	if err != nil {
		return 0, 0, nil, err
	}
	var best time.Duration
	for i := 0; i < reps; i++ {
		_, wall, n, err := one()
		if err != nil {
			return 0, 0, nil, err
		}
		if n != bytes {
			return 0, 0, nil, fmt.Errorf("%s trace emitted %d bytes on one run and %d on another — nondeterministic", format, bytes, n)
		}
		if i == 0 || wall < best {
			best = wall
		}
	}
	return best.Nanoseconds(), bytes, res, nil
}

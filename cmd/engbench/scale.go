package main

// The -scale mode: large-topology throughput baseline BENCH_scale.json.
//
// Where BENCH_engine.json times the paper-scale 298-node grid, the scale
// grid times the sharded engine (sim.Config.Workers) on 10k- and 100k-node
// ScaledGreenOrbs instances at 1% duty. Three timings per cell:
//
//   - serial_ns: the historical serial path (Workers: 0), which scans all n
//     nodes every slot and resolves receivers sequentially.
//   - sharded1_ns / sharded4_ns: the sharded path at 1 and 4 workers, which
//     activates the CSR adjacency and the bucketed awake-set fast paths.
//
// speedup = serial_ns / sharded4_ns is the headline number: at 1% duty the
// bucketed awake set turns the per-slot wake scan from O(n) into O(awake),
// so the sharded engine wins by an order of magnitude regardless of worker
// count.
//
// workers_speedup isolates the parallel contribution. The raw wall ratio
// sharded1_ns / sharded4_ns (kept as workers_wall_speedup) only shows a
// win when the benchmark machine actually has idle cores — on a
// single-core CI runner it sits near or below 1.0 no matter how parallel
// the engine is. So the committed metric is machine-independent, measured
// the way Cilk's work/span profiler predicts multicore makespans: a
// dedicated profiling rep (sim.Config.ShardStats) keeps the workers-4
// chunk geometry but runs every chunk sequentially on one goroutine,
// timing each contention-free. From that one run:
//
//	work_ns     = summed per-chunk busy time
//	span_ns     = summed per-batch makespan of the pool's claim-order
//	              list schedule replayed exactly over the measured chunk
//	              durations on W virtual workers (single-chunk batches
//	              contribute their full duration: one chunk cannot
//	              parallelize)
//	residual_ns = profile_ns - work_ns, the serial spine outside batches
//
//	workers_speedup = profile_ns / (residual_ns + span_ns)
//
// i.e. the speedup the measured chunk schedule would achieve on four real
// cores over the same engine on one. Timing the pooled execution instead
// would fold scheduler noise — and, on core-starved machines, pure
// timeslicing — into every chunk, understating work and span alike. make
// bench-guard enforces the committed floor (workers_speedup_floor) on
// every case.
//
// The serial and sharded paths draw from different (both certified) RNG
// disciplines, so their results legitimately differ; serial_slots and
// sharded_slots are recorded separately, while `identical` asserts the
// byte-equality that must hold: workers 1 versus workers 4.

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"ldcflood/internal/flood"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

// scaleCase is one cell of the BENCH_scale.json grid.
type scaleCase struct {
	Topology string `json:"topology"`
	Nodes    int    `json:"nodes"`
	Links    int    `json:"links"`
	Protocol string `json:"protocol"`
	Duty     string `json:"duty"`
	Period   int    `json:"period"`
	Reps     int    `json:"reps"`
	// SerialNS is 0 when the serial measurement was skipped (the 100k cell:
	// the O(n)-scan path is measured at 10k, rerunning it at 100k would
	// dominate the whole benchmark for a number the 10k cells already pin).
	SerialNS   int64 `json:"serial_ns,omitempty"`
	Sharded1NS int64 `json:"sharded1_ns"`
	Sharded4NS int64 `json:"sharded4_ns"`
	// ProfileNS is the wall clock of the best profiling rep: workers-4
	// chunk geometry executed sequentially on one goroutine, so it plays
	// the one-worker numerator of the modeled speedup.
	ProfileNS int64 `json:"profile_ns"`
	// Speedup = SerialNS / Sharded4NS (omitted with SerialNS).
	Speedup float64 `json:"speedup,omitempty"`
	// WorkersSpeedup = ProfileNS / (ResidualNS + SpanNS): the modeled
	// multicore speedup of the measured workers-4 chunk schedule (see the
	// file comment). WorkersSpeedupFloor is the committed regression floor
	// guardScale enforces; WorkersWallSpeedup is the raw machine-dependent
	// wall ratio Sharded1NS / Sharded4NS, recorded for transparency.
	WorkersSpeedup      float64 `json:"workers_speedup"`
	WorkersSpeedupFloor float64 `json:"workers_speedup_floor"`
	WorkersWallSpeedup  float64 `json:"workers_wall_speedup"`
	// WorkNS / SpanNS / ResidualNS decompose the best profiling rep:
	// summed contention-free per-chunk busy time, its modeled W-worker
	// makespan (exact claim-order schedule replay), and the serial spine
	// outside batches (ProfileNS - WorkNS).
	WorkNS       int64 `json:"work_ns"`
	SpanNS       int64 `json:"span_ns"`
	ResidualNS   int64 `json:"residual_ns"`
	SerialSlots  int64 `json:"serial_slots,omitempty"`
	ShardedSlots int64 `json:"sharded_slots"`
	// NSPerSlot is Sharded4NS over the sharded run's slot horizon.
	NSPerSlot float64 `json:"ns_per_slot"`
	// BytesPerNode is the heap allocated by one sharded run divided by the
	// node count — the O(n+m)-memory evidence for the 100k cell.
	BytesPerNode float64 `json:"bytes_per_node"`
	// Identical records byte-equality of the workers-1 and workers-4 results.
	Identical bool `json:"identical"`
}

// scaleBaseline is the BENCH_scale.json document.
type scaleBaseline struct {
	Generator string      `json:"generator"`
	M         int         `json:"m"`
	Coverage  float64     `json:"coverage"`
	Seed      int64       `json:"seed"`
	Cases     []scaleCase `json:"cases"`
}

// scaleGrid defines the measured cells. Period 100 ≈ 1% duty, the paper's
// hardest regime and the one where the awake-set bucketing matters most.
var scaleGrid = []struct {
	nodes    int
	protocol string
	period   int
	serial   bool
}{
	{10000, "opt", 100, true},
	{10000, "dbao", 100, true},
	{100000, "opt", 100, false},
}

func runScale(out, against string, tol float64, reps int) error {
	doc := &scaleBaseline{Generator: "cmd/engbench -scale", M: 4, Coverage: 0.99, Seed: 1}
	for _, cell := range scaleGrid {
		c, err := measureScaleCell(cell.nodes, cell.protocol, cell.period, reps, cell.serial)
		if err != nil {
			return fmt.Errorf("%s/%d: %w", cell.protocol, cell.nodes, err)
		}
		doc.Cases = append(doc.Cases, *c)
	}
	if against != "" {
		if err := guardScale(doc, against, tol); err != nil {
			return err
		}
		fmt.Printf("scale baseline %s holds within %.0f%%\n", against, tol*100)
	}
	if out == "" {
		return nil
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d cases)\n", out, len(doc.Cases))
	return nil
}

// scaleConfig assembles the simulation config for one cell.
func scaleConfig(g *topology.Graph, scheds []*schedule.Schedule, protocol string, workers int) (sim.Config, error) {
	p, err := flood.New(protocol)
	if err != nil {
		return sim.Config{}, err
	}
	return sim.Config{
		Graph:     g,
		Schedules: scheds,
		Protocol:  p,
		M:         4,
		Coverage:  0.99,
		Seed:      1,
		MaxSlots:  2000000,
		Workers:   workers,
	}, nil
}

// timeScaleRun executes cfg reps times (after one untimed warm-up that also
// yields the deterministic result) and returns the minimum wall-clock.
func timeScaleRun(cfg sim.Config, reps int) (int64, *sim.Result, error) {
	warm, err := sim.Run(cfg)
	if err != nil {
		return 0, nil, err
	}
	if !warm.Completed {
		return 0, nil, fmt.Errorf("run did not complete within %d slots", cfg.MaxSlots)
	}
	var best time.Duration
	for i := 0; i < reps; i++ {
		start := time.Now()
		if _, err := sim.Run(cfg); err != nil {
			return 0, nil, err
		}
		if d := time.Since(start); i == 0 || d < best {
			best = d
		}
	}
	return best.Nanoseconds(), warm, nil
}

// profileScaleRun executes cfg reps times in ShardStats profiling mode
// (sequential chunk execution, per-chunk timing) and returns the
// least-noisy rep's wall clock with its work/span decomposition, plus
// the result for the identity cross-check against the normal runs. The
// best rep is the one with the highest modeled speedup, mirroring
// best-of-N wall timing: an OS preemption landing inside one chunk
// inflates that batch's max-chunk term and poisons the whole rep's span,
// so min-wall selection alone still admits spiky decompositions.
func profileScaleRun(cfg sim.Config, reps int) (int64, sim.ShardStats, *sim.Result, error) {
	var bestStats sim.ShardStats
	var res *sim.Result
	var bestWall int64
	bestModel := -1.0
	for i := 0; i < reps; i++ {
		var st sim.ShardStats
		cfg.ShardStats = &st
		start := time.Now()
		r, err := sim.Run(cfg)
		if err != nil {
			return 0, bestStats, nil, err
		}
		wall := time.Since(start).Nanoseconds()
		residual := max(wall-st.WorkNS, 0)
		model := float64(wall) / float64(residual+st.SpanNS)
		if model > bestModel {
			bestModel, bestWall, bestStats = model, wall, st
		}
		res = r
	}
	return bestWall, bestStats, res, nil
}

// measureScaleCell builds the topology and times the three engine modes.
func measureScaleCell(nodes int, protocol string, period, reps int, serial bool) (*scaleCase, error) {
	fmt.Printf("building scaled-greenorbs %d...\n", nodes)
	g, err := topology.GenerateGreenOrbs(topology.ScaledGreenOrbsConfig(nodes), 1)
	if err != nil {
		return nil, err
	}
	scheds := schedule.AssignUniform(g.N(), period, rngutil.New(1).SubName("schedule"))
	c := &scaleCase{
		Topology: "scaled-greenorbs",
		Nodes:    g.N(),
		Links:    g.NumLinks(),
		Protocol: protocol,
		Duty:     fmt.Sprintf("%.0fpct", 100.0/float64(period)),
		Period:   period,
		Reps:     reps,
	}

	cfg1, err := scaleConfig(g, scheds, protocol, 1)
	if err != nil {
		return nil, err
	}
	// Heap cost of one sharded run, measured before any timing so the
	// allocation profile is cold-start-representative.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := sim.Run(cfg1); err != nil {
		return nil, err
	}
	runtime.ReadMemStats(&after)
	c.BytesPerNode = float64(after.TotalAlloc-before.TotalAlloc) / float64(g.N())

	var res1 *sim.Result
	c.Sharded1NS, res1, err = timeScaleRun(cfg1, reps)
	if err != nil {
		return nil, err
	}
	cfg4, err := scaleConfig(g, scheds, protocol, 4)
	if err != nil {
		return nil, err
	}
	var res4 *sim.Result
	c.Sharded4NS, res4, err = timeScaleRun(cfg4, reps)
	if err != nil {
		return nil, err
	}
	var st sim.ShardStats
	var resP *sim.Result
	c.ProfileNS, st, resP, err = profileScaleRun(cfg4, reps)
	if err != nil {
		return nil, err
	}
	c.ShardedSlots = res1.TotalSlots
	c.WorkNS, c.SpanNS = st.WorkNS, st.SpanNS
	c.ResidualNS = c.ProfileNS - st.WorkNS
	if c.ResidualNS < 0 {
		c.ResidualNS = 0
	}
	c.WorkersWallSpeedup = float64(c.Sharded1NS) / float64(c.Sharded4NS)
	c.WorkersSpeedup = float64(c.ProfileNS) / float64(c.ResidualNS+c.SpanNS)
	// The committed floor: the acceptance threshold, raised when the
	// measurement clears it with margin (so real regressions from a good
	// baseline still trip the guard).
	c.WorkersSpeedupFloor = 2.5
	if f := 0.8 * c.WorkersSpeedup; f > c.WorkersSpeedupFloor {
		c.WorkersSpeedupFloor = f
	}
	c.NSPerSlot = float64(c.Sharded4NS) / float64(res4.TotalSlots)
	c.Identical = reflect.DeepEqual(res1, res4) && reflect.DeepEqual(res1, resP)
	if !c.Identical {
		return nil, fmt.Errorf("workers 1, workers 4, and profiling results diverge")
	}
	if serial {
		cfg0, err := scaleConfig(g, scheds, protocol, 0)
		if err != nil {
			return nil, err
		}
		var res0 *sim.Result
		c.SerialNS, res0, err = timeScaleRun(cfg0, reps)
		if err != nil {
			return nil, err
		}
		c.SerialSlots = res0.TotalSlots
		c.Speedup = float64(c.SerialNS) / float64(c.Sharded4NS)
	}
	fmt.Printf("%-5s n=%-6d serial=%9.1fms  sharded1=%9.1fms  sharded4=%9.1fms  speedup=%.2fx  workers=%.2fx (wall %.2fx)  %.0f B/node\n",
		protocol, g.N(), float64(c.SerialNS)/1e6, float64(c.Sharded1NS)/1e6,
		float64(c.Sharded4NS)/1e6, c.Speedup, c.WorkersSpeedup, c.WorkersWallSpeedup, c.BytesPerNode)
	return c, nil
}

// guardScale compares a fresh scale measurement against the committed
// baseline: sharded slot horizons exactly (they are deterministic), sharded
// wall clock within tol. Serial numbers are informational — the serial path
// is guarded at paper scale by the BENCH_engine.json guard.
func guardScale(doc *scaleBaseline, path string, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base scaleBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	byCell := make(map[string]scaleCase, len(base.Cases))
	for _, c := range base.Cases {
		byCell[fmt.Sprintf("%s/%d", c.Protocol, c.Nodes)] = c
	}
	for _, c := range doc.Cases {
		key := fmt.Sprintf("%s/%d", c.Protocol, c.Nodes)
		b, ok := byCell[key]
		if !ok {
			return fmt.Errorf("%s: baseline lacks case %s", path, key)
		}
		if c.ShardedSlots != b.ShardedSlots {
			return fmt.Errorf("%s: sharded slot horizon %d differs from baseline %d — engine behavior changed",
				key, c.ShardedSlots, b.ShardedSlots)
		}
		for _, m := range []struct {
			name      string
			cur, base int64
		}{
			{"sharded1", c.Sharded1NS, b.Sharded1NS},
			{"sharded4", c.Sharded4NS, b.Sharded4NS},
		} {
			if lim := float64(m.base) * (1 + tol); float64(m.cur) > lim {
				return fmt.Errorf("%s: %s path %.1fms regressed past baseline %.1fms +%.0f%%",
					key, m.name, float64(m.cur)/1e6, float64(m.base)/1e6, tol*100)
			}
		}
		if b.WorkersSpeedupFloor > 0 && c.WorkersSpeedup < b.WorkersSpeedupFloor {
			return fmt.Errorf("%s: workers_speedup %.2fx fell below the committed floor %.2fx",
				key, c.WorkersSpeedup, b.WorkersSpeedupFloor)
		}
	}
	return nil
}

// runScaleSmoke is the CI gate: a 10k-node random geometric graph, one
// protocol, workers 1 versus 4 byte-equality, bounded by the CI step's
// timeout. Exits through an error on any divergence.
func runScaleSmoke(extraWorkers int) error {
	const nodes = 10000
	// Field side chosen to keep GreenOrbs-like density at 10k nodes.
	field := 130 * 5.8
	fmt.Printf("scale smoke: building rgg %d...\n", nodes)
	g, err := topology.RandomGeometric(nodes, field, field, topology.ForestRadio(), 0.10, 1)
	if err != nil {
		return err
	}
	scheds := schedule.AssignUniform(g.N(), 100, rngutil.New(1).SubName("schedule"))
	run := func(workers int) (*sim.Result, time.Duration, error) {
		cfg, err := scaleConfig(g, scheds, "opt", workers)
		if err != nil {
			return nil, 0, err
		}
		start := time.Now()
		res, err := sim.Run(cfg)
		return res, time.Since(start), err
	}
	res1, d1, err := run(1)
	if err != nil {
		return err
	}
	res4, d4, err := run(4)
	if err != nil {
		return err
	}
	if !res1.Completed {
		return fmt.Errorf("smoke run did not complete")
	}
	if !reflect.DeepEqual(res1, res4) {
		return fmt.Errorf("workers 1 and workers 4 results diverge")
	}
	if extraWorkers > 1 && extraWorkers != 4 {
		resN, dN, err := run(extraWorkers)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(res1, resN) {
			return fmt.Errorf("workers 1 and workers %d results diverge", extraWorkers)
		}
		fmt.Printf("scale smoke: workers%d=%s, identical\n", extraWorkers, dN.Round(time.Millisecond))
	}
	fmt.Printf("scale smoke ok: %d nodes, %d links, %d slots, workers1=%s workers4=%s, identical\n",
		g.N(), g.NumLinks(), res1.TotalSlots, d1.Round(time.Millisecond), d4.Round(time.Millisecond))
	return nil
}

package main

import (
	"os"
	"path/filepath"
	"testing"

	"ldcflood/internal/topology"
)

func TestBuildTypes(t *testing.T) {
	cases := []struct {
		typ  string
		want int
	}{
		{"greenorbs", 298},
		{"testbed", 139},
		{"rgg", 40},
		{"grid", 20},
		{"line", 40},
		{"star", 40},
		{"complete", 40},
	}
	for _, c := range cases {
		g, err := build(c.typ, "", 1, 40, 0, 80, 4, 5, 0.9, 0.1)
		if err != nil {
			t.Fatalf("%s: %v", c.typ, err)
		}
		if g.N() != c.want {
			t.Fatalf("%s: %d nodes, want %d", c.typ, g.N(), c.want)
		}
	}
	if _, err := build("bogus", "", 1, 10, 0, 10, 2, 2, 0.9, 0.1); err == nil {
		t.Fatal("unknown type accepted")
	}
}

// TestBuildScaledGreenOrbs checks that an explicit -nodes reroutes the
// greenorbs type through the constant-density scaling path.
func TestBuildScaledGreenOrbs(t *testing.T) {
	g, err := build("greenorbs", "", 1, 600, 600, 0, 0, 0, 0.9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 600 {
		t.Fatalf("scaled greenorbs has %d nodes, want 600", g.N())
	}
	if s := g.Analyze(); !s.Connected {
		t.Fatal("scaled greenorbs is not connected")
	}
}

func TestBuildFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "in.txt")
	if err := os.WriteFile(path, []byte("graph g 2\nlink 0 1 0.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := build("ignored", path, 1, 0, 0, 0, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 {
		t.Fatalf("N = %d", g.N())
	}
	if _, err := build("x", "/nonexistent", 1, 0, 0, 0, 0, 0, 0, 0); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunWritesTextAndJSON(t *testing.T) {
	dir := t.TempDir()
	textPath := filepath.Join(dir, "g.txt")
	if err := run("grid", "", textPath, "text", 1, 0, 0, 0, 3, 3, 0.8, 0.1, true); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(textPath)
	if err != nil {
		t.Fatal(err)
	}
	g, err := topology.ReadText(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 9 {
		t.Fatalf("round-trip N = %d", g.N())
	}

	jsonPath := filepath.Join(dir, "g.json")
	if err := run("grid", "", jsonPath, "json", 1, 0, 0, 0, 3, 3, 0.8, 0.1, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty json output")
	}

	if err := run("grid", "", filepath.Join(dir, "x"), "yaml", 1, 0, 0, 0, 3, 3, 0.8, 0.1, false); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// Command topogen generates, inspects and converts the topologies used by
// the flooding experiments.
//
// Usage:
//
//	topogen -type greenorbs [-seed 1] [-out trace.txt] [-format text|json] [-stats]
//	topogen -type greenorbs -nodes 100000  # scaled instance, constant density
//	topogen -type rgg -nodes 100 [-field 100] [-seed 1] ...
//	topogen -type grid -rows 10 -cols 10 [-prr 0.9] ...
//	topogen -in trace.txt -stats           # inspect an existing trace
//
// For greenorbs, passing -nodes scales the calibrated 298-node deployment
// to the requested size at constant node density (topology.
// ScaledGreenOrbsConfig); link generation is spatial-hashed, so 100k-node
// instances build in O(n).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ldcflood/internal/topology"
)

func main() {
	var (
		typ    = flag.String("type", "greenorbs", "topology type: greenorbs, testbed, rgg, grid, line, star, complete")
		seed   = flag.Uint64("seed", 1, "generator seed")
		nodes  = flag.Int("nodes", 100, "node count (rgg, line, star, complete; for greenorbs, scales the deployment at constant density)")
		field  = flag.Float64("field", 100, "field side length in meters (rgg)")
		rows   = flag.Int("rows", 10, "grid rows")
		cols   = flag.Int("cols", 10, "grid cols")
		prr    = flag.Float64("prr", 0.9, "uniform PRR (grid, line, star, complete)")
		minPRR = flag.Float64("minprr", 0.1, "minimum link PRR (greenorbs, rgg)")
		in     = flag.String("in", "", "read an existing trace instead of generating")
		out    = flag.String("out", "", "output file (default stdout)")
		format = flag.String("format", "text", "output format: text or json")
		stats  = flag.Bool("stats", false, "print structural statistics to stderr")
	)
	flag.Parse()

	// The -nodes default serves the rgg/line/star families; for greenorbs
	// only an explicit -nodes switches from the calibrated 298-node trace to
	// the scaled instance.
	scaleNodes := 0 // 0: greenorbs keeps its calibrated 298-node shape
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "nodes" {
			scaleNodes = *nodes
		}
	})

	if err := run(*typ, *in, *out, *format, *seed, *nodes, scaleNodes, *field, *rows, *cols, *prr, *minPRR, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(typ, in, out, format string, seed uint64, nodes, scaleNodes int, field float64, rows, cols int, prr, minPRR float64, stats bool) error {
	g, err := build(typ, in, seed, nodes, scaleNodes, field, rows, cols, prr, minPRR)
	if err != nil {
		return err
	}
	if stats {
		s := g.Analyze()
		fmt.Fprintf(os.Stderr, "%s\n", g)
		fmt.Fprintf(os.Stderr, "mean degree %.1f (min %d, max %d), diameter %d, connected %v\n",
			s.MeanDegree, s.MinDegree, s.MaxDegree, s.Diameter, s.Connected)
		fmt.Fprintf(os.Stderr, "link PRR: %s\n", s.PRR)
		fmt.Fprintf(os.Stderr, "transitional-link fraction %.2f, isolated nodes %d\n", s.Transitional, s.Isolated)
	}
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "text":
		return g.WriteText(w)
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(g)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

func build(typ, in string, seed uint64, nodes, scaleNodes int, field float64, rows, cols int, prr, minPRR float64) (*topology.Graph, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return topology.ReadText(f)
	}
	switch typ {
	case "greenorbs":
		if scaleNodes > 0 {
			cfg := topology.ScaledGreenOrbsConfig(scaleNodes)
			cfg.MinPRR = minPRR
			return topology.GenerateGreenOrbs(cfg, seed)
		}
		return topology.GreenOrbs(seed), nil
	case "testbed":
		return topology.Testbed(seed), nil
	case "rgg":
		return topology.RandomGeometric(nodes, field, field, topology.ForestRadio(), minPRR, seed)
	case "grid":
		return topology.Grid(rows, cols, prr), nil
	case "line":
		return topology.Line(nodes, prr), nil
	case "star":
		return topology.Star(nodes, prr), nil
	case "complete":
		return topology.Complete(nodes, prr), nil
	default:
		return nil, fmt.Errorf("unknown topology type %q", typ)
	}
}

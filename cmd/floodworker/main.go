// Command floodworker is the pull-based compute client for a floodd
// daemon running in -distributed mode. It polls the daemon for work,
// leases chunks of the active sweep, simulates them with the same
// engine/runner stack the daemon uses locally, heartbeats while
// simulating, and reports results back. Because every simulation is
// deterministic and the daemon journals completions idempotently, any
// number of workers — killed, restarted, or zombified mid-chunk — leave
// the final CSV byte-identical to a single-daemon run.
//
// Usage:
//
//	floodworker -server http://127.0.0.1:8080 [-name host-pid]
//	            [-parallel 0] [-poll 300ms] [-idle-exit 0]
//
// The worker is stateless: all coordination lives in the daemon's lease
// manager and journal. A worker that dies mid-chunk simply stops
// heartbeating; its lease expires and the chunk is reassigned. A worker
// that outlives its lease (a zombie) still reports — the daemon accepts
// fresh cells (deterministic work is deterministic) and drops duplicates.
// Transport errors are retried with a steady poll: a daemon restart looks
// like a brief outage, not a failure.
//
// Before executing a grant the worker compiles the job's Spec locally and
// verifies its journal key matches the grant's — a mismatch means the
// worker binary disagrees with the daemon about what the sweep computes
// (version skew) and executing would corrupt the sweep, so the worker
// refuses the job. See docs/SERVICE.md, "Distributed sweeps".
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ldcflood/internal/runner"
	"ldcflood/internal/service"
	"ldcflood/internal/sim"
)

func main() {
	var (
		server   = flag.String("server", "", "floodd base URL (required), e.g. http://127.0.0.1:8080")
		name     = flag.String("name", "", "worker name reported to the daemon (default host-pid)")
		parallel = flag.Int("parallel", 0, "cells simulated concurrently within a chunk (0 = GOMAXPROCS)")
		poll     = flag.Duration("poll", 300*time.Millisecond, "idle poll interval when no work is available")
		idleExit = flag.Duration("idle-exit", 0, "exit after this long without work (0 = run forever)")

		completeDelay = flag.Duration("complete-delay", 0, "chaos testing: sleep before reporting each chunk (a delay beyond the lease TTL forces zombie completions)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage: floodworker -server URL [flags]

Pull-based compute client for floodd -distributed: leases sweep chunks,
simulates them, reports results. Safe to kill -9 at any instant — the
lease protocol reassigns abandoned chunks and deduplicates late reports.
See docs/SERVICE.md.

flags:
`)
		flag.PrintDefaults()
	}
	flag.Parse()
	if *server == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	w := &worker{
		base: *server, name: *name, parallel: *parallel,
		poll: *poll, idleExit: *idleExit, completeDelay: *completeDelay,
		client: &http.Client{Timeout: 30 * time.Second},
		grids:  make(map[string]*service.Grid),
		logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "floodworker["+*name+"]: "+format+"\n", args...)
		},
	}
	if err := w.run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "floodworker:", err)
		os.Exit(1)
	}
}

// worker is one floodworker process's state: the daemon endpoint, the
// compiled-grid cache, and the knobs.
type worker struct {
	base          string
	name          string
	parallel      int
	poll          time.Duration
	idleExit      time.Duration
	completeDelay time.Duration
	client        *http.Client
	grids         map[string]*service.Grid // job id -> compiled grid
	logf          func(format string, args ...any)
}

// run is the main loop: discover work, lease, simulate, report, repeat.
// Every transport failure degrades to an idle poll — the daemon may be
// restarting, and the lease protocol makes waiting always safe.
func (w *worker) run(ctx context.Context) error {
	idleSince := time.Now()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		worked, err := w.pullOnce(ctx)
		if err != nil && !errors.Is(err, context.Canceled) {
			w.logf("%v", err)
		}
		if worked {
			idleSince = time.Now()
			continue
		}
		if w.idleExit > 0 && time.Since(idleSince) > w.idleExit {
			w.logf("idle for %v, exiting", w.idleExit)
			return nil
		}
		t := time.NewTimer(w.poll)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
}

// pullOnce performs one unit of the loop: find the active job, claim one
// lease, execute it, report. It returns true when a chunk was executed
// (the caller skips the idle backoff).
func (w *worker) pullOnce(ctx context.Context) (bool, error) {
	var work service.WorkReply
	code, err := w.getJSON(ctx, "/v1/work", &work)
	if err != nil {
		return false, err
	}
	if code == http.StatusNoContent {
		return false, nil
	}
	if code != http.StatusOK {
		return false, fmt.Errorf("GET /v1/work: unexpected status %d", code)
	}
	grid, err := w.grid(ctx, work.ID)
	if err != nil {
		return false, err
	}

	var grant service.LeaseGrant
	code, err = w.postJSON(ctx, "/v1/jobs/"+work.ID+"/lease",
		service.LeaseRequest{Worker: w.name}, &grant)
	if err != nil {
		return false, err
	}
	switch code {
	case http.StatusOK:
	case http.StatusNoContent, http.StatusGone, http.StatusConflict:
		// Nothing leasable right now / the job just finished / the job
		// transitioned out of distributed mode between the two calls.
		return false, nil
	default:
		return false, fmt.Errorf("lease: unexpected status %d", code)
	}
	if grant.Key != grid.JournalKey() {
		// Version skew: our engine would not compute what the daemon
		// journals. Refuse rather than corrupt; the lease expires harmlessly.
		return false, fmt.Errorf("job %s: journal key mismatch (daemon %q, local %q) — rebuild floodworker to match the daemon",
			work.ID, grant.Key, grid.JournalKey())
	}
	w.execute(ctx, work.ID, grid, &grant)
	return true, nil
}

// grid returns the compiled grid for a job, fetching and compiling its
// Spec on first use. Grids are cached per job id — compilation builds the
// full topology, which is far more expensive than a chunk's HTTP round
// trip.
func (w *worker) grid(ctx context.Context, id string) (*service.Grid, error) {
	if g, ok := w.grids[id]; ok {
		return g, nil
	}
	var st service.Status
	code, err := w.getJSON(ctx, "/v1/jobs/"+id, &st)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/jobs/%s: unexpected status %d", id, code)
	}
	g, err := service.Compile(st.Spec)
	if err != nil {
		return nil, fmt.Errorf("job %s: compiling spec: %w", id, err)
	}
	w.grids[id] = g
	w.logf("job %s: compiled grid (%d cells, key %q)", id, len(g.Cells), g.JournalKey())
	return g, nil
}

// execute simulates one leased chunk, heartbeating at TTL/3 while it
// runs, and reports the outcomes. A lost lease (heartbeat 410) cancels
// the chunk mid-simulation; a -complete-delay past the TTL turns the
// report into a deliberate zombie completion, which the daemon dedupes.
func (w *worker) execute(ctx context.Context, jobID string, grid *service.Grid, grant *service.LeaseGrant) {
	w.logf("job %s: leased chunk %d (%d cells, lease %s)", jobID, grant.Chunk, len(grant.Cells), grant.Lease)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		tick := time.NewTicker(time.Duration(grant.TTL) / 3)
		defer tick.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-tick.C:
				var hb service.HeartbeatReply
				code, err := w.postJSON(runCtx, "/v1/jobs/"+jobID+"/lease/"+grant.Lease+"/heartbeat", struct{}{}, &hb)
				if err != nil {
					continue // transient; the next tick retries
				}
				if code == http.StatusGone || code == http.StatusConflict {
					w.logf("job %s: lease %s gone, abandoning chunk %d", jobID, grant.Lease, grant.Chunk)
					cancel()
					return
				}
			}
		}
	}()

	cfgs := make([]sim.Config, len(grant.Cells))
	for i, idx := range grant.Cells {
		if idx < 0 || idx >= len(grid.Jobs) {
			w.logf("job %s: grant cell %d outside grid, abandoning", jobID, idx)
			return
		}
		cfgs[i] = grid.Jobs[idx]
	}
	ropts := grid.Options()
	ropts.Workers = w.parallel
	rs, _ := runner.Run(runCtx, cfgs, ropts)
	// Snapshot abandonment BEFORE tearing runCtx down ourselves: after
	// cancel() below, runCtx.Err() is non-nil on every path and cannot
	// distinguish a lost lease from a normal finish.
	abandoned := runCtx.Err() != nil && ctx.Err() == nil
	cancel()
	<-hbDone
	if ctx.Err() != nil {
		return // shutting down; the lease expires and the chunk is reassigned
	}
	if abandoned {
		// The heartbeat loop abandoned the chunk: someone else owns it now.
		return
	}

	outs := make([]service.CellOutcome, len(rs))
	for i := range rs {
		outs[i] = service.CellOutcome{Index: grant.Cells[i], Res: rs[i].Res}
		if err := rs[i].Err; err != nil {
			outs[i].Error = err.Error()
			var je *runner.JobError
			if errors.As(err, &je) {
				outs[i].Terminal = je.Kind == runner.KindSim || je.Kind == runner.KindSlotLimit
			}
		}
	}
	if w.completeDelay > 0 {
		w.logf("job %s: chaos delay %v before completing chunk %d", jobID, w.completeDelay, grant.Chunk)
		t := time.NewTimer(w.completeDelay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return
		}
	}
	var reply service.CompleteReply
	code, err := w.postJSON(ctx, "/v1/jobs/"+jobID+"/lease/"+grant.Lease+"/complete",
		service.CompleteRequest{Worker: w.name, Key: grant.Key, Results: outs}, &reply)
	switch {
	case err != nil:
		// The daemon will reassign the chunk; our work is simply lost.
		w.logf("job %s: completing chunk %d: %v", jobID, grant.Chunk, err)
	case code == http.StatusGone:
		w.logf("job %s: chunk %d completed as zombie (accepted %d, dropped %d)",
			jobID, grant.Chunk, reply.Accepted, reply.Dropped)
	case code == http.StatusOK:
		w.logf("job %s: chunk %d complete (accepted %d, dropped %d, zombie %v)",
			jobID, grant.Chunk, reply.Accepted, reply.Dropped, reply.Zombie)
	default:
		w.logf("job %s: completing chunk %d: unexpected status %d", jobID, grant.Chunk, code)
	}
}

// getJSON performs a GET and decodes a JSON body into out (skipped for
// 204). It returns the status code; transport errors are returned as-is.
func (w *worker) getJSON(ctx context.Context, path string, out any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+path, nil)
	if err != nil {
		return 0, err
	}
	return w.do(req, out)
}

// postJSON performs a POST with a JSON body and decodes the JSON reply
// into out. It returns the status code; transport errors are returned
// as-is.
func (w *worker) postJSON(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	return w.do(req, out)
}

// do executes the request and best-effort decodes a JSON body into out.
func (w *worker) do(req *http.Request, out any) (int, error) {
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil && resp.StatusCode < 300 {
			return resp.StatusCode, fmt.Errorf("%s %s: decoding reply: %w", req.Method, req.URL.Path, err)
		}
	}
	return resp.StatusCode, nil
}

// Command tracecat converts and inspects flooding event traces in either
// of the two on-disk encodings: the line-oriented text format
// (internal/tracelog) and the compact binary format (internal/tracebin).
// The input encoding is auto-detected from the file's leading bytes (a
// binary trace always starts with the "LDCT" magic), so the same command
// line works on both.
//
// Usage:
//
//	tracecat [-to text|bin] [-o FILE] [-summary] [-validate] [FILE]
//
// With no FILE (or "-") the trace is read from stdin. The default action
// converts to the -to encoding (text unless told otherwise) and writes it
// to -o (stdout unless told otherwise) — so a bare
//
//	tracecat flood.tracebin
//
// prints a binary trace as readable text, and
//
//	tracecat -to bin -o flood.tracebin flood.trace
//
// packs a text trace (flags must precede the file, as usual for the
// standard flag package). Conversion is lossless in both directions: the two
// encodings carry the identical event tuples, and text -> bin -> text
// reproduces the original bytes (see docs/TRACE.md for the compatibility
// matrix).
//
// -summary prints event counts, outcome histogram, and the slot span
// instead of converting. -validate replays the trace against the
// simulator's physical rules (tracelog.Validate) and fails loudly on the
// first inconsistency. The two compose with each other and suppress
// conversion.
//
// A binary trace with a torn tail — a writer killed before its last
// buffered record drained — is read to the tear and reported as a warning
// on stderr, matching the crash tolerance of the sweep journal; corruption
// (bad magic, unknown record kind) is a hard error.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"ldcflood/internal/sim"
	"ldcflood/internal/tracebin"
	"ldcflood/internal/tracelog"
)

func main() {
	var (
		to       = flag.String("to", "text", "output encoding: 'text' (tracelog) or 'bin' (compact binary)")
		out      = flag.String("o", "", "output path (default stdout)")
		summary  = flag.Bool("summary", false, "print trace statistics instead of converting")
		validate = flag.Bool("validate", false, "check the trace against the simulator's physical rules instead of converting")
	)
	flag.Parse()
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "tracecat: at most one input file")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *to, *out, *summary, *validate); err != nil {
		fmt.Fprintln(os.Stderr, "tracecat:", err)
		os.Exit(1)
	}
}

func run(path, to, out string, summary, validate bool) error {
	events, err := load(path)
	if err != nil {
		return err
	}
	if validate {
		if err := tracelog.Validate(events); err != nil {
			return fmt.Errorf("invalid trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "tracecat: %d events, trace is consistent\n", len(events))
	}
	if summary {
		return printSummary(os.Stdout, events)
	}
	if validate {
		return nil
	}

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch to {
	case "text":
		bw := bufio.NewWriter(w)
		l := tracelog.NewLogger(bw)
		for _, ev := range events {
			emit(l, ev)
		}
		if err := l.Flush(); err != nil {
			return err
		}
		return bw.Flush()
	case "bin":
		tw := tracebin.NewWriter(w)
		if err := tw.WriteEvents(events); err != nil {
			return err
		}
		return tw.Flush()
	}
	return fmt.Errorf("unknown -to %q (want 'text' or 'bin')", to)
}

// load reads the whole input and decodes it, sniffing the encoding from
// the leading bytes: a tracebin document always starts with the magic,
// which can never begin a tracelog line.
func load(path string) ([]tracelog.Event, error) {
	var data []byte
	var err error
	if path == "" || path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	if len(data) >= len(tracebin.Magic) && string(data[:len(tracebin.Magic)]) == tracebin.Magic {
		events, torn, err := tracebin.ReadAll(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		if torn {
			fmt.Fprintf(os.Stderr, "tracecat: warning: torn tail — trace ends mid-record, decoded the %d events before the tear\n", len(events))
		}
		return events, nil
	}
	return tracelog.Parse(bytes.NewReader(data))
}

// emit replays one decoded event into a logger, the text-encoding dual of
// tracebin.Writer.WriteEvent.
func emit(l *tracelog.Logger, ev tracelog.Event) {
	switch ev.Kind {
	case tracelog.KindInject:
		l.OnInject(ev.T, ev.Packet)
	case tracelog.KindTransmit:
		l.OnTransmit(ev.T, ev.From, ev.To, ev.Packet, ev.Outcome)
	case tracelog.KindOverhear:
		l.OnOverhear(ev.T, ev.From, ev.To, ev.Packet)
	case tracelog.KindCovered:
		l.OnCovered(ev.T, ev.Packet)
	}
}

// printSummary renders tracelog.Summarize as an aligned table with a
// deterministic outcome ordering.
func printSummary(w io.Writer, events []tracelog.Event) error {
	s := tracelog.Summarize(events)
	fmt.Fprintf(w, "events         %d\n", s.Events)
	fmt.Fprintf(w, "injections     %d\n", s.Injections)
	fmt.Fprintf(w, "transmissions  %d\n", s.Transmissions)
	outcomes := make([]sim.TxOutcome, 0, len(s.Outcomes))
	for o := range s.Outcomes {
		outcomes = append(outcomes, o)
	}
	sort.Slice(outcomes, func(i, j int) bool { return outcomes[i] < outcomes[j] })
	for _, o := range outcomes {
		fmt.Fprintf(w, "  outcome %-12s %d\n", o, s.Outcomes[o])
	}
	fmt.Fprintf(w, "overheard      %d\n", s.Overheard)
	fmt.Fprintf(w, "covered        %d\n", s.Covered)
	fmt.Fprintf(w, "slots          %d..%d\n", s.FirstSlot, s.LastSlot)
	fmt.Fprintf(w, "active senders %d\n", len(s.PerNodeTx))
	return nil
}

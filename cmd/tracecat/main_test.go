package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
	"ldcflood/internal/tracebin"
	"ldcflood/internal/tracelog"

	"ldcflood/internal/flood"
)

// capture runs one small flood and returns its trace in both encodings.
func capture(t *testing.T) (text, bin []byte) {
	t.Helper()
	g := topology.Grid(5, 5, 0.9)
	p, err := flood.New("opt")
	if err != nil {
		t.Fatal(err)
	}
	var tbuf bytes.Buffer
	logger := tracelog.NewLogger(&tbuf)
	cfg := sim.Config{
		Graph:          g,
		Schedules:      schedule.AssignUniform(g.N(), 10, rngutil.New(7).SubName("schedule")),
		Protocol:       p,
		M:              3,
		InjectInterval: 2,
		Coverage:       1,
		Seed:           7,
		Observer:       logger,
	}
	if _, err := sim.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if err := logger.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := tracelog.Parse(bytes.NewReader(tbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	binBytes, err := tracebin.Encode(events)
	if err != nil {
		t.Fatal(err)
	}
	return tbuf.Bytes(), binBytes
}

// TestConvertRoundTrip drives run() through both conversion directions on
// real trace files and demands byte-identity.
func TestConvertRoundTrip(t *testing.T) {
	text, bin := capture(t)
	dir := t.TempDir()
	textPath := filepath.Join(dir, "flood.trace")
	binPath := filepath.Join(dir, "flood.tracebin")
	if err := os.WriteFile(textPath, text, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(binPath, bin, 0o644); err != nil {
		t.Fatal(err)
	}

	gotBin := filepath.Join(dir, "out.tracebin")
	if err := run(textPath, "bin", gotBin, false, false); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(gotBin); !bytes.Equal(got, bin) {
		t.Error("text -> bin conversion does not match direct encoding")
	}

	gotText := filepath.Join(dir, "out.trace")
	if err := run(binPath, "text", gotText, false, false); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(gotText); !bytes.Equal(got, text) {
		t.Error("bin -> text conversion does not reproduce the original text")
	}

	if err := run(textPath, "xml", gotText, false, false); err == nil {
		t.Error("unknown -to encoding did not error")
	}
}

// TestValidate exercises the -validate path on a good trace and on one
// that breaks possession monotonicity.
func TestValidate(t *testing.T) {
	text, _ := capture(t)
	dir := t.TempDir()
	good := filepath.Join(dir, "good.trace")
	if err := os.WriteFile(good, text, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(good, "text", filepath.Join(dir, "sink"), false, true); err != nil {
		t.Fatalf("valid trace failed validation: %v", err)
	}
	bad := filepath.Join(dir, "bad.trace")
	// Node 3 transmits packet 0 without ever holding it.
	if err := os.WriteFile(bad, []byte("T 1 3 4 0 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, "text", filepath.Join(dir, "sink2"), false, true); err == nil {
		t.Fatal("inconsistent trace passed validation")
	}
}

// TestLoadDetectsAndReports checks format sniffing, torn-tail tolerance,
// and hard errors on corrupt input.
func TestLoadDetectsAndReports(t *testing.T) {
	text, bin := capture(t)
	dir := t.TempDir()

	textPath := filepath.Join(dir, "a.trace")
	if err := os.WriteFile(textPath, text, 0o644); err != nil {
		t.Fatal(err)
	}
	fromText, err := load(textPath)
	if err != nil {
		t.Fatal(err)
	}
	binPath := filepath.Join(dir, "a.tracebin")
	if err := os.WriteFile(binPath, bin, 0o644); err != nil {
		t.Fatal(err)
	}
	fromBin, err := load(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromText) == 0 || len(fromText) != len(fromBin) {
		t.Fatalf("sniffed decodes disagree: %d text vs %d bin events", len(fromText), len(fromBin))
	}

	torn := filepath.Join(dir, "torn.tracebin")
	if err := os.WriteFile(torn, bin[:len(bin)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	events, err := load(torn)
	if err != nil {
		t.Fatalf("torn tail must not be an error: %v", err)
	}
	if len(events) != len(fromBin)-1 {
		t.Fatalf("torn load returned %d events, want %d", len(events), len(fromBin)-1)
	}

	corrupt := filepath.Join(dir, "corrupt.trace")
	if err := os.WriteFile(corrupt, []byte("Z 1 2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(corrupt); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("corrupt text load error %v does not name the line", err)
	}
}

// TestSummary spot-checks the rendered statistics table.
func TestSummary(t *testing.T) {
	text, _ := capture(t)
	events, err := tracelog.Parse(bytes.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := printSummary(&buf, events); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"injections     3", "covered        3", "outcome success"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

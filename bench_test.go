// Package ldcflood's root benchmark harness regenerates every table and
// figure of the paper (see DESIGN.md §4) as testing.B benchmarks, reporting
// the headline metric of each experiment via b.ReportMetric, plus the
// ablation benchmarks for the design choices called out in DESIGN.md §5.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package ldcflood

import (
	"context"
	"testing"

	"ldcflood/internal/analysis"
	"ldcflood/internal/experiments"
	"ldcflood/internal/flood"
	"ldcflood/internal/matrixflood"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/runner"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

// benchOpts keeps the simulation benchmarks affordable per iteration while
// preserving every qualitative shape (same topology, duty cycles, coverage
// rule as the paper; fewer packets).
func benchOpts() experiments.SimOptions {
	o := experiments.QuickSimOptions()
	o.M = 10
	return o
}

// BenchmarkFig3MatrixFlood regenerates the Fig. 3 worked example of
// Algorithm 1 (N=4, M=2) including the possession-matrix trace.
func BenchmarkFig3MatrixFlood(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fd, err := experiments.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		_ = fd.Render()
	}
}

// BenchmarkTableIWaitings regenerates Table I: the analytic per-packet
// waitings cross-checked against Algorithm 1 on N=1024, M=20.
func BenchmarkTableIWaitings(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.FigureData
	for i := 0; i < b.N; i++ {
		fd, err := experiments.TableI()
		if err != nil {
			b.Fatal(err)
		}
		last = fd
	}
	b.ReportMetric(float64(len(last.TableRows)), "rows")
}

// BenchmarkFig5Theorem1 regenerates both panels of Fig. 5 (Theorem 1
// delay-limit curves) and reports the N=1024, T=5, M=20 anchor value.
func BenchmarkFig5Theorem1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(analysis.FDLTheorem1(1024, 20, 5), "FDL(N=1024,M=20,T=5)")
}

// BenchmarkFig6Theorem2 regenerates Fig. 6 (Theorem 2 bounds for arbitrary
// N).
func BenchmarkFig6Theorem2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
	bounds := analysis.FDLTheorem2(1024, 20, 5)
	b.ReportMetric(bounds.Upper-bounds.Lower, "bound-width(N=1024,M=20)")
}

// BenchmarkFig7LinkLoss regenerates Fig. 7: the k-class characteristic-root
// delay prediction across duty cycles and link qualities.
func BenchmarkFig7LinkLoss(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(analysis.PredictedDelay(298, 0.99, 2.0, 50), "delay(k=2,duty=2%)")
}

// BenchmarkFig8Topology regenerates the synthetic GreenOrbs topology of
// Fig. 8 and its calibration statistics.
func BenchmarkFig8Topology(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(uint64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(topology.GreenOrbs(1).Analyze().MeanDegree, "mean-degree")
}

// BenchmarkFig9DelayVsIndex regenerates Fig. 9: per-packet flooding delay
// versus packet index for OPT/DBAO/OF at 5% duty.
func BenchmarkFig9DelayVsIndex(b *testing.B) {
	opts := benchOpts()
	b.ReportAllocs()
	var last *experiments.FigureData
	for i := 0; i < b.N; i++ {
		fd, err := experiments.Fig9(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = fd
	}
	if s := last.SeriesByName("OPT"); s != nil && len(s.Y) > 0 {
		b.ReportMetric(s.Y[len(s.Y)-1], "OPT-last-packet-delay")
	}
}

// BenchmarkFig10DelayVsDuty regenerates Fig. 10: average flooding delay
// versus duty cycle with the analytic lower bound.
func BenchmarkFig10DelayVsDuty(b *testing.B) {
	opts := benchOpts()
	b.ReportAllocs()
	var last *experiments.FigureData
	for i := 0; i < b.N; i++ {
		fd, _, err := experiments.Fig10And11(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = fd
	}
	if s := last.SeriesByName("OPT"); s != nil && len(s.Y) > 0 {
		b.ReportMetric(s.Y[0], "OPT-delay-at-2%")
	}
}

// BenchmarkFig11Failures regenerates Fig. 11: transmission failures versus
// duty cycle.
func BenchmarkFig11Failures(b *testing.B) {
	opts := benchOpts()
	b.ReportAllocs()
	var last *experiments.FigureData
	for i := 0; i < b.N; i++ {
		_, fd, err := experiments.Fig10And11(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = fd
	}
	if s := last.SeriesByName("DBAO"); s != nil && len(s.Y) > 0 {
		b.ReportMetric(s.Y[0], "DBAO-failures-at-2%")
	}
}

// BenchmarkRunnerBatch measures the internal/runner batch executor
// end-to-end on a Fig. 10-shaped grid (3 protocols × 4 duty cycles on the
// 298-node GreenOrbs topology, M=10) with one worker versus the full
// machine. Both variants produce identical results; the ratio of their
// times is the parallel speedup every sweep in the repository inherits.
func BenchmarkRunnerBatch(b *testing.B) {
	g := topology.GreenOrbs(1)
	build := func(b *testing.B) []sim.Config {
		b.Helper()
		// Protocols are stateful, so every iteration needs fresh instances.
		var jobs []sim.Config
		duties := []float64{0.02, 0.05, 0.10, 0.20}
		seeds := runner.Seeds(1, len(duties)*3)
		for ji, name := range []string{"opt", "dbao", "of"} {
			for di, duty := range duties {
				p, err := flood.New(name)
				if err != nil {
					b.Fatal(err)
				}
				seed := seeds[ji*len(duties)+di]
				period := schedule.PeriodForDuty(duty)
				jobs = append(jobs, sim.Config{
					Graph:     g,
					Schedules: schedule.AssignUniform(g.N(), period, rngutil.New(seed).SubName("schedule")),
					Protocol:  p,
					M:         10,
					Coverage:  0.99,
					Seed:      seed,
				})
			}
		}
		return jobs
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"workers-1", 1},
		{"workers-max", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			var slots int64
			for i := 0; i < b.N; i++ {
				rs, stats := runner.Run(context.Background(), build(b), runner.Options{Workers: bc.workers})
				if err := rs.Err(); err != nil {
					b.Fatal(err)
				}
				slots = stats.Slots
			}
			b.ReportMetric(float64(slots), "slots-per-batch")
		})
	}
}

// BenchmarkEngine is the engine-throughput baseline (BENCH_engine.json is
// produced from the same grid by `make bench` via cmd/engbench): the
// 298-node GreenOrbs topology × {OPT, DBAO, OF} × duty {1%, 5%}, with the
// slot-by-slot reference path and the compact-time fast path side by side.
// The compact/slow ns-per-op ratio is the fast path's speedup; the compact
// variants must report zero steady-state allocations per slot (the
// per-iteration allocations are Run's one-time setup).
func BenchmarkEngine(b *testing.B) {
	g := topology.GreenOrbs(1)
	for _, duty := range []struct {
		name   string
		period int
	}{
		{"duty-1pct", 100},
		{"duty-5pct", 20},
	} {
		scheds := schedule.AssignUniform(g.N(), duty.period, rngutil.New(1).SubName("schedule"))
		for _, name := range []string{"opt", "dbao", "of"} {
			for _, mode := range []struct {
				name    string
				compact bool
			}{
				{"slow", false},
				{"compact", true},
			} {
				b.Run(name+"-"+duty.name+"-"+mode.name, func(b *testing.B) {
					// One protocol instance per sub-benchmark: Run calls
					// Reset every iteration, and reusing the instance lets
					// the graph-keyed Reset memoization kick in exactly as
					// it does across a sweep's runs.
					p, err := flood.New(name)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportAllocs()
					b.ResetTimer()
					var slots int64
					for i := 0; i < b.N; i++ {
						res, err := sim.Run(sim.Config{
							Graph:       g,
							Schedules:   scheds,
							Protocol:    p,
							M:           10,
							Coverage:    0.99,
							Seed:        1,
							CompactTime: mode.compact,
						})
						if err != nil {
							b.Fatal(err)
						}
						if !res.Completed {
							b.Fatal("benchmark run did not complete")
						}
						slots = res.TotalSlots
					}
					b.ReportMetric(float64(slots), "sim-slots")
				})
			}
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §5) ---

// BenchmarkAblationExpiry compares Algorithm 1 with and without the
// expired-time rule: disabling it lets stale packets crowd out fresh ones.
func BenchmarkAblationExpiry(b *testing.B) {
	const cap = 100000
	run := func(b *testing.B, disable bool) {
		b.ReportAllocs()
		total, livelocks := 0, 0
		for i := 0; i < b.N; i++ {
			res, err := matrixflood.Run(matrixflood.Config{N: 64, M: 16, DisableExpiry: disable, MaxSlots: cap})
			if err != nil {
				// Livelock — stale packets crowd fresh ones out forever —
				// is the expected ablation outcome; report the cap.
				total += cap
				livelocks++
				continue
			}
			total += res.TotalSlots
		}
		b.ReportMetric(float64(total)/float64(b.N), "compact-slots")
		b.ReportMetric(float64(livelocks)/float64(b.N), "livelock-fraction")
	}
	b.Run("with-expiry", func(b *testing.B) { run(b, false) })
	b.Run("without-expiry", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationPacketChoice compares most-recent-first against FIFO
// packet selection in the general compact-time scheduler: FIFO destroys
// pipelining.
func BenchmarkAblationPacketChoice(b *testing.B) {
	run := func(b *testing.B, policy matrixflood.Policy) {
		b.ReportAllocs()
		total := 0
		for i := 0; i < b.N; i++ {
			res, err := matrixflood.RunGeneral(matrixflood.Config{N: 298, M: 12, Policy: policy})
			if err != nil {
				b.Fatal(err)
			}
			total += res.TotalSlots
		}
		b.ReportMetric(float64(total)/float64(b.N), "compact-slots")
	}
	b.Run("most-recent-first", func(b *testing.B) { run(b, matrixflood.MostRecentFirst) })
	b.Run("fifo", func(b *testing.B) { run(b, matrixflood.FIFOPacket) })
}

func benchSimProtocol(b *testing.B, p sim.Protocol) *sim.Result {
	b.Helper()
	g := topology.GreenOrbs(1)
	res, err := sim.Run(sim.Config{
		Graph:     g,
		Schedules: schedule.AssignUniform(g.N(), 20, rngutil.New(uint64(b.N)).SubName("schedule")),
		Protocol:  p,
		M:         10,
		Coverage:  0.99,
		Seed:      uint64(b.N),
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationOverhearing compares DBAO with and without overhearing:
// off raises transmissions and failures.
func BenchmarkAblationOverhearing(b *testing.B) {
	run := func(b *testing.B, disable bool) {
		b.ReportAllocs()
		var delay, tx float64
		for i := 0; i < b.N; i++ {
			res := benchSimProtocol(b, &flood.DBAO{DisableOverhearing: disable})
			delay += res.MeanDelay()
			tx += float64(res.Transmissions)
		}
		b.ReportMetric(delay/float64(b.N), "mean-delay-slots")
		b.ReportMetric(tx/float64(b.N), "transmissions")
	}
	b.Run("with-overhearing", func(b *testing.B) { run(b, false) })
	b.Run("without-overhearing", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationOpportunistic compares OF with and without opportunistic
// links: pure tree forwarding pays full sleep latency on every hop.
func BenchmarkAblationOpportunistic(b *testing.B) {
	run := func(b *testing.B, disable bool) {
		b.ReportAllocs()
		var delay float64
		for i := 0; i < b.N; i++ {
			of := flood.NewOF()
			of.DisableOpportunistic = disable
			res := benchSimProtocol(b, of)
			delay += res.MeanDelay()
		}
		b.ReportMetric(delay/float64(b.N), "mean-delay-slots")
	}
	b.Run("with-opportunistic", func(b *testing.B) { run(b, false) })
	b.Run("tree-only", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationCSRange sweeps DBAO's carrier-sense range factor: small
// ranges breed hidden terminals and collisions, large ranges converge to
// OPT.
func BenchmarkAblationCSRange(b *testing.B) {
	for _, factor := range []float64{1.0, 1.2, 1.8} {
		b.Run(map[float64]string{1.0: "cs-1.0", 1.2: "cs-1.2", 1.8: "cs-1.8"}[factor], func(b *testing.B) {
			b.ReportAllocs()
			var delay, coll float64
			for i := 0; i < b.N; i++ {
				res := benchSimProtocol(b, &flood.DBAO{CSRangeFactor: factor})
				delay += res.MeanDelay()
				coll += float64(res.CollisionFailures)
			}
			b.ReportMetric(delay/float64(b.N), "mean-delay-slots")
			b.ReportMetric(coll/float64(b.N), "collisions")
		})
	}
}

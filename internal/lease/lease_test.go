package lease

import (
	"errors"
	"testing"
	"time"

	"ldcflood/internal/rngutil"
	"ldcflood/internal/telemetry"
)

// fakeClock is a manually-advanced clock for deterministic expiry tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClock() *fakeClock                   { return &fakeClock{t: time.Unix(1000, 0)} }
func ints(vs ...int) []int                   { return vs }
func mustLease(t *testing.T, m *Manager) *Lease {
	t.Helper()
	l, err := m.Lease("w")
	if err != nil {
		t.Fatalf("Lease: %v", err)
	}
	return l
}

func TestLeaseCompleteLifecycle(t *testing.T) {
	clk := newClock()
	reg := telemetry.New()
	m := NewManager(Config{Cells: ints(0, 1, 2, 3, 4), ChunkSize: 2, TTL: time.Second, Now: clk.now, Telemetry: reg})

	var leases []*Lease
	for i := 0; i < 3; i++ {
		l := mustLease(t, m)
		leases = append(leases, l)
	}
	if _, err := m.Lease("w"); !errors.Is(err, ErrNoWork) {
		t.Fatalf("fourth lease: got %v, want ErrNoWork", err)
	}
	// Chunks are [0,1], [2,3], [4] in index order.
	if got := leases[0].Cells; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("first chunk cells = %v", got)
	}
	if got := leases[2].Cells; len(got) != 1 || got[0] != 4 {
		t.Fatalf("third chunk cells = %v", got)
	}
	for _, l := range leases {
		acc, err := m.Complete(l.ID, l.Cells, "", false)
		if err != nil {
			t.Fatalf("Complete: %v", err)
		}
		if len(acc.Cells) != len(l.Cells) || acc.Dropped != 0 || acc.Zombie {
			t.Fatalf("accept = %+v, want all cells fresh", acc)
		}
	}
	select {
	case <-m.Finished():
	default:
		t.Fatal("manager not finished after all chunks completed")
	}
	if err := m.Err(); err != nil {
		t.Fatalf("Err after success: %v", err)
	}
	if _, err := m.Lease("w"); !errors.Is(err, ErrFinished) {
		t.Fatalf("lease after finish: got %v, want ErrFinished", err)
	}
	if v := reg.Counter("lease.cells.accepted").Value(); v != 5 {
		t.Fatalf("lease.cells.accepted = %d, want 5", v)
	}
}

func TestHeartbeatExtendsAndExpiryForfeits(t *testing.T) {
	clk := newClock()
	m := NewManager(Config{Cells: ints(0, 1), ChunkSize: 2, TTL: time.Second,
		BackoffBase: 100 * time.Millisecond, Now: clk.now})
	l := mustLease(t, m)

	clk.advance(900 * time.Millisecond)
	dl, err := m.Heartbeat(l.ID)
	if err != nil {
		t.Fatalf("Heartbeat: %v", err)
	}
	if want := clk.now().Add(time.Second); !dl.Equal(want) {
		t.Fatalf("renewed deadline = %v, want %v", dl, want)
	}
	// Renewal carried it past the original deadline.
	clk.advance(900 * time.Millisecond)
	if _, err := m.Heartbeat(l.ID); err != nil {
		t.Fatalf("Heartbeat after renewal: %v", err)
	}
	// Silence for a full TTL forfeits the chunk.
	clk.advance(time.Second)
	if n := m.Expire(clk.now()); n != 1 {
		t.Fatalf("Expire = %d, want 1", n)
	}
	if _, err := m.Heartbeat(l.ID); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("heartbeat after expiry: got %v, want ErrLeaseGone", err)
	}
	// The chunk is backing off; immediately re-leasing finds nothing...
	if _, err := m.Lease("w2"); !errors.Is(err, ErrNoWork) {
		t.Fatalf("lease during backoff: got %v, want ErrNoWork", err)
	}
	// ...but becomes available once the (jittered, <= base) gate passes.
	clk.advance(100 * time.Millisecond)
	l2 := mustLease(t, m)
	if l2.Chunk != l.Chunk {
		t.Fatalf("re-lease granted chunk %d, want %d", l2.Chunk, l.Chunk)
	}
}

func TestZombieCompletionsAreDroppedNotDoubleCounted(t *testing.T) {
	clk := newClock()
	reg := telemetry.New()
	m := NewManager(Config{Cells: ints(0, 1), ChunkSize: 2, TTL: time.Second,
		BackoffBase: time.Millisecond, Now: clk.now, Telemetry: reg})

	l1 := mustLease(t, m)
	clk.advance(2 * time.Second) // l1 expires silently
	clk.advance(time.Second)     // past the backoff gate
	l2 := mustLease(t, m)
	if l2.ID == l1.ID {
		t.Fatal("re-grant reused the lease id")
	}

	// The second worker completes first.
	if _, err := m.Complete(l2.ID, l2.Cells, "", false); err != nil {
		t.Fatalf("Complete(l2): %v", err)
	}
	// The zombie reports late: detected, dropped, never double-counted.
	acc, err := m.Complete(l1.ID, l1.Cells, "", false)
	if err != nil {
		t.Fatalf("Complete(zombie): %v", err)
	}
	if !acc.Zombie || len(acc.Cells) != 0 || acc.Dropped != 2 {
		t.Fatalf("zombie accept = %+v, want Zombie, 0 fresh, 2 dropped", acc)
	}
	if v := reg.Counter("lease.zombie.completions").Value(); v != 1 {
		t.Fatalf("lease.zombie.completions = %d, want 1", v)
	}
	if v := reg.Counter("lease.cells.duplicate").Value(); v != 2 {
		t.Fatalf("lease.cells.duplicate = %d, want 2", v)
	}
	if v := reg.Counter("lease.cells.accepted").Value(); v != 2 {
		t.Fatalf("lease.cells.accepted = %d, want 2 (never double-counted)", v)
	}
}

func TestZombieFreshCellsAcceptedOnce(t *testing.T) {
	// A zombie whose chunk nobody re-completed yet: its (deterministic)
	// results are fresh and accepted, flagged as a zombie completion. The
	// re-leased worker's later report is then the duplicate.
	clk := newClock()
	m := NewManager(Config{Cells: ints(0, 1, 2), ChunkSize: 3, TTL: time.Second,
		BackoffBase: time.Millisecond, Now: clk.now})
	l1 := mustLease(t, m)
	clk.advance(3 * time.Second)
	l2 := mustLease(t, m) // chunk re-granted; l1 is now a zombie
	acc, err := m.Complete(l1.ID, l1.Cells, "", false)
	if err != nil {
		t.Fatalf("Complete(zombie): %v", err)
	}
	if !acc.Zombie || len(acc.Cells) != 3 {
		t.Fatalf("zombie accept = %+v, want 3 fresh cells", acc)
	}
	// The superseded re-grant is invalidated by the completion.
	if _, err := m.Heartbeat(l2.ID); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("heartbeat on superseded lease: got %v, want ErrLeaseGone", err)
	}
	acc2, err := m.Complete(l2.ID, l2.Cells, "", false)
	if err != nil {
		t.Fatalf("Complete(superseded): %v", err)
	}
	if len(acc2.Cells) != 0 || acc2.Dropped != 3 {
		t.Fatalf("superseded accept = %+v, want all dropped", acc2)
	}
}

func TestUnknownLeaseRejected(t *testing.T) {
	m := NewManager(Config{Cells: ints(0), Now: newClock().now})
	if _, err := m.Complete("L999999", ints(0), "", false); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("unknown lease: got %v, want ErrLeaseGone", err)
	}
	if _, err := m.Heartbeat("L999999"); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("unknown heartbeat: got %v, want ErrLeaseGone", err)
	}
}

func TestForeignCellsRejected(t *testing.T) {
	clk := newClock()
	m := NewManager(Config{Cells: ints(0, 1, 2, 3), ChunkSize: 2, Now: clk.now})
	l := mustLease(t, m)
	if _, err := m.Complete(l.ID, ints(0, 3), "", false); err == nil {
		t.Fatal("Complete with a foreign cell succeeded, want validation error")
	}
}

func TestPoisonAfterRepeatedExpiry(t *testing.T) {
	clk := newClock()
	reg := telemetry.New()
	m := NewManager(Config{Cells: ints(0, 1), ChunkSize: 2, TTL: time.Second,
		MaxAttempts: 3, BackoffBase: time.Millisecond, BackoffCap: time.Millisecond,
		Now: clk.now, Telemetry: reg})
	for i := 0; i < 3; i++ {
		mustLease(t, m)
		clk.advance(5 * time.Second)
		m.Expire(clk.now())
	}
	select {
	case <-m.Finished():
	default:
		t.Fatal("manager not settled after poison threshold")
	}
	var pe *PoisonError
	if err := m.Err(); !errors.As(err, &pe) {
		t.Fatalf("Err = %v, want *PoisonError", err)
	} else if pe.Attempts != 3 || pe.LastErr != "" {
		t.Fatalf("poison = %+v, want 3 silent attempts", pe)
	}
	if v := reg.Counter("lease.poisoned").Value(); v != 1 {
		t.Fatalf("lease.poisoned = %d, want 1", v)
	}
}

func TestPoisonCarriesWorkerError(t *testing.T) {
	clk := newClock()
	m := NewManager(Config{Cells: ints(7, 8), ChunkSize: 2, TTL: time.Second,
		MaxAttempts: 2, BackoffBase: time.Millisecond, BackoffCap: time.Millisecond, Now: clk.now})
	l := mustLease(t, m)
	if _, err := m.Complete(l.ID, nil, "sim exploded", false); err != nil {
		t.Fatalf("first failure report: %v", err)
	}
	clk.advance(time.Second)
	l = mustLease(t, m)
	_, err := m.Complete(l.ID, nil, "sim exploded again", false)
	var pe *PoisonError
	if !errors.As(err, &pe) {
		t.Fatalf("second failure: got %v, want *PoisonError", err)
	}
	if pe.LastErr != "sim exploded again" || pe.Chunk != 0 || len(pe.Cells) != 2 {
		t.Fatalf("poison = %+v", pe)
	}
}

func TestTerminalFailurePoisonsImmediately(t *testing.T) {
	clk := newClock()
	m := NewManager(Config{Cells: ints(0), MaxAttempts: 10, Now: clk.now})
	l := mustLease(t, m)
	_, err := m.Complete(l.ID, nil, "invalid config", true)
	var pe *PoisonError
	if !errors.As(err, &pe) {
		t.Fatalf("terminal failure: got %v, want immediate *PoisonError", err)
	}
	if pe.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry burn-down)", pe.Attempts)
	}
}

func TestBackoffDeterministicCappedJittered(t *testing.T) {
	m := NewManager(Config{Cells: ints(0), BackoffBase: 100 * time.Millisecond,
		BackoffCap: time.Second, Seed: 42, Now: newClock().now})
	for attempt := 1; attempt <= 10; attempt++ {
		d1 := m.backoff(3, attempt)
		d2 := m.backoff(3, attempt)
		if d1 != d2 {
			t.Fatalf("backoff(3, %d) not deterministic: %v vs %v", attempt, d1, d2)
		}
		if d1 > time.Second {
			t.Fatalf("backoff(3, %d) = %v exceeds cap", attempt, d1)
		}
		if d1 <= 0 {
			t.Fatalf("backoff(3, %d) = %v, want > 0", attempt, d1)
		}
	}
	// Jitter de-synchronizes chunks: not every chunk backs off identically.
	same := true
	ref := m.backoff(0, 2)
	for c := 1; c < 8; c++ {
		if m.backoff(c, 2) != ref {
			same = false
		}
	}
	if same {
		t.Fatal("backoff identical across chunks — jitter not applied")
	}
}

func TestJitterRangeAndDeterminism(t *testing.T) {
	base := time.Second
	for key := uint64(0); key < 1000; key++ {
		d := rngutil.Jitter(base, key)
		if d < base/2 || d >= base {
			t.Fatalf("Jitter(1s, %d) = %v outside [500ms, 1s)", key, d)
		}
		if d != rngutil.Jitter(base, key) {
			t.Fatalf("Jitter(1s, %d) not deterministic", key)
		}
	}
	if rngutil.Jitter(0, 7) != 0 {
		t.Fatal("Jitter(0) != 0")
	}
}

func TestMarkDoneCompletesChunks(t *testing.T) {
	clk := newClock()
	m := NewManager(Config{Cells: ints(0, 1, 2, 3), ChunkSize: 2, Now: clk.now})
	m.MarkDone(ints(0, 1, 2))
	p := m.Snapshot()
	if p.DoneCells != 3 || p.DoneChunks != 1 {
		t.Fatalf("snapshot = %+v, want 3 cells / 1 chunk done", p)
	}
	m.MarkDone(ints(3, 99)) // unknown index ignored
	select {
	case <-m.Finished():
	default:
		t.Fatal("manager not finished after MarkDone covered every cell")
	}
	if err := m.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
}

func TestPartialCompletionRequeuesRemainder(t *testing.T) {
	clk := newClock()
	m := NewManager(Config{Cells: ints(0, 1, 2), ChunkSize: 3, TTL: time.Second,
		BackoffBase: time.Millisecond, BackoffCap: time.Millisecond, Now: clk.now})
	l := mustLease(t, m)
	acc, err := m.Complete(l.ID, ints(0), "", false)
	if err != nil {
		t.Fatalf("partial Complete: %v", err)
	}
	if len(acc.Cells) != 1 {
		t.Fatalf("accept = %+v, want cell 0 accepted", acc)
	}
	clk.advance(10 * time.Millisecond)
	l2 := mustLease(t, m)
	if l2.Chunk != l.Chunk {
		t.Fatalf("requeued chunk = %d, want %d", l2.Chunk, l.Chunk)
	}
	acc, err = m.Complete(l2.ID, l2.Cells, "", false)
	if err != nil {
		t.Fatalf("second Complete: %v", err)
	}
	if len(acc.Cells) != 2 || acc.Dropped != 1 {
		t.Fatalf("accept = %+v, want 2 fresh + 1 duplicate", acc)
	}
	select {
	case <-m.Finished():
	default:
		t.Fatal("manager not finished")
	}
}

func TestStopSettlesWithCause(t *testing.T) {
	cause := errors.New("draining")
	m := NewManager(Config{Cells: ints(0, 1), Now: newClock().now})
	l := mustLease(t, m)
	m.Stop(cause)
	if err := m.Err(); !errors.Is(err, cause) {
		t.Fatalf("Err = %v, want the stop cause", err)
	}
	if _, err := m.Lease("w"); !errors.Is(err, ErrFinished) {
		t.Fatalf("lease after stop: got %v, want ErrFinished", err)
	}
	// In-flight completions after Stop are still answered coherently.
	if _, err := m.Complete(l.ID, l.Cells, "", false); err != nil {
		t.Fatalf("complete after stop: %v", err)
	}
}

func TestEmptyManagerFinishesImmediately(t *testing.T) {
	m := NewManager(Config{Now: newClock().now})
	select {
	case <-m.Finished():
	default:
		t.Fatal("empty manager not finished")
	}
	if _, err := m.Lease("w"); !errors.Is(err, ErrFinished) {
		t.Fatalf("lease on empty manager: got %v, want ErrFinished", err)
	}
}

// Package lease arbitrates distributed execution of a fixed set of work
// items ("cells", the batch indices of one sweep) among unreliable
// workers that may die — silently, at any instant — between any two
// protocol steps.
//
// The model is worker-pull with time-bounded ownership:
//
//   - The cells are partitioned up front into fixed-size chunks, the unit
//     of leasing.
//   - A worker calls Lease to claim a chunk. The claim is a lease: an
//     opaque id plus a deadline. Ownership is temporary by construction —
//     the protocol never needs to detect a dead worker, it only needs the
//     clock to pass its deadline.
//   - Heartbeat renews the deadline; a worker that goes silent for a full
//     TTL forfeits the chunk.
//   - Complete reports the chunk's results. Completion is idempotent per
//     cell: a cell already completed by someone else is detected and
//     dropped, never double-counted, so a zombie — a worker whose lease
//     expired but which is still running and eventually reports — is
//     harmless by design. (Because the underlying simulations are
//     deterministic, fresh cells from an expired lease are still accepted:
//     the bytes are identical to what a re-run would produce.)
//   - Expire sweeps overdue leases and requeues their chunks with capped
//     exponential backoff and deterministic jitter (seeded per chunk), so
//     a mass expiry does not thundering-herd the next Lease wave.
//   - A chunk that keeps failing — by expiry or by reported worker errors
//     — trips poison detection after Config.MaxAttempts: the whole manager
//     settles with a typed *PoisonError instead of retrying forever.
//
// The Manager tracks only ownership and per-cell done/not-done; result
// payloads stay with the caller (internal/service journals them), which
// keeps this package free of simulation types. All methods are safe for
// concurrent use. Time is injectable (Config.Now) so expiry logic is
// deterministic under test.
//
// docs/SERVICE.md ("Distributed sweeps") documents the HTTP protocol
// internal/service builds on top of this package.
package lease

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ldcflood/internal/rngutil"
	"ldcflood/internal/telemetry"
)

// Protocol errors. ErrNoWork and ErrFinished are the two "no chunk for
// you" answers a Lease call can return; ErrLeaseGone is the answer to any
// operation on a lease the manager no longer honors.
var (
	// ErrNoWork: every remaining chunk is leased out or backing off —
	// nothing to hand out right now, try again shortly.
	ErrNoWork = errors.New("lease: no chunk available")
	// ErrFinished: the manager has settled (all chunks done, a poison
	// trip, or Stop); no further leases will ever be granted.
	ErrFinished = errors.New("lease: work finished")
	// ErrLeaseGone: the lease id is unknown or no longer live (expired
	// and swept, superseded, or its chunk already completed).
	ErrLeaseGone = errors.New("lease: lease expired or unknown")
)

// PoisonError is the typed failure for a chunk that exhausted
// Config.MaxAttempts: every attempt either expired silently or reported a
// worker-side error. It fails the whole manager — the work set cannot
// complete — rather than looping forever on a chunk that never succeeds.
type PoisonError struct {
	// Chunk is the poisoned chunk's id.
	Chunk int
	// Cells are the global cell indices the chunk carries.
	Cells []int
	// Attempts is how many times the chunk was handed out.
	Attempts int
	// LastErr is the most recent worker-reported error text, "" when every
	// failure was a silent expiry.
	LastErr string
}

// Error implements error.
func (e *PoisonError) Error() string {
	if e.LastErr == "" {
		return fmt.Sprintf("lease: chunk %d poisoned after %d attempts (all leases expired silently); cells %v",
			e.Chunk, e.Attempts, e.Cells)
	}
	return fmt.Sprintf("lease: chunk %d poisoned after %d attempts; cells %v; last error: %s",
		e.Chunk, e.Attempts, e.Cells, e.LastErr)
}

// Config parameterizes a Manager. Cells is required; zero values
// elsewhere take the documented defaults.
type Config struct {
	// Cells are the global work-item indices still to execute (already-
	// journaled cells are excluded by the caller). They are sorted and
	// chunked in index order.
	Cells []int
	// ChunkSize is how many cells one lease carries. <= 0 means 4.
	ChunkSize int
	// TTL is the lease lifetime; Heartbeat resets it. <= 0 means 15s.
	TTL time.Duration
	// MaxAttempts is the per-chunk poison threshold. <= 0 means 5.
	MaxAttempts int
	// BackoffBase is the requeue delay after a chunk's first failed
	// attempt; it doubles per further attempt. <= 0 means 250ms.
	BackoffBase time.Duration
	// BackoffCap bounds the exponential growth. <= 0 means 15s.
	BackoffCap time.Duration
	// Seed keys the deterministic requeue jitter (mixed per chunk and
	// attempt), so distinct jobs de-synchronize differently but the same
	// job replays identically.
	Seed uint64
	// Now is the clock; nil means time.Now. Tests inject a fake.
	Now func() time.Time
	// Telemetry, when non-nil, receives the lease.* instruments
	// (docs/OBSERVABILITY.md has the catalog).
	Telemetry *telemetry.Registry
}

// Lease is one granted claim on a chunk.
type Lease struct {
	// ID is the opaque lease identifier presented back on Heartbeat and
	// Complete.
	ID string
	// Chunk is the claimed chunk's id.
	Chunk int
	// Cells are the global cell indices to execute.
	Cells []int
	// Deadline is when the lease expires unless renewed.
	Deadline time.Time
	// Worker is the claimant's self-reported name (diagnostics only).
	Worker string
}

// Accept is Complete's verdict: which cells the caller should persist and
// what was dropped.
type Accept struct {
	// Cells are the reported cells not yet completed by anyone — the
	// caller persists exactly these.
	Cells []int
	// Dropped counts reported cells that were already complete
	// (a duplicate completion, dropped to keep per-cell idempotency).
	Dropped int
	// Zombie reports that the completing lease had already expired (or was
	// superseded): the worker outlived its ownership.
	Zombie bool
}

// chunk states.
const (
	statePending = iota // waiting to be leased (possibly backing off)
	stateLeased         // owned by a live lease
	stateDone           // all cells reported
)

// chunk is one leasable unit.
type chunk struct {
	id        int
	cells     []int
	state     int
	notBefore time.Time // backoff gate while pending
	attempts  int       // times handed out
	lastErr   string    // most recent worker-reported error
	leaseID   string    // current owner while leased
}

// leaseRec is the manager-side record of a granted lease. Records are
// kept after expiry (tombstones) so a zombie completion can still be
// validated against the chunk it was granted for.
type leaseRec struct {
	chunk    int
	worker   string
	deadline time.Time
	live     bool
}

// managerTel is the resolved instrument set.
type managerTel struct {
	granted     *telemetry.Counter
	heartbeats  *telemetry.Counter
	expired     *telemetry.Counter
	requeues    *telemetry.Counter
	poisoned    *telemetry.Counter
	completions *telemetry.Counter
	zombies     *telemetry.Counter
	cellsOK     *telemetry.Counter
	cellsDup    *telemetry.Counter
	pending     *telemetry.Gauge
	leased      *telemetry.Gauge
	done        *telemetry.Gauge
}

// Manager arbitrates one work set. Construct with NewManager.
type Manager struct {
	cfg Config
	tel *managerTel

	mu        sync.Mutex
	chunks    []*chunk
	leases    map[string]*leaseRec
	cellState map[int]*chunk // global cell index -> owning chunk
	cellDone  map[int]bool
	remaining int // chunks not yet done
	nextLease int
	finished  chan struct{}
	failErr   error // settled outcome; nil on success
}

// NewManager partitions cfg.Cells into chunks and returns a Manager ready
// to grant leases.
func NewManager(cfg Config) *Manager {
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 4
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 15 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 250 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 15 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	m := &Manager{
		cfg:       cfg,
		leases:    make(map[string]*leaseRec),
		cellState: make(map[int]*chunk),
		cellDone:  make(map[int]bool),
		finished:  make(chan struct{}),
	}
	if cfg.Telemetry != nil {
		reg := cfg.Telemetry
		m.tel = &managerTel{
			granted:     reg.Counter("lease.granted"),
			heartbeats:  reg.Counter("lease.heartbeats"),
			expired:     reg.Counter("lease.expired"),
			requeues:    reg.Counter("lease.requeues"),
			poisoned:    reg.Counter("lease.poisoned"),
			completions: reg.Counter("lease.completions"),
			zombies:     reg.Counter("lease.zombie.completions"),
			cellsOK:     reg.Counter("lease.cells.accepted"),
			cellsDup:    reg.Counter("lease.cells.duplicate"),
			pending:     reg.Gauge("lease.chunks.pending"),
			leased:      reg.Gauge("lease.chunks.leased"),
			done:        reg.Gauge("lease.chunks.done"),
		}
	}
	cells := append([]int(nil), cfg.Cells...)
	sort.Ints(cells)
	for start := 0; start < len(cells); start += cfg.ChunkSize {
		end := start + cfg.ChunkSize
		if end > len(cells) {
			end = len(cells)
		}
		c := &chunk{id: len(m.chunks), cells: cells[start:end], state: statePending}
		m.chunks = append(m.chunks, c)
		for _, idx := range c.cells {
			m.cellState[idx] = c
		}
	}
	m.remaining = len(m.chunks)
	if m.remaining == 0 {
		m.failErr = nil
		close(m.finished)
	}
	m.gauges()
	return m
}

// gauges refreshes the chunk-state gauges; callers hold m.mu (or are the
// constructor).
func (m *Manager) gauges() {
	if m.tel == nil {
		return
	}
	var pending, leased, done int64
	for _, c := range m.chunks {
		switch c.state {
		case statePending:
			pending++
		case stateLeased:
			leased++
		case stateDone:
			done++
		}
	}
	m.tel.pending.Set(pending)
	m.tel.leased.Set(leased)
	m.tel.done.Set(done)
}

// settled reports whether the manager has reached its final state;
// callers hold m.mu.
func (m *Manager) settled() bool {
	select {
	case <-m.finished:
		return true
	default:
		return false
	}
}

// settle latches the final outcome exactly once; callers hold m.mu.
func (m *Manager) settle(err error) {
	if m.settled() {
		return
	}
	m.failErr = err
	close(m.finished)
}

// Lease grants the lowest-id pending chunk whose backoff has elapsed. It
// returns ErrNoWork when every remaining chunk is leased or backing off,
// and ErrFinished once the manager has settled. Overdue leases are swept
// first, so callers need not run Expire on their own clock to make
// forfeited chunks reclaimable.
func (m *Manager) Lease(worker string) (*Lease, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.cfg.Now()
	m.expireLocked(now)
	if m.settled() {
		return nil, ErrFinished
	}
	for _, c := range m.chunks {
		if c.state != statePending || now.Before(c.notBefore) {
			continue
		}
		m.nextLease++
		id := fmt.Sprintf("L%06d", m.nextLease)
		c.state = stateLeased
		c.attempts++
		c.leaseID = id
		deadline := now.Add(m.cfg.TTL)
		m.leases[id] = &leaseRec{chunk: c.id, worker: worker, deadline: deadline, live: true}
		if m.tel != nil {
			m.tel.granted.Inc()
		}
		m.gauges()
		return &Lease{
			ID: id, Chunk: c.id,
			Cells:    append([]int(nil), c.cells...),
			Deadline: deadline, Worker: worker,
		}, nil
	}
	return nil, ErrNoWork
}

// Heartbeat renews a live lease and returns its new deadline. A lease
// that expired (and was swept), was superseded, or whose chunk already
// completed gets ErrLeaseGone — the worker should abandon the chunk.
func (m *Manager) Heartbeat(id string) (time.Time, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.cfg.Now()
	m.expireLocked(now)
	rec, ok := m.leases[id]
	if !ok || !rec.live {
		return time.Time{}, ErrLeaseGone
	}
	rec.deadline = now.Add(m.cfg.TTL)
	if m.tel != nil {
		m.tel.heartbeats.Inc()
	}
	return rec.deadline, nil
}

// Complete reports a lease's outcome. With errText == "" it is a success
// report for the given cells: each must belong to the lease's chunk
// (anything else is a protocol violation and rejects the whole report),
// cells nobody completed yet are accepted for the caller to persist, and
// cells already completed are dropped — the idempotency that makes zombie
// double-completions harmless. Success from an expired-but-known lease is
// still accepted (the work is deterministic) and flagged Accept.Zombie.
//
// With errText != "" it is a failure report: the chunk is requeued with
// backoff, or poisons the manager once MaxAttempts is exhausted; terminal
// true skips the remaining attempts and poisons immediately (for failures
// the caller knows are deterministic, e.g. an engine validation error).
//
// An unknown lease id — a previous daemon's grant, after a restart —
// cannot be validated and is rejected with ErrLeaseGone.
func (m *Manager) Complete(id string, cells []int, errText string, terminal bool) (Accept, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.cfg.Now()
	m.expireLocked(now)
	rec, ok := m.leases[id]
	if !ok {
		if m.tel != nil {
			m.tel.zombies.Inc()
		}
		return Accept{Zombie: true}, ErrLeaseGone
	}
	c := m.chunks[rec.chunk]
	acc := Accept{Zombie: !rec.live}
	if m.tel != nil {
		m.tel.completions.Inc()
		if acc.Zombie {
			m.tel.zombies.Inc()
		}
	}
	// One report per lease: drop the record's liveness so a second
	// Complete on the same id is a zombie duplicate.
	rec.live = false
	if c.leaseID == id {
		c.leaseID = ""
	}

	if errText != "" {
		c.lastErr = errText
		if c.state == stateDone {
			// Someone else already finished the chunk; the late failure is
			// moot.
			return acc, nil
		}
		if terminal || c.attempts >= m.cfg.MaxAttempts {
			m.poisonLocked(c)
			return acc, m.failErr
		}
		m.requeueLocked(c, now)
		return acc, nil
	}

	in := make(map[int]bool, len(c.cells))
	for _, idx := range c.cells {
		in[idx] = true
	}
	for _, idx := range cells {
		if !in[idx] {
			return Accept{Zombie: acc.Zombie}, fmt.Errorf("lease: cell %d is not in chunk %d", idx, c.id)
		}
	}
	seen := make(map[int]bool, len(cells))
	for _, idx := range cells {
		if seen[idx] {
			continue
		}
		seen[idx] = true
		if m.cellDone[idx] {
			acc.Dropped++
			continue
		}
		acc.Cells = append(acc.Cells, idx)
	}
	if len(acc.Cells)+acc.Dropped < len(c.cells) && c.state != stateDone {
		// A partial success report cannot finish the chunk; requeue the
		// remainder (attempts were already charged at Lease time).
		for _, idx := range acc.Cells {
			m.cellDone[idx] = true
		}
		if c.attempts >= m.cfg.MaxAttempts {
			c.lastErr = fmt.Sprintf("partial completion (%d of %d cells)", len(acc.Cells)+acc.Dropped, len(c.cells))
			m.poisonLocked(c)
			if m.tel != nil {
				m.tel.cellsOK.Add(int64(len(acc.Cells)))
				m.tel.cellsDup.Add(int64(acc.Dropped))
			}
			return acc, m.failErr
		}
		m.requeueLocked(c, now)
	} else {
		for _, idx := range acc.Cells {
			m.cellDone[idx] = true
		}
		m.finishChunkLocked(c)
	}
	if m.tel != nil {
		m.tel.cellsOK.Add(int64(len(acc.Cells)))
		m.tel.cellsDup.Add(int64(acc.Dropped))
	}
	m.gauges()
	return acc, nil
}

// MarkDone records cells completed outside the lease protocol (e.g.
// served from a journal mid-flight); their chunks complete once every
// cell is covered. Unknown indices are ignored.
func (m *Manager) MarkDone(cells []int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, idx := range cells {
		c, ok := m.cellState[idx]
		if !ok || m.cellDone[idx] {
			continue
		}
		m.cellDone[idx] = true
		if c.state == stateDone {
			continue
		}
		all := true
		for _, ci := range c.cells {
			if !m.cellDone[ci] {
				all = false
				break
			}
		}
		if all {
			m.finishChunkLocked(c)
		}
	}
	m.gauges()
}

// finishChunkLocked marks a chunk complete, invalidating any live lease
// that still owns it (a re-grant superseded by a zombie's completion);
// callers hold m.mu.
func (m *Manager) finishChunkLocked(c *chunk) {
	if c.state == stateDone {
		return
	}
	if c.leaseID != "" {
		if rec, ok := m.leases[c.leaseID]; ok {
			rec.live = false
		}
		c.leaseID = ""
	}
	c.state = stateDone
	m.remaining--
	if m.remaining == 0 {
		m.settle(nil)
	}
}

// Expire sweeps overdue leases at the given instant: each forfeits its
// chunk, which is requeued with capped exponential backoff plus
// deterministic jitter — or poisons the manager once the chunk's attempt
// budget is spent. It returns how many leases expired. The service calls
// this on a ticker; Lease/Heartbeat/Complete also sweep lazily, so expiry
// is never blocked on the ticker.
func (m *Manager) Expire(now time.Time) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.expireLocked(now)
}

// expireLocked implements Expire; callers hold m.mu.
func (m *Manager) expireLocked(now time.Time) int {
	n := 0
	for _, rec := range m.leases {
		if !rec.live || now.Before(rec.deadline) {
			continue
		}
		rec.live = false
		n++
		if m.tel != nil {
			m.tel.expired.Inc()
		}
		c := m.chunks[rec.chunk]
		if c.state != stateLeased {
			continue
		}
		c.leaseID = ""
		if c.attempts >= m.cfg.MaxAttempts {
			m.poisonLocked(c)
			continue
		}
		// Backoff counts from when ownership actually lapsed (the missed
		// deadline), not from whenever the sweep happened to run — a lazily
		// discovered long-dead lease is reclaimable immediately.
		m.requeueLocked(c, rec.deadline)
	}
	if n > 0 {
		m.gauges()
	}
	return n
}

// requeueLocked returns a chunk to the pending pool behind its backoff
// gate; callers hold m.mu.
func (m *Manager) requeueLocked(c *chunk, now time.Time) {
	c.state = statePending
	c.notBefore = now.Add(m.backoff(c.id, c.attempts))
	if m.tel != nil {
		m.tel.requeues.Inc()
	}
}

// poisonLocked fails the manager with the chunk's typed error; callers
// hold m.mu.
func (m *Manager) poisonLocked(c *chunk) {
	c.state = statePending // terminal anyway; the manager is settled
	if m.tel != nil {
		m.tel.poisoned.Inc()
	}
	m.settle(&PoisonError{
		Chunk:    c.id,
		Cells:    append([]int(nil), c.cells...),
		Attempts: c.attempts,
		LastErr:  c.lastErr,
	})
}

// backoff computes the requeue delay after a chunk's attempt'th handout:
// BackoffBase doubled per prior attempt, capped at BackoffCap, scaled by
// a deterministic jitter factor in [0.5, 1.0) mixed from (Seed, chunk,
// attempt). Pure function of its inputs — replays identically.
func (m *Manager) backoff(chunkID, attempt int) time.Duration {
	d := m.cfg.BackoffBase
	for i := 1; i < attempt && d < m.cfg.BackoffCap; i++ {
		d *= 2
	}
	if d > m.cfg.BackoffCap {
		d = m.cfg.BackoffCap
	}
	return rngutil.Jitter(d, m.cfg.Seed^uint64(chunkID)<<20^uint64(attempt))
}

// Finished returns a channel closed once the manager settles: every chunk
// done, a poison trip, or Stop.
func (m *Manager) Finished() <-chan struct{} { return m.finished }

// Err returns the settled outcome: nil after full completion, the
// *PoisonError after a poison trip, or Stop's cause. Valid once Finished
// is closed.
func (m *Manager) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failErr
}

// Stop settles the manager with the given cause (drain, cancel, timeout):
// pending grants stop, and every later protocol call answers ErrFinished
// or ErrLeaseGone. Stop after settling is a no-op.
func (m *Manager) Stop(cause error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.settle(cause)
}

// Progress is a coarse snapshot of the work set.
type Progress struct {
	// Cells is the total number of cells under management.
	Cells int
	// DoneCells counts cells completed (accepted or MarkDone).
	DoneCells int
	// Chunks is the total chunk count.
	Chunks int
	// DoneChunks counts completed chunks.
	DoneChunks int
	// LeasedChunks counts chunks currently owned by a live lease.
	LeasedChunks int
}

// Snapshot returns the current Progress.
func (m *Manager) Snapshot() Progress {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := Progress{Chunks: len(m.chunks)}
	for _, c := range m.chunks {
		p.Cells += len(c.cells)
		switch c.state {
		case stateDone:
			p.DoneChunks++
		case stateLeased:
			p.LeasedChunks++
		}
	}
	p.DoneCells = len(m.cellDone)
	return p
}

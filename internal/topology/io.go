package topology

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// jsonGraph is the wire representation: explicit node positions plus an
// undirected edge list.
type jsonGraph struct {
	Name  string       `json:"name,omitempty"`
	Nodes int          `json:"nodes"`
	Pos   [][2]float64 `json:"pos,omitempty"`
	Edges []jsonEdge   `json:"edges"`
}

type jsonEdge struct {
	U   int     `json:"u"`
	V   int     `json:"v"`
	PRR float64 `json:"prr"`
}

// MarshalJSON implements json.Marshaler.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.Name, Nodes: g.N()}
	if g.Pos != nil {
		jg.Pos = make([][2]float64, len(g.Pos))
		for i, p := range g.Pos {
			jg.Pos[i] = [2]float64{p.X, p.Y}
		}
	}
	for _, e := range g.Links() {
		jg.Edges = append(jg.Edges, jsonEdge{U: e.U, V: e.V, PRR: e.PRR})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON implements json.Unmarshaler. The decoded graph is validated.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	if jg.Nodes <= 0 {
		return fmt.Errorf("topology: JSON graph has %d nodes", jg.Nodes)
	}
	ng := New(jg.Nodes)
	ng.Name = jg.Name
	if jg.Pos != nil {
		if len(jg.Pos) != jg.Nodes {
			return fmt.Errorf("topology: %d positions for %d nodes", len(jg.Pos), jg.Nodes)
		}
		ng.Pos = make([]Point, jg.Nodes)
		for i, p := range jg.Pos {
			ng.Pos[i] = Point{X: p[0], Y: p[1]}
		}
	}
	for _, e := range jg.Edges {
		if e.U < 0 || e.U >= jg.Nodes || e.V < 0 || e.V >= jg.Nodes || e.U == e.V {
			return fmt.Errorf("topology: bad edge %d-%d", e.U, e.V)
		}
		if e.PRR <= 0 || e.PRR > 1 {
			return fmt.Errorf("topology: edge %d-%d has PRR %v", e.U, e.V, e.PRR)
		}
		ng.AddLink(e.U, e.V, e.PRR)
	}
	ng.SortNeighbors()
	if err := ng.Validate(); err != nil {
		return err
	}
	*g = *ng
	return nil
}

// WriteText writes the graph in the compact trace format:
//
//	# comment lines allowed
//	graph <name> <nodes>
//	node <id> <x> <y>          (optional, one per node)
//	link <u> <v> <prr>
//
// This is the on-disk format cmd/topogen produces and consumes; it is easy
// to diff and to hand-edit.
func (g *Graph) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	name := g.Name
	if name == "" {
		name = "unnamed"
	}
	// Names with spaces would break the reader's tokenization.
	name = strings.ReplaceAll(name, " ", "_")
	if _, err := fmt.Fprintf(bw, "graph %s %d\n", name, g.N()); err != nil {
		return err
	}
	if g.Pos != nil {
		for i, p := range g.Pos {
			if _, err := fmt.Fprintf(bw, "node %d %.4f %.4f\n", i, p.X, p.Y); err != nil {
				return err
			}
		}
	}
	for _, e := range g.Links() {
		if _, err := fmt.Fprintf(bw, "link %d %d %.6f\n", e.U, e.V, e.PRR); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the compact trace format written by WriteText.
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "graph":
			if g != nil {
				return nil, fmt.Errorf("topology: line %d: duplicate graph header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("topology: line %d: graph header needs name and node count", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("topology: line %d: bad node count %q", line, fields[2])
			}
			g = New(n)
			g.Name = fields[1]
		case "node":
			if g == nil {
				return nil, fmt.Errorf("topology: line %d: node before graph header", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("topology: line %d: node needs id x y", line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id < 0 || id >= g.N() {
				return nil, fmt.Errorf("topology: line %d: bad node id %q", line, fields[1])
			}
			x, errX := strconv.ParseFloat(fields[2], 64)
			y, errY := strconv.ParseFloat(fields[3], 64)
			if errX != nil || errY != nil {
				return nil, fmt.Errorf("topology: line %d: bad coordinates", line)
			}
			if g.Pos == nil {
				g.Pos = make([]Point, g.N())
			}
			g.Pos[id] = Point{X: x, Y: y}
		case "link":
			if g == nil {
				return nil, fmt.Errorf("topology: line %d: link before graph header", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("topology: line %d: link needs u v prr", line)
			}
			u, errU := strconv.Atoi(fields[1])
			v, errV := strconv.Atoi(fields[2])
			prr, errP := strconv.ParseFloat(fields[3], 64)
			if errU != nil || errV != nil || errP != nil {
				return nil, fmt.Errorf("topology: line %d: malformed link", line)
			}
			if u < 0 || u >= g.N() || v < 0 || v >= g.N() || u == v {
				return nil, fmt.Errorf("topology: line %d: bad link endpoints %d-%d", line, u, v)
			}
			if prr <= 0 || prr > 1 {
				return nil, fmt.Errorf("topology: line %d: PRR %v outside (0,1]", line, prr)
			}
			g.AddLink(u, v, prr)
		default:
			return nil, fmt.Errorf("topology: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("topology: no graph header found")
	}
	g.SortNeighbors()
	return g, g.Validate()
}

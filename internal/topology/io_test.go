package topology

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func graphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.N() != b.N() {
		t.Fatalf("node counts differ: %d vs %d", a.N(), b.N())
	}
	ea, eb := a.Links(), b.Links()
	if len(ea) != len(eb) {
		t.Fatalf("link counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i].U != eb[i].U || ea[i].V != eb[i].V {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := GreenOrbs(7)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, &back)
	if back.Name != g.Name {
		t.Fatalf("name lost: %q vs %q", back.Name, g.Name)
	}
	for i := range g.Pos {
		if g.Pos[i] != back.Pos[i] {
			t.Fatalf("pos %d differs", i)
		}
	}
	for _, e := range g.Links() {
		if back.PRR(e.U, e.V) != e.PRR {
			t.Fatalf("PRR of %d-%d lost", e.U, e.V)
		}
	}
}

func TestJSONRejectsBadInput(t *testing.T) {
	cases := []string{
		`{"nodes":0,"edges":[]}`,
		`{"nodes":2,"edges":[{"u":0,"v":2,"prr":0.5}]}`,
		`{"nodes":2,"edges":[{"u":0,"v":0,"prr":0.5}]}`,
		`{"nodes":2,"edges":[{"u":0,"v":1,"prr":0}]}`,
		`{"nodes":2,"edges":[{"u":0,"v":1,"prr":1.5}]}`,
		`{"nodes":3,"pos":[[0,0]],"edges":[]}`,
		`{not json`,
	}
	for i, c := range cases {
		var g Graph
		if err := json.Unmarshal([]byte(c), &g); err == nil {
			t.Fatalf("case %d accepted: %s", i, c)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	g := GreenOrbs(9)
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, back)
	for _, e := range g.Links() {
		got := back.PRR(e.U, e.V)
		if diff := got - e.PRR; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("PRR of %d-%d drifted: %v vs %v", e.U, e.V, got, e.PRR)
		}
	}
}

func TestTextRoundTripNoPositions(t *testing.T) {
	g := Star(5, 0.75)
	g.Pos = nil
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, back)
	if back.Pos != nil {
		t.Fatal("positions materialized from nothing")
	}
}

func TestReadTextCommentsAndBlanks(t *testing.T) {
	in := `
# a comment
graph demo 3

link 0 1 0.5
# another
link 1 2 0.25
`
	g, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.NumLinks() != 2 || g.Name != "demo" {
		t.Fatalf("parsed wrong: %v", g)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"",                          // no header
		"link 0 1 0.5\n",            // link before header
		"node 0 1 2\n",              // node before header
		"graph g 0\n",               // bad node count
		"graph g two\n",             // unparsable count
		"graph g 2\ngraph g 2\n",    // duplicate header
		"graph g 2\nlink 0 2 0.5\n", // out of range
		"graph g 2\nlink 0 0 0.5\n", // self loop
		"graph g 2\nlink 0 1 2\n",   // bad prr
		"graph g 2\nlink 0 1\n",     // missing field
		"graph g 2\nnode 5 0 0\n",   // bad node id
		"graph g 2\nnode 0 x 0\n",   // bad coordinate
		"graph g 2\nfrobnicate\n",   // unknown directive
		"graph g\n",                 // missing count
	}
	for i, c := range cases {
		if _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted: %q", i, c)
		}
	}
}

func TestWriteTextSanitizesName(t *testing.T) {
	g := New(2)
	g.Name = "my graph"
	g.AddLink(0, 1, 0.5)
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "my_graph" {
		t.Fatalf("name = %q", back.Name)
	}
}

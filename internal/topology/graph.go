// Package topology provides the network-topology substrate for the flooding
// study: an undirected graph with per-link packet-reception ratios (PRR),
// spatial generators (including a synthetic stand-in for the 298-node
// GreenOrbs forest trace used by the paper), a radio-propagation model that
// maps distance to PRR, structural analysis helpers, and serialization.
package topology

import (
	"fmt"
	"math"
	"sort"
)

// Point is a 2-D position in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// Link is an outgoing adjacency entry: the neighbor and the packet
// reception ratio of the (undirected) link in (0, 1].
type Link struct {
	To  int
	PRR float64
}

// Graph is an undirected network topology over nodes 0..N-1 with per-link
// PRR. Node 0 is, by the paper's convention, the flooding source. Positions
// are optional (nil Pos means abstract graph).
type Graph struct {
	Name string
	Pos  []Point
	adj  [][]Link

	// csr caches the flat CSR adjacency view (see CSR); nil until first
	// requested, reset by every mutation. Guarded by the package-level
	// csrMu, never a per-graph lock, so Graph stays copyable by value.
	csr *CSR
}

// New creates an empty graph with n nodes and no links. It panics if n <= 0.
func New(n int) *Graph {
	if n <= 0 {
		panic("topology: graph needs n > 0")
	}
	return &Graph{adj: make([][]Link, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// AddLink inserts an undirected link (u, v) with the given PRR, replacing
// any existing link between the pair. It panics for out-of-range endpoints,
// self-loops, or PRR outside (0, 1].
func (g *Graph) AddLink(u, v int, prr float64) {
	g.check(u)
	g.check(v)
	if u == v {
		panic("topology: self-loop")
	}
	if prr <= 0 || prr > 1 || math.IsNaN(prr) {
		panic(fmt.Sprintf("topology: PRR %v outside (0,1]", prr))
	}
	g.setDirected(u, v, prr)
	g.setDirected(v, u, prr)
	g.csr = nil
}

func (g *Graph) setDirected(u, v int, prr float64) {
	for i := range g.adj[u] {
		if g.adj[u][i].To == v {
			g.adj[u][i].PRR = prr
			return
		}
	}
	g.adj[u] = append(g.adj[u], Link{To: v, PRR: prr})
}

// RemoveLink deletes the undirected link (u, v) if present and reports
// whether a link was removed.
func (g *Graph) RemoveLink(u, v int) bool {
	g.check(u)
	g.check(v)
	removed := g.removeDirected(u, v)
	if removed {
		g.removeDirected(v, u)
		g.csr = nil
	}
	return removed
}

func (g *Graph) removeDirected(u, v int) bool {
	for i := range g.adj[u] {
		if g.adj[u][i].To == v {
			g.adj[u] = append(g.adj[u][:i], g.adj[u][i+1:]...)
			return true
		}
	}
	return false
}

// HasLink reports whether nodes u and v are linked.
func (g *Graph) HasLink(u, v int) bool {
	g.check(u)
	g.check(v)
	for _, l := range g.adj[u] {
		if l.To == v {
			return true
		}
	}
	return false
}

// PRR returns the packet reception ratio of link (u, v), or 0 if the link
// does not exist.
func (g *Graph) PRR(u, v int) float64 {
	g.check(u)
	g.check(v)
	for _, l := range g.adj[u] {
		if l.To == v {
			return l.PRR
		}
	}
	return 0
}

// Neighbors returns u's adjacency list. The returned slice is owned by the
// graph and must not be modified.
func (g *Graph) Neighbors(u int) []Link {
	g.check(u)
	return g.adj[u]
}

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int) int {
	g.check(u)
	return len(g.adj[u])
}

// NumLinks returns the number of undirected links.
func (g *Graph) NumLinks() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// SortNeighbors orders every adjacency list by neighbor id. Generators call
// this so iteration order — and therefore every downstream simulation — is
// deterministic regardless of link insertion order.
func (g *Graph) SortNeighbors() {
	for u := range g.adj {
		sort.Slice(g.adj[u], func(i, j int) bool { return g.adj[u][i].To < g.adj[u][j].To })
	}
	g.csr = nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{Name: g.Name, adj: make([][]Link, len(g.adj))}
	if g.Pos != nil {
		c.Pos = append([]Point(nil), g.Pos...)
	}
	for u := range g.adj {
		c.adj[u] = append([]Link(nil), g.adj[u]...)
	}
	return c
}

// Links returns every undirected link exactly once (u < v), ordered.
func (g *Graph) Links() []Edge {
	var out []Edge
	for u := range g.adj {
		for _, l := range g.adj[u] {
			if u < l.To {
				out = append(out, Edge{U: u, V: l.To, PRR: l.PRR})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Edge is an undirected link record used for iteration and serialization.
type Edge struct {
	U, V int
	PRR  float64
}

// Validate checks internal consistency: symmetric adjacency, matching PRRs,
// in-range endpoints, no self-loops, PRRs in (0,1]. It returns the first
// problem found, or nil.
func (g *Graph) Validate() error {
	if len(g.adj) == 0 {
		return fmt.Errorf("topology: empty graph")
	}
	if g.Pos != nil && len(g.Pos) != len(g.adj) {
		return fmt.Errorf("topology: %d positions for %d nodes", len(g.Pos), len(g.adj))
	}
	// One CSR build turns the symmetry back-check into binary searches,
	// O(m log d) overall on sorted graphs instead of the quadratic
	// per-link scan — the difference between milliseconds and minutes on
	// the 50k-node maximum-degree star in the CSR fuzz corpus.
	c := g.CSR()
	for u := range g.adj {
		row := g.adj[u]
		strictAsc := true
		for i := 1; i < len(row); i++ {
			if row[i].To <= row[i-1].To {
				strictAsc = false
				break
			}
		}
		// Strictly ascending rows cannot hold duplicates; only unsorted
		// rows pay for a membership map.
		var seen map[int]bool
		if !strictAsc {
			seen = make(map[int]bool, len(row))
		}
		for _, l := range row {
			if l.To < 0 || l.To >= len(g.adj) {
				return fmt.Errorf("topology: node %d links to out-of-range %d", u, l.To)
			}
			if l.To == u {
				return fmt.Errorf("topology: self-loop at node %d", u)
			}
			if seen != nil {
				if seen[l.To] {
					return fmt.Errorf("topology: duplicate link %d-%d", u, l.To)
				}
				seen[l.To] = true
			}
			if l.PRR <= 0 || l.PRR > 1 || math.IsNaN(l.PRR) {
				return fmt.Errorf("topology: link %d-%d has PRR %v", u, l.To, l.PRR)
			}
			if back := c.PRROf(l.To, u); back != l.PRR {
				return fmt.Errorf("topology: asymmetric link %d-%d (%v vs %v)", u, l.To, l.PRR, back)
			}
		}
	}
	return nil
}

func (g *Graph) check(u int) {
	if u < 0 || u >= len(g.adj) {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", u, len(g.adj)))
	}
}

// String summarizes the graph.
func (g *Graph) String() string {
	name := g.Name
	if name == "" {
		name = "graph"
	}
	return fmt.Sprintf("%s{n=%d links=%d}", name, g.N(), g.NumLinks())
}

package topology

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// csrMatchesAdj asserts the CSR view mirrors the slice adjacency exactly:
// same rows in the same order, same PRRs, and agreeing point lookups.
func csrMatchesAdj(t *testing.T, g *Graph) {
	t.Helper()
	c := g.CSR()
	if c.N() != g.N() {
		t.Fatalf("CSR has %d nodes, graph %d", c.N(), g.N())
	}
	for u := 0; u < g.N(); u++ {
		nbrs := g.Neighbors(u)
		ts, ps := c.Row(u)
		if len(ts) != len(nbrs) || c.Degree(u) != len(nbrs) {
			t.Fatalf("node %d: CSR row length %d, adjacency %d", u, len(ts), len(nbrs))
		}
		for i, l := range nbrs {
			if int(ts[i]) != l.To || ps[i] != l.PRR {
				t.Fatalf("node %d entry %d: CSR (%d,%v), adjacency (%d,%v)",
					u, i, ts[i], ps[i], l.To, l.PRR)
			}
			if got := c.PRROf(u, l.To); got != l.PRR {
				t.Fatalf("PRROf(%d,%d) = %v, want %v", u, l.To, got, l.PRR)
			}
			if !c.HasLink(u, l.To) {
				t.Fatalf("HasLink(%d,%d) = false for existing link", u, l.To)
			}
		}
	}
}

func TestCSRMatchesAdjacency(t *testing.T) {
	for _, g := range []*Graph{
		GreenOrbs(1),
		Grid(8, 9, 0.8),
		Star(40, 0.5),
		Line(17, 1),
		Complete(12, 0.33),
	} {
		csrMatchesAdj(t, g)
	}
}

func TestCSRAbsentLinks(t *testing.T) {
	g := Grid(5, 5, 0.9)
	c := g.CSR()
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if got, want := c.HasLink(u, v), g.HasLink(u, v); got != want {
				t.Fatalf("HasLink(%d,%d) = %v, want %v", u, v, got, want)
			}
			if got, want := c.PRROf(u, v), g.PRR(u, v); got != want {
				t.Fatalf("PRROf(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
}

// TestCSRUnsortedRows covers the linear-scan fallback for graphs whose
// adjacency was never sorted (links inserted in descending order).
func TestCSRUnsortedRows(t *testing.T) {
	g := New(6)
	g.AddLink(0, 5, 0.5)
	g.AddLink(0, 3, 0.6)
	g.AddLink(0, 1, 0.7)
	c := g.CSR()
	if c.Sorted {
		t.Fatal("descending insertion order reported as sorted")
	}
	csrMatchesAdj(t, g)
	if c.PRROf(0, 4) != 0 || c.HasLink(3, 5) {
		t.Fatal("unsorted lookup invented a link")
	}
}

// TestCSRCacheInvalidation pins the get-or-build contract: repeated calls
// share one instance, and every mutation drops the cache.
func TestCSRCacheInvalidation(t *testing.T) {
	g := Grid(4, 4, 0.8)
	a := g.CSR()
	if b := g.CSR(); a != b {
		t.Fatal("second CSR call rebuilt the view")
	}
	g.AddLink(0, 15, 0.4)
	b := g.CSR()
	if a == b {
		t.Fatal("AddLink did not invalidate the cached CSR")
	}
	if !b.HasLink(0, 15) {
		t.Fatal("rebuilt CSR misses the new link")
	}
	g.RemoveLink(0, 15)
	if c := g.CSR(); c == b || c.HasLink(0, 15) {
		t.Fatal("RemoveLink did not invalidate the cached CSR")
	}
	g.SortNeighbors()
	if d := g.CSR(); !d.Sorted {
		t.Fatal("CSR after SortNeighbors not marked sorted")
	}
	if c := g.Clone().CSR(); c == g.CSR() {
		t.Fatal("clone shares the original's CSR cache")
	}
}

// TestCSRDegenerate covers the fuzz-corpus extremes as deterministic
// cases: a single node, a linkless graph, and a 50k-node maximum-degree
// star, each round-tripped through the text and JSON codecs with the CSR
// rebuilt on the far side.
func TestCSRDegenerate(t *testing.T) {
	star := 50000
	if testing.Short() {
		star = 5000
	}
	for _, tc := range []struct {
		name string
		g    *Graph
	}{
		{"single-node", New(1)},
		{"linkless", New(4)},
		{"max-degree-star", Star(star, 0.5)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			csrMatchesAdj(t, tc.g)
			if tc.g.NumLinks() > 0 && tc.g.CSR().Degree(0) != tc.g.N()-1 {
				t.Fatalf("star hub degree %d, want %d", tc.g.CSR().Degree(0), tc.g.N()-1)
			}
			var sb strings.Builder
			if err := tc.g.WriteText(&sb); err != nil {
				t.Fatal(err)
			}
			back, err := ReadText(strings.NewReader(sb.String()))
			if err != nil {
				t.Fatal(err)
			}
			csrMatchesAdj(t, back)
			if !reflect.DeepEqual(back.CSR(), tc.g.CSR()) {
				t.Fatal("text round trip changed the CSR view")
			}
		})
	}
}

// TestCSRRandomGraphs cross-checks point lookups against the slice path on
// random sorted graphs.
func TestCSRRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		g := New(n)
		for e := 0; e < 3*n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddLink(u, v, 0.05+0.9*rng.Float64())
			}
		}
		g.SortNeighbors()
		csrMatchesAdj(t, g)
		for q := 0; q < 50; q++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if got, want := g.CSR().PRROf(u, v), g.PRR(u, v); got != want {
				t.Fatalf("trial %d: PRROf(%d,%d) = %v, want %v", trial, u, v, got, want)
			}
		}
	}
}

package topology

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzReadText asserts the trace parser never panics, and that anything it
// accepts round-trips through WriteText to an equivalent graph.
func FuzzReadText(f *testing.F) {
	f.Add("graph g 3\nlink 0 1 0.5\nlink 1 2 0.9\n")
	f.Add("graph g 2\nnode 0 1.5 2.5\nnode 1 0 0\nlink 0 1 1\n")
	f.Add("# comment\n\ngraph x 1\n")
	f.Add("link 0 1 0.5")
	f.Add("graph g -1")
	f.Add("graph g 2\nlink 0 1 2.0\n")
	f.Add("graph g 2\nnode 9 0 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadText(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := g.WriteText(&buf); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round-trip parse failed: %v\noriginal input: %q", err, input)
		}
		if back.N() != g.N() || back.NumLinks() != g.NumLinks() {
			t.Fatalf("round trip changed shape: %v vs %v", back, g)
		}
	})
}

// FuzzUnmarshalJSON asserts the JSON decoder never panics and that accepted
// graphs validate and survive a marshal/unmarshal cycle.
func FuzzUnmarshalJSON(f *testing.F) {
	f.Add(`{"nodes":3,"edges":[{"u":0,"v":1,"prr":0.5}]}`)
	f.Add(`{"nodes":2,"pos":[[0,0],[3,4]],"edges":[{"u":0,"v":1,"prr":1}]}`)
	f.Add(`{"nodes":0,"edges":[]}`)
	f.Add(`{"nodes":2,"edges":[{"u":0,"v":0,"prr":0.5}]}`)
	f.Add(`garbage`)
	f.Fuzz(func(t *testing.T, input string) {
		var g Graph
		if err := json.Unmarshal([]byte(input), &g); err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		data, err := json.Marshal(&g)
		if err != nil {
			t.Fatalf("remarshal failed: %v", err)
		}
		var back Graph
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("round-trip failed: %v", err)
		}
		if back.N() != g.N() || back.NumLinks() != g.NumLinks() {
			t.Fatal("round trip changed shape")
		}
	})
}

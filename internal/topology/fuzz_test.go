package topology

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// fuzzStarText renders a k-leaf star in the trace text format — the
// degenerate maximum-degree shape whose CSR row 0 holds every edge.
func fuzzStarText(k int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph star %d\n", k+1)
	for i := 1; i <= k; i++ {
		fmt.Fprintf(&sb, "link 0 %d 0.5\n", i)
	}
	return sb.String()
}

// checkCSR cross-checks the accepted graph's CSR projection against the
// adjacency it was built from: shape, per-row degree, and symmetric PRR
// lookups must agree. Any graph the parsers accept must survive this build
// — including empty, single-node, and maximum-degree-star shapes.
func checkCSR(t *testing.T, g *Graph) {
	t.Helper()
	c := g.CSR()
	if c.N() != g.N() {
		t.Fatalf("CSR has %d nodes, graph has %d", c.N(), g.N())
	}
	edges := 0
	for u := 0; u < g.N(); u++ {
		if c.Degree(u) != g.Degree(u) {
			t.Fatalf("CSR degree(%d) = %d, graph %d", u, c.Degree(u), g.Degree(u))
		}
		edges += c.Degree(u)
		for _, l := range g.Neighbors(u) {
			if got := c.PRROf(u, l.To); got != l.PRR {
				t.Fatalf("CSR PRR(%d, %d) = %v, graph %v", u, l.To, got, l.PRR)
			}
		}
	}
	if edges != 2*g.NumLinks() {
		t.Fatalf("CSR carries %d directed edges, graph has %d links", edges, g.NumLinks())
	}
}

// FuzzReadText asserts the trace parser never panics, and that anything it
// accepts builds a consistent CSR projection and round-trips through
// WriteText to an equivalent graph.
func FuzzReadText(f *testing.F) {
	f.Add("graph g 3\nlink 0 1 0.5\nlink 1 2 0.9\n")
	f.Add("graph g 2\nnode 0 1.5 2.5\nnode 1 0 0\nlink 0 1 1\n")
	f.Add("# comment\n\ngraph x 1\n")
	f.Add("link 0 1 0.5")
	f.Add("graph g -1")
	f.Add("graph g 2\nlink 0 1 2.0\n")
	f.Add("graph g 2\nnode 9 0 0\n")
	// Degenerate CSR shapes: empty graph, single node, linkless multi-node,
	// unsorted duplicate-free rows, and a maximum-degree star (the 50k-leaf
	// production shape is exercised in csr_test.go; the seed stays small so
	// mutation is cheap).
	f.Add("graph empty 0\n")
	f.Add("graph single 1\n")
	f.Add("graph linkless 5\n")
	f.Add("graph unsorted 4\nlink 2 3 0.5\nlink 0 3 0.25\nlink 0 1 1\n")
	f.Add(fuzzStarText(64))
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadText(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		checkCSR(t, g)
		var buf bytes.Buffer
		if err := g.WriteText(&buf); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round-trip parse failed: %v\noriginal input: %q", err, input)
		}
		if back.N() != g.N() || back.NumLinks() != g.NumLinks() {
			t.Fatalf("round trip changed shape: %v vs %v", back, g)
		}
		checkCSR(t, back)
	})
}

// FuzzUnmarshalJSON asserts the JSON decoder never panics and that accepted
// graphs validate and survive a marshal/unmarshal cycle.
func FuzzUnmarshalJSON(f *testing.F) {
	f.Add(`{"nodes":3,"edges":[{"u":0,"v":1,"prr":0.5}]}`)
	f.Add(`{"nodes":2,"pos":[[0,0],[3,4]],"edges":[{"u":0,"v":1,"prr":1}]}`)
	f.Add(`{"nodes":0,"edges":[]}`)
	f.Add(`{"nodes":2,"edges":[{"u":0,"v":0,"prr":0.5}]}`)
	f.Add(`garbage`)
	// Degenerate CSR shapes mirroring the text-format corpus.
	f.Add(`{"nodes":1,"edges":[]}`)
	f.Add(`{"nodes":6}`)
	f.Add(`{"nodes":5,"edges":[{"u":0,"v":4,"prr":0.5},{"u":0,"v":1,"prr":0.5},{"u":0,"v":3,"prr":0.5},{"u":0,"v":2,"prr":0.5}]}`)
	f.Fuzz(func(t *testing.T, input string) {
		var g Graph
		if err := json.Unmarshal([]byte(input), &g); err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		checkCSR(t, &g)
		data, err := json.Marshal(&g)
		if err != nil {
			t.Fatalf("remarshal failed: %v", err)
		}
		var back Graph
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("round-trip failed: %v", err)
		}
		if back.N() != g.N() || back.NumLinks() != g.NumLinks() {
			t.Fatal("round trip changed shape")
		}
		checkCSR(t, &back)
	})
}

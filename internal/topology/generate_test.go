package topology

import (
	"testing"
)

func TestForestRadioShape(t *testing.T) {
	m := ForestRadio()
	// PRR must be ~1 very close and ~0 very far.
	if p := m.PRR(1, 0); p < 0.999 {
		t.Fatalf("PRR at 1m = %v, want ~1", p)
	}
	if p := m.PRR(200, 0); p > 0.001 {
		t.Fatalf("PRR at 200m = %v, want ~0", p)
	}
	// Monotone non-increasing in distance (no shadowing).
	prev := 1.1
	for d := 1.0; d < 100; d += 1 {
		p := m.PRR(d, 0)
		if p > prev+1e-12 {
			t.Fatalf("PRR not monotone at d=%v: %v > %v", d, p, prev)
		}
		if p < 0 || p > 1 {
			t.Fatalf("PRR out of range at d=%v: %v", d, p)
		}
		prev = p
	}
	// Positive shadowing (extra loss) lowers PRR at transitional distances.
	d := m.ConnectedRange(0.5)
	if m.PRR(d, 3) >= m.PRR(d, 0) {
		t.Fatal("positive shadow should reduce PRR")
	}
	if m.PRR(d, -3) <= m.PRR(d, 0) {
		t.Fatal("negative shadow should increase PRR")
	}
}

func TestConnectedRange(t *testing.T) {
	m := ForestRadio()
	r90 := m.ConnectedRange(0.9)
	r10 := m.ConnectedRange(0.1)
	if r90 <= 0 || r10 <= r90 {
		t.Fatalf("ranges inconsistent: r90=%v r10=%v", r90, r10)
	}
	// At the returned range, the PRR is close to the threshold.
	if p := m.PRR(r90, 0); p < 0.85 || p > 0.95 {
		t.Fatalf("PRR at ConnectedRange(0.9) = %v", p)
	}
}

func TestConnectedRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ConnectedRange(0) did not panic")
		}
	}()
	ForestRadio().ConnectedRange(0)
}

func TestOpenFieldReachesFarther(t *testing.T) {
	if OpenFieldRadio().ConnectedRange(0.5) <= ForestRadio().ConnectedRange(0.5) {
		t.Fatal("open-field radio should reach farther than forest radio")
	}
}

func TestGreenOrbsDeterministic(t *testing.T) {
	a := GreenOrbs(1)
	b := GreenOrbs(1)
	if a.N() != b.N() || a.NumLinks() != b.NumLinks() {
		t.Fatalf("same seed differs: %v vs %v", a, b)
	}
	ea, eb := a.Links(), b.Links()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	c := GreenOrbs(2)
	if c.NumLinks() == a.NumLinks() && len(c.Links()) > 0 && c.Links()[0] == a.Links()[0] {
		t.Log("warning: different seeds produced suspiciously similar graphs")
	}
}

func TestGreenOrbsCalibration(t *testing.T) {
	// The synthetic trace must match the aggregate features the paper's
	// evaluation relies on (see DESIGN.md substitution table).
	for seed := uint64(1); seed <= 3; seed++ {
		g := GreenOrbs(seed)
		s := g.Analyze()
		if s.Nodes != GreenOrbsNodes {
			t.Fatalf("seed %d: %d nodes, want %d", seed, s.Nodes, GreenOrbsNodes)
		}
		if !s.Connected {
			t.Fatalf("seed %d: disconnected", seed)
		}
		if s.MeanDegree < 6 || s.MeanDegree > 40 {
			t.Fatalf("seed %d: mean degree %v outside plausible GreenOrbs range", seed, s.MeanDegree)
		}
		if s.Diameter < 4 || s.Diameter > 40 {
			t.Fatalf("seed %d: diameter %d outside plausible range", seed, s.Diameter)
		}
		// Lossy links must exist (transitional region), and good links too.
		if s.PRR.Min > 0.5 {
			t.Fatalf("seed %d: no lossy links (min PRR %v)", seed, s.PRR.Min)
		}
		if s.PRR.Max < 0.9 {
			t.Fatalf("seed %d: no high-quality links (max PRR %v)", seed, s.PRR.Max)
		}
		if s.Transitional < 0.2 {
			t.Fatalf("seed %d: transitional fraction %v too small", seed, s.Transitional)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestGenerateGreenOrbsConfigErrors(t *testing.T) {
	base := DefaultGreenOrbsConfig()
	bad := []GreenOrbsConfig{}
	c := base
	c.Nodes = 1
	bad = append(bad, c)
	c = base
	c.FieldX = 0
	bad = append(bad, c)
	c = base
	c.MinPRR = 0
	bad = append(bad, c)
	c = base
	c.MinPRR = 1
	bad = append(bad, c)
	c = base
	c.Clusters = 0
	bad = append(bad, c)
	for i, cfg := range bad {
		if _, err := GenerateGreenOrbs(cfg, 1); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestGreenOrbsMaxDegreeCap(t *testing.T) {
	cfg := DefaultGreenOrbsConfig()
	cfg.MaxDegree = 8
	g, err := GenerateGreenOrbs(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	over := 0
	for u := 0; u < g.N(); u++ {
		// ensureConnected may add a handful of bridges past the cap.
		if g.Degree(u) > cfg.MaxDegree+2 {
			over++
		}
	}
	if over > 0 {
		t.Fatalf("%d nodes exceed degree cap by >2", over)
	}
	if !g.IsConnected() {
		t.Fatal("capped graph disconnected")
	}
}

func TestTestbedPreset(t *testing.T) {
	g := Testbed(1)
	s := g.Analyze()
	if s.Nodes != TestbedNodes {
		t.Fatalf("nodes = %d", s.Nodes)
	}
	if !s.Connected {
		t.Fatal("testbed disconnected")
	}
	// Indoor testbeds are denser than the forest deployment.
	forest := GreenOrbs(1).Analyze()
	if s.MeanDegree <= forest.MeanDegree {
		t.Fatalf("testbed degree %.1f not above forest %.1f", s.MeanDegree, forest.MeanDegree)
	}
	if s.Diameter >= forest.Diameter {
		t.Fatalf("testbed diameter %d not below forest %d", s.Diameter, forest.Diameter)
	}
	// Determinism.
	if Testbed(1).NumLinks() != g.NumLinks() {
		t.Fatal("testbed not deterministic")
	}
}

func TestRandomGeometric(t *testing.T) {
	g, err := RandomGeometric(60, 80, 80, ForestRadio(), 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 60 || !g.IsConnected() {
		t.Fatalf("bad RGG: %v connected=%v", g, g.IsConnected())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Determinism.
	h, _ := RandomGeometric(60, 80, 80, ForestRadio(), 0.1, 3)
	if h.NumLinks() != g.NumLinks() {
		t.Fatal("RGG not deterministic")
	}
}

func TestRandomGeometricErrors(t *testing.T) {
	if _, err := RandomGeometric(1, 10, 10, ForestRadio(), 0.1, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := RandomGeometric(10, 0, 10, ForestRadio(), 0.1, 1); err == nil {
		t.Fatal("zero field accepted")
	}
	if _, err := RandomGeometric(10, 10, 10, ForestRadio(), 0, 1); err == nil {
		t.Fatal("MinPRR=0 accepted")
	}
}

func TestCompleteHetero(t *testing.T) {
	g := CompleteHetero(30, 0.7, 0.15, 1)
	if g.NumLinks() != 30*29/2 {
		t.Fatalf("links = %d", g.NumLinks())
	}
	s := g.Analyze()
	if s.PRR.Mean < 0.6 || s.PRR.Mean > 0.8 {
		t.Fatalf("mean PRR %v drifted from 0.7", s.PRR.Mean)
	}
	if s.PRR.StdDev < 0.05 {
		t.Fatalf("PRR spread %v too narrow for std 0.15", s.PRR.StdDev)
	}
	if s.PRR.Min < 0.05 || s.PRR.Max > 1 {
		t.Fatalf("PRR outside clamp: [%v, %v]", s.PRR.Min, s.PRR.Max)
	}
	// Zero spread degenerates to near-uniform.
	u := CompleteHetero(10, 0.7, 0, 1)
	us := u.Analyze()
	if us.PRR.StdDev > 1e-9 {
		t.Fatalf("zero-std graph has spread %v", us.PRR.StdDev)
	}
	// Determinism.
	h := CompleteHetero(30, 0.7, 0.15, 1)
	if h.PRR(0, 1) != g.PRR(0, 1) {
		t.Fatal("CompleteHetero not deterministic")
	}
}

func TestRing(t *testing.T) {
	g := Ring(6, 0.9)
	if g.NumLinks() != 6 || g.Diameter() != 3 {
		t.Fatalf("ring wrong: links=%d diam=%d", g.NumLinks(), g.Diameter())
	}
	for i := 0; i < 6; i++ {
		if g.Degree(i) != 2 {
			t.Fatalf("node %d degree %d", i, g.Degree(i))
		}
	}
}

func TestBinaryTree(t *testing.T) {
	g := BinaryTree(7, 0.9)
	if g.NumLinks() != 6 {
		t.Fatalf("links = %d", g.NumLinks())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 3 || g.Degree(6) != 1 {
		t.Fatalf("degrees wrong: %d %d %d", g.Degree(0), g.Degree(1), g.Degree(6))
	}
	if !g.IsConnected() {
		t.Fatal("tree disconnected")
	}
	if g.Diameter() != 4 { // leaf 3 .. leaf 6 via root
		t.Fatalf("diameter = %d", g.Diameter())
	}
}

func TestGeneratorPanics(t *testing.T) {
	cases := []func(){
		func() { Grid(0, 3, 1) },
		func() { Line(0, 1) },
		func() { Star(1, 1) },
		func() { Complete(1, 1) },
		func() { CompleteHetero(1, 0.5, 0.1, 1) },
		func() { CompleteHetero(5, 0, 0.1, 1) },
		func() { CompleteHetero(5, 0.5, -1, 1) },
		func() { Ring(2, 0.5) },
		func() { BinaryTree(1, 0.5) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func BenchmarkGreenOrbsGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = GreenOrbs(uint64(i))
	}
}

func BenchmarkAnalyze(b *testing.B) {
	g := GreenOrbs(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Analyze()
	}
}

package topology

import (
	"fmt"
	"math"

	"ldcflood/internal/rngutil"
)

// GreenOrbsNodes is the node count of the GreenOrbs deployment trace used
// throughout the paper's evaluation (Section V-B).
const GreenOrbsNodes = 298

// GreenOrbsConfig parameterizes the synthetic GreenOrbs-like topology.
// The defaults (DefaultGreenOrbsConfig) are calibrated so the aggregate
// features the paper's evaluation depends on — node count, mean degree,
// PRR spread with a lossy tail, and a multi-hop diameter — match what the
// GreenOrbs system papers report for the forest deployment.
type GreenOrbsConfig struct {
	Nodes     int        // number of sensors including the source (node 0)
	FieldX    float64    // field width, meters
	FieldY    float64    // field height, meters
	Clusters  int        // number of dense clusters (forest plots)
	ClusterR  float64    // cluster scatter radius, meters
	Uniform   float64    // fraction of nodes placed uniformly instead of clustered
	Radio     RadioModel // propagation model
	MinPRR    float64    // links with expected PRR below this are dropped
	MaxPRR    float64    // ceiling on link PRR (real radios never reach 1), 0 = uncapped
	MaxDegree int        // cap on neighbor count (densest regions), 0 = uncapped
}

// DefaultGreenOrbsConfig returns the calibrated defaults.
func DefaultGreenOrbsConfig() GreenOrbsConfig {
	return GreenOrbsConfig{
		Nodes:     GreenOrbsNodes,
		FieldX:    130,
		FieldY:    130,
		Clusters:  9,
		ClusterR:  18,
		Uniform:   0.35,
		Radio:     ForestRadio(),
		MinPRR:    0.10,
		MaxPRR:    0.95,
		MaxDegree: 0,
	}
}

// GreenOrbs builds the synthetic 298-node GreenOrbs-like trace with default
// calibration. The same seed always yields the same topology.
func GreenOrbs(seed uint64) *Graph {
	g, err := GenerateGreenOrbs(DefaultGreenOrbsConfig(), seed)
	if err != nil {
		// The default configuration is tested to always succeed.
		panic("topology: default GreenOrbs generation failed: " + err.Error())
	}
	return g
}

// GenerateGreenOrbs builds a synthetic forest topology per cfg. The result
// is always connected (bridging links are added between components if the
// radio draw leaves the graph split). An error is returned for invalid
// configuration.
func GenerateGreenOrbs(cfg GreenOrbsConfig, seed uint64) (*Graph, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("topology: GreenOrbs needs >= 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.FieldX <= 0 || cfg.FieldY <= 0 {
		return nil, fmt.Errorf("topology: non-positive field %vx%v", cfg.FieldX, cfg.FieldY)
	}
	if cfg.MinPRR <= 0 || cfg.MinPRR >= 1 {
		return nil, fmt.Errorf("topology: MinPRR %v outside (0,1)", cfg.MinPRR)
	}
	if cfg.Clusters < 1 {
		return nil, fmt.Errorf("topology: need >= 1 cluster")
	}
	root := rngutil.New(seed)
	posRNG := root.SubName("positions")
	shadowRNG := root.SubName("shadowing")

	g := New(cfg.Nodes)
	g.Name = fmt.Sprintf("greenorbs-synthetic(seed=%d)", seed)
	g.Pos = make([]Point, cfg.Nodes)

	// Cluster centers, kept away from the field border.
	centers := make([]Point, cfg.Clusters)
	for i := range centers {
		centers[i] = Point{
			X: cfg.FieldX * (0.12 + 0.76*posRNG.Float64()),
			Y: cfg.FieldY * (0.12 + 0.76*posRNG.Float64()),
		}
	}
	for i := 0; i < cfg.Nodes; i++ {
		if posRNG.Float64() < cfg.Uniform {
			g.Pos[i] = Point{X: cfg.FieldX * posRNG.Float64(), Y: cfg.FieldY * posRNG.Float64()}
			continue
		}
		c := centers[posRNG.Intn(len(centers))]
		p := Point{
			X: c.X + posRNG.NormMeanStd(0, cfg.ClusterR),
			Y: c.Y + posRNG.NormMeanStd(0, cfg.ClusterR),
		}
		p.X = clamp(p.X, 0, cfg.FieldX)
		p.Y = clamp(p.Y, 0, cfg.FieldY)
		g.Pos[i] = p
	}

	linkByDistance(g, cfg.Radio, cfg.MinPRR, cfg.MaxPRR, shadowRNG)
	if cfg.MaxDegree > 0 {
		capDegree(g, cfg.MaxDegree)
	}
	ensureConnected(g, cfg.Radio, cfg.MinPRR)
	g.SortNeighbors()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// linkByDistance adds every link whose shadowed PRR clears minPRR, clamped
// to maxPRR when positive. Each unordered pair draws its shadowing from a
// sub-stream keyed by the pair, so the result does not depend on iteration
// order.
func linkByDistance(g *Graph, radio RadioModel, minPRR, maxPRR float64, shadowRNG *rngutil.Stream) {
	// Pairs farther than the distance where even a very lucky (-3σ) shadow
	// draw cannot reach minPRR are skipped without consuming randomness.
	maxDist := radio.ConnectedRange(minPRR) * math.Pow(10, 3*radio.ShadowStd/(10*radio.Exponent))
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			d := g.Pos[u].Dist(g.Pos[v])
			if d > maxDist {
				continue
			}
			pairRNG := shadowRNG.Sub(uint64(u)<<32 | uint64(v))
			shadow := pairRNG.NormMeanStd(0, radio.ShadowStd)
			prr := radio.PRR(d, shadow)
			if prr >= minPRR {
				if prr > 1 {
					prr = 1
				}
				if maxPRR > 0 && prr > maxPRR {
					prr = maxPRR
				}
				g.AddLink(u, v, prr)
			}
		}
	}
}

// capDegree trims each node's adjacency to the maxDegree best links by PRR,
// keeping symmetry: a link survives only if it is within both endpoints'
// kept sets.
func capDegree(g *Graph, maxDegree int) {
	kept := make(map[[2]int]bool) // directed picks u→v
	for u := 0; u < g.N(); u++ {
		links := append([]Link(nil), g.Neighbors(u)...)
		// Highest PRR first; stable on node id for determinism.
		for i := 1; i < len(links); i++ {
			for j := i; j > 0 && (links[j].PRR > links[j-1].PRR ||
				(links[j].PRR == links[j-1].PRR && links[j].To < links[j-1].To)); j-- {
				links[j], links[j-1] = links[j-1], links[j]
			}
		}
		if len(links) > maxDegree {
			links = links[:maxDegree]
		}
		for _, l := range links {
			kept[[2]int{u, l.To}] = true
		}
	}
	for _, e := range g.Links() {
		if !kept[[2]int{e.U, e.V}] || !kept[[2]int{e.V, e.U}] {
			g.RemoveLink(e.U, e.V)
		}
	}
}

// ensureConnected stitches components together by linking the closest
// cross-component pair with a mid-quality link until one component remains.
// The PRR assigned is the shadow-free model value clamped into
// [minPRR, 0.95] so the bridge behaves like a plausible marginal link.
func ensureConnected(g *Graph, radio RadioModel, minPRR float64) {
	for {
		comps := g.Components()
		if len(comps) <= 1 {
			return
		}
		// Find the globally closest pair spanning the first component and
		// any other component.
		compOf := make([]int, g.N())
		for ci, comp := range comps {
			for _, v := range comp {
				compOf[v] = ci
			}
		}
		bestU, bestV, bestD := -1, -1, math.Inf(1)
		for _, u := range comps[0] {
			for v := 0; v < g.N(); v++ {
				if compOf[v] == 0 {
					continue
				}
				d := g.Pos[u].Dist(g.Pos[v])
				if d < bestD {
					bestU, bestV, bestD = u, v, d
				}
			}
		}
		prr := clamp(radio.PRR(bestD, 0), minPRR, 0.95)
		g.AddLink(bestU, bestV, prr)
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// TestbedNodes is the node count of the Indriya-style indoor preset.
const TestbedNodes = 139

// Testbed builds a 139-node indoor-testbed-like topology (Indriya-class):
// nodes on a quasi-grid with placement jitter, milder path loss than the
// forest but heavier shadowing from walls, and denser connectivity. It
// complements the GreenOrbs forest preset for experiments that want a
// second, structurally different deployment.
func Testbed(seed uint64) *Graph {
	radio := OpenFieldRadio()
	radio.Exponent = 2.8 // indoor multipath
	radio.ShadowStd = 5.0
	cfg := GreenOrbsConfig{
		Nodes:    TestbedNodes,
		FieldX:   60,
		FieldY:   40,
		Clusters: 3, // three floors' worth of clusters
		ClusterR: 12,
		Uniform:  0.5,
		Radio:    radio,
		MinPRR:   0.10,
		MaxPRR:   0.95,
	}
	g, err := GenerateGreenOrbs(cfg, seed)
	if err != nil {
		panic("topology: testbed generation failed: " + err.Error())
	}
	g.Name = fmt.Sprintf("testbed-synthetic(seed=%d)", seed)
	return g
}

// RandomGeometric places n nodes uniformly in a fieldX × fieldY area and
// links pairs via the radio model exactly as GenerateGreenOrbs does, but
// without clustering. The result is made connected.
func RandomGeometric(n int, fieldX, fieldY float64, radio RadioModel, minPRR float64, seed uint64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: RandomGeometric needs >= 2 nodes")
	}
	if fieldX <= 0 || fieldY <= 0 {
		return nil, fmt.Errorf("topology: non-positive field")
	}
	if minPRR <= 0 || minPRR >= 1 {
		return nil, fmt.Errorf("topology: MinPRR %v outside (0,1)", minPRR)
	}
	root := rngutil.New(seed)
	posRNG := root.SubName("positions")
	g := New(n)
	g.Name = fmt.Sprintf("rgg(n=%d,seed=%d)", n, seed)
	g.Pos = make([]Point, n)
	for i := range g.Pos {
		g.Pos[i] = Point{X: fieldX * posRNG.Float64(), Y: fieldY * posRNG.Float64()}
	}
	linkByDistance(g, radio, minPRR, 0, root.SubName("shadowing"))
	ensureConnected(g, radio, minPRR)
	g.SortNeighbors()
	return g, g.Validate()
}

// Grid builds a rows × cols lattice with the given spacing; each node links
// to its 4-neighborhood with uniform PRR. Useful as an "ideal network"
// (PRR 1) for validating the theory against the simulator.
func Grid(rows, cols int, prr float64) *Graph {
	if rows <= 0 || cols <= 0 {
		panic("topology: Grid needs positive dimensions")
	}
	g := New(rows * cols)
	g.Name = fmt.Sprintf("grid(%dx%d)", rows, cols)
	g.Pos = make([]Point, rows*cols)
	const spacing = 10.0
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := r*cols + c
			g.Pos[i] = Point{X: float64(c) * spacing, Y: float64(r) * spacing}
			if c+1 < cols {
				g.AddLink(i, i+1, prr)
			}
			if r+1 < rows {
				g.AddLink(i, i+cols, prr)
			}
		}
	}
	g.SortNeighbors()
	return g
}

// Line builds an n-node path graph with uniform PRR; node 0 is one end.
func Line(n int, prr float64) *Graph {
	if n <= 0 {
		panic("topology: Line needs n > 0")
	}
	g := New(n)
	g.Name = fmt.Sprintf("line(%d)", n)
	g.Pos = make([]Point, n)
	for i := 0; i < n; i++ {
		g.Pos[i] = Point{X: float64(i) * 10}
		if i+1 < n {
			g.AddLink(i, i+1, prr)
		}
	}
	return g
}

// Star builds a hub-and-spoke graph: node 0 is the hub linked to all others
// with uniform PRR.
func Star(n int, prr float64) *Graph {
	if n < 2 {
		panic("topology: Star needs n >= 2")
	}
	g := New(n)
	g.Name = fmt.Sprintf("star(%d)", n)
	for i := 1; i < n; i++ {
		g.AddLink(0, i, prr)
	}
	g.SortNeighbors()
	return g
}

// Complete builds the complete graph on n nodes with uniform PRR. Complete
// graphs are the setting in which Algorithm 1's hypercube dissemination
// achieves the theoretical FWL, so this is the main theory-validation
// topology.
func Complete(n int, prr float64) *Graph {
	if n < 2 {
		panic("topology: Complete needs n >= 2")
	}
	g := New(n)
	g.Name = fmt.Sprintf("complete(%d)", n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddLink(u, v, prr)
		}
	}
	g.SortNeighbors()
	return g
}

// CompleteHetero builds a complete graph whose link PRRs are drawn from a
// truncated normal with the given mean and standard deviation (clamped to
// [0.05, 1]). It is the heterogeneous-link setting Section IV-B defers to
// simulation: same mean quality, different spread.
func CompleteHetero(n int, meanPRR, stdPRR float64, seed uint64) *Graph {
	if n < 2 {
		panic("topology: CompleteHetero needs n >= 2")
	}
	if meanPRR <= 0 || meanPRR > 1 {
		panic(fmt.Sprintf("topology: mean PRR %v outside (0,1]", meanPRR))
	}
	if stdPRR < 0 {
		panic("topology: negative PRR std")
	}
	rng := rngutil.New(seed).SubName("hetero-prr")
	g := New(n)
	g.Name = fmt.Sprintf("complete-hetero(%d,mean=%.2f,std=%.2f)", n, meanPRR, stdPRR)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			prr := clamp(rng.NormMeanStd(meanPRR, stdPRR), 0.05, 1)
			g.AddLink(u, v, prr)
		}
	}
	g.SortNeighbors()
	return g
}

// Ring builds an n-node cycle with uniform PRR.
func Ring(n int, prr float64) *Graph {
	if n < 3 {
		panic("topology: Ring needs n >= 3")
	}
	g := New(n)
	g.Name = fmt.Sprintf("ring(%d)", n)
	for i := 0; i < n; i++ {
		g.AddLink(i, (i+1)%n, prr)
	}
	g.SortNeighbors()
	return g
}

// BinaryTree builds a complete-ish binary tree on n nodes rooted at node 0
// (node i's children are 2i+1 and 2i+2) with uniform PRR.
func BinaryTree(n int, prr float64) *Graph {
	if n < 2 {
		panic("topology: BinaryTree needs n >= 2")
	}
	g := New(n)
	g.Name = fmt.Sprintf("btree(%d)", n)
	for i := 0; i < n; i++ {
		if c := 2*i + 1; c < n {
			g.AddLink(i, c, prr)
		}
		if c := 2*i + 2; c < n {
			g.AddLink(i, c, prr)
		}
	}
	g.SortNeighbors()
	return g
}

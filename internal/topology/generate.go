package topology

import (
	"fmt"
	"math"
	"slices"

	"ldcflood/internal/rngutil"
)

// GreenOrbsNodes is the node count of the GreenOrbs deployment trace used
// throughout the paper's evaluation (Section V-B).
const GreenOrbsNodes = 298

// GreenOrbsConfig parameterizes the synthetic GreenOrbs-like topology.
// The defaults (DefaultGreenOrbsConfig) are calibrated so the aggregate
// features the paper's evaluation depends on — node count, mean degree,
// PRR spread with a lossy tail, and a multi-hop diameter — match what the
// GreenOrbs system papers report for the forest deployment.
type GreenOrbsConfig struct {
	Nodes     int        // number of sensors including the source (node 0)
	FieldX    float64    // field width, meters
	FieldY    float64    // field height, meters
	Clusters  int        // number of dense clusters (forest plots)
	ClusterR  float64    // cluster scatter radius, meters
	Uniform   float64    // fraction of nodes placed uniformly instead of clustered
	Radio     RadioModel // propagation model
	MinPRR    float64    // links with expected PRR below this are dropped
	MaxPRR    float64    // ceiling on link PRR (real radios never reach 1), 0 = uncapped
	MaxDegree int        // cap on neighbor count (densest regions), 0 = uncapped
}

// DefaultGreenOrbsConfig returns the calibrated defaults.
func DefaultGreenOrbsConfig() GreenOrbsConfig {
	return GreenOrbsConfig{
		Nodes:     GreenOrbsNodes,
		FieldX:    130,
		FieldY:    130,
		Clusters:  9,
		ClusterR:  18,
		Uniform:   0.35,
		Radio:     ForestRadio(),
		MinPRR:    0.10,
		MaxPRR:    0.95,
		MaxDegree: 0,
	}
}

// ScaledGreenOrbsConfig returns the GreenOrbs calibration scaled to the
// given node count at constant node density: the field grows with √nodes
// and the cluster count with the area, while radio, PRR bounds and cluster
// radius stay fixed — so per-node degree statistics match the 298-node
// trace and only the network's extent (hop diameter, flooding depth)
// grows. This is the scale-workload generator behind cmd/topogen -nodes
// and cmd/engbench -scale (10k–100k nodes); link generation uses the
// spatial hash, so building a 100k-node instance is O(n).
func ScaledGreenOrbsConfig(nodes int) GreenOrbsConfig {
	cfg := DefaultGreenOrbsConfig()
	if nodes <= 0 {
		return cfg
	}
	factor := float64(nodes) / float64(GreenOrbsNodes)
	cfg.Nodes = nodes
	cfg.FieldX *= math.Sqrt(factor)
	cfg.FieldY *= math.Sqrt(factor)
	if c := int(math.Round(float64(cfg.Clusters) * factor)); c >= 1 {
		cfg.Clusters = c
	}
	return cfg
}

// GreenOrbs builds the synthetic 298-node GreenOrbs-like trace with default
// calibration. The same seed always yields the same topology.
func GreenOrbs(seed uint64) *Graph {
	g, err := GenerateGreenOrbs(DefaultGreenOrbsConfig(), seed)
	if err != nil {
		// The default configuration is tested to always succeed.
		panic("topology: default GreenOrbs generation failed: " + err.Error())
	}
	return g
}

// GenerateGreenOrbs builds a synthetic forest topology per cfg. The result
// is always connected (bridging links are added between components if the
// radio draw leaves the graph split). An error is returned for invalid
// configuration.
func GenerateGreenOrbs(cfg GreenOrbsConfig, seed uint64) (*Graph, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("topology: GreenOrbs needs >= 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.FieldX <= 0 || cfg.FieldY <= 0 {
		return nil, fmt.Errorf("topology: non-positive field %vx%v", cfg.FieldX, cfg.FieldY)
	}
	if cfg.MinPRR <= 0 || cfg.MinPRR >= 1 {
		return nil, fmt.Errorf("topology: MinPRR %v outside (0,1)", cfg.MinPRR)
	}
	if cfg.Clusters < 1 {
		return nil, fmt.Errorf("topology: need >= 1 cluster")
	}
	root := rngutil.New(seed)
	posRNG := root.SubName("positions")
	shadowRNG := root.SubName("shadowing")

	g := New(cfg.Nodes)
	g.Name = fmt.Sprintf("greenorbs-synthetic(seed=%d)", seed)
	g.Pos = make([]Point, cfg.Nodes)

	// Cluster centers, kept away from the field border.
	centers := make([]Point, cfg.Clusters)
	for i := range centers {
		centers[i] = Point{
			X: cfg.FieldX * (0.12 + 0.76*posRNG.Float64()),
			Y: cfg.FieldY * (0.12 + 0.76*posRNG.Float64()),
		}
	}
	for i := 0; i < cfg.Nodes; i++ {
		if posRNG.Float64() < cfg.Uniform {
			g.Pos[i] = Point{X: cfg.FieldX * posRNG.Float64(), Y: cfg.FieldY * posRNG.Float64()}
			continue
		}
		c := centers[posRNG.Intn(len(centers))]
		p := Point{
			X: c.X + posRNG.NormMeanStd(0, cfg.ClusterR),
			Y: c.Y + posRNG.NormMeanStd(0, cfg.ClusterR),
		}
		p.X = clamp(p.X, 0, cfg.FieldX)
		p.Y = clamp(p.Y, 0, cfg.FieldY)
		g.Pos[i] = p
	}

	linkByDistance(g, cfg.Radio, cfg.MinPRR, cfg.MaxPRR, shadowRNG)
	if cfg.MaxDegree > 0 {
		capDegree(g, cfg.MaxDegree)
	}
	ensureConnected(g, cfg.Radio, cfg.MinPRR)
	g.SortNeighbors()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// spatialHashMinNodes is the node count above which linkByDistance and the
// large-graph connectivity stitcher switch from O(n²) pair scans to the
// spatial hash. linkByDistance produces byte-identical graphs either way
// (the hash only prunes pairs the distance cutoff would skip), so for it
// the threshold is purely a constant-factor tradeoff; the connectivity
// stitcher's bridge links may differ between the two regimes. A variable,
// not a const, so the equivalence tests can pin both strategies against
// each other on the same topology.
var spatialHashMinNodes = 512

// spatialGrid buckets node indices by ⌊pos/cell⌋ for O(1) neighborhood
// queries during link generation and connectivity stitching. Cell lists
// hold node ids in ascending order (nodes are inserted in id order).
type spatialGrid struct {
	cell  float64
	cells map[[2]int32][]int32
}

// newSpatialGrid builds a grid over pos with the given cell size (> 0).
func newSpatialGrid(pos []Point, cell float64) *spatialGrid {
	sg := &spatialGrid{cell: cell, cells: make(map[[2]int32][]int32, len(pos)/4+1)}
	for i, p := range pos {
		k := sg.key(p)
		sg.cells[k] = append(sg.cells[k], int32(i))
	}
	return sg
}

func (sg *spatialGrid) key(p Point) [2]int32 {
	return [2]int32{int32(math.Floor(p.X / sg.cell)), int32(math.Floor(p.Y / sg.cell))}
}

// linkByDistance adds every link whose shadowed PRR clears minPRR, clamped
// to maxPRR when positive. Each unordered pair draws its shadowing from a
// sub-stream keyed by the pair, so the result does not depend on iteration
// order. Pairs farther than the distance where even a very lucky (-3σ)
// shadow draw cannot reach minPRR are skipped without consuming
// randomness; above spatialHashMinNodes that cutoff also drives a spatial
// hash (cell size = the cutoff, so a 3×3 neighborhood covers every
// in-range pair) that enumerates exactly the same candidate pairs in the
// same order as the quadratic scan — the generated graph is identical,
// the cost drops from O(n²) to O(n) for constant-density fields.
func linkByDistance(g *Graph, radio RadioModel, minPRR, maxPRR float64, shadowRNG *rngutil.Stream) {
	maxDist := radio.ConnectedRange(minPRR) * math.Pow(10, 3*radio.ShadowStd/(10*radio.Exponent))
	n := g.N()
	if n < spatialHashMinNodes || g.Pos == nil || !(maxDist > 0) || math.IsInf(maxDist, 0) {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				tryLink(g, radio, minPRR, maxPRR, shadowRNG, u, v, maxDist)
			}
		}
		return
	}
	sg := newSpatialGrid(g.Pos, maxDist)
	var cands []int32
	for u := 0; u < n; u++ {
		ck := sg.key(g.Pos[u])
		cands = cands[:0]
		for dy := int32(-1); dy <= 1; dy++ {
			for dx := int32(-1); dx <= 1; dx++ {
				for _, v := range sg.cells[[2]int32{ck[0] + dx, ck[1] + dy}] {
					if int(v) > u {
						cands = append(cands, v)
					}
				}
			}
		}
		// Ascending v reproduces the quadratic scan's insertion order, so
		// adjacency lists come out byte-identical, not just set-equal.
		slices.Sort(cands)
		for _, v := range cands {
			tryLink(g, radio, minPRR, maxPRR, shadowRNG, u, int(v), maxDist)
		}
	}
}

// tryLink is linkByDistance's per-pair body: skip beyond the cutoff, draw
// the pair-keyed shadow, link if the PRR clears minPRR.
func tryLink(g *Graph, radio RadioModel, minPRR, maxPRR float64, shadowRNG *rngutil.Stream, u, v int, maxDist float64) {
	d := g.Pos[u].Dist(g.Pos[v])
	if d > maxDist {
		return
	}
	pairRNG := shadowRNG.Sub(uint64(u)<<32 | uint64(v))
	shadow := pairRNG.NormMeanStd(0, radio.ShadowStd)
	prr := radio.PRR(d, shadow)
	if prr >= minPRR {
		if prr > 1 {
			prr = 1
		}
		if maxPRR > 0 && prr > maxPRR {
			prr = maxPRR
		}
		g.AddLink(u, v, prr)
	}
}

// capDegree trims each node's adjacency to the maxDegree best links by PRR,
// keeping symmetry: a link survives only if it is within both endpoints'
// kept sets.
func capDegree(g *Graph, maxDegree int) {
	kept := make(map[[2]int]bool) // directed picks u→v
	for u := 0; u < g.N(); u++ {
		links := append([]Link(nil), g.Neighbors(u)...)
		// Highest PRR first; stable on node id for determinism.
		for i := 1; i < len(links); i++ {
			for j := i; j > 0 && (links[j].PRR > links[j-1].PRR ||
				(links[j].PRR == links[j-1].PRR && links[j].To < links[j-1].To)); j-- {
				links[j], links[j-1] = links[j-1], links[j]
			}
		}
		if len(links) > maxDegree {
			links = links[:maxDegree]
		}
		for _, l := range links {
			kept[[2]int{u, l.To}] = true
		}
	}
	for _, e := range g.Links() {
		if !kept[[2]int{e.U, e.V}] || !kept[[2]int{e.V, e.U}] {
			g.RemoveLink(e.U, e.V)
		}
	}
}

// ensureConnected stitches components together by linking the closest
// cross-component pair with a mid-quality link until one component remains.
// The PRR assigned is the shadow-free model value clamped into
// [minPRR, 0.95] so the bridge behaves like a plausible marginal link.
//
// Above spatialHashMinNodes the exact global closest-pair scan (O(passes ×
// n²)) is replaced by a grid-accelerated stitcher that attaches each minor
// component to its nearest outside node; the committed small presets
// (GreenOrbs, Testbed) stay on the exact path and are byte-identical to
// earlier releases.
func ensureConnected(g *Graph, radio RadioModel, minPRR float64) {
	if g.N() >= spatialHashMinNodes && g.Pos != nil {
		ensureConnectedGrid(g, radio, minPRR)
		return
	}
	for {
		comps := g.Components()
		if len(comps) <= 1 {
			return
		}
		// Find the globally closest pair spanning the first component and
		// any other component.
		compOf := make([]int, g.N())
		for ci, comp := range comps {
			for _, v := range comp {
				compOf[v] = ci
			}
		}
		bestU, bestV, bestD := -1, -1, math.Inf(1)
		for _, u := range comps[0] {
			for v := 0; v < g.N(); v++ {
				if compOf[v] == 0 {
					continue
				}
				d := g.Pos[u].Dist(g.Pos[v])
				if d < bestD {
					bestU, bestV, bestD = u, v, d
				}
			}
		}
		prr := clamp(radio.PRR(bestD, 0), minPRR, 0.95)
		g.AddLink(bestU, bestV, prr)
	}
}

// ensureConnectedGrid is the large-topology connectivity stitcher: every
// component except the largest links to the nearest node outside itself,
// found with an expanding-ring search over a spatial grid, and passes
// repeat until one component remains (components at least halve per pass;
// one pass suffices in practice). Deterministic: ring cells and their
// occupants are visited in a fixed order and ties keep the first find.
func ensureConnectedGrid(g *Graph, radio RadioModel, minPRR float64) {
	cell := radio.ConnectedRange(minPRR)
	if !(cell > 0) || math.IsInf(cell, 0) {
		cell = 1
	}
	sg := newSpatialGrid(g.Pos, cell)
	for {
		comps := g.Components()
		if len(comps) <= 1 {
			return
		}
		giant := 0
		for ci, comp := range comps {
			if len(comp) > len(comps[giant]) {
				giant = ci
			}
		}
		compOf := make([]int32, g.N())
		for ci, comp := range comps {
			for _, v := range comp {
				compOf[v] = int32(ci)
			}
		}
		for ci, comp := range comps {
			if ci == giant {
				continue
			}
			bestU, bestV, bestD := -1, -1, math.Inf(1)
			for _, u := range comp {
				sg.nearestOutside(g.Pos, compOf, int32(ci), u, &bestU, &bestV, &bestD)
			}
			if bestU >= 0 {
				g.AddLink(bestU, bestV, clamp(radio.PRR(bestD, 0), minPRR, 0.95))
			}
		}
	}
}

// nearestOutside updates (bestU, bestV, bestD) with the closest node to u
// whose component differs from ci, searching grid rings outward until the
// ring's minimum possible distance exceeds the incumbent.
func (sg *spatialGrid) nearestOutside(pos []Point, compOf []int32, ci int32, u int, bestU, bestV *int, bestD *float64) {
	ck := sg.key(pos[u])
	for r := int32(0); ; r++ {
		// Ring r's closest possible point is (r-1) cells away, so once an
		// incumbent beats that bound no farther ring can improve on it.
		if *bestV >= 0 && float64(r-1)*sg.cell > *bestD {
			return
		}
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				if dx > -r && dx < r && dy > -r && dy < r {
					continue // interior cells were covered by smaller rings
				}
				for _, v := range sg.cells[[2]int32{ck[0] + dx, ck[1] + dy}] {
					if compOf[v] == ci {
						continue
					}
					if d := pos[u].Dist(pos[int(v)]); d < *bestD {
						*bestU, *bestV, *bestD = u, int(v), d
					}
				}
			}
		}
		if r > int32(len(compOf))+2 { // unreachable safety bound
			return
		}
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// TestbedNodes is the node count of the Indriya-style indoor preset.
const TestbedNodes = 139

// Testbed builds a 139-node indoor-testbed-like topology (Indriya-class):
// nodes on a quasi-grid with placement jitter, milder path loss than the
// forest but heavier shadowing from walls, and denser connectivity. It
// complements the GreenOrbs forest preset for experiments that want a
// second, structurally different deployment.
func Testbed(seed uint64) *Graph {
	radio := OpenFieldRadio()
	radio.Exponent = 2.8 // indoor multipath
	radio.ShadowStd = 5.0
	cfg := GreenOrbsConfig{
		Nodes:    TestbedNodes,
		FieldX:   60,
		FieldY:   40,
		Clusters: 3, // three floors' worth of clusters
		ClusterR: 12,
		Uniform:  0.5,
		Radio:    radio,
		MinPRR:   0.10,
		MaxPRR:   0.95,
	}
	g, err := GenerateGreenOrbs(cfg, seed)
	if err != nil {
		panic("topology: testbed generation failed: " + err.Error())
	}
	g.Name = fmt.Sprintf("testbed-synthetic(seed=%d)", seed)
	return g
}

// RandomGeometric places n nodes uniformly in a fieldX × fieldY area and
// links pairs via the radio model exactly as GenerateGreenOrbs does, but
// without clustering. The result is made connected.
func RandomGeometric(n int, fieldX, fieldY float64, radio RadioModel, minPRR float64, seed uint64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: RandomGeometric needs >= 2 nodes")
	}
	if fieldX <= 0 || fieldY <= 0 {
		return nil, fmt.Errorf("topology: non-positive field")
	}
	if minPRR <= 0 || minPRR >= 1 {
		return nil, fmt.Errorf("topology: MinPRR %v outside (0,1)", minPRR)
	}
	root := rngutil.New(seed)
	posRNG := root.SubName("positions")
	g := New(n)
	g.Name = fmt.Sprintf("rgg(n=%d,seed=%d)", n, seed)
	g.Pos = make([]Point, n)
	for i := range g.Pos {
		g.Pos[i] = Point{X: fieldX * posRNG.Float64(), Y: fieldY * posRNG.Float64()}
	}
	linkByDistance(g, radio, minPRR, 0, root.SubName("shadowing"))
	ensureConnected(g, radio, minPRR)
	g.SortNeighbors()
	return g, g.Validate()
}

// Grid builds a rows × cols lattice with the given spacing; each node links
// to its 4-neighborhood with uniform PRR. Useful as an "ideal network"
// (PRR 1) for validating the theory against the simulator.
func Grid(rows, cols int, prr float64) *Graph {
	if rows <= 0 || cols <= 0 {
		panic("topology: Grid needs positive dimensions")
	}
	g := New(rows * cols)
	g.Name = fmt.Sprintf("grid(%dx%d)", rows, cols)
	g.Pos = make([]Point, rows*cols)
	const spacing = 10.0
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := r*cols + c
			g.Pos[i] = Point{X: float64(c) * spacing, Y: float64(r) * spacing}
			if c+1 < cols {
				g.AddLink(i, i+1, prr)
			}
			if r+1 < rows {
				g.AddLink(i, i+cols, prr)
			}
		}
	}
	g.SortNeighbors()
	return g
}

// Line builds an n-node path graph with uniform PRR; node 0 is one end.
func Line(n int, prr float64) *Graph {
	if n <= 0 {
		panic("topology: Line needs n > 0")
	}
	g := New(n)
	g.Name = fmt.Sprintf("line(%d)", n)
	g.Pos = make([]Point, n)
	for i := 0; i < n; i++ {
		g.Pos[i] = Point{X: float64(i) * 10}
		if i+1 < n {
			g.AddLink(i, i+1, prr)
		}
	}
	return g
}

// Star builds a hub-and-spoke graph: node 0 is the hub linked to all others
// with uniform PRR. The adjacency is assembled directly (already sorted)
// rather than through AddLink, whose duplicate scan over the hub's growing
// list would make a maximum-degree star quadratic — the CSR fuzz corpus
// builds 50k-node stars.
func Star(n int, prr float64) *Graph {
	if n < 2 {
		panic("topology: Star needs n >= 2")
	}
	if prr <= 0 || prr > 1 || math.IsNaN(prr) {
		panic(fmt.Sprintf("topology: PRR %v outside (0,1]", prr))
	}
	g := New(n)
	g.Name = fmt.Sprintf("star(%d)", n)
	hub := make([]Link, n-1)
	for i := 1; i < n; i++ {
		hub[i-1] = Link{To: i, PRR: prr}
		g.adj[i] = []Link{{To: 0, PRR: prr}}
	}
	g.adj[0] = hub
	return g
}

// Complete builds the complete graph on n nodes with uniform PRR. Complete
// graphs are the setting in which Algorithm 1's hypercube dissemination
// achieves the theoretical FWL, so this is the main theory-validation
// topology.
func Complete(n int, prr float64) *Graph {
	if n < 2 {
		panic("topology: Complete needs n >= 2")
	}
	g := New(n)
	g.Name = fmt.Sprintf("complete(%d)", n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddLink(u, v, prr)
		}
	}
	g.SortNeighbors()
	return g
}

// CompleteHetero builds a complete graph whose link PRRs are drawn from a
// truncated normal with the given mean and standard deviation (clamped to
// [0.05, 1]). It is the heterogeneous-link setting Section IV-B defers to
// simulation: same mean quality, different spread.
func CompleteHetero(n int, meanPRR, stdPRR float64, seed uint64) *Graph {
	if n < 2 {
		panic("topology: CompleteHetero needs n >= 2")
	}
	if meanPRR <= 0 || meanPRR > 1 {
		panic(fmt.Sprintf("topology: mean PRR %v outside (0,1]", meanPRR))
	}
	if stdPRR < 0 {
		panic("topology: negative PRR std")
	}
	rng := rngutil.New(seed).SubName("hetero-prr")
	g := New(n)
	g.Name = fmt.Sprintf("complete-hetero(%d,mean=%.2f,std=%.2f)", n, meanPRR, stdPRR)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			prr := clamp(rng.NormMeanStd(meanPRR, stdPRR), 0.05, 1)
			g.AddLink(u, v, prr)
		}
	}
	g.SortNeighbors()
	return g
}

// Ring builds an n-node cycle with uniform PRR.
func Ring(n int, prr float64) *Graph {
	if n < 3 {
		panic("topology: Ring needs n >= 3")
	}
	g := New(n)
	g.Name = fmt.Sprintf("ring(%d)", n)
	for i := 0; i < n; i++ {
		g.AddLink(i, (i+1)%n, prr)
	}
	g.SortNeighbors()
	return g
}

// BinaryTree builds a complete-ish binary tree on n nodes rooted at node 0
// (node i's children are 2i+1 and 2i+2) with uniform PRR.
func BinaryTree(n int, prr float64) *Graph {
	if n < 2 {
		panic("topology: BinaryTree needs n >= 2")
	}
	g := New(n)
	g.Name = fmt.Sprintf("btree(%d)", n)
	for i := 0; i < n; i++ {
		if c := 2*i + 1; c < n {
			g.AddLink(i, c, prr)
		}
		if c := 2*i + 2; c < n {
			g.AddLink(i, c, prr)
		}
	}
	g.SortNeighbors()
	return g
}

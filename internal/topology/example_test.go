package topology_test

import (
	"fmt"

	"ldcflood/internal/topology"
)

// Building a topology by hand and inspecting its structure.
func ExampleGraph() {
	g := topology.New(4)
	g.AddLink(0, 1, 0.9)
	g.AddLink(1, 2, 0.8)
	g.AddLink(2, 3, 0.4)
	g.SortNeighbors()
	fmt.Println("links:", g.NumLinks())
	fmt.Println("diameter:", g.Diameter())
	fmt.Printf("mean PRR: %.2f\n", g.MeanLinkPRR())
	best, prr, _ := g.BestNeighbor(2)
	fmt.Printf("node 2's best neighbor: %d (PRR %.1f)\n", best, prr)
	// Output:
	// links: 3
	// diameter: 3
	// mean PRR: 0.70
	// node 2's best neighbor: 1 (PRR 0.8)
}

// The synthetic GreenOrbs trace is deterministic per seed: 298 sensors in
// a connected forest topology.
func ExampleGreenOrbs() {
	g := topology.GreenOrbs(1)
	fmt.Println("nodes:", g.N())
	fmt.Println("connected:", g.IsConnected())
	// Output:
	// nodes: 298
	// connected: true
}

package topology

import (
	"fmt"
	"math"
	"sync"
)

// CSR is a compressed-sparse-row view of a Graph's adjacency: two flat
// arrays replace the per-node slice-of-struct lists on simulation hot
// paths, halving per-edge memory and making whole-graph iteration a single
// linear scan. Row u occupies Targets[Offsets[u]:Offsets[u+1]] (neighbor
// ids) and PRRs over the same index range (the matching link PRRs), in the
// graph's adjacency order — after Graph.SortNeighbors, ascending by
// neighbor id, which Sorted then reports and PRROf exploits with a binary
// search.
//
// PRRs are float64, not a narrower type: engine delivery decisions draw
// against the exact Graph.PRR values, and quantizing here would break the
// byte-identity guarantee between CSR-backed and slice-backed runs.
//
// A CSR is immutable after construction and safe for concurrent readers;
// one instance is shared by every simulation over the same Graph.
type CSR struct {
	// Offsets has length N()+1; row u is the index range
	// [Offsets[u], Offsets[u+1]).
	Offsets []int32
	// Targets holds the neighbor ids of every row back to back (one entry
	// per directed edge, 2× the undirected link count).
	Targets []int32
	// PRRs holds the link PRR parallel to Targets.
	PRRs []float64
	// Sorted reports that every row is ascending in neighbor id, enabling
	// binary-search lookups. Graphs built by this package's generators and
	// decoders are always sorted.
	Sorted bool
}

// maxCSREdges caps the directed-edge count at what int32 offsets address.
const maxCSREdges = math.MaxInt32

// NewCSR builds the CSR view of g. It is exported for callers that manage
// their own caching; most should use Graph.CSR, which builds once per
// graph. It panics if the graph has more than 2^31-1 directed edges
// (an exabyte-class topology far outside this simulator's domain).
func NewCSR(g *Graph) *CSR {
	n := g.N()
	total := 0
	for u := 0; u < n; u++ {
		total += len(g.adj[u])
	}
	if total > maxCSREdges {
		panic(fmt.Sprintf("topology: %d directed edges exceed CSR's int32 offsets", total))
	}
	c := &CSR{
		Offsets: make([]int32, n+1),
		Targets: make([]int32, total),
		PRRs:    make([]float64, total),
		Sorted:  true,
	}
	pos := int32(0)
	for u := 0; u < n; u++ {
		c.Offsets[u] = pos
		prev := int32(-1)
		for _, l := range g.adj[u] {
			to := int32(l.To)
			c.Targets[pos] = to
			c.PRRs[pos] = l.PRR
			pos++
			if to <= prev {
				c.Sorted = false
			}
			prev = to
		}
	}
	c.Offsets[n] = pos
	return c
}

// N returns the node count.
func (c *CSR) N() int { return len(c.Offsets) - 1 }

// Degree returns the number of neighbors of u.
func (c *CSR) Degree(u int) int { return int(c.Offsets[u+1] - c.Offsets[u]) }

// Row returns u's neighbor ids and matching PRRs, in adjacency order. The
// slices alias the CSR's backing arrays and must not be modified.
func (c *CSR) Row(u int) ([]int32, []float64) {
	lo, hi := c.Offsets[u], c.Offsets[u+1]
	return c.Targets[lo:hi], c.PRRs[lo:hi]
}

// find returns the index of v in row u, or -1. Sorted rows binary-search;
// unsorted rows (hand-built graphs that skipped SortNeighbors) scan.
func (c *CSR) find(u, v int) int32 {
	lo, hi := c.Offsets[u], c.Offsets[u+1]
	if c.Sorted {
		for lo < hi {
			mid := (lo + hi) / 2
			if t := c.Targets[mid]; t < int32(v) {
				lo = mid + 1
			} else if t > int32(v) {
				hi = mid
			} else {
				return mid
			}
		}
		return -1
	}
	for i := lo; i < hi; i++ {
		if c.Targets[i] == int32(v) {
			return i
		}
	}
	return -1
}

// PRROf returns the PRR of link (u, v), or 0 when unlinked — Graph.PRR
// semantics over the flat layout.
func (c *CSR) PRROf(u, v int) float64 {
	if i := c.find(u, v); i >= 0 {
		return c.PRRs[i]
	}
	return 0
}

// HasLink reports whether u and v are linked.
func (c *CSR) HasLink(u, v int) bool { return c.find(u, v) >= 0 }

// csrMu guards every Graph's cached CSR. A single package-level mutex
// (rather than a per-graph one) keeps Graph free of lock state, which its
// JSON decoder copies by value; contention is irrelevant because the
// critical section is a pointer check except for the one build per graph.
var csrMu sync.Mutex

// CSR returns the graph's compressed-sparse-row adjacency view, building
// it on first call and caching it on the graph. Mutating the graph
// (AddLink, RemoveLink) invalidates the cache. Like the rest of Graph,
// the cache follows the package convention that graphs are immutable once
// shared: concurrent CSR calls are safe against each other, but not
// against a concurrent mutation.
func (g *Graph) CSR() *CSR {
	csrMu.Lock()
	defer csrMu.Unlock()
	if g.csr == nil {
		g.csr = NewCSR(g)
	}
	return g.csr
}

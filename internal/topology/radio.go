package topology

import "math"

// RadioModel maps transmitter-receiver distance to an expected packet
// reception ratio using the classic log-distance path-loss channel combined
// with the Zuniga-Krishnamachari link-layer model for non-coherent FSK with
// Manchester encoding (the CC1000/mica2 analysis that underlies most WSN
// link-quality studies, including the intermediate "transitional region"
// visible in the GreenOrbs RSSI data the paper uses).
//
// The shadowing term is supplied externally (per-link, by the generator) so
// that a RadioModel value itself is a pure function and safe for concurrent
// use.
type RadioModel struct {
	// PL0 is the path loss in dB at the reference distance D0.
	PL0 float64
	// D0 is the reference distance in meters.
	D0 float64
	// Exponent is the path-loss exponent (forest: ~3.0-4.0).
	Exponent float64
	// ShadowStd is the log-normal shadowing standard deviation in dB;
	// generators draw one Gaussian per link and pass it to PRR.
	ShadowStd float64
	// TxPower is the transmit power in dBm.
	TxPower float64
	// NoiseFloor is the receiver noise floor in dBm.
	NoiseFloor float64
	// FrameBytes is the frame length in bytes used by the PRR computation.
	FrameBytes int
	// BandwidthRatio is the noise-bandwidth to data-rate ratio (B_N/R);
	// 0.64 for the CC1000-style radio in the reference analysis.
	BandwidthRatio float64
}

// ForestRadio returns a radio model calibrated for a dense forest
// deployment like GreenOrbs: strong attenuation (exponent 3.5), noticeable
// shadowing from trunks and canopy, CC2420-class transmit power.
func ForestRadio() RadioModel {
	return RadioModel{
		PL0:            55,
		D0:             1,
		Exponent:       3.5,
		ShadowStd:      4.0,
		TxPower:        0,
		NoiseFloor:     -105,
		FrameBytes:     50,
		BandwidthRatio: 0.64,
	}
}

// OpenFieldRadio returns a model for unobstructed deployments (exponent
// 2.4, light shadowing), useful for comparison experiments.
func OpenFieldRadio() RadioModel {
	m := ForestRadio()
	m.Exponent = 2.4
	m.ShadowStd = 2.0
	return m
}

// PathLoss returns the deterministic path loss in dB at distance d meters
// (shadowing excluded). Distances below D0 are clamped to D0.
func (m RadioModel) PathLoss(d float64) float64 {
	if d < m.D0 {
		d = m.D0
	}
	return m.PL0 + 10*m.Exponent*math.Log10(d/m.D0)
}

// SNR returns the signal-to-noise ratio in dB at distance d with the given
// shadowing draw (dB, typically Gaussian with std ShadowStd).
func (m RadioModel) SNR(d, shadowDB float64) float64 {
	return m.TxPower - m.PathLoss(d) - shadowDB - m.NoiseFloor
}

// PRR returns the expected packet reception ratio at distance d with the
// given shadowing draw. The result is in [0, 1].
func (m RadioModel) PRR(d, shadowDB float64) float64 {
	return m.prrFromSNR(m.SNR(d, shadowDB))
}

// prrFromSNR implements the NCFSK/Manchester bit-error model:
//
//	Pb  = 1/2 · exp(−SNR_lin/2 · 1/BandwidthRatio)
//	PRR = (1 − Pb)^(8·2·FrameBytes)   (Manchester doubles the bits)
func (m RadioModel) prrFromSNR(snrDB float64) float64 {
	snrLin := math.Pow(10, snrDB/10)
	pb := 0.5 * math.Exp(-snrLin/2/m.BandwidthRatio)
	bits := float64(8 * 2 * m.FrameBytes)
	prr := math.Pow(1-pb, bits)
	if prr < 0 {
		return 0
	}
	if prr > 1 {
		return 1
	}
	return prr
}

// ConnectedRange returns the largest distance at which the shadowing-free
// PRR still exceeds the threshold. It brackets by doubling and then
// bisects; the result is accurate to ~1 cm.
func (m RadioModel) ConnectedRange(prrThreshold float64) float64 {
	if prrThreshold <= 0 || prrThreshold >= 1 {
		panic("topology: ConnectedRange threshold must be in (0,1)")
	}
	lo, hi := m.D0, m.D0*2
	for m.PRR(hi, 0) > prrThreshold {
		lo = hi
		hi *= 2
		if hi > 1e7 {
			return hi // effectively unbounded for this configuration
		}
	}
	for hi-lo > 0.01 {
		mid := (lo + hi) / 2
		if m.PRR(mid, 0) > prrThreshold {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

package topology

import (
	"reflect"
	"testing"

	"ldcflood/internal/rngutil"
)

// withSpatialThreshold pins the brute-force/spatial-hash crossover for the
// duration of fn so both strategies can be forced on the same topology.
func withSpatialThreshold(threshold int, fn func()) {
	old := spatialHashMinNodes
	spatialHashMinNodes = threshold
	defer func() { spatialHashMinNodes = old }()
	fn()
}

// TestLinkByDistanceSpatialMatchesBrute pins the central claim of the
// spatial-hash path: it enumerates exactly the candidate pairs of the
// quadratic scan in the same order, so the adjacency built is byte-identical
// (same links, same PRRs, same per-node list order), not just set-equal.
func TestLinkByDistanceSpatialMatchesBrute(t *testing.T) {
	radio := ForestRadio()
	for _, seed := range []uint64{1, 7, 42} {
		n := 700
		posRNG := rngutil.New(seed).SubName("positions")
		pos := make([]Point, n)
		for i := range pos {
			pos[i] = Point{X: 260 * posRNG.Float64(), Y: 260 * posRNG.Float64()}
		}
		build := func(threshold int) *Graph {
			var g *Graph
			withSpatialThreshold(threshold, func() {
				g = New(n)
				g.Pos = pos
				linkByDistance(g, radio, 0.10, 0.95, rngutil.New(seed).SubName("shadowing"))
			})
			return g
		}
		brute := build(n + 1)
		spatial := build(1)
		if brute.NumLinks() == 0 {
			t.Fatalf("seed %d: degenerate test, no links generated", seed)
		}
		if !reflect.DeepEqual(brute.adj, spatial.adj) {
			t.Fatalf("seed %d: spatial-hash adjacency differs from brute force", seed)
		}
	}
}

// TestGeneratorsSpatialEquivalence runs the full generators (placement,
// linking, degree cap, connectivity stitch, sort, validate) under both
// regimes. The seeds are chosen so the radio draw already yields a connected
// graph — there the stitcher no-ops and the end-to-end outputs must match
// exactly.
func TestGeneratorsSpatialEquivalence(t *testing.T) {
	gen := func(threshold int, f func() *Graph) *Graph {
		var g *Graph
		withSpatialThreshold(threshold, func() { g = f() })
		return g
	}
	for _, tc := range []struct {
		name string
		f    func() *Graph
	}{
		{"scaled-greenorbs", func() *Graph {
			g, err := GenerateGreenOrbs(ScaledGreenOrbsConfig(700), 3)
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
		{"rgg", func() *Graph {
			g, err := RandomGeometric(600, 200, 200, ForestRadio(), 0.10, 9)
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			brute := gen(1<<30, tc.f)
			spatial := gen(1, tc.f)
			if !reflect.DeepEqual(brute.adj, spatial.adj) {
				t.Fatal("spatial-hash generator output differs from brute force")
			}
			if !reflect.DeepEqual(brute.Pos, spatial.Pos) {
				t.Fatal("positions differ between regimes")
			}
		})
	}
}

// TestScaledGreenOrbsConfig checks the constant-density scaling contract:
// a scaled instance stays connected and keeps per-node degree statistics in
// the ballpark of the 298-node calibration.
func TestScaledGreenOrbsConfig(t *testing.T) {
	base := GreenOrbs(1)
	baseDeg := float64(2*base.NumLinks()) / float64(base.N())

	nodes := 2000
	if testing.Short() {
		nodes = 1000
	}
	cfg := ScaledGreenOrbsConfig(nodes)
	if cfg.Nodes != nodes {
		t.Fatalf("scaled config has %d nodes, want %d", cfg.Nodes, nodes)
	}
	area := cfg.FieldX * cfg.FieldY
	baseCfg := DefaultGreenOrbsConfig()
	baseArea := baseCfg.FieldX * baseCfg.FieldY
	wantArea := baseArea * float64(nodes) / float64(GreenOrbsNodes)
	if area < 0.9*wantArea || area > 1.1*wantArea {
		t.Fatalf("scaled area %.0f not proportional to node count (want ~%.0f)", area, wantArea)
	}
	g, err := GenerateGreenOrbs(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if comps := g.Components(); len(comps) != 1 {
		t.Fatalf("scaled graph has %d components", len(comps))
	}
	deg := float64(2*g.NumLinks()) / float64(g.N())
	if deg < 0.5*baseDeg || deg > 2*baseDeg {
		t.Fatalf("scaled mean degree %.1f far from calibration %.1f", deg, baseDeg)
	}
}

package topology

import (
	"testing"
	"testing/quick"

	"ldcflood/internal/rngutil"
)

func TestNewPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestAddLinkBasics(t *testing.T) {
	g := New(3)
	g.AddLink(0, 1, 0.8)
	if !g.HasLink(0, 1) || !g.HasLink(1, 0) {
		t.Fatal("link not symmetric")
	}
	if g.PRR(0, 1) != 0.8 || g.PRR(1, 0) != 0.8 {
		t.Fatalf("PRR = %v / %v", g.PRR(0, 1), g.PRR(1, 0))
	}
	if g.PRR(0, 2) != 0 {
		t.Fatal("absent link should have PRR 0")
	}
	if g.NumLinks() != 1 {
		t.Fatalf("NumLinks = %d", g.NumLinks())
	}
	// Replacement, not duplication.
	g.AddLink(0, 1, 0.5)
	if g.NumLinks() != 1 || g.PRR(1, 0) != 0.5 {
		t.Fatalf("link replacement failed: links=%d prr=%v", g.NumLinks(), g.PRR(1, 0))
	}
}

func TestAddLinkPanics(t *testing.T) {
	cases := []func(){
		func() { New(2).AddLink(0, 0, 0.5) },
		func() { New(2).AddLink(0, 2, 0.5) },
		func() { New(2).AddLink(-1, 1, 0.5) },
		func() { New(2).AddLink(0, 1, 0) },
		func() { New(2).AddLink(0, 1, 1.5) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestRemoveLink(t *testing.T) {
	g := New(3)
	g.AddLink(0, 1, 0.9)
	g.AddLink(1, 2, 0.9)
	if !g.RemoveLink(1, 0) {
		t.Fatal("RemoveLink returned false for existing link")
	}
	if g.HasLink(0, 1) || g.HasLink(1, 0) {
		t.Fatal("link not removed symmetrically")
	}
	if g.RemoveLink(0, 1) {
		t.Fatal("RemoveLink returned true for absent link")
	}
	if g.NumLinks() != 1 {
		t.Fatalf("NumLinks = %d", g.NumLinks())
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := New(4)
	g.AddLink(0, 1, 0.9)
	g.AddLink(0, 2, 0.8)
	g.AddLink(0, 3, 0.7)
	if g.Degree(0) != 3 || g.Degree(1) != 1 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(0), g.Degree(1))
	}
	g.SortNeighbors()
	nb := g.Neighbors(0)
	for i := 1; i < len(nb); i++ {
		if nb[i-1].To >= nb[i].To {
			t.Fatal("neighbors not sorted")
		}
	}
}

func TestLinksOrderedUnique(t *testing.T) {
	g := New(4)
	g.AddLink(2, 1, 0.5)
	g.AddLink(0, 3, 0.6)
	g.AddLink(0, 1, 0.7)
	edges := g.Links()
	if len(edges) != 3 {
		t.Fatalf("Links returned %d edges", len(edges))
	}
	for i, e := range edges {
		if e.U >= e.V {
			t.Fatalf("edge %d not ordered: %+v", i, e)
		}
		if i > 0 {
			prev := edges[i-1]
			if prev.U > e.U || (prev.U == e.U && prev.V >= e.V) {
				t.Fatal("edges not globally ordered")
			}
		}
	}
}

func TestClone(t *testing.T) {
	g := Grid(3, 3, 0.9)
	c := g.Clone()
	c.AddLink(0, 8, 0.5)
	if g.HasLink(0, 8) {
		t.Fatal("Clone shares adjacency storage")
	}
	c.Pos[0].X = 999
	if g.Pos[0].X == 999 {
		t.Fatal("Clone shares position storage")
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	g := New(2)
	g.AddLink(0, 1, 0.5)
	// Corrupt one direction directly.
	g.adj[0][0].PRR = 0.6
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed asymmetric PRR")
	}
}

func TestValidateCatchesPosMismatch(t *testing.T) {
	g := New(3)
	g.Pos = make([]Point, 2)
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed position/node mismatch")
	}
}

func TestBestNeighbor(t *testing.T) {
	g := New(4)
	g.AddLink(0, 1, 0.5)
	g.AddLink(0, 2, 0.9)
	g.AddLink(0, 3, 0.9)
	g.SortNeighbors()
	v, prr, ok := g.BestNeighbor(0)
	if !ok || v != 2 || prr != 0.9 {
		t.Fatalf("BestNeighbor = %d, %v, %v (want 2, 0.9 — lowest id wins tie)", v, prr, ok)
	}
	_, _, ok = New(2).BestNeighbor(0)
	if ok {
		t.Fatal("BestNeighbor on isolated node should report !ok")
	}
}

func TestComponentsAndConnectivity(t *testing.T) {
	g := New(5)
	g.AddLink(0, 1, 0.9)
	g.AddLink(2, 3, 0.9)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("Components = %d, want 3", len(comps))
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	g.AddLink(1, 2, 0.9)
	g.AddLink(3, 4, 0.9)
	if !g.IsConnected() {
		t.Fatal("connected graph reported disconnected")
	}
}

func TestHopDistancesLine(t *testing.T) {
	g := Line(5, 1)
	d := g.HopDistances(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], want)
		}
	}
	if g.Eccentricity(0) != 4 || g.Eccentricity(2) != 2 {
		t.Fatalf("eccentricities wrong: %d, %d", g.Eccentricity(0), g.Eccentricity(2))
	}
	if g.Diameter() != 4 {
		t.Fatalf("Diameter = %d", g.Diameter())
	}
}

func TestHopDistancesUnreachable(t *testing.T) {
	g := New(3)
	g.AddLink(0, 1, 0.9)
	d := g.HopDistances(0)
	if d[2] != -1 {
		t.Fatalf("unreachable node distance = %d, want -1", d[2])
	}
}

func TestGridStructure(t *testing.T) {
	g := Grid(3, 4, 1)
	if g.N() != 12 {
		t.Fatalf("N = %d", g.N())
	}
	// 3 rows × 3 horizontal + 2 rows-gaps × 4 vertical = 9 + 8 = 17
	if g.NumLinks() != 17 {
		t.Fatalf("grid links = %d, want 17", g.NumLinks())
	}
	if g.Diameter() != 5 { // (3-1)+(4-1)
		t.Fatalf("grid diameter = %d, want 5", g.Diameter())
	}
	if g.Degree(0) != 2 || g.Degree(5) != 4 {
		t.Fatalf("corner/center degrees = %d/%d", g.Degree(0), g.Degree(5))
	}
}

func TestStarAndComplete(t *testing.T) {
	s := Star(6, 0.8)
	if s.Degree(0) != 5 || s.Degree(3) != 1 {
		t.Fatal("bad star degrees")
	}
	if s.Diameter() != 2 {
		t.Fatalf("star diameter = %d", s.Diameter())
	}
	k := Complete(5, 1)
	if k.NumLinks() != 10 {
		t.Fatalf("K5 links = %d", k.NumLinks())
	}
	if k.Diameter() != 1 {
		t.Fatalf("K5 diameter = %d", k.Diameter())
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := Star(4, 0.9) // hub degree 3, leaves degree 1
	h := g.DegreeHistogram()
	if h[1] != 3 || h[3] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestMeanLinkPRR(t *testing.T) {
	g := New(3)
	if g.MeanLinkPRR() != 0 {
		t.Fatal("empty graph mean PRR should be 0")
	}
	g.AddLink(0, 1, 0.4)
	g.AddLink(1, 2, 0.8)
	if got := g.MeanLinkPRR(); got < 0.6-1e-12 || got > 0.6+1e-12 {
		t.Fatalf("MeanLinkPRR = %v", got)
	}
}

func TestAnalyzeOnGrid(t *testing.T) {
	g := Grid(4, 4, 0.75)
	s := g.Analyze()
	if s.Nodes != 16 || s.Links != 24 || !s.Connected || s.Isolated != 0 {
		t.Fatalf("bad stats: %+v", s)
	}
	if s.MeanDegree != 3.0 { // 2*24/16
		t.Fatalf("MeanDegree = %v", s.MeanDegree)
	}
	if s.PRR.Mean != 0.75 {
		t.Fatalf("PRR mean = %v", s.PRR.Mean)
	}
	if s.Diameter != 6 || s.SourceEcc != 6 {
		t.Fatalf("diameter/ecc = %d/%d", s.Diameter, s.SourceEcc)
	}
	if s.Transitional != 1.0 { // all PRR 0.75 in [0.1, 0.9)
		t.Fatalf("Transitional = %v", s.Transitional)
	}
}

// Property: after any sequence of AddLink operations on random pairs, the
// graph validates and PRR is symmetric.
func TestQuickAddLinkSymmetry(t *testing.T) {
	f := func(seed uint64, opsRaw uint8) bool {
		r := rngutil.New(seed)
		n := 2 + r.Intn(20)
		g := New(n)
		ops := int(opsRaw)
		for i := 0; i < ops; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			prr := 0.01 + 0.99*r.Float64()
			g.AddLink(u, v, prr)
			if g.PRR(u, v) != g.PRR(v, u) {
				return false
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: components partition the node set.
func TestQuickComponentsPartition(t *testing.T) {
	f := func(seed uint64) bool {
		r := rngutil.New(seed)
		n := 2 + r.Intn(30)
		g := New(n)
		for i := 0; i < n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddLink(u, v, 0.5)
			}
		}
		seen := make([]bool, n)
		total := 0
		for _, comp := range g.Components() {
			for _, v := range comp {
				if seen[v] {
					return false
				}
				seen[v] = true
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

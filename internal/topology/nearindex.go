package topology

import "math"

// NearIndex is a reusable uniform-grid spatial index over a position array.
// It answers "which nodes could lie within `cell` of node u" by visiting
// the 3×3 cell neighborhood around u — a superset of the true in-range set
// that the caller filters with its own exact predicate. linkByDistance uses
// the same technique internally with generation-order constraints; this
// exported form serves callers (e.g. the flood package's carrier-sense
// audibility) that need only membership, not ordering.
type NearIndex struct {
	cell  float64
	cells map[[2]int32][]int32
	pos   []Point
}

// NewNearIndex builds the index with the given cell size. Any pair at true
// distance <= cell is guaranteed to fall within one cell of each other, so
// VisitNear's 3×3 sweep never misses it; callers probing for pairs within
// radius r should therefore pass a cell of at least r (a hair more if the
// radius itself came out of rounded arithmetic).
func NewNearIndex(pos []Point, cell float64) *NearIndex {
	if !(cell > 0) || math.IsInf(cell, 0) {
		panic("topology: NearIndex needs a positive finite cell size")
	}
	ni := &NearIndex{cell: cell, cells: make(map[[2]int32][]int32, len(pos)/4+1), pos: pos}
	for i, p := range pos {
		k := ni.key(p)
		ni.cells[k] = append(ni.cells[k], int32(i))
	}
	return ni
}

func (ni *NearIndex) key(p Point) [2]int32 {
	return [2]int32{int32(math.Floor(p.X / ni.cell)), int32(math.Floor(p.Y / ni.cell))}
}

// VisitNear calls fn for every node other than u in the 3×3 cell
// neighborhood of u's cell, in unspecified order. The visited set is a
// superset of all nodes within the index's cell size of u.
func (ni *NearIndex) VisitNear(u int, fn func(v int)) {
	k := ni.key(ni.pos[u])
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			for _, v := range ni.cells[[2]int32{k[0] + dx, k[1] + dy}] {
				if int(v) != u {
					fn(int(v))
				}
			}
		}
	}
}

package topology

import (
	"sort"

	"ldcflood/internal/stats"
)

// Components returns the connected components of the graph as sorted node
// lists, ordered by their smallest member.
func (g *Graph) Components() [][]int {
	visited := make([]bool, g.N())
	var comps [][]int
	for start := 0; start < g.N(); start++ {
		if visited[start] {
			continue
		}
		var comp []int
		queue := []int{start}
		visited[start] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, l := range g.adj[u] {
				if !visited[l.To] {
					visited[l.To] = true
					queue = append(queue, l.To)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether every node is reachable from node 0.
func (g *Graph) IsConnected() bool {
	return len(g.Components()) == 1
}

// HopDistances returns the BFS hop count from src to every node; unreachable
// nodes get -1.
func (g *Graph) HopDistances(src int) []int {
	g.check(src)
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, l := range g.adj[u] {
			if dist[l.To] == -1 {
				dist[l.To] = dist[u] + 1
				queue = append(queue, l.To)
			}
		}
	}
	return dist
}

// Eccentricity returns the maximum finite hop distance from src, ignoring
// unreachable nodes. For an isolated node it returns 0.
func (g *Graph) Eccentricity(src int) int {
	ecc := 0
	for _, d := range g.HopDistances(src) {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the maximum eccentricity over all nodes (the hop
// diameter). Unreachable pairs are ignored; a graph with no links has
// diameter 0. This is O(N·E) — fine for the network sizes studied here.
func (g *Graph) Diameter() int {
	diam := 0
	for u := 0; u < g.N(); u++ {
		if e := g.Eccentricity(u); e > diam {
			diam = e
		}
	}
	return diam
}

// Stats aggregates the structural features used to calibrate the synthetic
// GreenOrbs trace against the published deployment.
type Stats struct {
	Nodes        int
	Links        int
	MeanDegree   float64
	MinDegree    int
	MaxDegree    int
	Connected    bool
	Diameter     int
	PRR          stats.Summary // distribution over all undirected links
	SourceEcc    int           // hop eccentricity of node 0 (flooding depth)
	Isolated     int           // nodes with degree 0
	Transitional float64       // fraction of links with PRR in [0.1, 0.9)
}

// Analyze computes Stats for the graph.
func (g *Graph) Analyze() Stats {
	s := Stats{
		Nodes:     g.N(),
		Links:     g.NumLinks(),
		Connected: g.IsConnected(),
		MinDegree: g.N(),
	}
	degSum := 0
	for u := 0; u < g.N(); u++ {
		d := g.Degree(u)
		degSum += d
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d == 0 {
			s.Isolated++
		}
	}
	s.MeanDegree = float64(degSum) / float64(g.N())
	prrs := make([]float64, 0, s.Links)
	trans := 0
	for _, e := range g.Links() {
		prrs = append(prrs, e.PRR)
		if e.PRR >= 0.1 && e.PRR < 0.9 {
			trans++
		}
	}
	s.PRR = stats.Summarize(prrs)
	if s.Links > 0 {
		s.Transitional = float64(trans) / float64(s.Links)
	}
	s.Diameter = g.Diameter()
	s.SourceEcc = g.Eccentricity(0)
	return s
}

// DegreeHistogram returns counts[d] = number of nodes with degree d.
func (g *Graph) DegreeHistogram() []int {
	maxDeg := 0
	for u := 0; u < g.N(); u++ {
		if d := g.Degree(u); d > maxDeg {
			maxDeg = d
		}
	}
	counts := make([]int, maxDeg+1)
	for u := 0; u < g.N(); u++ {
		counts[g.Degree(u)]++
	}
	return counts
}

// BestNeighbor returns u's neighbor with the highest PRR (lowest id wins
// ties) and that PRR. ok is false if u has no neighbors. The OPT oracle
// protocol receives from this neighbor.
func (g *Graph) BestNeighbor(u int) (v int, prr float64, ok bool) {
	g.check(u)
	v = -1
	for _, l := range g.adj[u] {
		if l.PRR > prr || (l.PRR == prr && ok && l.To < v) {
			v, prr, ok = l.To, l.PRR, true
		}
	}
	return v, prr, ok
}

// AdjacencyBitset returns a bit matrix b where b[u] has bit v set iff u and
// v are linked; b[u][v/64]>>(v%64)&1. Protocols snapshot this in Reset for
// O(1) carrier-sense audibility checks during simulation.
func (g *Graph) AdjacencyBitset() [][]uint64 {
	words := (g.N() + 63) / 64
	b := make([][]uint64, g.N())
	backing := make([]uint64, g.N()*words)
	for u := range b {
		b[u] = backing[u*words : (u+1)*words]
		for _, l := range g.adj[u] {
			b[u][l.To/64] |= 1 << (uint(l.To) % 64)
		}
	}
	return b
}

// BitsetHas reports whether bit v is set in row (a row of AdjacencyBitset).
func BitsetHas(row []uint64, v int) bool {
	return row[v/64]>>(uint(v)%64)&1 == 1
}

// MeanLinkPRR returns the mean PRR over all undirected links, or 0 for a
// graph with no links. The link-loss analysis (Section IV-B) uses this to
// derive the network-wide expected transmission count k = 1/PRR.
func (g *Graph) MeanLinkPRR() float64 {
	links := g.Links()
	if len(links) == 0 {
		return 0
	}
	sum := 0.0
	for _, e := range links {
		sum += e.PRR
	}
	return sum / float64(len(links))
}

// Package tracebin is the compact binary encoding of simulation traces —
// the streaming, append-friendly counterpart to the line-oriented text
// format in internal/tracelog. Both formats describe the same four event
// kinds (injection, transmission attempt, overheard reception, coverage);
// tracebin trades human readability for size and parse speed: records are
// varint-encoded with per-field deltas, a GreenOrbs flood trace shrinks by
// roughly 2.3-2.4x (the committed measurement lives in BENCH_engine.json's
// trace_*_bytes columns), and the reader streams without allocating per
// record.
//
// The byte layout, torn-tail recovery semantics, determinism guarantees
// and the text compatibility matrix are specified in docs/TRACE.md; this
// package is the reference implementation of that document.
//
// Writer implements sim.Observer, so a binary trace is captured exactly
// like a text one:
//
//	w := tracebin.NewWriter(f)
//	sim.Run(sim.Config{..., Observer: w})
//	w.Flush()
//
// Conversion in either direction is lossless: Reader yields
// tracelog.Event values, and Writer.WriteEvent accepts them, so
//
//	text --tracelog.Parse--> []Event --Writer--> binary
//	binary --ReadAll--> []Event --tracelog.Logger--> text
//
// round-trips byte-identically (certified against the golden traces in
// this package's tests and in internal/flood).
package tracebin

import (
	"bufio"
	"encoding/binary"
	"io"

	"ldcflood/internal/sim"
	"ldcflood/internal/telemetry"
	"ldcflood/internal/tracelog"
)

// Magic is the 4-byte signature opening every binary trace file. The
// bytes spell "LDCT" (low-duty-cycle trace) and never form valid UTF-8
// trace-text, so format auto-detection (cmd/tracecat) is unambiguous.
const Magic = "LDCT"

// Version is the format version byte written after the magic. Readers
// reject traces with a newer version instead of guessing; the layout
// rules for each version are frozen in docs/TRACE.md.
const Version = 1

// Record kind bytes, one per event kind. They deliberately differ from
// the text format's ASCII tags ('I', 'T', ...) so that a text trace fed
// to the binary reader fails loudly at byte 0 (bad magic) rather than
// decoding garbage.
const (
	// RecInject is an injection record: the source generated a packet.
	RecInject = 0x01
	// RecTransmit is a transmission-attempt record with its outcome.
	RecTransmit = 0x02
	// RecOverhear is an overheard-reception record.
	RecOverhear = 0x03
	// RecCovered is a coverage-reached record.
	RecCovered = 0x04
)

// headerLen is the encoded header size: len(Magic) plus the version byte.
const headerLen = len(Magic) + 1

// Writer streams events to w in the binary trace format. It implements
// sim.Observer, so it can be attached directly via sim.Config.Observer.
// Like tracelog.Logger, errors are latched: the first write error stops
// further output and is reported by Err and Flush.
//
// The encoding is a pure function of the event sequence — two runs that
// emit the same events produce byte-identical traces, which is what lets
// the shard certification suite extend worker-count byte-invariance to
// binary traces.
type Writer struct {
	w   *bufio.Writer
	err error

	prevT      int64
	prevPacket int64

	// scratch is the per-record encode buffer (max 1 kind byte + 5
	// fields x 10 varint bytes, rounded up).
	scratch [56]byte

	records *telemetry.Counter // nil when no registry attached
	bytes   *telemetry.Counter
}

// NewWriter returns a Writer emitting to w. The header (magic + version)
// is buffered immediately; call Flush when the run ends to drain it and
// any buffered records.
func NewWriter(w io.Writer) *Writer {
	bw := &Writer{w: bufio.NewWriter(w)}
	_, bw.err = bw.w.WriteString(Magic)
	if bw.err == nil {
		bw.err = bw.w.WriteByte(Version)
	}
	return bw
}

// Instrument resolves the trace.records and trace.bytes counters against
// reg and makes the writer tick them per record (see the catalog in
// docs/OBSERVABILITY.md). Counting includes the already-buffered header
// bytes. A nil registry is a no-op.
func (w *Writer) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	w.records = reg.Counter("trace.records")
	w.bytes = reg.Counter("trace.bytes")
	w.bytes.Add(int64(headerLen))
}

// Err returns the first write error encountered, if any.
func (w *Writer) Err() error { return w.err }

// Flush drains buffered output and returns any write error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

// emit encodes one record: the kind byte, the zigzag-varint time delta,
// then the kind's payload fields in order. The time and packet deltas are
// computed against the writer's running state here so every entry point
// shares the same threading; fields is the payload with the packet field
// already replaced by its delta.
func (w *Writer) emit(kind byte, t int64, fields ...int64) {
	if w.err != nil {
		return
	}
	buf := w.scratch[:0]
	buf = append(buf, kind)
	buf = binary.AppendVarint(buf, t-w.prevT)
	for _, v := range fields {
		buf = binary.AppendVarint(buf, v)
	}
	w.prevT = t
	_, w.err = w.w.Write(buf)
	if w.records != nil {
		w.records.Inc()
		w.bytes.Add(int64(len(buf)))
	}
}

// packetDelta returns the zigzag-encoded packet field (delta against the
// previous record's packet id) and advances the writer's packet state.
func (w *Writer) packetDelta(packet int) int64 {
	d := int64(packet) - w.prevPacket
	w.prevPacket = int64(packet)
	return d
}

// WriteEvent encodes one decoded event — the conversion entry point used
// by cmd/tracecat. The event's kind must be one of the four tracelog
// kinds; unknown kinds latch an error.
func (w *Writer) WriteEvent(ev tracelog.Event) error {
	switch ev.Kind {
	case tracelog.KindInject:
		w.OnInject(ev.T, ev.Packet)
	case tracelog.KindTransmit:
		w.OnTransmit(ev.T, ev.From, ev.To, ev.Packet, ev.Outcome)
	case tracelog.KindOverhear:
		w.OnOverhear(ev.T, ev.From, ev.To, ev.Packet)
	case tracelog.KindCovered:
		w.OnCovered(ev.T, ev.Packet)
	default:
		if w.err == nil {
			w.err = &CorruptError{Offset: -1, Reason: "unknown event kind " + string(rune(ev.Kind))}
		}
	}
	return w.err
}

// WriteEvents encodes a whole decoded trace in order.
func (w *Writer) WriteEvents(events []tracelog.Event) error {
	for _, ev := range events {
		if err := w.WriteEvent(ev); err != nil {
			return err
		}
	}
	return w.err
}

// OnInject implements sim.Observer.
func (w *Writer) OnInject(t int64, packet int) {
	w.emit(RecInject, t, w.packetDelta(packet))
}

// OnTransmit implements sim.Observer.
func (w *Writer) OnTransmit(t int64, from, to, packet int, outcome sim.TxOutcome) {
	w.emit(RecTransmit, t, int64(from), int64(to)-int64(from), w.packetDelta(packet), int64(outcome))
}

// OnOverhear implements sim.Observer.
func (w *Writer) OnOverhear(t int64, from, node, packet int) {
	w.emit(RecOverhear, t, int64(from), int64(node)-int64(from), w.packetDelta(packet))
}

// OnCovered implements sim.Observer.
func (w *Writer) OnCovered(t int64, packet int) {
	w.emit(RecCovered, t, w.packetDelta(packet))
}

var _ sim.Observer = (*Writer)(nil)

// Encode renders a decoded trace as one binary document in memory — the
// convenience wrapper tests and converters use when streaming is not
// needed.
func Encode(events []tracelog.Event) ([]byte, error) {
	var buf writerBuffer
	w := NewWriter(&buf)
	if err := w.WriteEvents(events); err != nil {
		return nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return buf.b, nil
}

// writerBuffer is a minimal in-memory io.Writer (avoids importing bytes
// just for Encode).
type writerBuffer struct{ b []byte }

// Write appends p to the buffer.
func (w *writerBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

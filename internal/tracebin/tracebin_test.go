package tracebin

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"ldcflood/internal/flood"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/telemetry"
	"ldcflood/internal/topology"
	"ldcflood/internal/tracelog"
)

// goldenTrace runs one real flood and returns its text trace — the same
// golden event streams the byte-identity suites certify elsewhere.
func goldenTrace(t *testing.T, protocol string, seed uint64, compact bool, workers int) []byte {
	t.Helper()
	g := topology.Grid(6, 6, 0.8)
	p, err := flood.New(protocol)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	logger := tracelog.NewLogger(&buf)
	_, err = sim.Run(sim.Config{
		Graph:          g,
		Schedules:      schedule.AssignUniform(g.N(), 20, rngutil.New(seed).SubName("schedule")),
		Protocol:       p,
		M:              5,
		Coverage:       0.99,
		Seed:           seed,
		SyncErrorProb:  0.02,
		CompactTime:    compact,
		Workers:        workers,
		Observer:       logger,
		InjectInterval: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := logger.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// textOf renders decoded events back to the text format.
func textOf(t *testing.T, events []tracelog.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	logger := tracelog.NewLogger(&buf)
	for _, ev := range events {
		switch ev.Kind {
		case tracelog.KindInject:
			logger.OnInject(ev.T, ev.Packet)
		case tracelog.KindTransmit:
			logger.OnTransmit(ev.T, ev.From, ev.To, ev.Packet, ev.Outcome)
		case tracelog.KindOverhear:
			logger.OnOverhear(ev.T, ev.From, ev.To, ev.Packet)
		case tracelog.KindCovered:
			logger.OnCovered(ev.T, ev.Packet)
		default:
			t.Fatalf("unknown kind %q", ev.Kind)
		}
	}
	if err := logger.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenRoundTrip certifies the compatibility matrix on real traces:
// text -> events -> binary -> events -> text must reproduce the original
// text bytes, and the decoded events must match exactly.
func TestGoldenRoundTrip(t *testing.T) {
	for _, protocol := range append(flood.Names(), "flash") {
		text := goldenTrace(t, protocol, 42, false, 0)
		events, err := tracelog.Parse(bytes.NewReader(text))
		if err != nil {
			t.Fatalf("%s: %v", protocol, err)
		}
		bin, err := Encode(events)
		if err != nil {
			t.Fatalf("%s: %v", protocol, err)
		}
		if len(events) > 0 && len(bin) >= len(text) {
			t.Errorf("%s: binary trace (%d B) not smaller than text (%d B)", protocol, len(bin), len(text))
		}
		back, torn, err := ReadAll(bytes.NewReader(bin))
		if err != nil {
			t.Fatalf("%s: %v", protocol, err)
		}
		if torn {
			t.Errorf("%s: clean trace reported torn", protocol)
		}
		if !reflect.DeepEqual(events, back) {
			t.Fatalf("%s: events changed across the binary round trip", protocol)
		}
		if got := textOf(t, back); !bytes.Equal(got, text) {
			t.Fatalf("%s: text -> bin -> text not byte-identical", protocol)
		}
	}
}

// TestEngineEmitMatchesConversion certifies that attaching a tracebin
// Writer directly to the engine produces exactly the bytes of converting
// the text trace — the two capture paths are interchangeable — and that
// the binary bytes are invariant across worker counts and time paths.
func TestEngineEmitMatchesConversion(t *testing.T) {
	runBin := func(workers int, compact bool) []byte {
		g := topology.Grid(6, 6, 0.8)
		p, err := flood.New("dbao")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		_, err = sim.Run(sim.Config{
			Graph:          g,
			Schedules:      schedule.AssignUniform(g.N(), 20, rngutil.New(42).SubName("schedule")),
			Protocol:       p,
			M:              5,
			Coverage:       0.99,
			Seed:           42,
			SyncErrorProb:  0.02,
			CompactTime:    compact,
			Workers:        workers,
			Observer:       w,
			InjectInterval: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	text := goldenTrace(t, "dbao", 42, false, 0)
	events, err := tracelog.Parse(bytes.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	converted, err := Encode(events)
	if err != nil {
		t.Fatal(err)
	}
	direct := runBin(0, false)
	if !bytes.Equal(direct, converted) {
		t.Fatal("engine-attached Writer diverged from text-trace conversion")
	}
	// The compact fast path must reproduce the serial reference bytes.
	if got := runBin(0, true); !bytes.Equal(got, direct) {
		t.Error("binary trace diverged between time paths (serial engine)")
	}
	// The sharded engine is its own deterministic RNG discipline (results
	// differ from serial by design), but within it every worker count and
	// both time paths must be byte-identical.
	sharded := runBin(1, false)
	for _, mode := range []struct {
		workers int
		compact bool
	}{{4, false}, {8, false}, {1, true}, {4, true}} {
		if got := runBin(mode.workers, mode.compact); !bytes.Equal(got, sharded) {
			t.Errorf("binary trace diverged at workers=%d compact=%v", mode.workers, mode.compact)
		}
	}
}

// randomEvents builds an arbitrary (not physically meaningful) event
// sequence: negative ids, huge time jumps, out-of-order times — the
// encoder must be lossless for anything tracelog can represent.
func randomEvents(rng *rand.Rand, n int) []tracelog.Event {
	kinds := []tracelog.Kind{tracelog.KindInject, tracelog.KindTransmit, tracelog.KindOverhear, tracelog.KindCovered}
	events := make([]tracelog.Event, n)
	for i := range events {
		ev := tracelog.Event{
			Kind:   kinds[rng.Intn(len(kinds))],
			T:      rng.Int63n(1<<40) - 1<<39,
			Packet: rng.Intn(1 << 20),
		}
		if ev.Kind == tracelog.KindTransmit || ev.Kind == tracelog.KindOverhear {
			ev.From = rng.Intn(1<<20) - 1<<10
			ev.To = rng.Intn(1<<20) - 1<<10
		}
		if ev.Kind == tracelog.KindTransmit {
			ev.Outcome = sim.TxOutcome(rng.Intn(7))
		}
		events[i] = ev
	}
	return events
}

// TestRandomRoundTrip is the property test: any event sequence survives
// encode/decode unchanged.
func TestRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		events := randomEvents(rng, rng.Intn(200))
		bin, err := Encode(events)
		if err != nil {
			t.Fatal(err)
		}
		back, torn, err := ReadAll(bytes.NewReader(bin))
		if err != nil {
			t.Fatal(err)
		}
		if torn {
			t.Fatal("clean encode reported torn")
		}
		if len(events) == 0 {
			if len(back) != 0 {
				t.Fatalf("decoded %d events from empty trace", len(back))
			}
			continue
		}
		if !reflect.DeepEqual(events, back) {
			t.Fatalf("trial %d: round trip changed events", trial)
		}
	}
}

// TestTornTail truncates a real trace at every byte offset: the reader
// must never error, must flag every mid-record cut as torn, and must
// return exactly the records that were fully written.
func TestTornTail(t *testing.T) {
	text := goldenTrace(t, "opt", 1, false, 0)
	events, err := tracelog.Parse(bytes.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	bin, err := Encode(events)
	if err != nil {
		t.Fatal(err)
	}
	// boundary[i] is the byte offset after record i (boundary[0] is the
	// header), computed by re-encoding prefixes — encoding is stateful
	// but deterministic, so prefix encodings are prefixes.
	boundary := make(map[int]int, len(events)+1)
	for i := 0; i <= len(events); i++ {
		prefix, err := Encode(events[:i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(prefix, bin[:len(prefix)]) {
			t.Fatalf("encoding of %d-event prefix is not a byte prefix", i)
		}
		boundary[len(prefix)] = i
	}
	for cut := 0; cut <= len(bin); cut++ {
		got, torn, err := ReadAll(bytes.NewReader(bin[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) > 0 && !reflect.DeepEqual(got, events[:len(got)]) {
			t.Fatalf("cut %d: decoded events are not a prefix (got %d)", cut, len(got))
		}
		if n, clean := boundary[cut]; clean {
			if torn {
				t.Fatalf("cut %d: record-boundary cut reported torn", cut)
			}
			if len(got) != n {
				t.Fatalf("cut %d: want %d events, got %d", cut, n, len(got))
			}
		} else if !torn {
			t.Fatalf("cut %d: mid-record cut not flagged torn", cut)
		}
	}
}

// TestCorruption exercises the corruption taxonomy: bad magic, newer
// version, unknown record kind, varint overflow.
func TestCorruption(t *testing.T) {
	good, err := Encode([]tracelog.Event{{Kind: tracelog.KindInject, T: 3, Packet: 0}})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad magic", func(t *testing.T) {
		_, _, err := ReadAll(bytes.NewReader([]byte("I 3 0\nT 4 0 1 0 0\n")))
		var ce *CorruptError
		if !errors.As(err, &ce) || ce.Offset != 0 {
			t.Fatalf("want CorruptError at 0, got %v", err)
		}
	})
	t.Run("newer version", func(t *testing.T) {
		doc := append([]byte(nil), good...)
		doc[len(Magic)] = Version + 1
		_, _, err := ReadAll(bytes.NewReader(doc))
		if !errors.Is(err, ErrVersion) {
			t.Fatalf("want ErrVersion, got %v", err)
		}
	})
	t.Run("unknown kind", func(t *testing.T) {
		doc := append(append([]byte(nil), good...), 0x7f, 0x00)
		got, _, err := ReadAll(bytes.NewReader(doc))
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("want CorruptError, got %v", err)
		}
		if len(got) != 1 {
			t.Fatalf("want the 1 good record before the corruption, got %d", len(got))
		}
	})
	t.Run("varint overflow", func(t *testing.T) {
		doc := append([]byte(nil), good...)
		doc = append(doc, RecInject)
		for i := 0; i < 11; i++ {
			doc = append(doc, 0xff)
		}
		_, _, err := ReadAll(bytes.NewReader(doc))
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("want CorruptError, got %v", err)
		}
	})
	t.Run("empty file is a torn header", func(t *testing.T) {
		got, torn, err := ReadAll(bytes.NewReader(nil))
		if err != nil || len(got) != 0 || !torn {
			t.Fatalf("want torn empty trace, got events=%d torn=%v err=%v", len(got), torn, err)
		}
	})
	t.Run("header-only file is a clean empty trace", func(t *testing.T) {
		got, torn, err := ReadAll(bytes.NewReader([]byte(Magic + "\x01")))
		if err != nil || len(got) != 0 || torn {
			t.Fatalf("want clean empty trace, got events=%d torn=%v err=%v", len(got), torn, err)
		}
	})
}

// TestWriterTelemetry checks the trace.records / trace.bytes counters
// against the document actually produced.
func TestWriterTelemetry(t *testing.T) {
	events := randomEvents(rand.New(rand.NewSource(3)), 100)
	var buf bytes.Buffer
	reg := telemetry.New()
	w := NewWriter(&buf)
	w.Instrument(reg)
	if err := w.WriteEvents(events); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got, want := snap["trace.records"], int64(len(events)); got != want {
		t.Errorf("trace.records = %d, want %d", got, want)
	}
	if got, want := snap["trace.bytes"], int64(buf.Len()); got != want {
		t.Errorf("trace.bytes = %d, want %d (document size)", got, want)
	}
}

// TestStreamingReader drives Next through a one-byte-at-a-time reader to
// exercise window refills across record boundaries.
func TestStreamingReader(t *testing.T) {
	events := randomEvents(rand.New(rand.NewSource(5)), 64)
	bin, err := Encode(events)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(&oneByteReader{data: bin})
	var got []tracelog.Event
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ev)
	}
	if !reflect.DeepEqual(events, got) {
		t.Fatal("one-byte reads changed the decode")
	}
}

// oneByteReader yields one byte per Read call.
type oneByteReader struct{ data []byte }

func (r *oneByteReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	p[0] = r.data[0]
	r.data = r.data[1:]
	return 1, nil
}

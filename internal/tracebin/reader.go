package tracebin

// Streaming decoder for the binary trace format. The reader distinguishes
// three terminal conditions, mirroring internal/runner's journal
// semantics (docs/TRACE.md, "Torn-tail recovery"):
//
//   - clean end: the input stops exactly at a record boundary; Next
//     returns io.EOF and Torn reports false.
//   - torn tail: the input stops mid-record (a writer was killed before
//     its last buffered record drained). The partial record is dropped,
//     Next returns io.EOF, and Torn reports true — every fully-written
//     record before the tear is still delivered.
//   - corruption: the bytes cannot be a trace prefix at all (bad magic,
//     unsupported version, unknown record kind, varint overflow). Next
//     returns a *CorruptError naming the byte offset; nothing after it is
//     trusted.

import (
	"errors"
	"fmt"
	"io"

	"ldcflood/internal/sim"
	"ldcflood/internal/tracelog"
)

// ErrVersion is returned (wrapped in *CorruptError) when a trace's
// version byte is newer than this package understands.
var ErrVersion = errors.New("tracebin: unsupported format version")

// CorruptError reports undecodable input at a byte offset. A torn tail is
// NOT corruption — truncation mid-record is expected after a crash and is
// reported through Reader.Torn instead.
type CorruptError struct {
	// Offset is the byte position of the first undecodable byte, or -1
	// when the input position is unknown.
	Offset int64
	// Reason describes what failed to decode.
	Reason string
	// Err is an optional underlying error (e.g. ErrVersion).
	Err error
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("tracebin: corrupt trace at byte %d: %s", e.Offset, e.Reason)
}

// Unwrap returns the underlying error, if any.
func (e *CorruptError) Unwrap() error { return e.Err }

// maxVarintLen bounds one encoded field; binary.Varint uses at most 10
// bytes for an int64.
const maxVarintLen = 10

// Reader streams events out of a binary trace. Use Next for one event at
// a time or ReadAll for the whole document.
type Reader struct {
	r   io.Reader
	buf []byte // unconsumed decoded window
	off int64  // file offset of buf[0]
	eof bool   // underlying reader exhausted

	headerDone bool
	torn       bool

	prevT      int64
	prevPacket int64
}

// NewReader returns a Reader decoding from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r, buf: make([]byte, 0, 64*1024)}
}

// Torn reports whether the trace ended mid-record (or mid-header) — a
// truncated tail from a killed writer. It is meaningful once Next has
// returned io.EOF.
func (r *Reader) Torn() bool { return r.torn }

// fill grows the window to at least n unconsumed bytes, stopping early at
// EOF. It returns the number of bytes available.
func (r *Reader) fill(n int) (int, error) {
	for len(r.buf) < n && !r.eof {
		if cap(r.buf)-len(r.buf) < 4096 {
			grown := make([]byte, len(r.buf), cap(r.buf)*2+4096)
			copy(grown, r.buf)
			r.buf = grown
		}
		m, err := r.r.Read(r.buf[len(r.buf):cap(r.buf)])
		r.buf = r.buf[:len(r.buf)+m]
		if err == io.EOF {
			r.eof = true
		} else if err != nil {
			return len(r.buf), err
		}
	}
	return len(r.buf), nil
}

// consume drops n bytes from the front of the window.
func (r *Reader) consume(n int) {
	r.buf = r.buf[:copy(r.buf, r.buf[n:])]
	r.off += int64(n)
}

// header checks the magic and version once. A file shorter than the
// header is a torn tail (a writer died before its first flush); wrong
// magic or a newer version is corruption.
func (r *Reader) header() error {
	if r.headerDone {
		return nil
	}
	n, err := r.fill(headerLen)
	if err != nil {
		return err
	}
	if n < headerLen {
		if n > 0 && string(r.buf[:min(n, len(Magic))]) != Magic[:min(n, len(Magic))] {
			return &CorruptError{Offset: 0, Reason: "bad magic"}
		}
		r.torn = true
		return io.EOF
	}
	if string(r.buf[:len(Magic)]) != Magic {
		return &CorruptError{Offset: 0, Reason: "bad magic"}
	}
	if v := r.buf[len(Magic)]; v != Version {
		return &CorruptError{
			Offset: int64(len(Magic)),
			Reason: fmt.Sprintf("version %d (reader understands <= %d)", v, Version),
			Err:    ErrVersion,
		}
	}
	r.consume(headerLen)
	r.headerDone = true
	return nil
}

// varint decodes one zigzag varint at position p in the window. It
// returns errShort when the window ends mid-varint (possible torn tail)
// and a *CorruptError when the varint overflows int64.
func (r *Reader) varint(p int) (v int64, next int, err error) {
	var uv uint64
	var shift uint
	for i := 0; ; i++ {
		if p+i >= len(r.buf) {
			return 0, 0, errShort
		}
		if i == maxVarintLen {
			return 0, 0, &CorruptError{Offset: r.off + int64(p), Reason: "varint overflow"}
		}
		b := r.buf[p+i]
		if b < 0x80 {
			if i == maxVarintLen-1 && b > 1 {
				return 0, 0, &CorruptError{Offset: r.off + int64(p), Reason: "varint overflow"}
			}
			uv |= uint64(b) << shift
			// Zigzag decode.
			v = int64(uv >> 1)
			if uv&1 != 0 {
				v = ^v
			}
			return v, p + i + 1, nil
		}
		uv |= uint64(b&0x7f) << shift
		shift += 7
	}
}

// errShort is the internal "window ended mid-record" sentinel; Next turns
// it into a torn tail at EOF.
var errShort = errors.New("tracebin: short record")

// fieldCount returns the number of varint payload fields (including the
// time delta) for a record kind, or -1 for an unknown kind.
func fieldCount(kind byte) int {
	switch kind {
	case RecInject, RecCovered:
		return 2 // dt, packet delta
	case RecTransmit:
		return 5 // dt, from, to delta, packet delta, outcome
	case RecOverhear:
		return 4 // dt, from, node delta, packet delta
	}
	return -1
}

// Next decodes the next event. At the end of input it returns io.EOF —
// check Torn to learn whether the trace ended cleanly or mid-record.
// Undecodable input returns a *CorruptError.
func (r *Reader) Next() (tracelog.Event, error) {
	if err := r.header(); err != nil {
		return tracelog.Event{}, err
	}
	// One record is at most 1 + 5*maxVarintLen bytes; keeping that much
	// in the window means a decode never stalls on a partial read.
	if _, err := r.fill(1 + 5*maxVarintLen); err != nil {
		return tracelog.Event{}, err
	}
	if len(r.buf) == 0 {
		return tracelog.Event{}, io.EOF
	}
	kind := r.buf[0]
	n := fieldCount(kind)
	if n < 0 {
		return tracelog.Event{}, &CorruptError{Offset: r.off, Reason: fmt.Sprintf("unknown record kind 0x%02x", kind)}
	}
	fields := make([]int64, n)
	p := 1
	for i := 0; i < n; i++ {
		v, next, err := r.varint(p)
		if err == errShort {
			// The window holds everything the input had; a record that
			// does not fit is a torn tail.
			r.torn = true
			return tracelog.Event{}, io.EOF
		}
		if err != nil {
			return tracelog.Event{}, err
		}
		fields[i], p = v, next
	}
	r.consume(p)

	t := r.prevT + fields[0]
	r.prevT = t
	ev := tracelog.Event{T: t}
	switch kind {
	case RecInject, RecCovered:
		r.prevPacket += fields[1]
		ev.Packet = int(r.prevPacket)
		ev.Kind = tracelog.KindInject
		if kind == RecCovered {
			ev.Kind = tracelog.KindCovered
		}
	case RecTransmit:
		ev.Kind = tracelog.KindTransmit
		ev.From = int(fields[1])
		ev.To = int(fields[1] + fields[2])
		r.prevPacket += fields[3]
		ev.Packet = int(r.prevPacket)
		ev.Outcome = sim.TxOutcome(fields[4])
	case RecOverhear:
		ev.Kind = tracelog.KindOverhear
		ev.From = int(fields[1])
		ev.To = int(fields[1] + fields[2])
		r.prevPacket += fields[3]
		ev.Packet = int(r.prevPacket)
	}
	return ev, nil
}

// ReadAll decodes a whole binary trace. A torn tail is tolerated — the
// events before the tear are returned with torn == true — while
// corruption returns a *CorruptError alongside the events decoded before
// it.
func ReadAll(rd io.Reader) (events []tracelog.Event, torn bool, err error) {
	r := NewReader(rd)
	for {
		ev, err := r.Next()
		if err == io.EOF {
			return events, r.Torn(), nil
		}
		if err != nil {
			return events, r.Torn(), err
		}
		events = append(events, ev)
	}
}

package tracebin

import (
	"bytes"
	"reflect"
	"testing"

	"ldcflood/internal/tracelog"
)

// FuzzReader feeds arbitrary bytes to the binary reader. The invariants:
// the reader never panics; a decodable input re-encodes to a canonical
// document that decodes to the same events (decode/encode/decode is a
// fixed point); and a torn result is never also an error.
func FuzzReader(f *testing.F) {
	// Seeds: a small valid trace, its torn truncations, corrupt headers,
	// an unknown record kind, and a varint bomb.
	good, err := Encode([]tracelog.Event{
		{Kind: tracelog.KindInject, T: 3, Packet: 0},
		{Kind: tracelog.KindTransmit, T: 4, From: 0, To: 7, Packet: 0, Outcome: 0},
		{Kind: tracelog.KindOverhear, T: 4, From: 0, To: 9, Packet: 0},
		{Kind: tracelog.KindCovered, T: 9, Packet: 0},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)-1])                                                                                                // torn tail
	f.Add(good[:headerLen])                                                                                                  // clean empty trace
	f.Add(good[:headerLen-1])                                                                                                // torn header
	f.Add([]byte{})                                                                                                          // empty file
	f.Add([]byte("I 3 0\n"))                                                                                                 // a text trace (bad magic)
	f.Add([]byte("LDCT\x02"))                                                                                                // newer version
	f.Add(append(append([]byte(nil), good...), 0x7f))                                                                        // unknown kind
	f.Add(append(append([]byte(nil), good...), RecInject, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff)) // varint bomb

	f.Fuzz(func(t *testing.T, data []byte) {
		events, torn, err := ReadAll(bytes.NewReader(data))
		if err != nil && torn {
			t.Fatalf("torn and corrupt at once: %v", err)
		}
		if err != nil {
			if _, ok := err.(*CorruptError); !ok {
				t.Fatalf("non-CorruptError from ReadAll: %v", err)
			}
			return
		}
		// Whatever decoded cleanly must survive a canonical round trip.
		bin, err := Encode(events)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, torn2, err := ReadAll(bytes.NewReader(bin))
		if err != nil || torn2 {
			t.Fatalf("canonical document failed to decode: torn=%v err=%v", torn2, err)
		}
		if len(events) != len(back) || (len(events) > 0 && !reflect.DeepEqual(events, back)) {
			t.Fatal("decode/encode/decode is not a fixed point")
		}
	})
}

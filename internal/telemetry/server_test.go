package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeVarsAndPprof(t *testing.T) {
	r := New()
	r.Counter("test.counter").Add(12)
	r.Timer("test.timer").Observe(1000)
	s, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !strings.HasPrefix(s.URL(), "http://127.0.0.1:") {
		t.Fatalf("URL = %q", s.URL())
	}

	// /debug/vars: valid JSON carrying expvar's standard vars plus ours.
	resp, err := http.Get(s.URL() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	for _, key := range []string{"cmdline", "memstats", "test.counter", "test.timer.count", "test.timer.total_ns"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("/debug/vars lacks %q; keys: %v", key, keysOf(doc))
		}
	}
	if v, ok := doc["test.counter"].(float64); !ok || v != 12 {
		t.Fatalf("test.counter = %v, want 12", doc["test.counter"])
	}

	// Counters keep moving between snapshots.
	r.Counter("test.counter").Add(1)
	resp2, err := http.Get(s.URL() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	var doc2 map[string]any
	if err := json.Unmarshal(body2, &doc2); err != nil {
		t.Fatal(err)
	}
	if v := doc2["test.counter"].(float64); v != 13 {
		t.Fatalf("second snapshot test.counter = %v, want 13", v)
	}

	// /debug/pprof: index and a cheap profile endpoint respond.
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/goroutine?debug=1"} {
		resp, err := http.Get(s.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
	}
}

func TestServeNilRegistry(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", nil); err == nil {
		t.Fatal("Serve(nil) succeeded")
	}
}

// TestTwoServersOneProcess guards the reason handleVars avoids
// expvar.Publish: two live debug servers in one process must not panic or
// interfere.
func TestTwoServersOneProcess(t *testing.T) {
	s1, err := Serve("127.0.0.1:0", New())
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := Serve("127.0.0.1:0", New())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, s := range []*Server{s1, s2} {
		resp, err := http.Get(s.URL() + "/debug/vars")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", s.URL(), resp.StatusCode)
		}
	}
}

func keysOf(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

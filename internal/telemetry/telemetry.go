// Package telemetry is the repository's runtime observability layer: a
// zero-dependency, allocation-free registry of named counters, gauges and
// timers that the sim engine, the batch runner, and the fault machinery
// update while they work, plus an opt-in debug HTTP server (server.go)
// exposing an expvar-compatible JSON snapshot and net/http/pprof.
//
// Design constraints, in order:
//
//   - Disabled must be free. Instruments are reached through pointers the
//     instrumented code resolves once at setup; with no registry attached
//     every hot-path site costs exactly one predictable nil-check branch.
//   - Updates are allocation-free. Counter.Add, Gauge.Set and
//     Timer.Observe are single atomic operations on pre-allocated cells —
//     safe on any goroutine, never taking a lock, never allocating.
//   - Snapshots are cheap and safe anywhere. Snapshot copies every value
//     with atomic loads while updates continue; WriteJSON emits the copy
//     with sorted keys, so equal states serialize identically.
//
// Instrument names are dot-separated paths ("sim.slots.visited",
// "runner.jobs.done"). The full catalog of names used by this repository,
// with units and the code path that increments each, is in
// docs/OBSERVABILITY.md.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is a programming error but is not
// checked on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-written instantaneous value (queue depth, ETA seconds).
// The zero value is ready to use; all methods are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add shifts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Timer accumulates durations: how many intervals were observed and their
// total length. The zero value is ready to use; Observe is two atomic adds
// and safe for concurrent use. A Timer appears in snapshots as two keys,
// "<name>.count" and "<name>.total_ns".
type Timer struct {
	n  atomic.Int64
	ns atomic.Int64
}

// Observe records one interval.
func (t *Timer) Observe(d time.Duration) {
	t.n.Add(1)
	t.ns.Add(int64(d))
}

// Count returns how many intervals have been observed.
func (t *Timer) Count() int64 { return t.n.Load() }

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration { return time.Duration(t.ns.Load()) }

// Mean returns the average observed interval, or 0 before the first
// observation.
func (t *Timer) Mean() time.Duration {
	n := t.n.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(t.ns.Load() / n)
}

// Registry is a namespace of instruments. Instruments are created on first
// lookup and live for the registry's lifetime, so instrumented code
// resolves its pointers once at setup and updates them lock-free
// afterwards. A name identifies exactly one instrument kind; asking for an
// existing name as a different kind panics (a wiring bug, caught loudly).
//
// The zero Registry is not usable; call New.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
	}
}

// kindOf reports which map already owns name, for collision diagnostics.
// Callers must hold at least the read lock.
func (r *Registry) kindOf(name string) string {
	if _, ok := r.counters[name]; ok {
		return "counter"
	}
	if _, ok := r.gauges[name]; ok {
		return "gauge"
	}
	if _, ok := r.timers[name]; ok {
		return "timer"
	}
	return ""
}

// Counter returns the counter registered under name, creating it on first
// use. It panics if name is already a gauge or timer.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	if k := r.kindOf(name); k != "" {
		panic(fmt.Sprintf("telemetry: %q already registered as a %s", name, k))
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// It panics if name is already a counter or timer.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	if k := r.kindOf(name); k != "" {
		panic(fmt.Sprintf("telemetry: %q already registered as a %s", name, k))
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Timer returns the timer registered under name, creating it on first use.
// It panics if name is already a counter or gauge.
func (r *Registry) Timer(name string) *Timer {
	r.mu.RLock()
	t, ok := r.timers[name]
	r.mu.RUnlock()
	if ok {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.timers[name]; ok {
		return t
	}
	if k := r.kindOf(name); k != "" {
		panic(fmt.Sprintf("telemetry: %q already registered as a %s", name, k))
	}
	t = &Timer{}
	r.timers[name] = t
	return t
}

// Snapshot is a point-in-time copy of every instrument's value, keyed by
// instrument name. Timers contribute two keys: "<name>.count" and
// "<name>.total_ns". Values are read with atomic loads while updates
// continue, so a snapshot taken mid-update is internally consistent per
// key but keys are not mutually synchronized — fine for monitoring, which
// is the intended use.
type Snapshot map[string]int64

// Snapshot copies every instrument's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := make(Snapshot, len(r.counters)+len(r.gauges)+2*len(r.timers))
	for name, c := range r.counters {
		s[name] = c.Value()
	}
	for name, g := range r.gauges {
		s[name] = g.Value()
	}
	for name, t := range r.timers {
		s[name+".count"] = t.Count()
		s[name+".total_ns"] = int64(t.Total())
	}
	return s
}

// Keys returns the snapshot's keys, sorted.
func (s Snapshot) Keys() []string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteJSON emits the snapshot as one JSON object with sorted keys, so two
// equal snapshots serialize byte-identically. The output shape matches one
// var of an expvar page: {"sim.slots.visited": 12034, ...}.
func (s Snapshot) WriteJSON(w io.Writer) error {
	var err error
	write := func(str string) {
		if err == nil {
			_, err = io.WriteString(w, str)
		}
	}
	write("{")
	for i, k := range s.Keys() {
		if i > 0 {
			write(",")
		}
		write(strconv.Quote(k))
		write(": ")
		write(strconv.FormatInt(s[k], 10))
	}
	write("}")
	return err
}

// WriteTable renders the snapshot as an aligned two-column text table with
// sorted keys — the CLIs' -stats output.
func (s Snapshot) WriteTable(w io.Writer) error {
	keys := s.Keys()
	width := 0
	for _, k := range keys {
		if len(k) > width {
			width = len(k)
		}
	}
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%-*s  %d\n", width, k, s[k]); err != nil {
			return err
		}
	}
	return nil
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeTimerBasics(t *testing.T) {
	r := New()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.Gauge("a.gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	tm := r.Timer("a.timer")
	if tm.Mean() != 0 {
		t.Fatalf("empty timer mean = %v, want 0", tm.Mean())
	}
	tm.Observe(10 * time.Millisecond)
	tm.Observe(30 * time.Millisecond)
	if tm.Count() != 2 || tm.Total() != 40*time.Millisecond || tm.Mean() != 20*time.Millisecond {
		t.Fatalf("timer = (%d, %v, %v)", tm.Count(), tm.Total(), tm.Mean())
	}
}

func TestRegistryReturnsSameInstrument(t *testing.T) {
	r := New()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("Counter(x) returned two different cells")
	}
	if r.Gauge("y") != r.Gauge("y") {
		t.Fatal("Gauge(y) returned two different cells")
	}
	if r.Timer("z") != r.Timer("z") {
		t.Fatal("Timer(z) returned two different cells")
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	r := New()
	r.Counter("dup")
	defer func() {
		if recover() == nil {
			t.Fatal("Gauge(dup) after Counter(dup) did not panic")
		}
	}()
	r.Gauge("dup")
}

func TestSnapshotAndJSON(t *testing.T) {
	r := New()
	r.Counter("sim.slots").Add(100)
	r.Gauge("runner.queue").Set(5)
	r.Timer("runner.job").Observe(2 * time.Second)
	snap := r.Snapshot()
	want := Snapshot{
		"sim.slots":           100,
		"runner.queue":        5,
		"runner.job.count":    1,
		"runner.job.total_ns": int64(2 * time.Second),
	}
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d keys, want %d: %v", len(snap), len(want), snap)
	}
	for k, v := range want {
		if snap[k] != v {
			t.Fatalf("snapshot[%q] = %d, want %d", k, snap[k], v)
		}
	}

	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]int64
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v\n%s", err, buf.String())
	}
	for k, v := range want {
		if decoded[k] != v {
			t.Fatalf("decoded[%q] = %d, want %d", k, decoded[k], v)
		}
	}
	// Deterministic serialization: equal snapshots produce equal bytes.
	var buf2 bytes.Buffer
	if err := snap.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("WriteJSON is not deterministic")
	}
}

func TestWriteTable(t *testing.T) {
	r := New()
	r.Counter("bb").Add(2)
	r.Counter("a").Add(1)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "a ") || !strings.HasPrefix(lines[1], "bb") {
		t.Fatalf("table not sorted/aligned:\n%s", buf.String())
	}
}

// TestConcurrentUpdatesAndSnapshots drives instrument creation, updates,
// and snapshot reads from many goroutines at once; under -race this
// certifies the registry's concurrency contract (the runner updates
// telemetry from every worker while the debug server snapshots it).
func TestConcurrentUpdatesAndSnapshots(t *testing.T) {
	r := New()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared.count")
			g := r.Gauge("shared.gauge")
			tm := r.Timer("shared.timer")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(int64(i))
				tm.Observe(time.Microsecond)
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	// Concurrent readers, including JSON serialization.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				var buf bytes.Buffer
				_ = r.Snapshot().WriteJSON(&buf)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared.count").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Timer("shared.timer").Count(); got != workers*perWorker {
		t.Fatalf("timer count = %d, want %d", got, workers*perWorker)
	}
}

package telemetry

// The opt-in debug HTTP server behind the CLIs' -debug-addr flag. It
// serves two families of endpoints on a private mux (never the global
// http.DefaultServeMux, so importing this package cannot leak handlers
// into an embedding application):
//
//	/debug/vars   expvar-compatible JSON: {"cmdline": ..., "memstats":
//	              ..., plus one key per registry instrument}
//	/debug/pprof  the standard net/http/pprof handlers (profile, heap,
//	              goroutine, trace, ...)
//
// A long sweep started with -debug-addr can therefore be watched with
// plain curl and profiled with `go tool pprof` while it runs; see
// docs/OBSERVABILITY.md for a worked example.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"time"
)

// Server is a running debug endpoint. Start one with Serve; stop it with
// Close. The zero value is not usable.
type Server struct {
	reg *Registry
	ln  net.Listener
	srv *http.Server
}

// Serve starts a debug HTTP server for reg on addr (host:port; use ":0" or
// "127.0.0.1:0" to let the kernel pick a free port) and returns once the
// listener is bound — Addr then reports the actual address. The server
// runs on a background goroutine until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	if reg == nil {
		return nil, fmt.Errorf("telemetry: Serve needs a non-nil registry")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	s := &Server{reg: reg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", s.handleVars)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address (with the kernel-assigned port
// when Serve was given port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns a dialable base URL, e.g. "http://127.0.0.1:43121". A
// wildcard listen host (":8080", "[::]:8080") is reported as localhost so
// the URL works verbatim in curl and go tool pprof.
func (s *Server) URL() string {
	host, port, err := net.SplitHostPort(s.Addr())
	if err != nil {
		return "http://" + s.Addr()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "localhost"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// Close stops the listener and releases the port.
func (s *Server) Close() error { return s.srv.Close() }

// handleVars writes the expvar-compatible JSON document: the process
// command line and runtime.MemStats (the two vars the stdlib expvar
// package always publishes) followed by every registry instrument, keys
// sorted. It is assembled by hand rather than through expvar.Publish
// because expvar's registry is process-global and panics on duplicate
// names, which would break tests (and any caller) running two servers in
// one process.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	cmdline, _ := json.Marshal(os.Args)
	memstats, _ := json.Marshal(mem)
	fmt.Fprintf(w, "{\n\"cmdline\": %s,\n\"memstats\": %s", cmdline, memstats)
	snap := s.reg.Snapshot()
	for _, k := range snap.Keys() {
		fmt.Fprintf(w, ",\n%q: %d", k, snap[k])
	}
	fmt.Fprint(w, "\n}\n")
}

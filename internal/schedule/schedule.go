// Package schedule models the periodic working schedules of low-duty-cycle
// sensors (Section III-A of the paper): time is slotted, each sensor repeats
// a T-slot period and is awake only in its chosen active slots. The paper's
// normalized analysis uses exactly one active slot per period, giving duty
// ratio 1/T; multi-slot schedules are provided for generality.
package schedule

import (
	"fmt"
	"sort"

	"ldcflood/internal/rngutil"
)

// Schedule is a periodic active/dormant pattern. Immutable after creation;
// safe for concurrent readers.
type Schedule struct {
	period int
	active []bool
	slots  []int // sorted active slot indices
}

// NewSingleSlot returns a schedule with period T that is active only in the
// given slot — the paper's normalized low-duty-cycle model (duty ratio 1/T).
// It panics if period <= 0 or slot is outside [0, period).
func NewSingleSlot(period, slot int) *Schedule {
	return NewMultiSlot(period, []int{slot})
}

// NewMultiSlot returns a schedule with period T active in the given slots.
// Duplicate slots are collapsed. It panics for an invalid period, an empty
// slot list, or out-of-range slots.
func NewMultiSlot(period int, slots []int) *Schedule {
	if period <= 0 {
		panic(fmt.Sprintf("schedule: period %d must be positive", period))
	}
	if len(slots) == 0 {
		panic("schedule: need at least one active slot")
	}
	s := &Schedule{period: period, active: make([]bool, period)}
	for _, slot := range slots {
		if slot < 0 || slot >= period {
			panic(fmt.Sprintf("schedule: slot %d outside [0,%d)", slot, period))
		}
		s.active[slot] = true
	}
	for i, a := range s.active {
		if a {
			s.slots = append(s.slots, i)
		}
	}
	return s
}

// AlwaysOn returns the degenerate 100%-duty schedule (period 1). It models
// the "Duty Ratio = 100%" series in Fig. 5.
func AlwaysOn() *Schedule {
	return NewSingleSlot(1, 0)
}

// Period returns the schedule period T in slots.
func (s *Schedule) Period() int { return s.period }

// ActiveSlots returns the sorted active slot indices. The returned slice is
// owned by the schedule and must not be modified.
func (s *Schedule) ActiveSlots() []int { return s.slots }

// DutyRatio returns the fraction of slots in which the sensor is awake.
func (s *Schedule) DutyRatio() float64 {
	return float64(len(s.slots)) / float64(s.period)
}

// IsActive reports whether the sensor is awake at absolute slot t. Negative
// t is treated by periodic extension.
func (s *Schedule) IsActive(t int64) bool {
	return s.active[s.phase(t)]
}

func (s *Schedule) phase(t int64) int {
	p := int(t % int64(s.period))
	if p < 0 {
		p += s.period
	}
	return p
}

// NextActive returns the smallest absolute slot t' >= t at which the sensor
// is awake. With local synchronization (Section III-B) a sender uses this to
// find the receiver's next wake-up.
func (s *Schedule) NextActive(t int64) int64 {
	phase := s.phase(t)
	// First active slot with index >= phase within this period.
	i := sort.SearchInts(s.slots, phase)
	if i < len(s.slots) {
		return t + int64(s.slots[i]-phase)
	}
	// Wrap to the first active slot of the next period.
	return t + int64(s.period-phase+s.slots[0])
}

// NextActiveAfter returns the smallest absolute slot strictly greater than
// t at which the sensor is awake — the retransmission opportunity after a
// failed attempt at slot t (the paper's sleep latency).
func (s *Schedule) NextActiveAfter(t int64) int64 {
	return s.NextActive(t + 1)
}

// SleepLatency returns NextActive(t) - t: how long a sender must wait from
// slot t until this schedule's owner can receive.
func (s *Schedule) SleepLatency(t int64) int64 {
	return s.NextActive(t) - t
}

// ActiveCountBefore returns the number of active slots in [0, t) — the
// radio-on time a node accumulates over the first t slots. The sim engine's
// compact-time fast path uses it to account awake-slot bookkeeping
// arithmetically instead of iterating dormant slots; it runs in O(log
// ActiveSlots) via period arithmetic. Non-positive t returns 0.
func (s *Schedule) ActiveCountBefore(t int64) int64 {
	if t <= 0 {
		return 0
	}
	full := t / int64(s.period)
	rem := int(t % int64(s.period))
	// sort.SearchInts returns the number of active offsets < rem.
	return full*int64(len(s.slots)) + int64(sort.SearchInts(s.slots, rem))
}

// String renders the schedule compactly.
func (s *Schedule) String() string {
	return fmt.Sprintf("schedule{T=%d active=%v duty=%.1f%%}", s.period, s.slots, 100*s.DutyRatio())
}

// Assignment produces one schedule per node. All assignment helpers are
// deterministic given their inputs.

// AssignUniform gives each of n nodes a single uniformly-random active slot
// in a period-T schedule — the paper's model where "each sensor randomly
// picks up one active time slot in one period". It panics if n <= 0 or
// period <= 0.
func AssignUniform(n, period int, rng *rngutil.Stream) []*Schedule {
	if n <= 0 {
		panic("schedule: AssignUniform needs n > 0")
	}
	out := make([]*Schedule, n)
	for i := range out {
		out[i] = NewSingleSlot(period, rng.Intn(period))
	}
	return out
}

// AssignUniformMulti gives each of n nodes `active` distinct
// uniformly-random active slots in a period-T schedule. With period scaled
// proportionally (e.g. T=40 with 2 active slots instead of T=20 with 1) the
// duty ratio is unchanged but wake-ups are more frequent in expectation,
// trading schedule granularity against the paper's normalized one-slot
// model. It panics if n <= 0, active <= 0, or active > period.
func AssignUniformMulti(n, period, active int, rng *rngutil.Stream) []*Schedule {
	if n <= 0 {
		panic("schedule: AssignUniformMulti needs n > 0")
	}
	if active <= 0 || active > period {
		panic(fmt.Sprintf("schedule: active %d outside [1,%d]", active, period))
	}
	out := make([]*Schedule, n)
	for i := range out {
		// Partial Fisher-Yates draw of `active` distinct slots.
		perm := rng.Perm(period)
		out[i] = NewMultiSlot(period, perm[:active])
	}
	return out
}

// AssignStaggered spreads n nodes' single active slots evenly over the
// period (node i active at slot i mod period). Useful as a collision-poor
// baseline in ablations.
func AssignStaggered(n, period int) []*Schedule {
	if n <= 0 {
		panic("schedule: AssignStaggered needs n > 0")
	}
	out := make([]*Schedule, n)
	for i := range out {
		out[i] = NewSingleSlot(period, i%period)
	}
	return out
}

// AssignAligned puts every node on the same active slot — the worst case
// for receiver contention, used in ablation experiments.
func AssignAligned(n, period, slot int) []*Schedule {
	if n <= 0 {
		panic("schedule: AssignAligned needs n > 0")
	}
	out := make([]*Schedule, n)
	for i := range out {
		out[i] = NewSingleSlot(period, slot)
	}
	return out
}

// PeriodForDuty returns the integer period T that realizes the requested
// duty ratio with a single active slot, i.e. round(1/duty). It panics for
// duty outside (0, 1].
func PeriodForDuty(duty float64) int {
	if duty <= 0 || duty > 1 {
		panic(fmt.Sprintf("schedule: duty %v outside (0,1]", duty))
	}
	t := int(1/duty + 0.5)
	if t < 1 {
		t = 1
	}
	return t
}

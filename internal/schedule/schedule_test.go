package schedule

import (
	"testing"
	"testing/quick"

	"ldcflood/internal/rngutil"
)

func TestSingleSlotBasics(t *testing.T) {
	s := NewSingleSlot(10, 3)
	if s.Period() != 10 {
		t.Fatalf("Period = %d", s.Period())
	}
	if got := s.DutyRatio(); got != 0.1 {
		t.Fatalf("DutyRatio = %v", got)
	}
	for tt := int64(0); tt < 30; tt++ {
		want := tt%10 == 3
		if s.IsActive(tt) != want {
			t.Fatalf("IsActive(%d) = %v", tt, s.IsActive(tt))
		}
	}
}

func TestNegativeTime(t *testing.T) {
	s := NewSingleSlot(5, 2)
	if !s.IsActive(-3) { // -3 mod 5 = 2
		t.Fatal("IsActive(-3) should be true for slot 2, period 5")
	}
	if s.IsActive(-1) {
		t.Fatal("IsActive(-1) should be false")
	}
}

func TestNewPanics(t *testing.T) {
	cases := []func(){
		func() { NewSingleSlot(0, 0) },
		func() { NewSingleSlot(5, 5) },
		func() { NewSingleSlot(5, -1) },
		func() { NewMultiSlot(5, nil) },
		func() { NewMultiSlot(-2, []int{0}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMultiSlot(t *testing.T) {
	s := NewMultiSlot(8, []int{6, 2, 2}) // duplicate collapsed
	if got := s.DutyRatio(); got != 0.25 {
		t.Fatalf("DutyRatio = %v", got)
	}
	slots := s.ActiveSlots()
	if len(slots) != 2 || slots[0] != 2 || slots[1] != 6 {
		t.Fatalf("ActiveSlots = %v", slots)
	}
}

func TestAlwaysOn(t *testing.T) {
	s := AlwaysOn()
	if s.DutyRatio() != 1 {
		t.Fatalf("DutyRatio = %v", s.DutyRatio())
	}
	for tt := int64(0); tt < 5; tt++ {
		if !s.IsActive(tt) || s.NextActive(tt) != tt {
			t.Fatalf("always-on wrong at %d", tt)
		}
	}
}

func TestNextActive(t *testing.T) {
	s := NewSingleSlot(10, 3)
	cases := []struct{ t, want int64 }{
		{0, 3}, {3, 3}, {4, 13}, {9, 13}, {13, 13}, {14, 23},
	}
	for _, c := range cases {
		if got := s.NextActive(c.t); got != c.want {
			t.Fatalf("NextActive(%d) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestNextActiveMultiSlot(t *testing.T) {
	s := NewMultiSlot(10, []int{2, 7})
	cases := []struct{ t, want int64 }{
		{0, 2}, {2, 2}, {3, 7}, {7, 7}, {8, 12}, {12, 12}, {13, 17},
	}
	for _, c := range cases {
		if got := s.NextActive(c.t); got != c.want {
			t.Fatalf("NextActive(%d) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestNextActiveAfterAndSleepLatency(t *testing.T) {
	s := NewSingleSlot(5, 0)
	if got := s.NextActiveAfter(0); got != 5 {
		t.Fatalf("NextActiveAfter(0) = %d", got)
	}
	if got := s.SleepLatency(1); got != 4 {
		t.Fatalf("SleepLatency(1) = %d", got)
	}
	if got := s.SleepLatency(0); got != 0 {
		t.Fatalf("SleepLatency(0) = %d", got)
	}
}

func TestAssignUniform(t *testing.T) {
	r := rngutil.New(1)
	scheds := AssignUniform(100, 20, r)
	if len(scheds) != 100 {
		t.Fatalf("got %d schedules", len(scheds))
	}
	seen := make(map[int]bool)
	for _, s := range scheds {
		if s.Period() != 20 || len(s.ActiveSlots()) != 1 {
			t.Fatalf("bad schedule %v", s)
		}
		seen[s.ActiveSlots()[0]] = true
	}
	if len(seen) < 15 {
		t.Fatalf("only %d distinct slots across 100 nodes — not uniform", len(seen))
	}
	// Determinism.
	again := AssignUniform(100, 20, rngutil.New(1))
	for i := range scheds {
		if scheds[i].ActiveSlots()[0] != again[i].ActiveSlots()[0] {
			t.Fatal("AssignUniform not deterministic")
		}
	}
}

func TestAssignUniformMulti(t *testing.T) {
	r := rngutil.New(2)
	scheds := AssignUniformMulti(50, 40, 2, r)
	for _, s := range scheds {
		if s.Period() != 40 || len(s.ActiveSlots()) != 2 {
			t.Fatalf("bad schedule %v", s)
		}
		if s.DutyRatio() != 0.05 {
			t.Fatalf("duty = %v", s.DutyRatio())
		}
	}
	// Determinism.
	again := AssignUniformMulti(50, 40, 2, rngutil.New(2))
	for i := range scheds {
		a, b := scheds[i].ActiveSlots(), again[i].ActiveSlots()
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatal("AssignUniformMulti not deterministic")
		}
	}
	// Full-period schedule allowed.
	full := AssignUniformMulti(3, 4, 4, r)
	if full[0].DutyRatio() != 1 {
		t.Fatal("active == period should be always-on")
	}
}

func TestAssignUniformMultiPanics(t *testing.T) {
	r := rngutil.New(1)
	for i, f := range []func(){
		func() { AssignUniformMulti(0, 10, 1, r) },
		func() { AssignUniformMulti(5, 10, 0, r) },
		func() { AssignUniformMulti(5, 10, 11, r) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAssignStaggered(t *testing.T) {
	scheds := AssignStaggered(7, 3)
	for i, s := range scheds {
		if s.ActiveSlots()[0] != i%3 {
			t.Fatalf("node %d active at %d", i, s.ActiveSlots()[0])
		}
	}
}

func TestAssignAligned(t *testing.T) {
	scheds := AssignAligned(5, 10, 4)
	for _, s := range scheds {
		if s.ActiveSlots()[0] != 4 {
			t.Fatal("aligned assignment broke")
		}
	}
}

func TestAssignPanics(t *testing.T) {
	cases := []func(){
		func() { AssignUniform(0, 5, rngutil.New(1)) },
		func() { AssignStaggered(0, 5) },
		func() { AssignAligned(0, 5, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestPeriodForDuty(t *testing.T) {
	cases := []struct {
		duty float64
		want int
	}{
		{1, 1}, {0.5, 2}, {0.2, 5}, {0.1, 10}, {0.05, 20}, {0.02, 50},
	}
	for _, c := range cases {
		if got := PeriodForDuty(c.duty); got != c.want {
			t.Fatalf("PeriodForDuty(%v) = %d, want %d", c.duty, got, c.want)
		}
	}
}

func TestPeriodForDutyPanics(t *testing.T) {
	for _, duty := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("duty %v did not panic", duty)
				}
			}()
			PeriodForDuty(duty)
		}()
	}
}

// Property: NextActive returns an active slot >= t, and nothing active
// exists in between.
func TestQuickNextActiveCorrect(t *testing.T) {
	f := func(seed uint64, tRaw int64) bool {
		r := rngutil.New(seed)
		period := 1 + r.Intn(30)
		nslots := 1 + r.Intn(period)
		slots := make([]int, nslots)
		for i := range slots {
			slots[i] = r.Intn(period)
		}
		s := NewMultiSlot(period, slots)
		tt := tRaw % 1000
		if tt < 0 {
			tt = -tt
		}
		next := s.NextActive(tt)
		if next < tt || !s.IsActive(next) {
			return false
		}
		for x := tt; x < next; x++ {
			if s.IsActive(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: sleep latency is bounded by the period.
func TestQuickSleepLatencyBounded(t *testing.T) {
	f := func(seed uint64, tRaw int64) bool {
		r := rngutil.New(seed)
		period := 1 + r.Intn(50)
		s := NewSingleSlot(period, r.Intn(period))
		tt := tRaw % 10000
		if tt < 0 {
			tt = -tt
		}
		lat := s.SleepLatency(tt)
		return lat >= 0 && lat < int64(period)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkNextActive(b *testing.B) {
	s := NewSingleSlot(100, 42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.NextActive(int64(i))
	}
}

func TestActiveCountBefore(t *testing.T) {
	cases := []*Schedule{
		NewSingleSlot(5, 2),
		NewMultiSlot(7, []int{0, 3, 6}),
		AlwaysOn(),
		NewSingleSlot(1, 0),
	}
	for _, s := range cases {
		// Cross-check the arithmetic form against a brute-force IsActive
		// scan over several periods, including the t=0 and mid-period edges.
		count := int64(0)
		for slot := int64(0); slot <= int64(4*s.Period()+3); slot++ {
			if got := s.ActiveCountBefore(slot); got != count {
				t.Fatalf("%v.ActiveCountBefore(%d) = %d, want %d", s, slot, got, count)
			}
			if s.IsActive(slot) {
				count++
			}
		}
	}
	if got := NewSingleSlot(5, 2).ActiveCountBefore(-3); got != 0 {
		t.Fatalf("ActiveCountBefore(-3) = %d, want 0", got)
	}
}

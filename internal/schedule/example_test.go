package schedule_test

import (
	"fmt"

	"ldcflood/internal/schedule"
)

// The paper's normalized low-duty-cycle model: one active slot per period.
// A sender uses NextActive to find the receiver's wake-up (local
// synchronization) and SleepLatency to see what the wait costs.
func ExampleSchedule() {
	s := schedule.NewSingleSlot(20, 7) // 5% duty, awake at slot 7 of 20
	fmt.Println("duty:", s.DutyRatio())
	fmt.Println("awake at 7:", s.IsActive(7))
	fmt.Println("next wake after 10:", s.NextActive(10))
	fmt.Println("sleep latency at 10:", s.SleepLatency(10))
	// Output:
	// duty: 0.05
	// awake at 7: true
	// next wake after 10: 27
	// sleep latency at 10: 17
}

// PeriodForDuty converts a target duty ratio into the single-active-slot
// period realizing it.
func ExamplePeriodForDuty() {
	fmt.Println(schedule.PeriodForDuty(0.05))
	fmt.Println(schedule.PeriodForDuty(0.02))
	// Output:
	// 20
	// 50
}

package sim

// Parallel intent planning for the sharded path. Profiling the sharded
// engine shows the serial Protocol.Intents call dominating the slot
// (55%+ of runtime for the flood protocols): per awake receiver it scans
// a neighbor row, probes packet bitsets, and draws contention randomness
// from the shared sequential ProtoRNG — work that grows with the awake
// bucket while phases C/E shrink. Amdahl then caps any worker speedup
// near 1 no matter how parallel the decision phases are.
//
// ShardPlanner splits that work the same way the engine split the loss
// draws: a parallel, per-receiver candidate scan using (slot, node)-keyed
// streams, followed by a cheap serial selection pass for the cross-
// receiver contention state (a sender serves one receiver per slot). A
// protocol that implements it keeps its Workers == 0 behavior bit-for-bit
// (the serial path never calls the planner); under Workers >= 1 its
// results remain identical across every worker count but legitimately
// differ from the serial stream — exactly the existing sharded contract,
// now extended to the protocol's own draws.
//
// Concurrency contract for PlanReceiver: it runs on pool workers, so it
// must only read the World and protocol state and append to the provided
// buffer — no protocol-owned scratch, no ProtoRNG. All randomness must
// come from slot-keyed derivations of the provided stream (by convention
// SubValue2(node, tag) / SubValue2(receiver, sender)), so a receiver's
// candidates are a pure function of (seed, slot, pre-slot world state).
// SelectIntents runs serially and may use protocol scratch freely.

import (
	"fmt"

	"ldcflood/internal/rngutil"
)

// PacketFCFS marks a planned candidate (or emitted intent) whose concrete
// packet is the sender's oldest packet the receiver still needs. The
// engine resolves it with a parallel OldestNeeded pass after selection,
// keeping the bitset scans off the serial spine. Protocols whose packet
// choice feeds the selection logic itself (OF's delay comparison) resolve
// packets at plan time instead and never use the sentinel.
const PacketFCFS = -1

// protoStreamKey keys the slot's protocol-planning stream under the slot
// stream. Engine decision phases key receivers at node*2 and overhearers
// at node*2+1; this constant must stay clear of both — and, because
// Stream.SubValue's effective keyspace is 63 bits, distinct from every
// node key modulo 2^63. 2^62 satisfies both for any n < 2^61.
const protoStreamKey = 1 << 62

// Candidate is one prospective sender produced by PlanReceiver: the
// neighbor Node would send Packet (or PacketFCFS) with link quality PRR.
// U carries the candidate's pre-drawn uniform variate and Flags any
// protocol-private bits (a deferred marker, a tree-parent marker), so the
// serial selection pass needs no randomness and no graph access.
type Candidate struct {
	Node   int32
	Packet int32
	Flags  uint8
	PRR    float64
	U      float64
}

// ShardPlanner is the optional Protocol extension that moves the
// per-receiver intent scan onto the worker pool. See the file comment for
// the exact split and the concurrency contract.
type ShardPlanner interface {
	Protocol

	// PlanReceiver appends awake receiver r's candidate senders to buf and
	// returns it. Runs concurrently across receivers; read-only except buf.
	PlanReceiver(w *World, r int, slot *rngutil.Stream, buf []Candidate) []Candidate

	// SelectIntents runs the serial cross-receiver selection over the
	// slot's plan, emitting each chosen transmission with its stashed link
	// PRR. Receivers appear in ascending node order, candidates in the
	// order PlanReceiver produced them. Emissions must be grouped by
	// receiver in that same ascending order — finish one receiver's
	// intents before emitting the next's (iterating the plan in order and
	// emitting inside the loop satisfies this); the engine's admission
	// stage relies on it and rejects out-of-order emission.
	SelectIntents(w *World, plan *SlotPlan, emit func(in Intent, prr float64))
}

// SlotPlan is one slot's planned candidates: the receivers that admitted
// at least one candidate, ascending, with their candidate lists.
type SlotPlan struct {
	recvs []int32
	cands [][]Candidate
}

// Len returns the number of receivers with candidates.
func (p *SlotPlan) Len() int { return len(p.recvs) }

// Receiver returns the i-th receiver's node id.
func (p *SlotPlan) Receiver(i int) int { return int(p.recvs[i]) }

// Candidates returns the i-th receiver's candidate list.
func (p *SlotPlan) Candidates(i int) []Candidate { return p.cands[i] }

// planArena is one worker's candidate storage, padded so neighboring
// workers' slice-header updates never share a cache line. store backs the
// published rxPlan slices and is reset (not freed) every slot; scratch is
// the PlanReceiver append buffer. A store realloc mid-slot leaves earlier
// published slices on the old backing — stale capacity, valid data — and
// the arena reaches a stable high-water size within a few slots.
type planArena struct {
	store   []Candidate
	scratch []Candidate
	_       [16]byte
}

// idxChunk is one plan-phase chunk's list of awake-list indices that
// produced at least one candidate, padded against false sharing. The
// serial compaction walks these lists in chunk order — O(planned
// receivers) — instead of rescanning the whole awake bucket.
type idxChunk struct {
	idx []int32
	_   [40]byte
}

// planIntents is the sharded phase B for planner protocols: parallel
// per-receiver candidate planning into per-worker arenas, serial
// selection, a parallel FCFS packet-resolution pass, then the shared
// serial admission (validation, one-tx-per-sender, syncRNG draws,
// receiver grouping).
func (e *engine) planIntents(t int64) error {
	w := e.w
	e.protoSlot = e.slotStream.SubValue(protoStreamKey)
	list := w.awakeList
	if cap(e.rxPlan) < len(list) {
		e.rxPlan = make([][]Candidate, len(list))
	}
	e.rxPlan = e.rxPlan[:len(list)]
	for i := range e.planArenas {
		e.planArenas[i].store = e.planArenas[i].store[:0]
	}
	_, nchunks := e.pool.plan(len(list), planMinChunk)
	for len(e.planIdx) < nchunks {
		e.planIdx = append(e.planIdx, idxChunk{})
	}
	planIdx := e.planIdx[:nchunks]
	e.pool.runShards(len(list), planMinChunk, func(worker, c, lo, hi int) {
		a := &e.planArenas[worker]
		ic := planIdx[c].idx[:0]
		for k := lo; k < hi; k++ {
			cands := e.planner.PlanReceiver(w, list[k], &e.protoSlot, a.scratch[:0])
			a.scratch = cands
			if len(cands) == 0 {
				continue
			}
			start := len(a.store)
			a.store = append(a.store, cands...)
			e.rxPlan[k] = a.store[start:len(a.store):len(a.store)]
			ic = append(ic, int32(k))
		}
		planIdx[c].idx = ic
	})

	// Serial compaction: receivers with candidates, ascending — chunk
	// index lists in chunk order enumerate exactly the awake-list indices
	// that planned something, so this walk is O(planned receivers), not
	// O(awake). Entries of rxPlan outside those lists are stale garbage
	// from earlier slots and are never read.
	e.plan.recvs = e.plan.recvs[:0]
	e.plan.cands = e.plan.cands[:0]
	for ci := range planIdx {
		for _, k := range planIdx[ci].idx {
			c := e.rxPlan[k]
			e.plan.recvs = append(e.plan.recvs, int32(list[k]))
			e.plan.cands = append(e.plan.cands, c)
			e.statPlanCands += int64(len(c))
		}
	}

	e.planned = e.planned[:0]
	e.planner.SelectIntents(w, &e.plan, e.emitFn)

	// Resolve FCFS sentinels in parallel: the world is frozen between
	// planning and phase D, so OldestNeeded here equals the serial path's
	// at-emission scan.
	e.pool.runShards(len(e.planned), fcfsMinChunk, func(_, _, lo, hi int) {
		for i := lo; i < hi; i++ {
			if e.planned[i].in.Packet == PacketFCFS {
				e.planned[i].in.Packet = w.OldestNeeded(e.planned[i].in.From, e.planned[i].in.To)
			}
		}
	})

	// Admission into the flat receiver-group arena. SelectIntents emits
	// receiver groups contiguously in ascending receiver order (see the
	// ShardPlanner contract), so survivors append sequentially and each
	// new receiver opens a group — no per-receiver bucket lookups and no
	// sort.
	e.rxList = e.rxList[:0]
	e.rxFlat = e.rxFlat[:0]
	e.rxOff = e.rxOff[:0]
	lastTo := -1
	for i := range e.planned {
		in := e.planned[i].in
		prr, ok, err := e.vetIntent(in, e.planned[i].prr, t)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if in.To != lastTo {
			if in.To < lastTo {
				return fmt.Errorf("sim: planner %s emitted receiver %d after %d — SelectIntents must emit receiver groups in ascending order",
					e.cfg.Protocol.Name(), in.To, lastTo)
			}
			e.rxList = append(e.rxList, in.To)
			e.rxOff = append(e.rxOff, int32(len(e.rxFlat)))
			lastTo = in.To
		}
		e.rxFlat = append(e.rxFlat, groupedTx{in: in, prr: prr})
	}
	e.rxOff = append(e.rxOff, int32(len(e.rxFlat)))
	return nil
}

package sim

// Test hooks: the scale thresholds are production constants chosen for
// 10k–100k-node graphs, far above what unit tests can afford to construct.
// These helpers pin a threshold for one test body so the large-graph code
// paths (CSR link lookups, sparse compact plans, tiny worker shards) run on
// small topologies and can be certified byte-identical to the dense paths.

// setDenseLimit pins the dense-PRR-matrix cutoff and returns a restore
// function.
func setDenseLimit(n int) func() {
	old := maxDensePRRNodes
	maxDensePRRNodes = n
	return func() { maxDensePRRNodes = old }
}

// setCompactSparse pins the compact plan's dense/sparse adjacency cutoff
// and returns a restore function.
func setCompactSparse(n int) func() {
	old := compactSparseNodes
	compactSparseNodes = n
	return func() { compactSparseNodes = old }
}

// setMinChunk pins the smallest shard handed to a pool worker and returns
// a restore function.
func setMinChunk(n int) func() {
	old := debugMinChunk
	debugMinChunk = n
	return func() { debugMinChunk = old }
}

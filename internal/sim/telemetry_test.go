package sim

import (
	"reflect"
	"testing"

	"ldcflood/internal/fault"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/telemetry"
	"ldcflood/internal/topology"
)

// telTestConfig builds a small faulted run: a 12-node line with a mid-run
// crash/reboot and a bursty link chain, so every counter family moves.
func telTestConfig(compact bool) Config {
	g := topology.Line(12, 0.9)
	scheds := schedule.AssignUniform(g.N(), 10, rngutil.New(3).SubName("schedule"))
	return Config{
		Graph:     g,
		Schedules: scheds,
		Protocol: &FuncProtocol{
			ProtocolName: "tel-test",
			IntentsFunc: func(w *World) []Intent {
				var out []Intent
				for _, r := range w.AwakeList() {
					for _, l := range w.Graph.Neighbors(r) {
						if p := w.OldestNeeded(l.To, r); p >= 0 {
							out = append(out, Intent{From: l.To, To: r, Packet: p})
						}
					}
				}
				return out
			},
			Collisions:  true,
			Overhearing: true,
		},
		M:        4,
		Coverage: 1,
		Seed:     7,
		MaxSlots: 50000,
		Faults: &fault.Schedule{
			Links:   []fault.LinkRule{{PGB: 0.05, PBG: 0.2, BadScale: 0.3}},
			Crashes: []fault.Crash{{Node: 5, At: 40, RebootAt: 200}},
		},
		CompactTime: compact,
	}
}

// TestTelemetryDoesNotChangeResults: attaching a registry must be
// invisible to the simulation on both execution paths.
func TestTelemetryDoesNotChangeResults(t *testing.T) {
	for _, compact := range []bool{false, true} {
		cfg := telTestConfig(compact)
		plain, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Telemetry = telemetry.New()
		instrumented, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, instrumented) {
			t.Fatalf("compact=%v: attaching telemetry changed the result\nplain %+v\ninstrumented %+v",
				compact, plain, instrumented)
		}
	}
}

// TestTelemetryCountersMatchResult: after a run, the registry must agree
// with the Result's own accounting on both paths — including the
// visited/skipped split that only the compact path exercises.
func TestTelemetryCountersMatchResult(t *testing.T) {
	for _, compact := range []bool{false, true} {
		reg := telemetry.New()
		cfg := telTestConfig(compact)
		cfg.Telemetry = reg
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		snap := reg.Snapshot()
		want := map[string]int64{
			"sim.runs.started":      1,
			"sim.runs.completed":    1,
			"sim.tx.attempts":       int64(res.Transmissions),
			"sim.tx.success":        int64(res.Transmissions - res.Failures()),
			"sim.tx.loss":           int64(res.LossFailures),
			"sim.tx.collision":      int64(res.CollisionFailures),
			"sim.tx.busy":           int64(res.BusyFailures),
			"sim.tx.sync_miss":      int64(res.SyncFailures),
			"sim.tx.jammed":         int64(res.JamFailures),
			"sim.tx.captured":       int64(res.Captures),
			"sim.overheard":         int64(res.Overheard),
			"sim.packets.injected":  int64(res.M),
			"sim.packets.covered":   int64(res.M),
			"fault.crashes":         int64(res.Crashes),
			"fault.reboots":         int64(res.Reboots),
			"fault.packets_dropped": int64(res.CrashDropped),
		}
		for k, v := range want {
			if snap[k] != v {
				t.Errorf("compact=%v: %s = %d, want %d", compact, k, snap[k], v)
			}
		}
		if res.Crashes != 1 || res.Reboots != 1 {
			t.Fatalf("compact=%v: fault scenario did not fire (crashes=%d reboots=%d)",
				compact, res.Crashes, res.Reboots)
		}
		if snap["fault.chain_flips"] <= 0 {
			t.Errorf("compact=%v: fault.chain_flips = %d, want > 0", compact, snap["fault.chain_flips"])
		}
		// Visited + skipped must cover the whole horizon exactly.
		if got := snap["sim.slots.visited"] + snap["sim.slots.skipped"]; got != res.TotalSlots {
			t.Errorf("compact=%v: visited(%d) + skipped(%d) = %d, want TotalSlots %d",
				compact, snap["sim.slots.visited"], snap["sim.slots.skipped"], got, res.TotalSlots)
		}
		// Dynamic fault schedules force the reference path, so both runs
		// must report the slot path and visit every slot.
		if snap["sim.path.compact"] != 0 || snap["sim.path.slots"] != 1 {
			t.Errorf("compact=%v: path counters (compact=%d slots=%d), want the dynamic-fault fallback",
				compact, snap["sim.path.compact"], snap["sim.path.slots"])
		}
		if snap["sim.slots.skipped"] != 0 {
			t.Errorf("compact=%v: slot path skipped %d slots", compact, snap["sim.slots.skipped"])
		}
	}
}

// TestTelemetryCompactPathCounters: a clean compact run must report the
// fast path as taken and a non-trivial skipped-slot count at low duty.
func TestTelemetryCompactPathCounters(t *testing.T) {
	reg := telemetry.New()
	cfg := telTestConfig(true)
	cfg.Faults = nil // static world: the fast path applies
	cfg.Telemetry = reg
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap["sim.path.compact"] != 1 || snap["sim.path.slots"] != 0 {
		t.Fatalf("path counters (compact=%d slots=%d), want compact hit",
			snap["sim.path.compact"], snap["sim.path.slots"])
	}
	if snap["sim.slots.skipped"] == 0 {
		t.Fatal("compact run at 10% duty skipped no slots")
	}
	if got := snap["sim.slots.visited"] + snap["sim.slots.skipped"]; got != res.TotalSlots {
		t.Fatalf("visited + skipped = %d, want %d", got, res.TotalSlots)
	}
	// The same run on the reference path must agree on every drained
	// accumulator (only the visited/skipped split may differ).
	reg2 := telemetry.New()
	cfg2 := cfg
	cfg2.CompactTime = false
	cfg2.Telemetry = reg2
	if _, err := Run(cfg2); err != nil {
		t.Fatal(err)
	}
	snap2 := reg2.Snapshot()
	for _, k := range []string{
		"sim.tx.attempts", "sim.tx.success", "sim.tx.loss", "sim.tx.collision",
		"sim.tx.busy", "sim.tx.sync_miss", "sim.tx.jammed", "sim.overheard",
		"sim.packets.injected", "sim.packets.covered",
	} {
		if snap[k] != snap2[k] {
			t.Errorf("%s: compact %d vs reference %d", k, snap[k], snap2[k])
		}
	}
	if snap2["sim.slots.skipped"] != 0 {
		t.Errorf("reference path skipped %d slots", snap2["sim.slots.skipped"])
	}
	if snap2["sim.slots.visited"] != res.TotalSlots {
		t.Errorf("reference path visited %d slots, want %d", snap2["sim.slots.visited"], res.TotalSlots)
	}
}

// TestTelemetryShardedCounters certifies the sharded-path instrument set:
// attaching a registry to a Workers>0 run is invisible to results, the
// path/worker gauges report the mode, the pool counters drain the claim
// accounting exactly, and the planner/merge counters are deterministic —
// identical across worker counts and across repeated runs.
func TestTelemetryShardedCounters(t *testing.T) {
	// The 12-node config never outgrows the per-phase chunk floors, so pin
	// the floor at one item to force real multi-chunk batches through the
	// pool (the same hook the stress and fuzz suites use).
	restore := setMinChunk(1)
	defer restore()
	cfg := telTestConfig(false)
	cfg.Workers = 4

	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	cfg.Telemetry = reg
	instrumented, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, instrumented) {
		t.Fatal("attaching telemetry changed a sharded run's result")
	}

	snap := reg.Snapshot()
	if got := snap["sim.path.sharded"]; got != 1 {
		t.Errorf("sim.path.sharded = %d, want 1", got)
	}
	if got := snap["sim.workers"]; got != 4 {
		t.Errorf("sim.workers = %d, want 4", got)
	}
	for _, name := range []string{"sim.shard.batches", "sim.shard.chunks", "sim.shard.items", "sim.shard.merge.receivers"} {
		if snap[name] <= 0 {
			t.Errorf("%s = %d, want > 0", name, snap[name])
		}
	}
	if snap["sim.shard.chunks"] < snap["sim.shard.batches"] {
		t.Error("fewer chunks than batches: claim accounting is inconsistent")
	}
	// FuncProtocol has no planner, so phase B plans nothing.
	if got := snap["sim.shard.planner.candidates"]; got != 0 {
		t.Errorf("sim.shard.planner.candidates = %d, want 0 for a non-planner protocol", got)
	}

	// The merge counters tally deterministic per-slot quantities: they must
	// not move with the worker count (the batch/chunk split legitimately
	// does).
	reg2 := telemetry.New()
	cfg2 := telTestConfig(false)
	cfg2.Workers = 2
	cfg2.Telemetry = reg2
	if _, err := Run(cfg2); err != nil {
		t.Fatal(err)
	}
	snap2 := reg2.Snapshot()
	for _, name := range []string{"sim.shard.merge.receivers", "sim.shard.merge.overhear_cands", "sim.shard.items"} {
		if snap[name] != snap2[name] {
			t.Errorf("%s moved with worker count: %d at w=4, %d at w=2",
				name, snap[name], snap2[name])
		}
	}

	// A serial run must register none of the sharded instruments.
	reg3 := telemetry.New()
	cfg3 := telTestConfig(false)
	cfg3.Telemetry = reg3
	if _, err := Run(cfg3); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg3.Snapshot()["sim.shard.batches"]; ok {
		t.Error("serial run registered sharded instruments")
	}
}

// TestTelemetryPlannerCounters runs a ShardPlanner protocol and checks the
// planner-phase instruments move and stay worker-count-invariant.
func TestTelemetryPlannerCounters(t *testing.T) {
	run := func(workers int) (map[string]int64, *Result) {
		reg := telemetry.New()
		g := lineGraph(16, 0.9)
		res, err := Run(Config{
			Graph:     g,
			Schedules: schedule.AssignStaggered(16, 4),
			Protocol:  &greedyPlanner{},
			M:         3,
			Coverage:  1,
			Seed:      11,
			MaxSlots:  50000,
			Workers:   workers,
			Telemetry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot(), res
	}
	snap4, res4 := run(4)
	if got := snap4["sim.shard.planner.candidates"]; got <= 0 {
		t.Errorf("sim.shard.planner.candidates = %d, want > 0 for a planner protocol", got)
	}
	if got, want := snap4["sim.shard.merge.receivers"], int64(res4.Transmissions); got != want {
		t.Errorf("sim.shard.merge.receivers = %d, want %d (every admitted transmission)", got, want)
	}
	snap1, res1 := run(1)
	if !reflect.DeepEqual(res1, res4) {
		t.Fatal("worker count changed the planner run's result")
	}
	for _, name := range []string{"sim.shard.planner.candidates", "sim.shard.merge.receivers", "sim.shard.merge.overhear_cands"} {
		if snap1[name] != snap4[name] {
			t.Errorf("%s moved with worker count: %d at w=1, %d at w=4",
				name, snap1[name], snap4[name])
		}
	}
}

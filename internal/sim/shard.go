package sim

// Sharded slot resolution (Config.Workers >= 1): the large-topology
// execution mode. The serial engine draws every delivery decision from one
// shared loss stream in slot order, which makes the decisions inherently
// sequential — the position of a draw depends on the outcome of every draw
// before it. The sharded discipline re-keys that randomness: each receiver
// (and each potential overhearer) derives a private stream from (run seed,
// slot, node) and consumes only it, so the per-node decisions are pure
// functions of pre-slot state and can be evaluated concurrently by a
// bounded worker pool, then merged in a fixed ascending-node order. Results
// are bit-for-bit identical for every worker count; they differ from the
// Workers == 0 stream by construction (the shared-stream draw order cannot
// be reproduced shard-locally).
//
// A slot resolves in phases:
//
//	A (serial)   faults, injection, chain Sync, awake set — in the caller.
//	B            protocol intents. Protocols implementing ShardPlanner
//	             (see planner.go) plan per-receiver candidates in parallel
//	             and select serially; others run their serial Intents.
//	             Validation and the syncRNG draws stay a shared sequential
//	             stream either way.
//	C (parallel) per-receiver delivery decisions into rxRec.
//	D (serial)   merge rxRec in ascending receiver order: counters,
//	             deliveries, Observer callbacks.
//	E (parallel) overhearing: workers scan the successful senders'
//	             concatenated neighbor rows, filter to awake, silent,
//	             untargeted nodes, claim each survivor with an atomic
//	             compare-and-swap (so a node adjacent to two successes is
//	             decided exactly once), and decide the claimed nodes into
//	             per-chunk hit lists.
//	F (serial)   concatenate the hit lists and sort the hits into ascending
//	             node order — O(delivered·log delivered), not O(row entries
//	             scanned) — then shared coverage accounting and scratch
//	             cleanup.
//
// Pool mechanics: workers are persistent goroutines; a batch publishes an
// atomic claim counter over fixed-size chunks and every worker (plus the
// submitting goroutine) steals the next unclaimed chunk until the batch
// drains. Chunk size is count/(workers·chunksPerWorker) floored at a
// per-phase minimum keyed to the per-item cost — for the plan and overhear
// phases the count is exactly the slot's awake-bucket density, so dense
// slots get many small chunks (fine-grained stealing) and sparse slots
// collapse to a single inline call with no synchronization at all. Chunk
// geometry never affects results — decisions are keyed per node, and the
// only cross-chunk state (overhear hit lists) is merged and sorted into
// ascending node order before any world mutation.

import (
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ldcflood/internal/schedule"
)

// rxKind classifies a receiver's slot outcome, mirroring the serial
// engine's per-receiver switch.
type rxKind uint8

const (
	rxJam rxKind = iota
	rxBusy
	rxCollision // collision with no capture
	rxCapture   // capture effect salvaged deliverIdx
	rxSeq       // sequential attempts; deliverIdx is the first success
)

// rxRecord is one receiver's delivery decision, produced by a worker in
// phase C and applied serially in phase D.
type rxRecord struct {
	kind rxKind
	// deliverIdx indexes the delivered intent within the receiver's intent
	// group, or -1 when nothing was decoded.
	deliverIdx int32
}

// ohHit is one overhearing delivery: node decoded the success at index
// succ. Produced into per-chunk lists, concatenated and sorted by node id
// before application, which reproduces the serial ascending delivery
// order regardless of which chunk claimed the node.
type ohHit struct {
	node int32
	succ int32
}

// ohChunk is one chunk's overhear output, padded to a cache line so
// workers appending to neighboring chunks never share one: the hits, and
// the nodes this chunk claimed via ohSeen (walked to reset the flags and
// tallied into the candidate telemetry).
type ohChunk struct {
	hits    []ohHit
	claimed []int32
	_       [16]byte
}

// Per-phase chunk-size floors. A chunk must amortize one atomic claim
// (~tens of ns), so cheap per-item phases take coarser floors than the
// row-scanning ones. The ceiling count/(workers·chunksPerWorker) dominates
// on dense slots; these floors only matter near the single-chunk cutoff.
const (
	chunksPerWorker = 32
	planMinChunk    = 2 // PlanReceiver: neighbor-row scan + keyed draws
	rxMinChunk      = 4 // decideReceiver: a few draws per receiver
	ohMinChunk      = 4 // decideOverhear: per-candidate filter + draws
	fcfsMinChunk    = 8 // OldestNeeded bitset scan
)

// debugMinChunk caps every phase's chunk-size floor. The default is above
// all per-phase floors and therefore inert; the adversarial stress and
// fuzz suites lower it to force one-item chunks and maximal interleaving.
// Chunk geometry never affects results — decisions are keyed per node.
var debugMinChunk = 64

// ShardStats is the sharded path's opt-in performance instrumentation,
// filled through Config.ShardStats. Attaching it switches the pool into
// a single-threaded profiling mode: every batch keeps the chunk geometry
// of the configured worker count, but its chunks execute sequentially on
// the submitting goroutine, each timed individually. Results stay
// bit-for-bit identical to any normal run (chunk geometry and execution
// order never affect outcomes — decisions are keyed per node), but wall
// time resembles a one-worker run. The point is measurement honesty:
// per-chunk costs are observed contention-free, the way Cilk's work/span
// profiler measures a DAG on one worker to predict its W-worker
// makespan. Timing pooled execution directly would fold scheduler noise
// — and, on core-starved machines, timeslicing between workers — into
// every chunk.
//
// WorkNS accumulates the busy time of every chunk of every batch.
// SpanNS accumulates the modeled per-batch makespan: an exact replay of
// the pool's claim-order list schedule over the measured chunk
// durations on W virtual worker clocks (see profileBatch); single-chunk
// batches contribute their full duration (one chunk cannot
// parallelize).
// BatchWallNS equals the wall time spent inside batches (sequential
// execution makes it the same as WorkNS), so run wall - BatchWallNS is
// the serial residue outside the batches. cmd/engbench derives its
// workers_speedup metric from exactly these fields; see
// cmd/engbench/scale.go.
type ShardStats struct {
	Batches     int64 // batches executed, single-chunk calls included
	Chunks      int64 // chunks across all batches
	Items       int64 // items across all batches
	WorkNS      int64 // summed per-chunk busy time, measured contention-free
	SpanNS      int64 // summed modeled per-batch makespan (schedule replay)
	BatchWallNS int64 // wall time inside batches (= WorkNS under profiling)
}

// shardPool is a bounded set of persistent workers draining atomically
// claimed chunks of index ranges. The submitting goroutine participates in
// every batch, so a pool of w workers runs w-1 goroutines.
type shardPool struct {
	workers int
	wake    []chan struct{} // one buffered slot per spawned worker
	stop    chan struct{}

	// Current batch, written by the submitter before the wake sends and
	// read by workers after the receives (the channel orders the accesses).
	fn    func(worker, chunk, lo, hi int)
	count int
	chunk int
	next  atomic.Int64
	wg    sync.WaitGroup

	// stats is non-nil when profiling mode is on (see ShardStats); batches
	// then run sequentially on the submitter and never reach the workers.
	// clocks is the profiling mode's per-worker virtual time, reused
	// across batches to replay each batch's claim-order list schedule.
	stats  *ShardStats
	clocks []int64

	// Deterministic batch accounting, drained into telemetry by the
	// engine. Submitter-only writes.
	batches, chunks, items int64
}

func newShardPool(workers int, stats *ShardStats) *shardPool {
	p := &shardPool{workers: workers, stop: make(chan struct{}), stats: stats}
	p.wake = make([]chan struct{}, workers-1)
	for i := range p.wake {
		p.wake[i] = make(chan struct{}, 1)
		go p.work(i + 1)
	}
	return p
}

func (p *shardPool) work(id int) {
	for {
		select {
		case <-p.wake[id-1]:
		case <-p.stop:
			return
		}
		p.drain(id)
		p.wg.Done()
	}
}

func (p *shardPool) close() { close(p.stop) }

// drain claims and runs chunks until the batch is exhausted. Chunk indices
// are lo/chunk, so fn can address per-chunk output slots without any
// shared bookkeeping.
func (p *shardPool) drain(worker int) {
	count, chunk := p.count, p.chunk
	for {
		lo := int(p.next.Add(int64(chunk))) - chunk
		if lo >= count {
			return
		}
		hi := min(lo+chunk, count)
		p.fn(worker, lo/chunk, lo, hi)
	}
}

// plan returns the chunk geometry runShards will use for a batch of count
// items with the given per-phase floor: size count/(workers·chunksPerWorker)
// rounded up, floored at min(minChunk, debugMinChunk). Exposed separately
// so callers can size per-chunk output arenas before submitting.
func (p *shardPool) plan(count, minChunk int) (chunk, nchunks int) {
	if minChunk > debugMinChunk {
		minChunk = debugMinChunk
	}
	if minChunk < 1 {
		minChunk = 1
	}
	chunk = (count + p.workers*chunksPerWorker - 1) / (p.workers * chunksPerWorker)
	if chunk < minChunk {
		chunk = minChunk
	}
	nchunks = (count + chunk - 1) / chunk
	return chunk, nchunks
}

// runShards partitions [0, count) into chunks and runs fn over them on
// every pool member concurrently, returning when all are processed. fn
// must write only to indices in its range (or to the chunk slot named by
// its chunk argument). Single-chunk batches run inline on the submitter
// with zero synchronization.
func (p *shardPool) runShards(count, minChunk int, fn func(worker, chunk, lo, hi int)) {
	if count <= 0 {
		return
	}
	chunk, nchunks := p.plan(count, minChunk)
	if p.stats != nil {
		p.profileBatch(fn, count, chunk, nchunks)
		return
	}
	if p.workers == 1 || nchunks == 1 {
		fn(0, 0, 0, count)
		return
	}
	p.fn, p.count, p.chunk = fn, count, chunk
	p.next.Store(0)
	p.batches++
	p.chunks += int64(nchunks)
	p.items += int64(count)
	p.wg.Add(len(p.wake))
	for _, c := range p.wake {
		c <- struct{}{}
	}
	p.drain(0)
	p.wg.Wait()
	p.fn = nil
}

// profileBatch is the ShardStats execution mode: the batch keeps the
// configured worker count's chunk geometry but runs its chunks
// sequentially on the submitter, timing each one contention-free. All
// chunks report worker 0 — per-worker arenas then share one slot, which
// changes where results are staged but not what they are. The telemetry
// claim counters mirror the normal path: only batches the pool would
// have fanned out are counted as pooled work.
//
// The batch's SpanNS contribution is an exact replay of the pool's
// schedule over the measured durations: chunks are claimed off an atomic
// counter in index order, each by whichever worker frees up first, so
// assigning chunk durations to the minimum of W virtual worker clocks
// reproduces the claim-order list schedule; the makespan is the largest
// clock. This is tighter than the closed-form Graham bound
// work/W + (1-1/W)·max-chunk, which charges the worst chunk's full
// imbalance to every batch — with heavy-tailed chunk durations (a dense
// neighbor row among early-outs) the bound overstates real makespans by
// whole factors, while the replay converges to work/W plus the true
// trailing-chunk tail.
func (p *shardPool) profileBatch(fn func(worker, chunk, lo, hi int), count, chunk, nchunks int) {
	if p.workers > 1 && nchunks > 1 {
		p.batches++
		p.chunks += int64(nchunks)
		p.items += int64(count)
	}
	clocks := p.clocks
	if clocks == nil {
		clocks = make([]int64, p.workers)
		p.clocks = clocks
	}
	for i := range clocks {
		clocks[i] = 0
	}
	// Clock reads are chained — each chunk's end stamp is the next one's
	// start — so the batch pays nchunks+1 reads, not 2·nchunks. On dense
	// slots chunks are a few hundred ns, and the unchained version's
	// extra read per chunk showed up as several percent of the whole run
	// attributed to the serial spine.
	var work int64
	prev := time.Now()
	for c, lo := 0, 0; lo < count; c, lo = c+1, lo+chunk {
		hi := min(lo+chunk, count)
		fn(0, c, lo, hi)
		now := time.Now()
		d := int64(now.Sub(prev))
		prev = now
		work += d
		early := 0
		for i := 1; i < len(clocks); i++ {
			if clocks[i] < clocks[early] {
				early = i
			}
		}
		clocks[early] += d
	}
	span := clocks[0]
	for _, c := range clocks[1:] {
		if c > span {
			span = c
		}
	}
	s := p.stats
	s.Batches++
	s.Chunks += int64(nchunks)
	s.Items += int64(count)
	s.WorkNS += work
	s.SpanNS += span
	s.BatchWallNS += work
}

// awakePlan precomputes per-offset awake buckets over the schedule
// hyperperiod, so the sharded reference path recomputes the awake set in
// O(awake) per slot instead of an O(n) scan — at 100k nodes and 1% duty
// that is the difference between touching 100k and ~1k schedule entries
// per slot. Unlike compactPlan it carries no adjacency structure, so it
// stays O(n + L·awake) in memory at any scale.
type awakePlan struct {
	L       int64
	buckets [][]int32
}

// newAwakePlan builds the offset buckets, or returns nil when the
// hyperperiod exceeds compactMaxHyperperiod (the caller then scans).
func newAwakePlan(scheds []*schedule.Schedule) *awakePlan {
	L := 1
	for _, s := range scheds {
		L = lcm(L, s.Period())
		if L > compactMaxHyperperiod {
			return nil
		}
	}
	plan := &awakePlan{L: int64(L), buckets: make([][]int32, L)}
	counts := make([]int32, L)
	total := 0
	for _, s := range scheds {
		total += len(s.ActiveSlots()) * (L / s.Period())
		for _, off := range s.ActiveSlots() {
			for base := off; base < L; base += s.Period() {
				counts[base]++
			}
		}
	}
	backing := make([]int32, total)
	pos := 0
	for o := range plan.buckets {
		c := int(counts[o])
		if c == 0 {
			continue
		}
		plan.buckets[o] = backing[pos : pos : pos+c]
		pos += c
	}
	// Ascending node order per bucket, matching the serial scan's
	// AwakeList order.
	for i, s := range scheds {
		for _, off := range s.ActiveSlots() {
			for base := off; base < L; base += s.Period() {
				plan.buckets[base] = append(plan.buckets[base], int32(i))
			}
		}
	}
	return plan
}

// resolveSlotSharded is the sharded counterpart of resolveSlot. See the
// package comment at the top of this file for the phase structure.
func (e *engine) resolveSlotSharded(t int64) error {
	w, res, cfg := e.w, e.res, &e.cfg

	// Phase A tail: advance every fault chain to t now, serially, so the
	// workers' effPRR queries below are pure reads.
	if e.inj != nil {
		e.inj.Sync(t)
	}
	// The slot's stream subtree root. Written here (serially), only read
	// by workers.
	e.slotStream = e.shardRoot.SubValue(uint64(t))

	// Phase B.
	if e.planner != nil {
		if err := e.planIntents(t); err != nil {
			return err
		}
	} else if err := e.collectIntents(t); err != nil {
		return err
	}
	e.statMergeRecv += int64(len(e.rxList))

	// Phase C: every targeted receiver decides its outcome from its
	// private (seed, slot, receiver) stream.
	if cap(e.rxRec) < len(e.rxList) {
		e.rxRec = make([]rxRecord, len(e.rxList))
	}
	e.rxRec = e.rxRec[:len(e.rxList)]
	e.pool.runShards(len(e.rxList), rxMinChunk, func(_, _, lo, hi int) {
		for i := lo; i < hi; i++ {
			e.decideReceiver(i, t)
		}
	})

	// Phase D: apply the records in ascending receiver order — the same
	// order the serial path visits receivers — so counters, deliveries and
	// Observer callbacks are deterministic.
	e.successes = e.successes[:0]
	for i, r := range e.rxList {
		txs := e.groupTxs(i)
		res.Transmissions += len(txs)
		for _, tx := range txs {
			res.TxPerNode[tx.in.From]++
		}
		e.targeted[r] = true
		rec := e.rxRec[i]
		switch rec.kind {
		case rxJam:
			res.JamFailures += len(txs)
			if cfg.Observer != nil {
				for _, tx := range txs {
					cfg.Observer.OnTransmit(t, tx.in.From, r, tx.in.Packet, TxJammed)
				}
			}
		case rxBusy:
			res.BusyFailures += len(txs)
			if cfg.Observer != nil {
				for _, tx := range txs {
					cfg.Observer.OnTransmit(t, tx.in.From, r, tx.in.Packet, TxBusy)
				}
			}
		case rxCollision:
			res.CollisionFailures += len(txs)
			if cfg.Observer != nil {
				for _, tx := range txs {
					cfg.Observer.OnTransmit(t, tx.in.From, r, tx.in.Packet, TxCollision)
				}
			}
		case rxCapture:
			best := txs[rec.deliverIdx]
			res.Captures++
			e.deliverNow(best.in.Packet, r, t)
			e.successes = append(e.successes, success{best.in.From, r, best.in.Packet})
			res.CollisionFailures += len(txs) - 1
			if cfg.Observer != nil {
				for j, tx := range txs {
					outcome := TxCollision
					if j == int(rec.deliverIdx) {
						outcome = TxSuccess
					}
					cfg.Observer.OnTransmit(t, tx.in.From, r, tx.in.Packet, outcome)
				}
			}
		case rxSeq:
			if rec.deliverIdx < 0 {
				res.LossFailures += len(txs)
				if cfg.Observer != nil {
					for _, tx := range txs {
						cfg.Observer.OnTransmit(t, tx.in.From, r, tx.in.Packet, TxLoss)
					}
				}
			} else {
				got := txs[rec.deliverIdx]
				res.LossFailures += len(txs) - 1
				e.deliverNow(got.in.Packet, r, t)
				e.successes = append(e.successes, success{got.in.From, r, got.in.Packet})
				if cfg.Observer != nil {
					for j, tx := range txs {
						outcome := TxSuccess
						if j < int(rec.deliverIdx) {
							outcome = TxLoss
						} else if j > int(rec.deliverIdx) {
							outcome = TxRedundant
						}
						cfg.Observer.OnTransmit(t, tx.in.From, r, tx.in.Packet, outcome)
					}
				}
			}
		}
	}

	// Phases E + F: overhearing, entirely on the pool. The successful
	// senders' (symmetric) neighbor rows are logically concatenated into
	// one index space (ohOff is a prefix sum over row lengths); workers
	// scan their index range, filter to awake, silent, untargeted nodes,
	// claim each survivor with a compare-and-swap on its ohSeen flag —
	// exactly one claimer decides any node, reproducing the serial
	// dedup's accounting — and decide the claimed node against the slot's
	// successes. Which chunk claims a node contested between two rows is
	// scheduling-dependent, but the decision is a pure function of
	// (seed, slot, node), so the hit set is not; the merge sorts the hits
	// into ascending node order before any delivery —
	// O(delivered·log delivered), never O(row entries scanned).
	if cfg.Protocol.Overhears() && len(e.successes) > 0 {
		for si, s := range e.successes {
			e.senderSuccess[s.from] = int32(si)
		}
		rows := e.ohRows[:0]
		off := e.ohOff[:0]
		total := 0
		for _, s := range e.successes {
			row, _ := e.csr.Row(s.from)
			rows = append(rows, row)
			off = append(off, int32(total))
			total += len(row)
		}
		off = append(off, int32(total))
		e.ohRows, e.ohOff = rows, off
		if total > 0 {
			_, nchunks := e.pool.plan(total, ohMinChunk)
			for len(e.ohHits) < nchunks {
				e.ohHits = append(e.ohHits, ohChunk{})
			}
			hits := e.ohHits[:nchunks]
			e.pool.runShards(total, ohMinChunk, func(_, c, lo, hi int) {
				si := sort.Search(len(rows), func(j int) bool { return int(off[j+1]) > lo })
				hs := hits[c].hits[:0]
				cl := hits[c].claimed[:0]
				for k := lo; k < hi; k++ {
					for k >= int(off[si+1]) {
						si++
					}
					o := int(rows[si][k-int(off[si])])
					if !w.awake[o] || e.targeted[o] || w.transmitting[o] || e.recvNow[o] {
						continue
					}
					if !e.ohSeen[o].CompareAndSwap(false, true) {
						continue
					}
					cl = append(cl, int32(o))
					if dsi := e.decideOverhear(o, t); dsi >= 0 {
						hs = append(hs, ohHit{node: int32(o), succ: dsi})
					}
				}
				hits[c].hits, hits[c].claimed = hs, cl
			})
			all := e.ohAll[:0]
			for c := range hits {
				all = append(all, hits[c].hits...)
				e.statOhCands += int64(len(hits[c].claimed))
			}
			e.ohAll = all
			// Ascending node order, matching the serial path's delivery
			// order. Node ids are unique within a slot's hits (the claim
			// guarantees it).
			slices.SortFunc(all, func(a, b ohHit) int { return int(a.node - b.node) })
			for _, h := range all {
				s := e.successes[h.succ]
				e.deliverNow(s.packet, int(h.node), t)
				res.Overheard++
				if cfg.Observer != nil {
					cfg.Observer.OnOverhear(t, s.from, int(h.node), s.packet)
				}
			}
			for c := range hits {
				for _, o := range hits[c].claimed {
					e.ohSeen[o].Store(false)
				}
			}
		}
		for _, s := range e.successes {
			e.senderSuccess[s.from] = -1
		}
	}

	e.accountCoverage(t)
	e.cleanupSlot()
	return nil
}

// decideReceiver computes rxRec[i]: the outcome at receiver rxList[i],
// drawing only from the receiver's keyed stream. Pure with respect to
// shared state — it reads pre-slot world state and writes one record. Link
// PRRs come stashed in the intent group (admitIntent recorded them), so no
// adjacency lookup happens here.
func (e *engine) decideReceiver(i int, t int64) {
	cfg := &e.cfg
	r := e.rxList[i]
	txs := e.groupTxs(i)
	rec := rxRecord{deliverIdx: -1}
	switch {
	case e.inj != nil && e.inj.Jammed(t, r):
		rec.kind = rxJam
	case e.w.transmitting[r]:
		rec.kind = rxBusy
	case len(txs) > 1 && cfg.Protocol.CollisionsApply():
		rec.kind = rxCollision
		if cfg.CaptureProb > 0 {
			rng := e.slotStream.SubValue(uint64(r) * 2)
			if rng.Bool(cfg.CaptureProb) {
				best := 0
				for j := 1; j < len(txs); j++ {
					if e.scaledPRR(&txs[j], t) > e.scaledPRR(&txs[best], t) {
						best = j
					}
				}
				if rng.Bool(e.scaledPRR(&txs[best], t)) {
					rec.kind = rxCapture
					rec.deliverIdx = int32(best)
				}
			}
		}
	default:
		rec.kind = rxSeq
		rng := e.slotStream.SubValue(uint64(r) * 2)
		for j := range txs {
			if rng.Bool(e.scaledPRR(&txs[j], t)) {
				rec.deliverIdx = int32(j)
				break
			}
		}
	}
	e.rxRec[i] = rec
}

// decideOverhear decides which of this slot's successful senders (an
// index into successes, -1 for none) claimed candidate node o decodes.
// Draws come from the node's keyed stream; candidates walk their own
// neighbor row in ascending id order and the first decode wins, matching
// the serial rule that a node receives at most once per slot. The result
// is a pure function of (seed, slot, o) — independent of which chunk
// claimed o. Nodes outside the candidate set would never have reached a
// draw — they have no successful-sender neighbor — so restricting the
// scan to candidates changes no outcome.
func (e *engine) decideOverhear(o int, t int64) int32 {
	w := e.w
	if e.inj != nil && e.inj.Jammed(t, o) {
		return -1
	}
	row, prrs := e.csr.Row(o)
	rng := e.slotStream.SubValue(uint64(o)*2 + 1)
	for j, nb := range row {
		si := e.senderSuccess[nb]
		if si < 0 {
			continue
		}
		p := prrs[j]
		if e.inj != nil {
			p *= e.inj.LinkScale(t, int(nb), o)
		}
		if p <= 0 || w.Has(e.successes[si].packet, o) {
			continue
		}
		if rng.Bool(p) {
			return si
		}
	}
	return -1
}

package sim

// Sharded slot resolution (Config.Workers >= 1): the large-topology
// execution mode. The serial engine draws every delivery decision from one
// shared loss stream in slot order, which makes the decisions inherently
// sequential — the position of a draw depends on the outcome of every draw
// before it. The sharded discipline re-keys that randomness: each receiver
// (and each potential overhearer) derives a private stream from (run seed,
// slot, node) and consumes only it, so the per-node decisions are pure
// functions of pre-slot state and can be evaluated concurrently by a
// bounded worker pool, then merged in a fixed ascending-node order. Results
// are bit-for-bit identical for every worker count; they differ from the
// Workers == 0 stream by construction (the shared-stream draw order cannot
// be reproduced shard-locally).
//
// A slot resolves in phases:
//
//	A (serial)   faults, injection, chain Sync, awake set — in the caller.
//	B (serial)   protocol intents + validation (collectIntents; syncRNG
//	             stays a shared sequential stream, drawn here).
//	C (parallel) per-receiver delivery decisions into rxRec.
//	D (serial)   merge rxRec in ascending receiver order: counters,
//	             deliveries, Observer callbacks.
//	E (parallel) per-node overhearing decisions into ohRec.
//	F (serial)   merge ohRec in ascending node order, then shared coverage
//	             accounting and scratch cleanup.

import (
	"sync"

	"ldcflood/internal/schedule"
)

// rxKind classifies a receiver's slot outcome, mirroring the serial
// engine's per-receiver switch.
type rxKind uint8

const (
	rxJam rxKind = iota
	rxBusy
	rxCollision // collision with no capture
	rxCapture   // capture effect salvaged deliverIdx
	rxSeq       // sequential attempts; deliverIdx is the first success
)

// rxRecord is one receiver's delivery decision, produced by a worker in
// phase C and applied serially in phase D.
type rxRecord struct {
	kind rxKind
	// deliverIdx indexes the delivered intent within the receiver's intent
	// group, or -1 when nothing was decoded.
	deliverIdx int32
}

// debugMinChunk is the smallest shard a runShards call hands to a worker.
// The default amortizes channel handoff over a useful batch of nodes; the
// adversarial stress test lowers it to 1 to force maximal interleaving.
// Chunk geometry never affects results — decisions are keyed per node.
var debugMinChunk = 64

// shardPool is a bounded set of persistent workers executing index-range
// shards. The submitting goroutine always works on the first shard itself,
// so a pool of w workers runs w-1 goroutines.
type shardPool struct {
	workers int
	tasks   chan shardTask
}

type shardTask struct {
	lo, hi int
	fn     func(lo, hi int)
	wg     *sync.WaitGroup
}

func newShardPool(workers int) *shardPool {
	// Buffer for the worst case (workers-1 queued shards) so submission
	// never blocks and runShards cannot deadlock against a busy pool.
	p := &shardPool{workers: workers, tasks: make(chan shardTask, workers)}
	for i := 0; i < workers-1; i++ {
		go p.run()
	}
	return p
}

func (p *shardPool) run() {
	for t := range p.tasks {
		t.fn(t.lo, t.hi)
		t.wg.Done()
	}
}

func (p *shardPool) close() { close(p.tasks) }

// runShards partitions [0, count) into per-worker chunks (never smaller
// than debugMinChunk) and runs fn over them concurrently, returning when
// every index is processed. fn must write only to indices in its range.
func (p *shardPool) runShards(count int, fn func(lo, hi int)) {
	if count <= 0 {
		return
	}
	chunk := (count + p.workers - 1) / p.workers
	if chunk < debugMinChunk {
		chunk = debugMinChunk
	}
	if p.workers == 1 || count <= chunk {
		fn(0, count)
		return
	}
	var wg sync.WaitGroup
	for lo := chunk; lo < count; lo += chunk {
		hi := lo + chunk
		if hi > count {
			hi = count
		}
		wg.Add(1)
		p.tasks <- shardTask{lo: lo, hi: hi, fn: fn, wg: &wg}
	}
	fn(0, chunk)
	wg.Wait()
}

// awakePlan precomputes per-offset awake buckets over the schedule
// hyperperiod, so the sharded reference path recomputes the awake set in
// O(awake) per slot instead of an O(n) scan — at 100k nodes and 1% duty
// that is the difference between touching 100k and ~1k schedule entries
// per slot. Unlike compactPlan it carries no adjacency structure, so it
// stays O(n + L·awake) in memory at any scale.
type awakePlan struct {
	L       int64
	buckets [][]int32
}

// newAwakePlan builds the offset buckets, or returns nil when the
// hyperperiod exceeds compactMaxHyperperiod (the caller then scans).
func newAwakePlan(scheds []*schedule.Schedule) *awakePlan {
	L := 1
	for _, s := range scheds {
		L = lcm(L, s.Period())
		if L > compactMaxHyperperiod {
			return nil
		}
	}
	plan := &awakePlan{L: int64(L), buckets: make([][]int32, L)}
	counts := make([]int32, L)
	total := 0
	for _, s := range scheds {
		total += len(s.ActiveSlots()) * (L / s.Period())
		for _, off := range s.ActiveSlots() {
			for base := off; base < L; base += s.Period() {
				counts[base]++
			}
		}
	}
	backing := make([]int32, total)
	pos := 0
	for o := range plan.buckets {
		c := int(counts[o])
		if c == 0 {
			continue
		}
		plan.buckets[o] = backing[pos : pos : pos+c]
		pos += c
	}
	// Ascending node order per bucket, matching the serial scan's
	// AwakeList order.
	for i, s := range scheds {
		for _, off := range s.ActiveSlots() {
			for base := off; base < L; base += s.Period() {
				plan.buckets[base] = append(plan.buckets[base], int32(i))
			}
		}
	}
	return plan
}

// resolveSlotSharded is the sharded counterpart of resolveSlot. See the
// package comment at the top of this file for the phase structure.
func (e *engine) resolveSlotSharded(t int64) error {
	w, res, cfg := e.w, e.res, &e.cfg

	// Phase A tail: advance every fault chain to t now, serially, so the
	// workers' effPRR queries below are pure reads.
	if e.inj != nil {
		e.inj.Sync(t)
	}
	// The slot's stream subtree root. Written here (serially), only read
	// by workers.
	e.slotStream = e.shardRoot.SubValue(uint64(t))

	// Phase B.
	if err := e.collectIntents(t); err != nil {
		return err
	}

	// Phase C: every targeted receiver decides its outcome from its
	// private (seed, slot, receiver) stream.
	if cap(e.rxRec) < len(e.rxList) {
		e.rxRec = make([]rxRecord, len(e.rxList))
	}
	e.rxRec = e.rxRec[:len(e.rxList)]
	e.pool.runShards(len(e.rxList), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e.decideReceiver(i, t)
		}
	})

	// Phase D: apply the records in ascending receiver order — the same
	// order the serial path visits receivers — so counters, deliveries and
	// Observer callbacks are deterministic.
	e.successes = e.successes[:0]
	for i, r := range e.rxList {
		txs := e.rxIntents[r]
		res.Transmissions += len(txs)
		for _, tx := range txs {
			res.TxPerNode[tx.From]++
		}
		e.targeted[r] = true
		rec := e.rxRec[i]
		switch rec.kind {
		case rxJam:
			res.JamFailures += len(txs)
			if cfg.Observer != nil {
				for _, tx := range txs {
					cfg.Observer.OnTransmit(t, tx.From, r, tx.Packet, TxJammed)
				}
			}
		case rxBusy:
			res.BusyFailures += len(txs)
			if cfg.Observer != nil {
				for _, tx := range txs {
					cfg.Observer.OnTransmit(t, tx.From, r, tx.Packet, TxBusy)
				}
			}
		case rxCollision:
			res.CollisionFailures += len(txs)
			if cfg.Observer != nil {
				for _, tx := range txs {
					cfg.Observer.OnTransmit(t, tx.From, r, tx.Packet, TxCollision)
				}
			}
		case rxCapture:
			best := txs[rec.deliverIdx]
			res.Captures++
			e.deliverNow(best.Packet, r, t)
			e.successes = append(e.successes, success{best.From, r, best.Packet})
			res.CollisionFailures += len(txs) - 1
			if cfg.Observer != nil {
				for j, tx := range txs {
					outcome := TxCollision
					if j == int(rec.deliverIdx) {
						outcome = TxSuccess
					}
					cfg.Observer.OnTransmit(t, tx.From, r, tx.Packet, outcome)
				}
			}
		case rxSeq:
			if rec.deliverIdx < 0 {
				res.LossFailures += len(txs)
				if cfg.Observer != nil {
					for _, tx := range txs {
						cfg.Observer.OnTransmit(t, tx.From, r, tx.Packet, TxLoss)
					}
				}
			} else {
				got := txs[rec.deliverIdx]
				res.LossFailures += len(txs) - 1
				e.deliverNow(got.Packet, r, t)
				e.successes = append(e.successes, success{got.From, r, got.Packet})
				if cfg.Observer != nil {
					for j, tx := range txs {
						outcome := TxSuccess
						if j < int(rec.deliverIdx) {
							outcome = TxLoss
						} else if j > int(rec.deliverIdx) {
							outcome = TxRedundant
						}
						cfg.Observer.OnTransmit(t, tx.From, r, tx.Packet, outcome)
					}
				}
			}
		}
	}

	// Phases E + F: overhearing. Each awake, silent, non-targeted node
	// walks its own CSR neighbor row (ascending id) and accepts the first
	// successful sender it decodes — O(Σ degree(awake)) total, independent
	// of how many successes the slot produced.
	if cfg.Protocol.Overhears() && len(e.successes) > 0 {
		for si, s := range e.successes {
			e.senderSuccess[s.from] = int32(si)
		}
		list := w.awakeList
		if cap(e.ohRec) < len(list) {
			e.ohRec = make([]int32, len(list))
		}
		e.ohRec = e.ohRec[:len(list)]
		e.pool.runShards(len(list), func(lo, hi int) {
			for k := lo; k < hi; k++ {
				e.decideOverhear(k, t)
			}
		})
		for k, si := range e.ohRec {
			if si < 0 {
				continue
			}
			s := e.successes[si]
			o := list[k]
			e.deliverNow(s.packet, o, t)
			res.Overheard++
			if cfg.Observer != nil {
				cfg.Observer.OnOverhear(t, s.from, o, s.packet)
			}
		}
		for _, s := range e.successes {
			e.senderSuccess[s.from] = -1
		}
	}

	e.accountCoverage(t)
	e.cleanupSlot()
	return nil
}

// decideReceiver computes rxRec[i]: the outcome at receiver rxList[i],
// drawing only from the receiver's keyed stream. Pure with respect to
// shared state — it reads pre-slot world state and writes one record.
func (e *engine) decideReceiver(i int, t int64) {
	cfg := &e.cfg
	r := e.rxList[i]
	txs := e.rxIntents[r]
	rec := rxRecord{deliverIdx: -1}
	switch {
	case e.inj != nil && e.inj.Jammed(t, r):
		rec.kind = rxJam
	case e.w.transmitting[r]:
		rec.kind = rxBusy
	case len(txs) > 1 && cfg.Protocol.CollisionsApply():
		rec.kind = rxCollision
		if cfg.CaptureProb > 0 {
			rng := e.slotStream.SubValue(uint64(r) * 2)
			if rng.Bool(cfg.CaptureProb) {
				best := 0
				for j := 1; j < len(txs); j++ {
					if e.effPRR(txs[j].From, r) > e.effPRR(txs[best].From, r) {
						best = j
					}
				}
				if rng.Bool(e.effPRR(txs[best].From, r)) {
					rec.kind = rxCapture
					rec.deliverIdx = int32(best)
				}
			}
		}
	default:
		rec.kind = rxSeq
		rng := e.slotStream.SubValue(uint64(r) * 2)
		for j := range txs {
			if rng.Bool(e.effPRR(txs[j].From, r)) {
				rec.deliverIdx = int32(j)
				break
			}
		}
	}
	e.rxRec[i] = rec
}

// decideOverhear computes ohRec[k]: whether awake node awakeList[k]
// overhears one of this slot's successful senders, and which (an index
// into successes, -1 for none). Draws come from the node's keyed stream;
// candidates are the node's neighbors in ascending id order and the first
// decode wins, matching the serial rule that a node receives at most once
// per slot.
func (e *engine) decideOverhear(k int, t int64) {
	w := e.w
	o := w.awakeList[k]
	e.ohRec[k] = -1
	if e.targeted[o] || w.transmitting[o] || e.recvNow[o] {
		return
	}
	if e.inj != nil && e.inj.Jammed(t, o) {
		return
	}
	row, prrs := e.csr.Row(o)
	rng := e.slotStream.SubValue(uint64(o)*2 + 1)
	for j, nb := range row {
		si := e.senderSuccess[nb]
		if si < 0 {
			continue
		}
		p := prrs[j]
		if e.inj != nil {
			p *= e.inj.LinkScale(t, int(nb), o)
		}
		if p <= 0 || w.Has(e.successes[si].packet, o) {
			continue
		}
		if rng.Bool(p) {
			e.ohRec[k] = si
			return
		}
	}
}

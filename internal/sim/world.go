// Package sim is the slotted discrete-event simulator implementing the
// network model of Section III: periodic working schedules, semi-duplex
// radios, unreliable links with Bernoulli loss, FCFS packet queues, and
// flooding realized as a series of unicasts. Flooding protocols (package
// flood) plug in through the Protocol interface; the engine owns slot
// mechanics, collision and loss resolution, overhearing, and metrics.
package sim

import (
	"fmt"
	"math"
	"math/bits"

	"ldcflood/internal/fault"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/telemetry"
	"ldcflood/internal/topology"
)

// World is the simulation state visible to protocols. Protocols must treat
// it as read-only except through their returned intents.
type World struct {
	Graph     *topology.Graph
	Schedules []*schedule.Schedule
	// M is the total number of packets the source will inject.
	M int
	// InjectInterval is the number of slots between injections.
	InjectInterval int
	// ProtoRNG is a dedicated random stream for protocol-internal decisions
	// (e.g. OF's probabilistic forwarding), split from the run seed.
	ProtoRNG *rngutil.Stream

	// has is the node-major possession bitset: bit p%64 of word
	// has[node*pwords + p/64] is set when node holds packet p. The layout
	// makes OldestNeeded a handful of word operations per packet word
	// instead of a per-packet bool walk.
	has       []uint64
	pwords    int     // uint64 words per node in has: ceil(M/64)
	heldCount []int   // heldCount[node]: packets node currently holds
	recvTime  []int64 // recvTime[node*M+p]; -1 if not received (node-major so OldestNeeded scans contiguously)
	count     []int   // count[p]: nodes currently holding p
	injected  int     // packets injected so far
	now       int64

	awake        []bool
	awakeList    []int
	transmitting []bool

	// onDeliver, when non-nil, observes every successful delivery
	// (injection, unicast or overheard). The compact-time fast path hooks
	// it to maintain its relevant-slot bookkeeping incrementally.
	onDeliver func(p, node int)
}

// Now returns the current slot.
func (w *World) Now() int64 { return w.now }

// Injected returns how many packets have been injected so far.
func (w *World) Injected() int { return w.injected }

// InjectSlot returns the slot at which packet p is (or will be) injected.
func (w *World) InjectSlot(p int) int64 { return int64(p) * int64(w.InjectInterval) }

// Has reports whether node holds packet p.
func (w *World) Has(p, node int) bool {
	return w.has[node*w.pwords+p>>6]&(1<<(uint(p)&63)) != 0
}

// RecvTime returns the slot at which node received packet p, or -1.
func (w *World) RecvTime(p, node int) int64 { return w.recvTime[node*w.M+p] }

// Count returns the number of nodes currently holding packet p.
func (w *World) Count(p int) int { return w.count[p] }

// IsAwake reports whether node is in its active slot right now.
func (w *World) IsAwake(node int) bool { return w.awake[node] }

// AwakeList returns the nodes awake this slot, ascending. The slice is
// owned by the engine; do not modify or retain it.
func (w *World) AwakeList() []int { return w.awakeList }

// IsTransmitting reports whether node has already been assigned a
// transmission this slot.
func (w *World) IsTransmitting(node int) bool { return w.transmitting[node] }

// NeedsAnything reports whether node is missing any injected packet.
func (w *World) NeedsAnything(node int) bool {
	return w.heldCount[node] < w.injected
}

// OldestNeeded returns the packet that sender should forward to receiver
// under the FCFS relay policy: among the injected packets sender holds and
// receiver lacks, the one sender received earliest (ties to the smaller
// packet index). It returns -1 if there is no such packet.
func (w *World) OldestNeeded(sender, receiver int) int {
	sb := w.has[sender*w.pwords : (sender+1)*w.pwords]
	rb := w.has[receiver*w.pwords : (receiver+1)*w.pwords]
	rts := w.recvTime[sender*w.M : (sender+1)*w.M]
	best := -1
	var bestTime int64 = math.MaxInt64
	for i, sw := range sb {
		need := sw &^ rb[i]
		for need != 0 {
			p := i<<6 + bits.TrailingZeros64(need)
			need &= need - 1
			if rt := rts[p]; rt < bestTime {
				best, bestTime = p, rt
			}
		}
	}
	return best
}

// AnyNeeded reports whether sender holds at least one packet receiver
// lacks — equivalent to OldestNeeded(sender, receiver) >= 0 but without
// finding the FCFS minimum, a handful of word operations. Protocols use it
// as the cheap candidate-admission test, deferring the OldestNeeded scan to
// the senders that actually fire; the compact-time fast path uses it to
// track which nodes can still receive something.
func (w *World) AnyNeeded(sender, receiver int) bool {
	if w.pwords == 1 {
		return w.has[sender]&^w.has[receiver] != 0
	}
	sb := w.has[sender*w.pwords : (sender+1)*w.pwords]
	rb := w.has[receiver*w.pwords : (receiver+1)*w.pwords]
	for i, sw := range sb {
		if sw&^rb[i] != 0 {
			return true
		}
	}
	return false
}

// HoldersOf returns receiver's neighbors currently holding at least one
// packet receiver lacks, in adjacency order.
func (w *World) HoldersOf(receiver int) []topology.Link {
	var out []topology.Link
	for _, l := range w.Graph.Neighbors(receiver) {
		if w.AnyNeeded(l.To, receiver) {
			out = append(out, l)
		}
	}
	return out
}

// dropAll clears node's entire packet buffer — the engine applies it when
// a fault-schedule crash takes effect. Possession bits, reception times and
// the per-packet holder counts are rolled back; latched Result fields
// (CoverTime, Delay) are deliberately untouched, so coverage remains
// monotone per packet. It returns the number of packet copies dropped.
func (w *World) dropAll(node int) int {
	dropped := 0
	words := w.has[node*w.pwords : (node+1)*w.pwords]
	for i, word := range words {
		for word != 0 {
			p := i<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			w.count[p]--
			w.recvTime[node*w.M+p] = -1
			dropped++
		}
		words[i] = 0
	}
	w.heldCount[node] = 0
	return dropped
}

func (w *World) deliver(p, node int, t int64) bool {
	if w.Has(p, node) {
		return false
	}
	w.has[node*w.pwords+p>>6] |= 1 << (uint(p) & 63)
	w.recvTime[node*w.M+p] = t
	w.count[p]++
	w.heldCount[node]++
	if w.onDeliver != nil {
		w.onDeliver(p, node)
	}
	return true
}

// Intent is a protocol's request that From unicast Packet to To this slot.
type Intent struct {
	From, To, Packet int
}

// Protocol is a flooding strategy plugged into the engine.
type Protocol interface {
	// Name identifies the protocol in results ("OPT", "DBAO", "OF", ...).
	Name() string
	// Reset prepares protocol state for a fresh run over the given world.
	Reset(w *World)
	// Intents returns this slot's transmission requests. The engine
	// validates them (sender holds the packet, link exists, receiver is
	// awake and lacks the packet) and enforces one transmission per sender.
	Intents(w *World) []Intent
	// CollisionsApply reports whether simultaneous transmissions to one
	// receiver destroy each other. The OPT oracle returns false.
	CollisionsApply() bool
	// Overhears reports whether non-targeted awake neighbors of a
	// successful sender may also receive the packet (DBAO's mechanism).
	Overhears() bool
}

// TxOutcome classifies what happened to one transmission attempt.
type TxOutcome int

// Transmission outcomes reported to an Observer.
const (
	// TxSuccess: the receiver decoded the packet.
	TxSuccess TxOutcome = iota
	// TxLoss: the link dropped the packet (Bernoulli loss).
	TxLoss
	// TxCollision: simultaneous transmissions destroyed each other.
	TxCollision
	// TxBusy: the receiver was itself transmitting (semi-duplex).
	TxBusy
	// TxRedundant: the receiver had already decoded the packet this slot
	// from another (oracle-mode) sender.
	TxRedundant
	// TxSync: the sender mis-estimated the receiver's wake slot (local
	// synchronization error) and transmitted into silence.
	TxSync
	// TxJammed: the receiver sat inside an active jamming region
	// (fault-schedule regional outage) and could not decode anything.
	TxJammed
)

// String implements fmt.Stringer.
func (o TxOutcome) String() string {
	switch o {
	case TxSuccess:
		return "success"
	case TxLoss:
		return "loss"
	case TxCollision:
		return "collision"
	case TxBusy:
		return "busy"
	case TxRedundant:
		return "redundant"
	case TxSync:
		return "sync-miss"
	case TxJammed:
		return "jammed"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Observer receives engine events; attach one via Config.Observer for
// tracing, debugging or custom metrics. Methods are called synchronously
// from the engine loop in deterministic order.
type Observer interface {
	// OnInject fires when the source generates a packet.
	OnInject(t int64, packet int)
	// OnTransmit fires for every transmission attempt with its outcome.
	OnTransmit(t int64, from, to, packet int, outcome TxOutcome)
	// OnOverhear fires when a non-targeted node receives a packet for free.
	OnOverhear(t int64, from, node, packet int)
	// OnCovered fires when a packet reaches the coverage target.
	OnCovered(t int64, packet int)
}

// FuncProtocol adapts plain functions to the Protocol interface, for quick
// experiments and tests that don't warrant a named type. Nil hooks default
// to no-ops (and no intents).
type FuncProtocol struct {
	// ProtocolName is reported by Name (default "func").
	ProtocolName string
	// ResetFunc is called once per run before the first slot.
	ResetFunc func(w *World)
	// IntentsFunc produces the per-slot transmissions.
	IntentsFunc func(w *World) []Intent
	// Collisions and Overhearing configure the engine's resolution rules.
	Collisions  bool
	Overhearing bool
}

// Name implements Protocol.
func (f *FuncProtocol) Name() string {
	if f.ProtocolName == "" {
		return "func"
	}
	return f.ProtocolName
}

// Reset implements Protocol.
func (f *FuncProtocol) Reset(w *World) {
	if f.ResetFunc != nil {
		f.ResetFunc(w)
	}
}

// Intents implements Protocol.
func (f *FuncProtocol) Intents(w *World) []Intent {
	if f.IntentsFunc == nil {
		return nil
	}
	return f.IntentsFunc(w)
}

// CollisionsApply implements Protocol.
func (f *FuncProtocol) CollisionsApply() bool { return f.Collisions }

// Overhears implements Protocol.
func (f *FuncProtocol) Overhears() bool { return f.Overhearing }

var _ Protocol = (*FuncProtocol)(nil)

// Config parameterizes one simulation run.
type Config struct {
	Graph     *topology.Graph
	Schedules []*schedule.Schedule
	Protocol  Protocol
	// M is the number of packets flooded (paper default: 100).
	M int
	// InjectInterval is the slot spacing between injections (default 1).
	InjectInterval int
	// Coverage is the delivery-ratio target defining "flooding delay"
	// (paper: 0.99, excluding the worst-connected sensors).
	Coverage float64
	// MaxSlots caps the run; 0 derives a generous default.
	MaxSlots int64
	// Seed drives all randomness (link loss and protocol decisions).
	Seed uint64
	// Observer, when non-nil, receives every engine event.
	Observer Observer
	// RecordReceptions copies the full per-node reception-time matrix into
	// Result.NodeRecvTime (M×N int64s) for per-node delay-distribution
	// analysis.
	RecordReceptions bool
	// SyncErrorProb models imperfect local synchronization (Section III-B
	// assumes it is perfect): with this probability, a transmission is
	// fired at a mis-estimated wake slot and reaches nobody, wasting the
	// sender's slot. Must be in [0, 1).
	SyncErrorProb float64
	// CaptureProb models the capture effect (Lu & Whitehouse, INFOCOM'09,
	// the paper's reference [17]): when several transmissions collide at a
	// receiver, the strongest one (highest PRR as the signal-strength
	// proxy) is decoded anyway with this probability instead of everything
	// being destroyed. 0 (default) disables capture; must be in [0, 1].
	CaptureProb float64
	// Adapt, when non-nil, is invoked every AdaptEvery slots with the
	// engine's live schedule table; it may replace entries to change
	// nodes' duty cycles mid-run (dynamic duty-cycle control in the style
	// of DutyCon, the paper's reference [22]). Entries must remain
	// non-nil.
	Adapt func(w *World, schedules []*schedule.Schedule)
	// AdaptEvery is the adaptation epoch in slots; required > 0 when Adapt
	// is set.
	AdaptEvery int64
	// Faults, when non-nil, is a deterministic fault-injection schedule
	// (package fault): Gilbert–Elliott bursty link degradation, node
	// crash/reboot churn, and transient jamming outages, all compiled
	// against the run seed's dedicated "fault" RNG stream so attaching a
	// schedule never perturbs the loss/sync/protocol streams — an empty
	// schedule reproduces the unfaulted run bit-for-bit. Dynamic schedules
	// (churn, jams, moving chains) force the slot-by-slot reference path;
	// static link degradation (the paper's k-class loss) keeps the
	// compact-time fast path. See docs/FAULTS.md.
	Faults *fault.Schedule
	// Interrupt, when non-nil, is polled once at the top of every slot.
	// Returning true aborts the run immediately with an error wrapping
	// ErrInterrupted. The hook runs on the engine's hot path and must be
	// cheap; the batch runner (internal/runner) uses it to impose
	// wall-clock timeouts, slot budgets, and context cancellation without
	// leaking a runaway simulation goroutine. Under CompactTime the hook
	// is polled only at the slots the fast path visits, so an interrupt
	// that would have fired during a skipped dormant stretch is delivered
	// at the next visited slot instead.
	Interrupt func(slot int64) bool
	// Telemetry, when non-nil, receives cheap always-on counters from the
	// run: slots visited/skipped, execution-path selection, transmission
	// attempts by outcome, packet injection/coverage progress, and fault
	// events (see docs/OBSERVABILITY.md for the catalog). Counters update
	// live — a slot tick every visited slot, accumulator drains every few
	// thousand slots and at run end — and never affect results: attaching a
	// registry touches no RNG stream and changes no engine decision. One
	// registry may be shared by many concurrent runs (the batch runner's
	// fan-out); values then aggregate across runs. When nil (the default),
	// the hot path pays exactly one predictable branch per slot.
	Telemetry *telemetry.Registry
	// Workers selects the sharded execution mode for large topologies.
	//
	// 0 (the default) runs the historical serial engine: one goroutine,
	// one shared loss stream drawn in slot order. Its results are
	// bit-for-bit stable across releases and match every committed golden.
	//
	// Workers >= 1 switches the slot resolution to the sharded discipline:
	// receiver-side delivery decisions and overhearing draws come from
	// per-node RNG streams keyed by (run seed, slot, node), so they can be
	// evaluated concurrently by a bounded worker pool and merged in a fixed
	// order. Results under this discipline are bit-for-bit identical for
	// every worker count (Workers: 1 and Workers: 8 agree exactly; see the
	// equivalence suite in internal/flood and property_test.go) but differ
	// from the Workers: 0 stream, which draws from one sequential stream
	// whose consumption order cannot be reproduced shard-locally. The
	// sharded mode also activates the large-topology fast paths (CSR link
	// lookups, bucketed awake sets), making it the intended configuration
	// for 10k–100k-node runs even at Workers: 1. Negative values are
	// rejected; counts beyond the machine's parallelism waste scheduling
	// overhead but do not change results.
	Workers int
	// ShardStats, when non-nil, runs the sharded path (Workers >= 1) in
	// its work/span profiling mode: batches keep the configured worker
	// count's chunk geometry but execute sequentially on one goroutine,
	// each chunk timed contention-free (see the ShardStats type). It is
	// deliberately an out-parameter rather than a Result field: attaching
	// it cannot perturb result identity (runs with and without it are
	// bit-for-bit equal); wall time, however, resembles a one-worker run.
	// cmd/engbench -scale derives its workers_speedup metric from these
	// fields. Ignored when Workers is 0.
	ShardStats *ShardStats
	// CompactTime enables the compact-time-scale fast path (the paper's
	// Section III modeling move: analyze dissemination over active slots
	// only). The engine precomputes each schedule's periodic active-slot
	// structure, maintains the awake set incrementally, and steps directly
	// from one relevant slot to the next — slots on which no transmission,
	// reception, protocol decision or injection can occur are accounted
	// into AwakeSlotsPerNode and TotalSlots arithmetically, never
	// iterated. Results are bit-for-bit identical to the default path for
	// every shipped protocol (see the equivalence suite in
	// compact_test.go).
	//
	// The fast path silently falls back to the slot-by-slot path when it
	// cannot be applied: when Adapt is set (schedules mutate mid-run), or
	// when the schedules' hyperperiod (lcm of all periods) exceeds an
	// internal bound, making offset bucketing impractical.
	//
	// Contract for custom protocols: the engine only invokes the protocol
	// on relevant slots — slots where some awake node has a neighbor
	// holding a packet it lacks, or where two adjacent nodes are awake
	// while any node still misses a packet. A Protocol whose Intents
	// consults World.ProtoRNG (or other state) outside those situations
	// will observe a different random stream than under the default path;
	// all protocols in internal/flood satisfy the contract.
	CompactTime bool
}

func (c *Config) validate() error {
	if c.Graph == nil {
		return fmt.Errorf("sim: nil graph")
	}
	if len(c.Schedules) != c.Graph.N() {
		return fmt.Errorf("sim: %d schedules for %d nodes", len(c.Schedules), c.Graph.N())
	}
	for i, s := range c.Schedules {
		if s == nil {
			return fmt.Errorf("sim: nil schedule for node %d", i)
		}
	}
	if c.Protocol == nil {
		return fmt.Errorf("sim: nil protocol")
	}
	if c.M < 1 {
		return fmt.Errorf("sim: M = %d must be >= 1", c.M)
	}
	if c.InjectInterval < 0 {
		return fmt.Errorf("sim: negative inject interval")
	}
	if c.Coverage < 0 || c.Coverage > 1 {
		return fmt.Errorf("sim: coverage %v outside [0,1]", c.Coverage)
	}
	if c.SyncErrorProb < 0 || c.SyncErrorProb >= 1 {
		return fmt.Errorf("sim: sync error probability %v outside [0,1)", c.SyncErrorProb)
	}
	if c.CaptureProb < 0 || c.CaptureProb > 1 {
		return fmt.Errorf("sim: capture probability %v outside [0,1]", c.CaptureProb)
	}
	if c.Adapt != nil && c.AdaptEvery <= 0 {
		return fmt.Errorf("sim: Adapt requires AdaptEvery > 0")
	}
	if c.Workers < 0 {
		return fmt.Errorf("sim: negative worker count %d", c.Workers)
	}
	if err := c.Faults.Validate(c.Graph); err != nil {
		return err
	}
	return nil
}

// Result captures a run's metrics.
type Result struct {
	Protocol string
	M        int
	// CoverNodes is the node count that defines packet completion
	// (⌈coverage × N⌉, where N includes the source).
	CoverNodes int
	// InjectTime[p] is the slot at which packet p entered the network.
	InjectTime []int64
	// CoverTime[p] is the slot at which packet p reached CoverNodes nodes,
	// or -1 if it never did within the horizon.
	CoverTime []int64
	// Delay[p] = CoverTime[p] - InjectTime[p] (the paper's flooding delay),
	// or -1 for uncovered packets.
	Delay []int64
	// FirstHopDelay[p] is the delay until the packet left the source (the
	// transmission-delay component separated in Fig. 9), or -1.
	FirstHopDelay []int64

	Transmissions     int
	LossFailures      int
	CollisionFailures int
	BusyFailures      int
	SyncFailures      int
	// JamFailures counts transmissions that targeted a receiver inside an
	// active fault-schedule jamming region.
	JamFailures int
	Overheard   int
	// Crashes / Reboots count applied fault-schedule churn events;
	// CrashDropped totals the packet copies crashing nodes lost (each must
	// be re-disseminated for the flood to complete).
	Crashes      int
	Reboots      int
	CrashDropped int
	// Captures counts collisions salvaged by the capture effect.
	Captures  int
	TxPerNode []int
	// AwakeSlotsPerNode counts each node's scheduled active slots over the
	// run — the radio-on time that dominates its energy budget. Slots spent
	// transmitting outside the node's own schedule are counted in
	// TxPerNode, not here.
	AwakeSlotsPerNode []int64

	TotalSlots int64
	Completed  bool

	// NodeRecvTime[p][node] is the slot at which node received packet p
	// (-1 if never). Populated only when Config.RecordReceptions is set.
	NodeRecvTime [][]int64
}

// NodeDelays returns the per-node reception delays of packet p (reception
// slot minus injection slot), excluding nodes that never received it. It
// requires RecordReceptions; otherwise it returns nil.
func (r *Result) NodeDelays(p int) []int64 {
	if r.NodeRecvTime == nil || p < 0 || p >= len(r.NodeRecvTime) {
		return nil
	}
	var out []int64
	for _, rt := range r.NodeRecvTime[p] {
		if rt >= 0 {
			out = append(out, rt-r.InjectTime[p])
		}
	}
	return out
}

// Failures returns the total transmission failures (the Fig. 11 metric):
// link losses plus collisions plus transmissions wasted on a busy
// (transmitting) receiver plus synchronization misses plus receptions
// destroyed by jamming.
func (r *Result) Failures() int {
	return r.LossFailures + r.CollisionFailures + r.BusyFailures + r.SyncFailures + r.JamFailures
}

// MeanDelay returns the average per-packet flooding delay in slots over
// covered packets, or NaN if none were covered.
func (r *Result) MeanDelay() float64 {
	sum, n := 0.0, 0
	for _, d := range r.Delay {
		if d >= 0 {
			sum += float64(d)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

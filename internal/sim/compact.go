package sim

import (
	"math/bits"

	"ldcflood/internal/schedule"
	"ldcflood/internal/topology"
)

// compactMaxHyperperiod bounds the schedule hyperperiod (lcm of all
// periods) for which the compact-time fast path builds its per-offset
// buckets. Schedules whose periods are mutually irregular (e.g. coprime
// large periods) blow past this bound and fall back to the slot-by-slot
// path; the paper's uniform-period assignments have hyperperiod == period.
const compactMaxHyperperiod = 8192

// compactPlan is the precomputed active-slot structure of one schedule
// table: for each offset within the hyperperiod, who is awake and whether
// any two adjacent nodes are simultaneously awake. It is immutable after
// construction (schedules cannot change when the fast path is active).
type compactPlan struct {
	// L is the hyperperiod: the global awake pattern repeats every L slots.
	L int
	// buckets[o] lists the nodes awake at slots ≡ o (mod L), ascending.
	buckets [][]int32
	// offsetsOf[v] lists the offsets at which node v is awake.
	offsetsOf [][]int32
	// pairOff[o] reports whether some linked pair of nodes is simultaneously
	// awake at offset o — the only slots on which protocol-level
	// sender/receiver interaction (including OF's defer-to-reception draw)
	// can occur while any node still misses a packet.
	pairOff []bool
	// adj is the graph's adjacency bitset, reused by the fast state's
	// per-delivery relevance sweeps. It costs O(n²/8) memory, so it is nil
	// for graphs of compactSparseNodes nodes or more; csr then serves the
	// same queries by row walks, keeping the plan O(n+m) at 100k nodes.
	adj [][]uint64
	csr *topology.CSR
}

// compactSparseNodes is the node count at which the compact plan switches
// from the dense adjacency bitset to CSR row walks. A variable so the
// equivalence tests can force the sparse structure on small graphs.
var compactSparseNodes = 2048

// newCompactPlan builds the offset buckets for the given schedule table, or
// returns nil when the hyperperiod exceeds compactMaxHyperperiod (the
// caller then uses the slot-by-slot path).
func newCompactPlan(g *topology.Graph, scheds []*schedule.Schedule) *compactPlan {
	L := 1
	for _, s := range scheds {
		L = lcm(L, s.Period())
		if L > compactMaxHyperperiod {
			return nil
		}
	}
	n := len(scheds)
	plan := &compactPlan{
		L:         L,
		buckets:   make([][]int32, L),
		offsetsOf: make([][]int32, n),
		pairOff:   make([]bool, L),
	}
	// Carve each bucket and offset list out of two shared backing arrays:
	// the per-offset append pattern below never grows past the counted
	// capacity, so plan construction costs O(1) allocations instead of
	// O(L + n).
	counts := make([]int32, L)
	total := 0
	for _, s := range scheds {
		reps := L / s.Period()
		total += len(s.ActiveSlots()) * reps
		for _, off := range s.ActiveSlots() {
			for base := off; base < L; base += s.Period() {
				counts[base]++
			}
		}
	}
	backing := make([]int32, total)
	pos := 0
	for o := range plan.buckets {
		c := int(counts[o])
		if c == 0 {
			continue // leave empty buckets nil
		}
		plan.buckets[o] = backing[pos : pos : pos+c]
		pos += c
	}
	obacking := make([]int32, total)
	opos := 0
	for i, s := range scheds {
		c := len(s.ActiveSlots()) * (L / s.Period())
		plan.offsetsOf[i] = obacking[opos : opos : opos+c]
		opos += c
	}
	for i, s := range scheds {
		// Outer loop ascending in i keeps every bucket sorted by node id,
		// which the engine relies on for a deterministic AwakeList order.
		for _, off := range s.ActiveSlots() {
			for base := off; base < L; base += s.Period() {
				plan.buckets[base] = append(plan.buckets[base], int32(i))
				plan.offsetsOf[i] = append(plan.offsetsOf[i], int32(base))
			}
		}
	}
	words := (n + 63) / 64
	member := make([]uint64, words)
	if n < compactSparseNodes {
		adj := g.AdjacencyBitset()
		plan.adj = adj
		for o, bucket := range plan.buckets {
			for _, v := range bucket {
				member[v>>6] |= 1 << (uint(v) & 63)
			}
			for _, v := range bucket {
				row := adj[v]
				for w := range member {
					if row[w]&member[w] != 0 {
						plan.pairOff[o] = true
						break
					}
				}
				if plan.pairOff[o] {
					break
				}
			}
			for _, v := range bucket {
				member[v>>6] = 0
			}
		}
		return plan
	}
	plan.csr = g.CSR()
	for o, bucket := range plan.buckets {
		for _, v := range bucket {
			member[v>>6] |= 1 << (uint(v) & 63)
		}
	scan:
		for _, v := range bucket {
			row, _ := plan.csr.Row(int(v))
			for _, u := range row {
				if member[u>>6]&(1<<(uint(u)&63)) != 0 {
					plan.pairOff[o] = true
					break scan
				}
			}
		}
		for _, v := range bucket {
			member[v>>6] = 0
		}
	}
	return plan
}

// fastState is the mutable side of the compact-time fast path: which nodes
// can currently receive something from a neighbor, aggregated per schedule
// offset so the engine can jump straight to the next slot on which
// anything — a transmission, a protocol RNG draw, or an injection — can
// happen. It is maintained incrementally from the World's delivery hook.
type fastState struct {
	e    *engine
	plan *compactPlan
	// satCount counts nodes holding every injected packet. While
	// satCount == n the network is quiescent and even adjacent-awake-pair
	// slots are skippable.
	satCount int
	// relevant[v] conservatively over-approximates "some neighbor of v
	// holds a packet v lacks" — the condition under which an awake v can
	// be the target of a transmission (and the shipped protocols consult
	// RNG). It is set when a neighbor receives a packet v lacks and
	// cleared only when v holds every injected packet, so it may stay
	// true after v's neighborhood has nothing left for it; the resulting
	// extra visits are harmless no-ops (the slow path visits every slot).
	relevant []bool
	// relevantBits mirrors relevant as a bitset so noteDeliver can sweep a
	// delivery's neighborhood for not-yet-relevant nodes in a few word
	// operations.
	relevantBits []uint64
	// candCount[o] counts relevant nodes awake at offset o.
	candCount []int32
}

func newFastState(e *engine, plan *compactPlan) *fastState {
	return &fastState{
		e:            e,
		plan:         plan,
		satCount:     e.n, // zero packets injected: everyone holds everything
		relevant:     make([]bool, e.n),
		relevantBits: make([]uint64, (e.n+63)/64),
		candCount:    make([]int32, plan.L),
	}
}

// setRelevant flips v's relevance and keeps the per-offset counters in
// sync.
func (fs *fastState) setRelevant(v int, val bool) {
	fs.relevant[v] = val
	var d int32 = 1
	if val {
		fs.relevantBits[v>>6] |= 1 << (uint(v) & 63)
	} else {
		fs.relevantBits[v>>6] &^= 1 << (uint(v) & 63)
		d = -1
	}
	for _, o := range fs.plan.offsetsOf[v] {
		fs.candCount[o] += d
	}
}

// noteDeliver is the World.onDeliver hook: node just obtained packet p.
// Its neighbors that lack p become relevant; node itself may stop being
// relevant (its last needed packet may have arrived). Deliveries are the
// only events that change relevance between injections, so this keeps the
// invariant exact.
func (fs *fastState) noteDeliver(p, node int) {
	w := fs.e.w
	if w.heldCount[node] == w.injected {
		fs.satCount++
	}
	// Not-yet-relevant neighbors of node. Dense plans sweep the adjacency
	// bitset — a few word operations, since mid-flood almost every neighbor
	// is already relevant and the candidate words are zero. Sparse plans
	// (large graphs) walk the O(degree) CSR row instead.
	if fs.plan.adj != nil {
		row := fs.plan.adj[node]
		for wi, aw := range row {
			cand := aw &^ fs.relevantBits[wi]
			for cand != 0 {
				u := wi<<6 + bits.TrailingZeros64(cand)
				cand &= cand - 1
				if !w.Has(p, u) {
					fs.setRelevant(u, true)
				}
			}
		}
	} else {
		row, _ := fs.plan.csr.Row(node)
		for _, u32 := range row {
			u := int(u32)
			if !fs.relevant[u] && !w.Has(p, u) {
				fs.setRelevant(u, true)
			}
		}
	}
	// Downgrade node itself only on the O(1) certainly-irrelevant
	// condition (it holds every injected packet). A node that still lacks
	// packets stays flagged even if no neighbor currently supplies one —
	// a conservative over-approximation that can only add harmless visits
	// (on a visited slot with nothing to do, contract-honoring protocols
	// admit no candidates and draw no RNG, exactly as on the slow path),
	// and avoids an O(degree) AnyNeeded rescan on every delivery.
	if fs.relevant[node] && w.heldCount[node] == w.injected {
		fs.setRelevant(node, false)
	}
}

// noteInjection recomputes satCount after the source injected new packets:
// every node that was fully satisfied loses that status (except the source,
// which receives the packet in the same slot). Relevance is already
// maintained by noteDeliver firing on the injection's delivery.
func (fs *fastState) noteInjection() {
	w := fs.e.w
	fs.satCount = 0
	for v := 0; v < fs.e.n; v++ {
		if w.heldCount[v] == w.injected {
			fs.satCount++
		}
	}
}

// nextRelevant returns the first slot >= from on which the run's state can
// change: a relevant node wakes, a linked pair is simultaneously awake
// while any node still misses a packet (OF-style defer draws), or the
// source injects. If nothing can happen before the horizon it returns
// e.maxSlots, terminating the compact loop; the skipped tail is accounted
// arithmetically by the caller.
func (fs *fastState) nextRelevant(from int64) int64 {
	e := fs.e
	next := e.maxSlots
	if e.w.injected < e.cfg.M {
		if ni := int64(e.w.injected) * int64(e.interval); ni < next {
			next = ni
		}
	}
	L := int64(fs.plan.L)
	limit := from + L // one full hyperperiod covers every offset
	if limit > next {
		limit = next
	}
	pairLive := fs.satCount < e.n
	for s := from; s < limit; s++ {
		o := s % L
		if fs.candCount[o] > 0 || (pairLive && fs.plan.pairOff[o]) {
			return s
		}
	}
	return next
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int {
	return a / gcd(a, b) * b
}

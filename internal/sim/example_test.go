package sim_test

import (
	"fmt"

	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

// A complete minimal simulation using FuncProtocol: flood one packet down
// a 4-node line with perfect links and always-on schedules — one hop per
// slot, full coverage after 2 slots.
func ExampleFuncProtocol() {
	g := topology.Line(4, 1)
	scheds := []*schedule.Schedule{
		schedule.AlwaysOn(), schedule.AlwaysOn(), schedule.AlwaysOn(), schedule.AlwaysOn(),
	}
	hopper := &sim.FuncProtocol{
		ProtocolName: "hopper",
		IntentsFunc: func(w *sim.World) []sim.Intent {
			var out []sim.Intent
			for _, r := range w.AwakeList() {
				if r == 0 {
					continue
				}
				if pkt := w.OldestNeeded(r-1, r); pkt >= 0 {
					out = append(out, sim.Intent{From: r - 1, To: r, Packet: pkt})
				}
			}
			return out
		},
		Collisions: true,
	}
	res, err := sim.Run(sim.Config{
		Graph: g, Schedules: scheds, Protocol: hopper,
		M: 1, Coverage: 1, Seed: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("delay:", res.Delay[0], "slots, transmissions:", res.Transmissions)
	// Output: delay: 2 slots, transmissions: 3
}

// Sleep latency in action: with a 10% duty cycle receiver awake only at
// slot 7, the packet waits for the receiver's schedule.
func ExampleRun_sleepLatency() {
	g := topology.Line(2, 1)
	scheds := []*schedule.Schedule{
		schedule.AlwaysOn(),
		schedule.NewSingleSlot(10, 7),
	}
	forward := &sim.FuncProtocol{
		IntentsFunc: func(w *sim.World) []sim.Intent {
			if w.IsAwake(1) {
				if pkt := w.OldestNeeded(0, 1); pkt >= 0 {
					return []sim.Intent{{From: 0, To: 1, Packet: pkt}}
				}
			}
			return nil
		},
	}
	res, _ := sim.Run(sim.Config{
		Graph: g, Schedules: scheds, Protocol: forward,
		M: 1, Coverage: 1, Seed: 1,
	})
	fmt.Println("sleep latency:", res.Delay[0], "slots")
	// Output: sleep latency: 7 slots
}

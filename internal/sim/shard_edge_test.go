package sim

// Edge-case certification for the sharded path's pool and planner
// machinery: degenerate worker/node ratios, single-candidate batches (the
// inline fast path), and hyperperiods with empty awake buckets. Each case
// pins the full Result against workers=1 on both time paths, plus — for
// the RNG-free planner protocol — against the serial path itself.

import (
	"reflect"
	"runtime"
	"testing"

	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/topology"
)

// greedyPlanner is a deterministic, RNG-free protocol implemented both as
// a serial Intents scan and as a ShardPlanner: each awake receiver is
// served by its lowest-id unassigned neighbor holding a packet it needs.
// The two implementations make identical decisions, so serial and sharded
// runs must agree bit for bit wherever the engine's own draws are
// degenerate (PRR 1, no sync errors) — giving the sim package a
// planner-path oracle that does not depend on the flood protocols.
type greedyPlanner struct {
	assigned []bool
	emitted  []int32
	buf      []Intent
}

func (p *greedyPlanner) Name() string          { return "greedy-planner" }
func (p *greedyPlanner) CollisionsApply() bool { return true }
func (p *greedyPlanner) Overhears() bool       { return false }

func (p *greedyPlanner) Reset(w *World) {
	p.assigned = make([]bool, w.Graph.N())
}

func (p *greedyPlanner) Intents(w *World) []Intent {
	out := p.buf[:0]
	for _, r := range w.AwakeList() {
		for _, l := range w.Graph.Neighbors(r) {
			if p.assigned[l.To] {
				continue
			}
			if pkt := w.OldestNeeded(l.To, r); pkt >= 0 {
				p.assigned[l.To] = true
				out = append(out, Intent{From: l.To, To: r, Packet: pkt})
				break
			}
		}
	}
	p.buf = out
	for _, in := range out {
		p.assigned[in.From] = false
	}
	return out
}

func (p *greedyPlanner) PlanReceiver(w *World, r int, slot *rngutil.Stream, buf []Candidate) []Candidate {
	for _, l := range w.Graph.Neighbors(r) {
		if pkt := w.OldestNeeded(l.To, r); pkt >= 0 {
			buf = append(buf, Candidate{Node: int32(l.To), Packet: int32(pkt), PRR: l.PRR})
		}
	}
	return buf
}

func (p *greedyPlanner) SelectIntents(w *World, plan *SlotPlan, emit func(in Intent, prr float64)) {
	sel := p.emitted[:0]
	for i := 0; i < plan.Len(); i++ {
		r := plan.Receiver(i)
		for _, c := range plan.Candidates(i) {
			if p.assigned[c.Node] {
				continue
			}
			p.assigned[c.Node] = true
			sel = append(sel, c.Node)
			emit(Intent{From: int(c.Node), To: r, Packet: int(c.Packet)}, c.PRR)
			break
		}
	}
	for _, s := range sel {
		p.assigned[s] = false
	}
	p.emitted = sel
}

var _ ShardPlanner = (*greedyPlanner)(nil)

// lineGraph builds an n-node path with uniform link quality.
func lineGraph(n int, prr float64) *topology.Graph {
	g := topology.New(n)
	for v := 1; v < n; v++ {
		g.AddLink(v-1, v, prr)
	}
	g.SortNeighbors()
	return g
}

// edgeRun executes the greedy planner protocol on the given schedules with
// the requested worker count and time path.
func edgeRun(t *testing.T, g *topology.Graph, scheds []*schedule.Schedule, workers int, compact bool) *Result {
	t.Helper()
	res, err := Run(Config{
		Graph:            g,
		Schedules:        scheds,
		Protocol:         &greedyPlanner{},
		M:                2,
		Coverage:         1,
		Seed:             7,
		MaxSlots:         50000,
		RecordReceptions: true,
		Workers:          workers,
		CompactTime:      compact,
	})
	if err != nil {
		t.Fatalf("workers=%d compact=%v: %v", workers, compact, err)
	}
	return res
}

// checkEdgeCase pins every worker count in the list — plus the serial path
// — against workers=1, on both time paths. The greedy planner is RNG-free
// and the config draw-free (PRR 1, no sync errors, no capture), so all of
// them must agree bit for bit.
func checkEdgeCase(t *testing.T, g *topology.Graph, scheds []*schedule.Schedule, workerCounts []int) {
	t.Helper()
	base := edgeRun(t, g, scheds, 1, false)
	if base.Transmissions == 0 {
		t.Fatal("degenerate case: nothing happened, edge path not exercised")
	}
	if serial := edgeRun(t, g, scheds, 0, false); !reflect.DeepEqual(serial, base) {
		t.Error("serial path diverged from sharded workers=1 on the deterministic subspace")
	}
	for _, wk := range workerCounts {
		if got := edgeRun(t, g, scheds, wk, false); !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d diverged from workers=1", wk)
		}
	}
	cbase := edgeRun(t, g, scheds, 1, true)
	if !reflect.DeepEqual(cbase, base) {
		t.Error("compact path diverged from reference path at workers=1")
	}
	for _, wk := range workerCounts {
		if got := edgeRun(t, g, scheds, wk, true); !reflect.DeepEqual(got, cbase) {
			t.Errorf("compact workers=%d diverged from compact workers=1", wk)
		}
	}
}

// TestShardWorkersExceedNodes runs far more workers than nodes: every
// batch has fewer items than pool slots, so most workers must park on
// empty claim ranges without perturbing results.
func TestShardWorkersExceedNodes(t *testing.T) {
	g := lineGraph(4, 1)
	checkEdgeCase(t, g, schedule.AssignStaggered(4, 2), []int{6, 32})
}

// TestShardNumCPUWorkers pins workers=runtime.NumCPU() — the value
// production callers pass — against workers=1, alongside the chaos
// configuration used by the invariance suite.
func TestShardNumCPUWorkers(t *testing.T) {
	ncpu := runtime.NumCPU()
	if ncpu < 2 {
		ncpu = 2
	}
	g := lineGraph(24, 1)
	checkEdgeCase(t, g, schedule.AssignStaggered(24, 4), []int{ncpu})
	for seed := uint64(0); seed < 4; seed++ {
		base := chaosRun(t, seed, 1, false)
		if got := chaosRun(t, seed, ncpu, false); !reflect.DeepEqual(got, base) {
			t.Errorf("seed %d: workers=NumCPU(%d) diverged from workers=1", seed, ncpu)
		}
	}
}

// TestShardSingleAwakeNodeSlots gives every node its own exclusive slot
// (period n, one node per phase): every awake bucket has exactly one
// receiver, so every planner batch takes the single-chunk inline path and
// the merge phase sees at most one success per slot.
func TestShardSingleAwakeNodeSlots(t *testing.T) {
	const n = 10
	g := lineGraph(n, 1)
	scheds := make([]*schedule.Schedule, n)
	for i := range scheds {
		scheds[i] = schedule.NewSingleSlot(n, i)
	}
	checkEdgeCase(t, g, scheds, []int{4, 16})
}

// TestShardZeroAwakeGaps aligns every node on phase 0 of a period-8
// schedule: seven of every eight slots have an empty awake bucket, so the
// sharded resolver must repeatedly handle zero-item batches (and the
// compact path must skip the gaps identically).
func TestShardZeroAwakeGaps(t *testing.T) {
	const n = 12
	g := lineGraph(n, 1)
	scheds := make([]*schedule.Schedule, n)
	for i := range scheds {
		scheds[i] = schedule.NewSingleSlot(8, 0)
	}
	checkEdgeCase(t, g, scheds, []int{4})
}

// TestShardStatsOutParam certifies the Config.ShardStats out-parameter:
// attaching it never perturbs results, and after a run with forced
// multi-chunk batches its accounting is internally consistent.
func TestShardStatsOutParam(t *testing.T) {
	restore := setMinChunk(1)
	defer restore()
	g := lineGraph(24, 1)
	scheds := schedule.AssignStaggered(24, 4)
	plain := edgeRun(t, g, scheds, 4, false)

	var st ShardStats
	res, err := Run(Config{
		Graph:            g,
		Schedules:        scheds,
		Protocol:         &greedyPlanner{},
		M:                2,
		Coverage:         1,
		Seed:             7,
		MaxSlots:         50000,
		RecordReceptions: true,
		Workers:          4,
		ShardStats:       &st,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, plain) {
		t.Fatal("attaching ShardStats changed the result")
	}
	if st.Batches <= 0 || st.Chunks < st.Batches || st.Items < st.Chunks {
		t.Fatalf("implausible batch accounting: %+v", st)
	}
	if st.WorkNS <= 0 || st.SpanNS <= 0 || st.BatchWallNS <= 0 {
		t.Fatalf("missing timing accounting: %+v", st)
	}
	if st.SpanNS > st.WorkNS+st.BatchWallNS {
		t.Fatalf("modeled span exceeds any plausible bound: %+v", st)
	}
}

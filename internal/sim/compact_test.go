package sim

// Tests for the compact-time-scale fast path: plan construction, fallback
// behaviour for irregular schedule tables, and property-based equivalence
// against the slot-by-slot reference path. The full-protocol equivalence
// suite (OPT/DBAO/OF/Naive over real topologies, including trace-log byte
// identity) lives in internal/flood/compact_test.go because package flood
// imports sim.

import (
	"reflect"
	"testing"
	"testing/quick"

	"ldcflood/internal/fault"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/topology"
)

// compactChaosProtocol is a randomized protocol honouring the CompactTime
// contract: it consults its RNG only after finding a neighbor that holds a
// needed packet, so the fast path's relevant-slot skipping cannot change
// its random stream. Compare chaosProtocol (property_test.go), which draws
// unconditionally and is therefore only valid on the slot-by-slot path.
type compactChaosProtocol struct {
	rng       *rngutil.Stream
	density   float64
	collide   bool
	overhear  bool
	intentBuf []Intent
}

func (c *compactChaosProtocol) Name() string          { return "compact-chaos" }
func (c *compactChaosProtocol) Reset(*World)          {}
func (c *compactChaosProtocol) CollisionsApply() bool { return c.collide }
func (c *compactChaosProtocol) Overhears() bool       { return c.overhear }
func (c *compactChaosProtocol) Intents(w *World) []Intent {
	c.intentBuf = c.intentBuf[:0]
	for _, r := range w.AwakeList() {
		for _, l := range w.Graph.Neighbors(r) {
			if pkt := w.OldestNeeded(l.To, r); pkt >= 0 && c.rng.Bool(c.density) {
				c.intentBuf = append(c.intentBuf, Intent{From: l.To, To: r, Packet: pkt})
			}
		}
	}
	return c.intentBuf
}

// TestCompactPlanStructure checks the precomputed hyperperiod buckets on a
// handcrafted schedule table.
func TestCompactPlanStructure(t *testing.T) {
	g := topology.Line(3, 1)
	scheds := []*schedule.Schedule{
		schedule.NewSingleSlot(2, 0), // node 0 awake at even slots
		schedule.NewSingleSlot(2, 0), // node 1 awake at even slots
		schedule.NewSingleSlot(3, 1), // node 2 awake at slots ≡ 1 (mod 3)
	}
	plan := newCompactPlan(g, scheds)
	if plan == nil {
		t.Fatal("newCompactPlan returned nil for a regular table")
	}
	if plan.L != 6 {
		t.Fatalf("hyperperiod = %d, want 6", plan.L)
	}
	wantBuckets := [][]int32{{0, 1}, {2}, {0, 1}, nil, {0, 1, 2}, nil}
	if !reflect.DeepEqual(plan.buckets, wantBuckets) {
		t.Errorf("buckets = %v, want %v", plan.buckets, wantBuckets)
	}
	// Nodes 0-1 are linked and share offsets {0,2,4}; node 2's only linked
	// awake overlap is with node 1 at offset 4.
	wantPair := []bool{true, false, true, false, true, false}
	if !reflect.DeepEqual(plan.pairOff, wantPair) {
		t.Errorf("pairOff = %v, want %v", plan.pairOff, wantPair)
	}
	wantOffsets := [][]int32{{0, 2, 4}, {0, 2, 4}, {1, 4}}
	if !reflect.DeepEqual(plan.offsetsOf, wantOffsets) {
		t.Errorf("offsetsOf = %v, want %v", plan.offsetsOf, wantOffsets)
	}
}

// TestCompactPlanIrregularFallback: coprime large periods make the
// hyperperiod exceed the internal bound, so the plan is refused and Run
// silently uses the slot-by-slot path — with identical results.
func TestCompactPlanIrregularFallback(t *testing.T) {
	g := topology.Line(2, 1)
	scheds := []*schedule.Schedule{
		schedule.NewSingleSlot(97, 0),
		schedule.NewSingleSlot(89, 3), // lcm(97, 89) = 8633 > 8192
	}
	if plan := newCompactPlan(g, scheds); plan != nil {
		t.Fatalf("newCompactPlan = %+v, want nil for hyperperiod 8633", plan)
	}
	cfg := Config{
		Graph:     g,
		Schedules: scheds,
		Protocol: &FuncProtocol{
			IntentsFunc: func(w *World) []Intent {
				var out []Intent
				for _, r := range w.AwakeList() {
					for _, l := range w.Graph.Neighbors(r) {
						if pkt := w.OldestNeeded(l.To, r); pkt >= 0 {
							out = append(out, Intent{From: l.To, To: r, Packet: pkt})
						}
					}
				}
				return out
			},
		},
		M:        2,
		Coverage: 1,
		Seed:     7,
	}
	slow, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CompactTime = true
	fast, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(slow, fast) {
		t.Errorf("fallback result diverged:\nslow %+v\nfast %+v", slow, fast)
	}
}

// TestCompactAdaptFallsBack: an Adapt hook disables the fast path (the
// plan's precomputed buckets would go stale), and results stay identical.
func TestCompactAdaptFallsBack(t *testing.T) {
	g := topology.Line(4, 1)
	r := rngutil.New(11)
	cfg := Config{
		Graph:     g,
		Schedules: schedule.AssignUniform(4, 4, r),
		Protocol: &FuncProtocol{
			IntentsFunc: func(w *World) []Intent {
				var out []Intent
				for _, rr := range w.AwakeList() {
					for _, l := range w.Graph.Neighbors(rr) {
						if pkt := w.OldestNeeded(l.To, rr); pkt >= 0 {
							out = append(out, Intent{From: l.To, To: rr, Packet: pkt})
						}
					}
				}
				return out
			},
		},
		M:        1,
		Coverage: 1,
		Seed:     11,
		Adapt: func(w *World, scheds []*schedule.Schedule) {
			scheds[0] = schedule.NewSingleSlot(2, 0)
		},
		AdaptEvery: 8,
	}
	slow, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CompactTime = true
	fast, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(slow, fast) {
		t.Errorf("Adapt fallback diverged:\nslow %+v\nfast %+v", slow, fast)
	}
}

// TestCompactFaultGate pins which fault schedules keep the fast path: a
// static schedule (pure per-link PRR scaling) does, any dynamic one (churn,
// jams, moving chains) silently selects the reference path. End-to-end
// equivalence of the fallback lives in internal/flood/fault_equiv_test.go.
func TestCompactFaultGate(t *testing.T) {
	g := topology.Line(2, 1)
	scheds := []*schedule.Schedule{
		schedule.NewSingleSlot(2, 0),
		schedule.NewSingleSlot(2, 1),
	}
	mk := func(s *fault.Schedule) *engine {
		e := &engine{cfg: Config{CompactTime: true, Graph: g}, scheds: scheds}
		if s != nil {
			e.inj = s.Compile(g, rngutil.New(1))
		}
		return e
	}
	if mk(nil).planCompact() == nil {
		t.Error("no faults: fast path refused")
	}
	static := &fault.Schedule{Links: []fault.LinkRule{{BadScale: 0.5, StartBad: 1}}}
	if mk(static).planCompact() == nil {
		t.Error("static schedule: fast path refused")
	}
	for name, dyn := range map[string]*fault.Schedule{
		"crash": {Crashes: []fault.Crash{{Node: 1, At: 3, RebootAt: -1}}},
		"jam":   {Jams: []fault.Jam{{From: 0, Until: 4, Nodes: []int{1}}}},
		"chain": {Links: []fault.LinkRule{{PGB: 0.1, PBG: 0.1, BadScale: 0.5}}},
	} {
		if mk(dyn).planCompact() != nil {
			t.Errorf("%s schedule: fast path taken despite dynamic faults", name)
		}
	}
}

// TestQuickCompactEquivalence is the core equivalence property: for random
// connected graphs, random uniform schedule assignments and a randomized
// contract-honouring protocol, CompactTime=true and false produce
// bit-identical Results — every metric, timestamp and per-node counter.
func TestQuickCompactEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		r := rngutil.New(seed)
		g := randomConnectedGraph(r)
		n := g.N()
		period := 1 + r.Intn(12)
		m := 1 + r.Intn(4)
		scheds := schedule.AssignUniform(n, period, r.SubName("schedule"))
		mkProto := func() *compactChaosProtocol {
			return &compactChaosProtocol{
				rng:      rngutil.New(seed).SubName("chaos"),
				density:  0.1 + 0.8*r.Float64(),
				collide:  r.Bool(0.5),
				overhear: r.Bool(0.5),
			}
		}
		// Build both protocol instances before drawing density/collide so
		// the two runs are configured identically.
		pa, pb := mkProto(), mkProto()
		pb.density, pb.collide, pb.overhear = pa.density, pa.collide, pa.overhear
		cfg := Config{
			Graph:            g,
			Schedules:        scheds,
			Protocol:         pa,
			M:                m,
			Coverage:         1,
			Seed:             seed,
			MaxSlots:         20000,
			SyncErrorProb:    0.1 * r.Float64(),
			CaptureProb:      r.Float64(),
			RecordReceptions: true,
			InjectInterval:   1 + r.Intn(3),
		}
		slow, err := Run(cfg)
		if err != nil {
			t.Logf("seed %d slow: %v", seed, err)
			return false
		}
		cfg.Protocol = pb
		cfg.CompactTime = true
		fast, err := Run(cfg)
		if err != nil {
			t.Logf("seed %d fast: %v", seed, err)
			return false
		}
		if !reflect.DeepEqual(slow, fast) {
			t.Logf("seed %d: results diverge\nslow %+v\nfast %+v", seed, slow, fast)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestCompactIncompleteRunAccounting: when coverage is unreachable the fast
// path must still report the slow path's TotalSlots (the full horizon) and
// the same arithmetic awake-slot totals.
func TestCompactIncompleteRunAccounting(t *testing.T) {
	// Two disconnected pairs: packets injected at node 0 can never reach
	// nodes 2-3, so full coverage is impossible.
	g := topology.New(4)
	g.AddLink(0, 1, 1)
	g.AddLink(2, 3, 1)
	g.SortNeighbors()
	scheds := []*schedule.Schedule{
		schedule.NewSingleSlot(4, 0),
		schedule.NewSingleSlot(4, 2),
		schedule.NewSingleSlot(4, 1),
		schedule.NewSingleSlot(4, 3),
	}
	cfg := Config{
		Graph:     g,
		Schedules: scheds,
		Protocol: &FuncProtocol{
			IntentsFunc: func(w *World) []Intent {
				var out []Intent
				for _, r := range w.AwakeList() {
					for _, l := range w.Graph.Neighbors(r) {
						if pkt := w.OldestNeeded(l.To, r); pkt >= 0 {
							out = append(out, Intent{From: l.To, To: r, Packet: pkt})
						}
					}
				}
				return out
			},
		},
		M:        2,
		Coverage: 1,
		Seed:     3,
		MaxSlots: 5000,
	}
	slow, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CompactTime = true
	fast, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Completed || fast.Completed {
		t.Fatal("test premise broken: run completed on a disconnected graph")
	}
	if !reflect.DeepEqual(slow, fast) {
		t.Errorf("incomplete-run results diverge:\nslow %+v\nfast %+v", slow, fast)
	}
	if fast.TotalSlots != 5000 {
		t.Errorf("TotalSlots = %d, want the full 5000-slot horizon", fast.TotalSlots)
	}
}

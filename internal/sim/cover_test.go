package sim

import (
	"errors"
	"testing"

	"ldcflood/internal/topology"
)

func TestCoverTarget(t *testing.T) {
	cases := []struct {
		coverage float64
		n        int
		want     int
	}{
		// Zero coverage clamps up to one node (Run defaults Coverage 0 to
		// 0.99 before computing the target, but the helper must still be
		// total).
		{0, 298, 1},
		{0, 1, 1},
		// Tiny coverage still needs at least the source.
		{1e-12, 298, 1},
		{1e-12, 4, 1},
		// Exact products must not round up an extra node.
		{0.5, 10, 5},
		{0.25, 8, 2},
		{0.5, 2, 1},
		// Fractional products round up (⌈·⌉).
		{0.99, 298, 296}, // the paper's GreenOrbs target: ⌈295.02⌉
		{0.99, 100, 99},
		{0.99, 4, 4},
		{0.999, 4, 4},
		{0.34, 3, 2},
		// Full coverage is everybody, never n+1.
		{1.0, 298, 298},
		{1.0, 1, 1},
		{1.0, 7, 7},
	}
	for _, c := range cases {
		if got := coverTarget(c.coverage, c.n); got != c.want {
			t.Errorf("coverTarget(%v, %d) = %d, want %d", c.coverage, c.n, got, c.want)
		}
	}
}

func TestCoverTargetReachesResult(t *testing.T) {
	g := topology.Line(4, 1)
	res, err := Run(Config{Graph: g, Schedules: alwaysOn(4), Protocol: chain{}, M: 1, Coverage: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CoverNodes != 4 {
		t.Fatalf("CoverNodes = %d, want 4", res.CoverNodes)
	}
}

func TestInterruptAbortsRun(t *testing.T) {
	g := topology.Line(4, 1)
	var polled []int64
	_, err := Run(Config{
		Graph:     g,
		Schedules: alwaysOn(4),
		Protocol:  silent{}, // never covers: only the hook can end the run early
		M:         1,
		Coverage:  1,
		Seed:      1,
		MaxSlots:  1 << 20,
		Interrupt: func(slot int64) bool {
			polled = append(polled, slot)
			return slot >= 10
		},
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if len(polled) != 11 || polled[10] != 10 {
		t.Fatalf("hook polled %d times (last %v), want once per slot through slot 10",
			len(polled), polled[len(polled)-1])
	}
}

func TestInterruptNilIsNoop(t *testing.T) {
	g := topology.Line(4, 1)
	res, err := Run(Config{Graph: g, Schedules: alwaysOn(4), Protocol: chain{}, M: 2, Coverage: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run incomplete")
	}
}

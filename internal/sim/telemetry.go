package sim

// Telemetry threading for both engine execution paths. The engine resolves
// every instrument pointer once at setup (simTel), ticks a slot counter
// live, and drains the Result accumulators into the registry as deltas —
// periodically (every telFlushEvery visited slots) and at run end. The
// accumulators themselves are the engine's existing Result fields, so the
// hot loop gains no new arithmetic: when telemetry is attached the
// per-slot cost is one atomic add, and when it is not (Config.Telemetry ==
// nil) every site is a single predictable e.tel != nil branch.
//
// The counter catalog (names, units, incrementing path) is documented in
// docs/OBSERVABILITY.md; keep the two in sync.

import "ldcflood/internal/telemetry"

// telFlushEvery is how many visited slots pass between periodic drains of
// the Result accumulators into the telemetry registry. Small enough that a
// watcher of a long run sees counters move, large enough that the flush
// (a couple dozen atomic adds) never shows up in a profile.
const telFlushEvery = 4096

// simTel holds the engine's resolved instrument pointers plus the
// last-flushed value of every drained accumulator, so concurrent runs
// sharing one registry each contribute exact deltas.
type simTel struct {
	slotsVisited *telemetry.Counter
	slotsSkipped *telemetry.Counter

	txAttempts  *telemetry.Counter
	txSuccess   *telemetry.Counter
	txLoss      *telemetry.Counter
	txCollision *telemetry.Counter
	txBusy      *telemetry.Counter
	txSync      *telemetry.Counter
	txJammed    *telemetry.Counter
	txCaptured  *telemetry.Counter
	overheard   *telemetry.Counter

	pktInjected *telemetry.Counter
	pktCovered  *telemetry.Counter

	crashes    *telemetry.Counter
	reboots    *telemetry.Counter
	dropped    *telemetry.Counter
	chainFlips *telemetry.Counter

	// Sharded-path instruments, nil when Workers == 0. The batch/chunk
	// counters drain the pool's claim accounting; the planner/merge
	// counters drain the engine's deterministic per-slot tallies (their
	// values are independent of worker count and of whether telemetry is
	// attached — attaching a registry never changes results).
	shardBatches *telemetry.Counter
	shardChunks  *telemetry.Counter
	shardItems   *telemetry.Counter
	planCands    *telemetry.Counter
	mergeRecv    *telemetry.Counter
	mergeOhCands *telemetry.Counter

	visited int64 // slots this run has visited (== slot loop iterations)
	prev    telPrev
}

// telPrev is the last-flushed snapshot of the drained accumulators.
type telPrev struct {
	tx, loss, coll, busy, sync, jam, capt, over int
	injected, covered                           int
	crashes, reboots, dropped                   int
	flips                                       int64

	shardBatches, shardChunks, shardItems int64
	planCands, mergeRecv, mergeOhCands    int64
}

// newSimTel resolves the sim counter set against reg and counts the run
// start and chosen execution path (compact reports whether the fast path
// was selected; workers > 0 reports the sharded resolution mode, which
// composes with either path).
func newSimTel(reg *telemetry.Registry, compact bool, workers int) *simTel {
	reg.Counter("sim.runs.started").Inc()
	if compact {
		reg.Counter("sim.path.compact").Inc()
	} else {
		reg.Counter("sim.path.slots").Inc()
	}
	if workers > 0 {
		reg.Counter("sim.path.sharded").Inc()
		reg.Gauge("sim.workers").Set(int64(workers))
	}
	st := &simTel{
		slotsVisited: reg.Counter("sim.slots.visited"),
		slotsSkipped: reg.Counter("sim.slots.skipped"),
		txAttempts:   reg.Counter("sim.tx.attempts"),
		txSuccess:    reg.Counter("sim.tx.success"),
		txLoss:       reg.Counter("sim.tx.loss"),
		txCollision:  reg.Counter("sim.tx.collision"),
		txBusy:       reg.Counter("sim.tx.busy"),
		txSync:       reg.Counter("sim.tx.sync_miss"),
		txJammed:     reg.Counter("sim.tx.jammed"),
		txCaptured:   reg.Counter("sim.tx.captured"),
		overheard:    reg.Counter("sim.overheard"),
		pktInjected:  reg.Counter("sim.packets.injected"),
		pktCovered:   reg.Counter("sim.packets.covered"),
		crashes:      reg.Counter("fault.crashes"),
		reboots:      reg.Counter("fault.reboots"),
		dropped:      reg.Counter("fault.packets_dropped"),
		chainFlips:   reg.Counter("fault.chain_flips"),
	}
	if workers > 0 {
		st.shardBatches = reg.Counter("sim.shard.batches")
		st.shardChunks = reg.Counter("sim.shard.chunks")
		st.shardItems = reg.Counter("sim.shard.items")
		st.planCands = reg.Counter("sim.shard.planner.candidates")
		st.mergeRecv = reg.Counter("sim.shard.merge.receivers")
		st.mergeOhCands = reg.Counter("sim.shard.merge.overhear_cands")
	}
	return st
}

// tick is called once per visited slot by both execution paths. It keeps
// sim.slots.visited live and periodically drains the accumulators.
func (st *simTel) tick(e *engine) {
	st.visited++
	st.slotsVisited.Inc()
	if st.visited%telFlushEvery == 0 {
		st.flush(e)
	}
}

// addDelta adds the movement of an int accumulator since the last flush
// and updates the stored floor.
func addDelta(c *telemetry.Counter, cur int, prev *int) {
	if d := cur - *prev; d != 0 {
		c.Add(int64(d))
		*prev = cur
	}
}

// addDelta64 is addDelta for int64 accumulators.
func addDelta64(c *telemetry.Counter, cur int64, prev *int64) {
	if d := cur - *prev; d != 0 {
		c.Add(d)
		*prev = cur
	}
}

// flush drains the Result accumulators (and the fault injector's chain
// flips) into the registry as deltas.
func (st *simTel) flush(e *engine) {
	res := e.res
	// Successful transmissions are derived (attempts minus failures), so
	// take the previous derived value before the per-field floors move.
	prevSuccess := st.prev.tx - (st.prev.loss + st.prev.coll + st.prev.busy + st.prev.sync + st.prev.jam)
	addDelta(st.txAttempts, res.Transmissions, &st.prev.tx)
	if d := (res.Transmissions - res.Failures()) - prevSuccess; d != 0 {
		st.txSuccess.Add(int64(d))
	}
	addDelta(st.txLoss, res.LossFailures, &st.prev.loss)
	addDelta(st.txCollision, res.CollisionFailures, &st.prev.coll)
	addDelta(st.txBusy, res.BusyFailures, &st.prev.busy)
	addDelta(st.txSync, res.SyncFailures, &st.prev.sync)
	addDelta(st.txJammed, res.JamFailures, &st.prev.jam)
	addDelta(st.txCaptured, res.Captures, &st.prev.capt)
	addDelta(st.overheard, res.Overheard, &st.prev.over)
	addDelta(st.pktInjected, e.w.injected, &st.prev.injected)
	addDelta(st.pktCovered, e.covered, &st.prev.covered)
	addDelta(st.crashes, res.Crashes, &st.prev.crashes)
	addDelta(st.reboots, res.Reboots, &st.prev.reboots)
	addDelta(st.dropped, res.CrashDropped, &st.prev.dropped)
	if e.inj != nil {
		if d := e.inj.ChainFlips() - st.prev.flips; d != 0 {
			st.chainFlips.Add(d)
			st.prev.flips = e.inj.ChainFlips()
		}
	}
	if st.shardBatches != nil {
		addDelta64(st.shardBatches, e.pool.batches, &st.prev.shardBatches)
		addDelta64(st.shardChunks, e.pool.chunks, &st.prev.shardChunks)
		addDelta64(st.shardItems, e.pool.items, &st.prev.shardItems)
		addDelta64(st.planCands, e.statPlanCands, &st.prev.planCands)
		addDelta64(st.mergeRecv, e.statMergeRecv, &st.prev.mergeRecv)
		addDelta64(st.mergeOhCands, e.statOhCands, &st.prev.mergeOhCands)
	}
}

// finish performs the run-end drain: the final accumulator flush, the
// skipped-slot accounting (TotalSlots minus slots actually visited — zero
// on the reference path, the dormant stretches the compact path never
// iterated otherwise), and the completion counter.
func (st *simTel) finish(e *engine, reg *telemetry.Registry) {
	st.flush(e)
	if skipped := e.res.TotalSlots - st.visited; skipped > 0 {
		st.slotsSkipped.Add(skipped)
	}
	reg.Counter("sim.runs.completed").Inc()
}

package sim

// Property tests driving the engine with randomized-but-valid protocols
// and asserting engine invariants hold for every behaviour a protocol can
// legally exhibit.

import (
	"testing"
	"testing/quick"

	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/topology"
)

// chaosProtocol emits a random valid subset of possible transmissions each
// slot, with random collision/overhearing modes fixed per run.
type chaosProtocol struct {
	rng       *rngutil.Stream
	density   float64
	collide   bool
	overhear  bool
	intentBuf []Intent
}

func (c *chaosProtocol) Name() string          { return "chaos" }
func (c *chaosProtocol) Reset(*World)          {}
func (c *chaosProtocol) CollisionsApply() bool { return c.collide }
func (c *chaosProtocol) Overhears() bool       { return c.overhear }
func (c *chaosProtocol) Intents(w *World) []Intent {
	c.intentBuf = c.intentBuf[:0]
	for _, r := range w.AwakeList() {
		for _, l := range w.Graph.Neighbors(r) {
			if !c.rng.Bool(c.density) {
				continue
			}
			if pkt := w.OldestNeeded(l.To, r); pkt >= 0 {
				c.intentBuf = append(c.intentBuf, Intent{From: l.To, To: r, Packet: pkt})
			}
		}
	}
	return c.intentBuf
}

func randomConnectedGraph(r *rngutil.Stream) *topology.Graph {
	n := 3 + r.Intn(20)
	g := topology.New(n)
	for v := 1; v < n; v++ {
		g.AddLink(v, r.Intn(v), 0.2+0.8*r.Float64())
	}
	extra := r.Intn(2 * n)
	for i := 0; i < extra; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasLink(u, v) {
			g.AddLink(u, v, 0.2+0.8*r.Float64())
		}
	}
	g.SortNeighbors()
	return g
}

// Property: for any random graph, schedule assignment and chaotic (but
// valid) protocol behaviour, the engine's books balance:
//   - Transmissions == successes + Failures() + redundant, where successes
//     equals the number of unicast (non-overheard, non-inject) deliveries;
//   - per-packet times are consistent (cover >= inject, first-hop <= cover);
//   - TxPerNode sums to Transmissions.
func TestQuickEngineAccounting(t *testing.T) {
	f := func(seed uint64) bool {
		r := rngutil.New(seed)
		g := randomConnectedGraph(r)
		n := g.N()
		period := 1 + r.Intn(8)
		m := 1 + r.Intn(4)
		proto := &chaosProtocol{
			rng:      r.SubName("chaos"),
			density:  0.1 + 0.8*r.Float64(),
			collide:  r.Bool(0.5),
			overhear: r.Bool(0.5),
		}
		res, err := Run(Config{
			Graph:     g,
			Schedules: schedule.AssignUniform(n, period, r.SubName("schedule")),
			Protocol:  proto,
			M:         m,
			Coverage:  1,
			Seed:      seed,
			MaxSlots:  20000,
			// Exercise the optional features too.
			SyncErrorProb:    0.1 * r.Float64(),
			CaptureProb:      r.Float64(),
			RecordReceptions: true,
		})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Deliveries via unicast: count distinct receptions minus overheard
		// minus injections (source receives by injection only).
		unicastDeliveries := 0
		for p := 0; p < m; p++ {
			for node := 0; node < n; node++ {
				if res.NodeRecvTime[p][node] >= 0 && node != 0 {
					unicastDeliveries++
				}
			}
		}
		unicastDeliveries -= res.Overheard
		if unicastDeliveries < 0 {
			return false
		}
		if res.Transmissions != unicastDeliveries+res.Failures() {
			t.Logf("seed %d: tx %d != deliveries %d + failures %d",
				seed, res.Transmissions, unicastDeliveries, res.Failures())
			return false
		}
		sum := 0
		for _, c := range res.TxPerNode {
			sum += c
		}
		if sum != res.Transmissions {
			return false
		}
		for p := 0; p < m; p++ {
			if res.CoverTime[p] >= 0 && res.CoverTime[p] < res.InjectTime[p] {
				return false
			}
			if res.FirstHopDelay[p] >= 0 && res.CoverTime[p] >= 0 &&
				res.FirstHopDelay[p] > res.CoverTime[p]-res.InjectTime[p] {
				return false
			}
			// Source always holds its own packets from injection.
			if res.NodeRecvTime[p][0] != res.InjectTime[p] && res.InjectTime[p] >= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: possession is monotone and reception times are consistent with
// coverage counts.
func TestQuickReceptionConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		r := rngutil.New(seed)
		g := randomConnectedGraph(r)
		proto := &chaosProtocol{
			rng:     r.SubName("chaos"),
			density: 0.5,
			collide: true,
		}
		m := 1 + r.Intn(3)
		res, err := Run(Config{
			Graph:            g,
			Schedules:        schedule.AssignUniform(g.N(), 4, r.SubName("schedule")),
			Protocol:         proto,
			M:                m,
			Coverage:         0.9,
			Seed:             seed,
			MaxSlots:         20000,
			RecordReceptions: true,
		})
		if err != nil {
			return false
		}
		for p := 0; p < m; p++ {
			if res.CoverTime[p] < 0 {
				continue
			}
			// At the cover time, at least CoverNodes nodes had received.
			got := 0
			for node := 0; node < g.N(); node++ {
				if rt := res.NodeRecvTime[p][node]; rt >= 0 && rt <= res.CoverTime[p] {
					got++
				}
			}
			if got < res.CoverNodes {
				t.Logf("seed %d packet %d: %d receptions by cover time, want >= %d",
					seed, p, got, res.CoverNodes)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

package sim

import (
	"math"
	"testing"

	"ldcflood/internal/schedule"
	"ldcflood/internal/topology"
)

// chain is a stub protocol: every holder forwards to the next node on a
// line topology (node i -> i+1) whenever that node is awake.
type chain struct{}

func (chain) Name() string          { return "chain" }
func (chain) Reset(*World)          {}
func (chain) CollisionsApply() bool { return true }
func (chain) Overhears() bool       { return false }
func (chain) Intents(w *World) []Intent {
	var out []Intent
	for _, r := range w.AwakeList() {
		s := r - 1
		if s < 0 {
			continue
		}
		if pkt := w.OldestNeeded(s, r); pkt >= 0 {
			out = append(out, Intent{From: s, To: r, Packet: pkt})
		}
	}
	return out
}

// silent never transmits.
type silent struct{}

func (silent) Name() string            { return "silent" }
func (silent) Reset(*World)            {}
func (silent) CollisionsApply() bool   { return true }
func (silent) Overhears() bool         { return false }
func (silent) Intents(*World) []Intent { return nil }

func alwaysOn(n int) []*schedule.Schedule {
	out := make([]*schedule.Schedule, n)
	for i := range out {
		out[i] = schedule.AlwaysOn()
	}
	return out
}

func TestValidationErrors(t *testing.T) {
	g := topology.Line(3, 1)
	good := Config{Graph: g, Schedules: alwaysOn(3), Protocol: chain{}, M: 1}
	bad := []Config{
		{Schedules: alwaysOn(3), Protocol: chain{}, M: 1},
		{Graph: g, Schedules: alwaysOn(2), Protocol: chain{}, M: 1},
		{Graph: g, Schedules: alwaysOn(3), M: 1},
		{Graph: g, Schedules: alwaysOn(3), Protocol: chain{}, M: 0},
		{Graph: g, Schedules: alwaysOn(3), Protocol: chain{}, M: 1, InjectInterval: -1},
		{Graph: g, Schedules: alwaysOn(3), Protocol: chain{}, M: 1, Coverage: 1.5},
		{Graph: g, Schedules: []*schedule.Schedule{nil, nil, nil}, Protocol: chain{}, M: 1},
	}
	if _, err := Run(good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestLinePerfectLinks(t *testing.T) {
	g := topology.Line(4, 1)
	res, err := Run(Config{Graph: g, Schedules: alwaysOn(4), Protocol: chain{}, M: 1, Coverage: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run incomplete")
	}
	// Hop per slot: node 3 receives at t=2 (inject at 0, 0->1 at t=0,
	// 1->2 at t=1, 2->3 at t=2).
	if res.Delay[0] != 2 {
		t.Fatalf("delay = %d, want 2", res.Delay[0])
	}
	if res.Transmissions != 3 {
		t.Fatalf("transmissions = %d, want 3", res.Transmissions)
	}
	if res.Failures() != 0 {
		t.Fatalf("failures = %d, want 0", res.Failures())
	}
	if res.Protocol != "chain" || res.M != 1 || res.CoverNodes != 4 {
		t.Fatalf("metadata wrong: %+v", res)
	}
}

func TestSleepLatency(t *testing.T) {
	// Node 1 wakes only at slot 7 of a 10-slot period: packet 0 must wait.
	g := topology.Line(2, 1)
	scheds := []*schedule.Schedule{
		schedule.AlwaysOn(),
		schedule.NewSingleSlot(10, 7),
	}
	res, err := Run(Config{Graph: g, Schedules: scheds, Protocol: chain{}, M: 1, Coverage: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay[0] != 7 {
		t.Fatalf("delay = %d, want sleep latency 7", res.Delay[0])
	}
}

func TestLinkLossRetransmission(t *testing.T) {
	// PRR 0.5 on a 2-node line with the receiver awake every slot: the
	// expected delay is ~1 extra slot per failure (geometric, mean 1).
	g := topology.Line(2, 0.5)
	var totalDelay, totalFail int
	runs := 200
	for seed := 0; seed < runs; seed++ {
		res, err := Run(Config{Graph: g, Schedules: alwaysOn(2), Protocol: chain{}, M: 1, Coverage: 1, Seed: uint64(seed)})
		if err != nil {
			t.Fatal(err)
		}
		totalDelay += int(res.Delay[0])
		totalFail += res.LossFailures
	}
	meanDelay := float64(totalDelay) / float64(runs)
	meanFail := float64(totalFail) / float64(runs)
	if math.Abs(meanDelay-1) > 0.35 {
		t.Fatalf("mean delay %v, want ~1 (geometric failures)", meanDelay)
	}
	if math.Abs(meanFail-1) > 0.35 {
		t.Fatalf("mean failures %v, want ~1", meanFail)
	}
}

// colliders: nodes 0 and 1 both transmit packet 0 to node 2.
type colliders struct{ collide bool }

func (colliders) Name() string            { return "colliders" }
func (colliders) Reset(*World)            {}
func (c colliders) CollisionsApply() bool { return c.collide }
func (colliders) Overhears() bool         { return false }
func (colliders) Intents(w *World) []Intent {
	var out []Intent
	for _, s := range []int{0, 1} {
		if w.IsAwake(2) && w.OldestNeeded(s, 2) >= 0 {
			out = append(out, Intent{From: s, To: 2, Packet: 0})
		}
	}
	return out
}

func collisionTopology() *topology.Graph {
	// 0 and 1 both link to 2; 0-1 also linked so packet 0 can seed node 1.
	g := topology.New(3)
	g.AddLink(0, 2, 1)
	g.AddLink(1, 2, 1)
	g.AddLink(0, 1, 1)
	g.SortNeighbors()
	return g
}

type seedThenCollide struct{ colliders }

func (s seedThenCollide) Intents(w *World) []Intent {
	// First give node 1 the packet, then both 0 and 1 fire at node 2.
	if !w.Has(0, 1) {
		return []Intent{{From: 0, To: 1, Packet: 0}}
	}
	return s.colliders.Intents(w)
}

func TestCollisions(t *testing.T) {
	g := collisionTopology()
	res, err := Run(Config{
		Graph: g, Schedules: alwaysOn(3),
		Protocol: seedThenCollide{colliders{collide: true}},
		M:        1, Coverage: 1, Seed: 3, MaxSlots: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("persistent collisions should prevent completion")
	}
	if res.CollisionFailures == 0 {
		t.Fatal("no collision failures recorded")
	}
}

func TestNoCollisionModeDelivers(t *testing.T) {
	g := collisionTopology()
	res, err := Run(Config{
		Graph: g, Schedules: alwaysOn(3),
		Protocol: seedThenCollide{colliders{collide: false}},
		M:        1, Coverage: 1, Seed: 3, MaxSlots: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("oracle mode should deliver despite concurrent senders")
	}
	if res.CollisionFailures != 0 {
		t.Fatal("oracle mode recorded collisions")
	}
}

// busyMaker: node 1 transmits to node 2 while node 0 transmits to node 1.
type busyMaker struct{}

func (busyMaker) Name() string          { return "busy" }
func (busyMaker) Reset(*World)          {}
func (busyMaker) CollisionsApply() bool { return true }
func (busyMaker) Overhears() bool       { return false }
func (busyMaker) Intents(w *World) []Intent {
	var out []Intent
	if w.Has(0, 1) && w.IsAwake(2) && w.OldestNeeded(1, 2) >= 0 {
		out = append(out, Intent{From: 1, To: 2, Packet: 0})
	}
	if w.IsAwake(1) && w.OldestNeeded(0, 1) >= 0 {
		out = append(out, Intent{From: 0, To: 1, Packet: 0})
	}
	return out
}

func TestSemiDuplexBusyFailure(t *testing.T) {
	g := topology.Line(3, 1)
	res, err := Run(Config{Graph: g, Schedules: alwaysOn(3), Protocol: busyMaker{}, M: 1, Coverage: 1, Seed: 1, MaxSlots: 20})
	if err != nil {
		t.Fatal(err)
	}
	// Slot 0: 0->1 succeeds. Slot 1: node 1 transmits to 2 — and node 0
	// has nothing new, so no busy conflict... actually node 1 already has
	// packet 0 so 0->1 stops. The packet should arrive.
	if !res.Completed {
		t.Fatal("run incomplete")
	}
	_ = res
}

// busyBoth: forces the conflict — 0->1 and 1->2 in the same slot after 1
// holds the packet (0 keeps retrying a packet 1 already has is dropped, so
// use M=2 to keep node 0 transmitting to node 1).
type busyBoth struct{}

func (busyBoth) Name() string          { return "busyBoth" }
func (busyBoth) Reset(*World)          {}
func (busyBoth) CollisionsApply() bool { return true }
func (busyBoth) Overhears() bool       { return false }
func (busyBoth) Intents(w *World) []Intent {
	var out []Intent
	if pkt := w.OldestNeeded(1, 2); pkt >= 0 && w.IsAwake(2) {
		out = append(out, Intent{From: 1, To: 2, Packet: pkt})
	}
	if pkt := w.OldestNeeded(0, 1); pkt >= 0 && w.IsAwake(1) {
		out = append(out, Intent{From: 0, To: 1, Packet: pkt})
	}
	return out
}

func TestBusyFailureCounted(t *testing.T) {
	g := topology.Line(3, 1)
	res, err := Run(Config{Graph: g, Schedules: alwaysOn(3), Protocol: busyBoth{}, M: 2, Coverage: 1, Seed: 1, MaxSlots: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.BusyFailures == 0 {
		t.Fatal("no busy failures despite transmit+receive conflict")
	}
	if !res.Completed {
		t.Fatal("run should still complete eventually")
	}
}

// hubcast: node 0 transmits packet 0 to node 1 only; used to observe
// overhearing at nodes 2..4 on a star.
type hubcast struct{ overhear bool }

func (hubcast) Name() string          { return "hubcast" }
func (hubcast) Reset(*World)          {}
func (hubcast) CollisionsApply() bool { return true }
func (h hubcast) Overhears() bool     { return h.overhear }
func (h hubcast) Intents(w *World) []Intent {
	if w.IsAwake(1) && w.OldestNeeded(0, 1) >= 0 {
		return []Intent{{From: 0, To: 1, Packet: 0}}
	}
	return nil
}

func TestOverhearing(t *testing.T) {
	g := topology.Star(5, 1)
	res, err := Run(Config{Graph: g, Schedules: alwaysOn(5), Protocol: hubcast{overhear: true}, M: 1, Coverage: 1, Seed: 1, MaxSlots: 10})
	if err != nil {
		t.Fatal(err)
	}
	// One targeted transmission; leaves 2,3,4 overhear it (PRR 1).
	if !res.Completed {
		t.Fatal("overhearing should complete the star in one slot")
	}
	if res.Overheard != 3 {
		t.Fatalf("Overheard = %d, want 3", res.Overheard)
	}
	if res.Transmissions != 1 {
		t.Fatalf("Transmissions = %d, want 1", res.Transmissions)
	}

	// Without overhearing the star cannot complete via this protocol.
	res2, err := Run(Config{Graph: g, Schedules: alwaysOn(5), Protocol: hubcast{overhear: false}, M: 1, Coverage: 1, Seed: 1, MaxSlots: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Completed {
		t.Fatal("no-overhearing run should not complete")
	}
	if res2.Overheard != 0 {
		t.Fatal("overhearing recorded while disabled")
	}
}

func TestDeterminism(t *testing.T) {
	g := topology.Line(5, 0.7)
	run := func(seed uint64) *Result {
		res, err := Run(Config{Graph: g, Schedules: alwaysOn(5), Protocol: chain{}, M: 3, Coverage: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(42), run(42)
	if a.MeanDelay() != b.MeanDelay() || a.Failures() != b.Failures() || a.TotalSlots != b.TotalSlots {
		t.Fatal("same seed produced different results")
	}
	c := run(43)
	if a.TotalSlots == c.TotalSlots && a.LossFailures == c.LossFailures {
		t.Log("warning: different seeds produced identical coarse results (possible but unlikely)")
	}
}

func TestInjectInterval(t *testing.T) {
	g := topology.Line(2, 1)
	res, err := Run(Config{Graph: g, Schedules: alwaysOn(2), Protocol: chain{}, M: 3, InjectInterval: 5, Coverage: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		if res.InjectTime[p] != int64(5*p) {
			t.Fatalf("inject time of %d = %d, want %d", p, res.InjectTime[p], 5*p)
		}
	}
}

func TestSilentProtocolTimesOut(t *testing.T) {
	g := topology.Line(2, 1)
	res, err := Run(Config{Graph: g, Schedules: alwaysOn(2), Protocol: silent{}, M: 1, Coverage: 1, MaxSlots: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("silent run reported complete")
	}
	if res.TotalSlots != 30 {
		t.Fatalf("TotalSlots = %d, want 30", res.TotalSlots)
	}
	if res.Delay[0] != -1 || res.CoverTime[0] != -1 {
		t.Fatal("uncovered packet should report -1 delay")
	}
	if !math.IsNaN(res.MeanDelay()) {
		t.Fatal("MeanDelay of uncovered run should be NaN")
	}
}

// invalidIntents exercises the engine's protocol-bug detection.
type invalidIntents struct{ mode int }

func (invalidIntents) Name() string          { return "invalid" }
func (invalidIntents) Reset(*World)          {}
func (invalidIntents) CollisionsApply() bool { return true }
func (invalidIntents) Overhears() bool       { return false }
func (p invalidIntents) Intents(w *World) []Intent {
	switch p.mode {
	case 0:
		return []Intent{{From: 0, To: 0, Packet: 0}} // self loop
	case 1:
		return []Intent{{From: 0, To: 9, Packet: 0}} // out of range
	case 2:
		return []Intent{{From: 1, To: 0, Packet: 0}} // sender lacks packet
	case 3:
		return []Intent{{From: 0, To: 2, Packet: 0}} // non-link (line)
	default:
		return []Intent{{From: 0, To: 1, Packet: 5}} // uninjected packet
	}
}

func TestEngineRejectsProtocolBugs(t *testing.T) {
	g := topology.Line(3, 1)
	for mode := 0; mode <= 4; mode++ {
		_, err := Run(Config{Graph: g, Schedules: alwaysOn(3), Protocol: invalidIntents{mode: mode}, M: 1, Coverage: 1, MaxSlots: 5})
		if err == nil {
			t.Fatalf("mode %d not rejected", mode)
		}
	}
}

func TestCoverageTargetBelowFull(t *testing.T) {
	// 10-node line, coverage 0.5: done once 5 nodes have the packet.
	g := topology.Line(10, 1)
	res, err := Run(Config{Graph: g, Schedules: alwaysOn(10), Protocol: chain{}, M: 1, Coverage: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CoverNodes != 5 {
		t.Fatalf("CoverNodes = %d, want 5", res.CoverNodes)
	}
	if res.Delay[0] != 3 {
		t.Fatalf("delay = %d, want 3 (nodes 0-4 hold the packet at t=3)", res.Delay[0])
	}
}

func TestWorldAccessors(t *testing.T) {
	g := topology.Line(3, 1)
	checked := false
	p := &FuncProtocol{
		IntentsFunc: func(w *World) []Intent {
			if w.Now() == 1 && !checked {
				checked = true
				if w.Injected() != 2 {
					t.Errorf("Injected = %d, want 2", w.Injected())
				}
				if w.InjectSlot(1) != 1 {
					t.Errorf("InjectSlot(1) = %d", w.InjectSlot(1))
				}
				if w.RecvTime(0, 0) != 0 {
					t.Errorf("source RecvTime = %d", w.RecvTime(0, 0))
				}
				if w.RecvTime(0, 2) != -1 {
					t.Errorf("unreceived RecvTime = %d", w.RecvTime(0, 2))
				}
				if w.Count(0) != 2 { // source + node 1 (delivered at t=0)
					t.Errorf("Count(0) = %d", w.Count(0))
				}
				if w.IsTransmitting(0) {
					t.Error("node 0 transmitting before intents resolved")
				}
				if !w.NeedsAnything(2) || w.NeedsAnything(0) {
					t.Error("NeedsAnything wrong")
				}
				holders := w.HoldersOf(2)
				if len(holders) != 1 || holders[0].To != 1 {
					t.Errorf("HoldersOf(2) = %v", holders)
				}
			}
			// Chain forwarding.
			var out []Intent
			for _, r := range w.AwakeList() {
				if r > 0 {
					if pkt := w.OldestNeeded(r-1, r); pkt >= 0 {
						out = append(out, Intent{From: r - 1, To: r, Packet: pkt})
					}
				}
			}
			return out
		},
	}
	res, err := Run(Config{Graph: g, Schedules: alwaysOn(3), Protocol: p, M: 2, Coverage: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !checked || !res.Completed {
		t.Fatalf("accessor probe never ran or incomplete (checked=%v)", checked)
	}
	for _, o := range []TxOutcome{TxSuccess, TxSync} {
		if o.String() == "" {
			t.Fatal("empty outcome name")
		}
	}
}

func TestFuncProtocol(t *testing.T) {
	g := topology.Line(3, 1)
	resetCalled := false
	p := &FuncProtocol{
		ProtocolName: "hopper",
		ResetFunc:    func(w *World) { resetCalled = true },
		IntentsFunc: func(w *World) []Intent {
			var out []Intent
			for _, r := range w.AwakeList() {
				if r > 0 {
					if pkt := w.OldestNeeded(r-1, r); pkt >= 0 {
						out = append(out, Intent{From: r - 1, To: r, Packet: pkt})
					}
				}
			}
			return out
		},
		Collisions: true,
	}
	res, err := Run(Config{Graph: g, Schedules: alwaysOn(3), Protocol: p, M: 1, Coverage: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !resetCalled {
		t.Fatal("ResetFunc not called")
	}
	if !res.Completed || res.Protocol != "hopper" {
		t.Fatalf("bad result: %+v", res)
	}
	// Nil hooks: a do-nothing protocol with a default name.
	empty := &FuncProtocol{}
	if empty.Name() != "func" || empty.Intents(nil) != nil {
		t.Fatal("nil hooks misbehave")
	}
	empty.Reset(nil) // must not panic
	if empty.CollisionsApply() || empty.Overhears() {
		t.Fatal("zero-value flags should be off")
	}
}

func TestRecordReceptions(t *testing.T) {
	g := topology.Line(4, 1)
	res, err := Run(Config{
		Graph: g, Schedules: alwaysOn(4), Protocol: chain{},
		M: 2, Coverage: 1, Seed: 1, RecordReceptions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeRecvTime == nil || len(res.NodeRecvTime) != 2 {
		t.Fatal("reception matrix missing")
	}
	// Packet 0 marches down the line: node i receives at slot i-1 (source
	// holds it from injection at slot 0).
	if res.NodeRecvTime[0][0] != 0 {
		t.Fatalf("source recv time %d", res.NodeRecvTime[0][0])
	}
	for i := 1; i < 4; i++ {
		if res.NodeRecvTime[0][i] != int64(i-1) {
			t.Fatalf("node %d received packet 0 at %d, want %d", i, res.NodeRecvTime[0][i], i-1)
		}
	}
	delays := res.NodeDelays(0)
	if len(delays) != 4 {
		t.Fatalf("delays = %v", delays)
	}
	// Without the flag, no matrix.
	res2, err := Run(Config{Graph: g, Schedules: alwaysOn(4), Protocol: chain{}, M: 1, Coverage: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res2.NodeRecvTime != nil || res2.NodeDelays(0) != nil {
		t.Fatal("reception matrix recorded without the flag")
	}
	if res.NodeDelays(5) != nil {
		t.Fatal("out-of-range packet should yield nil")
	}
}

func TestSyncErrorSlowsFlooding(t *testing.T) {
	g := topology.Line(6, 1)
	run := func(p float64) *Result {
		res, err := Run(Config{
			Graph: g, Schedules: alwaysOn(6), Protocol: chain{},
			M: 5, Coverage: 1, Seed: 2, SyncErrorProb: p, MaxSlots: 10000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("sync error %v prevented completion", p)
		}
		return res
	}
	clean := run(0)
	noisy := run(0.4)
	if clean.SyncFailures != 0 {
		t.Fatalf("clean run has %d sync failures", clean.SyncFailures)
	}
	if noisy.SyncFailures == 0 {
		t.Fatal("noisy run has no sync failures")
	}
	if noisy.MeanDelay() <= clean.MeanDelay() {
		t.Fatalf("sync error did not slow flooding: %.1f vs %.1f", noisy.MeanDelay(), clean.MeanDelay())
	}
	if noisy.Failures() <= clean.Failures() {
		t.Fatal("sync misses not counted as failures")
	}
}

func TestSyncErrorValidation(t *testing.T) {
	g := topology.Line(2, 1)
	for _, p := range []float64{-0.1, 1.0, 1.5} {
		_, err := Run(Config{Graph: g, Schedules: alwaysOn(2), Protocol: chain{}, M: 1, SyncErrorProb: p})
		if err == nil {
			t.Fatalf("sync error prob %v accepted", p)
		}
	}
}

func TestAwakeSlotAccounting(t *testing.T) {
	g := topology.Line(3, 1)
	scheds := []*schedule.Schedule{
		schedule.AlwaysOn(),
		schedule.NewSingleSlot(4, 1),
		schedule.NewSingleSlot(4, 3),
	}
	res, err := Run(Config{Graph: g, Schedules: scheds, Protocol: silent{}, M: 1, Coverage: 1, MaxSlots: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.AwakeSlotsPerNode[0] != 8 {
		t.Fatalf("always-on node awake %d/8 slots", res.AwakeSlotsPerNode[0])
	}
	if res.AwakeSlotsPerNode[1] != 2 || res.AwakeSlotsPerNode[2] != 2 {
		t.Fatalf("duty-cycled nodes awake %d/%d, want 2 each",
			res.AwakeSlotsPerNode[1], res.AwakeSlotsPerNode[2])
	}
}

func TestFirstHopDelay(t *testing.T) {
	g := topology.Line(3, 1)
	res, err := Run(Config{Graph: g, Schedules: alwaysOn(3), Protocol: chain{}, M: 1, Coverage: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstHopDelay[0] != 0 {
		t.Fatalf("first hop delay = %d, want 0 (delivered in inject slot)", res.FirstHopDelay[0])
	}
}

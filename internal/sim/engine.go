package sim

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sync/atomic"

	"ldcflood/internal/fault"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/topology"
)

// ErrInterrupted is wrapped by the error Run returns when a
// Config.Interrupt hook aborts the run; test for it with errors.Is. The
// batch runner (internal/runner) relies on it to distinguish an imposed
// timeout or cancellation from an engine failure.
var ErrInterrupted = errors.New("sim: run interrupted")

// coverTarget returns the node count that defines packet completion,
// ⌈coverage·n⌉ clamped to [1, n].
func coverTarget(coverage float64, n int) int {
	c := int(math.Ceil(coverage * float64(n)))
	if c < 1 {
		c = 1
	}
	if c > n {
		c = n
	}
	return c
}

// success records one decoded unicast of the current slot; overhearing
// fans out from successful senders after all receptions resolve.
type success struct{ from, to, packet int }

// groupedTx is one surviving intent grouped under its receiver, with the
// static link PRR stashed at admission time so the decision paths (serial
// and sharded alike) never repeat the adjacency lookup — at 100k nodes
// that lookup is a CSR binary search per draw.
type groupedTx struct {
	in  Intent
	prr float64
}

// engine bundles one run's mutable state: configuration, world, result
// accumulators, RNG streams, and the per-slot scratch buffers shared by
// the slot-by-slot and compact-time execution paths. All scratch is
// allocated once at setup so both slot loops run allocation-free in the
// steady state.
type engine struct {
	cfg        Config
	w          *World
	res        *Result
	scheds     []*schedule.Schedule
	lossRNG    *rngutil.Stream
	syncRNG    *rngutil.Stream
	n          int
	interval   int
	coverNodes int
	maxSlots   int64
	covered    int

	// linkPRR is a dense n×n PRR matrix (-1 for absent links) giving the
	// hot loop O(1) link checks instead of adjacency scans; nil when n
	// exceeds maxDensePRRNodes, falling back to CSR lookups.
	linkPRR []float64
	// csr is the graph's flat adjacency view, set whenever linkPRR is nil
	// (large graphs) or the sharded mode is active (its overhearing phase
	// iterates neighbor rows). Shared, read-only.
	csr *topology.CSR

	// Sharded execution mode (Config.Workers >= 1). shardRoot seeds the
	// per-slot stream tree; slotStream is re-derived serially at the top of
	// every sharded slot and only read by workers. See shard.go.
	workers    int
	pool       *shardPool
	shardRoot  *rngutil.Stream
	slotStream rngutil.Stream

	// Fault injection (nil/empty when Config.Faults is unset, in which
	// case every hook below is a single nil or length check in the hot
	// loop). events is the compiled churn timeline, consumed in slot order
	// through eventCursor; crashed marks nodes that are currently down.
	inj         *fault.Injector
	events      []fault.Event
	eventCursor int
	crashed     []bool

	// tel is the resolved telemetry instrument set, nil when
	// Config.Telemetry is unset — in which case every telemetry site in the
	// slot loops is one predictable nil-check branch (see telemetry.go).
	tel *simTel

	// Per-slot scratch, reused across slots. rxIntents[r] collects the
	// surviving intents targeting receiver r (replacing the former
	// per-slot map churn); rxList is the receivers touched this slot.
	rxIntents   [][]groupedTx
	rxList      []int
	successes   []success
	targeted    []bool
	recvNow     []bool
	txTouched   []int // nodes whose transmitting flag was set this slot
	recvTouched []int // nodes whose recvNow flag was set this slot

	// Sharded-mode scratch: rxRec[i] is the decision record for rxList[i],
	// and senderSuccess maps a sender to its index in successes (-1
	// otherwise), reset sparsely after every slot. ohRows/ohOff hold the
	// slot's successful-sender neighbor rows and their prefix-sum offsets
	// (the overhear batch's concatenated index space); ohSeen is the
	// atomic claim flag ensuring each candidate node is decided once;
	// ohHits the per-chunk hit/claim arenas the merge concatenates and
	// resets. Workers write disjoint indices except the CAS claims.
	rxRec         []rxRecord
	senderSuccess []int32
	ohRows        [][]int32
	ohOff         []int32
	ohSeen        []atomic.Bool
	ohHits        []ohChunk
	ohAll         []ohHit

	// Planner-mode scratch (e.planner != nil): the slot's protocol stream
	// root, per-worker candidate arenas, the per-awake-index plan slices,
	// the compacted SlotPlan, the selected transmissions awaiting
	// admission, and the pre-bound emit closure (bound once so the hot
	// loop allocates nothing). rxFlat/rxOff replace rxIntents on this
	// path: SelectIntents emits receiver groups contiguously in ascending
	// order, so admitted survivors land in one flat arena with rxOff[i]
	// marking where rxList[i]'s group starts — sequential appends and
	// sequential group reads instead of a random-access bucket per
	// receiver.
	planner    ShardPlanner
	protoSlot  rngutil.Stream
	planArenas []planArena
	rxPlan     [][]Candidate
	planIdx    []idxChunk
	plan       SlotPlan
	planned    []groupedTx
	rxFlat     []groupedTx
	rxOff      []int32
	emitFn     func(in Intent, prr float64)

	// Deterministic sharded-path accounting drained into telemetry:
	// planned candidates, receiver groups merged in phase D, and overhear
	// candidates decided in phase E.
	statPlanCands int64
	statMergeRecv int64
	statOhCands   int64
}

// emitPlanned is the planner's emit callback: it stages a selected
// transmission (with its stashed link PRR) for admission.
func (e *engine) emitPlanned(in Intent, prr float64) {
	e.planned = append(e.planned, groupedTx{in: in, prr: prr})
}

// Run executes one simulation until every packet reaches the coverage
// target or the slot horizon expires. Runs are bit-for-bit reproducible for
// a given Config (including Seed), and — for the protocols in
// internal/flood — independent of Config.CompactTime.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	interval := cfg.InjectInterval
	if interval == 0 {
		interval = 1
	}
	coverage := cfg.Coverage
	if coverage == 0 {
		coverage = 0.99
	}
	n := cfg.Graph.N()
	coverNodes := coverTarget(coverage, n)
	maxPeriod := 1
	for _, s := range cfg.Schedules {
		if s.Period() > maxPeriod {
			maxPeriod = s.Period()
		}
	}
	maxSlots := cfg.MaxSlots
	if maxSlots <= 0 {
		// Worst case ~ M injections, each needing O(diameter) hops at
		// O(period / PRR) slots per hop; pad generously.
		maxSlots = int64(maxPeriod) * int64(cfg.M+n+100) * 40
	}

	root := rngutil.New(cfg.Seed)

	// The engine owns a copy of the schedule table so an Adapt hook can
	// swap entries without mutating the caller's slice.
	scheds := append([]*schedule.Schedule(nil), cfg.Schedules...)
	pwords := (cfg.M + 63) / 64
	w := &World{
		Graph:          cfg.Graph,
		Schedules:      scheds,
		M:              cfg.M,
		InjectInterval: interval,
		ProtoRNG:       root.SubName("protocol"),
		has:            make([]uint64, n*pwords),
		pwords:         pwords,
		heldCount:      make([]int, n),
		recvTime:       make([]int64, n*cfg.M),
		count:          make([]int, cfg.M),
		awake:          make([]bool, n),
		transmitting:   make([]bool, n),
	}
	for i := range w.recvTime {
		w.recvTime[i] = -1
	}

	res := &Result{
		Protocol:          cfg.Protocol.Name(),
		M:                 cfg.M,
		CoverNodes:        coverNodes,
		InjectTime:        make([]int64, cfg.M),
		CoverTime:         make([]int64, cfg.M),
		Delay:             make([]int64, cfg.M),
		FirstHopDelay:     make([]int64, cfg.M),
		TxPerNode:         make([]int, n),
		AwakeSlotsPerNode: make([]int64, n),
	}
	for p := 0; p < cfg.M; p++ {
		res.InjectTime[p] = -1
		res.CoverTime[p] = -1
		res.Delay[p] = -1
		res.FirstHopDelay[p] = -1
	}

	cfg.Protocol.Reset(w)

	e := &engine{
		cfg:        cfg,
		w:          w,
		res:        res,
		scheds:     scheds,
		lossRNG:    root.SubName("loss"),
		syncRNG:    root.SubName("sync"),
		n:          n,
		interval:   interval,
		coverNodes: coverNodes,
		maxSlots:   maxSlots,
		targeted:   make([]bool, n),
		recvNow:    make([]bool, n),
		crashed:    make([]bool, n),
	}
	if cfg.Faults != nil {
		// The fault stream is derived from (not drawn from) the root, so
		// attaching a schedule leaves the loss/sync/protocol streams — and
		// therefore any unfaulted behavior — untouched.
		e.inj = cfg.Faults.Compile(cfg.Graph, root.SubName("fault"))
		e.events = e.inj.Events()
	}
	if n <= maxDensePRRNodes {
		m := make([]float64, n*n)
		for i := range m {
			m[i] = -1
		}
		for u := 0; u < n; u++ {
			for _, l := range cfg.Graph.Neighbors(u) {
				m[u*n+l.To] = l.PRR
			}
		}
		e.linkPRR = m
	} else {
		e.csr = cfg.Graph.CSR()
	}
	if cfg.Workers > 0 {
		e.workers = cfg.Workers
		if e.csr == nil {
			e.csr = cfg.Graph.CSR()
		}
		e.shardRoot = root.SubName("shard")
		e.senderSuccess = make([]int32, n)
		for i := range e.senderSuccess {
			e.senderSuccess[i] = -1
		}
		e.ohSeen = make([]atomic.Bool, n)
		if sp, ok := cfg.Protocol.(ShardPlanner); ok {
			e.planner = sp
			e.planArenas = make([]planArena, e.workers)
			e.emitFn = e.emitPlanned
		}
		e.pool = newShardPool(e.workers, cfg.ShardStats)
		defer e.pool.close()
	}
	if e.planner == nil {
		// The flat rxFlat/rxOff arena replaces the per-receiver buckets on
		// the planner path; every other path groups through rxIntents.
		e.rxIntents = make([][]groupedTx, n)
	}

	plan := e.planCompact()
	if cfg.Telemetry != nil {
		e.tel = newSimTel(cfg.Telemetry, plan != nil, e.workers)
	}
	var runErr error
	if plan != nil {
		runErr = e.runCompact(plan)
	} else {
		runErr = e.runSlots()
	}
	if runErr != nil {
		return nil, runErr
	}
	if e.tel != nil {
		e.tel.finish(e, cfg.Telemetry)
	}

	res.Completed = e.covered == cfg.M
	if cfg.RecordReceptions {
		res.NodeRecvTime = make([][]int64, cfg.M)
		for p := range res.NodeRecvTime {
			row := make([]int64, n)
			for node := range row {
				row[node] = w.recvTime[node*cfg.M+p]
			}
			res.NodeRecvTime[p] = row
		}
	}
	return res, nil
}

// maxDensePRRNodes caps the engine's dense link-PRR matrix at n² float64s
// (8 MB at the cap); larger graphs use CSR binary-search lookups, keeping
// the engine's memory O(n+m). A variable so white-box tests can force the
// sparse regime on small graphs.
var maxDensePRRNodes = 1024

// prr returns the link PRR of (u, v), or 0 when unlinked — Graph.PRR
// semantics through the dense matrix when available, the CSR otherwise.
func (e *engine) prr(u, v int) float64 {
	if e.linkPRR != nil {
		if p := e.linkPRR[u*e.n+v]; p >= 0 {
			return p
		}
		return 0
	}
	return e.csr.PRROf(u, v)
}

// effPRR returns the PRR of link (u, v) at the current slot, after any
// fault-schedule degradation. Without a schedule it is exactly prr.
func (e *engine) effPRR(u, v int) float64 {
	p := e.prr(u, v)
	if e.inj != nil && p > 0 {
		p *= e.inj.LinkScale(e.w.now, u, v)
	}
	return p
}

// applyFaults applies every compiled churn event due at or before slot t:
// a crash drops the node's buffered packets and forces it dormant until
// its reboot event (if any) brings it back.
func (e *engine) applyFaults(t int64) {
	for e.eventCursor < len(e.events) && e.events[e.eventCursor].At <= t {
		ev := e.events[e.eventCursor]
		e.eventCursor++
		if ev.Up {
			e.crashed[ev.Node] = false
			e.res.Reboots++
		} else {
			e.crashed[ev.Node] = true
			e.res.Crashes++
			e.res.CrashDropped += e.w.dropAll(ev.Node)
		}
	}
}

// planCompact decides whether the compact-time fast path applies and, if
// so, builds its precomputed schedule structure. A nil return selects the
// slot-by-slot path.
func (e *engine) planCompact() *compactPlan {
	if !e.cfg.CompactTime || e.cfg.Adapt != nil {
		return nil
	}
	// Dynamic fault schedules (churn, jams, moving link chains) mutate the
	// world mid-run in ways the hyperperiod plan cannot see; fall back to
	// the reference path. Static schedules are a pure per-link PRR scaling
	// and keep the fast path.
	if e.inj != nil && !e.inj.Static() {
		return nil
	}
	return newCompactPlan(e.cfg.Graph, e.scheds)
}

// interruptErr wraps ErrInterrupted with run context.
func (e *engine) interruptErr(t int64) error {
	return fmt.Errorf("sim: %s aborted at slot %d: %w",
		e.cfg.Protocol.Name(), t, ErrInterrupted)
}

// inject admits every packet whose injection time is slot t: packet p
// enters at slot p×interval at the source (node 0).
func (e *engine) inject(t int64) {
	for e.w.injected < e.cfg.M && t == int64(e.w.injected)*int64(e.interval) {
		p := e.w.injected
		e.w.injected++
		e.w.deliver(p, 0, t)
		e.res.InjectTime[p] = t
		if e.cfg.Observer != nil {
			e.cfg.Observer.OnInject(t, p)
		}
	}
}

// runSlots is the reference execution path: iterate every wall-clock slot.
// It supports every Config feature, including Adapt. The awake set is
// recomputed each slot with an O(n) schedule scan — except in sharded mode
// with static schedules, where precomputed hyperperiod buckets make the
// recomputation O(awake); the two produce identical awake sets.
func (e *engine) runSlots() error {
	w, res, cfg := e.w, e.res, &e.cfg
	var plan *awakePlan
	if e.workers > 0 && cfg.Adapt == nil {
		plan = newAwakePlan(e.scheds)
	}
	// Without a fault injector no node can crash, so the per-node awake
	// tally is a pure function of the static schedules and the horizon —
	// computed arithmetically after the loop (exactly as runCompact does)
	// instead of incrementing per awake node per slot.
	countAwake := plan == nil || e.inj != nil
	for t := int64(0); t < e.maxSlots && e.covered < cfg.M; t++ {
		if cfg.Interrupt != nil && cfg.Interrupt(t) {
			return e.interruptErr(t)
		}
		w.now = t
		e.applyFaults(t)
		e.inject(t)
		// Dynamic duty-cycle control (DutyCon-style, reference [22]).
		if cfg.Adapt != nil && t > 0 && t%cfg.AdaptEvery == 0 {
			cfg.Adapt(w, e.scheds)
			for i, s := range e.scheds {
				if s == nil {
					return fmt.Errorf("sim: Adapt set a nil schedule for node %d", i)
				}
			}
		}
		// Awake set. Crashed nodes stay dormant regardless of schedule.
		if plan != nil {
			for _, i := range w.awakeList {
				w.awake[i] = false
			}
			w.awakeList = w.awakeList[:0]
			for _, i := range plan.buckets[t%plan.L] {
				if e.crashed[i] {
					continue
				}
				w.awake[i] = true
				w.awakeList = append(w.awakeList, int(i))
				if countAwake {
					res.AwakeSlotsPerNode[i]++
				}
			}
		} else {
			w.awakeList = w.awakeList[:0]
			for i := 0; i < e.n; i++ {
				a := e.scheds[i].IsActive(t) && !e.crashed[i]
				w.awake[i] = a
				if a {
					w.awakeList = append(w.awakeList, i)
					res.AwakeSlotsPerNode[i]++
				}
			}
		}
		if err := e.resolve(t); err != nil {
			return err
		}
		res.TotalSlots = t + 1
		if e.tel != nil {
			e.tel.tick(e)
		}
	}
	if !countAwake {
		for i := 0; i < e.n; i++ {
			res.AwakeSlotsPerNode[i] = e.scheds[i].ActiveCountBefore(res.TotalSlots)
		}
	}
	return nil
}

// runCompact is the compact-time fast path: the awake set comes from
// precomputed hyperperiod offset buckets, and the loop steps directly from
// one relevant slot to the next. Dormant-only stretches contribute to
// TotalSlots and AwakeSlotsPerNode arithmetically. Preconditions
// (CompactTime set, Adapt nil, bounded hyperperiod) are enforced by
// planCompact.
func (e *engine) runCompact(plan *compactPlan) error {
	w, res, cfg := e.w, e.res, &e.cfg
	fs := newFastState(e, plan)
	w.onDeliver = fs.noteDeliver
	defer func() { w.onDeliver = nil }()

	L := int64(plan.L)
	for t := int64(0); t < e.maxSlots && e.covered < cfg.M; {
		if cfg.Interrupt != nil && cfg.Interrupt(t) {
			return e.interruptErr(t)
		}
		w.now = t
		before := w.injected
		e.inject(t)
		if w.injected != before {
			fs.noteInjection()
		}
		// Awake set from the precomputed offset buckets: clear the
		// previous slot's entries, then install this offset's bucket.
		for _, i := range w.awakeList {
			w.awake[i] = false
		}
		w.awakeList = w.awakeList[:0]
		for _, i := range plan.buckets[t%L] {
			w.awake[i] = true
			w.awakeList = append(w.awakeList, int(i))
		}
		if err := e.resolve(t); err != nil {
			return err
		}
		res.TotalSlots = t + 1
		if e.tel != nil {
			e.tel.tick(e)
		}
		t = fs.nextRelevant(t + 1)
	}
	if e.covered < cfg.M {
		// The reference path iterates (and counts) every slot up to the
		// horizon even when nothing can happen; account for the skipped
		// tail.
		res.TotalSlots = e.maxSlots
	}
	// Awake-slot bookkeeping over [0, TotalSlots), computed arithmetically
	// from the (static — Adapt is nil here) schedules.
	for i := 0; i < e.n; i++ {
		res.AwakeSlotsPerNode[i] = e.scheds[i].ActiveCountBefore(res.TotalSlots)
	}
	return nil
}

// resolve runs one slot's protocol round on the path selected by
// Config.Workers: the historical serial resolution (Workers == 0) or the
// sharded discipline (see shard.go). The caller must have set w.now and the
// awake set.
func (e *engine) resolve(t int64) error {
	if e.workers > 0 {
		return e.resolveSlotSharded(t)
	}
	return e.resolveSlot(t)
}

// collectIntents asks the protocol for this slot's transmissions and
// admits them. Shared verbatim by both resolution paths, so the
// protocol-facing semantics — including the syncRNG consumption order —
// are identical under every worker count.
func (e *engine) collectIntents(t int64) error {
	intents := e.cfg.Protocol.Intents(e.w)
	e.rxList = e.rxList[:0]
	for _, in := range intents {
		if err := e.admitIntent(in, -1, t); err != nil {
			return err
		}
	}
	slices.Sort(e.rxList)
	return nil
}

// admitIntent validates one intent, enforces one transmission per sender,
// applies the synchronization-miss draw, and groups the survivor under its
// receiver with its link PRR stashed.
func (e *engine) admitIntent(in Intent, prr float64, t int64) error {
	prr, ok, err := e.vetIntent(in, prr, t)
	if err != nil || !ok {
		return err
	}
	if len(e.rxIntents[in.To]) == 0 {
		e.rxList = append(e.rxList, in.To)
	}
	e.rxIntents[in.To] = append(e.rxIntents[in.To], groupedTx{in: in, prr: prr})
	return nil
}

// vetIntent is admission without the grouping: validation, the
// one-transmission-per-sender rule, and the synchronization-miss draw.
// It returns the resolved link PRR and whether the intent survives to a
// receiver group. A negative prr means unknown — look it up;
// planner-emitted intents pass the PRR stashed at plan time, which keeps
// the CSR binary search off the sharded path's serial spine (links
// always have PRR > 0, so the link-existence check is the same either way).
func (e *engine) vetIntent(in Intent, prr float64, t int64) (float64, bool, error) {
	w, res, cfg := e.w, e.res, &e.cfg
	if in.From < 0 || in.From >= e.n || in.To < 0 || in.To >= e.n || in.From == in.To {
		return 0, false, fmt.Errorf("sim: protocol %s produced invalid intent %+v", cfg.Protocol.Name(), in)
	}
	if in.Packet < 0 || in.Packet >= w.injected {
		return 0, false, fmt.Errorf("sim: intent for uninjected packet %d", in.Packet)
	}
	if !w.Has(in.Packet, in.From) {
		return 0, false, fmt.Errorf("sim: node %d does not hold packet %d", in.From, in.Packet)
	}
	if prr < 0 {
		prr = e.prr(in.From, in.To)
	}
	if prr <= 0 {
		return 0, false, fmt.Errorf("sim: intent over non-link %d-%d", in.From, in.To)
	}
	if !w.awake[in.To] {
		return 0, false, fmt.Errorf("sim: intent to dormant node %d", in.To)
	}
	if w.transmitting[in.From] {
		return 0, false, nil // one transmission per sender per slot
	}
	if w.Has(in.Packet, in.To) {
		return 0, false, nil // receiver already has it; drop silently
	}
	w.transmitting[in.From] = true
	e.txTouched = append(e.txTouched, in.From)
	if cfg.SyncErrorProb > 0 && e.syncRNG.Bool(cfg.SyncErrorProb) {
		// Local-synchronization miss: the sender fires at the
		// wrong slot and nobody is listening.
		res.Transmissions++
		res.TxPerNode[in.From]++
		res.SyncFailures++
		if cfg.Observer != nil {
			cfg.Observer.OnTransmit(t, in.From, in.To, in.Packet, TxSync)
		}
		return 0, false, nil
	}
	return prr, true, nil
}

// scaledPRR returns tx's stashed link PRR after any fault-schedule
// degradation at slot t — effPRR without the adjacency lookup.
func (e *engine) scaledPRR(tx *groupedTx, t int64) float64 {
	p := tx.prr
	if e.inj != nil && p > 0 {
		p *= e.inj.LinkScale(t, tx.in.From, tx.in.To)
	}
	return p
}

// resolveSlot is the historical serial slot resolution: collect intents,
// resolve collisions/losses/capture per receiver drawing from the shared
// loss stream in slot order, fan out overhearing, and update coverage
// accounting. Scratch state touched during the slot is cleared before
// returning, so consecutive calls need no O(n) wipes.
func (e *engine) resolveSlot(t int64) error {
	w, res, cfg := e.w, e.res, &e.cfg
	if err := e.collectIntents(t); err != nil {
		return err
	}

	e.successes = e.successes[:0]
	for _, r := range e.rxList {
		txs := e.rxIntents[r]
		res.Transmissions += len(txs)
		for _, tx := range txs {
			res.TxPerNode[tx.in.From]++
		}
		e.targeted[r] = true
		switch {
		case e.inj != nil && e.inj.Jammed(t, r):
			// Receiver-side jamming: every reception at a jammed node fails
			// deterministically, without consuming a loss-RNG draw.
			res.JamFailures += len(txs)
			if cfg.Observer != nil {
				for _, tx := range txs {
					cfg.Observer.OnTransmit(t, tx.in.From, r, tx.in.Packet, TxJammed)
				}
			}
		case w.transmitting[r]:
			// Semi-duplex: a transmitting node cannot receive.
			res.BusyFailures += len(txs)
			if cfg.Observer != nil {
				for _, tx := range txs {
					cfg.Observer.OnTransmit(t, tx.in.From, r, tx.in.Packet, TxBusy)
				}
			}
		case len(txs) > 1 && cfg.Protocol.CollisionsApply():
			// Capture effect: the strongest signal may survive the
			// collision (reference [17]'s flash-flooding mechanism).
			captured := false
			if cfg.CaptureProb > 0 && e.lossRNG.Bool(cfg.CaptureProb) {
				best := 0
				for j := 1; j < len(txs); j++ {
					if e.scaledPRR(&txs[j], t) > e.scaledPRR(&txs[best], t) {
						best = j
					}
				}
				if e.lossRNG.Bool(e.scaledPRR(&txs[best], t)) {
					captured = true
					res.Captures++
					bestTx := txs[best]
					e.deliverNow(bestTx.in.Packet, r, t)
					e.successes = append(e.successes, success{bestTx.in.From, r, bestTx.in.Packet})
					res.CollisionFailures += len(txs) - 1
					if cfg.Observer != nil {
						for j, tx := range txs {
							outcome := TxCollision
							if j == best {
								outcome = TxSuccess
							}
							cfg.Observer.OnTransmit(t, tx.in.From, r, tx.in.Packet, outcome)
						}
					}
				}
			}
			if !captured {
				res.CollisionFailures += len(txs)
				if cfg.Observer != nil {
					for _, tx := range txs {
						cfg.Observer.OnTransmit(t, tx.in.From, r, tx.in.Packet, TxCollision)
					}
				}
			}
		default:
			// Attempt in order until one succeeds; the rest of an
			// oracle's redundant transmissions are counted as losses.
			got := false
			for j := range txs {
				tx := &txs[j]
				if got {
					res.LossFailures++
					if cfg.Observer != nil {
						cfg.Observer.OnTransmit(t, tx.in.From, r, tx.in.Packet, TxRedundant)
					}
					continue
				}
				if e.lossRNG.Bool(e.scaledPRR(tx, t)) {
					got = true
					e.deliverNow(tx.in.Packet, r, t)
					e.successes = append(e.successes, success{tx.in.From, r, tx.in.Packet})
					if cfg.Observer != nil {
						cfg.Observer.OnTransmit(t, tx.in.From, r, tx.in.Packet, TxSuccess)
					}
				} else {
					res.LossFailures++
					if cfg.Observer != nil {
						cfg.Observer.OnTransmit(t, tx.in.From, r, tx.in.Packet, TxLoss)
					}
				}
			}
		}
	}
	// Overhearing: awake, silent, non-targeted neighbors of successful
	// senders may pick the packet up for free. Candidates are visited in
	// ascending node id; iterating the (small) awake list and testing
	// adjacency is much cheaper than scanning the sender's full neighbor
	// list when only a few nodes are awake. The sender itself is excluded
	// by the transmitting check.
	if cfg.Protocol.Overhears() {
		for _, s := range e.successes {
			for _, o := range w.awakeList {
				if o == s.to || w.transmitting[o] || e.targeted[o] || e.recvNow[o] {
					continue
				}
				if e.inj != nil && e.inj.Jammed(t, o) {
					continue // jammed nodes cannot overhear
				}
				prr := e.effPRR(s.from, o)
				if prr <= 0 || w.Has(s.packet, o) {
					continue
				}
				if e.lossRNG.Bool(prr) {
					e.deliverNow(s.packet, o, t)
					res.Overheard++
					if cfg.Observer != nil {
						cfg.Observer.OnOverhear(t, s.from, o, s.packet)
					}
				}
			}
		}
	}
	e.accountCoverage(t)
	e.cleanupSlot()
	return nil
}

// accountCoverage latches per-packet coverage and first-hop milestones
// reached by this slot's deliveries.
func (e *engine) accountCoverage(t int64) {
	w, res, cfg := e.w, e.res, &e.cfg
	for p := 0; p < w.injected; p++ {
		if res.CoverTime[p] == -1 && w.count[p] >= e.coverNodes {
			res.CoverTime[p] = t
			res.Delay[p] = t - res.InjectTime[p]
			e.covered++
			if cfg.Observer != nil {
				cfg.Observer.OnCovered(t, p)
			}
		}
		if res.FirstHopDelay[p] == -1 && w.count[p] >= 2 {
			res.FirstHopDelay[p] = t - res.InjectTime[p]
		}
	}
}

// groupTxs returns receiver rxList[i]'s intent group: a slice of the
// planner path's flat arena, or the rxIntents bucket everywhere else.
func (e *engine) groupTxs(i int) []groupedTx {
	if e.planner != nil {
		return e.rxFlat[e.rxOff[i]:e.rxOff[i+1]]
	}
	return e.rxIntents[e.rxList[i]]
}

// cleanupSlot resets exactly the scratch entries this slot touched, so
// consecutive slots need no O(n) wipes. The planner path never populates
// rxIntents (its groups live in the flat arena, truncated wholesale each
// slot), so only the targeted marks need the per-receiver walk there.
func (e *engine) cleanupSlot() {
	w := e.w
	if e.planner != nil {
		for _, r := range e.rxList {
			e.targeted[r] = false
		}
	} else {
		for _, r := range e.rxList {
			e.targeted[r] = false
			e.rxIntents[r] = e.rxIntents[r][:0]
		}
	}
	for _, i := range e.txTouched {
		w.transmitting[i] = false
	}
	e.txTouched = e.txTouched[:0]
	for _, i := range e.recvTouched {
		e.recvNow[i] = false
	}
	e.recvTouched = e.recvTouched[:0]
}

// deliverNow records an in-slot reception: the packet is delivered and the
// node is marked as having received this slot (blocking overhearing).
func (e *engine) deliverNow(p, node int, t int64) {
	e.w.deliver(p, node, t)
	if !e.recvNow[node] {
		e.recvNow[node] = true
		e.recvTouched = append(e.recvTouched, node)
	}
}

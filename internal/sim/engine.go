package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
)

// ErrInterrupted is wrapped by the error Run returns when a
// Config.Interrupt hook aborts the run; test for it with errors.Is. The
// batch runner (internal/runner) relies on it to distinguish an imposed
// timeout or cancellation from an engine failure.
var ErrInterrupted = errors.New("sim: run interrupted")

// coverTarget returns the node count that defines packet completion,
// ⌈coverage·n⌉ clamped to [1, n].
func coverTarget(coverage float64, n int) int {
	c := int(math.Ceil(coverage * float64(n)))
	if c < 1 {
		c = 1
	}
	if c > n {
		c = n
	}
	return c
}

// Run executes one simulation until every packet reaches the coverage
// target or the slot horizon expires. Runs are bit-for-bit reproducible for
// a given Config (including Seed).
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	interval := cfg.InjectInterval
	if interval == 0 {
		interval = 1
	}
	coverage := cfg.Coverage
	if coverage == 0 {
		coverage = 0.99
	}
	n := cfg.Graph.N()
	coverNodes := coverTarget(coverage, n)
	maxPeriod := 1
	for _, s := range cfg.Schedules {
		if s.Period() > maxPeriod {
			maxPeriod = s.Period()
		}
	}
	maxSlots := cfg.MaxSlots
	if maxSlots <= 0 {
		// Worst case ~ M injections, each needing O(diameter) hops at
		// O(period / PRR) slots per hop; pad generously.
		maxSlots = int64(maxPeriod) * int64(cfg.M+n+100) * 40
	}

	root := rngutil.New(cfg.Seed)
	lossRNG := root.SubName("loss")
	syncRNG := root.SubName("sync")

	// The engine owns a copy of the schedule table so an Adapt hook can
	// swap entries without mutating the caller's slice.
	scheds := append([]*schedule.Schedule(nil), cfg.Schedules...)
	w := &World{
		Graph:          cfg.Graph,
		Schedules:      scheds,
		M:              cfg.M,
		InjectInterval: interval,
		ProtoRNG:       root.SubName("protocol"),
		has:            make([][]bool, cfg.M),
		recvTime:       make([][]int64, cfg.M),
		count:          make([]int, cfg.M),
		awake:          make([]bool, n),
		transmitting:   make([]bool, n),
	}
	for p := range w.has {
		w.has[p] = make([]bool, n)
		w.recvTime[p] = make([]int64, n)
		for i := range w.recvTime[p] {
			w.recvTime[p][i] = -1
		}
	}

	res := &Result{
		Protocol:          cfg.Protocol.Name(),
		M:                 cfg.M,
		CoverNodes:        coverNodes,
		InjectTime:        make([]int64, cfg.M),
		CoverTime:         make([]int64, cfg.M),
		Delay:             make([]int64, cfg.M),
		FirstHopDelay:     make([]int64, cfg.M),
		TxPerNode:         make([]int, n),
		AwakeSlotsPerNode: make([]int64, n),
	}
	for p := 0; p < cfg.M; p++ {
		res.InjectTime[p] = -1
		res.CoverTime[p] = -1
		res.Delay[p] = -1
		res.FirstHopDelay[p] = -1
	}

	cfg.Protocol.Reset(w)

	covered := 0
	targeted := make([]bool, n)
	receivedNow := make([]bool, n)
	byReceiver := make(map[int][]Intent)

	for t := int64(0); t < maxSlots && covered < cfg.M; t++ {
		if cfg.Interrupt != nil && cfg.Interrupt(t) {
			return nil, fmt.Errorf("sim: %s aborted at slot %d: %w",
				cfg.Protocol.Name(), t, ErrInterrupted)
		}
		w.now = t
		// Injection: packet p enters at slot p×interval.
		for w.injected < cfg.M && t == int64(w.injected)*int64(interval) {
			p := w.injected
			w.injected++
			w.deliver(p, 0, t)
			res.InjectTime[p] = t
			if cfg.Observer != nil {
				cfg.Observer.OnInject(t, p)
			}
		}
		// Dynamic duty-cycle control (DutyCon-style, reference [22]).
		if cfg.Adapt != nil && t > 0 && t%cfg.AdaptEvery == 0 {
			cfg.Adapt(w, scheds)
			for i, s := range scheds {
				if s == nil {
					return nil, fmt.Errorf("sim: Adapt set a nil schedule for node %d", i)
				}
			}
		}
		// Awake set.
		w.awakeList = w.awakeList[:0]
		for i := 0; i < n; i++ {
			w.awake[i] = scheds[i].IsActive(t)
			if w.awake[i] {
				w.awakeList = append(w.awakeList, i)
				res.AwakeSlotsPerNode[i]++
			}
			w.transmitting[i] = false
			targeted[i] = false
			receivedNow[i] = false
		}

		intents := cfg.Protocol.Intents(w)
		// Validate, enforce one transmission per sender, group by receiver.
		for k := range byReceiver {
			delete(byReceiver, k)
		}
		for _, in := range intents {
			if in.From < 0 || in.From >= n || in.To < 0 || in.To >= n || in.From == in.To {
				return nil, fmt.Errorf("sim: protocol %s produced invalid intent %+v", cfg.Protocol.Name(), in)
			}
			if in.Packet < 0 || in.Packet >= w.injected {
				return nil, fmt.Errorf("sim: intent for uninjected packet %d", in.Packet)
			}
			if !w.has[in.Packet][in.From] {
				return nil, fmt.Errorf("sim: node %d does not hold packet %d", in.From, in.Packet)
			}
			if !cfg.Graph.HasLink(in.From, in.To) {
				return nil, fmt.Errorf("sim: intent over non-link %d-%d", in.From, in.To)
			}
			if !w.awake[in.To] {
				return nil, fmt.Errorf("sim: intent to dormant node %d", in.To)
			}
			if w.transmitting[in.From] {
				continue // one transmission per sender per slot
			}
			if w.has[in.Packet][in.To] {
				continue // receiver already has it; drop silently
			}
			w.transmitting[in.From] = true
			if cfg.SyncErrorProb > 0 && syncRNG.Bool(cfg.SyncErrorProb) {
				// Local-synchronization miss: the sender fires at the
				// wrong slot and nobody is listening.
				res.Transmissions++
				res.TxPerNode[in.From]++
				res.SyncFailures++
				if cfg.Observer != nil {
					cfg.Observer.OnTransmit(t, in.From, in.To, in.Packet, TxSync)
				}
				continue
			}
			byReceiver[in.To] = append(byReceiver[in.To], in)
		}
		receivers := make([]int, 0, len(byReceiver))
		for r := range byReceiver {
			receivers = append(receivers, r)
		}
		sort.Ints(receivers)

		type success struct{ from, to, packet int }
		var successes []success
		for _, r := range receivers {
			txs := byReceiver[r]
			res.Transmissions += len(txs)
			for _, tx := range txs {
				res.TxPerNode[tx.From]++
			}
			targeted[r] = true
			switch {
			case w.transmitting[r]:
				// Semi-duplex: a transmitting node cannot receive.
				res.BusyFailures += len(txs)
				if cfg.Observer != nil {
					for _, tx := range txs {
						cfg.Observer.OnTransmit(t, tx.From, r, tx.Packet, TxBusy)
					}
				}
			case len(txs) > 1 && cfg.Protocol.CollisionsApply():
				// Capture effect: the strongest signal may survive the
				// collision (reference [17]'s flash-flooding mechanism).
				captured := false
				if cfg.CaptureProb > 0 && lossRNG.Bool(cfg.CaptureProb) {
					best := txs[0]
					for _, tx := range txs[1:] {
						if cfg.Graph.PRR(tx.From, r) > cfg.Graph.PRR(best.From, r) {
							best = tx
						}
					}
					if lossRNG.Bool(cfg.Graph.PRR(best.From, r)) {
						captured = true
						res.Captures++
						w.deliver(best.Packet, r, t)
						receivedNow[r] = true
						successes = append(successes, success{best.From, r, best.Packet})
						res.CollisionFailures += len(txs) - 1
						if cfg.Observer != nil {
							for _, tx := range txs {
								outcome := TxCollision
								if tx == best {
									outcome = TxSuccess
								}
								cfg.Observer.OnTransmit(t, tx.From, r, tx.Packet, outcome)
							}
						}
					}
				}
				if !captured {
					res.CollisionFailures += len(txs)
					if cfg.Observer != nil {
						for _, tx := range txs {
							cfg.Observer.OnTransmit(t, tx.From, r, tx.Packet, TxCollision)
						}
					}
				}
			default:
				// Attempt in order until one succeeds; the rest of an
				// oracle's redundant transmissions are counted as losses.
				got := false
				for _, tx := range txs {
					if got {
						res.LossFailures++
						if cfg.Observer != nil {
							cfg.Observer.OnTransmit(t, tx.From, r, tx.Packet, TxRedundant)
						}
						continue
					}
					if lossRNG.Bool(cfg.Graph.PRR(tx.From, tx.To)) {
						got = true
						w.deliver(tx.Packet, r, t)
						receivedNow[r] = true
						successes = append(successes, success{tx.From, r, tx.Packet})
						if cfg.Observer != nil {
							cfg.Observer.OnTransmit(t, tx.From, r, tx.Packet, TxSuccess)
						}
					} else {
						res.LossFailures++
						if cfg.Observer != nil {
							cfg.Observer.OnTransmit(t, tx.From, r, tx.Packet, TxLoss)
						}
					}
				}
			}
		}
		// Overhearing: awake, silent, non-targeted neighbors of successful
		// senders may pick the packet up for free.
		if cfg.Protocol.Overhears() {
			for _, s := range successes {
				for _, l := range cfg.Graph.Neighbors(s.from) {
					o := l.To
					if o == s.to || !w.awake[o] || w.transmitting[o] || targeted[o] || receivedNow[o] {
						continue
					}
					if w.has[s.packet][o] {
						continue
					}
					if lossRNG.Bool(l.PRR) {
						w.deliver(s.packet, o, t)
						receivedNow[o] = true
						res.Overheard++
						if cfg.Observer != nil {
							cfg.Observer.OnOverhear(t, s.from, o, s.packet)
						}
					}
				}
			}
		}
		// Coverage accounting.
		for p := 0; p < w.injected; p++ {
			if res.CoverTime[p] == -1 && w.count[p] >= coverNodes {
				res.CoverTime[p] = t
				res.Delay[p] = t - res.InjectTime[p]
				covered++
				if cfg.Observer != nil {
					cfg.Observer.OnCovered(t, p)
				}
			}
			if res.FirstHopDelay[p] == -1 && w.count[p] >= 2 {
				res.FirstHopDelay[p] = t - res.InjectTime[p]
			}
		}
		res.TotalSlots = t + 1
	}
	res.Completed = covered == cfg.M
	if cfg.RecordReceptions {
		res.NodeRecvTime = make([][]int64, cfg.M)
		for p := range res.NodeRecvTime {
			res.NodeRecvTime[p] = append([]int64(nil), w.recvTime[p]...)
		}
	}
	return res, nil
}

package sim

// Certification of the sharded execution mode (Config.Workers >= 1):
// worker-count invariance, node-relabeling invariance on the RNG-free
// subspace, equivalence of the forced large-graph data structures, and an
// adversarial stress shape for the race detector.

import (
	"math"
	"reflect"
	"testing"

	"ldcflood/internal/fault"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/topology"
)

// chaosRun builds a fresh randomized-but-valid configuration from seed and
// runs it with the given worker count and time mode. Everything — graph,
// schedules, protocol stream, fault schedule — is re-derived from the seed
// so repeated calls are exact replicas differing only in the knobs.
func chaosRun(t *testing.T, seed uint64, workers int, compact bool) *Result {
	t.Helper()
	r := rngutil.New(seed)
	g := randomConnectedGraph(r)
	n := g.N()
	proto := &chaosProtocol{
		rng:      r.SubName("chaos"),
		density:  0.1 + 0.8*r.Float64(),
		collide:  r.Bool(0.5),
		overhear: r.Bool(0.5),
	}
	var faults *fault.Schedule
	switch seed % 4 {
	case 1: // static random-subset degradation
		faults = &fault.Schedule{Links: []fault.LinkRule{{BadScale: 0.4, StartBad: 0.5}}}
	case 2: // moving chains plus a jam window
		faults = &fault.Schedule{
			Links: []fault.LinkRule{{PGB: 0.05, PBG: 0.2, BadScale: 0.3}},
			Jams:  []fault.Jam{{From: 40, Until: 90, Nodes: []int{1, 2}}},
		}
	case 3: // crash/reboot churn plus chains
		faults = &fault.Schedule{
			Links:   []fault.LinkRule{{PGB: 0.03, PBG: 0.3, BadScale: 0.5, StartBad: 0.2}},
			Crashes: []fault.Crash{{Node: 1 + int(seed)%(n-1), At: 50, RebootAt: 140}},
		}
	}
	res, err := Run(Config{
		Graph:            g,
		Schedules:        schedule.AssignUniform(n, 1+int(seed%8), r.SubName("schedule")),
		Protocol:         proto,
		M:                1 + int(seed%4),
		Coverage:         1,
		Seed:             seed,
		MaxSlots:         20000,
		SyncErrorProb:    0.05,
		CaptureProb:      0.4,
		RecordReceptions: true,
		Faults:           faults,
		Workers:          workers,
		CompactTime:      compact,
	})
	if err != nil {
		t.Fatalf("seed %d workers %d: %v", seed, workers, err)
	}
	return res
}

// TestWorkerCountInvariance is the sharded mode's core determinism
// property: for any valid configuration — chaotic protocol behaviour,
// every fault-schedule family, capture, sync errors — the full Result is
// bit-for-bit identical for every worker count, on both time paths.
func TestWorkerCountInvariance(t *testing.T) {
	for seed := uint64(0); seed < 24; seed++ {
		base := chaosRun(t, seed, 1, false)
		for _, workers := range []int{2, 3, 8} {
			if got := chaosRun(t, seed, workers, false); !reflect.DeepEqual(got, base) {
				t.Fatalf("seed %d: workers %d diverged from workers 1", seed, workers)
			}
		}
		cbase := chaosRun(t, seed, 1, true)
		if got := chaosRun(t, seed, 4, true); !reflect.DeepEqual(got, cbase) {
			t.Fatalf("seed %d: compact workers 4 diverged from compact workers 1", seed)
		}
	}
}

// relabelProtocol is a deterministic, RNG-free, permutation-equivariant
// strategy: every awake receiver picks the neighbor holding its FCFS packet
// with the earliest reception time (ties: no transmission — a tie is a
// label-independent condition, picking either side would not be), and
// senders chosen by more than one receiver stand down. Its decisions depend
// only on graph structure and reception history, never on node labels or
// random draws, so relabeling the nodes relabels the outcome.
func relabelProtocol() *FuncProtocol {
	return &FuncProtocol{
		ProtocolName: "relabel-equivariant",
		Collisions:   true,
		Overhearing:  true,
		IntentsFunc: func(w *World) []Intent {
			type pick struct{ from, to, pkt int }
			var picks []pick
			senderCount := make([]int, w.Graph.N())
			for _, r := range w.AwakeList() {
				bestFrom, bestPkt := -1, -1
				bestTime := int64(math.MaxInt64)
				tie := false
				for _, l := range w.Graph.Neighbors(r) {
					pkt := w.OldestNeeded(l.To, r)
					if pkt < 0 {
						continue
					}
					rt := w.RecvTime(pkt, l.To)
					if rt < bestTime {
						bestFrom, bestPkt, bestTime, tie = l.To, pkt, rt, false
					} else if rt == bestTime {
						tie = true
					}
				}
				if bestFrom >= 0 && !tie {
					picks = append(picks, pick{bestFrom, r, bestPkt})
					senderCount[bestFrom]++
				}
			}
			var out []Intent
			for _, p := range picks {
				if senderCount[p.from] == 1 {
					out = append(out, Intent{From: p.from, To: p.to, Packet: p.pkt})
				}
			}
			return out
		},
	}
}

// TestRelabelingInvariance checks metamorphic permutation invariance on the
// RNG-free subspace (PRR 1 everywhere, so no loss draw is ever consumed;
// the protocol consumes none by construction): permuting node labels — with
// the source fixed, since injection is defined at node 0 — must permute the
// per-node results and leave every aggregate untouched, under the serial
// path, the sharded path, and both time modes. For the sharded path this
// pins down that the (slot, node)-keyed streams never leak label-dependent
// randomness into an otherwise deterministic run.
func TestRelabelingInvariance(t *testing.T) {
	const n, period = 40, 5
	build := func(perm []int) (*topology.Graph, []*schedule.Schedule) {
		g := topology.New(n)
		for i := 0; i+1 < n; i++ {
			g.AddLink(perm[i], perm[i+1], 1)
		}
		g.SortNeighbors()
		scheds := make([]*schedule.Schedule, n)
		for i := 0; i < n; i++ {
			scheds[perm[i]] = schedule.NewSingleSlot(period, i%period)
		}
		return g, scheds
	}
	run := func(perm []int, workers int, compact bool) *Result {
		g, scheds := build(perm)
		res, err := Run(Config{
			Graph:            g,
			Schedules:        scheds,
			Protocol:         relabelProtocol(),
			M:                1,
			Coverage:         1,
			Seed:             7,
			MaxSlots:         20000,
			RecordReceptions: true,
			Workers:          workers,
			CompactTime:      compact,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal("relabeling run did not complete")
		}
		return res
	}

	id := make([]int, n)
	for i := range id {
		id[i] = i
	}
	base := run(id, 0, false)

	// The permutation fixes the source and scrambles everything else.
	perm := make([]int, n)
	perm[0] = 0
	shuffled := rngutil.New(99).Perm(n - 1)
	for i, v := range shuffled {
		perm[i+1] = v + 1
	}

	for _, mode := range []struct {
		name    string
		workers int
		compact bool
	}{
		{"serial", 0, false},
		{"sharded-4", 4, false},
		{"serial-compact", 0, true},
		{"sharded-4-compact", 4, true},
	} {
		got := run(perm, mode.workers, mode.compact)
		// Aggregates are label-free.
		if got.Transmissions != base.Transmissions || got.Overheard != base.Overheard ||
			got.TotalSlots != base.TotalSlots || !reflect.DeepEqual(got.Delay, base.Delay) ||
			!reflect.DeepEqual(got.CoverTime, base.CoverTime) {
			t.Fatalf("%s: aggregates changed under relabeling", mode.name)
		}
		// Per-node vectors map through the permutation.
		for i := 0; i < n; i++ {
			if got.TxPerNode[perm[i]] != base.TxPerNode[i] {
				t.Fatalf("%s: TxPerNode[σ(%d)] = %d, want %d",
					mode.name, i, got.TxPerNode[perm[i]], base.TxPerNode[i])
			}
			if got.AwakeSlotsPerNode[perm[i]] != base.AwakeSlotsPerNode[i] {
				t.Fatalf("%s: AwakeSlots[σ(%d)] mismatch", mode.name, i)
			}
			if got.NodeRecvTime[0][perm[i]] != base.NodeRecvTime[0][i] {
				t.Fatalf("%s: NodeRecvTime[σ(%d)] = %d, want %d",
					mode.name, i, got.NodeRecvTime[0][perm[i]], base.NodeRecvTime[0][i])
			}
		}
		// The identity labeling must also reproduce base exactly on every
		// mode — the RNG-free subspace makes all paths coincide.
		if gotID := run(id, mode.workers, mode.compact); !reflect.DeepEqual(gotID, base) {
			t.Fatalf("%s: identity run differs from serial base", mode.name)
		}
	}
}

// keyedTimerProtocol is a timer-driven strategy in the style of the
// trickle/dflood implementations: each sender's fire point within the
// current 8-slot frame is a pure keyed derivation from a stream captured
// at Reset, and a receiver accepts a sender only when exactly one audible
// holder fires this slot. The key function maps node labels to timer
// identities, so composing it with a permutation transports every draw:
// keyed streams have no sequential state to desynchronize.
func keyedTimerProtocol(key func(int) int) *FuncProtocol {
	var timer rngutil.Stream
	return &FuncProtocol{
		ProtocolName: "keyed-timer",
		ResetFunc: func(w *World) {
			timer = *w.ProtoRNG.SubName("timer")
		},
		IntentsFunc: func(w *World) []Intent {
			const frame = 8
			now := w.Now()
			start := now / frame * frame
			fires := func(s int) bool {
				u := timer.PairFloat64(uint64(key(s)), uint64(start))
				return start+int64(u*frame) == now
			}
			type pick struct{ from, to int }
			var picks []pick
			senderCount := make([]int, w.Graph.N())
			for _, r := range w.AwakeList() {
				if w.Has(0, r) {
					continue
				}
				chosen, count := -1, 0
				for _, l := range w.Graph.Neighbors(r) {
					if w.Has(0, l.To) && fires(l.To) {
						chosen = l.To
						count++
					}
				}
				if count == 1 {
					picks = append(picks, pick{chosen, r})
					senderCount[chosen]++
				}
			}
			var out []Intent
			for _, pk := range picks {
				if senderCount[pk.from] == 1 {
					out = append(out, Intent{From: pk.from, To: pk.to, Packet: 0})
				}
			}
			return out
		},
	}
}

// TestKeyedTimerRelabelingInvariance is the metamorphic companion to
// TestRelabelingInvariance for timer-driven protocols: keyed stream
// derivations are pure functions of (key, frame), so permuting the node
// labels AND transporting the timer keys through the same permutation must
// permute the outcome exactly — on the serial path, the sharded path, and
// both time modes. This is the property that lets trickle and dflood keep
// bit-identical schedules across every engine mode without any engine-side
// timer state.
func TestKeyedTimerRelabelingInvariance(t *testing.T) {
	const n, period = 40, 5
	build := func(perm []int) (*topology.Graph, []*schedule.Schedule) {
		g := topology.New(n)
		for i := 0; i+1 < n; i++ {
			g.AddLink(perm[i], perm[i+1], 1)
		}
		g.SortNeighbors()
		scheds := make([]*schedule.Schedule, n)
		for i := 0; i < n; i++ {
			scheds[perm[i]] = schedule.NewSingleSlot(period, i%period)
		}
		return g, scheds
	}
	run := func(perm, role []int, workers int, compact bool) *Result {
		g, scheds := build(perm)
		res, err := Run(Config{
			Graph:            g,
			Schedules:        scheds,
			Protocol:         keyedTimerProtocol(func(s int) int { return role[s] }),
			M:                1,
			Coverage:         1,
			Seed:             7,
			MaxSlots:         40000,
			RecordReceptions: true,
			Workers:          workers,
			CompactTime:      compact,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal("keyed-timer run did not complete")
		}
		return res
	}

	id := make([]int, n)
	for i := range id {
		id[i] = i
	}
	base := run(id, id, 0, false)

	// Fix the source (injection is defined at node 0), scramble the rest,
	// and transport the timer identity: node perm[i] plays role i.
	perm := make([]int, n)
	perm[0] = 0
	for i, v := range rngutil.New(99).Perm(n - 1) {
		perm[i+1] = v + 1
	}
	role := make([]int, n)
	for i, v := range perm {
		role[v] = i
	}

	for _, mode := range []struct {
		name    string
		workers int
		compact bool
	}{
		{"serial", 0, false},
		{"sharded-4", 4, false},
		{"serial-compact", 0, true},
		{"sharded-4-compact", 4, true},
	} {
		got := run(perm, role, mode.workers, mode.compact)
		if got.Transmissions != base.Transmissions || got.TotalSlots != base.TotalSlots ||
			!reflect.DeepEqual(got.Delay, base.Delay) ||
			!reflect.DeepEqual(got.CoverTime, base.CoverTime) {
			t.Fatalf("%s: aggregates changed under relabeling", mode.name)
		}
		for i := 0; i < n; i++ {
			if got.TxPerNode[perm[i]] != base.TxPerNode[i] {
				t.Fatalf("%s: TxPerNode[σ(%d)] = %d, want %d",
					mode.name, i, got.TxPerNode[perm[i]], base.TxPerNode[i])
			}
			if got.NodeRecvTime[0][perm[i]] != base.NodeRecvTime[0][i] {
				t.Fatalf("%s: NodeRecvTime[σ(%d)] = %d, want %d",
					mode.name, i, got.NodeRecvTime[0][perm[i]], base.NodeRecvTime[0][i])
			}
		}
		if gotID := run(id, id, mode.workers, mode.compact); !reflect.DeepEqual(gotID, base) {
			t.Fatalf("%s: identity run differs from serial base", mode.name)
		}
	}
}

// TestForcedLargeGraphStructures certifies the scale substitutions are
// RNG-neutral: forcing the CSR link-lookup path (dense matrix disabled) and
// the compact plan's sparse adjacency on a small graph reproduces the dense
// structures' results bit-for-bit, serial and sharded alike.
func TestForcedLargeGraphStructures(t *testing.T) {
	seeds := []uint64{2, 5, 11}
	for _, seed := range seeds {
		dense := chaosRun(t, seed, 0, false)
		denseC := chaosRun(t, seed, 0, true)
		denseW := chaosRun(t, seed, 4, false)
		restore := setDenseLimit(0)
		restoreC := setCompactSparse(1)
		if got := chaosRun(t, seed, 0, false); !reflect.DeepEqual(got, dense) {
			t.Fatalf("seed %d: CSR-backed serial run diverged from dense", seed)
		}
		if got := chaosRun(t, seed, 0, true); !reflect.DeepEqual(got, denseC) {
			t.Fatalf("seed %d: sparse compact plan diverged from dense", seed)
		}
		if got := chaosRun(t, seed, 4, false); !reflect.DeepEqual(got, denseW) {
			t.Fatalf("seed %d: CSR-backed sharded run diverged", seed)
		}
		restoreC()
		restore()
	}
}

// TestShardedStressTinyChunks is the adversarial shape for `go test -race`:
// one-node shards maximize worker interleaving over a dense, busy slot
// structure (every node awake every other slot, heavy intent load, capture,
// chains, jams, overhearing) for hundreds of slots, and the result must
// still match the single-worker run exactly.
func TestShardedStressTinyChunks(t *testing.T) {
	defer setMinChunk(1)()
	g := topology.Grid(8, 8, 0.6)
	n := g.N()
	scheds := make([]*schedule.Schedule, n)
	for i := range scheds {
		scheds[i] = schedule.NewSingleSlot(2, i%2)
	}
	run := func(workers int) *Result {
		res, err := Run(Config{
			Graph:     g,
			Schedules: scheds,
			Protocol: &chaosProtocol{
				rng:      rngutil.New(123).SubName("chaos"),
				density:  0.9,
				collide:  true,
				overhear: true,
			},
			M:                6,
			Coverage:         1,
			Seed:             123,
			MaxSlots:         800,
			CaptureProb:      0.5,
			SyncErrorProb:    0.02,
			RecordReceptions: true,
			Faults: &fault.Schedule{
				Links: []fault.LinkRule{{PGB: 0.1, PBG: 0.2, BadScale: 0.3}},
				Jams:  []fault.Jam{{From: 100, Until: 200, Nodes: []int{5, 6, 7}}},
			},
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	if got := run(8); !reflect.DeepEqual(got, base) {
		t.Fatal("8-worker stress run diverged from 1-worker run")
	}
}

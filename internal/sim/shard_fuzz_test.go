package sim

// Fuzz target for the sharded merge path: randomized chunk sizes, worker
// counts, awake distributions (via the chaos configuration's random graph
// + schedule periods) and fault schedules, asserting the two byte-identity
// contracts on every input — worker-count invariance for arbitrary
// configurations, and serial equivalence on the deterministic subspace
// where the RNG conventions coincide.

import (
	"reflect"
	"testing"

	"ldcflood/internal/schedule"
)

// FuzzShardMerge drives the sharded resolver through adversarial
// (chunk size, worker count, fault family, topology) combinations.
func FuzzShardMerge(f *testing.F) {
	// Seed corpus: every fault family (seed % 4), the tiniest and the
	// default chunk floors, worker counts straddling the chunk count.
	f.Add(uint64(0), uint8(0), uint8(0))
	f.Add(uint64(1), uint8(3), uint8(1))
	f.Add(uint64(2), uint8(63), uint8(5))
	f.Add(uint64(3), uint8(7), uint8(3))
	f.Add(uint64(11), uint8(1), uint8(2))
	f.Add(uint64(42), uint8(15), uint8(4))
	f.Fuzz(func(t *testing.T, seed uint64, minChunkRaw, workersRaw uint8) {
		restore := setMinChunk(1 + int(minChunkRaw)%64)
		defer restore()
		workers := 2 + int(workersRaw)%6

		// Contract 1: worker-count invariance under chaos — protocol
		// randomness, sync errors, capture, faults — on both time paths.
		base := chaosRun(t, seed, 1, false)
		if got := chaosRun(t, seed, workers, false); !reflect.DeepEqual(got, base) {
			t.Fatalf("seed %d: workers %d diverged from workers 1", seed, workers)
		}
		cbase := chaosRun(t, seed, 1, true)
		if got := chaosRun(t, seed, workers, true); !reflect.DeepEqual(got, cbase) {
			t.Fatalf("seed %d: compact workers %d diverged from compact workers 1", seed, workers)
		}

		// Contract 2: on the deterministic subspace (RNG-free planner
		// protocol, PRR 1, no engine draws) the merge must also reproduce
		// the serial path exactly.
		n := 4 + int(seed%13)
		g := lineGraph(n, 1)
		period := 1 + int(seed/4)%8
		scheds := schedule.AssignStaggered(n, period)
		serial := edgeRun(t, g, scheds, 0, false)
		if got := edgeRun(t, g, scheds, workers, false); !reflect.DeepEqual(got, serial) {
			t.Fatalf("seed %d: deterministic sharded workers %d diverged from serial", seed, workers)
		}
	})
}

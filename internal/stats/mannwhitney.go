package stats

import (
	"fmt"
	"math"
	"sort"
)

// MannWhitneyResult reports the two-sided Mann-Whitney U test.
type MannWhitneyResult struct {
	// U is the test statistic (min of U1, U2).
	U float64
	// Z is the normal-approximation z-score with tie correction.
	Z float64
	// P is the two-sided p-value from the normal approximation (valid for
	// sample sizes ≳ 8 per group).
	P float64
	// Effect is the common-language effect size U1/(n1·n2): the probability
	// that a random draw from xs exceeds a random draw from ys (ties count
	// half).
	Effect float64
}

// MannWhitney performs the two-sided Mann-Whitney U test (Wilcoxon
// rank-sum) on two independent samples using the normal approximation with
// tie correction. It answers "do xs and ys come from distributions with
// the same location?" without assuming normality — the right tool for
// comparing per-packet flooding-delay distributions between protocols.
// It returns an error if either sample has fewer than 2 observations or
// all observations are identical.
func MannWhitney(xs, ys []float64) (MannWhitneyResult, error) {
	n1, n2 := len(xs), len(ys)
	if n1 < 2 || n2 < 2 {
		return MannWhitneyResult{}, fmt.Errorf("stats: MannWhitney needs >= 2 observations per group (got %d, %d)", n1, n2)
	}
	type obs struct {
		v     float64
		group int
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range xs {
		if math.IsNaN(v) {
			return MannWhitneyResult{}, fmt.Errorf("stats: MannWhitney got NaN")
		}
		all = append(all, obs{v, 0})
	}
	for _, v := range ys {
		if math.IsNaN(v) {
			return MannWhitneyResult{}, fmt.Errorf("stats: MannWhitney got NaN")
		}
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks with tie groups.
	n := len(all)
	ranks := make([]float64, n)
	tieCorrection := 0.0
	for i := 0; i < n; {
		j := i
		for j < n && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieCorrection += t*t*t - t
		i = j
	}
	r1 := 0.0
	for i, o := range all {
		if o.group == 0 {
			r1 += ranks[i]
		}
	}
	fn1, fn2 := float64(n1), float64(n2)
	u1 := r1 - fn1*(fn1+1)/2
	u2 := fn1*fn2 - u1
	u := math.Min(u1, u2)

	mean := fn1 * fn2 / 2
	fn := fn1 + fn2
	variance := fn1 * fn2 / 12 * ((fn + 1) - tieCorrection/(fn*(fn-1)))
	if variance <= 0 {
		return MannWhitneyResult{}, fmt.Errorf("stats: MannWhitney degenerate (all observations tied)")
	}
	// Continuity-corrected z.
	z := (u1 - mean)
	switch {
	case z > 0.5:
		z -= 0.5
	case z < -0.5:
		z += 0.5
	default:
		z = 0
	}
	z /= math.Sqrt(variance)
	p := 2 * normalTail(math.Abs(z))
	if p > 1 {
		p = 1
	}
	return MannWhitneyResult{
		U:      u,
		Z:      z,
		P:      p,
		Effect: u1 / (fn1 * fn2),
	}, nil
}

// normalTail returns P(Z > z) for the standard normal.
func normalTail(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

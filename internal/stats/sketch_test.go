package stats

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// rankError returns |rank(v) - q*n| / n against the sorted retained
// sample: the fraction of ranks the estimate is off by. With duplicate
// values the whole run of equal values counts as rank-correct.
func rankError(sorted []float64, v, q float64) float64 {
	n := float64(len(sorted))
	lo := float64(sort.SearchFloat64s(sorted, v))             // first index >= v
	hi := float64(sort.Search(len(sorted), func(i int) bool { // first index > v
		return sorted[i] > v
	}))
	target := q * n
	if target >= lo && target <= hi {
		return 0
	}
	return math.Min(math.Abs(target-lo), math.Abs(target-hi)) / n
}

// distributions yields named sample generators covering the shapes the
// sweeps actually see: smooth, heavy-tailed, clustered, adversarially
// ordered, and degenerate.
func distributions(rng *rand.Rand, n int) map[string][]float64 {
	uniform := make([]float64, n)
	exponential := make([]float64, n)
	bimodal := make([]float64, n)
	increasing := make([]float64, n)
	constant := make([]float64, n)
	for i := 0; i < n; i++ {
		uniform[i] = rng.Float64() * 1000
		exponential[i] = -math.Log(1-rng.Float64()) * 100
		if rng.Intn(2) == 0 {
			bimodal[i] = rng.NormFloat64() + 10
		} else {
			bimodal[i] = rng.NormFloat64() + 1000
		}
		increasing[i] = float64(i)
		constant[i] = 42
	}
	decreasing := append([]float64(nil), increasing...)
	sort.Sort(sort.Reverse(sort.Float64Slice(decreasing)))
	return map[string][]float64{
		"uniform": uniform, "exponential": exponential, "bimodal": bimodal,
		"increasing": increasing, "decreasing": decreasing, "constant": constant,
	}
}

var testQuantiles = []float64{0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1}

// TestDigestExactSmall: below ExactCap the digest must be bit-identical
// to the retained-sample Summarize/Percentile — the property that keeps
// every existing golden artifact byte-stable.
func TestDigestExactSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 17, 100, ExactCap} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 50
		}
		d := NewDigest()
		for _, x := range xs {
			d.Add(x)
		}
		if !d.Exact() {
			t.Fatalf("n=%d: digest collapsed below ExactCap", n)
		}
		if got, want := d.Summary(), Summarize(xs); !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: Summary %+v != Summarize %+v", n, got, want)
		}
		for _, q := range testQuantiles {
			if got, want := d.Quantile(q), Percentile(xs, q*100); got != want {
				t.Fatalf("n=%d q=%v: %v != exact %v", n, q, got, want)
			}
		}
	}
}

// TestDigestExactMerge: merging exact digests whose combined size still
// fits ExactCap stays exact and bit-identical to pooling the samples.
func TestDigestExactMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var pooled []float64
	total := NewDigest()
	for part := 0; part < 4; part++ {
		d := NewDigest()
		for i := 0; i < 500; i++ {
			x := rng.Float64() * 100
			d.Add(x)
			pooled = append(pooled, x)
		}
		total.Merge(d)
	}
	if !total.Exact() {
		t.Fatal("merged digest collapsed below ExactCap")
	}
	if got, want := total.Summary(), Summarize(pooled); !reflect.DeepEqual(got, want) {
		t.Fatalf("merged Summary %+v != pooled Summarize %+v", got, want)
	}
}

// TestQuantileSketchAccuracy: past ExactCap, every queried quantile's
// rank error must stay within the documented eps*n bound for an unmerged
// sketch, across distribution shapes.
func TestQuantileSketchAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 60000
	for name, xs := range distributions(rng, n) {
		s := NewQuantileSketch(DefaultEps)
		for _, x := range xs {
			s.Add(x)
		}
		if s.Exact() {
			t.Fatalf("%s: sketch did not collapse at n=%d", name, n)
		}
		if s.TupleCount() > 8192 {
			t.Errorf("%s: summary holds %d tuples — not O(1/eps)", name, s.TupleCount())
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, q := range testQuantiles {
			v := s.Quantile(q)
			if e := rankError(sorted, v, q); e > DefaultEps {
				t.Errorf("%s q=%v: rank error %.5f > eps %.5f (got value %v)", name, q, e, DefaultEps, v)
			}
		}
	}
}

// TestQuantileSketchMergeAccuracy: sharded aggregation — each shard
// sketches its slice, the shards merge (both chain and tree order), and
// every quantile must stay within the documented merged bound 2*eps*n.
func TestQuantileSketchMergeAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n, shards = 80000, 16
	for name, xs := range distributions(rng, n) {
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)

		build := func(lo, hi int) *QuantileSketch {
			s := NewQuantileSketch(DefaultEps)
			for _, x := range xs[lo:hi] {
				s.Add(x)
			}
			return s
		}
		parts := make([]*QuantileSketch, shards)
		for i := range parts {
			parts[i] = build(i*n/shards, (i+1)*n/shards)
		}

		chain := NewQuantileSketch(DefaultEps)
		for _, p := range parts {
			chain.Merge(p)
		}
		// Tree merge: pairwise reduction, the shape a parallel reducer uses.
		tree := make([]*QuantileSketch, shards)
		for i := range parts {
			tree[i] = build(i*n/shards, (i+1)*n/shards)
		}
		for len(tree) > 1 {
			var next []*QuantileSketch
			for i := 0; i+1 < len(tree); i += 2 {
				tree[i].Merge(tree[i+1])
				next = append(next, tree[i])
			}
			if len(tree)%2 == 1 {
				next = append(next, tree[len(tree)-1])
			}
			tree = next
		}

		for variant, s := range map[string]*QuantileSketch{"chain": chain, "tree": tree[0]} {
			if s.N() != int64(n) {
				t.Fatalf("%s/%s: N=%d want %d", name, variant, s.N(), n)
			}
			for _, q := range testQuantiles {
				v := s.Quantile(q)
				if e := rankError(sorted, v, q); e > 2*DefaultEps {
					t.Errorf("%s/%s q=%v: rank error %.5f > 2*eps %.5f", name, variant, q, e, 2*DefaultEps)
				}
			}
		}
	}
}

// TestDigestMomentsMatchRetained: mean/stddev/min/max from a collapsed,
// merged digest must match the retained-sample values to floating-point
// noise (the moments are exact Welford accumulators, never sketched).
func TestDigestMomentsMatchRetained(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 30000
	xs := make([]float64, n)
	total := NewDigest()
	part := NewDigest()
	for i := range xs {
		xs[i] = rng.NormFloat64()*10 + 100
		part.Add(xs[i])
		if (i+1)%1000 == 0 {
			total.Merge(part)
			part = NewDigest()
		}
	}
	if total.Exact() {
		t.Fatal("digest did not collapse")
	}
	sum := total.Summary()
	if sum.N != n {
		t.Fatalf("N=%d want %d", sum.N, n)
	}
	approx := func(got, want, tol float64) bool { return math.Abs(got-want) <= tol*math.Max(1, math.Abs(want)) }
	if !approx(sum.Mean, Mean(xs), 1e-9) {
		t.Errorf("mean %v != %v", sum.Mean, Mean(xs))
	}
	if !approx(sum.StdDev, StdDev(xs), 1e-9) {
		t.Errorf("stddev %v != %v", sum.StdDev, StdDev(xs))
	}
	if sum.Min != Min(xs) || sum.Max != Max(xs) {
		t.Errorf("min/max %v/%v != %v/%v", sum.Min, sum.Max, Min(xs), Max(xs))
	}
}

// TestDigestDeterminism: the same add/merge sequence must reproduce the
// identical summary — sweeps rely on this for byte-stable artifacts.
func TestDigestDeterminism(t *testing.T) {
	run := func() Summary {
		rng := rand.New(rand.NewSource(6))
		d := NewDigest()
		o := NewDigest()
		for i := 0; i < 20000; i++ {
			d.Add(rng.Float64())
			o.Add(rng.Float64())
		}
		d.Merge(o)
		return d.Summary()
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatalf("summaries differ across identical runs:\n%+v\n%+v", a, b)
	}
}

// TestDigestEmpty: an empty digest reports NaN statistics and N=0, like
// the retained-sample functions.
func TestDigestEmpty(t *testing.T) {
	d := NewDigest()
	s := d.Summary()
	if s.N != 0 || !math.IsNaN(s.Mean) || !math.IsNaN(s.Median) {
		t.Fatalf("empty digest summary %+v", s)
	}
	if !math.IsNaN(d.Quantile(0.5)) {
		t.Fatal("empty digest quantile not NaN")
	}
}

// TestHistogramMerge: merged histograms must equal the histogram of the
// pooled sample, and layout mismatches must panic.
func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pooled := NewHistogram(0, 100, 20)
	a := NewHistogram(0, 100, 20)
	b := NewHistogram(0, 100, 20)
	for i := 0; i < 5000; i++ {
		x := rng.Float64()*120 - 10 // includes under/overflow
		pooled.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if !reflect.DeepEqual(a, pooled) {
		t.Fatalf("merged histogram differs from pooled:\n%+v\n%+v", a, pooled)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("layout mismatch did not panic")
		}
	}()
	a.Merge(NewHistogram(0, 50, 20))
}

// TestQuantileSketchEpsMismatch: merging sketches with different accuracy
// targets is a wiring bug and must panic.
func TestQuantileSketchEpsMismatch(t *testing.T) {
	a := NewQuantileSketch(0.005)
	b := NewQuantileSketch(0.01)
	b.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("eps mismatch did not panic")
		}
	}()
	a.Merge(b)
}

// TestDigestCDFExact: below ExactCap, CDF must reproduce the retained
// sorted sample point for point — values bit-identical to the sorted
// input (duplicates included), cumulative counts 1..N. This is the
// contract that lets figure aggregation swap a retained []float64 for a
// Digest without moving a byte of output.
func TestDigestCDFExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for name, xs := range distributions(rng, 1000) {
		d := NewDigest()
		for _, x := range xs {
			d.Add(x)
		}
		if !d.Exact() {
			t.Fatalf("%s: digest collapsed below ExactCap", name)
		}
		values, cum := d.CDF()
		want := append([]float64(nil), xs...)
		sort.Float64s(want)
		if !reflect.DeepEqual(values, want) {
			t.Fatalf("%s: exact CDF values differ from the sorted sample", name)
		}
		for i, c := range cum {
			if c != int64(i+1) {
				t.Fatalf("%s: cumCounts[%d] = %d, want %d", name, i, c, i+1)
			}
		}
	}
}

// TestDigestCDFSketched: past ExactCap the CDF is the GK summary — values
// sorted, cumulative counts strictly increasing and ending at N, size
// bounded by the summary, and every point's implied quantile within the
// sketch's rank-error budget of the true empirical CDF.
func TestDigestCDFSketched(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 3 * ExactCap
	for name, xs := range distributions(rng, n) {
		d := NewDigest()
		for _, x := range xs {
			d.Add(x)
		}
		if d.Exact() {
			t.Fatalf("%s: digest still exact past ExactCap", name)
		}
		values, cum := d.CDF()
		if len(values) != len(cum) || len(values) == 0 {
			t.Fatalf("%s: mismatched CDF slices (%d, %d)", name, len(values), len(cum))
		}
		if len(values) >= n {
			t.Fatalf("%s: sketched CDF has %d points for %d observations", name, len(values), n)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := int64(0)
		for i, v := range values {
			if i > 0 && v < values[i-1] {
				t.Fatalf("%s: CDF values not sorted at %d", name, i)
			}
			if cum[i] <= prev {
				t.Fatalf("%s: cumCounts not increasing at %d", name, i)
			}
			prev = cum[i]
			if e := rankError(sorted, v, float64(cum[i])/float64(n)); e > 2*DefaultEps {
				t.Fatalf("%s: CDF point %d rank error %v exceeds budget", name, i, e)
			}
		}
		if cum[len(cum)-1] != int64(n) {
			t.Fatalf("%s: CDF ends at %d, want %d", name, cum[len(cum)-1], n)
		}
	}
}

// Package stats provides the small statistical toolkit used by the
// simulator, the analysis package and the experiment harness: summary
// statistics, percentiles, running (Welford) accumulators, histograms,
// simple linear regression and bootstrap confidence intervals.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or NaN when len(xs) < 1.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	acc := 0.0
	for _, x := range xs {
		d := x - m
		acc += d * d
	}
	return acc / float64(len(xs))
}

// SampleVariance returns the unbiased sample variance (divisor n-1), or NaN
// when len(xs) < 2.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	acc := 0.0
	for _, x := range xs {
		d := x - m
		acc += d * d
	}
	return acc / float64(len(xs)-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns NaN for an empty slice and
// panics for p outside [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,100]", p))
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted assumes xs is sorted ascending and non-empty.
func percentileSorted(xs []float64, p float64) float64 {
	if len(xs) == 1 {
		return xs[0]
	}
	rank := p / 100 * float64(len(xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return xs[lo]
	}
	frac := rank - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Summary captures the five-number summary plus mean and stddev of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary of xs. An empty input yields a zero-N summary
// with NaN fields.
func Summarize(xs []float64) Summary {
	s := Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
	}
	if len(xs) == 0 {
		s.P25, s.Median, s.P75, s.P99 = math.NaN(), math.NaN(), math.NaN(), math.NaN()
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P25 = percentileSorted(sorted, 25)
	s.Median = percentileSorted(sorted, 50)
	s.P75 = percentileSorted(sorted, 75)
	s.P99 = percentileSorted(sorted, 99)
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p99=%.3f max=%.3f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.P99, s.Max)
}

// Running accumulates streaming mean and variance using Welford's method.
// The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of observations added.
func (r *Running) N() int { return r.n }

// Mean returns the running mean, or NaN when empty.
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// Variance returns the running population variance, or NaN when empty.
func (r *Running) Variance() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the running population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation, or NaN when empty.
func (r *Running) Min() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.min
}

// Max returns the largest observation, or NaN when empty.
func (r *Running) Max() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.max
}

// Merge combines another accumulator into r (parallel Welford merge).
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	n := r.n + o.n
	delta := o.mean - r.mean
	mean := r.mean + delta*float64(o.n)/float64(n)
	m2 := r.m2 + o.m2 + delta*delta*float64(r.n)*float64(o.n)/float64(n)
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n, r.mean, r.m2 = n, mean, m2
}

// Histogram is a fixed-bin histogram over [Lo, Hi). Values outside the range
// are counted in Under/Over.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
// It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram needs bins > 0")
	}
	if hi <= lo {
		panic("stats: histogram needs hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i >= len(h.Counts) { // float round-off guard
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations added, including out-of-range.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Mode returns the index of the fullest bin (first one on ties).
func (h *Histogram) Mode() int {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return best
}

// LinearFit returns the least-squares slope and intercept of y on x.
// It panics if the lengths differ or fewer than two points are given, and
// returns slope NaN for degenerate (zero-variance) x.
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) {
		panic("stats: LinearFit length mismatch")
	}
	if len(x) < 2 {
		panic("stats: LinearFit needs >= 2 points")
	}
	mx, my := Mean(x), Mean(y)
	num, den := 0.0, 0.0
	for i := range x {
		num += (x[i] - mx) * (y[i] - my)
		den += (x[i] - mx) * (x[i] - mx)
	}
	if den == 0 {
		return math.NaN(), math.NaN()
	}
	slope = num / den
	return slope, my - slope*mx
}

// RandSource is the minimal random interface needed by Bootstrap; it is
// satisfied by *rngutil.Stream.
type RandSource interface {
	// Intn returns a uniform draw from [0, n); it panics if n <= 0.
	Intn(n int) int
}

// BootstrapMeanCI returns a (lo, hi) percentile bootstrap confidence
// interval for the mean of xs at the given confidence level (e.g. 0.95),
// using the provided number of resamples. It panics on an empty sample,
// level outside (0,1), or resamples <= 0.
func BootstrapMeanCI(xs []float64, level float64, resamples int, r RandSource) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: bootstrap of empty sample")
	}
	if level <= 0 || level >= 1 {
		panic("stats: bootstrap level must be in (0,1)")
	}
	if resamples <= 0 {
		panic("stats: bootstrap needs resamples > 0")
	}
	means := make([]float64, resamples)
	for i := range means {
		sum := 0.0
		for j := 0; j < len(xs); j++ {
			sum += xs[r.Intn(len(xs))]
		}
		means[i] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	return percentileSorted(means, alpha*100), percentileSorted(means, (1-alpha)*100)
}

package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"ldcflood/internal/rngutil"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Mean([]float64{-5}); got != -5 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestVariance(t *testing.T) {
	if !math.IsNaN(Variance(nil)) {
		t.Fatal("Variance(nil) should be NaN")
	}
	if got := Variance([]float64{2, 2, 2}); got != 0 {
		t.Fatalf("Variance of constant = %v", got)
	}
	// Var of {1,2,3,4} (population) = 1.25
	if got := Variance([]float64{1, 2, 3, 4}); !almostEq(got, 1.25, 1e-12) {
		t.Fatalf("Variance = %v", got)
	}
}

func TestSampleVariance(t *testing.T) {
	if !math.IsNaN(SampleVariance([]float64{1})) {
		t.Fatal("SampleVariance of single value should be NaN")
	}
	// Sample var of {1,2,3,4} = 5/3
	if got := SampleVariance([]float64{1, 2, 3, 4}); !almostEq(got, 5.0/3.0, 1e-12) {
		t.Fatalf("SampleVariance = %v", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 11 {
		t.Fatalf("min/max/sum wrong: %v %v %v", Min(xs), Max(xs), Sum(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("Min/Max of empty should be NaN")
	}
	if Sum(nil) != 0 {
		t.Fatal("Sum(nil) should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {25, 20}, {50, 30}, {75, 40}, {100, 50}, {10, 14},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-9) {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("Percentile of empty should be NaN")
	}
	if got := Percentile([]float64{42}, 99); got != 42 {
		t.Fatalf("single-element percentile = %v", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Percentile(-1) did not panic")
		}
	}()
	Percentile([]float64{1}, -1)
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Fatalf("Median = %v", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Median = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) || !math.IsNaN(empty.Median) {
		t.Fatalf("bad empty summary: %+v", empty)
	}
	if s.String() == "" {
		t.Fatal("Summary.String empty")
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	xs := []float64{4, 8, 15, 16, 23, 42}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	if r.N() != len(xs) {
		t.Fatalf("N = %d", r.N())
	}
	if !almostEq(r.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("running mean %v vs %v", r.Mean(), Mean(xs))
	}
	if !almostEq(r.Variance(), Variance(xs), 1e-9) {
		t.Fatalf("running var %v vs %v", r.Variance(), Variance(xs))
	}
	if r.Min() != 4 || r.Max() != 42 {
		t.Fatalf("running min/max %v %v", r.Min(), r.Max())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if !math.IsNaN(r.Mean()) || !math.IsNaN(r.Variance()) || !math.IsNaN(r.Min()) || !math.IsNaN(r.Max()) {
		t.Fatal("empty Running should report NaN")
	}
}

func TestRunningMerge(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7}
	var a, b, whole Running
	for i, x := range xs {
		if i < 3 {
			a.Add(x)
		} else {
			b.Add(x)
		}
		whole.Add(x)
	}
	a.Merge(&b)
	if a.N() != whole.N() || !almostEq(a.Mean(), whole.Mean(), 1e-9) || !almostEq(a.Variance(), whole.Variance(), 1e-9) {
		t.Fatalf("merge mismatch: %v/%v vs %v/%v", a.Mean(), a.Variance(), whole.Mean(), whole.Variance())
	}
	var empty Running
	empty.Merge(&whole)
	if empty.N() != whole.N() {
		t.Fatal("merge into empty failed")
	}
	n := whole.N()
	var empty2 Running
	whole.Merge(&empty2)
	if whole.N() != n {
		t.Fatal("merging empty changed accumulator")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 100} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Fatalf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Fatalf("bin1 = %d", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.99
		t.Fatalf("bin4 = %d", h.Counts[4])
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	if got := h.BinCenter(0); got != 1 {
		t.Fatalf("BinCenter(0) = %v", got)
	}
	if h.Mode() != 0 {
		t.Fatalf("Mode = %d", h.Mode())
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept := LinearFit(x, y)
	if !almostEq(slope, 2, 1e-9) || !almostEq(intercept, 1, 1e-9) {
		t.Fatalf("fit = %v, %v", slope, intercept)
	}
	s, _ := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if !math.IsNaN(s) {
		t.Fatal("degenerate x should give NaN slope")
	}
}

func TestLinearFitPanics(t *testing.T) {
	for _, f := range []func(){
		func() { LinearFit([]float64{1}, []float64{1, 2}) },
		func() { LinearFit([]float64{1}, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	r := rngutil.New(99)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.NormMeanStd(10, 2)
	}
	lo, hi := BootstrapMeanCI(xs, 0.95, 500, r)
	if lo >= hi {
		t.Fatalf("degenerate CI [%v, %v]", lo, hi)
	}
	if lo > 10 || hi < 10 {
		t.Fatalf("CI [%v, %v] excludes true mean 10", lo, hi)
	}
	if hi-lo > 2 {
		t.Fatalf("CI [%v, %v] implausibly wide", lo, hi)
	}
}

func TestBootstrapPanics(t *testing.T) {
	r := rngutil.New(1)
	for _, f := range []func(){
		func() { BootstrapMeanCI(nil, 0.95, 10, r) },
		func() { BootstrapMeanCI([]float64{1}, 0, 10, r) },
		func() { BootstrapMeanCI([]float64{1}, 1.5, 10, r) },
		func() { BootstrapMeanCI([]float64{1}, 0.95, 0, r) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: percentile is monotone in p.
func TestQuickPercentileMonotone(t *testing.T) {
	r := rngutil.New(5)
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 := r.Float64() * 100
		p2 := r.Float64() * 100
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(xs, p1) <= Percentile(xs, p2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize respects ordering Min <= P25 <= Median <= P75 <= Max.
func TestQuickSummaryOrdering(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.P25 && s.P25 <= s.Median && s.Median <= s.P75 && s.P75 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: running accumulator agrees with batch computation.
func TestQuickRunningAgreesWithBatch(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		var r Running
		for _, x := range xs {
			r.Add(x)
		}
		scale := math.Max(1, math.Abs(Mean(xs)))
		return almostEq(r.Mean(), Mean(xs), 1e-6*scale) &&
			almostEq(r.Variance(), Variance(xs), 1e-4*math.Max(1, Variance(xs)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram conserves count.
func TestQuickHistogramConservation(t *testing.T) {
	f := func(raw []float64) bool {
		h := NewHistogram(-100, 100, 16)
		n := 0
		for _, x := range raw {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
			n++
		}
		inBins := 0
		for _, c := range h.Counts {
			inBins += c
		}
		return h.Total() == n && inBins+h.Under+h.Over == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

var sink float64

func BenchmarkSummarize(b *testing.B) {
	r := rngutil.New(1)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = Summarize(xs).Median
	}
}

func BenchmarkRunningAdd(b *testing.B) {
	var r Running
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add(float64(i % 1000))
	}
	sink = r.Mean()
}

func TestSortStability(t *testing.T) {
	// Guard that percentileSorted requires sorted input by checking the
	// public API sorts internally.
	xs := []float64{9, 1, 5}
	want := append([]float64(nil), xs...)
	sort.Float64s(want)
	if got := Percentile(xs, 0); got != want[0] {
		t.Fatalf("Percentile(0) = %v, want %v", got, want[0])
	}
	if got := Percentile(xs, 100); got != want[2] {
		t.Fatalf("Percentile(100) = %v, want %v", got, want[2])
	}
}

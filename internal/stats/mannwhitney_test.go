package stats

import (
	"math"
	"testing"

	"ldcflood/internal/rngutil"
)

func TestMannWhitneyErrors(t *testing.T) {
	if _, err := MannWhitney([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("tiny sample accepted")
	}
	if _, err := MannWhitney([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("tiny sample accepted")
	}
	if _, err := MannWhitney([]float64{1, math.NaN()}, []float64{1, 2}); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := MannWhitney([]float64{3, 3, 3}, []float64{3, 3, 3}); err == nil {
		t.Fatal("all-tied samples accepted")
	}
}

func TestMannWhitneyIdenticalDistributions(t *testing.T) {
	r := rngutil.New(1)
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = r.NormMeanStd(5, 1)
		ys[i] = r.NormMeanStd(5, 1)
	}
	res, err := MannWhitney(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.01 {
		t.Fatalf("identical distributions flagged significant: p=%v", res.P)
	}
	if math.Abs(res.Effect-0.5) > 0.1 {
		t.Fatalf("effect size %v far from 0.5", res.Effect)
	}
}

func TestMannWhitneyShiftedDistributions(t *testing.T) {
	r := rngutil.New(2)
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = r.NormMeanStd(5, 1)
		ys[i] = r.NormMeanStd(6, 1) // clearly shifted
	}
	res, err := MannWhitney(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Fatalf("clear shift not detected: p=%v", res.P)
	}
	// xs < ys, so P(x > y) well below 0.5.
	if res.Effect > 0.35 {
		t.Fatalf("effect size %v should be well below 0.5", res.Effect)
	}
}

func TestMannWhitneyHandlesTies(t *testing.T) {
	// Heavily tied integer data with a real shift.
	xs := []float64{1, 1, 2, 2, 2, 3, 3, 3, 3, 2, 1, 2, 3, 2}
	ys := []float64{3, 3, 4, 4, 4, 5, 5, 3, 4, 5, 4, 4, 3, 4}
	res, err := MannWhitney(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 0.01 {
		t.Fatalf("tied-but-shifted samples not significant: p=%v", res.P)
	}
}

func TestMannWhitneySymmetric(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 9}
	ys := []float64{5, 6, 7, 8, 10}
	a, err := MannWhitney(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MannWhitney(ys, xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.P-b.P) > 1e-12 || a.U != b.U {
		t.Fatalf("test not symmetric: %+v vs %+v", a, b)
	}
	if math.Abs(a.Effect+b.Effect-1) > 1e-12 {
		t.Fatalf("effects should sum to 1: %v + %v", a.Effect, b.Effect)
	}
}

func TestMannWhitneyKnownValue(t *testing.T) {
	// Hand-computed tiny example: xs ranks 1,2,3,4 vs ys ranks 5,6,7,8:
	// U1 = 0, U2 = 16, U = 0 — complete separation.
	xs := []float64{1, 2, 3, 4}
	ys := []float64{10, 20, 30, 40}
	res, err := MannWhitney(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.U != 0 {
		t.Fatalf("U = %v, want 0", res.U)
	}
	if res.Effect != 0 {
		t.Fatalf("effect = %v, want 0", res.Effect)
	}
}

func TestNormalTail(t *testing.T) {
	// P(Z > 0) = 0.5; P(Z > 1.96) ≈ 0.025.
	if math.Abs(normalTail(0)-0.5) > 1e-12 {
		t.Fatal("normalTail(0) wrong")
	}
	if math.Abs(normalTail(1.96)-0.025) > 0.001 {
		t.Fatalf("normalTail(1.96) = %v", normalTail(1.96))
	}
}

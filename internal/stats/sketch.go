package stats

// Online, mergeable summaries for large-scale aggregation. A Digest
// replaces a retained []float64 sample wherever sweeps, figures and
// service artifacts pool observations across runs: it keeps streaming
// moments (Welford), min/max, and a Greenwald-Khanna quantile summary.
//
// The design rule is exact-small / sketched-large: up to ExactCap
// observations the digest simply retains the sample, and every statistic
// it reports is BIT-IDENTICAL to the retained-sample functions in this
// package (Summarize, Percentile) — existing golden outputs cannot move.
// Past ExactCap the sample collapses into the GK summary and memory stays
// O(1/eps) per metric no matter how many observations follow; quantile
// queries are then approximate with the rank-error guarantee documented
// on QuantileSketch (and, operationally, in docs/TRACE.md's "Online
// statistics" section).

import (
	"fmt"
	"math"
	"sort"
)

// DefaultEps is the quantile-sketch accuracy used by NewDigest: a queried
// quantile's rank is within eps*n of the target for an unmerged sketch
// (2*eps*n after merging). 0.005 resolves a P99 over any sample size.
const DefaultEps = 0.005

// ExactCap is how many observations a sketch retains before collapsing
// into the approximate GK summary. Below this the sketch is exact —
// byte-for-byte equal to retained-sample statistics.
const ExactCap = 4096

// gkTuple is one Greenwald-Khanna summary entry: a value, the gap g
// between its minimum rank and the previous tuple's, and the rank
// uncertainty del (rmax - rmin).
type gkTuple struct {
	v      float64
	g, del int64
}

// QuantileSketch is a mergeable streaming quantile summary
// (Greenwald-Khanna with an exact-small fast path). The zero value is not
// usable; call NewQuantileSketch. It is deterministic: the summary (and
// therefore every query) is a pure function of the insertion/merge
// sequence, so parallel pipelines that merge in a fixed order produce
// identical artifacts.
//
// Accuracy: Quantile(q) returns a value whose rank r in the observed
// multiset satisfies |r - q*n| <= eps*n for a sketch built by Add alone,
// and |r - q*n| <= 2*eps*n for a sketch produced by Merge (each merge
// level compounds the bound; the property tests in sketch_test.go verify
// both). Below ExactCap observations the answer is exact — identical to
// Percentile on the retained sample.
type QuantileSketch struct {
	eps    float64
	n      int64
	raw    []float64 // exact mode; nil once collapsed
	tuples []gkTuple // approximate mode
	since  int64     // inserts since the last compress
}

// NewQuantileSketch returns an empty sketch with the given accuracy
// target; eps must lie in (0, 0.5). Use DefaultEps unless a different
// trade-off is needed.
func NewQuantileSketch(eps float64) *QuantileSketch {
	if eps <= 0 || eps >= 0.5 {
		panic(fmt.Sprintf("stats: quantile sketch eps %v outside (0, 0.5)", eps))
	}
	return &QuantileSketch{eps: eps}
}

// N returns the number of observations added (including merged ones).
func (s *QuantileSketch) N() int64 { return s.n }

// Exact reports whether the sketch still retains its full sample, i.e.
// queries are exact rather than eps-approximate.
func (s *QuantileSketch) Exact() bool { return s.tuples == nil }

// Add inserts one observation.
func (s *QuantileSketch) Add(x float64) {
	s.n++
	if s.tuples == nil {
		s.raw = append(s.raw, x)
		if int64(len(s.raw)) > ExactCap {
			s.collapse()
		}
		return
	}
	s.insert(x)
}

// collapse converts the retained sample into an error-free GK summary and
// releases the raw buffer.
func (s *QuantileSketch) collapse() {
	sorted := append([]float64(nil), s.raw...)
	sort.Float64s(sorted)
	s.tuples = make([]gkTuple, len(sorted))
	for i, v := range sorted {
		s.tuples[i] = gkTuple{v: v, g: 1}
	}
	s.raw = nil
}

// insert adds x to the GK summary (approximate mode only).
func (s *QuantileSketch) insert(x float64) {
	// Position of the first tuple with v >= x.
	i := sort.Search(len(s.tuples), func(i int) bool { return s.tuples[i].v >= x })
	var del int64
	if i > 0 && i < len(s.tuples) {
		del = int64(2 * s.eps * float64(s.n))
	}
	s.tuples = append(s.tuples, gkTuple{})
	copy(s.tuples[i+1:], s.tuples[i:])
	s.tuples[i] = gkTuple{v: x, g: 1, del: del}
	s.since++
	if s.since >= int64(1/(2*s.eps)) {
		s.compress()
		s.since = 0
	}
}

// compress merges adjacent tuples whose combined rank uncertainty stays
// within the 2*eps*n budget, bounding the summary at O(1/eps) tuples.
func (s *QuantileSketch) compress() {
	if len(s.tuples) < 3 {
		return
	}
	budget := int64(2 * s.eps * float64(s.n))
	out := s.tuples[:0]
	out = append(out, s.tuples[0])
	// Greedily fold tuple i into its successor when allowed; the first
	// and last tuples are always kept (they pin min and max).
	for i := 1; i < len(s.tuples); i++ {
		cur := s.tuples[i]
		last := &out[len(out)-1]
		if len(out) > 1 && last.g+cur.g+cur.del <= budget {
			cur.g += last.g
			out[len(out)-1] = cur
		} else {
			out = append(out, cur)
		}
	}
	s.tuples = out
}

// Merge folds o into s; o is left untouched. Merging two exact sketches
// stays exact while the combined sample fits ExactCap; otherwise both
// collapse and their summaries merge, after which queries carry the
// merged accuracy bound documented on the type. Merging sketches with
// different eps panics — that is a wiring bug, not data.
func (s *QuantileSketch) Merge(o *QuantileSketch) {
	if o.n == 0 {
		return
	}
	if s.eps != o.eps {
		panic(fmt.Sprintf("stats: merging quantile sketches with eps %v and %v", s.eps, o.eps))
	}
	if s.tuples == nil && o.tuples == nil && int64(len(s.raw)+len(o.raw)) <= ExactCap {
		s.raw = append(s.raw, o.raw...)
		s.n += o.n
		return
	}
	if s.tuples == nil {
		s.collapse()
	}
	ot := o.tuples
	if ot == nil {
		tmp := &QuantileSketch{eps: o.eps, n: o.n, raw: o.raw}
		tmp.collapse()
		ot = tmp.tuples
	}
	s.tuples = mergeTuples(s.tuples, ot)
	s.n += o.n
	s.compress()
}

// mergeTuples interleaves two GK summaries by value. Each side's gap
// counts are preserved; the uncertainty of a tuple grows by the
// uncertainty of the other summary's surrounding gap, which is what makes
// the merged summary's bound eps_a + eps_b (Agarwal et al.'s mergeable-
// summaries argument).
func mergeTuples(a, b []gkTuple) []gkTuple {
	out := make([]gkTuple, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		var t gkTuple
		if a[i].v <= b[j].v {
			t = a[i]
			// Rank uncertainty contributed by the other summary: the gap
			// it spans around this value.
			if j > 0 && j < len(b) {
				t.del += b[j].g + b[j].del - 1
			}
			i++
		} else {
			t = b[j]
			if i > 0 && i < len(a) {
				t.del += a[i].g + a[i].del - 1
			}
			j++
		}
		if t.del < 0 {
			t.del = 0
		}
		out = append(out, t)
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Quantile returns the value at quantile q in [0, 1]. In exact mode it
// equals Percentile(sample, q*100); in approximate mode the rank error is
// bounded as documented on the type. It returns NaN for an empty sketch
// and panics for q outside [0, 1].
func (s *QuantileSketch) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	if s.n == 0 {
		return math.NaN()
	}
	if s.tuples == nil {
		sorted := append([]float64(nil), s.raw...)
		sort.Float64s(sorted)
		return percentileSorted(sorted, q*100)
	}
	// Target rank (1-based), with the summary's tolerance.
	r := int64(math.Ceil(q * float64(s.n)))
	if r < 1 {
		r = 1
	}
	tol := int64(s.eps * float64(s.n))
	var rmin int64
	for i, t := range s.tuples {
		rmin += t.g
		rmax := rmin + t.del
		if r-rmin <= tol && rmax-r <= tol {
			return t.v
		}
		if i == len(s.tuples)-1 {
			break
		}
	}
	return s.tuples[len(s.tuples)-1].v
}

// TupleCount reports the current summary size (diagnostics; O(1/eps) once
// collapsed).
func (s *QuantileSketch) TupleCount() int {
	if s.tuples == nil {
		return len(s.raw)
	}
	return len(s.tuples)
}

// Digest is the one-stop mergeable metric accumulator: streaming moments
// plus a quantile sketch. It is what sweep-scale pipelines hold per
// metric instead of a growing []float64 — O(1) memory past ExactCap
// observations, bit-identical to retained-sample statistics below it.
// The zero value is not usable; call NewDigest.
type Digest struct {
	m Running
	q *QuantileSketch
}

// NewDigest returns an empty digest with the DefaultEps quantile
// accuracy.
func NewDigest() *Digest {
	return &Digest{q: NewQuantileSketch(DefaultEps)}
}

// Add incorporates one observation.
func (d *Digest) Add(x float64) {
	d.m.Add(x)
	d.q.Add(x)
}

// Merge folds another digest into d (o is left untouched).
func (d *Digest) Merge(o *Digest) {
	d.m.Merge(&o.m)
	d.q.Merge(o.q)
}

// N returns the number of observations.
func (d *Digest) N() int { return int(d.q.N()) }

// Exact reports whether the digest still holds its full sample (all
// statistics exact).
func (d *Digest) Exact() bool { return d.q.Exact() }

// Quantile returns the value at quantile q in [0, 1]; see
// QuantileSketch.Quantile for the accuracy contract.
func (d *Digest) Quantile(q float64) float64 { return d.q.Quantile(q) }

// Summary renders the digest in the package's Summary shape. In exact
// mode it is bit-identical to Summarize over the same observations in the
// same order; in approximate mode the moments are exact (Welford) and the
// percentiles carry the sketch bound.
func (d *Digest) Summary() Summary {
	if d.q.Exact() {
		return Summarize(d.q.raw)
	}
	return Summary{
		N:      d.N(),
		Mean:   d.m.Mean(),
		StdDev: d.m.StdDev(),
		Min:    d.m.Min(),
		Max:    d.m.Max(),
		P25:    d.q.Quantile(0.25),
		Median: d.q.Quantile(0.50),
		P75:    d.q.Quantile(0.75),
		P99:    d.q.Quantile(0.99),
	}
}

// CDF returns the digest's empirical distribution as parallel slices:
// values in ascending order and the cumulative observation count at each
// value. In exact mode every retained observation contributes one point
// (duplicates included), so plotting values[i] against
// float64(cumCounts[i])/N reproduces the retained-sample CDF bit for bit —
// the contract the nodecdf figure relies on. In approximate mode each GK
// tuple contributes one point at its minimum rank, so the curve carries
// the sketch's eps rank-error bound and its length is the O(1/eps) summary
// size rather than N. Both slices are freshly allocated; an empty digest
// returns nil, nil.
func (d *Digest) CDF() (values []float64, cumCounts []int64) {
	if d.q.n == 0 {
		return nil, nil
	}
	if d.q.tuples == nil {
		values = append([]float64(nil), d.q.raw...)
		sort.Float64s(values)
		cumCounts = make([]int64, len(values))
		for i := range cumCounts {
			cumCounts[i] = int64(i + 1)
		}
		return values, cumCounts
	}
	values = make([]float64, len(d.q.tuples))
	cumCounts = make([]int64, len(d.q.tuples))
	var rmin int64
	for i, t := range d.q.tuples {
		rmin += t.g
		values[i] = t.v
		cumCounts[i] = rmin
	}
	return values, cumCounts
}

// Merge folds another histogram with the identical bin layout into h;
// mismatched layouts panic (a wiring bug — histograms are only mergeable
// when they describe the same bins).
func (h *Histogram) Merge(o *Histogram) {
	if h.Lo != o.Lo || h.Hi != o.Hi || len(h.Counts) != len(o.Counts) {
		panic(fmt.Sprintf("stats: merging histograms with different layouts ([%v,%v)x%d vs [%v,%v)x%d)",
			h.Lo, h.Hi, len(h.Counts), o.Lo, o.Hi, len(o.Counts)))
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Under += o.Under
	h.Over += o.Over
	h.total += o.total
}

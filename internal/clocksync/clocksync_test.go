package clocksync

import (
	"math"
	"testing"

	"ldcflood/internal/topology"
)

func TestConfigValidation(t *testing.T) {
	g := topology.Line(3, 0.9)
	bad := []Config{
		{DriftPPMStd: -1, BeaconNoiseStd: 0, SyncInterval: 10, Horizon: 100, SamplesPerInterval: 4},
		{DriftPPMStd: 1, BeaconNoiseStd: -1, SyncInterval: 10, Horizon: 100, SamplesPerInterval: 4},
		{DriftPPMStd: 1, BeaconNoiseStd: 0, SyncInterval: 0, Horizon: 100, SamplesPerInterval: 4},
		{DriftPPMStd: 1, BeaconNoiseStd: 0, SyncInterval: 200, Horizon: 100, SamplesPerInterval: 4},
		{DriftPPMStd: 1, BeaconNoiseStd: 0, SyncInterval: 10, Horizon: 100, SamplesPerInterval: 0},
	}
	for i, cfg := range bad {
		if _, err := Simulate(g, cfg, 1); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
	if _, err := Simulate(g, DefaultConfig(), 1); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	g := topology.GreenOrbs(4)
	a, err := Simulate(g, DefaultConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(g, DefaultConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.AllErrors.Mean != b.AllErrors.Mean || a.AllErrors.Max != b.AllErrors.Max {
		t.Fatal("not deterministic")
	}
	c, _ := Simulate(g, DefaultConfig(), 8)
	if a.AllErrors.Mean == c.AllErrors.Mean {
		t.Log("warning: different seeds gave identical means")
	}
}

func TestErrorGrowsWithDriftAndInterval(t *testing.T) {
	g := topology.Line(10, 0.9)
	base := DefaultConfig()
	lowDrift := base
	lowDrift.DriftPPMStd = 5
	highDrift := base
	highDrift.DriftPPMStd = 100
	rLow, err := Simulate(g, lowDrift, 1)
	if err != nil {
		t.Fatal(err)
	}
	rHigh, err := Simulate(g, highDrift, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rHigh.AllErrors.Mean <= rLow.AllErrors.Mean {
		t.Fatalf("drift did not raise error: %v vs %v", rHigh.AllErrors.Mean, rLow.AllErrors.Mean)
	}
	longIv := base
	longIv.SyncInterval = 600
	rLong, err := Simulate(g, longIv, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rLong.AllErrors.Mean <= rLow.AllErrors.Mean {
		t.Fatalf("longer interval did not raise error: %v vs base-drift %v", rLong.AllErrors.Mean, rLow.AllErrors.Mean)
	}
}

func TestLinkErrorsCoverAllLinks(t *testing.T) {
	g := topology.Grid(3, 3, 0.9)
	res, err := Simulate(g, DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LinkErrors) != g.NumLinks() {
		t.Fatalf("%d link summaries for %d links", len(res.LinkErrors), g.NumLinks())
	}
	for i, s := range res.LinkErrors {
		if s.N == 0 || s.Min < 0 {
			t.Fatalf("link %d summary degenerate: %+v", i, s)
		}
	}
}

func TestMissProbability(t *testing.T) {
	g := topology.Line(5, 0.9)
	res, err := Simulate(g, DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Huge slots: nothing misses. Tiny slots: everything misses.
	if p := res.MissProbability(3600); p != 0 {
		t.Fatalf("hour-long slots should never miss, got %v", p)
	}
	if p := res.MissProbability(1e-9); p < 0.99 {
		t.Fatalf("nanosecond slots should always miss, got %v", p)
	}
	// Monotone in slot duration.
	p10 := res.MissProbability(0.010)
	p100 := res.MissProbability(0.100)
	if p100 > p10 {
		t.Fatalf("longer slots should miss less: %v vs %v", p100, p10)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive slot accepted")
		}
	}()
	res.MissProbability(0)
}

func TestMissProbabilityEmpty(t *testing.T) {
	var r Result
	if r.MissProbability(1) != 0 {
		t.Fatal("empty result should report 0")
	}
}

func TestRequiredSyncInterval(t *testing.T) {
	cfg := DefaultConfig()
	// 10ms slots, 30ppm two-sigma drift, 1ms noise:
	// budget = 5ms - 1ms = 4ms; relDrift = 60e-6 → ~66.7s.
	iv := RequiredSyncInterval(cfg, 0.010)
	if math.Abs(iv-4e-3/60e-6) > 1 {
		t.Fatalf("RequiredSyncInterval = %v, want ~%v", iv, 4e-3/60e-6)
	}
	// The rule of thumb is self-consistent: simulating at that interval
	// keeps the miss probability low.
	check := cfg
	check.SyncInterval = iv
	check.Horizon = 10 * iv
	res, err := Simulate(topology.GreenOrbs(1), check, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p := res.MissProbability(0.010); p > 0.12 {
		t.Fatalf("provisioned interval still misses %v of the time", p)
	}
	// Degenerate cases.
	zero := cfg
	zero.DriftPPMStd = 0
	if !math.IsInf(RequiredSyncInterval(zero, 0.01), 1) {
		t.Fatal("zero drift should need no resync")
	}
	noisy := cfg
	noisy.BeaconNoiseStd = 1
	if RequiredSyncInterval(noisy, 0.01) != 0 {
		t.Fatal("noise above half a slot should return 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive slot accepted")
		}
	}()
	RequiredSyncInterval(cfg, 0)
}

func BenchmarkSimulate(b *testing.B) {
	g := topology.GreenOrbs(1)
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(g, cfg, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEndToEndWithSim(t *testing.T) {
	// The full bridge: clock model -> miss probability -> sim sync error.
	g := topology.GreenOrbs(1)
	cfg := DefaultConfig()
	cfg.SyncInterval = 300 // sloppy provisioning to get a visible error
	res, err := Simulate(g, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := res.MissProbability(0.010)
	if p < 0 || p >= 1 {
		t.Fatalf("miss probability %v outside [0,1)", p)
	}
}

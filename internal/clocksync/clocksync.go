// Package clocksync models the low-cost local synchronization the paper
// assumes (Section III-B, citing SenSys'09 [26][27]): each sensor's crystal
// drifts, neighbors exchange periodic time beacons, and between beacons a
// sender's estimate of its neighbor's clock accumulates error. The package
// simulates that process over a topology and converts the resulting
// per-link timing error into the probability that a unicast misses its
// receiver's wake slot — the quantity sim.Config.SyncErrorProb consumes and
// the syncerr experiment sweeps.
package clocksync

import (
	"fmt"
	"math"

	"ldcflood/internal/rngutil"
	"ldcflood/internal/stats"
	"ldcflood/internal/topology"
)

// Config parameterizes the clock and protocol model. Defaults follow
// commodity WSN hardware: ±30 ppm crystals, millisecond-scale beacon
// timestamping noise, beacons every few minutes.
type Config struct {
	// DriftPPMStd is the standard deviation of per-node crystal drift in
	// parts per million (each node draws one constant drift).
	DriftPPMStd float64
	// BeaconNoiseStd is the per-beacon timestamping error in seconds
	// (MAC-layer timestamping achieves ~1e-3 or better).
	BeaconNoiseStd float64
	// SyncInterval is the time between neighbor beacon exchanges, seconds.
	SyncInterval float64
	// Horizon is the simulated duration in seconds.
	Horizon float64
	// SamplesPerInterval controls error sampling density between beacons.
	SamplesPerInterval int
}

// DefaultConfig returns the commodity-hardware defaults.
func DefaultConfig() Config {
	return Config{
		DriftPPMStd:        30,
		BeaconNoiseStd:     0.001,
		SyncInterval:       120,
		Horizon:            3600,
		SamplesPerInterval: 8,
	}
}

func (c *Config) validate() error {
	if c.DriftPPMStd < 0 {
		return fmt.Errorf("clocksync: negative drift std")
	}
	if c.BeaconNoiseStd < 0 {
		return fmt.Errorf("clocksync: negative beacon noise")
	}
	if c.SyncInterval <= 0 {
		return fmt.Errorf("clocksync: sync interval must be positive")
	}
	if c.Horizon < c.SyncInterval {
		return fmt.Errorf("clocksync: horizon %v shorter than one sync interval %v", c.Horizon, c.SyncInterval)
	}
	if c.SamplesPerInterval <= 0 {
		return fmt.Errorf("clocksync: need positive samples per interval")
	}
	return nil
}

// Result reports the simulated synchronization quality.
type Result struct {
	// LinkErrors holds one summary of |timing error| (seconds) per
	// undirected link, in g.Links() order.
	LinkErrors []stats.Summary
	// AllErrors pools every sampled |error| across links (seconds).
	AllErrors stats.Summary
	// maxSamples retains the pooled samples for MissProbability.
	samples []float64
}

// Simulate runs the drift/beacon model over every link of g. Each node
// draws a constant drift; at every beacon the pairwise offset estimate is
// reset to a fresh noise draw; between beacons the error grows linearly
// with the relative drift. Deterministic for a given seed.
func Simulate(g *topology.Graph, cfg Config, seed uint64) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	root := rngutil.New(seed)
	driftRNG := root.SubName("drift")
	noiseRNG := root.SubName("noise")

	drift := make([]float64, g.N())
	for i := range drift {
		drift[i] = driftRNG.NormMeanStd(0, cfg.DriftPPMStd) * 1e-6
	}

	links := g.Links()
	res := &Result{LinkErrors: make([]stats.Summary, len(links))}
	intervals := int(cfg.Horizon / cfg.SyncInterval)
	for li, e := range links {
		relDrift := math.Abs(drift[e.U] - drift[e.V])
		var linkSamples []float64
		for iv := 0; iv < intervals; iv++ {
			base := math.Abs(noiseRNG.NormMeanStd(0, cfg.BeaconNoiseStd))
			for s := 1; s <= cfg.SamplesPerInterval; s++ {
				dt := cfg.SyncInterval * float64(s) / float64(cfg.SamplesPerInterval)
				err := base + relDrift*dt
				linkSamples = append(linkSamples, err)
				res.samples = append(res.samples, err)
			}
		}
		res.LinkErrors[li] = stats.Summarize(linkSamples)
	}
	res.AllErrors = stats.Summarize(res.samples)
	return res, nil
}

// MissProbability returns the fraction of sampled moments at which the
// timing error exceeds half a slot — i.e. the probability that a unicast
// aimed at a neighbor's wake slot arrives outside it. Feed this into
// sim.Config.SyncErrorProb. It panics for a non-positive slot duration.
func (r *Result) MissProbability(slotSeconds float64) float64 {
	if slotSeconds <= 0 {
		panic("clocksync: slot duration must be positive")
	}
	if len(r.samples) == 0 {
		return 0
	}
	miss := 0
	for _, e := range r.samples {
		if e > slotSeconds/2 {
			miss++
		}
	}
	return float64(miss) / float64(len(r.samples))
}

// RequiredSyncInterval returns the longest beacon interval (seconds) that
// keeps the worst-case drift-induced error within half a slot for a pair
// with relative drift 2×DriftPPMStd (a conservative two-sigma pair),
// ignoring beacon noise. This is the provisioning rule of thumb the
// substrate offers protocol designers.
func RequiredSyncInterval(cfg Config, slotSeconds float64) float64 {
	if slotSeconds <= 0 {
		panic("clocksync: slot duration must be positive")
	}
	relDrift := 2 * cfg.DriftPPMStd * 1e-6
	if relDrift == 0 {
		return math.Inf(1)
	}
	budget := slotSeconds/2 - cfg.BeaconNoiseStd
	if budget <= 0 {
		return 0
	}
	return budget / relDrift
}

package experiments

// Regression goldens: every run is deterministic given its seeds, so these
// exact values guard the whole stack (topology generation, schedules,
// protocols, engine, RNG streams) against unintended behavioural change.
// If a change intentionally alters behaviour (e.g. retuning a protocol
// parameter), update the goldens and say so in the commit.

import (
	"testing"

	"ldcflood/internal/analysis"
	"ldcflood/internal/flood"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

func fwl(n int) int                { return analysis.FWLFloor(n) }
func fdl(n, m, period int) float64 { return analysis.FDLTheorem1(n, m, period) }

func TestGoldenTopology(t *testing.T) {
	g := topology.GreenOrbs(1)
	if got := g.NumLinks(); got != 2279 {
		t.Fatalf("GreenOrbs(1) links = %d, want 2279", got)
	}
	s := g.Analyze()
	if s.Diameter != 11 {
		t.Fatalf("diameter = %d, want 11", s.Diameter)
	}
	if got := int(s.MeanDegree*10 + 0.5); got != 153 {
		t.Fatalf("mean degree = %.2f, want 15.3", s.MeanDegree)
	}
}

func TestGoldenSimRun(t *testing.T) {
	g := topology.GreenOrbs(1)
	run := func(name string) *sim.Result {
		p, err := flood.New(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Graph:     g,
			Schedules: schedule.AssignUniform(g.N(), 20, rngutil.New(42).SubName("schedule")),
			Protocol:  p,
			M:         10,
			Coverage:  0.99,
			Seed:      42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	golden := map[string]struct {
		totalSlots int64
		tx         int
	}{
		// Captured from the current implementation; see file comment.
		"opt":  {totalSlots: run("opt").TotalSlots, tx: run("opt").Transmissions},
		"dbao": {totalSlots: run("dbao").TotalSlots, tx: run("dbao").Transmissions},
	}
	// Re-running must give byte-identical results (true determinism);
	// the map above already ran each twice via the golden initialization.
	for name, want := range golden {
		res := run(name)
		if res.TotalSlots != want.totalSlots || res.Transmissions != want.tx {
			t.Fatalf("%s drifted across identical runs: %d/%d vs %d/%d",
				name, res.TotalSlots, res.Transmissions, want.totalSlots, want.tx)
		}
	}
	// Absolute anchors, coarse enough to survive only intentional retuning.
	opt := run("opt")
	if opt.TotalSlots < 100 || opt.TotalSlots > 5000 {
		t.Fatalf("OPT golden run total %d outside sane envelope", opt.TotalSlots)
	}
	if !opt.Completed {
		t.Fatal("OPT golden run incomplete")
	}
}

func TestGoldenAnalytic(t *testing.T) {
	// Pure-math anchors that must never change.
	cases := []struct {
		got, want float64
		what      string
	}{
		{float64(fwl(1024)), 11, "FWLFloor(1024)"},
		{fdl(1024, 20, 5), 100, "FDL(1024,20,5)"},
		{fdl(256, 20, 5), 90, "FDL(256,20,5)"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Fatalf("%s = %v, want %v", c.what, c.got, c.want)
		}
	}
}

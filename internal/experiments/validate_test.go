package experiments

// Integration tests validating the simulator against the paper's theory —
// the Section V exercise, in miniature, run on every `go test`.

import (
	"testing"

	"ldcflood/internal/analysis"
	"ldcflood/internal/flood"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/stats"
	"ldcflood/internal/topology"
)

func alwaysOn(n int) []*schedule.Schedule {
	out := make([]*schedule.Schedule, n)
	for i := range out {
		out[i] = schedule.AlwaysOn()
	}
	return out
}

// With perfect links, always-on schedules and the OPT oracle on a complete
// graph, the holder set doubles every slot — the simulated single-packet
// delay must equal ⌈log2(N)⌉ exactly (Lemma 2 with μ=2; here every node
// including the source counts toward coverage).
func TestSimAchievesLemma2OnIdealCompleteGraph(t *testing.T) {
	for _, n := range []int{8, 32, 128, 256} {
		g := topology.Complete(n, 1)
		p := &flood.OPT{DisableOverhearing: true}
		res, err := sim.Run(sim.Config{
			Graph: g, Schedules: alwaysOn(n), Protocol: p,
			M: 1, Coverage: 1, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := int64(analysis.FWLFloor(n - 1)) // N sensors = n-1 non-source nodes
		if res.Delay[0] != want-0 && res.Delay[0] != want-1 {
			// Doubling covers 2^t nodes by the end of slot t-1; coverage of
			// n nodes lands at slot ⌈log2(n)⌉-1 (delay counts from slot 0).
			t.Fatalf("n=%d: delay %d, want ~%d", n, res.Delay[0], want)
		}
	}
}

// With lossy links (PRR p) the per-slot growth factor is μ = 1+p, so the
// simulated coverage time should track log(N)/log(1+p) (Lemma 2).
func TestSimTracksGaltonWatsonGrowth(t *testing.T) {
	n := 256
	for _, prr := range []float64{0.8, 0.5} {
		g := topology.Complete(n, prr)
		var acc stats.Running
		for seed := uint64(0); seed < 10; seed++ {
			p := &flood.OPT{DisableOverhearing: true}
			res, err := sim.Run(sim.Config{
				Graph: g, Schedules: alwaysOn(n), Protocol: p,
				M: 1, Coverage: 1, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			acc.Add(float64(res.Delay[0]))
		}
		// The branching-process estimate captures the exponential-growth
		// phase; full (100%) coverage additionally pays a geometric
		// straggler tail (each remaining receiver succeeds w.p. prr per
		// slot) that Lemma 2's population count does not model, so the
		// simulated mean sits somewhat above the estimate for lossy links.
		want := float64(analysis.Lemma2FWL(n-1, 1+prr))
		if acc.Mean() < want*0.7 || acc.Mean() > want*1.8 {
			t.Fatalf("prr=%v: simulated mean delay %.1f vs Lemma 2 %.0f", prr, acc.Mean(), want)
		}
	}
}

// Multi-packet flooding on the ideal complete graph must stay within the
// Theorem 2 envelope: at T=1 (always-on) the expected FDL bounds collapse
// to compact-slot counts.
func TestSimMultiPacketWithinTheorem2Envelope(t *testing.T) {
	n, m := 64, 12
	g := topology.Complete(n, 1)
	p := &flood.OPT{DisableOverhearing: true}
	res, err := sim.Run(sim.Config{
		Graph: g, Schedules: alwaysOn(n), Protocol: p,
		M: m, Coverage: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("incomplete")
	}
	// Completion of the last packet (in slots) against the worst-case
	// compact FWL with generous constant slack: the engine's OPT is
	// receiver-driven, not the centralized optimal schedule.
	bound := int64(4*analysis.FWLMulti(n-1, m) + 8)
	last := res.CoverTime[m-1]
	if last > bound {
		t.Fatalf("last packet covered at %d, beyond 4x FWL bound %d", last, bound)
	}
	if float64(res.Delay[0]) > 3*float64(analysis.FWLFloor(n-1)) {
		t.Fatalf("first packet delay %d far above single-packet limit %d", res.Delay[0], analysis.FWLFloor(n-1))
	}
}

// Halving the duty cycle should roughly double the flooding delay
// (Theorem 1: E[FDL] scales linearly with T).
func TestSimDelayScalesWithPeriod(t *testing.T) {
	g := topology.GreenOrbs(2)
	mean := func(period int) float64 {
		var acc stats.Running
		for seed := uint64(0); seed < 3; seed++ {
			p, _ := flood.New("opt")
			res, err := sim.Run(sim.Config{
				Graph: g,
				Schedules: schedule.AssignUniform(g.N(), period,
					rngutil.New(50+seed).SubName("schedule")),
				Protocol: p, M: 10, Coverage: 0.99, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			acc.Add(res.MeanDelay())
		}
		return acc.Mean()
	}
	d10 := mean(10)
	d20 := mean(20)
	ratio := d20 / d10
	if ratio < 1.4 || ratio > 2.8 {
		t.Fatalf("doubling the period scaled delay by %.2f (d10=%.0f, d20=%.0f), want ~2", ratio, d10, d20)
	}
}

// Link loss must amplify the delay beyond the ideal-network value —
// Section IV-B's central claim — and the measured amplification should be
// at least the k-class ratio of the two characteristic roots.
func TestSimLossAmplification(t *testing.T) {
	n := 64
	period := 10
	mean := func(prr float64) float64 {
		g := topology.Complete(n, prr)
		var acc stats.Running
		for seed := uint64(0); seed < 3; seed++ {
			p := &flood.OPT{DisableOverhearing: true}
			res, err := sim.Run(sim.Config{
				Graph: g,
				Schedules: schedule.AssignUniform(n, period,
					rngutil.New(70+seed).SubName("schedule")),
				Protocol: p, M: 5, Coverage: 1, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			acc.Add(res.MeanDelay())
		}
		return acc.Mean()
	}
	ideal := mean(1.0)
	lossy := mean(0.5)
	if lossy <= ideal {
		t.Fatalf("loss did not amplify delay: %.1f vs %.1f", lossy, ideal)
	}
	// Analytic amplification between k=1 and k=2 at this period.
	predicted := analysis.PredictedDelay(n-1, 1, 2.0, period) /
		analysis.PredictedDelay(n-1, 1, 1.0, period)
	measured := lossy / ideal
	if measured < predicted*0.5 {
		t.Fatalf("measured amplification %.2f far below analytic %.2f", measured, predicted)
	}
}

// The simulated Fig. 10 lower bound must hold: the analytic prediction
// never exceeds the OPT oracle's measured delay.
func TestAnalyticBoundBelowSimulatedOPT(t *testing.T) {
	g := topology.GreenOrbs(1)
	k := analysis.KClass(g.MeanLinkPRR())
	for _, duty := range []float64{0.05, 0.10, 0.20} {
		period := schedule.PeriodForDuty(duty)
		p, _ := flood.New("opt")
		res, err := sim.Run(sim.Config{
			Graph: g,
			Schedules: schedule.AssignUniform(g.N(), period,
				rngutil.New(90).SubName("schedule")),
			Protocol: p, M: 10, Coverage: 0.99, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		bound := analysis.PredictedDelay(g.N()-1, 0.99, k, period)
		if bound > res.MeanDelay() {
			t.Fatalf("duty %v: analytic bound %.1f above simulated OPT %.1f", duty, bound, res.MeanDelay())
		}
	}
}

// Package experiments regenerates the paper's evaluation and the
// repository's extension studies. Each driver returns a FigureData whose
// Render method draws the figure as a text chart plus data table.
//
// Paper figures (DESIGN.md §4; run all with All or `cmd/figures -fig all`):
//
//	Fig3        Algorithm 1 worked example (N=4, M=2)
//	TableI      per-packet waitings, analytic vs simulated
//	Fig5        Theorem 1 delay limits vs M (both panels)
//	Fig6        Theorem 2 bounds for arbitrary N
//	Fig7        k-class link-loss delay predictions
//	Fig8        synthetic GreenOrbs topology + calibration stats
//	Fig9        per-packet delay vs index (OPT/DBAO/OF + tx-delay split)
//	Fig10And11  delay and failures vs duty cycle (+ analytic bound)
//
// Extension studies (run all with AllExtensions or
// `cmd/figures -fig extensions`):
//
//	GaltonWatson        Lemma 1 sample-path convergence
//	HalfDuplex          Section IV-A2 type-2 slot cost
//	CrossLayer          Section VI joint (protocol, duty) optimization
//	ScheduleGranularity k active slots per k·T period vs the 1-slot model
//	NodeDelayCDF        per-node reception-delay distribution
//	SyncError           local-synchronization sensitivity (+ clocksync)
//	Heterogeneity       link-diversity gain at fixed mean PRR
//	Backlog             source-queue stability (Section IV-B breakdown)
//	Robustness          conclusions on a second deployment (testbed)
//	Adaptive            DutyCon-style dynamic duty control vs static
//	Faults              resilience under scripted fault injection
//	TrickleScalability  timer-protocol message load vs network size
//
// All simulation-backed drivers take SimOptions; PaperSimOptions mirrors
// the paper's parameters (M=100, duties 2–20%, 99% coverage) and
// QuickSimOptions cuts the workload while preserving every shape.
package experiments

package experiments

import (
	"testing"
)

func TestNodeDelayCDF(t *testing.T) {
	opts := tinyOpts()
	fd, err := NodeDelayCDF(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.Series) != 3 {
		t.Fatalf("series = %d", len(fd.Series))
	}
	for _, s := range fd.Series {
		// CDF: x nondecreasing, y strictly increasing to ~1.
		for i := 1; i < len(s.X); i++ {
			if s.X[i] < s.X[i-1] {
				t.Fatalf("%s delays not sorted", s.Name)
			}
			if s.Y[i] <= s.Y[i-1] {
				t.Fatalf("%s CDF not increasing", s.Name)
			}
		}
		last := s.Y[len(s.Y)-1]
		if last < 0.9 || last > 1.0 {
			t.Fatalf("%s CDF tops out at %v", s.Name, last)
		}
	}
	if len(fd.TableRows) != 3 {
		t.Fatalf("rows = %d", len(fd.TableRows))
	}
}

func TestAdaptiveExperiment(t *testing.T) {
	opts := tinyOpts()
	fd, err := Adaptive(opts)
	if err != nil {
		t.Fatal(err)
	}
	static := fd.SeriesByName("static duty")
	adaptive := fd.SeriesByName("adaptive (DutyCon-style)")
	if static == nil || adaptive == nil || len(static.Y) != 3 || len(adaptive.Y) != 1 {
		t.Fatalf("bad series: %+v", fd.Series)
	}
	// The controller must beat the laziest static configuration on delay
	// while spending far less energy than the tightest one.
	lazyDelay := static.Y[2]  // T=100
	tightAwake := static.X[0] // T=5
	if adaptive.Y[0] >= lazyDelay {
		t.Fatalf("adaptive delay %.0f not below lazy static %.0f", adaptive.Y[0], lazyDelay)
	}
	if adaptive.X[0] >= tightAwake {
		t.Fatalf("adaptive awake %.3f not below tight static %.3f", adaptive.X[0], tightAwake)
	}
}

func TestRobustnessExperiment(t *testing.T) {
	opts := tinyOpts()
	fd, err := Robustness(opts)
	if err != nil {
		t.Fatal(err)
	}
	// 2 deployments × 3 protocols.
	if len(fd.Series) != 6 {
		t.Fatalf("series = %d", len(fd.Series))
	}
	byName := map[string]*Series{}
	for i := range fd.Series {
		byName[fd.Series[i].Name] = &fd.Series[i]
	}
	for _, dep := range []string{"forest", "testbed"} {
		opt := byName[dep+" OPT"]
		of := byName[dep+" OF"]
		if opt == nil || of == nil {
			t.Fatalf("missing series for %s", dep)
		}
		// Ordering holds at every measured duty.
		for i := range opt.Y {
			if opt.Y[i] > of.Y[i]*1.05 {
				t.Fatalf("%s: OPT %v above OF %v", dep, opt.Y[i], of.Y[i])
			}
		}
		// Low duty is worse than high duty.
		if opt.Y[0] <= opt.Y[len(opt.Y)-1] {
			t.Fatalf("%s: no low-duty blow-up", dep)
		}
	}
}

func TestBacklogExperiment(t *testing.T) {
	opts := tinyOpts()
	opts.M = 15
	fd, err := Backlog(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.Series) != 2 || len(fd.TableRows) != 2 {
		t.Fatalf("bad figure: %d series, %d rows", len(fd.Series), len(fd.TableRows))
	}
	// The saturated configuration's peak backlog must exceed the stable
	// one's.
	peak := func(s *Series) float64 {
		m := 0.0
		for _, y := range s.Y {
			if y > m {
				m = y
			}
		}
		return m
	}
	saturated := peak(&fd.Series[0])
	stable := peak(&fd.Series[1])
	if saturated <= stable {
		t.Fatalf("saturated backlog %v not above stable %v", saturated, stable)
	}
	// Back-to-back injection at 5%% duty queues nearly every packet.
	if saturated < float64(opts.M)*0.8 {
		t.Fatalf("saturated backlog %v should approach M=%d", saturated, opts.M)
	}
	// Backlog series never goes negative and ends at zero (all covered).
	for _, s := range fd.Series {
		for _, y := range s.Y {
			if y < 0 {
				t.Fatal("negative backlog")
			}
		}
		if s.Y[len(s.Y)-1] != 0 {
			t.Fatalf("%s backlog does not drain to 0", s.Name)
		}
	}
}

func TestHeterogeneityExperiment(t *testing.T) {
	opts := tinyOpts()
	fd, err := Heterogeneity(opts)
	if err != nil {
		t.Fatal(err)
	}
	best := fd.SeriesByName("best-link (oracle)")
	blind := fd.SeriesByName("quality-blind (naive)")
	if best == nil || blind == nil || len(best.Y) != 4 {
		t.Fatalf("bad series: %+v", fd.Series)
	}
	// Diversity gain: at the widest spread, quality-aware selection is
	// clearly faster than at zero spread...
	if best.Y[3] >= best.Y[0] {
		t.Fatalf("best-link did not exploit diversity: %.1f at std 0.3 vs %.1f at 0", best.Y[3], best.Y[0])
	}
	// ...and clearly faster than the quality-blind baseline.
	if best.Y[3] >= blind.Y[3] {
		t.Fatalf("best-link %.1f not below quality-blind %.1f at std 0.3", best.Y[3], blind.Y[3])
	}
	// The blind protocol cannot exploit spread: it must not speed up much.
	if blind.Y[3] < blind.Y[0]*0.7 {
		t.Fatalf("quality-blind protocol gained from spread it cannot see: %.1f vs %.1f", blind.Y[3], blind.Y[0])
	}
	pred := fd.SeriesByName("homogeneous k-class prediction")
	if pred == nil || pred.Y[0] != pred.Y[3] {
		t.Fatal("prediction series should be flat")
	}
}

func TestSyncErrorExperiment(t *testing.T) {
	opts := tinyOpts()
	opts.Protocols = []string{"opt"}
	fd, err := SyncError(opts)
	if err != nil {
		t.Fatal(err)
	}
	s := fd.SeriesByName("OPT")
	if s == nil || len(s.Y) != 5 {
		t.Fatalf("bad series: %+v", fd.Series)
	}
	// Delay grows with sync error; 40% error should cost at least 20% more
	// delay and at most ~4x (graceful degradation).
	if s.Y[4] <= s.Y[0]*1.05 {
		t.Fatalf("40%% sync error delay %.0f barely above clean %.0f", s.Y[4], s.Y[0])
	}
	if s.Y[4] > s.Y[0]*4 {
		t.Fatalf("sync degradation not graceful: %.0f vs %.0f", s.Y[4], s.Y[0])
	}
}

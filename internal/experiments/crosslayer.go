package experiments

import (
	"fmt"
	"math"

	"ldcflood/internal/metrics"
	"ldcflood/internal/optimize"
	"ldcflood/internal/schedule"
	"ldcflood/internal/topology"
)

// CrossLayer realizes the paper's second future-work item (Section VI):
// "explore how to utilize the opportunistic forwarding technique combined
// with the optimization of the duty cycle length to conduct a cross-layer
// design". It jointly sweeps duty cycle × protocol on the GreenOrbs trace,
// computes the networking gain (lifetime / flooding delay) for every
// combination, and reports the best joint configuration — demonstrating
// that the best (protocol, duty) pair beats optimizing either layer alone.
func CrossLayer(opts SimOptions) (*FigureData, error) {
	opts.normalize()
	g := topology.GreenOrbs(opts.TopoSeed)
	em := metrics.DefaultEnergyModel()

	fd := &FigureData{
		ID:     "crosslayer",
		Title:  fmt.Sprintf("Cross-layer design: networking gain vs duty cycle per protocol (GreenOrbs, M=%d)", opts.M),
		XLabel: "duty cycle (%)",
		YLabel: "networking gain (lifetime / flooding delay)",
	}
	type best struct {
		protocol string
		duty     float64
		gain     float64
		delay    float64
	}
	var overall best
	fd.TableHeaders = []string{"protocol", "best duty", "delay/slots", "lifetime/days", "gain"}
	for _, name := range opts.Protocols {
		var xs, ys []float64
		var rowBest best
		for _, duty := range opts.Duties {
			period := schedule.PeriodForDuty(duty)
			agg, err := runProtocol(g, name, period, opts)
			if err != nil {
				return nil, err
			}
			if agg.CoveredFraction < 1 || math.IsNaN(agg.Delay.Mean) {
				continue // configuration failed its coverage target
			}
			txRate := agg.Transmissions / float64(g.N()) /
				(agg.Delay.Mean * float64(opts.M) * em.SlotSeconds) // coarse per-node rate
			if txRate < 0 || math.IsNaN(txRate) || math.IsInf(txRate, 0) {
				txRate = 0
			}
			_, _, gain := em.NetworkingGain(duty, agg.Delay.Mean, txRate)
			xs = append(xs, duty*100)
			ys = append(ys, gain)
			if gain > rowBest.gain {
				rowBest = best{protocol: agg.Protocol, duty: duty, gain: gain, delay: agg.Delay.Mean}
			}
			if gain > overall.gain {
				overall = best{protocol: agg.Protocol, duty: duty, gain: gain, delay: agg.Delay.Mean}
			}
		}
		if len(xs) == 0 {
			return nil, fmt.Errorf("experiments: crosslayer: %s covered no configuration", name)
		}
		fd.Series = append(fd.Series, Series{Name: protoDisplayName(name), X: xs, Y: ys})
		lifetime, _, _ := em.NetworkingGain(rowBest.duty, rowBest.delay, 0)
		fd.TableRows = append(fd.TableRows, []string{
			protoDisplayName(name),
			fmt.Sprintf("%.0f%%", rowBest.duty*100),
			fmt.Sprintf("%.0f", rowBest.delay),
			fmt.Sprintf("%.0f", lifetime/86400),
			fmt.Sprintf("%.0f", rowBest.gain),
		})
	}
	fd.Notes = append(fd.Notes,
		fmt.Sprintf("joint optimum: %s at duty %.0f%% (gain %.0f) — the cross-layer choice of protocol and duty together",
			overall.protocol, overall.duty*100, overall.gain),
	)
	return fd, nil
}

func protoDisplayName(name string) string {
	switch name {
	case "opt":
		return "OPT"
	case "dbao":
		return "DBAO"
	case "of":
		return "OF"
	case "naive":
		return "Naive"
	default:
		return name
	}
}

// SimDelayFunc adapts the simulator to the optimizer's DelayFunc interface:
// each call runs the configured protocol on the GreenOrbs trace at the
// requested duty and returns the mean flooding delay. Results are cached
// per period so the optimizer's refinement phase stays affordable.
func SimDelayFunc(protocol string, opts SimOptions) optimize.DelayFunc {
	opts.normalize()
	g := topology.GreenOrbs(opts.TopoSeed)
	cache := map[int]float64{}
	return func(duty float64) (float64, error) {
		if duty <= 0 || duty > 1 {
			return 0, fmt.Errorf("experiments: duty %v outside (0,1]", duty)
		}
		period := schedule.PeriodForDuty(duty)
		if v, ok := cache[period]; ok {
			return v, nil
		}
		agg, err := runProtocol(g, protocol, period, opts)
		if err != nil {
			return 0, err
		}
		if math.IsNaN(agg.Delay.Mean) {
			return 0, fmt.Errorf("experiments: no packet covered at duty %v", duty)
		}
		cache[period] = agg.Delay.Mean
		return agg.Delay.Mean, nil
	}
}

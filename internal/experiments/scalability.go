package experiments

import (
	"fmt"

	"ldcflood/internal/flood"
	"ldcflood/internal/metrics"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

// scaleDefaultSizes is the node-count ladder the scalability study climbs
// when SimOptions.ScaleSizes is empty: the GreenOrbs trace size up to the
// 100k-node scale workload, at constant node density
// (topology.ScaledGreenOrbsConfig).
var scaleDefaultSizes = []int{300, 1000, 3000, 10000, 30000, 100000}

// TrickleScalability measures control-message load versus network size for
// the timer-driven protocols: a single packet is flooded to 99% coverage
// on density-preserving scaled GreenOrbs instances, and the figure plots
// transmissions per node against N.
//
// The reference prediction is Meyfroyt et al.'s Trickle analysis ("On the
// scalability and message count of Trickle-based broadcasting schemes",
// and RFC 6206's design argument): with interval doubling and redundancy
// constant K, the steady per-interval transmission load is bounded by a
// constant per radio neighborhood, independent of network size — so at
// constant density total messages grow Θ(N) and messages per node stay
// flat as the network scales. The qualitative acceptance marker for this
// figure is therefore the flatness of the per-node series while N spans
// two to three decades; dflood's duplicate-suppression penalty is expected
// to track the same shape with its own constant.
func TrickleScalability(opts SimOptions) (*FigureData, error) {
	opts.normalize()
	sizes := opts.ScaleSizes
	if len(sizes) == 0 {
		sizes = scaleDefaultSizes
	}
	maxSlots := opts.MaxSlots
	if maxSlots <= 0 {
		maxSlots = 4_000_000
	}
	period := schedule.PeriodForDuty(0.05)
	fd := &FigureData{
		ID:     "scale",
		Title:  "Control-message load vs network size, single packet (scaled GreenOrbs, duty 5%)",
		XLabel: "nodes",
		YLabel: "transmissions per node",
	}
	fd.TableHeaders = []string{"nodes", "protocol", "messages", "msgs/node", "suppressed/node", "cover slots"}
	protocols := []string{"trickle", "dflood"}
	fd.Series = make([]Series, len(protocols))
	series := make(map[string]*Series, len(protocols))
	for i, name := range protocols {
		fd.Series[i] = Series{Name: name}
		series[name] = &fd.Series[i]
	}
	for _, n := range sizes {
		g, err := topology.GenerateGreenOrbs(topology.ScaledGreenOrbsConfig(n), opts.TopoSeed)
		if err != nil {
			return nil, fmt.Errorf("experiments: scale: %d nodes: %w", n, err)
		}
		scheds := schedule.AssignUniform(g.N(), period,
			rngutil.New(opts.Seed).SubName("schedule"))
		for _, name := range protocols {
			p, err := flood.New(name)
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(sim.Config{
				Graph:     g,
				Schedules: scheds,
				Protocol:  p,
				M:         1,
				Coverage:  opts.Coverage,
				Seed:      opts.Seed,
				MaxSlots:  maxSlots,
				// The sharded compact-time engine; results are certified
				// identical for every worker count >= 1 and to the
				// reference time path, so this is purely a speed choice.
				Workers:     8,
				CompactTime: true,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: scale: %s at %d nodes: %w", name, n, err)
			}
			if !res.Completed {
				return nil, fmt.Errorf("experiments: scale: %s at %d nodes did not complete in %d slots", name, n, maxSlots)
			}
			perNode := float64(res.Transmissions) / float64(g.N())
			_, suppressed, _ := metrics.ProtocolCounters(p)
			s := series[name]
			s.X = append(s.X, float64(g.N()))
			s.Y = append(s.Y, perNode)
			fd.TableRows = append(fd.TableRows, []string{
				fmt.Sprintf("%d", g.N()),
				name,
				fmt.Sprintf("%d", res.Transmissions),
				fmt.Sprintf("%.2f", perNode),
				fmt.Sprintf("%.2f", float64(suppressed)/float64(g.N())),
				fmt.Sprintf("%d", res.CoverTime[0]),
			})
		}
	}
	fd.Notes = append(fd.Notes,
		"Meyfroyt et al. predict constant per-node Trickle load at fixed density: total messages Θ(N), per-node series flat",
		"single-packet floods at duty 5%; density-preserving scaling, so only network extent (flood depth) grows with N",
	)
	return fd, nil
}

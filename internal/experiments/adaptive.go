package experiments

import (
	"fmt"

	"ldcflood/internal/adapt"
	"ldcflood/internal/flood"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

// Adaptive compares static duty cycles against the DutyCon-style
// controller (package adapt, reference [22]): the controller starts lazy,
// tightens nodes that fall behind the delay target and relaxes them when
// caught up, landing between the static extremes — near-tight delay at
// near-lazy energy. This is the run-time realization of the Section VI
// duty-configuration future work.
func Adaptive(opts SimOptions) (*FigureData, error) {
	opts.normalize()
	g := topology.GreenOrbs(opts.TopoSeed)
	n := g.N()
	fd := &FigureData{
		ID:     "adaptive",
		Title:  fmt.Sprintf("Dynamic duty-cycle control vs static configuration (GreenOrbs, M=%d, DBAO)", opts.M),
		XLabel: "mean awake fraction (energy)",
		YLabel: "mean flooding delay / time slots",
	}
	fd.TableHeaders = []string{"configuration", "mean delay", "awake fraction", "adaptations"}

	awakeFrac := func(r *sim.Result) float64 {
		var sum int64
		for _, a := range r.AwakeSlotsPerNode {
			sum += a
		}
		if r.TotalSlots == 0 {
			return 0
		}
		return float64(sum) / float64(int64(n)*r.TotalSlots)
	}
	runStatic := func(period int) (*sim.Result, error) {
		p, err := flood.New("dbao")
		if err != nil {
			return nil, err
		}
		return sim.Run(sim.Config{
			Graph:     g,
			Schedules: schedule.AssignUniform(n, period, rngutil.New(opts.Seed).SubName("schedule")),
			Protocol:  p,
			M:         opts.M,
			Coverage:  opts.Coverage,
			Seed:      opts.Seed,
			MaxSlots:  opts.MaxSlots,
		})
	}

	var xs, ys []float64
	for _, period := range []int{5, 20, 100} {
		res, err := runStatic(period)
		if err != nil {
			return nil, err
		}
		xs = append(xs, awakeFrac(res))
		ys = append(ys, res.MeanDelay())
		fd.TableRows = append(fd.TableRows, []string{
			fmt.Sprintf("static T=%d (duty %.0f%%)", period, 100.0/float64(period)),
			fmt.Sprintf("%.0f", res.MeanDelay()),
			fmt.Sprintf("%.3f", awakeFrac(res)),
			"-",
		})
	}
	fd.Series = append(fd.Series, Series{Name: "static duty", X: xs, Y: ys})

	ctrl, err := adapt.NewController(100, 5, 200, 2)
	if err != nil {
		return nil, err
	}
	p, err := flood.New("dbao")
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(sim.Config{
		Graph:      g,
		Schedules:  schedule.AssignUniform(n, 200, rngutil.New(opts.Seed).SubName("schedule")),
		Protocol:   p,
		M:          opts.M,
		Coverage:   opts.Coverage,
		Seed:       opts.Seed,
		MaxSlots:   opts.MaxSlots,
		Adapt:      ctrl.Adapt,
		AdaptEvery: 50,
	})
	if err != nil {
		return nil, err
	}
	fd.Series = append(fd.Series, Series{
		Name: "adaptive (DutyCon-style)",
		X:    []float64{awakeFrac(res)},
		Y:    []float64{res.MeanDelay()},
	})
	fd.TableRows = append(fd.TableRows, []string{
		"adaptive (target 100 slots, T in [5,200])",
		fmt.Sprintf("%.0f", res.MeanDelay()),
		fmt.Sprintf("%.3f", awakeFrac(res)),
		fmt.Sprintf("%d", ctrl.Adaptations),
	})
	fd.Notes = append(fd.Notes,
		"starting 10x too lazy, the controller lands on the static delay-energy trade-off curve autonomously — no a-priori knowledge of the right duty cycle, which is exactly what static configuration requires",
	)
	return fd, nil
}

package experiments

import (
	"fmt"
	"math"
	"strings"

	"ldcflood/internal/analysis"
	"ldcflood/internal/matrixflood"
	"ldcflood/internal/rngutil"
)

// Fig3 reproduces the worked example of Algorithm 1 (Fig. 3 of the paper):
// N=4 sensors, M=2 packets, rendering the possession matrix X at the
// beginning of every compact slot.
func Fig3() (*FigureData, error) {
	tr, err := matrixflood.RunTrace(matrixflood.Config{N: 4, M: 2})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig3: %w", err)
	}
	fd := &FigureData{
		ID:           "fig3",
		Title:        "Algorithm 1 example (N=4, M=2): possession matrices per compact slot",
		TableHeaders: []string{"c", "node", "pkt0", "pkt1"},
	}
	for c, snap := range tr.Slots {
		for node := 0; node <= 4; node++ {
			row := []string{fmt.Sprintf("%d", c), fmt.Sprintf("%d", node)}
			for p := 0; p < 2; p++ {
				if snap[p][node] {
					row = append(row, "1")
				} else {
					row = append(row, "0")
				}
			}
			fd.TableRows = append(fd.TableRows, row)
		}
	}
	fd.Notes = append(fd.Notes,
		fmt.Sprintf("packet completions at compact slots %v (Table I bounds: K_p + W_p = %v)",
			tr.Result.CompletionSlot, []int{0 + 3, 1 + 4}),
	)
	return fd, nil
}

// TableI reproduces Table I: the per-packet waitings Wp under Algorithm 1
// for both regimes (M < m and M >= m), and cross-checks them against the
// matrix-flooding simulation on a power-of-two network.
func TableI() (*FigureData, error) {
	fd := &FigureData{
		ID:           "table1",
		Title:        "Table I: waitings of packets in the network (N=1024, m=11)",
		TableHeaders: []string{"p", "Wp (M=5 < m)", "Wp (M=20 >= m)", "simulated Wp (M=20)"},
	}
	n := 1024
	small := analysis.Waitings(n, 5)
	large := analysis.Waitings(n, 20)
	simRes, err := matrixflood.Run(matrixflood.Config{N: n, M: 20})
	if err != nil {
		return nil, fmt.Errorf("experiments: table1: %w", err)
	}
	for p := 0; p < 20; p++ {
		sm := "-"
		if p < len(small) {
			sm = fmt.Sprintf("%d", small[p])
		}
		fd.TableRows = append(fd.TableRows, []string{
			fmt.Sprintf("%d", p),
			sm,
			fmt.Sprintf("%d", large[p]),
			fmt.Sprintf("%d", simRes.Waitings[p]),
		})
	}
	fd.Notes = append(fd.Notes,
		"analytic Wp are the Table I upper bounds; simulated waitings must not exceed them",
	)
	return fd, nil
}

// HalfDuplex quantifies the Section IV-A2 modification: in half-duplex
// networks every "type-2" compact slot (one where some node both transmits
// and receives) must be split in two. The experiment runs Algorithm 1
// across M and reports the full-duplex compact duration, the type-2 slot
// count, and the half-duplex duration after the split — showing the
// modification costs well under 2x because type-2 slots are a bounded
// fraction of the schedule.
func HalfDuplex() (*FigureData, error) {
	fd := &FigureData{
		ID:     "halfduplex",
		Title:  "Half-duplex modification (Section IV-A2): compact-slot cost of splitting type-2 slots (N=256)",
		XLabel: "total number of packets flooded (M)",
		YLabel: "compact slots",
	}
	n := 256
	var xs, full, half []float64
	fd.TableHeaders = []string{"M", "full-duplex slots", "type-2 slots", "half-duplex slots", "overhead"}
	for m := 1; m <= 20; m++ {
		res, err := matrixflood.Run(matrixflood.Config{N: n, M: m})
		if err != nil {
			return nil, fmt.Errorf("experiments: halfduplex M=%d: %w", m, err)
		}
		xs = append(xs, float64(m))
		full = append(full, float64(res.TotalSlots))
		half = append(half, float64(res.HalfDuplexSlots))
		fd.TableRows = append(fd.TableRows, []string{
			fmt.Sprintf("%d", m),
			fmt.Sprintf("%d", res.TotalSlots),
			fmt.Sprintf("%d", res.Type2Slots),
			fmt.Sprintf("%d", res.HalfDuplexSlots),
			fmt.Sprintf("%.2fx", float64(res.HalfDuplexSlots)/float64(res.TotalSlots)),
		})
	}
	fd.Series = append(fd.Series,
		Series{Name: "full duplex (Assumption I)", X: xs, Y: full},
		Series{Name: "half duplex (type-2 slots split)", X: xs, Y: half},
	)
	fd.Notes = append(fd.Notes,
		"the half-duplex penalty stays below 2x — only slots with simultaneous transmit+receive are doubled",
	)
	return fd, nil
}

// Fig5 reproduces both panels of Fig. 5: the Theorem 1 flooding delay limit
// versus the number of packets M. Left panel: T=5 with N in {256, 1024,
// 4096}. Right panel: N=1024 with duty ratio in {10%, 20%, 100%}.
func Fig5() (*FigureData, error) {
	fd := &FigureData{
		ID:     "fig5",
		Title:  "Fig. 5: flooding delay limit (Theorem 1) vs number of packets M",
		XLabel: "total number of packets flooded (M)",
		YLabel: "flooding delay limit / time slots",
	}
	ms := make([]float64, 0, 20)
	for m2 := 1; m2 <= 20; m2++ {
		ms = append(ms, float64(m2))
	}
	appendSeries := func(name string, n, t int) {
		ys := make([]float64, 0, len(ms))
		for m2 := 1; m2 <= 20; m2++ {
			ys = append(ys, analysis.FDLTheorem1(n, m2, t))
		}
		fd.Series = append(fd.Series, Series{Name: name, X: ms, Y: ys})
	}
	// Left panel: T = 5.
	appendSeries("T=5 N=4096", 4096, 5)
	appendSeries("T=5 N=1024", 1024, 5)
	appendSeries("T=5 N=256", 256, 5)
	// Right panel: N = 1024.
	appendSeries("N=1024 duty=10%", 1024, 10)
	appendSeries("N=1024 duty=20%", 1024, 5)
	appendSeries("N=1024 duty=100%", 1024, 1)
	fd.TableHeaders = []string{"series", "knee (M=m)", "FDL@M=20"}
	for _, s := range fd.Series {
		var n int
		fmt.Sscanf(strings.Split(s.Name, "N=")[1], "%d", &n)
		fd.TableRows = append(fd.TableRows, []string{
			s.Name,
			fmt.Sprintf("%d", analysis.KneePoint(n)),
			fmt.Sprintf("%.1f", s.Y[len(s.Y)-1]),
		})
	}
	return fd, nil
}

// Fig6 reproduces Fig. 6: Theorem 2's lower and upper bounds on the
// flooding delay limit for arbitrary N (256 and 1024), T=5, M=2..20.
func Fig6() (*FigureData, error) {
	fd := &FigureData{
		ID:     "fig6",
		Title:  "Fig. 6: flooding delay limit bounds (Theorem 2), T=5",
		XLabel: "total number of packets flooded (M)",
		YLabel: "flooding delay limit / time slots",
	}
	for _, n := range []int{256, 1024} {
		var xs, lo, hi []float64
		for m2 := 2; m2 <= 20; m2++ {
			b := analysis.FDLTheorem2(n, m2, 5)
			xs = append(xs, float64(m2))
			lo = append(lo, b.Lower)
			hi = append(hi, b.Upper)
		}
		fd.Series = append(fd.Series,
			Series{Name: fmt.Sprintf("N=%d lower bound", n), X: xs, Y: lo},
			Series{Name: fmt.Sprintf("N=%d upper bound", n), X: xs, Y: hi},
		)
	}
	return fd, nil
}

// GaltonWatson illustrates Lemma 1: sample paths of the normalized
// population X(c)/μ^c converging to the almost-sure limit X with E[X] = 1
// and Var[X] = σ²/(μ²-μ). Five sample paths plus the theoretical mean line
// make the martingale convergence underlying Lemma 2 visible.
func GaltonWatson() (*FigureData, error) {
	gw, err := analysis.NewGaltonWatson(0.6)
	if err != nil {
		return nil, err
	}
	fd := &FigureData{
		ID:     "gw",
		Title:  fmt.Sprintf("Lemma 1: X(c)/μ^c sample paths (link success 0.6, μ=%.1f)", gw.Mu()),
		XLabel: "generation c",
		YLabel: "X(c) / μ^c",
	}
	const gens = 16
	rng := rngutil.New(4)
	for trial := 0; trial < 5; trial++ {
		path := gw.SamplePath(gens, 0, rng.Sub(uint64(trial)))
		xs := make([]float64, gens+1)
		ys := make([]float64, gens+1)
		for c, pop := range path {
			xs[c] = float64(c)
			ys[c] = float64(pop) / math.Pow(gw.Mu(), float64(c))
		}
		fd.Series = append(fd.Series, Series{Name: fmt.Sprintf("path %d", trial+1), X: xs, Y: ys})
	}
	mean := Series{Name: "E[X] = 1"}
	for c := 0; c <= gens; c++ {
		mean.X = append(mean.X, float64(c))
		mean.Y = append(mean.Y, 1)
	}
	fd.Series = append(fd.Series, mean)
	fd.TableHeaders = []string{"quantity", "value"}
	fd.TableRows = [][]string{
		{"μ", fmt.Sprintf("%.2f", gw.Mu())},
		{"offspring variance σ²", fmt.Sprintf("%.3f", gw.OffspringVariance())},
		{"Var[X] = σ²/(μ²-μ)", fmt.Sprintf("%.3f", gw.LimitVariance())},
		{"Chebyshev Pr{X > 2}", fmt.Sprintf("< %.3f", gw.ChebyshevTail(2))},
	}
	fd.Notes = append(fd.Notes,
		"each path flattens onto a random limit with mean 1 — the concentration that lets Lemma 2 read FWL off log2(1+N)",
	)
	return fd, nil
}

// Fig7 reproduces Fig. 7: the predicted flooding delay versus duty cycle
// for k-class links (k = expected transmissions = 1/link-quality), via the
// characteristic root of λ^(kT+1) = λ^kT + 1 on the paper's 298-node scale.
func Fig7() (*FigureData, error) {
	fd := &FigureData{
		ID:     "fig7",
		Title:  "Fig. 7: impact of link loss — predicted delay vs duty cycle (N=298)",
		XLabel: "duty cycle (%)",
		YLabel: "flooding delay / time slots",
	}
	duties := []float64{0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.10, 0.20}
	type variant struct {
		k       float64
		quality string
	}
	variants := []variant{
		{2.00, "50%"},
		{1.67, "60%"},
		{1.42, "70%"},
		{1.25, "80%"},
	}
	for _, v := range variants {
		var xs, ys []float64
		for _, d := range duties {
			t := int(1/d + 0.5)
			xs = append(xs, d*100)
			ys = append(ys, analysis.PredictedDelay(298, 0.99, v.k, t))
		}
		fd.Series = append(fd.Series, Series{
			Name: fmt.Sprintf("k=%.2f (link quality %s)", v.k, v.quality),
			X:    xs, Y: ys,
		})
	}
	fd.TableHeaders = []string{"duty", "k=2.00", "k=1.67", "k=1.42", "k=1.25"}
	for i, d := range duties {
		row := []string{fmt.Sprintf("%.0f%%", d*100)}
		for _, s := range fd.Series {
			row = append(row, fmt.Sprintf("%.1f", s.Y[i]))
		}
		fd.TableRows = append(fd.TableRows, row)
	}
	fd.Notes = append(fd.Notes,
		"link loss magnifies the duty-cycle delay: compare columns at fixed duty",
	)
	return fd, nil
}

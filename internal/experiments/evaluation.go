package experiments

import (
	"context"
	"fmt"

	"ldcflood/internal/analysis"
	"ldcflood/internal/flood"
	"ldcflood/internal/metrics"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/runner"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

// Fig8 reproduces Fig. 8: the GreenOrbs topology. Ours is the synthetic
// 298-node stand-in (see DESIGN.md substitution table); the figure reports
// the structural statistics used for calibration plus a position scatter.
func Fig8(topoSeed uint64) (*FigureData, error) {
	g := topology.GreenOrbs(topoSeed)
	s := g.Analyze()
	fd := &FigureData{
		ID:     "fig8",
		Title:  fmt.Sprintf("Fig. 8: synthetic GreenOrbs topology (%s)", g.Name),
		XLabel: "x / m",
		YLabel: "y / m",
	}
	var xs, ys []float64
	for _, p := range g.Pos {
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
	}
	fd.Series = append(fd.Series, Series{Name: "sensor", X: xs, Y: ys})
	fd.TableHeaders = []string{"metric", "value"}
	fd.TableRows = [][]string{
		{"nodes", fmt.Sprintf("%d", s.Nodes)},
		{"links", fmt.Sprintf("%d", s.Links)},
		{"mean degree", fmt.Sprintf("%.1f", s.MeanDegree)},
		{"diameter (hops)", fmt.Sprintf("%d", s.Diameter)},
		{"source eccentricity", fmt.Sprintf("%d", s.SourceEcc)},
		{"mean link PRR", fmt.Sprintf("%.3f", s.PRR.Mean)},
		{"PRR p25/p50/p75", fmt.Sprintf("%.2f/%.2f/%.2f", s.PRR.P25, s.PRR.Median, s.PRR.P75)},
		{"transitional-link fraction", fmt.Sprintf("%.2f", s.Transitional)},
		{"connected", fmt.Sprintf("%v", s.Connected)},
	}
	fd.Notes = append(fd.Notes,
		"synthetic stand-in for the proprietary GreenOrbs RSSI trace; calibrated to the published aggregates",
	)
	return fd, nil
}

// protocolJobs builds the opts.Runs simulation configs of one protocol at
// one duty-cycle period. Run r keeps the historical opts.Seed + r*1000
// seed derivation so golden results stay stable; every config is fully
// determined here, before any job is dispatched, which is what makes the
// batch output independent of runner worker count.
func protocolJobs(g *topology.Graph, name string, period int, opts SimOptions) ([]sim.Config, error) {
	jobs := make([]sim.Config, opts.Runs)
	for run := range jobs {
		p, err := flood.New(name)
		if err != nil {
			return nil, err
		}
		seed := opts.Seed + uint64(run)*1000
		jobs[run] = sim.Config{
			Graph: g,
			Schedules: schedule.AssignUniform(g.N(), period,
				rngutil.New(seed).SubName("schedule")),
			Protocol: p,
			M:        opts.M,
			Coverage: opts.Coverage,
			Seed:     seed,
			MaxSlots: opts.MaxSlots,
		}
	}
	return jobs, nil
}

// runProtocol executes opts.Runs simulations of one protocol at one duty
// cycle on the batch runner and aggregates them.
func runProtocol(g *topology.Graph, name string, period int, opts SimOptions) (*metrics.Aggregate, error) {
	jobs, err := protocolJobs(g, name, period, opts)
	if err != nil {
		return nil, err
	}
	rs, _ := runner.Run(context.Background(), jobs, opts.runnerOptions())
	results, err := rs.Sims()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s at T=%d: %w", name, period, err)
	}
	return metrics.Combine(results)
}

// Fig9 reproduces Fig. 9: per-packet flooding delay versus packet index for
// OF, DBAO and OPT on the GreenOrbs trace at 5% duty cycle, with the
// transmission-delay component reported alongside (the paper separates it
// from the queueing/blocking delay).
func Fig9(opts SimOptions) (*FigureData, error) {
	opts.normalize()
	g := topology.GreenOrbs(opts.TopoSeed)
	period := schedule.PeriodForDuty(0.05)
	fd := &FigureData{
		ID:     "fig9",
		Title:  fmt.Sprintf("Fig. 9: flooding delay vs packet index (GreenOrbs, duty 5%%, M=%d)", opts.M),
		XLabel: "index of each packet",
		YLabel: "flooding delay / time slots",
	}
	for _, name := range opts.Protocols {
		agg, err := runProtocol(g, name, period, opts)
		if err != nil {
			return nil, err
		}
		var xs, ys, hs []float64
		for p, d := range agg.MeanDelayPerPacket {
			if d == d { // skip NaN (uncovered)
				xs = append(xs, float64(p))
				ys = append(ys, d)
				hs = append(hs, agg.MeanFirstHopPerPacket[p])
			}
		}
		fd.Series = append(fd.Series, Series{Name: agg.Protocol, X: xs, Y: ys})
		// The transmission-delay component the paper separates from the
		// queueing (blocking) delay in Fig. 9.
		fd.Series = append(fd.Series, Series{Name: agg.Protocol + " tx-delay", X: xs, Y: hs})
		// Transmission-delay component of the first and last packets.
		fd.TableRows = append(fd.TableRows, []string{
			agg.Protocol,
			fmt.Sprintf("%.1f", agg.Delay.Mean),
			fmt.Sprintf("%.1f", agg.MeanDelayPerPacket[0]),
			fmt.Sprintf("%.1f", agg.MeanDelayPerPacket[len(agg.MeanDelayPerPacket)-1]),
			fmt.Sprintf("%.2f", agg.CoveredFraction),
		})
	}
	fd.TableHeaders = []string{"protocol", "mean delay", "first packet", "last packet", "covered"}
	fd.Notes = append(fd.Notes,
		"delay grows with packet index then saturates for OPT/DBAO (limited blocking, Corollary 1); OF saturates higher",
	)
	return fd, nil
}

// Fig10And11 reproduces Fig. 10 (average flooding delay vs duty cycle, with
// the analytic predicted lower bound) and Fig. 11 (number of transmission
// failures vs duty cycle) from one shared sweep, exactly as the paper
// derives both figures from the same runs.
func Fig10And11(opts SimOptions) (*FigureData, *FigureData, error) {
	opts.normalize()
	g := topology.GreenOrbs(opts.TopoSeed)
	k := analysis.KClass(g.MeanLinkPRR())

	f10 := &FigureData{
		ID:     "fig10",
		Title:  fmt.Sprintf("Fig. 10: average flooding delay vs duty cycle (GreenOrbs, M=%d)", opts.M),
		XLabel: "duty cycle (%)",
		YLabel: "average flooding delay / time slots",
	}
	f11 := &FigureData{
		ID:     "fig11",
		Title:  fmt.Sprintf("Fig. 11: transmission failures vs duty cycle (GreenOrbs, M=%d)", opts.M),
		XLabel: "duty cycle (%)",
		YLabel: "number of transmission failures",
	}

	// Every (duty, protocol, run) cell of the sweep is an independent
	// simulation. Flatten the whole grid into one batch so the runner
	// bounds parallelism, recovers per-job panics, and returns results in
	// input order — the output is identical for any worker count.
	nproto := len(opts.Protocols)
	var jobs []sim.Config
	for _, duty := range opts.Duties {
		period := schedule.PeriodForDuty(duty)
		for _, name := range opts.Protocols {
			cell, err := protocolJobs(g, name, period, opts)
			if err != nil {
				return nil, nil, err
			}
			jobs = append(jobs, cell...)
		}
	}
	rs, _ := runner.Run(context.Background(), jobs, opts.runnerOptions())

	delays := make(map[string][]float64)
	fails := make(map[string][]float64)
	var xs, predicted []float64
	for di, duty := range opts.Duties {
		period := schedule.PeriodForDuty(duty)
		xs = append(xs, duty*100)
		predicted = append(predicted, analysis.PredictedDelay(g.N()-1, opts.Coverage, k, period))
		for pi, name := range opts.Protocols {
			base := (di*nproto + pi) * opts.Runs
			sims, err := rs[base : base+opts.Runs].Sims()
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: %s at T=%d: %w", name, period, err)
			}
			agg, err := metrics.Combine(sims)
			if err != nil {
				return nil, nil, err
			}
			delays[agg.Protocol] = append(delays[agg.Protocol], agg.Delay.Mean)
			fails[agg.Protocol] = append(fails[agg.Protocol], agg.Failures)
		}
	}
	// Series in paper order (OF, DBAO, OPT, bound).
	order := make([]string, 0, len(opts.Protocols))
	for _, name := range opts.Protocols {
		p, err := flood.New(name)
		if err != nil {
			return nil, nil, err
		}
		order = append(order, p.Name())
	}
	for i := len(order) - 1; i >= 0; i-- {
		name := order[i]
		f10.Series = append(f10.Series, Series{Name: name, X: xs, Y: delays[name]})
		f11.Series = append(f11.Series, Series{Name: name, X: xs, Y: fails[name]})
	}
	f10.Series = append(f10.Series, Series{Name: "Predicted Lower Bound", X: xs, Y: predicted})

	f10.TableHeaders = append([]string{"duty"}, append(order, "bound")...)
	f11.TableHeaders = append([]string{"duty"}, order...)
	for i := range xs {
		r10 := []string{fmt.Sprintf("%.0f%%", xs[i])}
		r11 := []string{fmt.Sprintf("%.0f%%", xs[i])}
		for _, name := range order {
			r10 = append(r10, fmt.Sprintf("%.0f", delays[name][i]))
			r11 = append(r11, fmt.Sprintf("%.0f", fails[name][i]))
		}
		r10 = append(r10, fmt.Sprintf("%.0f", predicted[i]))
		f10.TableRows = append(f10.TableRows, r10)
		f11.TableRows = append(f11.TableRows, r11)
	}
	f10.Notes = append(f10.Notes,
		"delay deteriorates sharply at low duty cycles; OPT < DBAO < OF; the analytic bound sits below OPT",
	)
	f11.Notes = append(f11.Notes,
		"failure counts stay roughly flat across duty cycles (energy ∝ duty ratio), Section V-C2",
	)
	return f10, f11, nil
}

package experiments

import (
	"fmt"
	"strings"

	"ldcflood/internal/asciichart"
	"ldcflood/internal/runner"
)

// Series is one named data series of a figure.
type Series struct {
	Name string
	X, Y []float64
}

// FigureData is the reproducible content of one paper figure or table.
type FigureData struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// TableHeaders/TableRows hold row-oriented data (used alone for
	// Table I, alongside series for the simulation figures).
	TableHeaders []string
	TableRows    [][]string
	// Notes carries caveats (e.g. substitution reminders) into renderings.
	Notes []string
}

// Render draws the figure as text: chart (when series exist), table (when
// rows exist), and notes.
func (fd *FigureData) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", fd.ID, fd.Title)
	if len(fd.Series) > 0 {
		c := asciichart.Chart{XLabel: fd.XLabel, YLabel: fd.YLabel, Width: 68, Height: 18}
		for _, s := range fd.Series {
			c.MustAdd(s.Name, s.X, s.Y)
		}
		sb.WriteString(c.Render())
	}
	if len(fd.TableRows) > 0 {
		sb.WriteString(asciichart.Table(fd.TableHeaders, fd.TableRows))
	}
	for _, n := range fd.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// SeriesByName returns the named series, or nil.
func (fd *FigureData) SeriesByName(name string) *Series {
	for i := range fd.Series {
		if fd.Series[i].Name == name {
			return &fd.Series[i]
		}
	}
	return nil
}

// SimOptions controls the effort of the trace-driven experiments.
type SimOptions struct {
	// TopoSeed selects the synthetic GreenOrbs instance.
	TopoSeed uint64
	// Seed drives schedules and link loss.
	Seed uint64
	// M is the number of packets flooded (paper: 100).
	M int
	// Runs averages this many independent runs per configuration.
	Runs int
	// Coverage is the delivery-ratio target (paper: 0.99).
	Coverage float64
	// MaxSlots bounds each run (0 = engine default).
	MaxSlots int64
	// Duties lists the duty cycles for the sweep figures (paper:
	// 2%..20% in 2% steps).
	Duties []float64
	// Protocols lists protocol names to evaluate (default opt, dbao, of).
	Protocols []string
	// ScaleSizes lists the node counts for the scalability study
	// (default 300 → 100k; see TrickleScalability).
	ScaleSizes []int
	// Workers bounds how many simulations the batch runner executes
	// concurrently in the sweep figures (0 = GOMAXPROCS). Results never
	// depend on it; see internal/runner.
	Workers int
	// Progress, when non-nil, receives batch-runner progress snapshots
	// while the simulation sweeps run.
	Progress func(runner.Progress)
}

// runnerOptions maps the experiment options onto batch-runner options.
func (o *SimOptions) runnerOptions() runner.Options {
	return runner.Options{Workers: o.Workers, Progress: o.Progress}
}

// PaperSimOptions reproduces the paper's evaluation parameters in full:
// M=100 packets, duty cycles 2%-20%, 99% coverage.
func PaperSimOptions() SimOptions {
	return SimOptions{
		TopoSeed:  1,
		Seed:      1,
		M:         100,
		Runs:      1,
		Coverage:  0.99,
		Duties:    []float64{0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.14, 0.16, 0.18, 0.20},
		Protocols: []string{"opt", "dbao", "of"},
	}
}

// QuickSimOptions is a cut-down configuration (fewer packets and duty
// points) for benchmarks and smoke tests; the shapes survive.
func QuickSimOptions() SimOptions {
	o := PaperSimOptions()
	o.M = 20
	o.Duties = []float64{0.02, 0.05, 0.10, 0.20}
	return o
}

func (o *SimOptions) normalize() {
	if o.M <= 0 {
		o.M = 100
	}
	if o.Runs <= 0 {
		o.Runs = 1
	}
	if o.Coverage <= 0 || o.Coverage > 1 {
		o.Coverage = 0.99
	}
	if len(o.Duties) == 0 {
		o.Duties = PaperSimOptions().Duties
	}
	if len(o.Protocols) == 0 {
		o.Protocols = []string{"opt", "dbao", "of"}
	}
}

// All regenerates every figure and table. Analytic figures always run in
// full; simulation figures honor opts.
func All(opts SimOptions) ([]*FigureData, error) {
	var out []*FigureData
	steps := []func() (*FigureData, error){
		Fig3,
		TableI,
		Fig5,
		Fig6,
		Fig7,
		func() (*FigureData, error) { return Fig8(opts.TopoSeed) },
		func() (*FigureData, error) { return Fig9(opts) },
	}
	for _, step := range steps {
		fd, err := step()
		if err != nil {
			return out, err
		}
		out = append(out, fd)
	}
	f10, f11, err := Fig10And11(opts)
	if err != nil {
		return out, err
	}
	return append(out, f10, f11), nil
}

// AllExtensions regenerates every beyond-the-paper experiment: the
// Lemma 1 illustration, the Section IV-A2 half-duplex accounting, the
// Section VI cross-layer sweep, schedule granularity, the per-node delay
// CDF, synchronization-error sensitivity, the heterogeneous-link study,
// the source-backlog stability probe, the cross-deployment robustness
// check, the fault-injection resilience study, and the timer-protocol
// scalability study.
func AllExtensions(opts SimOptions) ([]*FigureData, error) {
	var out []*FigureData
	steps := []func() (*FigureData, error){
		GaltonWatson,
		HalfDuplex,
		func() (*FigureData, error) { return CrossLayer(opts) },
		func() (*FigureData, error) { return ScheduleGranularity(opts) },
		func() (*FigureData, error) { return NodeDelayCDF(opts) },
		func() (*FigureData, error) { return SyncError(opts) },
		func() (*FigureData, error) { return Heterogeneity(opts) },
		func() (*FigureData, error) { return Backlog(opts) },
		func() (*FigureData, error) { return Robustness(opts) },
		func() (*FigureData, error) { return Adaptive(opts) },
		func() (*FigureData, error) { return Faults(opts) },
		func() (*FigureData, error) { return TrickleScalability(opts) },
	}
	for _, step := range steps {
		fd, err := step()
		if err != nil {
			return out, err
		}
		out = append(out, fd)
	}
	return out, nil
}

package experiments

import (
	"strings"
	"testing"

	"ldcflood/internal/optimize"
)

func TestCrossLayerSweep(t *testing.T) {
	opts := tinyOpts()
	opts.Protocols = []string{"dbao", "of"}
	fd, err := CrossLayer(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.Series) != 2 {
		t.Fatalf("series = %d", len(fd.Series))
	}
	for _, s := range fd.Series {
		if len(s.Y) == 0 {
			t.Fatalf("%s empty", s.Name)
		}
		for _, y := range s.Y {
			if y <= 0 {
				t.Fatalf("%s non-positive gain %v", s.Name, y)
			}
		}
	}
	if len(fd.TableRows) != 2 {
		t.Fatalf("rows = %d", len(fd.TableRows))
	}
	// The joint-optimum note exists and names a protocol.
	if len(fd.Notes) == 0 || !strings.Contains(fd.Notes[0], "joint optimum") {
		t.Fatalf("missing joint optimum note: %v", fd.Notes)
	}
	// DBAO's gain must beat OF's at the shared best duty (better protocol
	// at the same energy cost).
	dbao := fd.SeriesByName("DBAO")
	of := fd.SeriesByName("OF")
	if dbao == nil || of == nil {
		t.Fatal("missing series")
	}
	for i := range dbao.Y {
		if dbao.X[i] == of.X[i] && dbao.Y[i] < of.Y[i]*0.95 {
			t.Fatalf("DBAO gain %v below OF %v at duty %v%%", dbao.Y[i], of.Y[i], dbao.X[i])
		}
	}
}

func TestScheduleGranularity(t *testing.T) {
	opts := tinyOpts()
	fd, err := ScheduleGranularity(opts)
	if err != nil {
		t.Fatal(err)
	}
	s := fd.SeriesByName("OPT")
	if s == nil || len(s.Y) != 4 {
		t.Fatalf("bad series: %+v", fd.Series)
	}
	// Coarser granularity (k=5, period 100) must not beat the paper's
	// normalized one-slot model (k=1, period 20) at the same duty ratio.
	if s.Y[len(s.Y)-1] < s.Y[0]*0.95 {
		t.Fatalf("k=5 delay %.0f unexpectedly beats k=1 delay %.0f", s.Y[len(s.Y)-1], s.Y[0])
	}
	if len(fd.TableRows) != 4 {
		t.Fatalf("rows = %d", len(fd.TableRows))
	}
}

func TestProtoDisplayName(t *testing.T) {
	cases := map[string]string{"opt": "OPT", "dbao": "DBAO", "of": "OF", "naive": "Naive", "x": "x"}
	for in, want := range cases {
		if got := protoDisplayName(in); got != want {
			t.Fatalf("protoDisplayName(%q) = %q", in, got)
		}
	}
}

func TestSimDelayFunc(t *testing.T) {
	opts := tinyOpts()
	d := SimDelayFunc("opt", opts)
	v1, err := d(0.10)
	if err != nil {
		t.Fatal(err)
	}
	if v1 <= 0 {
		t.Fatalf("delay %v", v1)
	}
	// Cached second call returns the identical value.
	v2, err := d(0.10)
	if err != nil || v2 != v1 {
		t.Fatalf("cache broken: %v vs %v (%v)", v1, v2, err)
	}
	// Lower duty means higher delay.
	v3, err := d(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if v3 <= v1 {
		t.Fatalf("delay at 5%% (%v) should exceed 10%% (%v)", v3, v1)
	}
	if _, err := d(0); err == nil {
		t.Fatal("duty 0 accepted")
	}
	if _, err := d(1.5); err == nil {
		t.Fatal("duty 1.5 accepted")
	}
}

func TestSimDelayFuncWithOptimizer(t *testing.T) {
	opts := tinyOpts()
	d := SimDelayFunc("opt", opts)
	p, err := optimize.MinDutyForDelayBudget(optimize.Config{
		MinDuty: 0.02, MaxDuty: 0.5,
	}, d, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if p.Duty != 0.02 {
		t.Fatalf("trivial budget should pin at MinDuty, got %v", p.Duty)
	}
}

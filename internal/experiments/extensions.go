package experiments

import (
	"fmt"
	"sort"

	"ldcflood/internal/analysis"
	"ldcflood/internal/clocksync"
	"ldcflood/internal/flood"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/stats"
	"ldcflood/internal/topology"
)

// NodeDelayCDF floods a single packet with each protocol and reports the
// cumulative distribution of per-node reception delays — the node-level
// view underneath the paper's network-level flooding-delay metric. The
// long right tail (the worst-connected sensors) is exactly why the
// evaluation measures delay at 99% rather than 100% delivery.
func NodeDelayCDF(opts SimOptions) (*FigureData, error) {
	opts.normalize()
	g := topology.GreenOrbs(opts.TopoSeed)
	period := schedule.PeriodForDuty(0.05)
	fd := &FigureData{
		ID:     "nodecdf",
		Title:  "Per-node reception delay CDF, single packet (GreenOrbs, duty 5%)",
		XLabel: "reception delay / time slots",
		YLabel: "fraction of sensors",
	}
	fd.TableHeaders = []string{"protocol", "p50", "p90", "p99", "max", "reached"}
	for _, name := range opts.Protocols {
		p, err := flood.New(name)
		if err != nil {
			return nil, err
		}
		scheds := schedule.AssignUniform(g.N(), period,
			rngutil.New(opts.Seed).SubName("schedule"))
		res, err := sim.Run(sim.Config{
			Graph:            g,
			Schedules:        scheds,
			Protocol:         p,
			M:                1,
			Coverage:         1, // run to full coverage (or horizon) for the tail
			Seed:             opts.Seed,
			MaxSlots:         opts.MaxSlots,
			RecordReceptions: true,
		})
		if err != nil {
			return nil, err
		}
		raw := res.NodeDelays(0)
		if len(raw) < 2 {
			return nil, fmt.Errorf("experiments: nodecdf: %s reached %d nodes", name, len(raw))
		}
		// Aggregate through a Digest rather than a retained sorted sample:
		// below stats.ExactCap nodes (every stock topology) the CDF and
		// percentiles are bit-identical to the sorted-sample computation,
		// and past it the figure degrades to the sketch's eps rank error
		// instead of O(N) memory per series.
		dig := stats.NewDigest()
		for _, d := range raw {
			dig.Add(float64(d))
		}
		xs, cum := dig.CDF()
		ys := make([]float64, len(xs))
		for i, c := range cum {
			ys[i] = float64(c) / float64(g.N())
		}
		fd.Series = append(fd.Series, Series{Name: res.Protocol, X: xs, Y: ys})
		fd.TableRows = append(fd.TableRows, []string{
			res.Protocol,
			fmt.Sprintf("%.0f", dig.Quantile(0.50)),
			fmt.Sprintf("%.0f", dig.Quantile(0.90)),
			fmt.Sprintf("%.0f", dig.Quantile(0.99)),
			fmt.Sprintf("%.0f", dig.Quantile(1)),
			fmt.Sprintf("%d/%d", dig.N(), g.N()),
		})
	}
	fd.Notes = append(fd.Notes,
		"the p99-to-max gap is the poorly-connected tail the paper's 99% delivery-ratio rule excludes",
	)
	return fd, nil
}

// Heterogeneity extends Section IV-B's homogeneous k-class analysis to
// heterogeneous links, exactly the case the paper defers to simulation:
// complete graphs whose link qualities share a mean (so the homogeneous
// k-class prediction is identical) but differ in spread. The measured
// result is the paper's own argument for opportunistic forwarding made
// quantitative: a link-quality-aware protocol (the best-link oracle) turns
// spread into a *diversity gain* — a receiver with many holders rides the
// good tail of the distribution and flooding accelerates — while a
// quality-blind protocol (Naive's rotating sender choice) sees only the
// mean. "The opportunistic forwarding technique can grab more chances in
// the packet transmission to largely compensate the negative effect caused
// by link loss" (Section IV-B).
func Heterogeneity(opts SimOptions) (*FigureData, error) {
	opts.normalize()
	const (
		n       = 128
		meanPRR = 0.7
		period  = 10
	)
	fd := &FigureData{
		ID:     "hetero",
		Title:  fmt.Sprintf("Heterogeneous links at fixed mean PRR %.1f (complete graph n=%d, T=%d)", meanPRR, n, period),
		XLabel: "link PRR standard deviation",
		YLabel: "mean flooding delay / time slots",
	}
	fd.TableHeaders = []string{"PRR std", "realized mean PRR", "best-link delay", "quality-blind delay", "homogeneous prediction"}
	k := analysis.KClass(meanPRR)
	pred := analysis.PredictedDelay(n-1, opts.Coverage, k, period)
	stds := []float64{0, 0.1, 0.2, 0.3}
	measure := func(g *topology.Graph, mk func() sim.Protocol) (float64, error) {
		var acc stats.Running
		for run := 0; run < 3; run++ {
			seed := opts.Seed + uint64(run)*100
			scheds := schedule.AssignUniform(n, period, rngutil.New(seed).SubName("schedule"))
			res, err := sim.Run(sim.Config{
				Graph:     g,
				Schedules: scheds,
				Protocol:  mk(),
				M:         opts.M,
				Coverage:  opts.Coverage,
				Seed:      seed,
				MaxSlots:  opts.MaxSlots,
			})
			if err != nil {
				return 0, err
			}
			acc.Add(res.MeanDelay())
		}
		return acc.Mean(), nil
	}
	var xs, best, blind, flat []float64
	for _, std := range stds {
		g := topology.CompleteHetero(n, meanPRR, std, opts.TopoSeed)
		b, err := measure(g, func() sim.Protocol { return &flood.OPT{DisableOverhearing: true} })
		if err != nil {
			return nil, fmt.Errorf("experiments: hetero std=%v: %w", std, err)
		}
		q, err := measure(g, func() sim.Protocol { return flood.NewNaive() })
		if err != nil {
			return nil, fmt.Errorf("experiments: hetero std=%v: %w", std, err)
		}
		xs = append(xs, std)
		best = append(best, b)
		blind = append(blind, q)
		flat = append(flat, pred)
		fd.TableRows = append(fd.TableRows, []string{
			fmt.Sprintf("%.2f", std),
			fmt.Sprintf("%.3f", g.MeanLinkPRR()),
			fmt.Sprintf("%.1f", b),
			fmt.Sprintf("%.1f", q),
			fmt.Sprintf("%.1f", pred),
		})
	}
	fd.Series = append(fd.Series,
		Series{Name: "best-link (oracle)", X: xs, Y: best},
		Series{Name: "quality-blind (naive)", X: xs, Y: blind},
		Series{Name: "homogeneous k-class prediction", X: xs, Y: flat},
	)
	fd.Notes = append(fd.Notes,
		"link diversity is a resource: quality-aware selection converts PRR spread into speed, quality-blind flooding cannot — the case for opportunistic forwarding",
	)
	return fd, nil
}

// Robustness re-runs the protocol comparison on a structurally different
// deployment — the synthetic indoor testbed (denser, smaller diameter)
// instead of the forest — and checks that the paper's conclusions are not
// artifacts of one topology: ordering OPT <= DBAO <= OF and the delay
// blow-up at low duty both persist.
func Robustness(opts SimOptions) (*FigureData, error) {
	opts.normalize()
	fd := &FigureData{
		ID:     "robustness",
		Title:  fmt.Sprintf("Cross-deployment robustness: delay vs duty cycle on forest and testbed (M=%d)", opts.M),
		XLabel: "duty cycle (%)",
		YLabel: "mean flooding delay / time slots",
	}
	fd.TableHeaders = []string{"deployment", "protocol", "delay@low duty", "delay@high duty", "blow-up"}
	deployments := []struct {
		name string
		g    *topology.Graph
	}{
		{"forest", topology.GreenOrbs(opts.TopoSeed)},
		{"testbed", topology.Testbed(opts.TopoSeed)},
	}
	duties := []float64{opts.Duties[0], opts.Duties[len(opts.Duties)-1]}
	for _, dep := range deployments {
		for _, name := range opts.Protocols {
			var xs, ys []float64
			for _, duty := range duties {
				period := schedule.PeriodForDuty(duty)
				agg, err := runProtocol(dep.g, name, period, opts)
				if err != nil {
					return nil, fmt.Errorf("experiments: robustness %s/%s: %w", dep.name, name, err)
				}
				xs = append(xs, duty*100)
				ys = append(ys, agg.Delay.Mean)
			}
			fd.Series = append(fd.Series, Series{
				Name: dep.name + " " + protoDisplayName(name),
				X:    xs, Y: ys,
			})
			fd.TableRows = append(fd.TableRows, []string{
				dep.name,
				protoDisplayName(name),
				fmt.Sprintf("%.0f", ys[0]),
				fmt.Sprintf("%.0f", ys[len(ys)-1]),
				fmt.Sprintf("%.1fx", ys[0]/ys[len(ys)-1]),
			})
		}
	}
	fd.Notes = append(fd.Notes,
		"the protocol ordering and low-duty blow-up hold on both deployments — the evaluation's conclusions are not topology artifacts",
	)
	return fd, nil
}

// Backlog instruments the queue blow-up Section IV-B predicts and
// Section V observes: when the per-packet service time (~k·T/2 slots)
// exceeds the source's injection interval, early packets block late ones
// and the backlog of injected-but-uncovered packets grows without bound;
// slowing the source restores the limited-blocking regime. The figure
// plots backlog-over-time for a saturating and a stable injection rate at
// the same duty cycle.
func Backlog(opts SimOptions) (*FigureData, error) {
	opts.normalize()
	g := topology.GreenOrbs(opts.TopoSeed)
	period := schedule.PeriodForDuty(0.05)
	k := analysis.KClass(g.MeanLinkPRR())
	fd := &FigureData{
		ID:     "backlog",
		Title:  fmt.Sprintf("Source backlog vs time (GreenOrbs, duty 5%%, M=%d, DBAO)", opts.M),
		XLabel: "time / slots",
		YLabel: "packets injected but not yet covered",
	}
	fd.TableHeaders = []string{"inject interval", "stable per analysis", "max backlog", "mean delay"}
	// Back-to-back injection saturates (kT/2 >> 1); spacing injections by
	// ~kT covers the service time.
	stableInterval := int(k*float64(period) + 0.5)
	for _, interval := range []int{1, stableInterval} {
		p, err := flood.New("dbao")
		if err != nil {
			return nil, err
		}
		scheds := schedule.AssignUniform(g.N(), period,
			rngutil.New(opts.Seed).SubName("schedule"))
		res, err := sim.Run(sim.Config{
			Graph:          g,
			Schedules:      scheds,
			Protocol:       p,
			M:              opts.M,
			InjectInterval: interval,
			Coverage:       opts.Coverage,
			Seed:           opts.Seed,
			MaxSlots:       opts.MaxSlots,
		})
		if err != nil {
			return nil, err
		}
		xs, ys, maxBacklog := backlogSeries(res)
		fd.Series = append(fd.Series, Series{
			Name: fmt.Sprintf("inject every %d slot(s)", interval),
			X:    xs, Y: ys,
		})
		fd.TableRows = append(fd.TableRows, []string{
			fmt.Sprintf("%d", interval),
			fmt.Sprintf("%v", !analysis.BlockingBreaksDown(g.N()-1, k, period, interval)),
			fmt.Sprintf("%d", maxBacklog),
			fmt.Sprintf("%.0f", res.MeanDelay()),
		})
	}
	fd.Notes = append(fd.Notes,
		"back-to-back injection at low duty drives the backlog to M (every packet queued); spacing injections by ~kT keeps it small — Section IV-B's stability condition",
	)
	return fd, nil
}

// backlogSeries reconstructs the injected-minus-covered packet count over
// time from a run's inject/cover timestamps, sampled at each event.
func backlogSeries(res *sim.Result) (xs, ys []float64, maxBacklog int) {
	type event struct {
		t     int64
		delta int
	}
	var events []event
	for p := 0; p < res.M; p++ {
		if res.InjectTime[p] >= 0 {
			events = append(events, event{res.InjectTime[p], +1})
		}
		if res.CoverTime[p] >= 0 {
			events = append(events, event{res.CoverTime[p], -1})
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return events[i].delta < events[j].delta // cover before inject at ties
	})
	backlog := 0
	for _, ev := range events {
		backlog += ev.delta
		if backlog > maxBacklog {
			maxBacklog = backlog
		}
		xs = append(xs, float64(ev.t))
		ys = append(ys, float64(backlog))
	}
	return xs, ys, maxBacklog
}

// SyncError measures how sensitive flooding is to the paper's local
// synchronization assumption (Section III-B): every transmission misses
// its receiver's wake slot with probability ε, and the mean flooding delay
// is reported as ε grows. A roughly 1/(1-ε) degradation indicates the
// protocols degrade gracefully; a blow-up would mean the assumption is
// load-bearing.
func SyncError(opts SimOptions) (*FigureData, error) {
	opts.normalize()
	g := topology.GreenOrbs(opts.TopoSeed)
	period := schedule.PeriodForDuty(0.05)
	fd := &FigureData{
		ID:     "syncerr",
		Title:  fmt.Sprintf("Sensitivity to local-synchronization error (GreenOrbs, duty 5%%, M=%d)", opts.M),
		XLabel: "sync error probability (%)",
		YLabel: "mean flooding delay / time slots",
	}
	epsilons := []float64{0, 0.05, 0.10, 0.20, 0.40}
	fd.TableHeaders = []string{"protocol", "eps=0", "eps=0.1", "eps=0.4", "degradation@0.4"}
	for _, name := range opts.Protocols {
		var xs, ys []float64
		for _, eps := range epsilons {
			p, err := flood.New(name)
			if err != nil {
				return nil, err
			}
			scheds := schedule.AssignUniform(g.N(), period,
				rngutil.New(opts.Seed).SubName("schedule"))
			res, err := sim.Run(sim.Config{
				Graph:         g,
				Schedules:     scheds,
				Protocol:      p,
				M:             opts.M,
				Coverage:      opts.Coverage,
				Seed:          opts.Seed,
				MaxSlots:      opts.MaxSlots,
				SyncErrorProb: eps,
			})
			if err != nil {
				return nil, err
			}
			xs = append(xs, eps*100)
			ys = append(ys, res.MeanDelay())
		}
		fd.Series = append(fd.Series, Series{Name: protoDisplayName(name), X: xs, Y: ys})
		fd.TableRows = append(fd.TableRows, []string{
			protoDisplayName(name),
			fmt.Sprintf("%.0f", ys[0]),
			fmt.Sprintf("%.0f", ys[2]),
			fmt.Sprintf("%.0f", ys[4]),
			fmt.Sprintf("%.2fx", ys[4]/ys[0]),
		})
	}
	fd.Notes = append(fd.Notes,
		"graceful ~1/(1-eps) degradation: low-cost local synchronization ([26][27]) suffices; perfect sync is not load-bearing",
	)
	// Ground the ε axis in hardware: what the clock-drift/beacon model
	// says commodity sensors actually achieve.
	if cs, err := clocksync.Simulate(g, clocksync.DefaultConfig(), opts.Seed); err == nil {
		fd.Notes = append(fd.Notes, fmt.Sprintf(
			"for scale: ±30ppm crystals re-beaconed every 2 min give a measured miss probability of %.4f at 10ms slots (clocksync model)",
			cs.MissProbability(0.010)))
	}
	return fd, nil
}

package experiments

import (
	"context"
	"fmt"

	"ldcflood/internal/analysis"
	"ldcflood/internal/fault"
	"ldcflood/internal/metrics"
	"ldcflood/internal/runner"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

// faultSchedule builds the experiment's reference fault scenario against a
// concrete topology: bursty Gilbert–Elliott degradation of the weak link
// class, two mid-flood node crashes (one rebooting, one permanent), and a
// transient jamming disc over the deployment's center. Node indices and
// the disc scale with the graph, so the same scenario applies to any
// deployment.
func faultSchedule(g *topology.Graph) *fault.Schedule {
	n := g.N()
	s := &fault.Schedule{
		Links: []fault.LinkRule{{
			// Burst-degrade the transitional links — the class the paper's
			// k-class analysis shows dominates flooding delay.
			MaxPRR:   0.75,
			PGB:      0.01,
			PBG:      0.05,
			BadScale: 0.25,
		}},
		Crashes: []fault.Crash{
			{Node: n / 3, At: 200, RebootAt: 600},
			{Node: 2 * n / 3, At: 500, RebootAt: -1},
		},
	}
	if g.Pos != nil {
		var cx, cy, maxX, maxY float64
		for _, p := range g.Pos {
			cx += p.X
			cy += p.Y
			if p.X > maxX {
				maxX = p.X
			}
			if p.Y > maxY {
				maxY = p.Y
			}
		}
		cx /= float64(n)
		cy /= float64(n)
		s.Jams = append(s.Jams, fault.Jam{
			From: 300, Until: 800,
			X: cx, Y: cy, Radius: (maxX + maxY) / 8,
		})
	}
	return s
}

// faultJobs mirrors protocolJobs but attaches the fault schedule (nil for
// the clean baseline) and records per-node receptions, which the recovery
// metrics need.
func faultJobs(g *topology.Graph, name string, period int, spec *fault.Schedule, opts SimOptions) ([]sim.Config, error) {
	jobs, err := protocolJobs(g, name, period, opts)
	if err != nil {
		return nil, err
	}
	for i := range jobs {
		jobs[i].Faults = spec
		jobs[i].RecordReceptions = true
	}
	return jobs, nil
}

// Faults stresses the protocols beyond the paper's static loss model: the
// same flood runs clean and under a scripted fault scenario (bursty links,
// node churn, a jamming outage — see internal/fault), and the resilience
// metrics report what the faults cost. The paper's "limited blocking
// effect" predicts flooding absorbs localized disruption: delay inflates
// but coverage holds, and rebooted nodes are re-served by the ongoing
// flood without any protocol changes.
func Faults(opts SimOptions) (*FigureData, error) {
	opts.normalize()
	g := topology.GreenOrbs(opts.TopoSeed)
	const duty = 0.05
	period := schedule.PeriodForDuty(duty)
	spec := faultSchedule(g)
	if err := spec.Validate(g); err != nil {
		return nil, fmt.Errorf("experiments: faults: %w", err)
	}
	k := analysis.KClass(g.MeanLinkPRR())
	bound := analysis.PredictedDelay(g.N()-1, opts.Coverage, k, period)

	fd := &FigureData{
		ID:     "faults",
		Title:  fmt.Sprintf("Resilience under scripted faults (GreenOrbs, duty 5%%, M=%d)", opts.M),
		XLabel: "packet index",
		YLabel: "mean flooding delay / time slots",
	}
	fd.TableHeaders = []string{
		"protocol", "clean delay", "faulted delay", "inflation",
		"clean covered", "faulted covered", "mean recovery", "unrecovered",
	}
	runBatch := func(name string, withFaults *fault.Schedule) ([]*sim.Result, error) {
		jobs, err := faultJobs(g, name, period, withFaults, opts)
		if err != nil {
			return nil, err
		}
		rs, _ := runner.Run(context.Background(), jobs, opts.runnerOptions())
		return rs.Sims()
	}
	for _, name := range opts.Protocols {
		clean, err := runBatch(name, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: faults %s clean: %w", name, err)
		}
		faulted, err := runBatch(name, spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: faults %s faulted: %w", name, err)
		}
		r, err := metrics.ComputeResilience(clean, faulted, spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: faults %s: %w", name, err)
		}
		cleanAgg, err := metrics.Combine(clean)
		if err != nil {
			return nil, err
		}
		faultedAgg, err := metrics.Combine(faulted)
		if err != nil {
			return nil, err
		}
		xs := make([]float64, opts.M)
		for p := range xs {
			xs[p] = float64(p)
		}
		fd.Series = append(fd.Series,
			Series{Name: protoDisplayName(name) + " clean", X: xs, Y: cleanAgg.MeanDelayPerPacket},
			Series{Name: protoDisplayName(name) + " faulted", X: xs, Y: faultedAgg.MeanDelayPerPacket},
		)
		recovery := "n/a"
		if r.Recovery.N > 0 {
			recovery = fmt.Sprintf("%.0f slots", r.Recovery.Mean)
		}
		fd.TableRows = append(fd.TableRows, []string{
			protoDisplayName(name),
			fmt.Sprintf("%.0f", r.CleanDelay),
			fmt.Sprintf("%.0f", r.FaultedDelay),
			fmt.Sprintf("%.2fx", r.DelayInflation),
			fmt.Sprintf("%.2f", r.CleanCovered),
			fmt.Sprintf("%.2f", r.FaultedCovered),
			recovery,
			fmt.Sprintf("%d", r.Unrecovered),
		})
	}
	fd.Notes = append(fd.Notes,
		fmt.Sprintf("λmax lower bound for the clean run at this duty: %.0f slots — inflation above 1x is the faults' own cost", bound),
		"the coverage target tolerates the permanently-failed node, so covered fractions holding at the clean level is the limited blocking effect under churn",
	)
	return fd, nil
}

package experiments

import (
	"math"
	"strings"
	"testing"
)

func tinyOpts() SimOptions {
	return SimOptions{
		TopoSeed:  1,
		Seed:      1,
		M:         8,
		Runs:      1,
		Coverage:  0.99,
		Duties:    []float64{0.05, 0.20},
		Protocols: []string{"opt", "dbao", "of"},
		// Keep the scalability ladder tiny; the full 300→100k default is
		// for cmd/figures runs, not unit tests.
		ScaleSizes: []int{300, 600},
	}
}

func TestFig3(t *testing.T) {
	fd, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if fd.ID != "fig3" || len(fd.TableRows) == 0 {
		t.Fatalf("bad figure: %+v", fd)
	}
	// 5 nodes per snapshot; at least 4 snapshots (completion at c>=3).
	if len(fd.TableRows)%5 != 0 || len(fd.TableRows) < 20 {
		t.Fatalf("unexpected row count %d", len(fd.TableRows))
	}
	out := fd.Render()
	if !strings.Contains(out, "fig3") || !strings.Contains(out, "pkt0") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestTableI(t *testing.T) {
	fd, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.TableRows) != 20 {
		t.Fatalf("rows = %d, want 20", len(fd.TableRows))
	}
	// Row 0: p=0, Wp(M=5) = m = 11, Wp(M=20) = 11.
	if fd.TableRows[0][1] != "11" || fd.TableRows[0][2] != "11" {
		t.Fatalf("row 0 = %v", fd.TableRows[0])
	}
	// Last row: Wp saturates at 2m-1 = 21 for the M>=m regime.
	if fd.TableRows[19][2] != "21" {
		t.Fatalf("row 19 = %v", fd.TableRows[19])
	}
	// The M=5 column runs out after p=4.
	if fd.TableRows[5][1] != "-" {
		t.Fatalf("row 5 = %v", fd.TableRows[5])
	}
}

func TestFig5(t *testing.T) {
	fd, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.Series) != 6 {
		t.Fatalf("series = %d, want 6", len(fd.Series))
	}
	// Every series is nondecreasing in M, and the knee makes later slope
	// shallower than earlier slope.
	for _, s := range fd.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1] {
				t.Fatalf("%s not monotone", s.Name)
			}
		}
	}
	// Fig. 5 anchor values.
	n1024 := fd.SeriesByName("T=5 N=1024")
	if n1024 == nil || n1024.Y[19] != 100 {
		t.Fatalf("N=1024 FDL(M=20) should be 100, got %+v", n1024)
	}
	duty100 := fd.SeriesByName("N=1024 duty=100%")
	if duty100 == nil || duty100.Y[19] != 20 {
		t.Fatalf("duty 100%% FDL(M=20) should be 20, got %+v", duty100)
	}
}

func TestFig6(t *testing.T) {
	fd, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(fd.Series))
	}
	for _, n := range []string{"256", "1024"} {
		lo := fd.SeriesByName("N=" + n + " lower bound")
		hi := fd.SeriesByName("N=" + n + " upper bound")
		if lo == nil || hi == nil {
			t.Fatalf("missing bound series for N=%s", n)
		}
		for i := range lo.Y {
			if lo.Y[i] > hi.Y[i] {
				t.Fatalf("N=%s bounds inverted at %d", n, i)
			}
		}
	}
}

func TestFig7(t *testing.T) {
	fd, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.Series) != 4 {
		t.Fatalf("series = %d", len(fd.Series))
	}
	// Worst link quality (k=2) dominates at every duty cycle.
	k2 := fd.Series[0]
	k125 := fd.Series[3]
	if !strings.Contains(k2.Name, "k=2.00") || !strings.Contains(k125.Name, "k=1.25") {
		t.Fatalf("series order changed: %s / %s", k2.Name, k125.Name)
	}
	for i := range k2.Y {
		if k2.Y[i] <= k125.Y[i] {
			t.Fatalf("lossier links should predict higher delay at duty %v", k2.X[i])
		}
	}
	// Delay decreases with duty cycle along each curve.
	for _, s := range fd.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] >= s.Y[i-1] {
				t.Fatalf("%s not decreasing in duty", s.Name)
			}
		}
	}
}

func TestFig8(t *testing.T) {
	fd, err := Fig8(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.Series) != 1 || len(fd.Series[0].X) != 298 {
		t.Fatalf("scatter should have 298 points")
	}
	found := false
	for _, row := range fd.TableRows {
		if row[0] == "nodes" && row[1] == "298" {
			found = true
		}
	}
	if !found {
		t.Fatal("node count row missing")
	}
}

func TestFig9Quick(t *testing.T) {
	fd, err := Fig9(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Total delay plus the transmission-delay component per protocol.
	if len(fd.Series) != 6 {
		t.Fatalf("series = %d", len(fd.Series))
	}
	for _, s := range fd.Series {
		if len(s.Y) == 0 {
			t.Fatalf("%s empty", s.Name)
		}
		for _, y := range s.Y {
			if y < 0 || math.IsNaN(y) {
				t.Fatalf("%s has negative delay %v", s.Name, y)
			}
		}
	}
	// The tx-delay component sits below the total for every protocol; it
	// is what the paper calls "the actual packet transmission consumes
	// almost the same in all three protocols".
	for _, name := range []string{"OPT", "DBAO", "OF"} {
		total := fd.SeriesByName(name)
		tx := fd.SeriesByName(name + " tx-delay")
		if total == nil || tx == nil {
			t.Fatalf("missing series pair for %s", name)
		}
		for i := range tx.Y {
			if tx.Y[i] > total.Y[i] {
				t.Fatalf("%s tx-delay %v above total %v", name, tx.Y[i], total.Y[i])
			}
		}
	}
	// OPT's series must sit at or below OF's at the last index.
	opt := fd.SeriesByName("OPT")
	of := fd.SeriesByName("OF")
	if opt == nil || of == nil {
		t.Fatal("missing protocol series")
	}
	if opt.Y[len(opt.Y)-1] > of.Y[len(of.Y)-1] {
		t.Fatalf("OPT (%v) above OF (%v) at last packet", opt.Y[len(opt.Y)-1], of.Y[len(of.Y)-1])
	}
}

func TestFig10And11Quick(t *testing.T) {
	f10, f11, err := Fig10And11(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Fig 10: 3 protocols + predicted bound.
	if len(f10.Series) != 4 {
		t.Fatalf("fig10 series = %d", len(f10.Series))
	}
	bound := f10.SeriesByName("Predicted Lower Bound")
	opt := f10.SeriesByName("OPT")
	of := f10.SeriesByName("OF")
	if bound == nil || opt == nil || of == nil {
		t.Fatal("missing series")
	}
	for i := range bound.Y {
		if bound.Y[i] > opt.Y[i] {
			t.Fatalf("analytic bound %v above OPT %v at duty %v%%", bound.Y[i], opt.Y[i], bound.X[i])
		}
		if opt.Y[i] > of.Y[i]*1.05 {
			t.Fatalf("OPT above OF at duty %v%%", bound.X[i])
		}
	}
	// Delay at the lowest duty must exceed delay at the highest (Fig 10's
	// deterioration) for every protocol.
	for _, s := range f10.Series {
		if s.Y[0] <= s.Y[len(s.Y)-1] {
			t.Fatalf("%s delay does not deteriorate at low duty: %v", s.Name, s.Y)
		}
	}
	// Fig 11: failures present for each protocol, positive.
	if len(f11.Series) != 3 {
		t.Fatalf("fig11 series = %d", len(f11.Series))
	}
	for _, s := range f11.Series {
		for i, y := range s.Y {
			if y < 0 {
				t.Fatalf("%s negative failures at %d", s.Name, i)
			}
		}
	}
}

func TestGaltonWatsonFigure(t *testing.T) {
	fd, err := GaltonWatson()
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.Series) != 6 { // 5 paths + mean line
		t.Fatalf("series = %d", len(fd.Series))
	}
	// Late generations concentrate near 1 (Lemma 1): every path's final
	// normalized value is within a few limit-standard-deviations of 1.
	for _, s := range fd.Series[:5] {
		last := s.Y[len(s.Y)-1]
		if last < 0.1 || last > 4 {
			t.Fatalf("%s final normalized population %v implausible", s.Name, last)
		}
	}
}

func TestRenderAllQuick(t *testing.T) {
	figs, err := All(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 9 {
		t.Fatalf("got %d figures, want 9", len(figs))
	}
	ids := map[string]bool{}
	for _, fd := range figs {
		if out := fd.Render(); len(out) < 40 {
			t.Fatalf("%s render too small", fd.ID)
		}
		ids[fd.ID] = true
	}
	for _, want := range []string{"fig3", "table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"} {
		if !ids[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestAllExtensionsQuick(t *testing.T) {
	opts := tinyOpts()
	opts.M = 10
	figs, err := AllExtensions(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"gw", "halfduplex", "crosslayer", "granularity", "nodecdf", "syncerr", "hetero", "backlog", "robustness", "adaptive", "faults", "scale"}
	if len(figs) != len(want) {
		t.Fatalf("got %d extension figures, want %d", len(figs), len(want))
	}
	for i, fd := range figs {
		if fd.ID != want[i] {
			t.Fatalf("figure %d = %q, want %q", i, fd.ID, want[i])
		}
		if len(fd.Render()) < 40 {
			t.Fatalf("%s renders too small", fd.ID)
		}
	}
}

func TestSeriesByNameMissing(t *testing.T) {
	fd := &FigureData{}
	if fd.SeriesByName("nope") != nil {
		t.Fatal("expected nil for missing series")
	}
}

func TestFaultsQuick(t *testing.T) {
	opts := tinyOpts()
	opts.Protocols = []string{"opt"}
	fd, err := Faults(opts)
	if err != nil {
		t.Fatal(err)
	}
	if fd.ID != "faults" {
		t.Fatalf("ID = %q", fd.ID)
	}
	// One clean and one faulted delay curve for the single protocol.
	if len(fd.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(fd.Series))
	}
	if len(fd.TableRows) != 1 || len(fd.TableRows[0]) != len(fd.TableHeaders) {
		t.Fatalf("table shape = %dx%d", len(fd.TableRows), len(fd.TableRows[0]))
	}
	if !strings.HasSuffix(fd.TableRows[0][3], "x") {
		t.Fatalf("inflation cell = %q", fd.TableRows[0][3])
	}
	if len(fd.Render()) < 40 {
		t.Fatal("render too small")
	}
}

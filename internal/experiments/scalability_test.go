package experiments

import "testing"

func TestTrickleScalabilityQuick(t *testing.T) {
	opts := tinyOpts()
	fd, err := TrickleScalability(opts)
	if err != nil {
		t.Fatal(err)
	}
	if fd.ID != "scale" {
		t.Fatalf("ID = %q", fd.ID)
	}
	if len(fd.Series) != 2 {
		t.Fatalf("got %d series, want trickle + dflood", len(fd.Series))
	}
	for _, s := range fd.Series {
		if len(s.X) != len(opts.ScaleSizes) {
			t.Fatalf("%s: %d points, want %d", s.Name, len(s.X), len(opts.ScaleSizes))
		}
		for i := range s.X {
			if i > 0 && s.X[i] <= s.X[i-1] {
				t.Fatalf("%s: sizes not increasing", s.Name)
			}
			if s.Y[i] <= 0 {
				t.Fatalf("%s: non-positive per-node load at N=%v", s.Name, s.X[i])
			}
			// The Meyfroyt qualitative marker, loosely pinned: per-node
			// load must not blow up with N (constant density ⇒ bounded
			// per-node Trickle load). A factor-4 envelope over the
			// smallest size keeps the test robust to topology noise
			// while still failing on superlinear message growth.
			if s.Y[i] > 4*s.Y[0] {
				t.Fatalf("%s: per-node load grows with N: %v at N=%v vs %v at N=%v",
					s.Name, s.Y[i], s.X[i], s.Y[0], s.X[0])
			}
		}
	}
	if len(fd.TableRows) != 2*len(opts.ScaleSizes) {
		t.Fatalf("got %d table rows", len(fd.TableRows))
	}
	if len(fd.Render()) < 40 {
		t.Fatal("render too small")
	}
}

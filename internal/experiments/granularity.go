package experiments

import (
	"fmt"

	"ldcflood/internal/flood"
	"ldcflood/internal/metrics"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

// ScheduleGranularity probes a question the paper's normalized model
// (Section III-A: one active slot per period) leaves implicit: at a fixed
// duty ratio, is it better to wake once per short period or k times per
// k-times-longer period? For k active slots placed uniformly in a period of
// k·T the expected forward wait to the next active slot is ~kT/(k+1),
// which grows from ~T/2 (k=1) toward T (k→∞): coarse schedules pay more
// sleep latency at the same energy. The experiment measures this on the
// GreenOrbs trace and the figure reports delay versus granularity k.
func ScheduleGranularity(opts SimOptions) (*FigureData, error) {
	opts.normalize()
	g := topology.GreenOrbs(opts.TopoSeed)
	const duty = 0.05
	baseT := schedule.PeriodForDuty(duty)

	fd := &FigureData{
		ID:     "granularity",
		Title:  fmt.Sprintf("Schedule granularity at fixed duty %.0f%%: k active slots per k x %d-slot period (GreenOrbs, M=%d)", duty*100, baseT, opts.M),
		XLabel: "active slots per period (k)",
		YLabel: "mean flooding delay / time slots",
	}
	fd.TableHeaders = []string{"k", "period", "mean delay", "failures", "covered"}
	var xs, ys []float64
	for _, k := range []int{1, 2, 3, 5} {
		period := baseT * k
		var results []*sim.Result
		for run := 0; run < opts.Runs; run++ {
			p, err := flood.New("opt")
			if err != nil {
				return nil, err
			}
			seed := opts.Seed + uint64(run)*1000 + uint64(k)
			scheds := schedule.AssignUniformMulti(g.N(), period, k,
				rngutil.New(seed).SubName("schedule"))
			res, err := sim.Run(sim.Config{
				Graph:     g,
				Schedules: scheds,
				Protocol:  p,
				M:         opts.M,
				Coverage:  opts.Coverage,
				Seed:      seed,
				MaxSlots:  opts.MaxSlots,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: granularity k=%d: %w", k, err)
			}
			results = append(results, res)
		}
		agg, err := metrics.Combine(results)
		if err != nil {
			return nil, err
		}
		xs = append(xs, float64(k))
		ys = append(ys, agg.Delay.Mean)
		fd.TableRows = append(fd.TableRows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", period),
			fmt.Sprintf("%.0f", agg.Delay.Mean),
			fmt.Sprintf("%.0f", agg.Failures),
			fmt.Sprintf("%.2f", agg.CoveredFraction),
		})
	}
	fd.Series = append(fd.Series, Series{Name: "OPT", X: xs, Y: ys})
	fd.Notes = append(fd.Notes,
		"the paper's one-slot-per-period model is the optimal granularity: k slots in a k-times-longer period raise the expected sleep latency toward T at the same duty ratio",
	)
	return fd, nil
}

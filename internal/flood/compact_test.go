package flood

// Equivalence suite for sim.Config.CompactTime with the real protocols:
// the compact-time fast path must reproduce the slot-by-slot reference
// path bit for bit — full sim.Result, aggregated metrics.Aggregate, and
// the byte-exact tracelog event stream — across topology × protocol ×
// duty-cycle combinations covering every shipped protocol.

import (
	"bytes"
	"reflect"
	"testing"

	"ldcflood/internal/metrics"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
	"ldcflood/internal/tracelog"
)

// compactEquivCases spans the shipped protocols over distinct topologies
// and duty cycles (period = 1/duty with a single active slot).
var compactEquivCases = []struct {
	name     string
	graph    func() *topology.Graph
	protocol string
	period   int
	m        int
	maxSlots int64
}{
	{"greenorbs-opt-1pct", func() *topology.Graph { return topology.GreenOrbs(1) }, "opt", 100, 3, 200000},
	{"greenorbs-dbao-5pct", func() *topology.Graph { return topology.GreenOrbs(1) }, "dbao", 20, 3, 200000},
	{"grid-of-5pct", func() *topology.Graph { return topology.Grid(7, 7, 0.8) }, "of", 20, 4, 100000},
	{"ring-naive-10pct", func() *topology.Graph { return topology.Ring(24, 0.9) }, "naive", 10, 4, 100000},
}

// runBoth executes one configuration on both paths with a trace logger
// attached and returns (slow, fast) results plus their trace bytes.
func runBoth(t *testing.T, cfg sim.Config, protocol string) (slow, fast *sim.Result, slowTrace, fastTrace []byte) {
	t.Helper()
	run := func(compact bool) (*sim.Result, []byte) {
		p, err := New(protocol)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		c := cfg
		c.Protocol = p
		c.Observer = tracelog.NewLogger(&buf)
		c.CompactTime = compact
		res, err := sim.Run(c)
		if err != nil {
			t.Fatalf("%s compact=%v: %v", protocol, compact, err)
		}
		if err := c.Observer.(*tracelog.Logger).Flush(); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}
	slow, slowTrace = run(false)
	fast, fastTrace = run(true)
	return slow, fast, slowTrace, fastTrace
}

// TestCompactEquivalenceProtocols is the acceptance-criteria suite: for
// each combo, CompactTime=true and false must emit identical results,
// identical metrics.Aggregate values, and byte-identical trace logs.
func TestCompactEquivalenceProtocols(t *testing.T) {
	for _, tc := range compactEquivCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			g := tc.graph()
			cfg := sim.Config{
				Graph:            g,
				Schedules:        uniform(g.N(), tc.period, 42),
				M:                tc.m,
				Coverage:         0.99,
				Seed:             1234,
				MaxSlots:         tc.maxSlots,
				RecordReceptions: true,
			}
			slow, fast, slowTrace, fastTrace := runBoth(t, cfg, tc.protocol)
			if !reflect.DeepEqual(slow, fast) {
				t.Errorf("results diverge:\nslow %+v\nfast %+v", slow, fast)
			}
			aggSlow, err := metrics.Combine([]*sim.Result{slow})
			if err != nil {
				t.Fatal(err)
			}
			aggFast, err := metrics.Combine([]*sim.Result{fast})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(aggSlow, aggFast) {
				t.Errorf("aggregates diverge:\nslow %+v\nfast %+v", aggSlow, aggFast)
			}
			if !bytes.Equal(slowTrace, fastTrace) {
				t.Errorf("trace logs diverge: slow %d bytes, fast %d bytes",
					len(slowTrace), len(fastTrace))
			}
			if !slow.Completed {
				t.Errorf("run did not complete within %d slots; equivalence vacuous", tc.maxSlots)
			}
		})
	}
}

// TestCompactEquivalenceSyncCapture re-runs one combo with the optional
// sync-error and capture features enabled, exercising the engine's
// secondary RNG streams under slot skipping.
func TestCompactEquivalenceSyncCapture(t *testing.T) {
	g := topology.Grid(6, 6, 0.7)
	cfg := sim.Config{
		Graph:            g,
		Schedules:        uniform(g.N(), 20, 7),
		M:                3,
		Coverage:         0.99,
		Seed:             99,
		MaxSlots:         100000,
		RecordReceptions: true,
		SyncErrorProb:    0.05,
		CaptureProb:      0.4,
	}
	for _, protocol := range []string{"dbao", "flash"} {
		slow, fast, slowTrace, fastTrace := runBoth(t, cfg, protocol)
		if !reflect.DeepEqual(slow, fast) {
			t.Errorf("%s: results diverge:\nslow %+v\nfast %+v", protocol, slow, fast)
		}
		if !bytes.Equal(slowTrace, fastTrace) {
			t.Errorf("%s: trace logs diverge", protocol)
		}
	}
}

// TestCompactEquivalenceMultiSlot covers schedules with several active
// slots per period and heterogeneous periods (hyperperiod > period).
func TestCompactEquivalenceMultiSlot(t *testing.T) {
	g := topology.Ring(18, 0.85)
	n := g.N()
	scheds := make([]*schedule.Schedule, n)
	for i := range scheds {
		switch i % 3 {
		case 0:
			scheds[i] = schedule.NewSingleSlot(12, i%12)
		case 1:
			scheds[i] = schedule.NewMultiSlot(8, []int{i % 8, (i + 3) % 8})
		default:
			scheds[i] = schedule.NewSingleSlot(6, i%6)
		}
	}
	cfg := sim.Config{
		Graph:            g,
		Schedules:        scheds,
		M:                3,
		Coverage:         1,
		Seed:             5,
		MaxSlots:         100000,
		RecordReceptions: true,
	}
	for _, protocol := range Names() {
		slow, fast, slowTrace, fastTrace := runBoth(t, cfg, protocol)
		if !reflect.DeepEqual(slow, fast) {
			t.Errorf("%s: results diverge:\nslow %+v\nfast %+v", protocol, slow, fast)
		}
		if !bytes.Equal(slowTrace, fastTrace) {
			t.Errorf("%s: trace logs diverge", protocol)
		}
	}
}

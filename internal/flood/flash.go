package flood

import (
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

// Flash reconstructs the flash-flooding idea of the paper's reference [17]
// (Lu & Whitehouse, INFOCOM'09): instead of arbitrating a single sender,
// every neighbor holding a packet the waking receiver needs transmits
// concurrently, and the receiver relies on the capture effect to decode
// the strongest signal. Run it with sim.Config.CaptureProb > 0 — with
// capture disabled the concurrent transmissions simply collide and Flash
// degenerates into the worst possible protocol, which is itself the
// instructive ablation.
type Flash struct {
	assigned  []bool
	csr       *topology.CSR
	intentBuf []sim.Intent
	sel       selScratch
}

// NewFlash returns a fresh Flash instance.
func NewFlash() *Flash { return &Flash{} }

// Name implements sim.Protocol.
func (f *Flash) Name() string { return "Flash" }

// Reset implements sim.Protocol.
func (f *Flash) Reset(w *sim.World) {
	f.assigned = make([]bool, w.Graph.N())
	f.csr = w.Graph.CSR()
}

// CollisionsApply implements sim.Protocol: concurrent transmissions
// collide; the engine's capture model decides whether one survives.
func (f *Flash) CollisionsApply() bool { return true }

// Overhears implements sim.Protocol: concurrent flooding thrives on
// promiscuous reception.
func (f *Flash) Overhears() bool { return true }

// Intents implements sim.Protocol.
func (f *Flash) Intents(w *sim.World) []sim.Intent {
	out := f.intentBuf[:0]
	for _, r := range w.AwakeList() {
		row, _ := f.csr.Row(r)
		for _, s32 := range row {
			s := int(s32)
			if f.assigned[s] {
				continue
			}
			pkt := w.OldestNeeded(s, r)
			if pkt < 0 {
				continue
			}
			if deferToReception(w, s) {
				continue
			}
			f.assigned[s] = true
			out = append(out, sim.Intent{From: s, To: r, Packet: pkt})
		}
	}
	f.intentBuf = out
	// assigned holds exactly the senders emitted above; clearing those
	// entries instead of the whole array keeps the reset proportional to
	// the slot's actual transmissions.
	for _, in := range out {
		f.assigned[in.From] = false
	}
	return out
}

package flood

import "ldcflood/internal/telemetry"

// suppCounters is the message/suppression accounting shared by the
// timer-driven protocols (Trickle, DFlood). Counts are mutated only in the
// serial protocol phases (Intents / SelectIntents), so they are safe under
// sharded resolution, and every counted event is a pure function of the
// pre-slot world state — the values are identical across worker counts and
// across the reference/compact time paths (certified by
// TestProtocolCountersModeInvariant). Attaching a telemetry registry never
// affects simulation results; it only mirrors the counts live.
type suppCounters struct {
	messages   int64
	suppressed int64
	perNode    []int64

	// Per-slot dedupe of suppressed senders: a sender whose firing is
	// suppressed this slot is counted once, no matter how many receivers
	// evaluated it. seen holds the marked senders for the sparse reset.
	seen []int32
	mark []bool

	telMessages   *telemetry.Counter
	telSuppressed *telemetry.Counter
}

// reset re-dimensions the per-node state for a fresh run, preserving any
// attached telemetry instruments.
func (c *suppCounters) reset(n int) {
	c.messages, c.suppressed = 0, 0
	c.perNode = make([]int64, n)
	c.mark = make([]bool, n)
	c.seen = c.seen[:0]
}

// instrument resolves the counter instruments against reg: the shared
// flood.messages counter plus the protocol's own suppression counter.
func (c *suppCounters) instrument(reg *telemetry.Registry, suppressedName string) {
	c.telMessages = reg.Counter("flood.messages")
	c.telSuppressed = reg.Counter(suppressedName)
}

// note records one suppressed firing opportunity for sender s, deduplicated
// per slot. Serial phases only.
func (c *suppCounters) note(s int32) {
	if c.mark[s] {
		return
	}
	c.mark[s] = true
	c.seen = append(c.seen, s)
	c.suppressed++
	c.perNode[s]++
	if c.telSuppressed != nil {
		c.telSuppressed.Inc()
	}
}

// message records one emitted transmission intent. Serial phases only.
func (c *suppCounters) message() {
	c.messages++
	if c.telMessages != nil {
		c.telMessages.Inc()
	}
}

// endSlot clears the per-slot suppression dedupe set (sparse, proportional
// to the slot's suppressed senders).
func (c *suppCounters) endSlot() {
	for _, s := range c.seen {
		c.mark[s] = false
	}
	c.seen = c.seen[:0]
}

// Package flood implements the flooding protocols the paper evaluates
// (Section V-A) on top of the sim engine, plus the protocol families the
// related work analyzes:
//
//   - OPT: the oracle scheme — every sensor receives from its best-quality
//     neighbor, no collisions ever occur.
//   - DBAO: deterministic back-off assignment + overhearing (the authors'
//     WASA'11 protocol); carrier sense among mutually audible candidates,
//     hidden terminals collide.
//   - OF: Opportunistic Flooding (Guo et al., MobiCom'09) — tree-primary
//     forwarding along the energy-optimal tree plus probabilistic
//     opportunistic forwarding decisions.
//   - Naive: flat unicast flooding with no link-quality knowledge — the
//     traditional-protocol baseline the introduction argues against.
//   - Trickle: interval-doubling timers with a redundancy constant K and
//     suppression counting (Levis et al., NSDI'04; RFC 6206). Suppressed
//     firings are tallied per node and surfaced through telemetry.
//   - DFlood: duplicate-suppression flooding with adaptive backoff (Otnes
//     & Haavik, OCEANS'13), with the duplicate penalty realized as a
//     bounded delay so floods always complete.
//   - Flash: concurrent flash flooding (Lu & Whitehouse, INFOCOM'09) —
//     every holder transmits at once and receivers decode by capture.
//     Precondition: run it with sim.Config.CaptureProb > 0; with capture
//     disabled the concurrent transmissions simply collide, which is why
//     Flash is registered in New but excluded from the Names evaluation
//     set.
//
// Trickle and DFlood derive all timer state from keyed RNG streams
// captured at Reset plus pure world-state reads, so their schedules are
// bit-identical across the serial/sharded and reference/compact engine
// paths; their suppression behavior is tuned for liveness under the
// receiver-initiated engine (see the type docs for the exact backoff and
// suppression preconditions).
package flood

import (
	"fmt"
	"strings"

	"ldcflood/internal/sim"
)

// New returns a fresh protocol instance by name (case-insensitive):
// "opt", "dbao", "of", "naive", "trickle", "dflood", "flash".
func New(name string) (sim.Protocol, error) {
	switch strings.ToLower(name) {
	case "opt":
		return NewOPT(), nil
	case "dbao":
		return NewDBAO(), nil
	case "of":
		return NewOF(), nil
	case "naive":
		return NewNaive(), nil
	case "trickle":
		return NewTrickle(), nil
	case "dflood":
		return NewDFlood(), nil
	case "flash":
		return NewFlash(), nil
	default:
		return nil, fmt.Errorf("flood: unknown protocol %q (want opt, dbao, of, naive, trickle, dflood, flash)", name)
	}
}

// Names lists the available protocol names in evaluation order. Flash is
// excluded because it additionally requires sim.Config.CaptureProb > 0;
// request it explicitly with New("flash").
func Names() []string { return []string{"opt", "dbao", "of", "naive", "trickle", "dflood"} }

// deferToReception reports whether a prospective sender should stay silent
// this slot to keep its own reception opportunity open. A node that is
// awake and still missing packets cannot receive while it transmits
// (semi-duplex); if two such nodes deterministically elect each other as
// senders every period they starve forever. Every protocol therefore lets
// an awake, needy sender abstain with a small probability, which breaks
// mutual-transmission cycles within a few periods at negligible delay cost.
func deferToReception(w *sim.World, sender int) bool {
	if !w.IsAwake(sender) || !w.NeedsAnything(sender) {
		return false
	}
	return w.ProtoRNG.Bool(deferProb)
}

// Package flood implements the flooding protocols the paper evaluates
// (Section V-A) on top of the sim engine:
//
//   - OPT: the oracle scheme — every sensor receives from its best-quality
//     neighbor, no collisions ever occur.
//   - DBAO: deterministic back-off assignment + overhearing (the authors'
//     WASA'11 protocol); carrier sense among mutually audible candidates,
//     hidden terminals collide.
//   - OF: Opportunistic Flooding (Guo et al., MobiCom'09) — tree-primary
//     forwarding along the energy-optimal tree plus probabilistic
//     opportunistic forwarding decisions.
//   - Naive: flat unicast flooding with no link-quality knowledge — the
//     traditional-protocol baseline the introduction argues against.
package flood

import (
	"fmt"
	"strings"

	"ldcflood/internal/sim"
)

// New returns a fresh protocol instance by name (case-insensitive):
// "opt", "dbao", "of", "naive".
func New(name string) (sim.Protocol, error) {
	switch strings.ToLower(name) {
	case "opt":
		return NewOPT(), nil
	case "dbao":
		return NewDBAO(), nil
	case "of":
		return NewOF(), nil
	case "naive":
		return NewNaive(), nil
	case "flash":
		return NewFlash(), nil
	default:
		return nil, fmt.Errorf("flood: unknown protocol %q (want opt, dbao, of, naive, flash)", name)
	}
}

// Names lists the available protocol names in evaluation order. Flash is
// excluded because it additionally requires sim.Config.CaptureProb > 0;
// request it explicitly with New("flash").
func Names() []string { return []string{"opt", "dbao", "of", "naive"} }

// deferToReception reports whether a prospective sender should stay silent
// this slot to keep its own reception opportunity open. A node that is
// awake and still missing packets cannot receive while it transmits
// (semi-duplex); if two such nodes deterministically elect each other as
// senders every period they starve forever. Every protocol therefore lets
// an awake, needy sender abstain with a small probability, which breaks
// mutual-transmission cycles within a few periods at negligible delay cost.
func deferToReception(w *sim.World, sender int) bool {
	if !w.IsAwake(sender) || !w.NeedsAnything(sender) {
		return false
	}
	return w.ProtoRNG.Bool(deferProb)
}

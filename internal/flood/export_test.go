package flood

// setAudibilityDenseLimit pins the dense/sparse carrier-sense cutoff so the
// spatial-hash audibility structure (a 100k-node production path) can be
// certified against the dense matrix on paper-scale graphs. Returns a
// restore function.
func setAudibilityDenseLimit(n int) func() {
	old := audibilityDenseLimit
	audibilityDenseLimit = n
	return func() { audibilityDenseLimit = old }
}

package flood

// setAudibilityDenseLimit pins the dense/sparse carrier-sense cutoff so the
// spatial-hash audibility structure (a 100k-node production path) can be
// certified against the dense matrix on paper-scale graphs. Returns a
// restore function.
func setAudibilityDenseLimit(n int) func() {
	old := audibilityDenseLimit
	audibilityDenseLimit = n
	return func() { audibilityDenseLimit = old }
}

// setDeferProb pins the shared defer-to-reception probability. Zeroing it
// removes the protocols' only randomness, putting serial and sharded
// executions on a common deterministic subspace the metamorphic tests
// compare bit-for-bit. Returns a restore function.
func setDeferProb(p float64) func() {
	old := deferProb
	deferProb = p
	return func() { deferProb = old }
}

package flood

// Equivalence suite for the sharded engine (sim.Config.Workers >= 1) with
// the real protocols: worker counts must be interchangeable byte for byte
// across every protocol × time path × fault family, and the two time paths
// must agree under sharding just as they do serially. Every run captures
// its trace in BOTH encodings — text (tracelog) and binary (tracebin) —
// and the byte-identity guarantees are asserted on each independently,
// plus a round-trip check that the two encodings carry identical events.
// Also certifies the sparse (spatial-hash) carrier-sense audibility
// against the dense matrix, membership-exact and end to end.

import (
	"bytes"
	"reflect"
	"testing"

	"ldcflood/internal/fault"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
	"ldcflood/internal/tracebin"
	"ldcflood/internal/tracelog"
)

// fanout forwards every engine event to both trace encoders, so a single
// run yields its text and binary traces from the same event stream.
type fanout struct {
	text *tracelog.Logger
	bin  *tracebin.Writer
}

func (f fanout) OnInject(t int64, packet int) {
	f.text.OnInject(t, packet)
	f.bin.OnInject(t, packet)
}

func (f fanout) OnTransmit(t int64, from, to, packet int, outcome sim.TxOutcome) {
	f.text.OnTransmit(t, from, to, packet, outcome)
	f.bin.OnTransmit(t, from, to, packet, outcome)
}

func (f fanout) OnOverhear(t int64, from, node, packet int) {
	f.text.OnOverhear(t, from, node, packet)
	f.bin.OnOverhear(t, from, node, packet)
}

func (f fanout) OnCovered(t int64, packet int) {
	f.text.OnCovered(t, packet)
	f.bin.OnCovered(t, packet)
}

// traces bundles one run's trace bytes in both encodings.
type traces struct {
	text, bin []byte
}

// runSharded executes one configuration with the given worker count and
// time path, returning the result and the trace bytes in both encodings.
// A fresh protocol instance per run keeps memoized state from crossing
// runs.
func runSharded(t *testing.T, cfg sim.Config, protocol string, workers int, compact bool) (*sim.Result, traces) {
	t.Helper()
	p, err := New(protocol)
	if err != nil {
		t.Fatal(err)
	}
	var tbuf, bbuf bytes.Buffer
	obs := fanout{text: tracelog.NewLogger(&tbuf), bin: tracebin.NewWriter(&bbuf)}
	c := cfg
	c.Protocol = p
	c.Observer = obs
	c.Workers = workers
	c.CompactTime = compact
	res, err := sim.Run(c)
	if err != nil {
		t.Fatalf("%s workers=%d compact=%v: %v", protocol, workers, compact, err)
	}
	if err := obs.text.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := obs.bin.Flush(); err != nil {
		t.Fatal(err)
	}
	return res, traces{text: tbuf.Bytes(), bin: bbuf.Bytes()}
}

// equalTraces asserts byte-identity of two runs' traces in both encodings.
func equalTraces(t *testing.T, a, b traces, context string) {
	t.Helper()
	if !bytes.Equal(a.text, b.text) {
		t.Errorf("%s: text traces diverge", context)
	}
	if !bytes.Equal(a.bin, b.bin) {
		t.Errorf("%s: binary traces diverge", context)
	}
}

// checkRoundTrip asserts the two encodings of one run carry identical
// events: the binary trace decodes cleanly and re-renders to the exact
// text bytes.
func checkRoundTrip(t *testing.T, tr traces, context string) {
	t.Helper()
	events, torn, err := tracebin.ReadAll(bytes.NewReader(tr.bin))
	if err != nil || torn {
		t.Fatalf("%s: binary trace did not decode cleanly: torn=%v err=%v", context, torn, err)
	}
	var buf bytes.Buffer
	l := tracelog.NewLogger(&buf)
	for _, ev := range events {
		switch ev.Kind {
		case tracelog.KindInject:
			l.OnInject(ev.T, ev.Packet)
		case tracelog.KindTransmit:
			l.OnTransmit(ev.T, ev.From, ev.To, ev.Packet, ev.Outcome)
		case tracelog.KindOverhear:
			l.OnOverhear(ev.T, ev.From, ev.To, ev.Packet)
		case tracelog.KindCovered:
			l.OnCovered(ev.T, ev.Packet)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), tr.text) {
		t.Errorf("%s: binary trace does not decode to the text trace's bytes", context)
	}
}

// allProtocols is Names() plus flash (which needs CaptureProb > 0, supplied
// by shardCfg).
func allProtocols() []string { return append(Names(), "flash") }

// shardCfg is faultCfg with the engine's secondary RNG streams (sync
// errors, capture) enabled, so the sharded discipline is exercised on every
// draw family at once.
func shardCfg(g *topology.Graph, faults *fault.Schedule, seed uint64) sim.Config {
	cfg := faultCfg(g, faults, seed)
	cfg.SyncErrorProb = 0.02
	cfg.CaptureProb = 0.4
	return cfg
}

// TestShardEquivalenceGrid is the sharded acceptance grid: every protocol ×
// both time paths × every fault family (plus the unfaulted case), workers
// 1, 2, 4 (and 8 on the reference path) must produce identical results and
// byte-identical traces; and at workers 4 the compact path must reproduce
// the reference path, the same guarantee the serial engine certifies
// elsewhere.
func TestShardEquivalenceGrid(t *testing.T) {
	schedules := faultSchedules()
	schedules["none"] = nil
	for name, fs := range schedules {
		fs := fs
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			g := topology.Grid(6, 6, 0.8)
			cfg := shardCfg(g, fs, 1234)
			for _, protocol := range allProtocols() {
				ref1, refTrace1 := runSharded(t, cfg, protocol, 1, false)
				ref4, refTrace4 := runSharded(t, cfg, protocol, 4, false)
				for _, workers := range []int{2, 8} {
					refW, refTraceW := runSharded(t, cfg, protocol, workers, false)
					if !reflect.DeepEqual(ref1, refW) {
						t.Errorf("%s reference: workers %d diverged from workers 1", protocol, workers)
					}
					equalTraces(t, refTrace1, refTraceW,
						protocol+" reference workers 1 vs more")
				}
				if !reflect.DeepEqual(ref1, ref4) {
					t.Errorf("%s reference: workers 4 diverged from workers 1", protocol)
				}
				equalTraces(t, refTrace1, refTrace4, protocol+" reference workers 1 vs 4")
				cmp1, cmpTrace1 := runSharded(t, cfg, protocol, 1, true)
				cmp2, cmpTrace2 := runSharded(t, cfg, protocol, 2, true)
				if !reflect.DeepEqual(cmp1, cmp2) {
					t.Errorf("%s compact: workers 2 diverged from workers 1", protocol)
				}
				equalTraces(t, cmpTrace1, cmpTrace2, protocol+" compact workers 1 vs 2")
				cmp4, cmpTrace4 := runSharded(t, cfg, protocol, 4, true)
				if !reflect.DeepEqual(cmp1, cmp4) {
					t.Errorf("%s compact: workers 4 diverged from workers 1", protocol)
				}
				equalTraces(t, cmpTrace1, cmpTrace4, protocol+" compact workers 1 vs 4")
				if !reflect.DeepEqual(ref4, cmp4) {
					t.Errorf("%s: compact path diverged from reference path at workers 4", protocol)
				}
				equalTraces(t, refTrace4, cmpTrace4, protocol+" reference vs compact at workers 4")
				// The two encodings of one run must carry identical events.
				checkRoundTrip(t, refTrace1, protocol+" reference workers 1")
			}
		})
	}
}

// TestAudibilitySparseMatchesDense certifies the spatial-hash sparse
// audibility structure membership-identical to the dense matrix, on a
// positioned forest topology and on the position-free fallback.
func TestAudibilitySparseMatchesDense(t *testing.T) {
	check := func(g *topology.Graph, csFactor float64) {
		t.Helper()
		dense := buildAudibility(g, csFactor)
		if dense.bits == nil {
			t.Fatal("expected dense structure below the cutoff")
		}
		restore := setAudibilityDenseLimit(1)
		sparse := buildAudibility(g, csFactor)
		restore()
		if sparse.rows == nil {
			t.Fatal("expected sparse structure with the cutoff forced")
		}
		n := g.N()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				if dense.has(u, v) != sparse.has(u, v) {
					t.Fatalf("audibility(%d, %d): dense %v, sparse %v",
						u, v, dense.has(u, v), sparse.has(u, v))
				}
			}
		}
	}
	g := topology.GreenOrbs(1)
	check(g, 1.2)
	check(g, 2.0)
	posFree := g.Clone()
	posFree.Pos = nil
	check(posFree, 1.2)
}

// TestSparseAudibilityEndToEnd runs the carrier-sense protocols with the
// sparse audibility structure forced and requires bit-identical results and
// traces versus the dense matrix.
func TestSparseAudibilityEndToEnd(t *testing.T) {
	g := topology.GreenOrbs(1)
	cfg := sim.Config{
		Graph:            g,
		Schedules:        uniform(g.N(), 20, 42),
		M:                3,
		Coverage:         0.99,
		Seed:             7,
		MaxSlots:         200000,
		RecordReceptions: true,
	}
	for _, protocol := range []string{"dbao", "naive"} {
		dense, denseTrace := runSharded(t, cfg, protocol, 0, true)
		restore := setAudibilityDenseLimit(1)
		sparse, sparseTrace := runSharded(t, cfg, protocol, 0, true)
		restore()
		if !reflect.DeepEqual(dense, sparse) {
			t.Errorf("%s: sparse audibility changed the run", protocol)
		}
		equalTraces(t, denseTrace, sparseTrace, protocol+" sparse vs dense audibility")
	}
}

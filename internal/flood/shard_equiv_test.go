package flood

// Equivalence suite for the sharded engine (sim.Config.Workers >= 1) with
// the real protocols: worker counts must be interchangeable byte for byte
// across every protocol × time path × fault family, and the two time paths
// must agree under sharding just as they do serially. Also certifies the
// sparse (spatial-hash) carrier-sense audibility against the dense matrix,
// membership-exact and end to end.

import (
	"bytes"
	"reflect"
	"testing"

	"ldcflood/internal/fault"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
	"ldcflood/internal/tracelog"
)

// runSharded executes one configuration with the given worker count and
// time path, returning the result and trace bytes. A fresh protocol
// instance per run keeps memoized state from crossing runs.
func runSharded(t *testing.T, cfg sim.Config, protocol string, workers int, compact bool) (*sim.Result, []byte) {
	t.Helper()
	p, err := New(protocol)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	c := cfg
	c.Protocol = p
	c.Observer = tracelog.NewLogger(&buf)
	c.Workers = workers
	c.CompactTime = compact
	res, err := sim.Run(c)
	if err != nil {
		t.Fatalf("%s workers=%d compact=%v: %v", protocol, workers, compact, err)
	}
	if err := c.Observer.(*tracelog.Logger).Flush(); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// allProtocols is Names() plus flash (which needs CaptureProb > 0, supplied
// by shardCfg).
func allProtocols() []string { return append(Names(), "flash") }

// shardCfg is faultCfg with the engine's secondary RNG streams (sync
// errors, capture) enabled, so the sharded discipline is exercised on every
// draw family at once.
func shardCfg(g *topology.Graph, faults *fault.Schedule, seed uint64) sim.Config {
	cfg := faultCfg(g, faults, seed)
	cfg.SyncErrorProb = 0.02
	cfg.CaptureProb = 0.4
	return cfg
}

// TestShardEquivalenceGrid is the sharded acceptance grid: every protocol ×
// both time paths × every fault family (plus the unfaulted case), workers 1
// and workers 4 must produce identical results and byte-identical traces;
// and at workers 4 the compact path must reproduce the reference path, the
// same guarantee the serial engine certifies elsewhere.
func TestShardEquivalenceGrid(t *testing.T) {
	schedules := faultSchedules()
	schedules["none"] = nil
	for name, fs := range schedules {
		fs := fs
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			g := topology.Grid(6, 6, 0.8)
			cfg := shardCfg(g, fs, 1234)
			for _, protocol := range allProtocols() {
				ref1, refTrace1 := runSharded(t, cfg, protocol, 1, false)
				ref4, refTrace4 := runSharded(t, cfg, protocol, 4, false)
				if !reflect.DeepEqual(ref1, ref4) {
					t.Errorf("%s reference: workers 4 diverged from workers 1", protocol)
				}
				if !bytes.Equal(refTrace1, refTrace4) {
					t.Errorf("%s reference: traces diverge across worker counts", protocol)
				}
				ref8, refTrace8 := runSharded(t, cfg, protocol, 8, false)
				if !reflect.DeepEqual(ref1, ref8) {
					t.Errorf("%s reference: workers 8 diverged from workers 1", protocol)
				}
				if !bytes.Equal(refTrace1, refTrace8) {
					t.Errorf("%s reference: workers 8 trace diverged from workers 1", protocol)
				}
				cmp1, cmpTrace1 := runSharded(t, cfg, protocol, 1, true)
				cmp4, cmpTrace4 := runSharded(t, cfg, protocol, 4, true)
				if !reflect.DeepEqual(cmp1, cmp4) {
					t.Errorf("%s compact: workers 4 diverged from workers 1", protocol)
				}
				if !bytes.Equal(cmpTrace1, cmpTrace4) {
					t.Errorf("%s compact: traces diverge across worker counts", protocol)
				}
				if !reflect.DeepEqual(ref4, cmp4) {
					t.Errorf("%s: compact path diverged from reference path at workers 4", protocol)
				}
				if !bytes.Equal(refTrace4, cmpTrace4) {
					t.Errorf("%s: compact trace diverged from reference trace at workers 4", protocol)
				}
			}
		})
	}
}

// TestAudibilitySparseMatchesDense certifies the spatial-hash sparse
// audibility structure membership-identical to the dense matrix, on a
// positioned forest topology and on the position-free fallback.
func TestAudibilitySparseMatchesDense(t *testing.T) {
	check := func(g *topology.Graph, csFactor float64) {
		t.Helper()
		dense := buildAudibility(g, csFactor)
		if dense.bits == nil {
			t.Fatal("expected dense structure below the cutoff")
		}
		restore := setAudibilityDenseLimit(1)
		sparse := buildAudibility(g, csFactor)
		restore()
		if sparse.rows == nil {
			t.Fatal("expected sparse structure with the cutoff forced")
		}
		n := g.N()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				if dense.has(u, v) != sparse.has(u, v) {
					t.Fatalf("audibility(%d, %d): dense %v, sparse %v",
						u, v, dense.has(u, v), sparse.has(u, v))
				}
			}
		}
	}
	g := topology.GreenOrbs(1)
	check(g, 1.2)
	check(g, 2.0)
	posFree := g.Clone()
	posFree.Pos = nil
	check(posFree, 1.2)
}

// TestSparseAudibilityEndToEnd runs the carrier-sense protocols with the
// sparse audibility structure forced and requires bit-identical results and
// traces versus the dense matrix.
func TestSparseAudibilityEndToEnd(t *testing.T) {
	g := topology.GreenOrbs(1)
	cfg := sim.Config{
		Graph:            g,
		Schedules:        uniform(g.N(), 20, 42),
		M:                3,
		Coverage:         0.99,
		Seed:             7,
		MaxSlots:         200000,
		RecordReceptions: true,
	}
	for _, protocol := range []string{"dbao", "naive"} {
		dense, denseTrace := runSharded(t, cfg, protocol, 0, true)
		restore := setAudibilityDenseLimit(1)
		sparse, sparseTrace := runSharded(t, cfg, protocol, 0, true)
		restore()
		if !reflect.DeepEqual(dense, sparse) {
			t.Errorf("%s: sparse audibility changed the run", protocol)
		}
		if !bytes.Equal(denseTrace, sparseTrace) {
			t.Errorf("%s: sparse audibility changed the trace", protocol)
		}
	}
}

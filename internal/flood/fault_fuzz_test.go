package flood

// Property fuzzing for fault injection: an arbitrary (valid) fault
// schedule, derived deterministically from the fuzz input, must never
// break the engine's invariants for any shipped protocol — runs are
// reproducible, both execution paths agree, and every metric stays
// consistent. Run the corpus with the normal test suite, or explore with
//
//	go test -fuzz FuzzFaultSchedule -fuzztime 30s ./internal/flood
//
// (the CI workflow runs a short smoke of exactly that).

import (
	"reflect"
	"testing"

	"ldcflood/internal/fault"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

// randomSchedule derives a valid fault schedule from spec: up to two link
// rules, two crashes, and one jam, all parameters drawn from a private
// stream so the same spec always yields the same schedule.
func randomSchedule(spec uint64, g *topology.Graph) *fault.Schedule {
	r := rngutil.New(spec)
	n := g.N()
	s := &fault.Schedule{}
	for i, k := 0, r.Intn(3); i < k; i++ {
		lo := r.Float64()
		s.Links = append(s.Links, fault.LinkRule{
			MinPRR:   lo,
			MaxPRR:   lo + (1-lo)*r.Float64(),
			PGB:      0.3 * r.Float64(),
			PBG:      0.3 * r.Float64(),
			BadScale: r.Float64(),
			StartBad: r.Float64(),
		})
	}
	crashBase := r.Intn(n - 1)
	for i, k := 0, r.Intn(3); i < k; i++ {
		at := int64(r.Intn(200))
		reboot := at + 1 + int64(r.Intn(400))
		if r.Bool(0.25) {
			reboot = -1 // permanent failure
		}
		s.Crashes = append(s.Crashes, fault.Crash{
			// Distinct nodes per crash avoid overlapping-interval rejection.
			Node:     1 + (crashBase+i)%(n-1),
			At:       at,
			RebootAt: reboot,
		})
	}
	if r.Bool(0.5) {
		from := int64(r.Intn(150))
		s.Jams = append(s.Jams, fault.Jam{
			From:  from,
			Until: from + 1 + int64(r.Intn(200)),
			Nodes: []int{r.Intn(n), r.Intn(n)},
		})
	}
	return s
}

// checkInvariants asserts the per-result engine invariants that must hold
// under any fault schedule.
func checkInvariants(t *testing.T, res *sim.Result, m int) {
	t.Helper()
	for _, c := range []struct {
		name string
		v    int
	}{
		{"Transmissions", res.Transmissions},
		{"LossFailures", res.LossFailures},
		{"CollisionFailures", res.CollisionFailures},
		{"BusyFailures", res.BusyFailures},
		{"SyncFailures", res.SyncFailures},
		{"JamFailures", res.JamFailures},
		{"Overheard", res.Overheard},
		{"Crashes", res.Crashes},
		{"Reboots", res.Reboots},
		{"CrashDropped", res.CrashDropped},
	} {
		if c.v < 0 {
			t.Errorf("%s = %d, negative", c.name, c.v)
		}
	}
	if res.Reboots > res.Crashes {
		t.Errorf("Reboots %d > Crashes %d", res.Reboots, res.Crashes)
	}
	for p := 0; p < m; p++ {
		if res.CoverTime[p] >= 0 {
			if res.InjectTime[p] < 0 {
				t.Errorf("packet %d covered but never injected", p)
			}
			if res.Delay[p] != res.CoverTime[p]-res.InjectTime[p] || res.Delay[p] < 0 {
				t.Errorf("packet %d: Delay %d inconsistent with cover %d / inject %d",
					p, res.Delay[p], res.CoverTime[p], res.InjectTime[p])
			}
		}
		for node, rt := range res.NodeRecvTime[p] {
			if rt >= 0 && rt < res.InjectTime[p] {
				t.Errorf("packet %d received by %d at slot %d before injection at %d",
					p, node, rt, res.InjectTime[p])
			}
		}
	}
}

func FuzzFaultSchedule(f *testing.F) {
	f.Add(uint64(1), uint64(2))
	f.Add(uint64(42), uint64(0))
	f.Add(uint64(7), uint64(0xdeadbeef))
	f.Add(uint64(1234), uint64(999))
	g := topology.Grid(4, 4, 0.8)
	f.Fuzz(func(t *testing.T, seed, spec uint64) {
		fs := randomSchedule(spec, g)
		if err := fs.Validate(g); err != nil {
			t.Fatalf("randomSchedule produced an invalid schedule: %v", err)
		}
		for _, protocol := range Names() {
			run := func(compact bool) *sim.Result {
				p, err := New(protocol)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sim.Run(sim.Config{
					Graph:            g,
					Schedules:        uniform(g.N(), 10, seed),
					Protocol:         p,
					M:                2,
					Coverage:         0.99,
					Seed:             seed,
					MaxSlots:         20000,
					RecordReceptions: true,
					Faults:           fs,
					CompactTime:      compact,
				})
				if err != nil {
					t.Fatalf("%s: %v", protocol, err)
				}
				return res
			}
			slow := run(false)
			checkInvariants(t, slow, 2)
			if fast := run(true); !reflect.DeepEqual(slow, fast) {
				t.Errorf("%s: compact path diverged under faults\nslow %+v\nfast %+v",
					protocol, slow, fast)
			}
			if again := run(false); !reflect.DeepEqual(slow, again) {
				t.Errorf("%s: identical seed + schedule re-run diverged", protocol)
			}
		}
	})
}

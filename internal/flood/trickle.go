package flood

import (
	"ldcflood/internal/rngutil"
	"ldcflood/internal/sim"
	"ldcflood/internal/telemetry"
	"ldcflood/internal/topology"
)

// Trickle adapts the Trickle algorithm (Levis et al., NSDI'04; RFC 6206)
// to the engine's receiver-initiated slot model. Each node runs an
// interval-doubling timer: receiving a new packet resets its interval to
// Imin, and each interval thereafter doubles up to Imin << MaxDoublings.
// Within the current interval [start, start+I) the node picks one fire
// point uniformly in the second half [start+I/2, start+I) and its timer is
// armed from that slot to the end of the interval — Trickle's
// listen-then-maybe-talk discipline, adapted to duty cycling: the engine
// is receiver-initiated, so a transmission happens only when a needy
// receiver is awake, and a single-slot fire point would almost never
// coincide with any receiver's rare awake slot at low duty cycles.
// A firing is suppressed when at least
// K consistent neighbors (identical packet buffers) fired earlier within
// the node's current listening window, the redundancy-constant rule that
// gives Trickle its bounded per-node message rate; suppressed firings are
// tallied per node (FloodCounters, flood.trickle.suppressed).
//
// Every timer quantity is a pure function of the pre-slot world state and
// a keyed RNG stream captured at Reset, before any sequential protocol
// draw: fire points are keyed by (node, interval start), so they are
// bit-identical across the serial, sharded, reference and compact engine
// paths with no new engine hook. The only sequential randomness is the
// shared defer-to-reception draw.
type Trickle struct {
	// Imin is the smallest Trickle interval in slots. Zero selects the
	// default (16).
	Imin int64
	// MaxDoublings bounds the interval at Imin << MaxDoublings. Zero
	// selects the default (6, i.e. Imax = 64*Imin). Keeping Imax modest
	// matters under low duty cycles: a fire point is only useful when a
	// needy receiver is awake at it, so steady-state retry latency is
	// roughly Imax divided by the duty cycle.
	MaxDoublings int
	// K is the redundancy constant: a firing with at least K consistent
	// earlier transmissions in its listening window is suppressed. Zero
	// selects the default (2); negative disables suppression.
	K int
	// DisableOverhearing restricts Trickle to pure unicast receptions
	// (used by the serial-vs-planner metamorphic tests, whose overhearing
	// semantics legitimately differ between the two paths).
	DisableOverhearing bool

	imax      int64
	csr       *topology.CSR
	timer     rngutil.Stream
	assigned  []bool
	intentBuf []sim.Intent
	sel       selScratch
	supp      suppCounters
}

// NewTrickle returns a Trickle instance with the default parameters
// (Imin 16, MaxDoublings 6, K 2).
func NewTrickle() *Trickle { return &Trickle{} }

// Name implements sim.Protocol.
func (t *Trickle) Name() string { return "Trickle" }

// Reset implements sim.Protocol. It captures the keyed timer stream from
// the protocol RNG before any sequential draw, so fire points are
// identical on every engine path.
func (t *Trickle) Reset(w *sim.World) {
	if t.Imin <= 0 {
		t.Imin = 16
	}
	if t.MaxDoublings <= 0 {
		t.MaxDoublings = 6
	}
	if t.K == 0 {
		t.K = 2
	}
	t.imax = t.Imin << t.MaxDoublings
	t.csr = w.Graph.CSR()
	t.timer = *w.ProtoRNG.SubName("trickle.timer")
	t.assigned = make([]bool, w.Graph.N())
	t.supp.reset(w.Graph.N())
}

// CollisionsApply implements sim.Protocol: Trickle is a practical
// protocol; concurrent transmissions in range collide.
func (t *Trickle) CollisionsApply() bool { return true }

// Overhears implements sim.Protocol: suppression protocols thrive on
// promiscuous reception.
func (t *Trickle) Overhears() bool { return !t.DisableOverhearing }

// Instrument attaches telemetry: flood.messages counts emitted intents,
// flood.trickle.suppressed counts suppressed firings. Attaching never
// affects results (see docs/OBSERVABILITY.md).
func (t *Trickle) Instrument(reg *telemetry.Registry) {
	t.supp.instrument(reg, "flood.trickle.suppressed")
}

// FloodCounters returns the run's emitted-message and suppressed-firing
// totals.
func (t *Trickle) FloodCounters() (messages, suppressed int64) {
	return t.supp.messages, t.supp.suppressed
}

// SuppressedPerNode returns the per-node suppressed-firing counts. The
// slice is owned by the protocol; do not modify.
func (t *Trickle) SuppressedPerNode() []int64 { return t.supp.perNode }

// lastResetOf returns node s's most recent interval reset: the latest slot
// at which it received any packet (injection included). Callers guarantee
// s holds at least one packet, so the result is non-negative.
func lastResetOf(w *sim.World, s int) int64 {
	lr := int64(-1)
	for p := 0; p < w.Injected(); p++ {
		if rt := w.RecvTime(p, s); rt > lr {
			lr = rt
		}
	}
	if lr < 0 {
		lr = 0
	}
	return lr
}

// intervalAt returns the start and length of the current Trickle interval
// at slot now for a node whose last reset was lastReset: doubling from
// Imin until the interval caps at imax, then arithmetic in one jump.
func (t *Trickle) intervalAt(lastReset, now int64) (start, length int64) {
	start, length = lastReset, t.Imin
	for start+length <= now && length < t.imax {
		start += length
		length <<= 1
	}
	if start+length <= now {
		start += (now - start) / length * length
	}
	return start, length
}

// firePoint returns node s's fire point in the interval [start,
// start+length): uniform over the second half, keyed purely by (node,
// interval start).
func (t *Trickle) firePoint(s int, start, length int64) int64 {
	half := length / 2
	u := t.timer.PairFloat64(uint64(s), uint64(start))
	return start + half + int64(u*float64(length-half))
}

// suppressedAt reports whether node s's firing this slot is suppressed:
// at least K consistent neighbors (identical buffers — neither side holds
// anything the other lacks) have fire points inside s's listening window
// [startS, now). Pure world-state + keyed-stream computation; w.Now() is
// inside s's armed window [fire point, interval end) when this is
// evaluated.
func (t *Trickle) suppressedAt(w *sim.World, s int, startS int64) bool {
	if t.K < 0 {
		return false
	}
	now := w.Now()
	c := 0
	row, _ := t.csr.Row(s)
	for _, n32 := range row {
		n := int(n32)
		if w.AnyNeeded(s, n) || w.AnyNeeded(n, s) {
			continue // inconsistent neighbor: its transmissions don't count
		}
		ns, nl := t.intervalAt(lastResetOf(w, n), now)
		if tau := t.firePoint(n, ns, nl); tau >= startS && tau < now {
			c++
			if c >= t.K {
				return true
			}
		}
	}
	return false
}

// Intents implements sim.Protocol: for each awake receiver, the first
// neighbor in row order whose Trickle timer is armed this slot, is not
// suppressed, and does not defer transmits its FCFS packet. The scan
// continues past the chosen sender so every suppressed firing is tallied
// exactly as the planner path tallies it.
func (t *Trickle) Intents(w *sim.World) []sim.Intent {
	out := t.intentBuf[:0]
	now := w.Now()
	for _, r := range w.AwakeList() {
		if !w.NeedsAnything(r) {
			continue
		}
		row, _ := t.csr.Row(r)
		chosen := false
		for _, s32 := range row {
			s := int(s32)
			if !w.AnyNeeded(s, r) {
				continue
			}
			start, length := t.intervalAt(lastResetOf(w, s), now)
			if t.firePoint(s, start, length) > now {
				continue
			}
			if t.suppressedAt(w, s, start) {
				t.supp.note(s32)
				continue
			}
			if chosen || t.assigned[s] {
				continue
			}
			if deferToReception(w, s) {
				continue
			}
			t.assigned[s] = true
			chosen = true
			t.supp.message()
			out = append(out, sim.Intent{From: s, To: r, Packet: w.OldestNeeded(s, r)})
		}
	}
	t.intentBuf = out
	for _, in := range out {
		t.assigned[in.From] = false
	}
	t.supp.endSlot()
	return out
}

package flood

import (
	"slices"

	"ldcflood/internal/topology"
)

// audibilityDenseLimit is the node count at which the carrier-sense
// audibility structure switches from the dense O(n²)-bit matrix to sparse
// per-node sorted neighbor lists built with a spatial hash. The dense form
// answers has() in one word operation and is right for paper-scale
// topologies; at 100k nodes it would cost ~1.25 GB, while the sparse form
// is O(n + audible edges). A variable so equivalence tests can force the
// sparse structure on small graphs.
var audibilityDenseLimit = 4096

// audibility answers "can u hear v's transmission" for the carrier-sense
// protocols (DBAO, Naive). Exactly one of bits/rows is populated.
type audibility struct {
	bits [][]uint64 // dense bitset matrix (small graphs)
	rows [][]int32  // sparse sorted audible-neighbor lists (large graphs)
}

// has reports whether u can hear v. Membership is identical between the two
// representations; only the lookup cost differs (O(1) vs O(log degree)).
func (a *audibility) has(u, v int) bool {
	if a.bits != nil {
		return topology.BitsetHas(a.bits[u], v)
	}
	_, ok := slices.BinarySearch(a.rows[u], int32(v))
	return ok
}

// carrierSenseRange is the physical carrier-sense radius: csFactor times
// the longest usable link distance in the topology.
func carrierSenseRange(g *topology.Graph, csFactor float64) float64 {
	maxLink := 0.0
	for _, e := range g.Links() {
		if d := g.Pos[e.U].Dist(g.Pos[e.V]); d > maxLink {
			maxLink = d
		}
	}
	return csFactor * maxLink
}

// audiblePair is the exact audibility predicate shared by the dense and
// sparse builders: squared distance against the threshold, with the
// correctly-rounded Dist comparison consulted only inside a narrow band
// around the threshold where dx²+dy² rounding could disagree.
func audiblePair(pu, pv topology.Point, lo, hi, csRange float64) bool {
	dx, dy := pu.X-pv.X, pu.Y-pv.Y
	d2 := dx*dx + dy*dy
	switch {
	case d2 <= lo:
		return true
	case d2 >= hi:
		return false
	default:
		return pu.Dist(pv) <= csRange
	}
}

// buildAudibility constructs the audibility structure for g: with positions,
// nodes within csFactor × (longest link distance) of each other; without
// positions, the communication adjacency itself. Dense below
// audibilityDenseLimit, sparse above — same membership either way.
func buildAudibility(g *topology.Graph, csFactor float64) *audibility {
	n := g.N()
	if n < audibilityDenseLimit {
		return &audibility{bits: carrierSenseBitset(g, csFactor)}
	}
	rows := make([][]int32, n)
	if g.Pos == nil {
		// No positions: audibility falls back to the communication graph.
		// CSR rows are shared read-only; sorted graphs (every generator
		// output) reuse them in place.
		c := g.CSR()
		for u := 0; u < n; u++ {
			row, _ := c.Row(u)
			if c.Sorted {
				rows[u] = row
			} else {
				cp := slices.Clone(row)
				slices.Sort(cp)
				rows[u] = cp
			}
		}
		return &audibility{rows: rows}
	}
	csRange := carrierSenseRange(g, csFactor)
	cs2 := csRange * csRange
	lo, hi := cs2*(1-1e-9), cs2*(1+1e-9)
	// Cell a hair above the radius so band-edge pairs (d within one part in
	// 1e9 of the threshold) still land inside the 3×3 neighborhood sweep.
	cell := csRange * (1 + 1e-6)
	if !(cell > 0) {
		cell = 1 // linkless graph: only coincident nodes can be audible
	}
	ni := topology.NewNearIndex(g.Pos, cell)
	for u := 0; u < n; u++ {
		pu := g.Pos[u]
		var row []int32
		ni.VisitNear(u, func(v int) {
			if audiblePair(pu, g.Pos[v], lo, hi, csRange) {
				row = append(row, int32(v))
			}
		})
		slices.Sort(row)
		rows[u] = row
	}
	return &audibility{rows: rows}
}

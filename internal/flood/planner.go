package flood

// sim.ShardPlanner implementations for every protocol in the package.
//
// Under Workers >= 1 the engine moves the per-receiver candidate scan —
// the dominant serial cost of a slot — onto the worker pool, replacing the
// shared sequential ProtoRNG with (slot, node)-keyed sub-streams so every
// receiver's candidates are a pure function of (seed, slot, pre-slot world
// state) regardless of worker count or scan order. The cheap cross-receiver
// contention state (a sender serves one receiver per slot; OF's density
// divisor) stays in the serial SelectIntents pass.
//
// Keying scheme (all under the slot's protocol stream, which the engine
// derives at sim's protoStreamKey — disjoint from the engine's own node
// keys):
//
//   - defer-to-reception: SubValue2(sender, deferTag). One decision per
//     sender per slot. The serial path re-draws on every occurrence of a
//     sender across receiver scans; a keyed per-occurrence draw would need
//     a (receiver, sender, occurrence) key whose extra correlation buys
//     nothing, so the sharded path intentionally collapses it to one
//     decision — a semantic (not statistical) deviation the sharded
//     contract permits, since sharded results only promise identity across
//     worker counts, not identity with Workers == 0.
//   - per-pair fire draws (DBAO/Naive hidden terminals, OF opportunistic
//     forwarding): SubValue2(receiver, sender).Float64(), stashed in
//     Candidate.U. Receiver != sender on every link and deferTag exceeds
//     any node id, so the two key families never collide.
//
// Stored uniforms are compared as U < p, which agrees with the serial
// path's Bool(p) at both degenerate ends (p <= 0 never fires, p >= 1
// always fires, since U < 1 by construction) — the property the
// deterministic-subspace metamorphic tests exploit.
//
// PlanReceiver bodies are concurrency-clean: they read the World, the CSR
// and immutable protocol config, and append only to the engine-provided
// buffer. All mutable protocol scratch (assigned, selScratch) is touched
// only in SelectIntents, which the engine runs serially.

import (
	"slices"

	"ldcflood/internal/rngutil"
	"ldcflood/internal/sim"
)

// deferProb is the defer-to-reception probability shared by every protocol
// (see deferToReception). A package variable so tests can zero it and land
// in the protocols' deterministic subspace.
var deferProb = 0.25

// deferTag keys the per-sender defer decision under the slot's protocol
// stream. It must exceed every node id so SubValue2(sender, deferTag)
// never collides with a SubValue2(receiver, sender) pair draw.
const deferTag uint64 = 1 << 62

// Candidate flag bits (Candidate.Flags).
const (
	// candDeferred marks a candidate whose sender drew defer-to-reception
	// this slot; selection treats it as silent.
	candDeferred uint8 = 1 << 0
	// candParent marks OF's tree-parent candidate, which PlanReceiver
	// always places first so selection can handle it before the
	// opportunistic density count.
	candParent uint8 = 1 << 1
	// candAudibleTop marks a DBAO candidate audible to the receiver's
	// top-ranked candidate. DBAO plans its candidates in rank order, so
	// when the top candidate is unassigned at selection time it is the
	// back-off winner and the hidden-terminal test is this precomputed
	// (parallel) bit instead of a serial audibility search.
	candAudibleTop uint8 = 1 << 2
	// candSuppressed marks a Trickle/DFlood candidate whose firing is
	// suppressed this slot (redundancy rule / duplicate penalty).
	// Selection never emits it — it is planned only so the serial
	// selection pass can tally the suppression exactly as the serial
	// Intents scan does (PlanReceiver itself must stay mutation-free).
	candSuppressed uint8 = 1 << 3
)

// deferKeyed is the sharded-path defer-to-reception decision: same
// predicate as deferToReception, with the draw keyed by (slot, sender)
// instead of consumed from the sequential ProtoRNG.
func deferKeyed(w *sim.World, sender int, slot *rngutil.Stream) bool {
	if !w.IsAwake(sender) || !w.NeedsAnything(sender) {
		return false
	}
	if deferProb <= 0 {
		return false
	}
	return slot.PairFloat64(uint64(sender), deferTag) < deferProb
}

// pairU is the keyed uniform for a (receiver, sender) contention decision.
func pairU(slot *rngutil.Stream, r, s int) float64 {
	return slot.PairFloat64(uint64(r), uint64(s))
}

// selScratch is the per-protocol SelectIntents scratch: the senders
// assigned this slot (for the sparse assigned reset the serial Intents
// path also uses) and candidate filter/sort buffers.
type selScratch struct {
	emitted []int32
	cands   []sim.Candidate
	hidden  []sim.Candidate
}

// ---- OPT ----

// PlanReceiver implements sim.ShardPlanner: every neighbor holding a
// packet r needs and not deferring is a candidate, sorted into selection
// rank order (PRR descending, node ascending) so the serial selection is
// a first-unassigned walk. Rows are ascending, so the node tie-break
// equals the serial rule's "first in row order among PRR ties".
func (o *OPT) PlanReceiver(w *sim.World, r int, slot *rngutil.Stream, buf []sim.Candidate) []sim.Candidate {
	if !w.NeedsAnything(r) {
		return buf
	}
	row, prrs := o.csr.Row(r)
	for i, s32 := range row {
		s := int(s32)
		if w.AnyNeeded(s, r) && !deferKeyed(w, s, slot) {
			buf = append(buf, sim.Candidate{Node: s32, Packet: sim.PacketFCFS, PRR: prrs[i]})
		}
	}
	if len(buf) > 1 {
		slices.SortFunc(buf, dbaoRankCand)
	}
	return buf
}

// SelectIntents implements sim.ShardPlanner: the serial scan's selection
// rule — highest-PRR unassigned candidate, first in row order among ties
// — applied per receiver in ascending order. Candidates arrive
// rank-sorted from PlanReceiver, so the winner is simply the first
// unassigned one.
func (o *OPT) SelectIntents(w *sim.World, plan *sim.SlotPlan, emit func(in sim.Intent, prr float64)) {
	sel := o.sel.emitted[:0]
	for i := 0; i < plan.Len(); i++ {
		r := plan.Receiver(i)
		cands := plan.Candidates(i)
		for j := range cands {
			s := cands[j].Node
			if o.assigned[s] {
				continue
			}
			o.assigned[s] = true
			sel = append(sel, s)
			emit(sim.Intent{From: int(s), To: r, Packet: sim.PacketFCFS}, cands[j].PRR)
			break
		}
	}
	for _, s := range sel {
		o.assigned[s] = false
	}
	o.sel.emitted = sel
}

// ---- DBAO ----

// dbaoRankCand is dbaoRank over planned candidates.
func dbaoRankCand(a, b sim.Candidate) int {
	if a.PRR != b.PRR {
		if a.PRR > b.PRR {
			return -1
		}
		return 1
	}
	return int(a.Node - b.Node)
}

// PlanReceiver implements sim.ShardPlanner: the back-off candidate set
// (needed holders that did not defer) with pre-drawn hidden-fire uniforms,
// sorted into back-off rank order with audibility against the top-ranked
// candidate precomputed. Sorting and the audibility searches are the
// expensive parts of DBAO's selection rule; doing them here puts them on
// the worker pool and leaves SelectIntents a near-trivial serial walk.
func (d *DBAO) PlanReceiver(w *sim.World, r int, slot *rngutil.Stream, buf []sim.Candidate) []sim.Candidate {
	if !w.NeedsAnything(r) {
		return buf
	}
	row, prrs := d.csr.Row(r)
	for i, s32 := range row {
		s := int(s32)
		if w.AnyNeeded(s, r) && !deferKeyed(w, s, slot) {
			buf = append(buf, sim.Candidate{Node: s32, Packet: sim.PacketFCFS, PRR: prrs[i], U: pairU(slot, r, s)})
		}
	}
	if len(buf) > 1 {
		slices.SortFunc(buf, dbaoRankCand)
		top := int(buf[0].Node)
		for j := 1; j < len(buf); j++ {
			if d.audible.has(int(buf[j].Node), top) {
				buf[j].Flags |= candAudibleTop
			}
		}
	}
	return buf
}

// SelectIntents implements sim.ShardPlanner: deterministic back-off winner
// plus hidden candidates firing on their stashed uniforms, in rank order.
// Candidates arrive rank-sorted from PlanReceiver, so the winner is the
// first unassigned candidate and the walk emits hidden candidates already
// in rank order. When the winner is the top-ranked candidate — the common
// case — the hidden-terminal test reads the plan-time candAudibleTop bit;
// otherwise it falls back to the audibility search against the actual
// winner.
func (d *DBAO) SelectIntents(w *sim.World, plan *sim.SlotPlan, emit func(in sim.Intent, prr float64)) {
	sel := d.sel.emitted[:0]
	for i := 0; i < plan.Len(); i++ {
		r := plan.Receiver(i)
		cands := plan.Candidates(i)
		wi := -1
		for j := range cands {
			if !d.assigned[cands[j].Node] {
				wi = j
				break
			}
		}
		if wi < 0 {
			continue
		}
		winner := cands[wi].Node
		d.assigned[winner] = true
		sel = append(sel, winner)
		emit(sim.Intent{From: int(winner), To: r, Packet: sim.PacketFCFS}, cands[wi].PRR)
		for j, c := range cands {
			if j == wi || d.assigned[c.Node] {
				continue
			}
			if wi == 0 {
				if c.Flags&candAudibleTop != 0 {
					continue
				}
			} else if d.audible.has(int(c.Node), int(winner)) {
				continue
			}
			if c.U < d.HiddenFireProb {
				d.assigned[c.Node] = true
				sel = append(sel, c.Node)
				emit(sim.Intent{From: int(c.Node), To: r, Packet: sim.PacketFCFS}, c.PRR)
			}
		}
	}
	for _, s := range sel {
		d.assigned[s] = false
	}
	d.sel.emitted = sel
}

// ---- Naive ----

// PlanReceiver implements sim.ShardPlanner.
func (n *Naive) PlanReceiver(w *sim.World, r int, slot *rngutil.Stream, buf []sim.Candidate) []sim.Candidate {
	if !w.NeedsAnything(r) {
		return buf
	}
	row, prrs := n.csr.Row(r)
	for i, s32 := range row {
		s := int(s32)
		if w.AnyNeeded(s, r) && !deferKeyed(w, s, slot) {
			buf = append(buf, sim.Candidate{Node: s32, Packet: sim.PacketFCFS, PRR: prrs[i], U: pairU(slot, r, s)})
		}
	}
	return buf
}

// SelectIntents implements sim.ShardPlanner: the slot-rotated id-rank
// winner plus hidden candidates firing on their stashed uniforms. Rows are
// ascending, so the candidate list is already in the sorted order the
// serial path establishes.
func (n *Naive) SelectIntents(w *sim.World, plan *sim.SlotPlan, emit func(in sim.Intent, prr float64)) {
	sel := n.sel.emitted[:0]
	for i := 0; i < plan.Len(); i++ {
		r := plan.Receiver(i)
		cands := n.sel.cands[:0]
		for _, c := range plan.Candidates(i) {
			if !n.assigned[c.Node] {
				cands = append(cands, c)
			}
		}
		n.sel.cands = cands
		if len(cands) == 0 {
			continue
		}
		rot := int(w.Now()) % len(cands)
		winner := cands[rot]
		n.assigned[winner.Node] = true
		sel = append(sel, winner.Node)
		emit(sim.Intent{From: int(winner.Node), To: r, Packet: sim.PacketFCFS}, winner.PRR)
		for j, c := range cands {
			if j == rot || n.audible.has(int(c.Node), int(winner.Node)) {
				continue
			}
			if c.U < n.HiddenFireProb {
				n.assigned[c.Node] = true
				sel = append(sel, c.Node)
				emit(sim.Intent{From: int(c.Node), To: r, Packet: sim.PacketFCFS}, c.PRR)
			}
		}
	}
	for _, s := range sel {
		n.assigned[s] = false
	}
	n.sel.emitted = sel
}

// ---- OF ----

// PlanReceiver implements sim.ShardPlanner. The tree parent's candidate
// (flagged candParent) is always first; opportunistic candidates follow in
// row order. OF's packet choice feeds its delay comparison, so packets are
// resolved at plan time rather than via the FCFS sentinel.
func (o *OF) PlanReceiver(w *sim.World, r int, slot *rngutil.Stream, buf []sim.Candidate) []sim.Candidate {
	parent := o.tr.Parent[r]
	if parent >= 0 {
		if pkt := w.OldestNeeded(parent, r); pkt >= 0 {
			flags := candParent
			if deferKeyed(w, parent, slot) {
				flags |= candDeferred
			}
			buf = append(buf, sim.Candidate{
				Node: int32(parent), Packet: int32(pkt), Flags: flags,
				PRR: o.csr.PRROf(r, parent),
			})
		}
	}
	if o.DisableOpportunistic {
		return buf
	}
	row, prrs := o.csr.Row(r)
	for i, s32 := range row {
		s := int(s32)
		if s == parent {
			continue
		}
		pkt := w.OldestNeeded(s, r)
		if pkt < 0 {
			continue
		}
		var flags uint8
		if deferKeyed(w, s, slot) {
			flags |= candDeferred
		}
		buf = append(buf, sim.Candidate{
			Node: s32, Packet: int32(pkt), Flags: flags,
			PRR: prrs[i], U: pairU(slot, r, s),
		})
	}
	return buf
}

// SelectIntents implements sim.ShardPlanner: the tree parent transmits if
// free and not deferring; opportunistic candidates then fire independently
// on their stashed uniforms against forwardProbability, whose density
// divisor counts the still-unassigned opportunistic candidates exactly as
// the serial scan does.
func (o *OF) SelectIntents(w *sim.World, plan *sim.SlotPlan, emit func(in sim.Intent, prr float64)) {
	sel := o.sel.emitted[:0]
	for i := 0; i < plan.Len(); i++ {
		r := plan.Receiver(i)
		cands := plan.Candidates(i)
		parentServes := false
		if len(cands) > 0 && cands[0].Flags&candParent != 0 {
			pc := cands[0]
			cands = cands[1:]
			if !o.assigned[pc.Node] && pc.Flags&candDeferred == 0 {
				o.assigned[pc.Node] = true
				sel = append(sel, pc.Node)
				emit(sim.Intent{From: int(pc.Node), To: r, Packet: int(pc.Packet)}, pc.PRR)
				parentServes = true
			}
		}
		if len(cands) == 0 {
			continue
		}
		oppCands := 0
		for j := range cands {
			if !o.assigned[cands[j].Node] {
				oppCands++
			}
		}
		if oppCands == 0 {
			continue
		}
		for j := range cands {
			c := &cands[j]
			if o.assigned[c.Node] {
				continue
			}
			q := o.forwardProbability(w, r, int(c.Packet), c.PRR, parentServes, oppCands)
			if q > 0 && c.U < q && c.Flags&candDeferred == 0 {
				o.assigned[c.Node] = true
				sel = append(sel, c.Node)
				emit(sim.Intent{From: int(c.Node), To: r, Packet: int(c.Packet)}, c.PRR)
			}
		}
	}
	for _, s := range sel {
		o.assigned[s] = false
	}
	o.sel.emitted = sel
}

// ---- Flash ----

// PlanReceiver implements sim.ShardPlanner: every holder of a needed
// packet that did not defer, packet resolved at plan time.
func (f *Flash) PlanReceiver(w *sim.World, r int, slot *rngutil.Stream, buf []sim.Candidate) []sim.Candidate {
	row, prrs := f.csr.Row(r)
	for i, s32 := range row {
		s := int(s32)
		pkt := w.OldestNeeded(s, r)
		if pkt < 0 {
			continue
		}
		if deferKeyed(w, s, slot) {
			continue
		}
		buf = append(buf, sim.Candidate{Node: s32, Packet: int32(pkt), PRR: prrs[i]})
	}
	return buf
}

// SelectIntents implements sim.ShardPlanner: every unassigned candidate
// transmits — concurrency is the point.
func (f *Flash) SelectIntents(w *sim.World, plan *sim.SlotPlan, emit func(in sim.Intent, prr float64)) {
	sel := f.sel.emitted[:0]
	for i := 0; i < plan.Len(); i++ {
		r := plan.Receiver(i)
		for _, c := range plan.Candidates(i) {
			if f.assigned[c.Node] {
				continue
			}
			f.assigned[c.Node] = true
			sel = append(sel, c.Node)
			emit(sim.Intent{From: int(c.Node), To: r, Packet: int(c.Packet)}, c.PRR)
		}
	}
	for _, s := range sel {
		f.assigned[s] = false
	}
	f.sel.emitted = sel
}

// ---- Trickle ----

// PlanReceiver implements sim.ShardPlanner: every neighbor holding a
// packet r needs whose Trickle timer is armed this slot (fire point
// passed within the current interval), in row order.
// Suppressed firings are planned with candSuppressed so the serial
// selection pass can tally them; timer state is pure (keyed stream
// captured at Reset), so the scan reads nothing mutable.
func (t *Trickle) PlanReceiver(w *sim.World, r int, slot *rngutil.Stream, buf []sim.Candidate) []sim.Candidate {
	if !w.NeedsAnything(r) {
		return buf
	}
	now := w.Now()
	row, prrs := t.csr.Row(r)
	for i, s32 := range row {
		s := int(s32)
		if !w.AnyNeeded(s, r) {
			continue
		}
		start, length := t.intervalAt(lastResetOf(w, s), now)
		if t.firePoint(s, start, length) > now {
			continue
		}
		var flags uint8
		if t.suppressedAt(w, s, start) {
			flags = candSuppressed
		} else if deferKeyed(w, s, slot) {
			flags = candDeferred
		}
		buf = append(buf, sim.Candidate{Node: s32, Packet: sim.PacketFCFS, Flags: flags, PRR: prrs[i]})
	}
	return buf
}

// SelectIntents implements sim.ShardPlanner: the first unassigned,
// unsuppressed, undeferred firing candidate in row order serves each
// receiver — the serial scan's rule — while suppressed candidates are
// tallied with the same per-slot sender dedupe the serial path applies.
func (t *Trickle) SelectIntents(w *sim.World, plan *sim.SlotPlan, emit func(in sim.Intent, prr float64)) {
	sel := t.sel.emitted[:0]
	for i := 0; i < plan.Len(); i++ {
		r := plan.Receiver(i)
		chosen := false
		for _, c := range plan.Candidates(i) {
			if c.Flags&candSuppressed != 0 {
				t.supp.note(c.Node)
				continue
			}
			if chosen || c.Flags&candDeferred != 0 || t.assigned[c.Node] {
				continue
			}
			t.assigned[c.Node] = true
			chosen = true
			sel = append(sel, c.Node)
			t.supp.message()
			emit(sim.Intent{From: int(c.Node), To: r, Packet: sim.PacketFCFS}, c.PRR)
		}
	}
	for _, s := range sel {
		t.assigned[s] = false
	}
	t.sel.emitted = sel
	t.supp.endSlot()
}

// ---- DFlood ----

// PlanReceiver implements sim.ShardPlanner: every due neighbor with its
// chosen packet and penalized forwarding slot (stashed in U — exact below
// 2^53), duplicate-blocked pairs planned with candSuppressed for the
// serial tally. The attempt counters it reads advance only in the serial
// SelectIntents pass.
func (d *DFlood) PlanReceiver(w *sim.World, r int, slot *rngutil.Stream, buf []sim.Candidate) []sim.Candidate {
	if !w.NeedsAnything(r) {
		return buf
	}
	now := w.Now()
	row, prrs := d.csr.Row(r)
	for i, s32 := range row {
		s := int(s32)
		if !w.AnyNeeded(s, r) {
			continue
		}
		pkt, req, blocked := d.pairChoice(w, s, r, now)
		if pkt < 0 {
			continue
		}
		var flags uint8
		if blocked {
			flags = candSuppressed
		} else if deferKeyed(w, s, slot) {
			flags = candDeferred
		}
		buf = append(buf, sim.Candidate{Node: s32, Packet: int32(pkt), Flags: flags, PRR: prrs[i], U: float64(req)})
	}
	return buf
}

// SelectIntents implements sim.ShardPlanner: per receiver, the
// unassigned, undeferred candidate with the smallest penalized forwarding
// slot (ties to the first in row order) transmits and its attempt counter
// advances; duplicate-blocked candidates are tallied.
func (d *DFlood) SelectIntents(w *sim.World, plan *sim.SlotPlan, emit func(in sim.Intent, prr float64)) {
	sel := d.sel.emitted[:0]
	for i := 0; i < plan.Len(); i++ {
		r := plan.Receiver(i)
		cands := plan.Candidates(i)
		wi := -1
		for j := range cands {
			c := &cands[j]
			if c.Flags&candSuppressed != 0 {
				d.supp.note(c.Node)
				continue
			}
			if c.Flags&candDeferred != 0 || d.assigned[c.Node] {
				continue
			}
			if wi < 0 || c.U < cands[wi].U {
				wi = j
			}
		}
		if wi < 0 {
			continue
		}
		c := cands[wi]
		d.assigned[c.Node] = true
		d.attempts[int(c.Node)*d.m+int(c.Packet)]++
		sel = append(sel, c.Node)
		d.supp.message()
		emit(sim.Intent{From: int(c.Node), To: r, Packet: int(c.Packet)}, c.PRR)
	}
	for _, s := range sel {
		d.assigned[s] = false
	}
	d.sel.emitted = sel
	d.supp.endSlot()
}

// Compile-time interface checks: every protocol plans.
var (
	_ sim.ShardPlanner = (*OPT)(nil)
	_ sim.ShardPlanner = (*DBAO)(nil)
	_ sim.ShardPlanner = (*Naive)(nil)
	_ sim.ShardPlanner = (*OF)(nil)
	_ sim.ShardPlanner = (*Flash)(nil)
	_ sim.ShardPlanner = (*Trickle)(nil)
	_ sim.ShardPlanner = (*DFlood)(nil)
)

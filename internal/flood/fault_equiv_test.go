package flood

// Equivalence and behavior suite for fault injection (internal/fault):
// attaching a fault schedule must keep the engine's two execution paths
// byte-identical — static schedules ride the compact fast path, dynamic
// ones silently fall back to the reference path — and an empty schedule
// must reproduce the unfaulted run exactly.

import (
	"bytes"
	"reflect"
	"testing"

	"ldcflood/internal/fault"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

// faultSchedules enumerates one schedule per fault family plus a mixed
// worst case, against a 6×6 grid (period-20 uniform schedules).
func faultSchedules() map[string]*fault.Schedule {
	return map[string]*fault.Schedule{
		"static-class": {Links: []fault.LinkRule{
			{MinPRR: 0, MaxPRR: 0.75, BadScale: 0.5, StartBad: 1},
		}},
		"static-random-subset": {Links: []fault.LinkRule{
			{BadScale: 0.3, StartBad: 0.4},
		}},
		"gilbert-elliott": {Links: []fault.LinkRule{
			{PGB: 0.01, PBG: 0.05, BadScale: 0.2},
		}},
		"crash-reboot": {Crashes: []fault.Crash{
			{Node: 7, At: 40, RebootAt: 400},
			{Node: 20, At: 100, RebootAt: -1},
		}},
		"jam-disc": {Jams: []fault.Jam{
			{From: 20, Until: 120, X: 25, Y: 25, Radius: 16},
		}},
		"mixed": {
			Links:   []fault.LinkRule{{PGB: 0.02, PBG: 0.1, BadScale: 0.4}},
			Crashes: []fault.Crash{{Node: 13, At: 60, RebootAt: 300}},
			Jams:    []fault.Jam{{From: 80, Until: 160, Nodes: []int{30, 31, 32}}},
		},
	}
}

func faultCfg(g *topology.Graph, faults *fault.Schedule, seed uint64) sim.Config {
	return sim.Config{
		Graph:            g,
		Schedules:        uniform(g.N(), 20, 42),
		M:                3,
		Coverage:         0.99,
		Seed:             seed,
		MaxSlots:         200000,
		RecordReceptions: true,
		Faults:           faults,
	}
}

// faultGridProtocols is the protocol list every fault-equivalence grid
// iterates: the full registry evaluation set, so a newly registered
// protocol cannot silently skip fault certification.
func faultGridProtocols() []string { return Names() }

// TestFaultEquivalence is the acceptance-criteria suite: for every fault
// family and every registered protocol, CompactTime=true and false must
// produce identical results and byte-identical trace logs — via the fast
// path for static schedules, via the silent fallback for dynamic ones.
func TestFaultEquivalence(t *testing.T) {
	for name, fs := range faultSchedules() {
		fs := fs
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			g := topology.Grid(6, 6, 0.8)
			cfg := faultCfg(g, fs, 1234)
			for _, protocol := range faultGridProtocols() {
				slow, fast, slowTrace, fastTrace := runBoth(t, cfg, protocol)
				if !reflect.DeepEqual(slow, fast) {
					t.Errorf("%s: results diverge:\nslow %+v\nfast %+v", protocol, slow, fast)
				}
				if !bytes.Equal(slowTrace, fastTrace) {
					t.Errorf("%s: trace logs diverge: slow %d bytes, fast %d bytes",
						protocol, len(slowTrace), len(fastTrace))
				}
			}
		})
	}
}

// TestFaultEquivalenceAllProtocols sweeps every shipped protocol under the
// mixed schedule, the hardest fallback case.
func TestFaultEquivalenceAllProtocols(t *testing.T) {
	g := topology.Grid(6, 6, 0.8)
	cfg := faultCfg(g, faultSchedules()["mixed"], 77)
	for _, protocol := range faultGridProtocols() {
		slow, fast, slowTrace, fastTrace := runBoth(t, cfg, protocol)
		if !reflect.DeepEqual(slow, fast) {
			t.Errorf("%s: results diverge:\nslow %+v\nfast %+v", protocol, slow, fast)
		}
		if !bytes.Equal(slowTrace, fastTrace) {
			t.Errorf("%s: trace logs diverge", protocol)
		}
	}
}

// TestEmptyScheduleMatchesNil pins the zero-perturbation guarantee: an
// empty fault schedule must reproduce the unfaulted run bit for bit (the
// fault RNG stream is derived, never drawn from).
func TestEmptyScheduleMatchesNil(t *testing.T) {
	g := topology.Grid(6, 6, 0.8)
	for _, compact := range []bool{false, true} {
		base := faultCfg(g, nil, 5)
		base.CompactTime = compact
		faulted := base
		faulted.Faults = &fault.Schedule{}
		for _, protocol := range []string{"opt", "of"} {
			runOne := func(cfg sim.Config) (*sim.Result, []byte) {
				slow, _, trace, _ := runBoth(t, cfg, protocol)
				return slow, trace
			}
			a, ta := runOne(base)
			b, tb := runOne(faulted)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s compact=%v: empty schedule perturbed the run", protocol, compact)
			}
			if !bytes.Equal(ta, tb) {
				t.Errorf("%s compact=%v: empty schedule perturbed the trace", protocol, compact)
			}
		}
	}
}

// TestFaultDeterminism pins same seed + same schedule ⇒ identical results
// on repeated runs.
func TestFaultDeterminism(t *testing.T) {
	g := topology.Grid(6, 6, 0.8)
	cfg := faultCfg(g, faultSchedules()["mixed"], 2024)
	a, _, ta, _ := runBoth(t, cfg, "dbao")
	b, _, tb, _ := runBoth(t, cfg, "dbao")
	if !reflect.DeepEqual(a, b) {
		t.Error("re-run with identical seed and schedule diverged")
	}
	if !bytes.Equal(ta, tb) {
		t.Error("re-run trace diverged")
	}
}

// TestCrashReDissemination checks the churn semantics end to end: a node
// that crashes after receiving packets loses them (CrashDropped > 0), the
// flood completes anyway, and the rebooted node receives again afterwards.
func TestCrashReDissemination(t *testing.T) {
	g := topology.Grid(5, 5, 0.9)
	const victim, crashAt, rebootAt = 12, 50, 600
	fs := &fault.Schedule{Crashes: []fault.Crash{{Node: victim, At: crashAt, RebootAt: rebootAt}}}
	cfg := faultCfg(g, fs, 31)
	cfg.Coverage = 1 // force full coverage so the victim must be re-served
	p, err := New("opt")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Protocol = p
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 1 || res.Reboots != 1 {
		t.Fatalf("Crashes=%d Reboots=%d, want 1/1", res.Crashes, res.Reboots)
	}
	if res.CrashDropped == 0 {
		t.Error("crash at slot 50 dropped nothing; victim never held a packet?")
	}
	if !res.Completed {
		t.Fatal("flood did not complete despite reboot")
	}
	for pkt := 0; pkt < cfg.M; pkt++ {
		rt := res.NodeRecvTime[pkt][victim]
		if rt < rebootAt {
			t.Errorf("packet %d: victim's final reception at slot %d predates its reboot at %d",
				pkt, rt, rebootAt)
		}
	}
}

// TestJamBlocksReceptions checks the outage semantics: a jammed region
// records deterministic jam failures and no jammed node completes a
// reception inside the window.
func TestJamBlocksReceptions(t *testing.T) {
	g := topology.Grid(5, 5, 0.9)
	jam := fault.Jam{From: 0, Until: 300, Nodes: []int{6, 7, 8, 11, 12, 13}}
	fs := &fault.Schedule{Jams: []fault.Jam{jam}}
	cfg := faultCfg(g, fs, 8)
	p, err := New("naive")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Protocol = p
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.JamFailures == 0 {
		t.Error("no jam failures recorded over a 300-slot outage on the flood's path")
	}
	if res.Failures() < res.JamFailures {
		t.Error("Failures() does not include JamFailures")
	}
	for pkt := 0; pkt < cfg.M; pkt++ {
		for _, node := range jam.Nodes {
			rt := res.NodeRecvTime[pkt][node]
			if rt >= 0 && rt >= jam.From && rt < jam.Until {
				t.Errorf("packet %d received by jammed node %d at slot %d inside [%d, %d)",
					pkt, node, rt, jam.From, jam.Until)
			}
		}
	}
}

// TestFaultValidationSurfacesInRun checks that sim.Run rejects an invalid
// schedule up front instead of running with it.
func TestFaultValidationSurfacesInRun(t *testing.T) {
	g := topology.Grid(4, 4, 0.9)
	cfg := faultCfg(g, &fault.Schedule{Crashes: []fault.Crash{{Node: 0, At: 1, RebootAt: -1}}}, 1)
	p, err := New("opt")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Protocol = p
	if _, err := sim.Run(cfg); err == nil {
		t.Fatal("Run accepted a schedule that crashes the source")
	}
}

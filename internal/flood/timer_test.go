package flood

// Behavior and counter suite for the timer-driven protocols (Trickle,
// DFlood): timer arithmetic, suppression semantics, and the
// mode-invariance of the message/suppression counters under the engine's
// execution-path contract — identical across worker counts >= 1 on both
// time paths, and across the two time paths at Workers == 0.

import (
	"reflect"
	"testing"

	"ldcflood/internal/sim"
	"ldcflood/internal/telemetry"
	"ldcflood/internal/topology"
)

func TestTrickleIntervalWalk(t *testing.T) {
	tr := &Trickle{Imin: 16, MaxDoublings: 3, imax: 16 << 3}
	cases := []struct {
		lastReset, now, start, length int64
	}{
		{0, 0, 0, 16},
		{0, 15, 0, 16},
		{0, 16, 16, 32},
		{0, 47, 16, 32},
		{0, 48, 48, 64},
		{0, 112, 112, 128},         // first capped interval
		{0, 239, 112, 128},         // still inside it
		{0, 240, 240, 128},         // arithmetic continuation at imax
		{0, 240 + 5*128, 880, 128}, // arbitrary capped jump
		{100, 99 + 17, 116, 32},    // non-zero reset origin
		{100, 100, 100, 16},        // reset slot itself
		{7, 7 + 16 + 32 + 64, 119, 128},
	}
	for _, c := range cases {
		start, length := tr.intervalAt(c.lastReset, c.now)
		if start != c.start || length != c.length {
			t.Errorf("intervalAt(%d, %d) = (%d, %d), want (%d, %d)",
				c.lastReset, c.now, start, length, c.start, c.length)
		}
		if !(start <= c.now && c.now < start+length) {
			t.Errorf("intervalAt(%d, %d): now outside [%d, %d)", c.lastReset, c.now, start, start+length)
		}
	}
}

func TestTrickleFirePointInSecondHalf(t *testing.T) {
	tr := NewTrickle()
	g := topology.Line(4, 1)
	res := runOn(t, g, alwaysOn(4), tr, 1, 3, 10000)
	if !res.Completed {
		t.Fatal("incomplete")
	}
	// The timer stream is now captured; probe fire points directly.
	for s := 0; s < 4; s++ {
		for _, start := range []int64{0, 16, 48, 113} {
			for _, length := range []int64{16, 32, 1024} {
				tau := tr.firePoint(s, start, length)
				if tau < start+length/2 || tau >= start+length {
					t.Fatalf("firePoint(%d, %d, %d) = %d outside [%d, %d)",
						s, start, length, tau, start+length/2, start+length)
				}
			}
		}
	}
}

func TestDFloodBackoffClosedForm(t *testing.T) {
	d := &DFlood{Tmin: 5, MaxDoublings: 6}
	// Reference: iterative doubling capped at Tmin << MaxDoublings.
	iterative := func(a int32) int64 {
		var sum, step int64 = 0, d.Tmin
		for i := int32(0); i < a; i++ {
			sum += step
			if step < d.Tmin<<d.MaxDoublings {
				step <<= 1
			}
		}
		return sum
	}
	for a := int32(0); a < 40; a++ {
		if got, want := d.backoff(a), iterative(a); got != want {
			t.Fatalf("backoff(%d) = %d, want %d", a, got, want)
		}
	}
}

// TestTimerProtocolsSuppress checks the suppression machinery actually
// engages on a dense topology and that the counters agree with their
// per-node breakdowns.
func TestTimerProtocolsSuppress(t *testing.T) {
	g := topology.GreenOrbs(3)
	for _, name := range []string{"trickle", "dflood"} {
		p, _ := New(name)
		res := runOn(t, g, uniform(g.N(), 10, 9), p, 5, 4, 2_000_000)
		if !res.Completed {
			t.Fatalf("%s incomplete", name)
		}
		type counted interface {
			FloodCounters() (int64, int64)
			SuppressedPerNode() []int64
		}
		c := p.(counted)
		messages, suppressed := c.FloodCounters()
		if messages == 0 {
			t.Fatalf("%s: no messages counted", name)
		}
		if int(messages) != res.Transmissions {
			t.Fatalf("%s: %d messages counted, %d transmissions recorded", name, messages, res.Transmissions)
		}
		if suppressed == 0 {
			t.Fatalf("%s: suppression never engaged on a dense graph", name)
		}
		var perNode int64
		for _, v := range c.SuppressedPerNode() {
			perNode += v
		}
		if perNode != suppressed {
			t.Fatalf("%s: per-node suppression sums to %d, total %d", name, perNode, suppressed)
		}
	}
}

// TestDFloodPenaltyDisabled pins the Ndupl semantics: with the duplicate
// penalty disabled (Ndupl < 0) nothing is ever suppressed, and with it
// enabled the flood spends fewer transmissions on a dense graph.
func TestDFloodPenaltyDisabled(t *testing.T) {
	g := topology.GreenOrbs(5)
	scheds := uniform(g.N(), 10, 11)
	off := &DFlood{Ndupl: -1}
	resOff := runOn(t, g, scheds, off, 5, 6, 2_000_000)
	_, suppressedOff := off.FloodCounters()
	if suppressedOff != 0 {
		t.Fatalf("penalty disabled but %d suppressions counted", suppressedOff)
	}
	on := NewDFlood()
	resOn := runOn(t, g, scheds, on, 5, 6, 2_000_000)
	if !resOff.Completed || !resOn.Completed {
		t.Fatal("runs incomplete")
	}
	if resOn.Transmissions >= resOff.Transmissions {
		t.Fatalf("duplicate suppression did not reduce transmissions: %d vs %d",
			resOn.Transmissions, resOff.Transmissions)
	}
}

// timerCounterRun executes one timer-protocol run and returns its result
// plus counters.
func timerCounterRun(t *testing.T, name string, workers int, compact bool) (*sim.Result, int64, int64, []int64) {
	t.Helper()
	g := topology.Grid(6, 6, 0.8)
	p, err := New(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Graph:     g,
		Schedules: uniform(g.N(), 20, 42),
		Protocol:  p,
		M:         3, Coverage: 0.99, Seed: 99, MaxSlots: 200000,
		Workers: workers, CompactTime: compact,
	})
	if err != nil {
		t.Fatalf("%s workers=%d compact=%v: %v", name, workers, compact, err)
	}
	type counted interface {
		FloodCounters() (int64, int64)
		SuppressedPerNode() []int64
	}
	c := p.(counted)
	messages, suppressed := c.FloodCounters()
	return res, messages, suppressed, c.SuppressedPerNode()
}

// TestProtocolCountersModeInvariant pins the counter determinism claim in
// counters.go: message and suppression counts are identical across worker
// counts >= 1 on both time paths (the sharded stream), and across the two
// time paths at Workers == 0 (the serial stream).
func TestProtocolCountersModeInvariant(t *testing.T) {
	for _, name := range []string{"trickle", "dflood"} {
		t.Run(name, func(t *testing.T) {
			baseMsg, baseSupp := int64(-1), int64(-1)
			var basePer []int64
			for _, mode := range []struct {
				workers int
				compact bool
			}{{1, false}, {2, false}, {4, false}, {1, true}, {4, true}} {
				_, msg, supp, per := timerCounterRun(t, name, mode.workers, mode.compact)
				if baseMsg < 0 {
					baseMsg, baseSupp, basePer = msg, supp, per
					continue
				}
				if msg != baseMsg || supp != baseSupp || !reflect.DeepEqual(per, basePer) {
					t.Errorf("workers=%d compact=%v: counters (%d, %d) diverge from (%d, %d)",
						mode.workers, mode.compact, msg, supp, baseMsg, baseSupp)
				}
			}
			_, serialMsg, serialSupp, serialPer := timerCounterRun(t, name, 0, false)
			_, cMsg, cSupp, cPer := timerCounterRun(t, name, 0, true)
			if serialMsg != cMsg || serialSupp != cSupp || !reflect.DeepEqual(serialPer, cPer) {
				t.Errorf("serial: compact path counters (%d, %d) diverge from reference (%d, %d)",
					cMsg, cSupp, serialMsg, serialSupp)
			}
		})
	}
}

// TestInstrumentNeutralAndMirrored checks that attaching a telemetry
// registry does not perturb the run and that the registry counters mirror
// the protocol's own tallies.
func TestInstrumentNeutralAndMirrored(t *testing.T) {
	g := topology.Grid(6, 6, 0.8)
	for _, name := range []string{"trickle", "dflood"} {
		run := func(reg *telemetry.Registry) (*sim.Result, int64, int64) {
			p, _ := New(name)
			if reg != nil {
				type instrumented interface {
					Instrument(*telemetry.Registry)
				}
				p.(instrumented).Instrument(reg)
			}
			res, err := sim.Run(sim.Config{
				Graph:     g,
				Schedules: uniform(g.N(), 20, 42),
				Protocol:  p,
				M:         3, Coverage: 0.99, Seed: 5, MaxSlots: 200000,
			})
			if err != nil {
				t.Fatal(err)
			}
			type counted interface {
				FloodCounters() (int64, int64)
			}
			msg, supp := p.(counted).FloodCounters()
			return res, msg, supp
		}
		plain, _, _ := run(nil)
		reg := telemetry.New()
		instrumented, msg, supp := run(reg)
		if !reflect.DeepEqual(plain, instrumented) {
			t.Errorf("%s: attaching telemetry changed the run", name)
		}
		snap := reg.Snapshot()
		if got := snap["flood.messages"]; got != msg {
			t.Errorf("%s: flood.messages = %d, protocol counted %d", name, got, msg)
		}
		if got := snap["flood."+name+".suppressed"]; got != supp {
			t.Errorf("%s: flood.%s.suppressed = %d, protocol counted %d", name, name, got, supp)
		}
	}
}

package flood

import (
	"testing"

	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/stats"
	"ldcflood/internal/topology"
)

func alwaysOn(n int) []*schedule.Schedule {
	out := make([]*schedule.Schedule, n)
	for i := range out {
		out[i] = schedule.AlwaysOn()
	}
	return out
}

func uniform(n, period int, seed uint64) []*schedule.Schedule {
	return schedule.AssignUniform(n, period, rngutil.New(seed).SubName("schedule"))
}

func TestNewRegistry(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() == "" {
			t.Fatalf("%q has empty display name", name)
		}
	}
	if p, err := New("OPT"); err != nil || p.Name() != "OPT" {
		t.Fatal("registry should be case-insensitive")
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func runOn(t *testing.T, g *topology.Graph, scheds []*schedule.Schedule, p sim.Protocol, m int, seed uint64, maxSlots int64) *sim.Result {
	t.Helper()
	// 99% coverage, exactly as the paper's evaluation: demanding 100%
	// makes the worst-connected sensors dominate every metric.
	res, err := sim.Run(sim.Config{
		Graph: g, Schedules: scheds, Protocol: p,
		M: m, Coverage: 0.99, Seed: seed, MaxSlots: maxSlots,
	})
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	return res
}

func TestAllProtocolsCompleteOnLine(t *testing.T) {
	g := topology.Line(6, 1)
	for _, name := range Names() {
		p, _ := New(name)
		res := runOn(t, g, alwaysOn(6), p, 2, 1, 10000)
		if !res.Completed {
			t.Fatalf("%s did not complete on a perfect line", name)
		}
	}
}

func TestAllProtocolsCompleteOnLossyGrid(t *testing.T) {
	g := topology.Grid(5, 5, 0.7)
	for _, name := range Names() {
		p, _ := New(name)
		res := runOn(t, g, uniform(25, 10, 7), p, 5, 2, 2_000_000)
		if !res.Completed {
			t.Fatalf("%s did not complete on lossy grid", name)
		}
		if res.MeanDelay() <= 0 {
			t.Fatalf("%s mean delay %v", name, res.MeanDelay())
		}
	}
}

func TestOPTReceivesFromBestNeighbor(t *testing.T) {
	// Node 2 has two holders: node 0 (PRR 0.4) and node 1 (PRR 0.9, seeded
	// via a perfect 0-1 link). Once both hold the packet, OPT must deliver
	// to 2 from node 1.
	g := topology.New(3)
	g.AddLink(0, 1, 1)
	g.AddLink(0, 2, 0.4)
	g.AddLink(1, 2, 0.9)
	g.SortNeighbors()
	// Node 2 sleeps until slot 5; by then node 1 holds the packet.
	scheds := []*schedule.Schedule{
		schedule.AlwaysOn(),
		schedule.AlwaysOn(),
		schedule.NewSingleSlot(6, 5),
	}
	res := runOn(t, g, scheds, NewOPT(), 1, 1, 1000)
	if !res.Completed {
		t.Fatal("incomplete")
	}
	// Node 1 transmitted at least once (it is the best holder for node 2).
	if res.TxPerNode[1] == 0 {
		t.Fatal("OPT did not use the best-quality neighbor")
	}
}

func TestOPTNeverCollides(t *testing.T) {
	g := topology.GreenOrbs(2)
	res := runOn(t, g, uniform(g.N(), 10, 3), NewOPT(), 5, 4, 1_000_000)
	if res.CollisionFailures != 0 {
		t.Fatalf("OPT recorded %d collisions", res.CollisionFailures)
	}
}

func TestDBAOCarrierSenseSuppressesAudibleCandidates(t *testing.T) {
	// Triangle 0-1-2 plus receiver 3 linked to both 1 and 2; 1 and 2 hear
	// each other, so only the better-ranked of them fires — no collision.
	g := topology.New(4)
	g.AddLink(0, 1, 1)
	g.AddLink(0, 2, 1)
	g.AddLink(1, 2, 1)
	g.AddLink(1, 3, 0.9)
	g.AddLink(2, 3, 0.8)
	g.SortNeighbors()
	res := runOn(t, g, alwaysOn(4), NewDBAO(), 1, 1, 100)
	if !res.Completed {
		t.Fatal("incomplete")
	}
	if res.CollisionFailures != 0 {
		t.Fatalf("audible candidates collided %d times", res.CollisionFailures)
	}
}

func TestDBAOHiddenTerminalsCollide(t *testing.T) {
	// Nodes 1 and 2 cannot hear each other (no 1-2 link) and both hold the
	// packet; both will fire at receiver 3 -> collision.
	g := topology.New(4)
	g.AddLink(0, 1, 1)
	g.AddLink(0, 2, 1)
	g.AddLink(1, 3, 0.9)
	g.AddLink(2, 3, 0.9)
	g.SortNeighbors()
	// Node 3 wakes late so both 1 and 2 are seeded first.
	scheds := []*schedule.Schedule{
		schedule.AlwaysOn(),
		schedule.AlwaysOn(),
		schedule.AlwaysOn(),
		schedule.NewSingleSlot(8, 5),
	}
	res := runOn(t, g, scheds, NewDBAO(), 1, 1, 9)
	if res.CollisionFailures == 0 {
		t.Fatal("hidden terminals did not collide")
	}
}

func TestDBAOOverhearingReducesTransmissions(t *testing.T) {
	g := topology.GreenOrbs(5)
	scheds := uniform(g.N(), 10, 11)
	with := runOn(t, g, scheds, NewDBAO(), 5, 6, 1_000_000)
	without := runOn(t, g, scheds, &DBAO{DisableOverhearing: true}, 5, 6, 1_000_000)
	if !with.Completed || !without.Completed {
		t.Fatal("runs incomplete")
	}
	if with.Overheard == 0 {
		t.Fatal("overhearing never happened on a dense graph")
	}
	if with.Transmissions >= without.Transmissions {
		t.Fatalf("overhearing did not reduce transmissions: %d vs %d", with.Transmissions, without.Transmissions)
	}
}

func TestOFBuildsTreeAndCompletes(t *testing.T) {
	g := topology.GreenOrbs(4)
	res := runOn(t, g, uniform(g.N(), 10, 13), NewOF(), 5, 8, 2_000_000)
	if !res.Completed {
		t.Fatal("OF incomplete")
	}
}

func TestOFOpportunisticAblation(t *testing.T) {
	g := topology.GreenOrbs(6)
	scheds := uniform(g.N(), 20, 17)
	full := runOn(t, g, scheds, NewOF(), 10, 9, 2_000_000)
	treeOnly := runOn(t, g, scheds, &OF{DisableOpportunistic: true}, 10, 9, 2_000_000)
	if !full.Completed || !treeOnly.Completed {
		t.Fatal("runs incomplete")
	}
	// Opportunistic links should help (or at worst be a wash); allow 10%
	// tolerance for stochastic noise.
	if full.MeanDelay() > treeOnly.MeanDelay()*1.10 {
		t.Fatalf("opportunistic forwarding hurt delay: %.1f vs %.1f", full.MeanDelay(), treeOnly.MeanDelay())
	}
}

func TestProtocolOrderingOnGreenOrbs(t *testing.T) {
	// The paper's central evaluation result (Fig. 9/10): OPT <= DBAO <= OF
	// in mean flooding delay on the GreenOrbs trace at 5% duty cycle.
	if testing.Short() {
		t.Skip("ordering sweep is slow")
	}
	g := topology.GreenOrbs(1)
	period := 20 // 5% duty
	m := 20
	delay := map[string]float64{}
	for _, name := range []string{"opt", "dbao", "of"} {
		p, _ := New(name)
		var sum float64
		runs := 2
		for seed := uint64(0); seed < uint64(runs); seed++ {
			scheds := uniform(g.N(), period, 100+seed)
			res, err := sim.Run(sim.Config{
				Graph: g, Schedules: scheds, Protocol: p,
				M: m, Coverage: 0.99, Seed: seed, MaxSlots: 2_000_000,
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !res.Completed {
				t.Fatalf("%s incomplete", name)
			}
			sum += res.MeanDelay()
		}
		delay[name] = sum / float64(runs)
	}
	t.Logf("mean delays: OPT=%.1f DBAO=%.1f OF=%.1f", delay["opt"], delay["dbao"], delay["of"])
	if delay["opt"] > delay["dbao"]*1.02 {
		t.Fatalf("OPT (%.1f) slower than DBAO (%.1f)", delay["opt"], delay["dbao"])
	}
	if delay["dbao"] > delay["of"]*1.02 {
		t.Fatalf("DBAO (%.1f) slower than OF (%.1f)", delay["dbao"], delay["of"])
	}
}

func TestFlashNeedsCapture(t *testing.T) {
	g := topology.GreenOrbs(3)
	scheds := uniform(g.N(), 10, 31)
	run := func(capture float64, maxSlots int64) *sim.Result {
		res, err := sim.Run(sim.Config{
			Graph: g, Schedules: scheds, Protocol: NewFlash(),
			M: 3, Coverage: 0.99, Seed: 8, MaxSlots: maxSlots,
			CaptureProb: capture,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with := run(0.9, 1_000_000)
	if !with.Completed {
		t.Fatal("flash with capture incomplete")
	}
	if with.Captures == 0 {
		t.Fatal("capture never fired for concurrent transmissions")
	}
	// Without capture the concurrent transmissions mostly collide; on a
	// short horizon the flood must be visibly worse (fewer packets covered
	// or much higher delay).
	without := run(0, with.TotalSlots)
	if without.Completed && without.MeanDelay() < with.MeanDelay() {
		t.Fatalf("capture-less flash (%.1f) beat capture (%.1f)", without.MeanDelay(), with.MeanDelay())
	}
	if without.CollisionFailures <= with.CollisionFailures {
		t.Fatal("capture should reduce collision losses")
	}
}

func TestFlashRegisteredByName(t *testing.T) {
	p, err := New("flash")
	if err != nil || p.Name() != "Flash" {
		t.Fatalf("flash not in registry: %v", err)
	}
	for _, n := range Names() {
		if n == "flash" {
			t.Fatal("flash should not be in the default evaluation set")
		}
	}
}

func TestCaptureValidation(t *testing.T) {
	g := topology.Line(2, 1)
	for _, cp := range []float64{-0.1, 1.1} {
		_, err := sim.Run(sim.Config{
			Graph: g, Schedules: alwaysOn(2), Protocol: NewFlash(),
			M: 1, CaptureProb: cp,
		})
		if err == nil {
			t.Fatalf("capture prob %v accepted", cp)
		}
	}
}

func TestProtocolGapIsStatisticallySignificant(t *testing.T) {
	// The OF-vs-OPT delay gap is not seed noise: pool per-packet delays
	// over several runs and require Mann-Whitney significance.
	g := topology.GreenOrbs(1)
	collect := func(name string) []float64 {
		var out []float64
		for seed := uint64(0); seed < 3; seed++ {
			p, _ := New(name)
			res, err := sim.Run(sim.Config{
				Graph:     g,
				Schedules: uniform(g.N(), 20, 200+seed),
				Protocol:  p,
				M:         10,
				Coverage:  0.99,
				Seed:      seed,
				MaxSlots:  2_000_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range res.Delay {
				if d >= 0 {
					out = append(out, float64(d))
				}
			}
		}
		return out
	}
	opt := collect("opt")
	of := collect("of")
	res, err := stats.MannWhitney(opt, of)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 0.01 {
		t.Fatalf("OF vs OPT gap not significant: p=%v", res.P)
	}
	// Effect direction: OPT delays stochastically below OF's.
	if res.Effect > 0.3 {
		t.Fatalf("effect size %v: OPT should dominate OF", res.Effect)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	g := topology.GreenOrbs(9)
	for _, name := range Names() {
		mk := func() *sim.Result {
			p, _ := New(name)
			return runOn(t, g, uniform(g.N(), 10, 21), p, 3, 5, 1_000_000)
		}
		a, b := mk(), mk()
		if a.MeanDelay() != b.MeanDelay() || a.Failures() != b.Failures() {
			t.Fatalf("%s not deterministic", name)
		}
	}
}

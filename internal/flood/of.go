package flood

import (
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
	"ldcflood/internal/tree"
)

// OF reconstructs Opportunistic Flooding (Guo et al., MobiCom'09): packets
// primarily travel down the energy-optimal tree (minimum expected
// transmission count), and senders additionally make probabilistic
// opportunistic forwarding decisions over non-tree links based on the
// expected delay distribution along the tree — a sender forwards over an
// opportunistic link when the packet appears to be running ahead of (or the
// tree path is lagging behind) its expected tree arrival. Opportunistic
// senders do not coordinate with the tree parent, so simultaneous
// transmissions collide; this, plus waiting on tree parents, is why OF
// trails DBAO and OPT in the paper's evaluation.
type OF struct {
	// Aggressiveness scales the opportunistic forwarding probability;
	// the default 0.25 reflects OF's conservative p-threshold decisions.
	Aggressiveness float64
	// DisableOpportunistic restricts OF to pure tree forwarding (ablation).
	DisableOpportunistic bool

	tr        *tree.Tree
	expDelay  []float64
	assigned  []bool
	csr       *topology.CSR
	intentBuf []sim.Intent
	pktBuf    []int
	sel       selScratch

	// treeGraph / treePeriod memoize the energy-optimal tree and its
	// expected-delay distribution across runs over the same (immutable)
	// topology and schedule period.
	treeGraph  *topology.Graph
	treePeriod int
}

// NewOF returns a fresh OF instance with default parameters.
func NewOF() *OF { return &OF{Aggressiveness: 0.25} }

// Name implements sim.Protocol.
func (o *OF) Name() string { return "OF" }

// Reset implements sim.Protocol: builds the energy-optimal tree and the
// per-node expected-delay distribution used by forwarding decisions.
func (o *OF) Reset(w *sim.World) {
	period := w.Schedules[0].Period()
	for _, s := range w.Schedules {
		if s.Period() > period {
			period = s.Period()
		}
	}
	if o.treeGraph != w.Graph || o.treePeriod != period {
		o.tr = tree.EnergyOptimal(w.Graph, 0)
		o.expDelay = o.tr.ExpectedDelay(w.Graph, period)
		o.treeGraph, o.treePeriod = w.Graph, period
	}
	o.assigned = make([]bool, w.Graph.N())
	o.csr = w.Graph.CSR()
	if o.Aggressiveness <= 0 {
		o.Aggressiveness = 0.25
	}
}

// CollisionsApply implements sim.Protocol.
func (o *OF) CollisionsApply() bool { return true }

// Overhears implements sim.Protocol: OF coordinates through the tree, not
// through overhearing.
func (o *OF) Overhears() bool { return false }

// Intents implements sim.Protocol.
func (o *OF) Intents(w *sim.World) []sim.Intent {
	out := o.intentBuf[:0]
	for _, r := range w.AwakeList() {
		parent := o.tr.Parent[r]
		parentServes := false
		if parent >= 0 && !o.assigned[parent] && !deferToReception(w, parent) {
			if pkt := w.OldestNeeded(parent, r); pkt >= 0 {
				o.assigned[parent] = true
				out = append(out, sim.Intent{From: parent, To: r, Packet: pkt})
				parentServes = true
			}
		}
		if o.DisableOpportunistic {
			continue
		}
		// Opportunistic senders: non-parent neighbors holding a needed
		// packet decide independently; they cannot know whether the parent
		// is about to transmit, so collisions with it are possible. Each
		// sender normalizes its forwarding probability by the local
		// candidate density (part of OF's p-value computation) so the
		// expected number of opportunistic transmissions per wake-up stays
		// O(Aggressiveness) rather than O(degree).
		nbrs, prrs := o.csr.Row(r)
		if cap(o.pktBuf) < len(nbrs) {
			o.pktBuf = make([]int, len(nbrs))
		}
		// pkts caches OldestNeeded per neighbor between the density count and
		// the firing loop: the world is frozen during Intents, and assigned
		// only grows between the loops, so every neighbor the firing loop
		// considers was scanned here.
		pkts := o.pktBuf[:len(nbrs)]
		oppCands := 0
		for i, s32 := range nbrs {
			s := int(s32)
			pkts[i] = -1
			if s != parent && !o.assigned[s] {
				if pkt := w.OldestNeeded(s, r); pkt >= 0 {
					pkts[i] = pkt
					oppCands++
				}
			}
		}
		if oppCands == 0 {
			continue
		}
		for i, s32 := range nbrs {
			s := int(s32)
			if s == parent || o.assigned[s] {
				continue
			}
			pkt := pkts[i]
			if pkt < 0 {
				continue
			}
			q := o.forwardProbability(w, r, pkt, prrs[i], parentServes, oppCands)
			if q > 0 && w.ProtoRNG.Bool(q) && !deferToReception(w, s) {
				o.assigned[s] = true
				out = append(out, sim.Intent{From: s, To: r, Packet: pkt})
			}
		}
	}
	o.intentBuf = out
	// assigned holds exactly the senders emitted above; clearing those
	// entries instead of the whole array keeps the reset proportional to
	// the slot's actual transmissions.
	for _, in := range out {
		o.assigned[in.From] = false
	}
	return out
}

// forwardProbability is the opportunistic forwarding decision: compare the
// packet's age against its expected tree-path arrival at the receiver. A
// packet already overdue (the tree path is slow or lossy) is forwarded
// aggressively; one well ahead of schedule is forwarded rarely, and only
// over good links. The density divisor keeps the expected opportunistic
// transmission count per wake-up constant.
func (o *OF) forwardProbability(w *sim.World, receiver, pkt int, prr float64, parentServes bool, oppCands int) float64 {
	age := float64(w.Now() - w.InjectSlot(pkt))
	expected := o.expDelay[receiver]
	q := o.Aggressiveness * prr / float64(oppCands)
	if age > expected {
		// Overdue: the tree is failing this receiver; seize the slot.
		q *= 2
	}
	if parentServes {
		// The parent holds the packet and is awake-adjacent; most of the
		// time the tree will deliver, so stand down proportionally.
		q *= 0.25
	}
	if q > 1 {
		q = 1
	}
	return q
}

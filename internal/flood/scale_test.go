package flood

// Large-topology completion test: a 100k-node ScaledGreenOrbs flood must
// finish on the sharded engine within O(n+m) memory. This is the tier-2
// acceptance check behind the committed BENCH_scale.json numbers — it
// certifies correctness and the memory bound, while engbench -scale owns
// the timing. Skipped under -short; takes a few seconds at full scale.

import (
	"runtime"
	"testing"

	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

func TestHundredThousandNodeFloodCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node flood skipped in -short mode")
	}
	const nodes = 100000
	g, err := topology.GenerateGreenOrbs(topology.ScaledGreenOrbsConfig(nodes), 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != nodes {
		t.Fatalf("scaled greenorbs has %d nodes, want %d", g.N(), nodes)
	}
	scheds := schedule.AssignUniform(g.N(), 100, rngutil.New(1).SubName("schedule"))
	p, err := New("opt")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{
		Graph:     g,
		Schedules: scheds,
		Protocol:  p,
		M:         4,
		Coverage:  0.99,
		Seed:      1,
		MaxSlots:  2000000,
		Workers:   4,
	}

	// TotalAlloc delta across the run bounds the engine's heap appetite.
	// O(n+m) structures at this scale cost on the order of 100 B/node
	// (BENCH_scale.json records ~140); a single O(n^2) structure — one
	// n-by-n bitset — would already cost 12.5 kB/node. The 4 kB/node
	// ceiling separates the two regimes with a wide margin on both sides.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)

	if !res.Completed {
		t.Fatalf("flood did not reach %.0f%% coverage within %d slots", cfg.Coverage*100, cfg.MaxSlots)
	}
	for pkt, ct := range res.CoverTime {
		if ct < 0 {
			t.Fatalf("packet %d never reached %d nodes", pkt, res.CoverNodes)
		}
	}
	bytesPerNode := float64(after.TotalAlloc-before.TotalAlloc) / float64(nodes)
	if bytesPerNode > 4096 {
		t.Fatalf("engine allocated %.0f B/node, want <= 4096 (O(n+m) bound)", bytesPerNode)
	}
	t.Logf("100k flood: %d slots, cover target %d nodes, %.0f B/node", res.TotalSlots, res.CoverNodes, bytesPerNode)
}

package flood

import (
	"slices"

	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

// Naive is the traditional flat flooding baseline: every node that holds a
// packet a waking neighbor needs contends to unicast it. Contention is
// resolved with id-based ranks rotated per slot (nodes have no link-quality
// knowledge), carrier sense over the physical audibility graph, and the
// same hidden-terminal behaviour as DBAO — but no overhearing and no
// structure. It exhibits the poor low-duty-cycle performance that motivates
// the paper (Section I).
type Naive struct {
	// HiddenFireProb mirrors DBAO's hidden-candidate behaviour.
	HiddenFireProb float64

	assigned  []bool
	audible   *audibility
	csr       *topology.CSR
	intentBuf []sim.Intent
	candBuf   []int
	firingBuf []int
	sel       selScratch

	// csGraph memoizes the audibility structure across runs over the same
	// (immutable) topology.
	csGraph *topology.Graph
}

// NewNaive returns a fresh Naive instance.
func NewNaive() *Naive { return &Naive{} }

// Name implements sim.Protocol.
func (n *Naive) Name() string { return "Naive" }

// Reset implements sim.Protocol.
func (n *Naive) Reset(w *sim.World) {
	n.assigned = make([]bool, w.Graph.N())
	if n.HiddenFireProb <= 0 {
		n.HiddenFireProb = 0.5
	}
	if n.csGraph != w.Graph {
		n.audible = buildAudibility(w.Graph, 1.2)
		n.csGraph = w.Graph
	}
	n.csr = w.Graph.CSR()
}

// CollisionsApply implements sim.Protocol.
func (n *Naive) CollisionsApply() bool { return true }

// Overhears implements sim.Protocol.
func (n *Naive) Overhears() bool { return false }

// Intents implements sim.Protocol.
func (n *Naive) Intents(w *sim.World) []sim.Intent {
	out := n.intentBuf[:0]
	for _, r := range w.AwakeList() {
		if !w.NeedsAnything(r) {
			// No neighbor can hold anything r lacks, so the candidate scan
			// below would admit nobody (and draw no RNG) — skip it.
			continue
		}
		cands := n.candBuf[:0]
		row, _ := n.csr.Row(r)
		for _, s32 := range row {
			s := int(s32)
			if !n.assigned[s] && w.AnyNeeded(s, r) && !deferToReception(w, s) {
				cands = append(cands, s)
			}
		}
		n.candBuf = cands
		if len(cands) == 0 {
			continue
		}
		slices.Sort(cands)
		// Rotate the rank origin by slot: no quality knowledge, just a
		// deterministic TDMA-ish rotation every node can compute.
		rot := int(w.Now()) % len(cands)
		winner := cands[rot]
		firing := append(n.firingBuf[:0], winner)
		for i, c := range cands {
			if i == rot {
				continue
			}
			if n.audible.has(c, winner) {
				continue
			}
			if w.ProtoRNG.Bool(n.HiddenFireProb) {
				firing = append(firing, c)
			}
		}
		n.firingBuf = firing
		for _, s := range firing {
			pkt := w.OldestNeeded(s, r)
			n.assigned[s] = true
			out = append(out, sim.Intent{From: s, To: r, Packet: pkt})
		}
	}
	n.intentBuf = out
	// assigned holds exactly the senders emitted above; clearing those
	// entries instead of the whole array keeps the reset proportional to
	// the slot's actual transmissions.
	for _, in := range out {
		n.assigned[in.From] = false
	}
	return out
}

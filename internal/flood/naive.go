package flood

import (
	"sort"

	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

// Naive is the traditional flat flooding baseline: every node that holds a
// packet a waking neighbor needs contends to unicast it. Contention is
// resolved with id-based ranks rotated per slot (nodes have no link-quality
// knowledge), carrier sense over the physical audibility graph, and the
// same hidden-terminal behaviour as DBAO — but no overhearing and no
// structure. It exhibits the poor low-duty-cycle performance that motivates
// the paper (Section I).
type Naive struct {
	// HiddenFireProb mirrors DBAO's hidden-candidate behaviour.
	HiddenFireProb float64

	assigned []bool
	audible  [][]uint64
}

// NewNaive returns a fresh Naive instance.
func NewNaive() *Naive { return &Naive{} }

// Name implements sim.Protocol.
func (n *Naive) Name() string { return "Naive" }

// Reset implements sim.Protocol.
func (n *Naive) Reset(w *sim.World) {
	n.assigned = make([]bool, w.Graph.N())
	if n.HiddenFireProb <= 0 {
		n.HiddenFireProb = 0.5
	}
	n.audible = carrierSenseBitset(w.Graph, 1.2)
}

// CollisionsApply implements sim.Protocol.
func (n *Naive) CollisionsApply() bool { return true }

// Overhears implements sim.Protocol.
func (n *Naive) Overhears() bool { return false }

// Intents implements sim.Protocol.
func (n *Naive) Intents(w *sim.World) []sim.Intent {
	for i := range n.assigned {
		n.assigned[i] = false
	}
	var out []sim.Intent
	for _, r := range w.AwakeList() {
		var cands []int
		for _, l := range w.Graph.Neighbors(r) {
			if !n.assigned[l.To] && w.OldestNeeded(l.To, r) >= 0 && !deferToReception(w, l.To) {
				cands = append(cands, l.To)
			}
		}
		if len(cands) == 0 {
			continue
		}
		sort.Ints(cands)
		// Rotate the rank origin by slot: no quality knowledge, just a
		// deterministic TDMA-ish rotation every node can compute.
		rot := int(w.Now()) % len(cands)
		winner := cands[rot]
		firing := []int{winner}
		for i, c := range cands {
			if i == rot {
				continue
			}
			if topology.BitsetHas(n.audible[c], winner) {
				continue
			}
			if w.ProtoRNG.Bool(n.HiddenFireProb) {
				firing = append(firing, c)
			}
		}
		for _, s := range firing {
			pkt := w.OldestNeeded(s, r)
			n.assigned[s] = true
			out = append(out, sim.Intent{From: s, To: r, Packet: pkt})
		}
	}
	return out
}

package flood

import (
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

// OPT is the oracle flooding scheme of Section V-A: at every active slot
// each sensor receives a needed packet from the neighbor with the best link
// quality that holds one, and no collisions ever occur. Its delay is the
// globally optimal flooding performance the practical protocols are
// measured against.
type OPT struct {
	// DisableOverhearing restricts the oracle to pure unicast receptions.
	// Used by validation tests that compare the simulator against the
	// Galton-Watson doubling model, where each node receives via exactly
	// one unicast per slot.
	DisableOverhearing bool

	assigned  []bool
	csr       *topology.CSR
	intentBuf []sim.Intent
	sel       selScratch
}

// NewOPT returns a fresh OPT instance.
func NewOPT() *OPT { return &OPT{} }

// Name implements sim.Protocol.
func (o *OPT) Name() string { return "OPT" }

// Reset implements sim.Protocol.
func (o *OPT) Reset(w *sim.World) {
	o.assigned = make([]bool, w.Graph.N())
	o.csr = w.Graph.CSR()
}

// CollisionsApply implements sim.Protocol: the oracle never collides.
func (o *OPT) CollisionsApply() bool { return false }

// Overhears implements sim.Protocol: the oracle exploits every physically
// available reception, including free overheard packets — otherwise a
// practical protocol with overhearing (DBAO) could beat the "optimal"
// scheme, contradicting its definition.
func (o *OPT) Overhears() bool { return !o.DisableOverhearing }

// Intents implements sim.Protocol: for each awake receiver, its
// highest-PRR neighbor holding a needed packet transmits the FCFS packet.
// A sender serves one receiver per slot (semi-duplex); contended receivers
// fall back to their next-best holder.
func (o *OPT) Intents(w *sim.World) []sim.Intent {
	out := o.intentBuf[:0]
	for _, r := range w.AwakeList() {
		if !w.NeedsAnything(r) {
			// No neighbor can hold anything r lacks, so the selection scan
			// below would elect nobody (and draw no RNG) — skip it.
			continue
		}
		bestS, bestPRR := -1, 0.0
		row, prrs := o.csr.Row(r)
		for i, s32 := range row {
			s := int(s32)
			if o.assigned[s] {
				continue
			}
			if prrs[i] > bestPRR || (prrs[i] == bestPRR && bestS >= 0 && s < bestS) {
				if w.AnyNeeded(s, r) && !deferToReception(w, s) {
					bestS, bestPRR = s, prrs[i]
				}
			}
		}
		if bestS < 0 {
			continue
		}
		o.assigned[bestS] = true
		out = append(out, sim.Intent{From: bestS, To: r, Packet: w.OldestNeeded(bestS, r)})
	}
	o.intentBuf = out
	// assigned holds exactly the senders emitted above; clearing those
	// entries instead of the whole array keeps the reset proportional to
	// the slot's actual transmissions.
	for _, in := range out {
		o.assigned[in.From] = false
	}
	return out
}

package flood

import (
	"sort"

	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

// DBAO reconstructs the Deterministic Back-off Assignment + Overhearing
// protocol (Li & Li, WASA'11) the paper uses to approximate OPT in
// practice. When a receiver wakes, every neighbor holding a packet it needs
// is a candidate sender. Candidates are ranked deterministically by link
// quality (the back-off assignment); the best-ranked candidate transmits
// first, and every candidate that can sense it defers.
//
// Carrier sensing uses the physical carrier-sense range, which exceeds the
// communication range (CSRangeFactor × the longest usable link); with node
// positions available the audibility graph is distance-based, otherwise it
// falls back to the communication graph. Candidates hidden from the winner
// cannot sense the ongoing transmission and fire with probability
// HiddenFireProb — sub-slot backoff jitter means a hidden candidate
// sometimes starts late enough to miss the receiver — and simultaneous
// transmissions collide at the receiver. This hidden-terminal residue is
// exactly the DBAO-to-OPT gap the paper measures. Overhearing lets silent
// awake neighbors of a successful sender pick the packet up for free.
type DBAO struct {
	// CSRangeFactor scales the carrier-sense range relative to the longest
	// link distance in the topology. The default 1.2 reproduces the
	// OPT-to-DBAO delay gap the paper measures (~1.6x at 5% duty); larger
	// factors suppress hidden terminals entirely and DBAO converges to OPT.
	CSRangeFactor float64
	// HiddenFireProb is the per-slot probability that a hidden candidate
	// transmits over the winner (default 0.5).
	HiddenFireProb float64
	// DisableOverhearing turns the overhearing mechanism off (ablation).
	DisableOverhearing bool

	assigned []bool
	audible  [][]uint64 // carrier-sense audibility bitset
}

// NewDBAO returns a fresh DBAO instance with default parameters.
func NewDBAO() *DBAO { return &DBAO{} }

// Name implements sim.Protocol.
func (d *DBAO) Name() string { return "DBAO" }

// Reset implements sim.Protocol.
func (d *DBAO) Reset(w *sim.World) {
	d.assigned = make([]bool, w.Graph.N())
	if d.CSRangeFactor <= 0 {
		d.CSRangeFactor = 1.2
	}
	if d.HiddenFireProb <= 0 {
		d.HiddenFireProb = 0.5
	}
	d.audible = carrierSenseBitset(w.Graph, d.CSRangeFactor)
}

// carrierSenseBitset returns the audibility matrix: with positions, nodes
// within csFactor × (longest link distance) of each other; without
// positions, the communication adjacency itself.
func carrierSenseBitset(g *topology.Graph, csFactor float64) [][]uint64 {
	if g.Pos == nil {
		return g.AdjacencyBitset()
	}
	maxLink := 0.0
	for _, e := range g.Links() {
		if d := g.Pos[e.U].Dist(g.Pos[e.V]); d > maxLink {
			maxLink = d
		}
	}
	csRange := csFactor * maxLink
	n := g.N()
	words := (n + 63) / 64
	b := make([][]uint64, n)
	backing := make([]uint64, n*words)
	for u := range b {
		b[u] = backing[u*words : (u+1)*words]
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if g.Pos[u].Dist(g.Pos[v]) <= csRange {
				b[u][v/64] |= 1 << (uint(v) % 64)
				b[v][u/64] |= 1 << (uint(u) % 64)
			}
		}
	}
	return b
}

// CollisionsApply implements sim.Protocol: hidden terminals collide.
func (d *DBAO) CollisionsApply() bool { return true }

// Overhears implements sim.Protocol.
func (d *DBAO) Overhears() bool { return !d.DisableOverhearing }

// Intents implements sim.Protocol.
func (d *DBAO) Intents(w *sim.World) []sim.Intent {
	for i := range d.assigned {
		d.assigned[i] = false
	}
	var out []sim.Intent
	type cand struct {
		node int
		prr  float64
	}
	for _, r := range w.AwakeList() {
		var cands []cand
		for _, l := range w.Graph.Neighbors(r) {
			if d.assigned[l.To] {
				continue
			}
			if w.OldestNeeded(l.To, r) >= 0 && !deferToReception(w, l.To) {
				cands = append(cands, cand{node: l.To, prr: l.PRR})
			}
		}
		if len(cands) == 0 {
			continue
		}
		// Deterministic back-off ranks: best link quality first, node id
		// breaking ties — every candidate computes the same order locally.
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].prr != cands[j].prr {
				return cands[i].prr > cands[j].prr
			}
			return cands[i].node < cands[j].node
		})
		winner := cands[0].node
		firing := []int{winner}
		for _, c := range cands[1:] {
			if topology.BitsetHas(d.audible[c.node], winner) {
				continue // carrier sense: hears the winner's earlier start
			}
			if w.ProtoRNG.Bool(d.HiddenFireProb) {
				firing = append(firing, c.node)
			}
		}
		for _, s := range firing {
			pkt := w.OldestNeeded(s, r)
			d.assigned[s] = true
			out = append(out, sim.Intent{From: s, To: r, Packet: pkt})
		}
	}
	return out
}

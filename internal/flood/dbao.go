package flood

import (
	"slices"

	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

// DBAO reconstructs the Deterministic Back-off Assignment + Overhearing
// protocol (Li & Li, WASA'11) the paper uses to approximate OPT in
// practice. When a receiver wakes, every neighbor holding a packet it needs
// is a candidate sender. Candidates are ranked deterministically by link
// quality (the back-off assignment); the best-ranked candidate transmits
// first, and every candidate that can sense it defers.
//
// Carrier sensing uses the physical carrier-sense range, which exceeds the
// communication range (CSRangeFactor × the longest usable link); with node
// positions available the audibility graph is distance-based, otherwise it
// falls back to the communication graph. Candidates hidden from the winner
// cannot sense the ongoing transmission and fire with probability
// HiddenFireProb — sub-slot backoff jitter means a hidden candidate
// sometimes starts late enough to miss the receiver — and simultaneous
// transmissions collide at the receiver. This hidden-terminal residue is
// exactly the DBAO-to-OPT gap the paper measures. Overhearing lets silent
// awake neighbors of a successful sender pick the packet up for free.
type DBAO struct {
	// CSRangeFactor scales the carrier-sense range relative to the longest
	// link distance in the topology. The default 1.2 reproduces the
	// OPT-to-DBAO delay gap the paper measures (~1.6x at 5% duty); larger
	// factors suppress hidden terminals entirely and DBAO converges to OPT.
	CSRangeFactor float64
	// HiddenFireProb is the per-slot probability that a hidden candidate
	// transmits over the winner (default 0.5).
	HiddenFireProb float64
	// DisableOverhearing turns the overhearing mechanism off (ablation).
	DisableOverhearing bool

	assigned  []bool
	audible   *audibility // carrier-sense audibility structure
	csr       *topology.CSR
	intentBuf []sim.Intent
	candBuf   []dbaoCand
	firingBuf []dbaoCand
	sel       selScratch

	// csGraph / csFactor memoize the audibility structure: graphs are
	// immutable by convention, so repeated runs over the same topology
	// (sweeps, the batch runner) skip the rebuild.
	csGraph  *topology.Graph
	csFactor float64
}

// dbaoCand is one back-off candidate: a neighbor holding a packet the
// waking receiver needs, with the link quality that ranks it. The FCFS
// packet it would send is computed only for the candidates that actually
// fire (the world is frozen during Intents, so deferring the OldestNeeded
// scan is exact).
type dbaoCand struct {
	node int
	prr  float64
}

// dbaoRank orders candidates by the deterministic back-off rank: best link
// quality first, node id breaking ties.
func dbaoRank(a, b dbaoCand) int {
	if a.prr != b.prr {
		if a.prr > b.prr {
			return -1
		}
		return 1
	}
	return a.node - b.node
}

// NewDBAO returns a fresh DBAO instance with default parameters.
func NewDBAO() *DBAO { return &DBAO{} }

// Name implements sim.Protocol.
func (d *DBAO) Name() string { return "DBAO" }

// Reset implements sim.Protocol.
func (d *DBAO) Reset(w *sim.World) {
	d.assigned = make([]bool, w.Graph.N())
	if d.CSRangeFactor <= 0 {
		d.CSRangeFactor = 1.2
	}
	if d.HiddenFireProb <= 0 {
		d.HiddenFireProb = 0.5
	}
	if d.csGraph != w.Graph || d.csFactor != d.CSRangeFactor {
		d.audible = buildAudibility(w.Graph, d.CSRangeFactor)
		d.csGraph, d.csFactor = w.Graph, d.CSRangeFactor
	}
	d.csr = w.Graph.CSR()
}

// carrierSenseBitset returns the dense audibility matrix: with positions,
// nodes within csFactor × (longest link distance) of each other; without
// positions, the communication adjacency itself. The O(n²) pair loop
// compares squared distances to avoid a Hypot per pair via audiblePair's
// banded predicate; buildAudibility holds the size cutoff above which the
// sparse spatial-hash form replaces this matrix.
func carrierSenseBitset(g *topology.Graph, csFactor float64) [][]uint64 {
	if g.Pos == nil {
		return g.AdjacencyBitset()
	}
	csRange := carrierSenseRange(g, csFactor)
	cs2 := csRange * csRange
	lo := cs2 * (1 - 1e-9)
	hi := cs2 * (1 + 1e-9)
	n := g.N()
	words := (n + 63) / 64
	b := make([][]uint64, n)
	backing := make([]uint64, n*words)
	for u := range b {
		b[u] = backing[u*words : (u+1)*words]
	}
	for u := 0; u < n; u++ {
		pu := g.Pos[u]
		for v := u + 1; v < n; v++ {
			if audiblePair(pu, g.Pos[v], lo, hi, csRange) {
				b[u][v/64] |= 1 << (uint(v) % 64)
				b[v][u/64] |= 1 << (uint(u) % 64)
			}
		}
	}
	return b
}

// CollisionsApply implements sim.Protocol: hidden terminals collide.
func (d *DBAO) CollisionsApply() bool { return true }

// Overhears implements sim.Protocol.
func (d *DBAO) Overhears() bool { return !d.DisableOverhearing }

// Intents implements sim.Protocol.
func (d *DBAO) Intents(w *sim.World) []sim.Intent {
	out := d.intentBuf[:0]
	for _, r := range w.AwakeList() {
		if !w.NeedsAnything(r) {
			// No neighbor can hold anything r lacks, so the candidate scan
			// below would admit nobody (and draw no RNG) — skip it.
			continue
		}
		cands := d.candBuf[:0]
		row, prrs := d.csr.Row(r)
		for i, s32 := range row {
			s := int(s32)
			if d.assigned[s] {
				continue
			}
			if w.AnyNeeded(s, r) && !deferToReception(w, s) {
				cands = append(cands, dbaoCand{node: s, prr: prrs[i]})
			}
		}
		d.candBuf = cands
		if len(cands) == 0 {
			continue
		}
		// Deterministic back-off ranks: best link quality first, node id
		// breaking ties — every candidate computes the same order locally.
		// Only the rank-ordering of the *hidden* candidates is observable
		// (their fire/defer draws happen in rank order), so find the winner
		// with a linear max and sort just the handful of candidates that
		// cannot hear it, rather than the whole candidate list.
		wi := 0
		for i := 1; i < len(cands); i++ {
			if dbaoRank(cands[i], cands[wi]) < 0 {
				wi = i
			}
		}
		winner := cands[wi].node
		hidden := d.firingBuf[:0]
		for i, c := range cands {
			if i == wi || d.audible.has(c.node, winner) {
				continue // carrier sense: hears the winner's earlier start
			}
			hidden = append(hidden, c)
		}
		d.firingBuf = hidden
		slices.SortFunc(hidden, dbaoRank)
		d.assigned[winner] = true
		out = append(out, sim.Intent{From: winner, To: r, Packet: w.OldestNeeded(winner, r)})
		for _, c := range hidden {
			if w.ProtoRNG.Bool(d.HiddenFireProb) {
				d.assigned[c.node] = true
				out = append(out, sim.Intent{From: c.node, To: r, Packet: w.OldestNeeded(c.node, r)})
			}
		}
	}
	d.intentBuf = out
	// assigned holds exactly the senders emitted above; clearing those
	// entries instead of the whole array keeps the reset proportional to
	// the slot's actual transmissions.
	for _, in := range out {
		d.assigned[in.From] = false
	}
	return out
}

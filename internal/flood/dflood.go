package flood

import (
	"ldcflood/internal/rngutil"
	"ldcflood/internal/sim"
	"ldcflood/internal/telemetry"
	"ldcflood/internal/topology"
)

// DFlood adapts dflood — duplicate-suppression flooding with adaptive
// backoff (Otnes & Haavik, OCEANS'13; the SNIPPETS.md gr-dflood exemplar)
// — to the engine's receiver-initiated slot model, with the exemplar's
// timing constants: Tmin 5, Tmax 65, Ndupl 2 (slots standing in for the
// exemplar's seconds).
//
// Per held packet a node schedules a forwarding slot: its reception slot
// plus Tmin, plus a uniform jitter in [0, Tmax-Tmin), plus a
// deterministic backoff that doubles with every transmission attempt
// already made — the adaptive-backoff rule that spaces out repeats of the
// same packet. Duplicate suppression is a liveness-preserving delay
// rather than a permanent drop: once Ndupl or more of the node's
// neighbors also hold the packet, each further duplicate postpones the
// forwarding slot by another Tmax. The penalty is bounded by the node's
// degree, so a packet some receiver still needs is always forwarded
// eventually — a permanent drop would deadlock the receiver-initiated
// engine. Penalty-blocked firings are tallied per node (FloodCounters,
// flood.dflood.suppressed).
//
// Like Trickle, every timing quantity is a pure function of the pre-slot
// world state and a keyed stream captured at Reset (jitter is keyed by
// (node, packet, attempt)); the attempt counters advance only at emit
// time in the serial phases. No engine hook is needed and the schedule is
// bit-identical across the serial, sharded, reference and compact paths.
type DFlood struct {
	// Tmin and Tmax bound the per-packet forwarding delay in slots. Zero
	// selects the exemplar defaults (5 and 65).
	Tmin, Tmax int64
	// Ndupl is the duplicate threshold: with at least Ndupl neighboring
	// holders, each additional holder delays the forwarding slot by Tmax.
	// Zero selects the default (2); negative disables the penalty.
	Ndupl int
	// MaxDoublings caps the per-attempt backoff doubling; past it the
	// backoff grows linearly at Tmin << MaxDoublings per attempt. Zero
	// selects the default (6).
	MaxDoublings int
	// DisableOverhearing restricts DFlood to pure unicast receptions
	// (used by the serial-vs-planner metamorphic tests).
	DisableOverhearing bool

	m         int // packets per run (w.M), fixed at Reset
	csr       *topology.CSR
	timer     rngutil.Stream
	assigned  []bool
	attempts  []int32 // attempts[s*m+p]: transmissions of p by s so far
	intentBuf []sim.Intent
	sel       selScratch
	supp      suppCounters
}

// NewDFlood returns a DFlood instance with the exemplar's parameters
// (Tmin 5, Tmax 65, Ndupl 2).
func NewDFlood() *DFlood { return &DFlood{} }

// Name implements sim.Protocol.
func (d *DFlood) Name() string { return "DFlood" }

// Reset implements sim.Protocol.
func (d *DFlood) Reset(w *sim.World) {
	if d.Tmin <= 0 {
		d.Tmin = 5
	}
	if d.Tmax <= d.Tmin {
		d.Tmax = 65
	}
	if d.Ndupl == 0 {
		d.Ndupl = 2
	}
	if d.MaxDoublings <= 0 {
		d.MaxDoublings = 6
	}
	d.m = w.M
	d.csr = w.Graph.CSR()
	d.timer = *w.ProtoRNG.SubName("dflood.timer")
	d.assigned = make([]bool, w.Graph.N())
	d.attempts = make([]int32, w.Graph.N()*w.M)
	d.supp.reset(w.Graph.N())
}

// CollisionsApply implements sim.Protocol.
func (d *DFlood) CollisionsApply() bool { return true }

// Overhears implements sim.Protocol: overheard duplicates are what the
// suppression rule feeds on.
func (d *DFlood) Overhears() bool { return !d.DisableOverhearing }

// Instrument attaches telemetry: flood.messages counts emitted intents,
// flood.dflood.suppressed counts duplicate-penalty-blocked firings.
// Attaching never affects results (see docs/OBSERVABILITY.md).
func (d *DFlood) Instrument(reg *telemetry.Registry) {
	d.supp.instrument(reg, "flood.dflood.suppressed")
}

// FloodCounters returns the run's emitted-message and suppressed-firing
// totals.
func (d *DFlood) FloodCounters() (messages, suppressed int64) {
	return d.supp.messages, d.supp.suppressed
}

// SuppressedPerNode returns the per-node suppressed-firing counts. The
// slice is owned by the protocol; do not modify.
func (d *DFlood) SuppressedPerNode() []int64 { return d.supp.perNode }

// backoff returns the deterministic backoff accumulated over a prior
// attempts: Tmin doubling per attempt, capped at Tmin << MaxDoublings,
// in closed form.
func (d *DFlood) backoff(a int32) int64 {
	if a <= 0 {
		return 0
	}
	da := int64(a)
	cap64 := int64(d.MaxDoublings)
	if da <= cap64 {
		return d.Tmin * ((1 << da) - 1)
	}
	return d.Tmin * (((1 << cap64) - 1) + (da-cap64)<<cap64)
}

// fireSlots returns the base and penalized forwarding slots for packet p
// at node s: reception slot + Tmin + keyed jitter + attempt backoff, and
// the same plus the duplicate penalty (one Tmax per neighboring holder
// at or past the Ndupl threshold). Pure; callers guarantee s holds p.
func (d *DFlood) fireSlots(w *sim.World, s, p int) (base, required int64) {
	a := d.attempts[s*d.m+p]
	u := d.timer.PairFloat64(uint64(s)*uint64(d.m)+uint64(p), uint64(a))
	base = w.RecvTime(p, s) + d.Tmin + int64(u*float64(d.Tmax-d.Tmin)) + d.backoff(a)
	required = base
	if d.Ndupl >= 0 {
		holders := 0
		row, _ := d.csr.Row(s)
		for _, n32 := range row {
			if w.Has(p, int(n32)) {
				holders++
			}
		}
		if holders >= d.Ndupl {
			required += int64(holders-d.Ndupl+1) * d.Tmax
		}
	}
	return base, required
}

// pairChoice evaluates what sender s offers receiver r this slot: among
// the packets s holds and r lacks whose base forwarding slot has passed,
// the one with the smallest penalized slot (ties to the smaller packet
// index) if that slot has passed too — otherwise the pair is
// duplicate-blocked. It returns the packet (-1 when nothing is due), the
// penalized slot of the choice, and whether the pair is blocked.
func (d *DFlood) pairChoice(w *sim.World, s, r int, now int64) (pkt int, required int64, blocked bool) {
	pkt = -1
	blockedPkt := -1
	for p := 0; p < w.Injected(); p++ {
		if !w.Has(p, s) || w.Has(p, r) {
			continue
		}
		base, req := d.fireSlots(w, s, p)
		if now < base {
			continue // not yet due at all
		}
		if now < req {
			if blockedPkt < 0 {
				blockedPkt = p
			}
			continue // due, but duplicate-penalty-blocked
		}
		if pkt < 0 || req < required {
			pkt, required = p, req
		}
	}
	if pkt < 0 && blockedPkt >= 0 {
		return blockedPkt, 0, true
	}
	return pkt, required, false
}

// Intents implements sim.Protocol: for each awake receiver, the due
// neighbor with the earliest forwarding slot (ties to the first in row
// order) transmits its chosen packet; duplicate-blocked pairs are tallied
// but stay silent. The full row is scanned so the suppression tally
// matches the planner path exactly.
func (d *DFlood) Intents(w *sim.World) []sim.Intent {
	out := d.intentBuf[:0]
	now := w.Now()
	for _, r := range w.AwakeList() {
		if !w.NeedsAnything(r) {
			continue
		}
		row, _ := d.csr.Row(r)
		best, bestPkt := -1, 0
		var bestReq int64
		for _, s32 := range row {
			s := int(s32)
			if !w.AnyNeeded(s, r) {
				continue
			}
			pkt, req, blocked := d.pairChoice(w, s, r, now)
			if pkt < 0 {
				continue
			}
			if blocked {
				d.supp.note(s32)
				continue
			}
			if d.assigned[s] {
				continue
			}
			if deferToReception(w, s) {
				continue
			}
			if best < 0 || req < bestReq {
				best, bestReq, bestPkt = s, req, pkt
			}
		}
		if best < 0 {
			continue
		}
		d.assigned[best] = true
		d.attempts[best*d.m+bestPkt]++
		d.supp.message()
		out = append(out, sim.Intent{From: best, To: r, Packet: bestPkt})
	}
	d.intentBuf = out
	for _, in := range out {
		d.assigned[in.From] = false
	}
	d.supp.endSlot()
	return out
}

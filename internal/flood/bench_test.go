package flood

import (
	"testing"

	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

// benchRun floods M packets on the GreenOrbs trace at the given period.
func benchRun(b *testing.B, p sim.Protocol, period, m int) {
	b.Helper()
	g := topology.GreenOrbs(1)
	scheds := uniform(g.N(), period, 7)
	b.ReportAllocs()
	b.ResetTimer()
	var delay float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Graph: g, Schedules: scheds, Protocol: p,
			M: m, Coverage: 0.99, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		delay += res.MeanDelay()
	}
	b.ReportMetric(delay/float64(b.N), "mean-delay-slots")
}

func BenchmarkOPTGreenOrbs(b *testing.B)   { benchRun(b, NewOPT(), 20, 10) }
func BenchmarkDBAOGreenOrbs(b *testing.B)  { benchRun(b, NewDBAO(), 20, 10) }
func BenchmarkOFGreenOrbs(b *testing.B)    { benchRun(b, NewOF(), 20, 10) }
func BenchmarkNaiveGreenOrbs(b *testing.B) { benchRun(b, NewNaive(), 20, 10) }

// BenchmarkSlotThroughput measures raw engine slots/second with the
// cheapest protocol, isolating per-slot overhead.
func BenchmarkSlotThroughput(b *testing.B) {
	g := topology.GreenOrbs(1)
	scheds := uniform(g.N(), 50, 7)
	b.ReportAllocs()
	b.ResetTimer()
	var slots int64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Graph: g, Schedules: scheds, Protocol: NewOPT(),
			M: 20, Coverage: 0.99, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		slots += res.TotalSlots
	}
	b.ReportMetric(float64(slots)/float64(b.N), "slots-per-run")
}

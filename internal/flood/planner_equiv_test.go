package flood

// Metamorphic certification of the ShardPlanner implementations against
// the serial Intents scans they replace.
//
// The sharded contract deliberately frees the planner path from
// reproducing the serial RNG stream, so the two paths cannot be compared
// on arbitrary configurations. But both randomness conventions agree on
// the degenerate probabilities: Bool(p) and the stored-uniform U < p both
// yield false at p <= 0 and true at p >= 1, with no stream perturbation.
// Zeroing deferProb and pushing every contention probability to a
// degenerate end therefore lands serial and sharded execution on a common
// deterministic subspace where the planner's candidate scan + selection
// must reproduce the serial scan decision-for-decision — a bit-for-bit
// differential test of all the planner logic except the draw sites
// themselves (which the worker-count grid certifies separately).
//
// Overhearing protocols are restricted: the serial engine delivers
// overheard packets success-outer (an overhearer adjacent to several
// successful senders can receive several packets) while the sharded
// engine resolves one delivery per overhearer, so OPT and DBAO run with
// DisableOverhearing and Flash (which always overhears) is exercised only
// by the worker-count grid.

import (
	"bytes"
	"reflect"
	"testing"

	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
	"ldcflood/internal/tracelog"
)

// runDeterministic executes one protocol instance on the deterministic
// subspace with the given worker count, returning result and trace bytes.
func runDeterministic(t *testing.T, p sim.Protocol, workers int, compact bool) (*sim.Result, []byte) {
	t.Helper()
	g := topology.Grid(6, 6, 1.0)
	var buf bytes.Buffer
	cfg := sim.Config{
		Graph:            g,
		Schedules:        uniform(g.N(), 20, 42),
		M:                3,
		Coverage:         0.99,
		Seed:             99,
		MaxSlots:         200000,
		RecordReceptions: true,
		Protocol:         p,
		Observer:         tracelog.NewLogger(&buf),
		Workers:          workers,
		CompactTime:      compact,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatalf("%s workers=%d: %v", p.Name(), workers, err)
	}
	if err := cfg.Observer.(*tracelog.Logger).Flush(); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestPlannerMatchesSerialOnDeterministicSubspace pins every planner's
// selection logic to the serial scan it parallelizes: with deferProb
// zeroed and all contention probabilities degenerate, Workers=4 (planner
// path) must reproduce Workers=0 (serial Intents path) bit for bit —
// results and traces — on both time paths.
func TestPlannerMatchesSerialOnDeterministicSubspace(t *testing.T) {
	restore := setDeferProb(0)
	defer restore()

	cases := []struct {
		name string
		mk   func() sim.Protocol
	}{
		{"opt", func() sim.Protocol { return &OPT{DisableOverhearing: true} }},
		{"dbao", func() sim.Protocol { return &DBAO{DisableOverhearing: true, HiddenFireProb: 1} }},
		{"naive", func() sim.Protocol { return &Naive{HiddenFireProb: 1} }},
		{"of-tree-only", func() sim.Protocol { return &OF{DisableOpportunistic: true} }},
		// Aggressiveness large enough that forwardProbability clamps to 1
		// for every candidate density, making opportunistic firing certain.
		{"of-max-aggressive", func() sim.Protocol { return &OF{Aggressiveness: 1e12} }},
		// The timer protocols' only sequential draw is defer-to-reception;
		// with it zeroed their keyed timers make serial and planner paths
		// identical with no further parameter degeneration.
		{"trickle", func() sim.Protocol { return &Trickle{DisableOverhearing: true} }},
		{"dflood", func() sim.Protocol { return &DFlood{DisableOverhearing: true} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial, serialTrace := runDeterministic(t, tc.mk(), 0, false)
			for _, compact := range []bool{false, true} {
				sharded, shardedTrace := runDeterministic(t, tc.mk(), 4, compact)
				if !reflect.DeepEqual(serial, sharded) {
					t.Errorf("compact=%v: planner path diverged from serial path", compact)
				}
				if !bytes.Equal(serialTrace, shardedTrace) {
					t.Errorf("compact=%v: planner trace diverged from serial trace", compact)
				}
			}
		})
	}
}

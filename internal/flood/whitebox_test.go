package flood

// White-box tests of protocol internals that the behavioural tests reach
// only statistically.

import (
	"testing"

	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

// worldFor builds a minimal running world so internals that need a
// *sim.World can be exercised: a paused simulation is emulated by invoking
// the protocol's Reset through a one-slot run.
func worldFor(t *testing.T, g *topology.Graph, p sim.Protocol) {
	t.Helper()
	scheds := make([]*schedule.Schedule, g.N())
	for i := range scheds {
		scheds[i] = schedule.AlwaysOn()
	}
	if _, err := sim.Run(sim.Config{
		Graph: g, Schedules: scheds, Protocol: p,
		M: 1, Coverage: 1, Seed: 1, MaxSlots: 200,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCarrierSenseBitsetPositionBased(t *testing.T) {
	// Three collinear nodes 30m apart with a max link of 30m: at factor
	// 1.0 the ends (60m apart) are hidden from each other, at 2.5 audible.
	g := topology.New(3)
	g.Pos = []topology.Point{{X: 0}, {X: 30}, {X: 60}}
	g.AddLink(0, 1, 0.9)
	g.AddLink(1, 2, 0.9)
	g.SortNeighbors()
	tight := carrierSenseBitset(g, 1.0)
	if topology.BitsetHas(tight[0], 2) {
		t.Fatal("factor 1.0: ends should be hidden")
	}
	if !topology.BitsetHas(tight[0], 1) || !topology.BitsetHas(tight[1], 2) {
		t.Fatal("factor 1.0: adjacent nodes must be audible")
	}
	wide := carrierSenseBitset(g, 2.5)
	if !topology.BitsetHas(wide[0], 2) {
		t.Fatal("factor 2.5: ends should be audible")
	}
}

func TestCarrierSenseBitsetFallsBackToAdjacency(t *testing.T) {
	g := topology.New(3)
	g.AddLink(0, 1, 0.9)
	g.AddLink(1, 2, 0.9)
	g.SortNeighbors()
	// No positions: audibility == adjacency.
	b := carrierSenseBitset(g, 1.0)
	if !topology.BitsetHas(b[0], 1) || topology.BitsetHas(b[0], 2) {
		t.Fatal("fallback adjacency wrong")
	}
}

func TestOFForwardProbabilityShape(t *testing.T) {
	// Build an OF over a tiny world via a real run, then probe the
	// probability rule directly.
	g := topology.Line(4, 0.8)
	of := NewOF()
	worldFor(t, g, of)

	// Construct a fresh world by resetting on a new run-independent OF; we
	// only need expDelay populated, which Reset provides.
	// Probe: overdue packets double the probability; a serving parent
	// quarters it; density divides it.
	base := of.forwardProbability(probeWorld(t, g), 3, 0, 0.8, false, 1)
	dense := of.forwardProbability(probeWorld(t, g), 3, 0, 0.8, false, 4)
	if dense >= base {
		t.Fatalf("density did not dilute probability: %v vs %v", dense, base)
	}
	served := of.forwardProbability(probeWorld(t, g), 3, 0, 0.8, true, 1)
	if served >= base {
		t.Fatalf("serving parent did not suppress: %v vs %v", served, base)
	}
	if base > 1 || base <= 0 {
		t.Fatalf("probability out of range: %v", base)
	}
}

// probeWorld returns a live world whose Now() is 0 — obtained by observing
// Reset's world through a FuncProtocol shim.
func probeWorld(t *testing.T, g *topology.Graph) *sim.World {
	t.Helper()
	var captured *sim.World
	p := &sim.FuncProtocol{
		ResetFunc: func(w *sim.World) { captured = w },
	}
	scheds := make([]*schedule.Schedule, g.N())
	for i := range scheds {
		scheds[i] = schedule.AlwaysOn()
	}
	if _, err := sim.Run(sim.Config{
		Graph: g, Schedules: scheds, Protocol: p,
		M: 1, Coverage: 1, Seed: 1, MaxSlots: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if captured == nil {
		t.Fatal("world not captured")
	}
	return captured
}

func TestDeferToReceptionRules(t *testing.T) {
	g := topology.Line(3, 1)
	var captured *sim.World
	p := &sim.FuncProtocol{
		ResetFunc: func(w *sim.World) { captured = w },
	}
	scheds := []*schedule.Schedule{
		schedule.AlwaysOn(),
		schedule.AlwaysOn(),
		schedule.NewSingleSlot(10, 9), // node 2 dormant at slot 0
	}
	if _, err := sim.Run(sim.Config{
		Graph: g, Schedules: scheds, Protocol: p,
		M: 1, Coverage: 1, Seed: 1, MaxSlots: 1,
	}); err != nil {
		t.Fatal(err)
	}
	// The source holds everything, so it never defers.
	for i := 0; i < 100; i++ {
		if deferToReception(captured, 0) {
			t.Fatal("source deferred despite needing nothing")
		}
	}
	// A dormant node never defers (it cannot receive anyway)... node 2 is
	// dormant in the captured slot.
	for i := 0; i < 100; i++ {
		if deferToReception(captured, 2) {
			t.Fatal("dormant node deferred")
		}
	}
	// An awake, needy node defers sometimes but not always.
	deferred, fired := 0, 0
	for i := 0; i < 400; i++ {
		if deferToReception(captured, 1) {
			deferred++
		} else {
			fired++
		}
	}
	if deferred == 0 || fired == 0 {
		t.Fatalf("defer rule degenerate: %d/%d", deferred, fired)
	}
	if frac := float64(deferred) / 400; frac < 0.1 || frac > 0.45 {
		t.Fatalf("defer fraction %v far from 0.25", frac)
	}
}

func TestBenchParamSweepOFAggressiveness(t *testing.T) {
	// Parameter sanity rather than a benchmark: extreme aggressiveness
	// must not break completion.
	g := topology.GreenOrbs(8)
	for _, a := range []float64{0.05, 0.25, 0.9} {
		of := &OF{Aggressiveness: a}
		res, err := sim.Run(sim.Config{
			Graph:     g,
			Schedules: schedule.AssignUniform(g.N(), 10, rngutil.New(5).SubName("schedule")),
			Protocol:  of,
			M:         3,
			Coverage:  0.99,
			Seed:      5,
			MaxSlots:  2_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("aggressiveness %v: incomplete", a)
		}
	}
}

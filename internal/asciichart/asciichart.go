// Package asciichart renders dependency-free line and bar charts in plain
// text so cmd/figures can draw every figure of the paper in a terminal.
package asciichart

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named data series of (x, y) points.
type Series struct {
	Name   string
	X, Y   []float64
	Marker byte
}

// Chart is a collection of series rendered over a shared axis.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 64)
	Height int // plot area rows (default 16)
	series []Series
}

// defaultMarkers cycles through distinguishable glyphs.
var defaultMarkers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Add appends a series; lengths of X and Y must match and be non-empty.
func (c *Chart) Add(name string, x, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("asciichart: series %q has %d x vs %d y", name, len(x), len(y))
	}
	if len(x) == 0 {
		return fmt.Errorf("asciichart: series %q is empty", name)
	}
	for i := range x {
		if math.IsNaN(x[i]) || math.IsNaN(y[i]) || math.IsInf(x[i], 0) || math.IsInf(y[i], 0) {
			return fmt.Errorf("asciichart: series %q has non-finite point at %d", name, i)
		}
	}
	m := defaultMarkers[len(c.series)%len(defaultMarkers)]
	c.series = append(c.series, Series{Name: name, X: x, Y: y, Marker: m})
	return nil
}

// MustAdd is Add that panics on error, for literal data.
func (c *Chart) MustAdd(name string, x, y []float64) {
	if err := c.Add(name, x, y); err != nil {
		panic(err)
	}
}

// Render draws the chart into a string.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 16
	}
	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		sb.WriteByte('\n')
	}
	if len(c.series) == 0 {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for _, s := range c.series {
		for i := range s.X {
			col := int((s.X[i] - minX) / (maxX - minX) * float64(w-1))
			row := h - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(h-1))
			if col >= 0 && col < w && row >= 0 && row < h {
				grid[row][col] = s.Marker
			}
		}
	}
	yTop := fmt.Sprintf("%10.1f", maxY)
	yBot := fmt.Sprintf("%10.1f", minY)
	for r := 0; r < h; r++ {
		switch r {
		case 0:
			sb.WriteString(yTop)
		case h - 1:
			sb.WriteString(yBot)
		default:
			sb.WriteString(strings.Repeat(" ", 10))
		}
		sb.WriteString(" |")
		sb.Write(grid[r])
		sb.WriteByte('\n')
	}
	sb.WriteString(strings.Repeat(" ", 10))
	sb.WriteString(" +")
	sb.WriteString(strings.Repeat("-", w))
	sb.WriteByte('\n')
	xAxis := fmt.Sprintf("%-*.1f%*.1f", w/2, minX, w/2+w%2, maxX)
	sb.WriteString(strings.Repeat(" ", 12))
	sb.WriteString(xAxis)
	sb.WriteByte('\n')
	if c.XLabel != "" || c.YLabel != "" {
		sb.WriteString(fmt.Sprintf("%12sx: %s   y: %s\n", "", c.XLabel, c.YLabel))
	}
	for _, s := range c.series {
		sb.WriteString(fmt.Sprintf("%12s%c %s\n", "", s.Marker, s.Name))
	}
	return sb.String()
}

// Table renders a simple aligned text table: headers plus rows of cells.
// Column widths adapt to content.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, hd := range headers {
		widths[i] = len(hd)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i < len(widths) {
				sb.WriteString(fmt.Sprintf("%-*s", widths[i], cell))
			} else {
				sb.WriteString(cell)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}

// Bar renders a horizontal bar chart of labeled values.
func Bar(title string, labels []string, values []float64, width int) (string, error) {
	if len(labels) != len(values) {
		return "", fmt.Errorf("asciichart: %d labels vs %d values", len(labels), len(values))
	}
	if width <= 0 {
		width = 50
	}
	maxV := 0.0
	maxLabel := 0
	for i, v := range values {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return "", fmt.Errorf("asciichart: bar value %v at %d", v, i)
		}
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	for i, v := range values {
		n := int(v / maxV * float64(width))
		sb.WriteString(fmt.Sprintf("%-*s |%s %.1f\n", maxLabel, labels[i], strings.Repeat("=", n), v))
	}
	return sb.String(), nil
}

package asciichart

import (
	"math"
	"strings"
	"testing"
)

func TestAddValidation(t *testing.T) {
	var c Chart
	if err := c.Add("bad", []float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := c.Add("empty", nil, nil); err == nil {
		t.Fatal("empty series accepted")
	}
	if err := c.Add("nan", []float64{1}, []float64{math.NaN()}); err == nil {
		t.Fatal("NaN accepted")
	}
	if err := c.Add("inf", []float64{math.Inf(1)}, []float64{1}); err == nil {
		t.Fatal("Inf accepted")
	}
	if err := c.Add("ok", []float64{1, 2}, []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
}

func TestMustAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAdd did not panic")
		}
	}()
	var c Chart
	c.MustAdd("bad", []float64{1}, nil)
}

func TestRenderContainsMarkersAndLegend(t *testing.T) {
	c := Chart{Title: "demo", XLabel: "t", YLabel: "v"}
	c.MustAdd("up", []float64{0, 1, 2}, []float64{0, 1, 2})
	c.MustAdd("down", []float64{0, 1, 2}, []float64{2, 1, 0})
	out := c.Render()
	for _, want := range []string{"demo", "up", "down", "*", "o", "x: t", "y: v"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderEmpty(t *testing.T) {
	var c Chart
	if !strings.Contains(c.Render(), "no data") {
		t.Fatal("empty chart should say so")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	var c Chart
	c.MustAdd("flat", []float64{1, 1, 1}, []float64{5, 5, 5})
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Fatalf("flat series not drawn:\n%s", out)
	}
}

func TestRenderDimensions(t *testing.T) {
	c := Chart{Width: 20, Height: 5}
	c.MustAdd("s", []float64{0, 10}, []float64{0, 10})
	lines := strings.Split(strings.TrimRight(c.Render(), "\n"), "\n")
	// 5 plot rows + axis + x labels + legend = 8.
	if len(lines) != 8 {
		t.Fatalf("got %d lines:\n%s", len(lines), c.Render())
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{
		{"1", "2"},
		{"333", "4"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "long-header") || !strings.Contains(lines[1], "---") {
		t.Fatalf("bad table:\n%s", out)
	}
	// Alignment: all lines equally long or shorter.
	if len(lines[2]) > len(lines[0])+2 {
		t.Fatalf("misaligned table:\n%s", out)
	}
}

func TestBar(t *testing.T) {
	out, err := Bar("title", []string{"x", "yy"}, []float64{1, 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "title") || !strings.Contains(out, "==========") {
		t.Fatalf("bad bar chart:\n%s", out)
	}
	if _, err := Bar("", []string{"x"}, []float64{1, 2}, 10); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Bar("", []string{"x"}, []float64{-1}, 10); err == nil {
		t.Fatal("negative value accepted")
	}
	if out, err := Bar("", []string{"z"}, []float64{0}, 10); err != nil || !strings.Contains(out, "z") {
		t.Fatal("all-zero bars should render")
	}
}

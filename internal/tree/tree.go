// Package tree builds the routing substrates the flooding protocols need:
// the energy-optimal (minimum expected-transmission-count) tree that
// Opportunistic Flooding forwards along, plain BFS hop trees, and the
// per-node delay-distribution estimates OF uses for its probabilistic
// forwarding decisions.
package tree

import (
	"container/heap"
	"fmt"
	"math"

	"ldcflood/internal/topology"
)

// Tree is a rooted spanning tree over a topology graph.
type Tree struct {
	Root int
	// Parent[v] is v's parent, or -1 for the root (and for nodes
	// unreachable from the root).
	Parent []int
	// Cost[v] is the accumulated path metric from the root to v
	// (+Inf if unreachable).
	Cost []float64
	// Depth[v] is the hop depth in the tree (-1 if unreachable).
	Depth []int
	// Children[v] lists v's tree children in ascending order.
	Children [][]int
}

// linkETX returns the expected number of transmissions to cross a link with
// the given PRR: 1/PRR (the standard ETX metric with symmetric ACKs folded
// into PRR, matching the paper's k-class abstraction k = 1/quality).
func linkETX(prr float64) float64 {
	return 1 / prr
}

// EnergyOptimal builds the minimum-ETX tree rooted at root by Dijkstra over
// per-link expected transmission counts — the "optimal energy tree" of the
// Opportunistic Flooding design. It panics for an out-of-range root.
func EnergyOptimal(g *topology.Graph, root int) *Tree {
	return dijkstra(g, root, func(l topology.Link) float64 { return linkETX(l.PRR) })
}

// MinDelayProxy builds a tree minimizing the sum of 1/PRR weighted hops —
// identical metric to EnergyOptimal today but kept as a separate
// constructor so experiments can diverge the metrics.
func MinDelayProxy(g *topology.Graph, root int) *Tree {
	return dijkstra(g, root, func(l topology.Link) float64 { return linkETX(l.PRR) })
}

func dijkstra(g *topology.Graph, root int, weight func(topology.Link) float64) *Tree {
	n := g.N()
	if root < 0 || root >= n {
		panic(fmt.Sprintf("tree: root %d out of range [0,%d)", root, n))
	}
	t := &Tree{
		Root:     root,
		Parent:   make([]int, n),
		Cost:     make([]float64, n),
		Depth:    make([]int, n),
		Children: make([][]int, n),
	}
	for i := range t.Parent {
		t.Parent[i] = -1
		t.Cost[i] = math.Inf(1)
		t.Depth[i] = -1
	}
	t.Cost[root] = 0
	t.Depth[root] = 0
	pq := &nodeHeap{{node: root, cost: 0}}
	visited := make([]bool, n)
	for pq.Len() > 0 {
		item := heap.Pop(pq).(nodeItem)
		u := item.node
		if visited[u] {
			continue
		}
		visited[u] = true
		for _, l := range g.Neighbors(u) {
			w := weight(l)
			if w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
				continue
			}
			c := t.Cost[u] + w
			if c < t.Cost[l.To] {
				t.Cost[l.To] = c
				t.Parent[l.To] = u
				t.Depth[l.To] = t.Depth[u] + 1
				heap.Push(pq, nodeItem{node: l.To, cost: c})
			}
		}
	}
	for v, p := range t.Parent {
		if p >= 0 {
			t.Children[p] = append(t.Children[p], v)
		}
	}
	return t
}

// BFS builds the minimum-hop tree rooted at root.
func BFS(g *topology.Graph, root int) *Tree {
	n := g.N()
	if root < 0 || root >= n {
		panic(fmt.Sprintf("tree: root %d out of range [0,%d)", root, n))
	}
	t := &Tree{
		Root:     root,
		Parent:   make([]int, n),
		Cost:     make([]float64, n),
		Depth:    make([]int, n),
		Children: make([][]int, n),
	}
	for i := range t.Parent {
		t.Parent[i] = -1
		t.Cost[i] = math.Inf(1)
		t.Depth[i] = -1
	}
	t.Cost[root] = 0
	t.Depth[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, l := range g.Neighbors(u) {
			if t.Depth[l.To] == -1 {
				t.Depth[l.To] = t.Depth[u] + 1
				t.Cost[l.To] = float64(t.Depth[l.To])
				t.Parent[l.To] = u
				t.Children[u] = append(t.Children[u], l.To)
				queue = append(queue, l.To)
			}
		}
	}
	return t
}

// Reaches reports whether every node is reachable from the root.
func (t *Tree) Reaches() bool {
	for v, d := range t.Depth {
		if d == -1 && v != t.Root {
			return false
		}
	}
	return true
}

// MaxDepth returns the deepest reachable node's depth.
func (t *Tree) MaxDepth() int {
	maxD := 0
	for _, d := range t.Depth {
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}

// PathTo returns the node sequence from the root to v (inclusive), or nil
// if v is unreachable.
func (t *Tree) PathTo(v int) []int {
	if v < 0 || v >= len(t.Parent) {
		panic(fmt.Sprintf("tree: node %d out of range", v))
	}
	if t.Depth[v] == -1 {
		return nil
	}
	path := make([]int, 0, t.Depth[v]+1)
	for u := v; u != -1; u = t.Parent[u] {
		path = append(path, u)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Validate checks structural invariants: parents are linked neighbors in g,
// depths are consistent, no cycles. Returns the first problem found.
func (t *Tree) Validate(g *topology.Graph) error {
	if len(t.Parent) != g.N() {
		return fmt.Errorf("tree: %d parents for %d nodes", len(t.Parent), g.N())
	}
	for v, p := range t.Parent {
		if v == t.Root {
			if p != -1 {
				return fmt.Errorf("tree: root %d has parent %d", v, p)
			}
			continue
		}
		if p == -1 {
			if t.Depth[v] != -1 {
				return fmt.Errorf("tree: orphan %d has depth %d", v, t.Depth[v])
			}
			continue
		}
		if !g.HasLink(v, p) {
			return fmt.Errorf("tree: parent edge %d-%d not in graph", v, p)
		}
		if t.Depth[v] != t.Depth[p]+1 {
			return fmt.Errorf("tree: depth of %d is %d but parent %d has %d", v, t.Depth[v], p, t.Depth[p])
		}
	}
	// Cycle check: walking up from any node must reach the root within n
	// steps.
	for v := range t.Parent {
		if t.Depth[v] == -1 {
			continue
		}
		u, steps := v, 0
		for u != t.Root {
			u = t.Parent[u]
			steps++
			if u == -1 || steps > len(t.Parent) {
				return fmt.Errorf("tree: node %d does not reach root", v)
			}
		}
	}
	return nil
}

// ExpectedDelay estimates, for every node, the expected one-packet delivery
// delay (in slots) from the root along the tree in a low-duty-cycle network
// with period T: each hop costs an expected sleep latency of (T-1)/2 plus
// retransmissions at 1/PRR wake-ups each, i.e. hopDelay = ETX × T/2 + 1.
// Opportunistic Flooding uses these estimates as its delay distribution.
// Unreachable nodes get +Inf.
func (t *Tree) ExpectedDelay(g *topology.Graph, period int) []float64 {
	if period < 1 {
		panic("tree: period must be >= 1")
	}
	out := make([]float64, len(t.Parent))
	for v := range out {
		if t.Depth[v] == -1 {
			out[v] = math.Inf(1)
			continue
		}
		// Cost already accumulates ETX along the path.
		out[v] = t.Cost[v]*float64(period)/2 + float64(t.Depth[v])
	}
	return out
}

// nodeItem / nodeHeap implement container/heap for Dijkstra.
type nodeItem struct {
	node int
	cost float64
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

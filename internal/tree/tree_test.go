package tree

import (
	"math"
	"testing"
	"testing/quick"

	"ldcflood/internal/rngutil"
	"ldcflood/internal/topology"
)

func TestEnergyOptimalLine(t *testing.T) {
	g := topology.Line(5, 0.5) // ETX 2 per hop
	tr := EnergyOptimal(g, 0)
	for v := 1; v < 5; v++ {
		if tr.Parent[v] != v-1 {
			t.Fatalf("parent[%d] = %d, want %d", v, tr.Parent[v], v-1)
		}
		if tr.Cost[v] != float64(2*v) {
			t.Fatalf("cost[%d] = %v, want %v", v, tr.Cost[v], 2*v)
		}
		if tr.Depth[v] != v {
			t.Fatalf("depth[%d] = %d", v, tr.Depth[v])
		}
	}
	if err := tr.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyOptimalPrefersGoodLinks(t *testing.T) {
	// Triangle: 0-1 direct with PRR 0.3 (ETX 3.33), or 0-2-1 with PRR 0.9
	// each (ETX 1.11+1.11 = 2.22). The tree must route 1 via 2.
	g := topology.New(3)
	g.AddLink(0, 1, 0.3)
	g.AddLink(0, 2, 0.9)
	g.AddLink(2, 1, 0.9)
	tr := EnergyOptimal(g, 0)
	if tr.Parent[1] != 2 {
		t.Fatalf("parent[1] = %d, want 2 (two good hops beat one bad)", tr.Parent[1])
	}
	if err := tr.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestBFSPrefersFewHops(t *testing.T) {
	// Same triangle: BFS must connect 1 directly.
	g := topology.New(3)
	g.AddLink(0, 1, 0.3)
	g.AddLink(0, 2, 0.9)
	g.AddLink(2, 1, 0.9)
	tr := BFS(g, 0)
	if tr.Parent[1] != 0 {
		t.Fatalf("BFS parent[1] = %d, want 0", tr.Parent[1])
	}
	if tr.MaxDepth() != 1 {
		t.Fatalf("BFS depth = %d", tr.MaxDepth())
	}
}

func TestUnreachableNodes(t *testing.T) {
	g := topology.New(4)
	g.AddLink(0, 1, 0.8)
	// 2, 3 isolated.
	tr := EnergyOptimal(g, 0)
	if tr.Reaches() {
		t.Fatal("tree claims to reach isolated nodes")
	}
	if tr.Parent[2] != -1 || tr.Depth[2] != -1 || !math.IsInf(tr.Cost[2], 1) {
		t.Fatal("isolated node not marked unreachable")
	}
	if tr.PathTo(2) != nil {
		t.Fatal("PathTo isolated node should be nil")
	}
	if err := tr.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestPathTo(t *testing.T) {
	g := topology.Line(4, 0.9)
	tr := EnergyOptimal(g, 0)
	path := tr.PathTo(3)
	want := []int{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if p := tr.PathTo(0); len(p) != 1 || p[0] != 0 {
		t.Fatalf("PathTo(root) = %v", p)
	}
}

func TestChildrenConsistent(t *testing.T) {
	g := topology.GreenOrbs(3)
	tr := EnergyOptimal(g, 0)
	if err := tr.Validate(g); err != nil {
		t.Fatal(err)
	}
	count := 0
	for p, kids := range tr.Children {
		for _, k := range kids {
			if tr.Parent[k] != p {
				t.Fatalf("child %d of %d has parent %d", k, p, tr.Parent[k])
			}
			count++
		}
	}
	// A spanning tree of a connected graph has n-1 edges.
	if count != g.N()-1 {
		t.Fatalf("tree has %d edges for %d nodes", count, g.N())
	}
	if !tr.Reaches() {
		t.Fatal("GreenOrbs tree must span")
	}
}

func TestExpectedDelayShape(t *testing.T) {
	g := topology.GreenOrbs(3)
	tr := EnergyOptimal(g, 0)
	d10 := tr.ExpectedDelay(g, 10)
	d20 := tr.ExpectedDelay(g, 20)
	if d10[0] != 0 {
		t.Fatalf("root delay = %v", d10[0])
	}
	for v := 1; v < g.N(); v++ {
		if d10[v] <= 0 {
			t.Fatalf("node %d delay %v not positive", v, d10[v])
		}
		if d20[v] <= d10[v] {
			t.Fatalf("node %d: delay must grow with period (%v vs %v)", v, d20[v], d10[v])
		}
		// Children are farther than parents.
		p := tr.Parent[v]
		if d10[v] <= d10[p] {
			t.Fatalf("node %d delay %v <= parent %d delay %v", v, d10[v], p, d10[p])
		}
	}
}

func TestExpectedDelayPanics(t *testing.T) {
	g := topology.Line(3, 0.9)
	tr := BFS(g, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("period 0 did not panic")
		}
	}()
	tr.ExpectedDelay(g, 0)
}

func TestRootOutOfRangePanics(t *testing.T) {
	g := topology.Line(3, 0.9)
	for i, f := range []func(){
		func() { EnergyOptimal(g, -1) },
		func() { EnergyOptimal(g, 3) },
		func() { BFS(g, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := topology.Line(4, 0.9)
	tr := EnergyOptimal(g, 0)
	// Corrupt: make node 3's parent a non-neighbor.
	tr.Parent[3] = 0
	if err := tr.Validate(g); err == nil {
		t.Fatal("Validate missed non-neighbor parent")
	}
	tr = EnergyOptimal(g, 0)
	tr.Depth[2] = 7
	if err := tr.Validate(g); err == nil {
		t.Fatal("Validate missed inconsistent depth")
	}
}

// Property: on random connected graphs, Dijkstra costs are monotone along
// tree paths and the tree validates.
func TestQuickDijkstraInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := rngutil.New(seed)
		n := 3 + r.Intn(30)
		g := topology.New(n)
		// Random connected graph: spanning chain + extra links.
		for v := 1; v < n; v++ {
			g.AddLink(v, r.Intn(v), 0.2+0.8*r.Float64())
		}
		extra := r.Intn(2 * n)
		for i := 0; i < extra; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasLink(u, v) {
				g.AddLink(u, v, 0.2+0.8*r.Float64())
			}
		}
		g.SortNeighbors()
		tr := EnergyOptimal(g, 0)
		if err := tr.Validate(g); err != nil {
			return false
		}
		if !tr.Reaches() {
			return false
		}
		for v := 1; v < n; v++ {
			if tr.Cost[v] <= tr.Cost[tr.Parent[v]] {
				return false
			}
			// Tree cost can never beat the direct link's ETX when present.
			if prr := g.PRR(0, v); prr > 0 && tr.Cost[v] > 1/prr+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEnergyOptimalGreenOrbs(b *testing.B) {
	g := topology.GreenOrbs(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = EnergyOptimal(g, 0)
	}
}

package metrics

import (
	"testing"

	"ldcflood/internal/flood"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

func TestProtocolCounters(t *testing.T) {
	g := topology.Grid(6, 6, 0.8)
	scheds := schedule.AssignUniform(g.N(), 20, rngutil.New(42).SubName("schedule"))

	for _, name := range []string{"trickle", "dflood"} {
		p, err := flood.New(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Graph: g, Schedules: scheds, Protocol: p,
			M: 3, Coverage: 0.99, Seed: 7, MaxSlots: 200000,
		})
		if err != nil {
			t.Fatal(err)
		}
		messages, suppressed, ok := ProtocolCounters(p)
		if !ok {
			t.Fatalf("%s: expected counters", name)
		}
		if int(messages) != res.Transmissions {
			t.Errorf("%s: messages %d != transmissions %d", name, messages, res.Transmissions)
		}
		summary, ok := SuppressionSummary(p)
		if !ok {
			t.Fatalf("%s: expected a suppression summary", name)
		}
		if summary.N != g.N() {
			t.Errorf("%s: summary over %d nodes, want %d", name, summary.N, g.N())
		}
		if got := summary.Mean * float64(summary.N); got != float64(suppressed) {
			t.Errorf("%s: per-node mean*N = %v, total %d", name, got, suppressed)
		}
	}

	// Counter-free protocols answer ok=false from both helpers.
	p, err := flood.New("opt")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := ProtocolCounters(p); ok {
		t.Error("opt should not expose flood counters")
	}
	if _, ok := SuppressionSummary(p); ok {
		t.Error("opt should not expose a suppression summary")
	}
}

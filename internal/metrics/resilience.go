package metrics

// Resilience metrics for fault-injected runs (internal/fault): how much a
// fault schedule inflates flooding delay over a clean baseline, how much
// coverage survives, and how quickly crashed nodes are re-served after
// rebooting. These quantify the paper's "limited blocking effect" claim
// under conditions harsher than its static k-class loss model.

import (
	"fmt"
	"math"

	"ldcflood/internal/fault"
	"ldcflood/internal/sim"
	"ldcflood/internal/stats"
)

// Resilience compares a faulted batch against a clean baseline of the same
// configuration (same protocol, topology, schedules, and seeds — only the
// fault schedule differs).
type Resilience struct {
	// CleanDelay / FaultedDelay are the pooled mean per-packet flooding
	// delays (slots) of the two batches, NaN when nothing was covered.
	CleanDelay   float64
	FaultedDelay float64
	// DelayInflation is FaultedDelay / CleanDelay — 1 means the faults cost
	// nothing; the paper's λmax bound gives the floor CleanDelay cannot go
	// below, so inflation isolates the faults' contribution.
	DelayInflation float64
	// CleanCovered / FaultedCovered are the fractions of (run, packet)
	// pairs that reached the coverage target.
	CleanCovered   float64
	FaultedCovered float64
	// Recovery summarizes per-crash recovery times (slots from reboot until
	// the rebooted node again holds every packet injected before its
	// reboot), pooled over the faulted runs. Empty when the schedule
	// reboots no one.
	Recovery stats.Summary
	// Recovered / Unrecovered count (run, crash) pairs whose node did / did
	// not recover fully within the simulated horizon.
	Recovered   int
	Unrecovered int
}

// ComputeResilience derives resilience metrics from paired clean and
// faulted batches. Recovery metrics need results recorded with
// sim.Config.RecordReceptions and a schedule with rebooting crashes;
// otherwise they are zero.
func ComputeResilience(clean, faulted []*sim.Result, spec *fault.Schedule) (*Resilience, error) {
	ca, err := Combine(clean)
	if err != nil {
		return nil, fmt.Errorf("metrics: clean batch: %w", err)
	}
	fa, err := Combine(faulted)
	if err != nil {
		return nil, fmt.Errorf("metrics: faulted batch: %w", err)
	}
	r := &Resilience{
		CleanDelay:     ca.Delay.Mean,
		FaultedDelay:   fa.Delay.Mean,
		DelayInflation: fa.Delay.Mean / ca.Delay.Mean,
		CleanCovered:   ca.CoveredFraction,
		FaultedCovered: fa.CoveredFraction,
	}
	pooled := stats.NewDigest()
	for _, res := range faulted {
		times, err := RecoveryTimes(res, spec)
		if err != nil {
			return nil, err
		}
		for _, rt := range times {
			if rt < 0 {
				r.Unrecovered++
				continue
			}
			r.Recovered++
			pooled.Add(float64(rt))
		}
	}
	r.Recovery = pooled.Summary()
	return r, nil
}

// RecoveryTimes returns, for each rebooting crash in spec (in schedule
// order, permanent failures skipped), how many slots after its reboot the
// node again held every packet injected before the reboot — the time to
// undo the crash's packet loss. A crash whose node never fully recovered
// within the run reports -1.
//
// res must carry per-node reception times (sim.Config.RecordReceptions).
// With several crash intervals on the same node, a later crash wipes the
// receptions an earlier recovery is measured from, so recovery times for
// the earlier interval absorb the later downtime — an acceptable
// approximation for the sparse churn schedules this is meant for.
func RecoveryTimes(res *sim.Result, spec *fault.Schedule) ([]int64, error) {
	if spec == nil {
		return nil, nil
	}
	var out []int64
	for _, c := range spec.Crashes {
		if c.RebootAt < 0 {
			continue
		}
		if res.NodeRecvTime == nil {
			return nil, fmt.Errorf("metrics: recovery times need sim.Config.RecordReceptions")
		}
		recovery := int64(math.MinInt64)
		recovered := true
		for p := 0; p < res.M; p++ {
			if res.InjectTime[p] < 0 || res.InjectTime[p] >= c.RebootAt {
				continue // not injected, or injected after the reboot
			}
			rt := res.NodeRecvTime[p][c.Node]
			if rt < c.RebootAt {
				// Never re-received after the reboot (crashing wiped any
				// earlier reception, so rt is -1 or from a later interval).
				recovered = false
				break
			}
			if d := rt - c.RebootAt; d > recovery {
				recovery = d
			}
		}
		switch {
		case !recovered:
			out = append(out, -1)
		case recovery == int64(math.MinInt64):
			out = append(out, 0) // nothing was injected before the reboot
		default:
			out = append(out, recovery)
		}
	}
	return out, nil
}

package metrics

// Structural access to the optional per-protocol counters the timer-driven
// flooding protocols expose (message and suppression tallies). The sim
// layer knows nothing about these; post-processing reaches them through
// small structural interfaces so internal/metrics does not import
// internal/flood.

import (
	"ldcflood/internal/sim"
	"ldcflood/internal/stats"
)

// floodCounted is the structural interface trickle/dflood satisfy.
type floodCounted interface {
	FloodCounters() (messages, suppressed int64)
}

// perNodeSuppressed is the per-node breakdown companion.
type perNodeSuppressed interface {
	SuppressedPerNode() []int64
}

// ProtocolCounters extracts the message/suppression counters from a
// protocol instance after a run. ok is false for protocols that do not
// keep counters (OPT, DBAO, OF, Naive, Flash).
func ProtocolCounters(p sim.Protocol) (messages, suppressed int64, ok bool) {
	c, ok := p.(floodCounted)
	if !ok {
		return 0, 0, false
	}
	messages, suppressed = c.FloodCounters()
	return messages, suppressed, true
}

// SuppressionSummary summarizes the per-node suppression distribution of a
// counter-keeping protocol. ok is false when the protocol exposes no
// per-node breakdown (or has not run).
func SuppressionSummary(p sim.Protocol) (stats.Summary, bool) {
	c, okC := p.(perNodeSuppressed)
	if !okC {
		return stats.Summary{}, false
	}
	per := c.SuppressedPerNode()
	if len(per) == 0 {
		return stats.Summary{}, false
	}
	xs := make([]float64, len(per))
	for i, v := range per {
		xs[i] = float64(v)
	}
	return stats.Summarize(xs), true
}

package metrics

import (
	"math"
	"testing"

	"ldcflood/internal/fault"
	"ldcflood/internal/sim"
)

// recvResult builds a fakeResult carrying per-node reception times for n
// nodes, defaulting every reception to the packet's delay endpoint.
func recvResult(delays []int64, injects []int64, n int) *sim.Result {
	r := fakeResult("OPT", delays, 0)
	r.InjectTime = injects
	r.NodeRecvTime = make([][]int64, len(delays))
	for p := range r.NodeRecvTime {
		r.NodeRecvTime[p] = make([]int64, n)
		for v := range r.NodeRecvTime[p] {
			r.NodeRecvTime[p][v] = injects[p] + delays[p]
		}
	}
	return r
}

func TestRecoveryTimesNilSpec(t *testing.T) {
	res := recvResult([]int64{5}, []int64{0}, 4)
	if out, err := RecoveryTimes(res, nil); err != nil || out != nil {
		t.Fatalf("nil spec: out=%v err=%v", out, err)
	}
	// A schedule with only permanent failures measures nothing either.
	spec := &fault.Schedule{Crashes: []fault.Crash{{Node: 2, At: 1, RebootAt: -1}}}
	if out, err := RecoveryTimes(res, spec); err != nil || len(out) != 0 {
		t.Fatalf("permanent-only spec: out=%v err=%v", out, err)
	}
}

func TestRecoveryTimesNeedReceptions(t *testing.T) {
	res := fakeResult("OPT", []int64{5}, 0)
	res.InjectTime = []int64{0}
	spec := &fault.Schedule{Crashes: []fault.Crash{{Node: 1, At: 1, RebootAt: 10}}}
	if _, err := RecoveryTimes(res, spec); err == nil {
		t.Fatal("missing NodeRecvTime accepted")
	}
}

func TestRecoveryTimes(t *testing.T) {
	// Node 3 crashes and reboots at slot 100. Packet 0 (injected at 0)
	// reaches it again at 130, packet 1 (injected at 20) at 105; packet 2
	// is injected after the reboot and must not count.
	res := recvResult([]int64{40, 30, 20}, []int64{0, 20, 150}, 6)
	res.NodeRecvTime[0][3] = 130
	res.NodeRecvTime[1][3] = 105
	spec := &fault.Schedule{Crashes: []fault.Crash{
		{Node: 3, At: 50, RebootAt: 100},
		{Node: 4, At: 10, RebootAt: 40},
	}}
	// Node 4's receptions all land at inject+delay ≥ 40? Packet 0 arrives
	// at 40 = RebootAt, which counts as re-received (recovery 0); packet 1
	// arrives at 50 → recovery 10.
	out, err := RecoveryTimes(res, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != 30 || out[1] != 10 {
		t.Fatalf("recovery times = %v, want [30 10]", out)
	}

	// An uninjected packet is skipped rather than counted as a loss.
	res.InjectTime[1] = -1
	if out, _ := RecoveryTimes(res, spec); out[0] != 30 {
		t.Fatalf("uninjected packet changed recovery to %v", out)
	}
	res.InjectTime[1] = 20

	// If a pre-reboot packet never arrives after the reboot, the crash is
	// unrecovered.
	res.NodeRecvTime[1][3] = -1
	if out, _ := RecoveryTimes(res, spec); out[0] != -1 {
		t.Fatalf("lost packet not reported as unrecovered: %v", out)
	}

	// A reboot before any injection measures a trivial zero recovery.
	early := &fault.Schedule{Crashes: []fault.Crash{{Node: 2, At: -5, RebootAt: 0}}}
	if out, _ := RecoveryTimes(res, early); len(out) != 1 || out[0] != 0 {
		t.Fatalf("pre-injection reboot = %v, want [0]", out)
	}
}

func TestComputeResilience(t *testing.T) {
	clean := []*sim.Result{recvResult([]int64{10, 10}, []int64{0, 50}, 5)}
	faulted := []*sim.Result{recvResult([]int64{15, 20}, []int64{0, 50}, 5)}
	faulted[0].NodeRecvTime[0][2] = 120
	faulted[0].NodeRecvTime[1][2] = 110
	spec := &fault.Schedule{Crashes: []fault.Crash{{Node: 2, At: 30, RebootAt: 100}}}

	r, err := ComputeResilience(clean, faulted, spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.CleanDelay != 10 || r.FaultedDelay != 17.5 {
		t.Fatalf("delays = %v / %v", r.CleanDelay, r.FaultedDelay)
	}
	if math.Abs(r.DelayInflation-1.75) > 1e-12 {
		t.Fatalf("inflation = %v, want 1.75", r.DelayInflation)
	}
	if r.CleanCovered != 1 || r.FaultedCovered != 1 {
		t.Fatalf("covered = %v / %v", r.CleanCovered, r.FaultedCovered)
	}
	// Both pre-reboot packets re-arrived at node 2 after its reboot; the
	// slower one (slot 120) sets the recovery time.
	if r.Recovered != 1 || r.Unrecovered != 0 {
		t.Fatalf("recovered = %d/%d, want 1/0", r.Recovered, r.Unrecovered)
	}
	if r.Recovery.N != 1 || r.Recovery.Mean != 20 {
		t.Fatalf("recovery summary = %+v, want one sample of 20", r.Recovery)
	}
}

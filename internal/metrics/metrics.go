// Package metrics post-processes simulation results: aggregation across
// repeated seeds (the evaluation averages trace-driven runs), per-packet
// delay series for Fig. 9, failure totals for Fig. 11, and the
// energy/lifetime model behind the paper's "it is NOT always beneficial to
// set the duty cycle extremely low" conclusion (Section V-C2).
package metrics

import (
	"fmt"
	"math"

	"ldcflood/internal/sim"
	"ldcflood/internal/stats"
)

// Aggregate combines repeated runs of the same configuration (different
// seeds) into per-packet means and run-level summaries.
type Aggregate struct {
	Protocol string
	Runs     int
	// MeanDelayPerPacket[p] averages packet p's flooding delay over runs
	// that covered it; NaN if no run covered packet p.
	MeanDelayPerPacket []float64
	// MeanFirstHopPerPacket[p] averages the transmission-delay component.
	MeanFirstHopPerPacket []float64
	// Delay summarizes all per-packet delays pooled across runs.
	Delay stats.Summary
	// Failures/Transmissions/Overheard are per-run means.
	Failures      float64
	Transmissions float64
	Overheard     float64
	// CoveredFraction is the fraction of (run, packet) pairs that reached
	// the coverage target.
	CoveredFraction float64
}

// Combine aggregates results; all must come from the same protocol and M.
// It returns an error for empty or inconsistent input.
func Combine(results []*sim.Result) (*Aggregate, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("metrics: no results")
	}
	m := results[0].M
	name := results[0].Protocol
	for _, r := range results[1:] {
		if r.M != m || r.Protocol != name {
			return nil, fmt.Errorf("metrics: mixed results (%s/M=%d vs %s/M=%d)", name, m, r.Protocol, r.M)
		}
	}
	agg := &Aggregate{
		Protocol:              name,
		Runs:                  len(results),
		MeanDelayPerPacket:    make([]float64, m),
		MeanFirstHopPerPacket: make([]float64, m),
	}
	pooled := stats.NewDigest()
	covered := 0
	for p := 0; p < m; p++ {
		var acc, hop stats.Running
		for _, r := range results {
			if r.Delay[p] >= 0 {
				acc.Add(float64(r.Delay[p]))
				pooled.Add(float64(r.Delay[p]))
				covered++
			}
			if r.FirstHopDelay[p] >= 0 {
				hop.Add(float64(r.FirstHopDelay[p]))
			}
		}
		agg.MeanDelayPerPacket[p] = acc.Mean() // NaN when empty
		agg.MeanFirstHopPerPacket[p] = hop.Mean()
	}
	agg.Delay = pooled.Summary()
	for _, r := range results {
		agg.Failures += float64(r.Failures())
		agg.Transmissions += float64(r.Transmissions)
		agg.Overheard += float64(r.Overheard)
	}
	agg.Failures /= float64(len(results))
	agg.Transmissions /= float64(len(results))
	agg.Overheard /= float64(len(results))
	agg.CoveredFraction = float64(covered) / float64(m*len(results))
	return agg, nil
}

// EnergyModel captures the first-order sensor power budget used to reason
// about lifetime versus duty cycle. Defaults (DefaultEnergyModel) are
// CC2420-class figures.
type EnergyModel struct {
	// BatteryJoules is the usable battery energy.
	BatteryJoules float64
	// ActiveWatts is drawn while the radio is on (listen/receive).
	ActiveWatts float64
	// SleepWatts is drawn while dormant.
	SleepWatts float64
	// TxJoules is the extra energy per packet transmission.
	TxJoules float64
	// SlotSeconds is the duration of one time slot.
	SlotSeconds float64
}

// DefaultEnergyModel returns mica2/CC2420-class constants: 2×AA battery
// (~20 kJ), ~60 mW radio-on, ~3 µW sleep, ~0.1 mJ per transmission, 10 ms
// slots.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		BatteryJoules: 20000,
		ActiveWatts:   0.060,
		SleepWatts:    0.000003,
		TxJoules:      0.0001,
		SlotSeconds:   0.010,
	}
}

// LifetimeSeconds returns the expected node lifetime at the given duty
// ratio with txPerSecond average transmissions. Lifetime grows roughly
// linearly in 1/duty — the benefit side of low-duty-cycle operation.
func (e EnergyModel) LifetimeSeconds(duty, txPerSecond float64) float64 {
	if duty <= 0 || duty > 1 {
		panic(fmt.Sprintf("metrics: duty %v outside (0,1]", duty))
	}
	if txPerSecond < 0 {
		panic("metrics: negative tx rate")
	}
	power := e.ActiveWatts*duty + e.SleepWatts*(1-duty) + e.TxJoules*txPerSecond
	return e.BatteryJoules / power
}

// EnergyPerNode returns each node's energy consumption over a finished run
// in joules: radio-on time (scheduled awake slots) plus per-transmission
// energy. The receiver-side consumption is determined by the working
// schedule and transmission counts, exactly the decomposition Section V-C2
// uses to argue energy ∝ duty ratio.
func (e EnergyModel) EnergyPerNode(res *sim.Result) []float64 {
	out := make([]float64, len(res.TxPerNode))
	for i := range out {
		awake := float64(res.AwakeSlotsPerNode[i]) * e.SlotSeconds
		sleep := float64(res.TotalSlots)*e.SlotSeconds - awake
		if sleep < 0 {
			sleep = 0
		}
		out[i] = awake*e.ActiveWatts + sleep*e.SleepWatts + float64(res.TxPerNode[i])*e.TxJoules
	}
	return out
}

// NetworkingGain is the paper's closing trade-off: the product view of
// what a duty cycle buys. It returns lifetime (seconds), flooding delay
// (seconds), and their ratio gain = lifetime / delay — the "networking
// gain" that first rises and then falls as the duty cycle decreases,
// showing it is not always beneficial to go extremely low.
func (e EnergyModel) NetworkingGain(duty float64, delaySlots float64, txPerSecond float64) (lifetime, delay, gain float64) {
	lifetime = e.LifetimeSeconds(duty, txPerSecond)
	delay = delaySlots * e.SlotSeconds
	if delay <= 0 || math.IsNaN(delay) {
		return lifetime, delay, math.NaN()
	}
	return lifetime, delay, lifetime / delay
}

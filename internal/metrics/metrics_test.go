package metrics

import (
	"math"
	"testing"

	"ldcflood/internal/sim"
)

func fakeResult(proto string, delays []int64, failures int) *sim.Result {
	r := &sim.Result{
		Protocol:      proto,
		M:             len(delays),
		Delay:         delays,
		FirstHopDelay: make([]int64, len(delays)),
		LossFailures:  failures,
	}
	for i := range r.FirstHopDelay {
		if delays[i] >= 0 {
			r.FirstHopDelay[i] = 1
		} else {
			r.FirstHopDelay[i] = -1
		}
	}
	return r
}

func TestCombineErrors(t *testing.T) {
	if _, err := Combine(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	a := fakeResult("OPT", []int64{1, 2}, 0)
	b := fakeResult("DBAO", []int64{1, 2}, 0)
	if _, err := Combine([]*sim.Result{a, b}); err == nil {
		t.Fatal("mixed protocols accepted")
	}
	c := fakeResult("OPT", []int64{1}, 0)
	if _, err := Combine([]*sim.Result{a, c}); err == nil {
		t.Fatal("mixed M accepted")
	}
}

func TestCombineAverages(t *testing.T) {
	a := fakeResult("OPT", []int64{10, 20}, 4)
	b := fakeResult("OPT", []int64{30, 40}, 6)
	agg, err := Combine([]*sim.Result{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Runs != 2 || agg.Protocol != "OPT" {
		t.Fatalf("metadata: %+v", agg)
	}
	if agg.MeanDelayPerPacket[0] != 20 || agg.MeanDelayPerPacket[1] != 30 {
		t.Fatalf("per-packet means = %v", agg.MeanDelayPerPacket)
	}
	if agg.Failures != 5 {
		t.Fatalf("failures = %v", agg.Failures)
	}
	if agg.Delay.Mean != 25 {
		t.Fatalf("pooled mean = %v", agg.Delay.Mean)
	}
	if agg.CoveredFraction != 1 {
		t.Fatalf("covered = %v", agg.CoveredFraction)
	}
	if agg.MeanFirstHopPerPacket[0] != 1 {
		t.Fatalf("first hop = %v", agg.MeanFirstHopPerPacket)
	}
}

func TestCombineUncoveredPackets(t *testing.T) {
	a := fakeResult("OF", []int64{5, -1}, 0)
	agg, err := Combine([]*sim.Result{a})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(agg.MeanDelayPerPacket[1]) {
		t.Fatalf("uncovered packet mean should be NaN, got %v", agg.MeanDelayPerPacket[1])
	}
	if agg.CoveredFraction != 0.5 {
		t.Fatalf("covered = %v", agg.CoveredFraction)
	}
}

func TestLifetimeMonotoneInDuty(t *testing.T) {
	e := DefaultEnergyModel()
	prev := 0.0
	// Lifetime should increase as duty decreases.
	for _, duty := range []float64{1, 0.5, 0.2, 0.1, 0.05, 0.02} {
		lt := e.LifetimeSeconds(duty, 0.1)
		if lt <= prev {
			t.Fatalf("lifetime not increasing as duty falls: %v at duty %v", lt, duty)
		}
		prev = lt
	}
	// Roughly linear in 1/duty while radio power dominates.
	r1 := e.LifetimeSeconds(0.10, 0)
	r2 := e.LifetimeSeconds(0.05, 0)
	if ratio := r2 / r1; math.Abs(ratio-2) > 0.1 {
		t.Fatalf("halving duty should ~double lifetime, ratio %v", ratio)
	}
}

func TestLifetimePanics(t *testing.T) {
	e := DefaultEnergyModel()
	for i, f := range []func(){
		func() { e.LifetimeSeconds(0, 1) },
		func() { e.LifetimeSeconds(1.5, 1) },
		func() { e.LifetimeSeconds(0.5, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestNetworkingGainPeaks(t *testing.T) {
	// With flooding delay blowing up like C/duty² (duty-cycle delay × loss
	// amplification), the gain lifetime/delay must peak at an intermediate
	// duty cycle — the paper's "NOT always beneficial" message.
	e := DefaultEnergyModel()
	duties := []float64{0.50, 0.20, 0.10, 0.05, 0.02, 0.01}
	gains := make([]float64, len(duties))
	for i, d := range duties {
		// Delay floor (network diameter) plus super-linear duty-cycle
		// blow-up: the shape Fig. 7 and Fig. 10 measure.
		delaySlots := 2000 + 100/(d*d)
		_, _, gains[i] = e.NetworkingGain(d, delaySlots, 0.1)
	}
	best := 0
	for i, g := range gains {
		if g > gains[best] {
			best = i
		}
	}
	if best == 0 || best == len(gains)-1 {
		t.Fatalf("gain should peak at an interior duty cycle, peaked at %v (gains %v)", duties[best], gains)
	}
}

func TestEnergyPerNode(t *testing.T) {
	e := DefaultEnergyModel()
	res := &sim.Result{
		TotalSlots:        100,
		TxPerNode:         []int{10, 0},
		AwakeSlotsPerNode: []int64{100, 5},
	}
	energy := e.EnergyPerNode(res)
	if len(energy) != 2 {
		t.Fatalf("len = %d", len(energy))
	}
	// Node 0: 1s awake at 60mW + 10 tx.
	want0 := 1.0*e.ActiveWatts + 10*e.TxJoules
	if math.Abs(energy[0]-want0) > 1e-9 {
		t.Fatalf("node 0 energy %v, want %v", energy[0], want0)
	}
	// Node 1: 0.05s awake + 0.95s asleep, no tx — far below node 0.
	if energy[1] >= energy[0]/10 {
		t.Fatalf("duty-cycled node energy %v not ~20x below %v", energy[1], energy[0])
	}
	// Energy ∝ duty ratio (Section V-C2): doubling awake time ~doubles energy.
	res2 := &sim.Result{TotalSlots: 100, TxPerNode: []int{0, 0}, AwakeSlotsPerNode: []int64{10, 20}}
	e2 := e.EnergyPerNode(res2)
	if ratio := e2[1] / e2[0]; math.Abs(ratio-2) > 0.01 {
		t.Fatalf("energy not linear in awake time: ratio %v", ratio)
	}
}

func TestNetworkingGainDegenerate(t *testing.T) {
	e := DefaultEnergyModel()
	_, _, gain := e.NetworkingGain(0.1, 0, 0)
	if !math.IsNaN(gain) {
		t.Fatalf("zero delay should yield NaN gain, got %v", gain)
	}
}

// Package exact computes provably optimal multi-packet flooding schedules
// for small networks by breadth-first search over the full dissemination
// state space. It is the ground truth the paper's limits can be checked
// against: for any (N, M) small enough to enumerate, OptimalSlots returns
// the true minimum number of compact slots needed to flood M packets to
// all 1+N nodes under the matrix model of Section IV (every node transmits
// at most one packet and receives at most one packet per slot; the source
// injects packet p at the beginning of slot p).
//
// The search is exponential in N·M — it exists to validate Lemma 2,
// Table I and Algorithm 1 on small instances, not to schedule real
// networks.
package exact

import (
	"fmt"
	"math/bits"
)

// Config bounds the instance. The state space is 2^((N+1)·M), so N·M must
// stay small (the package enforces (N+1)·M <= 24 by default).
type Config struct {
	// N is the number of nominal sensors (nodes 1..N; node 0 is the source).
	N int
	// M is the number of packets.
	M int
	// MaxStateBits overrides the (N+1)*M <= 24 safety bound when set.
	MaxStateBits int
}

// Result reports the optimum.
type Result struct {
	// Slots is the minimum number of compact slots to complete all packets.
	Slots int
	// Explored counts distinct states visited (diagnostics).
	Explored int
}

// state packs possession bitmaps: bit (p*(N+1) + node) set means node holds
// packet p.
type state uint64

// OptimalSlots runs the BFS and returns the minimum completion time.
func OptimalSlots(cfg Config) (Result, error) {
	if cfg.N < 1 {
		return Result{}, fmt.Errorf("exact: N = %d must be >= 1", cfg.N)
	}
	if cfg.M < 1 {
		return Result{}, fmt.Errorf("exact: M = %d must be >= 1", cfg.M)
	}
	nodes := cfg.N + 1
	stateBits := nodes * cfg.M
	maxBits := cfg.MaxStateBits
	if maxBits == 0 {
		maxBits = 24
	}
	if stateBits > maxBits {
		return Result{}, fmt.Errorf("exact: state space 2^%d exceeds bound 2^%d", stateBits, maxBits)
	}

	full := state(0)
	for p := 0; p < cfg.M; p++ {
		for node := 0; node < nodes; node++ {
			full |= bit(p, node, nodes)
		}
	}
	canon := canonicalizer(nodes, cfg.M)

	// BFS layers over (state, slot); injections depend on the slot number,
	// so the frontier is advanced slot by slot.
	type key struct {
		s    state
		slot int
	}
	start := state(0)
	visited := map[key]bool{}
	frontier := []state{start}
	explored := 0
	// An upper bound on useful depth: Algorithm 1's Table I bound plus
	// injection time, padded.
	maxDepth := 4*(cfg.M+cfg.N+4) + 16
	// next, seen and succBuf are reused across BFS layers (cleared, not
	// reallocated) — the per-layer map churn dominated the profile.
	next := make(map[state]bool)
	seen := make(map[state]bool)
	var succBuf []state
	for slot := 0; slot <= maxDepth; slot++ {
		clear(next)
		for _, s := range frontier {
			// Inject packet `slot` at the source.
			if slot < cfg.M {
				s |= bit(slot, 0, nodes)
			}
			if s == full {
				return Result{Slots: slot, Explored: explored}, nil
			}
			k := key{s, slot}
			if visited[k] {
				continue
			}
			visited[k] = true
			explored++
			succBuf = appendSuccessors(succBuf[:0], seen, s, nodes, cfg.M)
			for _, succ := range succBuf {
				next[canon(succ)] = true
			}
		}
		if len(next) == 0 {
			break
		}
		frontier = frontier[:0]
		for s := range next {
			frontier = append(frontier, s)
		}
	}
	return Result{Explored: explored}, fmt.Errorf("exact: no completion within %d slots", maxDepth)
}

func bit(p, node, nodes int) state {
	return state(1) << uint(p*nodes+node)
}

// canonicalizer returns a function mapping a state to its canonical
// representative under sensor relabeling: the nominal sensors 1..N are
// interchangeable (the complete-graph matrix model has no topology), so
// their per-node possession masks are sorted. This collapses the state
// space from 2^(nodes·M) to multisets and is what makes the multi-packet
// search tractable.
func canonicalizer(nodes, m int) func(state) state {
	masks := make([]uint32, nodes-1)
	return func(s state) state {
		for node := 1; node < nodes; node++ {
			var mask uint32
			for p := 0; p < m; p++ {
				if s&bit(p, node, nodes) != 0 {
					mask |= 1 << uint(p)
				}
			}
			masks[node-1] = mask
		}
		// Insertion sort, descending: tiny slices.
		for i := 1; i < len(masks); i++ {
			for j := i; j > 0 && masks[j] > masks[j-1]; j-- {
				masks[j], masks[j-1] = masks[j-1], masks[j]
			}
		}
		out := s
		for node := 1; node < nodes; node++ {
			for p := 0; p < m; p++ {
				b := bit(p, node, nodes)
				if masks[node-1]&(1<<uint(p)) != 0 {
					out |= b
				} else {
					out &^= b
				}
			}
		}
		return out
	}
}

// appendSuccessors appends to dst every reachable next state: a set of
// transmissions where each sender sends one held packet to one node that
// lacks it, with every node transmitting at most once and receiving at most
// once. To keep the branching factor manageable the enumeration is a
// recursive assignment over senders (each sender idles or picks a
// packet+receiver), deduplicated by the resulting state. seen is caller
// scratch (cleared here) so the hot BFS loop allocates nothing per call.
func appendSuccessors(dst []state, seen map[state]bool, s state, nodes, m int) []state {
	clear(seen)
	var rec func(sender int, cur state, rxBusy, txBusy uint32)
	rec = func(sender int, cur state, rxBusy, txBusy uint32) {
		if sender == nodes {
			seen[cur] = true
			return
		}
		// Option 1: sender idles.
		rec(sender+1, cur, rxBusy, txBusy)
		if txBusy&(1<<uint(sender)) != 0 {
			return
		}
		// Option 2: sender transmits one of its packets to one receiver.
		for p := 0; p < m; p++ {
			if s&bit(p, sender, nodes) == 0 {
				continue
			}
			for r := 0; r < nodes; r++ {
				if r == sender || rxBusy&(1<<uint(r)) != 0 {
					continue
				}
				if s&bit(p, r, nodes) != 0 {
					continue // receiver already holds p
				}
				rec(sender+1, cur|bit(p, r, nodes), rxBusy|1<<uint(r), txBusy|1<<uint(sender))
			}
		}
	}
	rec(0, s, 0, 0)
	for st := range seen {
		dst = append(dst, st)
	}
	return dst
}

// PopCount returns the number of (packet, node) possession bits set —
// exported for tests asserting monotone progress.
func PopCount(s uint64) int { return bits.OnesCount64(s) }

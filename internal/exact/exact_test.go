package exact

import (
	"testing"

	"ldcflood/internal/analysis"
	"ldcflood/internal/matrixflood"
)

func TestValidation(t *testing.T) {
	if _, err := OptimalSlots(Config{N: 0, M: 1}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := OptimalSlots(Config{N: 1, M: 0}); err == nil {
		t.Fatal("M=0 accepted")
	}
	if _, err := OptimalSlots(Config{N: 10, M: 10}); err == nil {
		t.Fatal("oversized state space accepted")
	}
}

// The exact optimum for one packet must equal the Lemma 2 / Eq. (6) floor
// ⌈log2(1+N)⌉: the limit is achievable, independent of Algorithm 1.
func TestSinglePacketOptimumMatchesLemma2(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7} {
		res, err := OptimalSlots(Config{N: n, M: 1})
		if err != nil {
			t.Fatal(err)
		}
		if want := analysis.FWLFloor(n); res.Slots != want {
			t.Fatalf("N=%d: optimum %d, want FWL floor %d", n, res.Slots, want)
		}
	}
}

// The exact multi-packet optimum must (a) respect the single-packet floor
// for the last packet, (b) never beat the injection schedule (packet M-1
// appears only at slot M-1), and (c) never exceed Algorithm 1's achieved
// completion on power-of-two instances.
func TestMultiPacketOptimumBounds(t *testing.T) {
	cases := []struct{ n, m int }{
		{2, 2}, {3, 2}, {4, 2}, {3, 3}, {2, 4}, {4, 3}, {5, 3}, {7, 3},
	}
	for _, c := range cases {
		res, err := OptimalSlots(Config{N: c.n, M: c.m})
		if err != nil {
			t.Fatalf("N=%d M=%d: %v", c.n, c.m, err)
		}
		floor := c.m - 1 + analysis.FWLFloor(c.n)
		if res.Slots < floor {
			t.Fatalf("N=%d M=%d: optimum %d beats the injection+FWL floor %d — impossible",
				c.n, c.m, res.Slots, floor)
		}
		if matrixflood.IsPowerOfTwo(c.n) {
			alg1, err := matrixflood.Run(matrixflood.Config{N: c.n, M: c.m})
			if err != nil {
				t.Fatal(err)
			}
			if res.Slots > alg1.TotalSlots {
				t.Fatalf("N=%d M=%d: 'optimal' %d worse than Algorithm 1's %d",
					c.n, c.m, res.Slots, alg1.TotalSlots)
			}
		}
	}
}

// The optimum must be monotone in both N and M.
func TestOptimumMonotone(t *testing.T) {
	get := func(n, m int) int {
		res, err := OptimalSlots(Config{N: n, M: m})
		if err != nil {
			t.Fatal(err)
		}
		return res.Slots
	}
	if get(4, 2) < get(4, 1) {
		t.Fatal("optimum decreased with more packets")
	}
	if get(5, 2) < get(3, 2) {
		t.Fatal("optimum decreased with more nodes")
	}
}

// Table I cross-check: the exact optimum for (N, M) small instances is at
// most the Table I completion bound K_{M-1} + W_{M-1}.
func TestOptimumWithinTableI(t *testing.T) {
	for _, c := range []struct{ n, m int }{{2, 2}, {4, 2}, {4, 3}, {7, 2}} {
		res, err := OptimalSlots(Config{N: c.n, M: c.m})
		if err != nil {
			t.Fatal(err)
		}
		bound := analysis.FWLMulti(c.n, c.m)
		if res.Slots > bound {
			t.Fatalf("N=%d M=%d: optimum %d exceeds Table I bound %d", c.n, c.m, res.Slots, bound)
		}
	}
}

func TestPopCount(t *testing.T) {
	if PopCount(0) != 0 || PopCount(0b1011) != 3 {
		t.Fatal("PopCount broken")
	}
}

func BenchmarkExactSearch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := OptimalSlots(Config{N: 4, M: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

package analysis_test

import (
	"fmt"

	"ldcflood/internal/analysis"
)

// The flooding waiting limit of a single packet (Lemma 2 / Eq. 6): no
// flooding strategy can cover 1024 sensors in fewer compact slots.
func ExampleFWLFloor() {
	fmt.Println(analysis.FWLFloor(1024))
	// Output: 11
}

// Theorem 1: the expected multi-packet flooding delay limit, showing the
// knee at M = m — each packet beyond the knee costs only T/2 slots.
func ExampleFDLTheorem1() {
	n, T := 1024, 5
	knee := analysis.KneePoint(n)
	fmt.Printf("knee at M=%d\n", knee)
	fmt.Printf("M=%d: %.1f slots\n", knee, analysis.FDLTheorem1(n, knee, T))
	fmt.Printf("M=%d: %.1f slots\n", knee+2, analysis.FDLTheorem1(n, knee+2, T))
	// Output:
	// knee at M=11
	// M=11: 77.5 slots
	// M=13: 82.5 slots
}

// Theorem 2 brackets the delay limit for arbitrary (non-power-of-two) N.
func ExampleFDLTheorem2() {
	b := analysis.FDLTheorem2(300, 10, 5)
	fmt.Printf("[%.1f, %.1f]\n", b.Lower, b.Upper)
	// Output: [65.0, 110.0]
}

// The Section IV-B link-loss analysis: the characteristic root of
// λ^(kT+1) = λ^(kT) + 1 gives the per-slot coverage growth, hence the
// predicted flooding delay. Halving link quality (k=1 → k=2) at a 5% duty
// cycle costs ~62% more delay on a 298-node network.
func ExamplePredictedDelay() {
	ideal := analysis.PredictedDelay(298, 0.99, 1.0, 20)
	lossy := analysis.PredictedDelay(298, 0.99, 2.0, 20)
	fmt.Printf("ideal %.0f slots, 50%%-quality links %.0f slots (%.2fx)\n",
		ideal, lossy, lossy/ideal)
	// Output: ideal 53 slots, 50%-quality links 85 slots (1.62x)
}

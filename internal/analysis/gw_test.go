package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"ldcflood/internal/rngutil"
	"ldcflood/internal/stats"
)

func TestNewGaltonWatson(t *testing.T) {
	if _, err := NewGaltonWatson(0.5); err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0, -0.1, 1.1, math.NaN()} {
		if _, err := NewGaltonWatson(p); err == nil {
			t.Fatalf("accepted p=%v", p)
		}
	}
}

func TestMuAndVariance(t *testing.T) {
	gw := GaltonWatson{SuccessProb: 1}
	if gw.Mu() != 2 {
		t.Fatalf("ideal Mu = %v, want 2", gw.Mu())
	}
	if gw.OffspringVariance() != 0 {
		t.Fatalf("ideal offspring variance = %v, want 0", gw.OffspringVariance())
	}
	if gw.LimitVariance() != 0 {
		t.Fatalf("ideal limit variance = %v, want 0", gw.LimitVariance())
	}
	gw = GaltonWatson{SuccessProb: 0.5}
	if gw.Mu() != 1.5 {
		t.Fatalf("Mu = %v", gw.Mu())
	}
	if got := gw.OffspringVariance(); got != 0.25 {
		t.Fatalf("offspring variance = %v", got)
	}
	// σ²/(μ²-μ) = 0.25 / (2.25-1.5) = 1/3
	if got := gw.LimitVariance(); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("limit variance = %v", got)
	}
}

func TestChebyshevTail(t *testing.T) {
	gw := GaltonWatson{SuccessProb: 0.5}
	// bound = (1/3) / (α-1)²
	if got := gw.ChebyshevTail(2); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("tail(2) = %v", got)
	}
	if gw.ChebyshevTail(3) >= gw.ChebyshevTail(2) {
		t.Fatal("tail bound should shrink with alpha")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("alpha<=1 did not panic")
		}
	}()
	gw.ChebyshevTail(1)
}

func TestSamplePathIdeal(t *testing.T) {
	gw := GaltonWatson{SuccessProb: 1}
	path := gw.SamplePath(10, 0, rngutil.New(1))
	for g, pop := range path {
		if pop != 1<<g {
			t.Fatalf("ideal path gen %d = %d, want %d", g, pop, 1<<g)
		}
	}
}

func TestSamplePathCap(t *testing.T) {
	gw := GaltonWatson{SuccessProb: 1}
	path := gw.SamplePath(20, 100, rngutil.New(1))
	for _, pop := range path {
		if pop > 100 {
			t.Fatalf("cap violated: %d", pop)
		}
	}
	if path[len(path)-1] != 100 {
		t.Fatal("capped path should saturate at cap")
	}
}

func TestSamplePathMonotone(t *testing.T) {
	gw := GaltonWatson{SuccessProb: 0.3}
	path := gw.SamplePath(30, 0, rngutil.New(5))
	for g := 1; g < len(path); g++ {
		if path[g] < path[g-1] {
			t.Fatal("population shrank — offspring must include the parent")
		}
	}
}

// Lemma 1: X(c)/μ^c converges to a limit with mean 1.
func TestLemma1LimitMean(t *testing.T) {
	gw := GaltonWatson{SuccessProb: 0.6}
	mu := gw.Mu()
	const gens = 18
	var acc stats.Running
	rng := rngutil.New(7)
	for trial := 0; trial < 400; trial++ {
		path := gw.SamplePath(gens, 0, rng.Sub(uint64(trial)))
		acc.Add(float64(path[gens]) / math.Pow(mu, gens))
	}
	if math.Abs(acc.Mean()-1) > 0.05 {
		t.Fatalf("E[X(c)/mu^c] = %v, want ~1 (Lemma 1)", acc.Mean())
	}
}

// Lemma 1: Var[X] ≈ σ²/(μ²-μ).
func TestLemma1LimitVariance(t *testing.T) {
	gw := GaltonWatson{SuccessProb: 0.5}
	mu := gw.Mu()
	const gens = 22
	var acc stats.Running
	rng := rngutil.New(11)
	for trial := 0; trial < 3000; trial++ {
		path := gw.SamplePath(gens, 0, rng.Sub(uint64(trial)))
		acc.Add(float64(path[gens]) / math.Pow(mu, gens))
	}
	want := gw.LimitVariance()
	if math.Abs(acc.Variance()-want) > 0.1*want+0.02 {
		t.Fatalf("Var[X] = %v, want ~%v (Lemma 1)", acc.Variance(), want)
	}
}

func TestGenerationsToReach(t *testing.T) {
	gw := GaltonWatson{SuccessProb: 1}
	gens, ok := gw.GenerationsToReach(1024, 100, rngutil.New(1))
	if !ok || gens != 10 {
		t.Fatalf("ideal process to 1024 took %d gens (ok=%v), want 10", gens, ok)
	}
	if g, ok := gw.GenerationsToReach(1, 100, rngutil.New(1)); !ok || g != 0 {
		t.Fatalf("target 1 should need 0 generations, got %d", g)
	}
	// Impossible within budget.
	_, ok = GaltonWatson{SuccessProb: 0.01}.GenerationsToReach(1<<30, 3, rngutil.New(1))
	if ok {
		t.Fatal("unreachable target reported ok")
	}
}

// Lemma 2: simulated FWL concentrates near ⌈log2(1+N)/log2(μ)⌉.
func TestLemma2MatchesSimulation(t *testing.T) {
	for _, p := range []float64{1, 0.8, 0.5} {
		gw := GaltonWatson{SuccessProb: p}
		n := 1023
		want := Lemma2FWL(n, gw.Mu())
		var acc stats.Running
		rng := rngutil.New(13)
		for trial := 0; trial < 300; trial++ {
			gens, ok := gw.GenerationsToReach(n+1, 1000, rng.Sub(uint64(trial)))
			if !ok {
				t.Fatalf("p=%v: simulation did not finish", p)
			}
			acc.Add(float64(gens))
		}
		if math.Abs(acc.Mean()-float64(want)) > 2.5 {
			t.Fatalf("p=%v: simulated FWL %.2f vs Lemma 2 %d", p, acc.Mean(), want)
		}
	}
}

func TestLemma2FWLValues(t *testing.T) {
	// Ideal links: μ=2, so FWL = ⌈log2(1+N)⌉.
	cases := []struct{ n, want int }{
		{1, 1}, {3, 2}, {7, 3}, {255, 8}, {256, 9}, {1023, 10}, {1024, 11},
	}
	for _, c := range cases {
		if got := Lemma2FWL(c.n, 2); got != c.want {
			t.Fatalf("Lemma2FWL(%d, 2) = %d, want %d", c.n, got, c.want)
		}
		if got := FWLFloor(c.n); got != c.want {
			t.Fatalf("FWLFloor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	// Lossier links need more waitings.
	if Lemma2FWL(1023, 1.5) <= Lemma2FWL(1023, 2) {
		t.Fatal("FWL should grow as mu shrinks")
	}
}

func TestLemma2Panics(t *testing.T) {
	cases := []func(){
		func() { Lemma2FWL(0, 2) },
		func() { Lemma2FWL(10, 1) },
		func() { Lemma2FWL(10, 0.5) },
		func() { FWLFloor(0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestExpiredTime(t *testing.T) {
	// Packet p injected at compact slot p expires m slots later.
	n := 1024 // m = 11
	if got := ExpiredTime(0, n); got != 11 {
		t.Fatalf("ExpiredTime(0) = %d", got)
	}
	if got := ExpiredTime(5, n); got != 16 {
		t.Fatalf("ExpiredTime(5) = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative packet index did not panic")
		}
	}()
	ExpiredTime(-1, n)
}

// Property: Lemma2FWL is non-increasing in mu and non-decreasing in N.
func TestQuickLemma2Monotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := rngutil.New(seed)
		n := 1 + r.Intn(100000)
		mu1 := 1.01 + 0.98*r.Float64()
		mu2 := 1.01 + 0.98*r.Float64()
		if mu1 > mu2 {
			mu1, mu2 = mu2, mu1
		}
		if Lemma2FWL(n, mu1) < Lemma2FWL(n, mu2) {
			return false
		}
		return Lemma2FWL(n+1+r.Intn(1000), mu1) >= Lemma2FWL(n, mu1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSamplePath(b *testing.B) {
	gw := GaltonWatson{SuccessProb: 0.7}
	rng := rngutil.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = gw.SamplePath(15, 1<<16, rng)
	}
}

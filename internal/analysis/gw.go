// Package analysis implements the paper's theory: the Galton-Watson view of
// single-packet flooding (Lemma 1 and 2), the flooding-delay-limit formulas
// for multi-packet flooding (Theorem 1, Theorem 2, Table I, Corollary 1),
// the expired-time rule used by Algorithm 1, and the k-class link-loss
// growth analysis of Section IV-B whose characteristic root yields the
// "Predicted Lower Bound" of Fig. 7 and Fig. 10.
//
// Everything in this package is pure math over the model of Section III —
// no simulator dependencies — so the simulation packages can be validated
// against it.
package analysis

import (
	"fmt"
	"math"

	"ldcflood/internal/rngutil"
)

// GaltonWatson models the per-compact-slot growth of the set of nodes
// holding a packet: each holder "reproduces" itself and, with probability
// SuccessProb (the link success rate), infects one new node. The offspring
// count is therefore 1 + Bernoulli(SuccessProb), giving mean
// μ = 1 + SuccessProb ∈ (1, 2] exactly as required below Eq. (3).
type GaltonWatson struct {
	// SuccessProb is the per-slot probability that a holder's transmission
	// succeeds; 1 corresponds to the paper's ideal network (μ = 2).
	SuccessProb float64
}

// NewGaltonWatson validates and constructs the process. SuccessProb must be
// in (0, 1].
func NewGaltonWatson(successProb float64) (GaltonWatson, error) {
	if successProb <= 0 || successProb > 1 || math.IsNaN(successProb) {
		return GaltonWatson{}, fmt.Errorf("analysis: success probability %v outside (0,1]", successProb)
	}
	return GaltonWatson{SuccessProb: successProb}, nil
}

// Mu returns μ = E[offspring] = 1 + SuccessProb.
func (gw GaltonWatson) Mu() float64 { return 1 + gw.SuccessProb }

// OffspringVariance returns σ² = Var[offspring] = p(1-p).
func (gw GaltonWatson) OffspringVariance() float64 {
	p := gw.SuccessProb
	return p * (1 - p)
}

// LimitVariance returns Var[X] = σ²/(μ²-μ) for the almost-sure limit X of
// X(c)/μ^c (Lemma 1). E[X] = 1 always.
func (gw GaltonWatson) LimitVariance() float64 {
	mu := gw.Mu()
	return gw.OffspringVariance() / (mu*mu - mu)
}

// ChebyshevTail returns the paper's Chebyshev bound
// Pr{X > α·E[X]} < σ²/((α-1)²(μ²-μ)) for α > 1; it panics for α <= 1.
func (gw GaltonWatson) ChebyshevTail(alpha float64) float64 {
	if alpha <= 1 {
		panic("analysis: ChebyshevTail needs alpha > 1")
	}
	return gw.LimitVariance() / ((alpha - 1) * (alpha - 1))
}

// SamplePath simulates generations of the process starting from one holder
// and returns the population sizes X(0)=1, X(1), ..., X(generations).
// Population growth is capped at cap to bound memory (use cap <= 0 for the
// uncapped process — beware exponential growth).
func (gw GaltonWatson) SamplePath(generations int, cap int, rng *rngutil.Stream) []int {
	if generations < 0 {
		panic("analysis: negative generations")
	}
	path := make([]int, generations+1)
	pop := 1
	path[0] = pop
	for g := 1; g <= generations; g++ {
		next := pop
		for i := 0; i < pop; i++ {
			if rng.Bool(gw.SuccessProb) {
				next++
			}
		}
		if cap > 0 && next > cap {
			next = cap
		}
		pop = next
		path[g] = pop
	}
	return path
}

// GenerationsToReach simulates the process until the population reaches
// target and returns the number of generations taken (the simulated FWL of
// a single packet flooded to target-1 other nodes). maxGenerations bounds
// the simulation; ok is false if the target was not reached in time.
func (gw GaltonWatson) GenerationsToReach(target, maxGenerations int, rng *rngutil.Stream) (gens int, ok bool) {
	if target <= 1 {
		return 0, true
	}
	pop := 1
	for g := 1; g <= maxGenerations; g++ {
		next := pop
		for i := 0; i < pop && next < target; i++ {
			if rng.Bool(gw.SuccessProb) {
				next++
			}
		}
		pop = next
		if pop >= target {
			return g, true
		}
	}
	return maxGenerations, false
}

// Lemma2FWL returns E[FWL] = ⌈log2(1+N) / log2(μ)⌉ (Lemma 2): the expected
// number of compact-time waitings for one packet to cover a network of N
// sensors when the per-slot growth factor is μ. It panics for N < 1 or
// μ <= 1 (subcritical processes never cover the network).
func Lemma2FWL(n int, mu float64) int {
	if n < 1 {
		panic("analysis: Lemma2FWL needs N >= 1")
	}
	if mu <= 1 || math.IsNaN(mu) {
		panic("analysis: Lemma2FWL needs mu > 1")
	}
	return int(math.Ceil(math.Log2(float64(1+n)) / math.Log2(mu)))
}

// FWLFloor returns the with-high-probability floor ⌈log2(1+N)⌉ of Eq. (6):
// no flooding strategy finishes a packet in fewer compact waitings.
func FWLFloor(n int) int {
	if n < 1 {
		panic("analysis: FWLFloor needs N >= 1")
	}
	return int(math.Ceil(math.Log2(float64(1 + n))))
}

// M returns m = ⌈log2(1+N)⌉, the quantity the paper calls m throughout
// Section IV; identical to FWLFloor and provided under the paper's name.
func M(n int) int { return FWLFloor(n) }

// ExpiredTime returns the compact-time slot at which packet p expires under
// Algorithm 1's rule: Kp + ⌈log2(N+1)⌉ with Kp = p packets injected before
// p. After this time the packet has reached the whole network (under the
// theorem's assumptions) and must not be forwarded again.
func ExpiredTime(p, n int) int {
	if p < 0 {
		panic("analysis: negative packet index")
	}
	return p + FWLFloor(n)
}

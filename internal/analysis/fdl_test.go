package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"ldcflood/internal/rngutil"
)

func TestWaitingsSmallM(t *testing.T) {
	// N=1024 → m=11. M=5 < m: Wp = m + p.
	w := Waitings(1024, 5)
	for p, got := range w {
		if want := 11 + p; got != want {
			t.Fatalf("W_%d = %d, want %d", p, got, want)
		}
	}
}

func TestWaitingsLargeM(t *testing.T) {
	// N=1024 → m=11. M=20 >= m: Wp saturates at m+(m-1)=21.
	w := Waitings(1024, 20)
	for p, got := range w {
		want := 11 + p
		if want > 21 {
			want = 21
		}
		if got != want {
			t.Fatalf("W_%d = %d, want %d", p, got, want)
		}
	}
	if w[19] != 21 {
		t.Fatalf("last waiting = %d, want m+(m-1)=21 (Table I)", w[19])
	}
}

func TestWaitingsPanics(t *testing.T) {
	for i, f := range []func(){
		func() { Waitings(0, 5) },
		func() { Waitings(5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestFWLMulti(t *testing.T) {
	// Proof of Theorem 1 (M < m): FWL = m + 2M - 2.
	n, m2 := 1024, 5 // m = 11
	if got, want := FWLMulti(n, m2), 11+2*5-2; got != want {
		t.Fatalf("FWLMulti = %d, want %d", got, want)
	}
	// M >= m: FWL = (M-1) + m + (m-1) = 2m + M - 2.
	if got, want := FWLMulti(1024, 20), 2*11+20-2; got != want {
		t.Fatalf("FWLMulti = %d, want %d", got, want)
	}
}

func TestFDLTheorem1Values(t *testing.T) {
	// Hand-checked against Fig. 5: N=1024, T=5, M=20 → 5(11+10-1) = 100.
	if got := FDLTheorem1(1024, 20, 5); got != 100 {
		t.Fatalf("FDL(N=1024,M=20,T=5) = %v, want 100", got)
	}
	// N=4096 → m=13: 5(13+10-1) = 110.
	if got := FDLTheorem1(4096, 20, 5); got != 110 {
		t.Fatalf("FDL(N=4096,M=20,T=5) = %v, want 110", got)
	}
	// N=256 → m=9: 5(9+10-1) = 90.
	if got := FDLTheorem1(256, 20, 5); got != 90 {
		t.Fatalf("FDL(N=256,M=20,T=5) = %v, want 90", got)
	}
	// Right panel of Fig. 5: duty 10% → T=10: 10(11+10-1) = 200.
	if got := FDLTheorem1(1024, 20, 10); got != 200 {
		t.Fatalf("FDL(N=1024,M=20,T=10) = %v, want 200", got)
	}
	// Small-M branch: N=1024, M=5 < 11, T=5 → 5(5.5+4) = 47.5.
	if got := FDLTheorem1(1024, 5, 5); got != 47.5 {
		t.Fatalf("FDL(N=1024,M=5,T=5) = %v, want 47.5", got)
	}
}

func TestFDLTheorem1Knee(t *testing.T) {
	// Slope is T per extra packet before the knee, T/2 after (Fig. 5).
	n, T := 1024, 5
	m := KneePoint(n)
	before := FDLTheorem1(n, m-2, T) - FDLTheorem1(n, m-3, T)
	after := FDLTheorem1(n, m+3, T) - FDLTheorem1(n, m+2, T)
	if before != float64(T) {
		t.Fatalf("pre-knee slope = %v, want %v", before, float64(T))
	}
	if after != float64(T)/2 {
		t.Fatalf("post-knee slope = %v, want %v", after, float64(T)/2)
	}
}

func TestFDLContinuousAtKnee(t *testing.T) {
	// The two branches of Theorem 1 agree at M = m.
	for _, n := range []int{256, 1024, 4096, 300} {
		m := KneePoint(n)
		small := float64(5) * (float64(m)/2 + float64(m) - 1) // M=m with branch-1 formula
		large := FDLTheorem1(n, m, 5)
		if math.Abs(small-large) > 1e-9 {
			t.Fatalf("N=%d: knee discontinuity %v vs %v", n, small, large)
		}
	}
}

func TestFDLMax(t *testing.T) {
	// FDLMax = T * FWL >= E[FDL]; ratio approaches 2 for large M.
	n, T := 1024, 5
	for _, m2 := range []int{1, 5, 11, 50, 200} {
		maxV := FDLMax(n, m2, T)
		avg := FDLTheorem1(n, m2, T)
		if maxV < avg {
			t.Fatalf("M=%d: max %v < mean %v", m2, maxV, avg)
		}
		if maxV > 2.2*avg+float64(3*T) {
			t.Fatalf("M=%d: max %v too far above mean %v", m2, maxV, avg)
		}
	}
}

func TestFDLTheorem2Bounds(t *testing.T) {
	for _, n := range []int{256, 1024, 300} {
		for m2 := 1; m2 <= 25; m2++ {
			b := FDLTheorem2(n, m2, 5)
			t1 := FDLTheorem1(n, m2, 5)
			if b.Lower != t1 {
				t.Fatalf("N=%d M=%d: lower bound %v != Theorem 1 %v", n, m2, b.Lower, t1)
			}
			if b.Upper < b.Lower {
				t.Fatalf("N=%d M=%d: inverted bounds %+v", n, m2, b)
			}
		}
	}
}

func TestFDLTheorem2UpperFormulas(t *testing.T) {
	// N=256 (m=9), M=4 < m: upper = 5(9 + 6 - 1.5) = 67.5.
	if got := FDLTheorem2(256, 4, 5).Upper; got != 67.5 {
		t.Fatalf("upper = %v, want 67.5", got)
	}
	// N=256, M=20 >= m: upper = 5(18 + 10 - 1) = 135.
	if got := FDLTheorem2(256, 20, 5).Upper; got != 135 {
		t.Fatalf("upper = %v, want 135", got)
	}
}

func TestTheoremPanics(t *testing.T) {
	cases := []func(){
		func() { FDLTheorem1(0, 1, 1) },
		func() { FDLTheorem1(1, 0, 1) },
		func() { FDLTheorem1(1, 1, 0) },
		func() { FDLTheorem2(0, 1, 1) },
		func() { FDLMax(1, 1, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestWaitingDistribution(t *testing.T) {
	d := WaitingDistribution(5)
	if len(d) != 5 {
		t.Fatalf("len = %d", len(d))
	}
	sum := 0.0
	for _, p := range d {
		if p != 0.2 {
			t.Fatalf("non-uniform entry %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("sum = %v", sum)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("T=0 did not panic")
		}
	}()
	WaitingDistribution(0)
}

func TestFDLVariance(t *testing.T) {
	// T=1 (always on): deterministic, zero variance.
	if v := FDLVariance(1024, 10, 1); v != 0 {
		t.Fatalf("T=1 variance = %v", v)
	}
	// Variance grows with T and with FWL (through M).
	v5 := FDLVariance(1024, 10, 5)
	v10 := FDLVariance(1024, 10, 10)
	if v10 <= v5 {
		t.Fatal("variance not growing in T")
	}
	if FDLVariance(1024, 30, 5) <= v5 {
		t.Fatal("variance not growing in M")
	}
	// Exact: FWL × (T²-1)/12.
	want := float64(FWLMulti(1024, 10)) * 24.0 / 12.0
	if v5 != want {
		t.Fatalf("variance = %v, want %v", v5, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad args did not panic")
		}
	}()
	FDLVariance(0, 1, 1)
}

func TestBlockingWindow(t *testing.T) {
	if got := BlockingWindow(1024); got != 10 {
		t.Fatalf("BlockingWindow(1024) = %d, want 10", got)
	}
	if got := BlockingWindow(1); got != 0 {
		t.Fatalf("BlockingWindow(1) = %d, want 0", got)
	}
}

// Property: E[FDL] is non-decreasing in each of N, M, T, and scales
// linearly with T.
func TestQuickFDLMonotoneAndLinearInT(t *testing.T) {
	f := func(seed uint64) bool {
		r := rngutil.New(seed)
		n := 1 + r.Intn(10000)
		m2 := 1 + r.Intn(60)
		T := 1 + r.Intn(60)
		base := FDLTheorem1(n, m2, T)
		if FDLTheorem1(n+1+r.Intn(1000), m2, T) < base {
			return false
		}
		if FDLTheorem1(n, m2+1, T) < base {
			return false
		}
		if FDLTheorem1(n, m2, T+1) < base {
			return false
		}
		// Linearity in T: FDL(2T) = 2·FDL(T).
		return math.Abs(FDLTheorem1(n, m2, 2*T)-2*base) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Theorem 2 brackets Theorem 1 for all valid inputs.
func TestQuickTheorem2Brackets(t *testing.T) {
	f := func(seed uint64) bool {
		r := rngutil.New(seed)
		n := 1 + r.Intn(100000)
		m2 := 1 + r.Intn(100)
		T := 1 + r.Intn(100)
		b := FDLTheorem2(n, m2, T)
		v := FDLTheorem1(n, m2, T)
		return b.Lower <= v && v <= b.Upper
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

package analysis

import (
	"fmt"
	"math"
)

// KClass converts a link quality (packet reception ratio) to the paper's
// k-class value: the expected number of transmissions needed for success,
// k = 1/quality. The paper's Fig. 7 legend uses exactly this mapping
// (80% → 1.25, 70% → ~1.42, 60% → ~1.67, 50% → 2). It panics for a quality
// outside (0, 1].
func KClass(quality float64) float64 {
	if quality <= 0 || quality > 1 || math.IsNaN(quality) {
		panic(fmt.Sprintf("analysis: link quality %v outside (0,1]", quality))
	}
	return 1 / quality
}

// CharacteristicRoot returns the largest real root λ > 1 of the
// characteristic equation of the k-class evolution recurrence Eq. (7)/(8):
//
//	λ^(kT+1) = λ^(kT) + 1
//
// where x = k·T (not necessarily an integer). The left-minus-right function
// g(λ) = λ^(x+1) - λ^x - 1 satisfies g(1) = -1 and is strictly increasing
// for λ >= 1, so a bisection on (1, 2] converges to the unique root. The
// root is the per-original-slot growth factor of the covered-node count.
// It panics for kT <= 0.
func CharacteristicRoot(kT float64) float64 {
	if kT <= 0 || math.IsNaN(kT) {
		panic(fmt.Sprintf("analysis: kT = %v must be positive", kT))
	}
	g := func(l float64) float64 {
		return math.Pow(l, kT)*(l-1) - 1
	}
	lo, hi := 1.0, 2.0
	// g(2) = 2^kT - 1 > 0 for kT > 0, so the root is bracketed.
	for i := 0; i < 200 && hi-lo > 1e-13; i++ {
		mid := (lo + hi) / 2
		if g(mid) > 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}

// PredictedDelay returns the Section IV-B prediction of the flooding delay
// in original time slots for one packet to reach a fraction coverage of the
// 1+N nodes: the covered count grows like λ^t, so
//
//	delay = log(coverage · (1+N)) / log(λ),   λ = CharacteristicRoot(k·T).
//
// This is the curve of Fig. 7 and the "Predicted Lower Bound" of Fig. 10.
// It panics for invalid arguments.
func PredictedDelay(n int, coverage, k float64, t int) float64 {
	if n < 1 {
		panic("analysis: PredictedDelay needs N >= 1")
	}
	if coverage <= 0 || coverage > 1 {
		panic(fmt.Sprintf("analysis: coverage %v outside (0,1]", coverage))
	}
	if k < 1 {
		panic(fmt.Sprintf("analysis: k = %v must be >= 1", k))
	}
	if t < 1 {
		panic("analysis: PredictedDelay needs T >= 1")
	}
	lambda := CharacteristicRoot(k * float64(t))
	target := coverage * float64(1+n)
	if target < 2 {
		return 0
	}
	return math.Log(target) / math.Log(lambda)
}

// EvolutionUpperBound iterates the exact pre-asymptotic inequality of
// Section IV-B,
//
//	X(t+1) <= X(t) + min{ X(max(0, t-kT)), (1+N) - X(max(0, t-kT)) },
//
// from X(0) = 1 and returns the first original-time slot at which the
// bound reaches coverage·(1+N), i.e. the optimistic (upper-bound-evolution)
// completion time. slotsMax caps the iteration; ok is false if coverage was
// not reached within the cap.
func EvolutionUpperBound(n int, coverage, k float64, t int, slotsMax int) (slot int, ok bool) {
	if n < 1 || coverage <= 0 || coverage > 1 || k < 1 || t < 1 {
		panic("analysis: EvolutionUpperBound invalid arguments")
	}
	total := float64(1 + n)
	target := coverage * total
	lag := int(math.Ceil(k * float64(t)))
	hist := []float64{1} // hist[t] = X(t)
	if hist[0] >= target {
		return 0, true
	}
	for tt := 0; tt < slotsMax; tt++ {
		idx := tt - lag
		if idx < 0 {
			idx = 0
		}
		past := hist[idx]
		grow := past
		if rem := total - past; rem < grow {
			grow = rem
		}
		next := hist[tt] + grow
		if next > total {
			next = total
		}
		hist = append(hist, next)
		if next >= target {
			return tt + 1, true
		}
	}
	return slotsMax, false
}

// BlockingBreaksDown reports whether, per the Section IV-B discussion, the
// "limited blocking" conclusion fails for the given parameters: the
// per-packet flooding time T·log_λ(...) exceeds the source's packet
// injection interval so packets pile up without bound. interval is the
// number of original slots between consecutive packet injections at the
// source (1 = back-to-back, the experiments' default).
func BlockingBreaksDown(n int, k float64, t int, interval int) bool {
	if interval < 1 {
		panic("analysis: injection interval must be >= 1")
	}
	// Sustained throughput of the pipeline is one packet per Θ(T) slots in
	// the ideal case (Theorem 1: slope T/2..T per packet). With loss, each
	// packet needs k transmissions per hop, so the steady-state spacing
	// grows to ~k·T/2. When that exceeds the injection interval the queue
	// grows without bound.
	return k*float64(t)/2 > float64(interval)
}

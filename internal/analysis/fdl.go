package analysis

import "fmt"

// Waitings returns Table I: Wp, the number of compact-time waitings the
// last copy of packet p experiences under Algorithm 1, for p = 0..M-1.
// With m = ⌈log2(1+N)⌉:
//
//	M <  m: Wp = m + p
//	M >= m: Wp = m + min(p, m-1)   (the blocking effect saturates)
//
// It panics for invalid N or M.
func Waitings(n, m2 int) []int {
	if n < 1 {
		panic("analysis: Waitings needs N >= 1")
	}
	if m2 < 1 {
		panic("analysis: Waitings needs M >= 1")
	}
	m := FWLFloor(n)
	out := make([]int, m2)
	for p := range out {
		w := p
		if w > m-1 {
			w = m - 1
		}
		out[p] = m + w
	}
	return out
}

// FWLMulti returns the multi-packet Flooding Waiting Limit used in the
// proof of Theorem 1: K_{M-1} + W_{M-1}, the compact-time completion of the
// last packet.
func FWLMulti(n, m2 int) int {
	w := Waitings(n, m2)
	return (m2 - 1) + w[m2-1]
}

// FDLTheorem1 returns E[FDL], the expected multi-packet flooding delay
// limit in original time slots (Theorem 1), for an ideal low-duty-cycle
// network with one source, N sensors, M packets and duty period T:
//
//	M <  m: E[FDL] = T(m/2 + M - 1)
//	M >= m: E[FDL] = T(m + M/2 - 1)
//
// with m = ⌈log2(1+N)⌉. It panics for invalid arguments.
func FDLTheorem1(n, m2, t int) float64 {
	if t < 1 {
		panic(fmt.Sprintf("analysis: period T=%d must be >= 1", t))
	}
	if n < 1 || m2 < 1 {
		panic("analysis: FDLTheorem1 needs N >= 1 and M >= 1")
	}
	m := float64(FWLFloor(n))
	mf, tf := float64(m2), float64(t)
	if m2 < int(m) {
		return tf * (m/2 + mf - 1)
	}
	return tf * (m + mf/2 - 1)
}

// WaitingDistribution returns the per-waiting queueing-delay distribution
// Theorem 1's proof establishes for Algorithm 1's policy: each compact
// waiting costs d_h original slots with P(d_h = k) = 1/T for k = 0..T-1.
// The paper notes this uniformity "does not hold for an arbitrary flooding
// policy". The returned slice has length T and sums to 1.
func WaitingDistribution(t int) []float64 {
	if t < 1 {
		panic("analysis: WaitingDistribution needs T >= 1")
	}
	out := make([]float64, t)
	for i := range out {
		out[i] = 1 / float64(t)
	}
	return out
}

// FDLVariance returns Var[FDL | FWL]: with FWL independent uniform
// waitings on {0..T-1}, the variance is FWL × (T²-1)/12. Together with
// FDLTheorem1 this gives concentration bounds on the realized delay.
func FDLVariance(n, m2, t int) float64 {
	if t < 1 || n < 1 || m2 < 1 {
		panic("analysis: FDLVariance needs N, M, T >= 1")
	}
	fwl := float64(FWLMulti(n, m2))
	tf := float64(t)
	return fwl * (tf*tf - 1) / 12
}

// FDLMax returns the worst-case (rather than expected) delay limit
// T × FWL — the paper notes "there is only a factor 2 difference between
// the average value and the maximum value of FDL".
func FDLMax(n, m2, t int) float64 {
	if t < 1 {
		panic("analysis: FDLMax needs T >= 1")
	}
	return float64(t) * float64(FWLMulti(n, m2))
}

// Bounds is a closed interval for the expected flooding delay limit.
type Bounds struct {
	Lower float64
	Upper float64
}

// FDLTheorem2 returns the lower/upper bounds on E[FDL] for an ideal
// network with arbitrary N (Theorem 2):
//
//	M <  m: [ T(m/2 + M - 1),  T(m + 3M/2 - 3/2) ]
//	M >= m: [ T(m + M/2 - 1),  T(2m + M/2 - 1)   ]
//
// The lower bounds coincide with Theorem 1. Panics for invalid arguments.
func FDLTheorem2(n, m2, t int) Bounds {
	if t < 1 || n < 1 || m2 < 1 {
		panic("analysis: FDLTheorem2 needs N, M, T >= 1")
	}
	m := float64(FWLFloor(n))
	mf, tf := float64(m2), float64(t)
	if m2 < int(m) {
		return Bounds{
			Lower: tf * (m/2 + mf - 1),
			Upper: tf * (m + 1.5*mf - 1.5),
		}
	}
	return Bounds{
		Lower: tf * (m + mf/2 - 1),
		Upper: tf * (2*m + mf/2 - 1),
	}
}

// BlockingWindow returns ⌈log2(1+N)⌉ - 1, the number of immediately
// preceding packets that can delay a given packet (Corollary 1). Beyond
// this window the flooding of multiple packets pipelines.
func BlockingWindow(n int) int {
	return FWLFloor(n) - 1
}

// KneePoint returns the packet count M = m at which the Theorem 1 curve
// changes slope (the knee visible in Fig. 5): below it each extra packet
// costs a full T of delay; above it only T/2.
func KneePoint(n int) int {
	return FWLFloor(n)
}

package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"ldcflood/internal/rngutil"
)

func TestKClass(t *testing.T) {
	cases := []struct{ q, want float64 }{
		{1, 1}, {0.8, 1.25}, {0.5, 2}, {0.25, 4},
	}
	for _, c := range cases {
		if got := KClass(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("KClass(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	for _, q := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("KClass(%v) did not panic", q)
				}
			}()
			KClass(q)
		}()
	}
}

func TestCharacteristicRootSatisfiesEquation(t *testing.T) {
	for _, kT := range []float64{1, 2.5, 5, 10, 28.4, 40, 100} {
		l := CharacteristicRoot(kT)
		if l <= 1 || l > 2 {
			t.Fatalf("kT=%v: root %v outside (1,2]", kT, l)
		}
		resid := math.Pow(l, kT)*(l-1) - 1
		if math.Abs(resid) > 1e-6 {
			t.Fatalf("kT=%v: residual %v at root %v", kT, resid, l)
		}
	}
}

func TestCharacteristicRootKnownValues(t *testing.T) {
	// kT=1: λ² = λ + 1 → golden ratio.
	phi := (1 + math.Sqrt(5)) / 2
	if got := CharacteristicRoot(1); math.Abs(got-phi) > 1e-9 {
		t.Fatalf("root(1) = %v, want golden ratio %v", got, phi)
	}
	// kT→large: root → 1 from above.
	if r := CharacteristicRoot(1000); r > 1.01 {
		t.Fatalf("root(1000) = %v, want ~1", r)
	}
}

func TestCharacteristicRootMonotone(t *testing.T) {
	prev := 3.0
	for _, kT := range []float64{1, 2, 5, 10, 20, 50, 100} {
		r := CharacteristicRoot(kT)
		if r >= prev {
			t.Fatalf("root not decreasing in kT at %v: %v >= %v", kT, r, prev)
		}
		prev = r
	}
}

func TestCharacteristicRootPanics(t *testing.T) {
	for _, kT := range []float64{0, -1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("kT=%v did not panic", kT)
				}
			}()
			CharacteristicRoot(kT)
		}()
	}
}

func TestPredictedDelayShape(t *testing.T) {
	// Fig. 7's qualitative content: delay grows as duty cycle shrinks
	// (T grows) and as link quality drops (k grows).
	n := 298
	dutyToT := func(d float64) int { return int(1/d + 0.5) }
	for _, k := range []float64{1.25, 1.42, 1.67, 2.0} {
		prev := 0.0
		for _, duty := range []float64{0.20, 0.10, 0.05, 0.02} {
			d := PredictedDelay(n, 0.99, k, dutyToT(duty))
			if d <= prev {
				t.Fatalf("k=%v: delay not increasing as duty shrinks (%v then %v)", k, prev, d)
			}
			prev = d
		}
	}
	for _, duty := range []float64{0.20, 0.05, 0.02} {
		T := dutyToT(duty)
		prev := 0.0
		for _, k := range []float64{1.25, 1.42, 1.67, 2.0} {
			d := PredictedDelay(n, 0.99, k, T)
			if d <= prev {
				t.Fatalf("duty=%v: delay not increasing in k", duty)
			}
			prev = d
		}
	}
}

func TestPredictedDelayMagnitude(t *testing.T) {
	// Fig. 7's y-range is ~10..120 slots for N≈300-scale networks over
	// duty 2%..20%, k in [1.25, 2].
	n := 298
	lo := PredictedDelay(n, 0.99, 1.25, 5) // best case plotted
	hi := PredictedDelay(n, 0.99, 2.0, 50) // worst case plotted
	if lo < 5 || lo > 40 {
		t.Fatalf("best-case predicted delay %v outside Fig. 7's plausible band", lo)
	}
	if hi < 60 || hi > 250 {
		t.Fatalf("worst-case predicted delay %v outside Fig. 7's plausible band", hi)
	}
	if hi < 2*lo {
		t.Fatalf("loss amplification too weak: %v vs %v", hi, lo)
	}
}

func TestPredictedDelayEdge(t *testing.T) {
	// Tiny coverage target needs no waiting.
	if got := PredictedDelay(100, 0.01, 1.5, 10); got != 0 {
		t.Fatalf("trivial coverage delay = %v, want 0", got)
	}
}

func TestPredictedDelayPanics(t *testing.T) {
	cases := []func(){
		func() { PredictedDelay(0, 0.99, 1.5, 10) },
		func() { PredictedDelay(10, 0, 1.5, 10) },
		func() { PredictedDelay(10, 1.1, 1.5, 10) },
		func() { PredictedDelay(10, 0.99, 0.5, 10) },
		func() { PredictedDelay(10, 0.99, 1.5, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestEvolutionUpperBound(t *testing.T) {
	// k=1, T=1 gives the Fibonacci recurrence X(t+1) = X(t) + X(t-1),
	// whose growth rate is the golden ratio; covering 1+N=1024 nodes takes
	// ⌈log_φ(1024)⌉ = 15 slots.
	slot, ok := EvolutionUpperBound(1023, 1, 1, 1, 10000)
	if !ok || slot != 15 {
		t.Fatalf("fibonacci evolution = %d (ok=%v), want 15", slot, ok)
	}
	// Larger kT delays coverage.
	s2, ok := EvolutionUpperBound(1023, 1, 2, 10, 100000)
	if !ok || s2 <= slot {
		t.Fatalf("lossy evolution %d should exceed ideal %d", s2, slot)
	}
	// Cap exhaustion reports !ok.
	if _, ok := EvolutionUpperBound(1<<20, 1, 2, 50, 10); ok {
		t.Fatal("tiny cap should not reach coverage")
	}
}

func TestEvolutionMatchesRootAsymptotically(t *testing.T) {
	// The discrete evolution's completion time should be close to the
	// root-based prediction for large networks.
	n := 1 << 16
	k, T := 1.5, 10
	slot, ok := EvolutionUpperBound(n, 0.99, k, T, 1000000)
	if !ok {
		t.Fatal("evolution did not finish")
	}
	pred := PredictedDelay(n, 0.99, k, T)
	ratio := float64(slot) / pred
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("evolution %d vs prediction %.1f (ratio %.2f) diverge", slot, pred, ratio)
	}
}

func TestBlockingBreaksDown(t *testing.T) {
	// Ideal tight network: no breakdown at back-to-back injection only if
	// k·T/2 <= 1.
	if BlockingBreaksDown(1024, 1, 2, 1) {
		t.Fatal("k=1, T=2 should not break down")
	}
	if !BlockingBreaksDown(1024, 2, 20, 1) {
		t.Fatal("k=2, T=20 at interval 1 must break down (Section IV-B)")
	}
	// Slowing the source restores stability.
	if BlockingBreaksDown(1024, 2, 20, 30) {
		t.Fatal("interval 30 should absorb k·T/2 = 20")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("interval 0 did not panic")
		}
	}()
	BlockingBreaksDown(1, 1, 1, 0)
}

// Property: the characteristic root always satisfies its equation and lies
// in (1, 2].
func TestQuickRootValid(t *testing.T) {
	f := func(seed uint64) bool {
		r := rngutil.New(seed)
		kT := 0.1 + 100*r.Float64()
		l := CharacteristicRoot(kT)
		if l <= 1 || l > 2 {
			return false
		}
		return math.Abs(math.Pow(l, kT)*(l-1)-1) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCharacteristicRoot(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = CharacteristicRoot(28.4)
	}
}

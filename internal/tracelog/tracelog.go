// Package tracelog records simulation events as a compact, line-oriented
// text log and reads them back for offline analysis. It implements
// sim.Observer, so attach a Logger via sim.Config.Observer to capture the
// full transmission history of a run:
//
//	var buf bytes.Buffer
//	logger := tracelog.NewLogger(&buf)
//	sim.Run(sim.Config{..., Observer: logger})
//	events, _ := tracelog.Parse(&buf)
//
// The format, one event per line:
//
//	I <t> <packet>                       injection
//	T <t> <from> <to> <packet> <outcome> transmission attempt
//	O <t> <from> <node> <packet>         overheard reception
//	C <t> <packet>                       coverage reached
package tracelog

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ldcflood/internal/sim"
)

// Kind discriminates event types.
type Kind byte

// Event kinds, each also the line tag of the text encoding.
const (
	// KindInject marks a packet's injection at the source node.
	KindInject Kind = 'I'
	// KindTransmit is one transmission attempt with its outcome.
	KindTransmit Kind = 'T'
	// KindOverhear is a reception by a node that already held the packet.
	KindOverhear Kind = 'O'
	// KindCovered marks a packet reaching the coverage target.
	KindCovered Kind = 'C'
)

// Event is one decoded trace record. Fields not applicable to the kind are
// zero (From/To for injections, Outcome for non-transmissions).
type Event struct {
	Kind    Kind
	T       int64
	From    int
	To      int
	Packet  int
	Outcome sim.TxOutcome
}

// Logger streams events to an io.Writer. It implements sim.Observer.
// Errors are latched: the first write error stops further output and is
// reported by Err.
type Logger struct {
	w   *bufio.Writer
	err error
}

// NewLogger returns a Logger writing to w. Call Flush when the run ends.
func NewLogger(w io.Writer) *Logger {
	return &Logger{w: bufio.NewWriter(w)}
}

// Err returns the first write error encountered, if any.
func (l *Logger) Err() error { return l.err }

// Flush drains buffered output and returns any write error.
func (l *Logger) Flush() error {
	if l.err != nil {
		return l.err
	}
	l.err = l.w.Flush()
	return l.err
}

func (l *Logger) printf(format string, args ...interface{}) {
	if l.err != nil {
		return
	}
	_, l.err = fmt.Fprintf(l.w, format, args...)
}

// OnInject implements sim.Observer.
func (l *Logger) OnInject(t int64, packet int) {
	l.printf("I %d %d\n", t, packet)
}

// OnTransmit implements sim.Observer.
func (l *Logger) OnTransmit(t int64, from, to, packet int, outcome sim.TxOutcome) {
	l.printf("T %d %d %d %d %d\n", t, from, to, packet, int(outcome))
}

// OnOverhear implements sim.Observer.
func (l *Logger) OnOverhear(t int64, from, node, packet int) {
	l.printf("O %d %d %d %d\n", t, from, node, packet)
}

// OnCovered implements sim.Observer.
func (l *Logger) OnCovered(t int64, packet int) {
	l.printf("C %d %d\n", t, packet)
}

var _ sim.Observer = (*Logger)(nil)

// Parse decodes a trace written by Logger. Blank lines and lines starting
// with '#' are skipped.
//
// Error contract: a malformed line stops the parse and returns a non-nil
// error of the form
//
//	tracelog: line <n>: <what failed>: <the offending line>
//
// where <n> is the 1-based line number counted over ALL input lines
// (including the skipped blanks and comments, so the number matches what
// an editor shows) and the offending line is quoted verbatim, truncated if
// very long. The returned events are always nil on error — Parse never
// hands back a partial decode, so callers need no cleanup path. An I/O
// failure from r is returned unwrapped (without the line prefix);
// distinguish the two cases by unwrapping, not by string matching.
func Parse(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		ev, err := parseEvent(fields)
		if err != nil {
			quoted := text
			if len(quoted) > 120 {
				quoted = quoted[:120] + "..."
			}
			return nil, fmt.Errorf("tracelog: line %d: %w: %q", line, err, quoted)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseEvent(fields []string) (Event, error) {
	if len(fields) == 0 || len(fields[0]) != 1 {
		return Event{}, fmt.Errorf("bad event tag")
	}
	ints := func(n int) ([]int64, error) {
		if len(fields) != n+1 {
			return nil, fmt.Errorf("want %d fields, got %d", n+1, len(fields))
		}
		out := make([]int64, n)
		for i := 0; i < n; i++ {
			v, err := strconv.ParseInt(fields[i+1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("field %d: %v", i+1, err)
			}
			out[i] = v
		}
		return out, nil
	}
	switch Kind(fields[0][0]) {
	case KindInject:
		v, err := ints(2)
		if err != nil {
			return Event{}, err
		}
		return Event{Kind: KindInject, T: v[0], Packet: int(v[1])}, nil
	case KindTransmit:
		v, err := ints(5)
		if err != nil {
			return Event{}, err
		}
		return Event{
			Kind: KindTransmit, T: v[0],
			From: int(v[1]), To: int(v[2]), Packet: int(v[3]),
			Outcome: sim.TxOutcome(v[4]),
		}, nil
	case KindOverhear:
		v, err := ints(4)
		if err != nil {
			return Event{}, err
		}
		return Event{Kind: KindOverhear, T: v[0], From: int(v[1]), To: int(v[2]), Packet: int(v[3])}, nil
	case KindCovered:
		v, err := ints(2)
		if err != nil {
			return Event{}, err
		}
		return Event{Kind: KindCovered, T: v[0], Packet: int(v[1])}, nil
	default:
		return Event{}, fmt.Errorf("unknown event tag %q", fields[0])
	}
}

// Validate replays a decoded trace against the physical rules of the
// simulator and returns the first inconsistency found, or nil. It checks:
//
//   - events are time-ordered;
//   - injections are sequential (packet p at the p-th injection);
//   - every successful transmission's sender holds the packet and the
//     receiver does not (possession monotonicity);
//   - no node both transmits successfully and receives in the same slot
//     (semi-duplex);
//   - at most one reception per node per slot;
//   - coverage events fire at most once per packet.
//
// Use it to sanity-check traces produced by external tools or mutated by
// post-processing before analyzing them.
func Validate(events []Event) error {
	type nodePacket struct{ node, packet int }
	has := map[nodePacket]bool{}
	covered := map[int]bool{}
	injections := 0
	var prevT int64 = -1 << 62
	var slotT int64
	txThisSlot := map[int]bool{}
	rxThisSlot := map[int]bool{}
	resetSlot := func(t int64) {
		if t != slotT {
			slotT = t
			for k := range txThisSlot {
				delete(txThisSlot, k)
			}
			for k := range rxThisSlot {
				delete(rxThisSlot, k)
			}
		}
	}
	for i, ev := range events {
		if ev.T < prevT {
			return fmt.Errorf("tracelog: event %d out of order (t=%d after %d)", i, ev.T, prevT)
		}
		prevT = ev.T
		resetSlot(ev.T)
		switch ev.Kind {
		case KindInject:
			if ev.Packet != injections {
				return fmt.Errorf("tracelog: event %d injects packet %d, want %d", i, ev.Packet, injections)
			}
			injections++
			has[nodePacket{0, ev.Packet}] = true
		case KindTransmit:
			if ev.Packet >= injections {
				return fmt.Errorf("tracelog: event %d transmits uninjected packet %d", i, ev.Packet)
			}
			if !has[nodePacket{ev.From, ev.Packet}] {
				return fmt.Errorf("tracelog: event %d: node %d transmits packet %d it does not hold", i, ev.From, ev.Packet)
			}
			if ev.Outcome == sim.TxSuccess {
				if has[nodePacket{ev.To, ev.Packet}] {
					return fmt.Errorf("tracelog: event %d: node %d re-receives packet %d", i, ev.To, ev.Packet)
				}
				if rxThisSlot[ev.To] {
					return fmt.Errorf("tracelog: event %d: node %d receives twice in slot %d", i, ev.To, ev.T)
				}
				if txThisSlot[ev.To] {
					return fmt.Errorf("tracelog: event %d: node %d receives while transmitting in slot %d", i, ev.To, ev.T)
				}
				has[nodePacket{ev.To, ev.Packet}] = true
				rxThisSlot[ev.To] = true
			}
			txThisSlot[ev.From] = true
			if rxThisSlot[ev.From] {
				return fmt.Errorf("tracelog: event %d: node %d transmits after receiving in slot %d", i, ev.From, ev.T)
			}
		case KindOverhear:
			if has[nodePacket{ev.To, ev.Packet}] {
				return fmt.Errorf("tracelog: event %d: node %d overhears packet %d it already holds", i, ev.To, ev.Packet)
			}
			if rxThisSlot[ev.To] {
				return fmt.Errorf("tracelog: event %d: node %d overhears after receiving in slot %d", i, ev.To, ev.T)
			}
			has[nodePacket{ev.To, ev.Packet}] = true
			rxThisSlot[ev.To] = true
		case KindCovered:
			if covered[ev.Packet] {
				return fmt.Errorf("tracelog: event %d: packet %d covered twice", i, ev.Packet)
			}
			covered[ev.Packet] = true
		default:
			return fmt.Errorf("tracelog: event %d has unknown kind %q", i, ev.Kind)
		}
	}
	return nil
}

// Stats summarizes a decoded trace.
type Stats struct {
	Events        int
	Injections    int
	Transmissions int
	Outcomes      map[sim.TxOutcome]int
	Overheard     int
	Covered       int
	FirstSlot     int64
	LastSlot      int64
	// PerNodeTx counts transmission attempts by sender id.
	PerNodeTx map[int]int
}

// Summarize aggregates events into Stats.
func Summarize(events []Event) Stats {
	s := Stats{
		Outcomes:  make(map[sim.TxOutcome]int),
		PerNodeTx: make(map[int]int),
		FirstSlot: -1,
	}
	for _, ev := range events {
		s.Events++
		if s.FirstSlot == -1 || ev.T < s.FirstSlot {
			s.FirstSlot = ev.T
		}
		if ev.T > s.LastSlot {
			s.LastSlot = ev.T
		}
		switch ev.Kind {
		case KindInject:
			s.Injections++
		case KindTransmit:
			s.Transmissions++
			s.Outcomes[ev.Outcome]++
			s.PerNodeTx[ev.From]++
		case KindOverhear:
			s.Overheard++
		case KindCovered:
			s.Covered++
		}
	}
	return s
}

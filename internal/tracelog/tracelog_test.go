package tracelog

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"ldcflood/internal/flood"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

func TestRoundTripSyntheticEvents(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	l.OnInject(0, 0)
	l.OnTransmit(1, 2, 3, 0, sim.TxSuccess)
	l.OnTransmit(2, 4, 5, 1, sim.TxCollision)
	l.OnOverhear(3, 2, 7, 0)
	l.OnCovered(9, 0)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Kind != KindInject || events[0].T != 0 || events[0].Packet != 0 {
		t.Fatalf("event 0 = %+v", events[0])
	}
	tx := events[1]
	if tx.Kind != KindTransmit || tx.From != 2 || tx.To != 3 || tx.Outcome != sim.TxSuccess {
		t.Fatalf("event 1 = %+v", tx)
	}
	if events[2].Outcome != sim.TxCollision {
		t.Fatalf("event 2 = %+v", events[2])
	}
	oh := events[3]
	if oh.Kind != KindOverhear || oh.From != 2 || oh.To != 7 {
		t.Fatalf("event 3 = %+v", oh)
	}
	if events[4].Kind != KindCovered || events[4].T != 9 {
		t.Fatalf("event 4 = %+v", events[4])
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []string{
		"X 1 2\n",
		"T 1 2\n",
		"I one 2\n",
		"T 1 2 3 4\n",
		"O 1 2 3\n",
		"C 1\n",
		"TT 1 2\n",
	}
	for i, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted: %q", i, c)
		}
	}
}

// TestParseErrorMessages pins down the error contract: malformed input
// yields an error naming the 1-based line number and the specific defect,
// so a corrupt multi-megabyte trace is debuggable from the message alone.
func TestParseErrorMessages(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want []string // substrings the error must contain
	}{
		{
			name: "truncated transmission",
			in:   "I 0 0\nT 4 1 2 0\n",
			want: []string{"line 2", "want 6 fields, got 5", `"T 4 1 2 0"`},
		},
		{
			name: "unknown kind byte",
			in:   "I 0 0\nC 9 0\nZ 1 2\n",
			want: []string{"line 3", `unknown event tag "Z"`},
		},
		{
			name: "non-numeric field",
			in:   "I zero 0\n",
			want: []string{"line 1", "field 1", "invalid syntax"},
		},
		{
			name: "multi-byte tag",
			in:   "IC 0 0\n",
			want: []string{"line 1", "bad event tag"},
		},
		{
			name: "line number counts comments and blanks",
			in:   "# header\n\nI 0 0\nT bad\n",
			want: []string{"line 4"},
		},
		{
			name: "overflowing slot number",
			in:   "I 99999999999999999999999999 0\n",
			want: []string{"line 1", "value out of range"},
		},
		{
			name: "very long offending line is truncated in the message",
			in:   "X " + strings.Repeat("9 ", 200) + "\n",
			want: []string{"line 1", `unknown event tag "X"`, "..."},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("Parse accepted %q", tc.in)
			}
			for _, sub := range tc.want {
				if !strings.Contains(err.Error(), sub) {
					t.Errorf("error %q does not mention %q", err, sub)
				}
			}
		})
	}
}

// errReader fails after yielding its prefix, exercising Parse's
// scanner-error path (as opposed to its malformed-line path).
type errReader struct {
	prefix string
	err    error
	done   bool
}

func (r *errReader) Read(p []byte) (int, error) {
	if !r.done {
		r.done = true
		return copy(p, r.prefix), nil
	}
	return 0, r.err
}

func TestParseReaderError(t *testing.T) {
	want := errors.New("disk on fire")
	_, err := Parse(&errReader{prefix: "I 0 0\n", err: want})
	if !errors.Is(err, want) {
		t.Fatalf("Parse error = %v, want %v", err, want)
	}
}

// TestParseStopsAtFirstBadLine checks no partial slice escapes alongside
// an error: a trace is either fully decoded or rejected.
func TestParseStopsAtFirstBadLine(t *testing.T) {
	events, err := Parse(strings.NewReader("I 0 0\nbogus\nC 9 0\n"))
	if err == nil {
		t.Fatal("Parse accepted a bogus line")
	}
	if events != nil {
		t.Fatalf("Parse returned %d events alongside the error", len(events))
	}
}

func TestParseSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nI 0 0\n  \nC 5 0\n"
	events, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
}

func TestLoggerAgainstRealSimulation(t *testing.T) {
	g := topology.GreenOrbs(3)
	p, err := flood.New("dbao")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	logger := NewLogger(&buf)
	res, err := sim.Run(sim.Config{
		Graph:     g,
		Schedules: schedule.AssignUniform(g.N(), 10, rngutil.New(5).SubName("schedule")),
		Protocol:  p,
		M:         5,
		Coverage:  0.99,
		Seed:      5,
		Observer:  logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := logger.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(events)
	// The trace must agree with the engine's own accounting.
	if s.Injections != res.M {
		t.Fatalf("injections %d vs M %d", s.Injections, res.M)
	}
	if s.Transmissions != res.Transmissions {
		t.Fatalf("trace tx %d vs engine %d", s.Transmissions, res.Transmissions)
	}
	if s.Overheard != res.Overheard {
		t.Fatalf("trace overheard %d vs engine %d", s.Overheard, res.Overheard)
	}
	if s.Covered != res.M {
		t.Fatalf("covered %d vs %d", s.Covered, res.M)
	}
	fails := s.Outcomes[sim.TxLoss] + s.Outcomes[sim.TxCollision] + s.Outcomes[sim.TxBusy] + s.Outcomes[sim.TxRedundant]
	if fails != res.Failures() {
		t.Fatalf("trace failures %d vs engine %d", fails, res.Failures())
	}
	if s.Outcomes[sim.TxSuccess] == 0 {
		t.Fatal("no successful transmissions in trace")
	}
	// Per-node counts mirror the engine's TxPerNode.
	for node, count := range s.PerNodeTx {
		if res.TxPerNode[node] != count {
			t.Fatalf("node %d: trace %d vs engine %d", node, count, res.TxPerNode[node])
		}
	}
	if s.FirstSlot != 0 || s.LastSlot <= 0 || s.LastSlot >= res.TotalSlots {
		t.Fatalf("slot range [%d, %d] vs total %d", s.FirstSlot, s.LastSlot, res.TotalSlots)
	}
}

func TestValidateAcceptsRealTraces(t *testing.T) {
	g := topology.GreenOrbs(2)
	for _, name := range []string{"opt", "dbao", "of"} {
		p, err := flood.New(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		logger := NewLogger(&buf)
		if _, err := sim.Run(sim.Config{
			Graph:     g,
			Schedules: schedule.AssignUniform(g.N(), 10, rngutil.New(9).SubName("schedule")),
			Protocol:  p,
			M:         4,
			Coverage:  0.99,
			Seed:      9,
			Observer:  logger,
		}); err != nil {
			t.Fatal(err)
		}
		if err := logger.Flush(); err != nil {
			t.Fatal(err)
		}
		events, err := Parse(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(events); err != nil {
			t.Fatalf("%s trace invalid: %v", name, err)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	mk := func() []Event {
		return []Event{
			{Kind: KindInject, T: 0, Packet: 0},
			{Kind: KindTransmit, T: 1, From: 0, To: 1, Packet: 0, Outcome: sim.TxSuccess},
			{Kind: KindTransmit, T: 2, From: 1, To: 2, Packet: 0, Outcome: sim.TxSuccess},
			{Kind: KindCovered, T: 2, Packet: 0},
		}
	}
	if err := Validate(mk()); err != nil {
		t.Fatalf("clean trace rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func([]Event) []Event
	}{
		{"out of order", func(e []Event) []Event { e[2].T = 0; return e }},
		{"wrong injection order", func(e []Event) []Event { e[0].Packet = 1; return e }},
		{"sender lacks packet", func(e []Event) []Event { e[1].From = 2; return e }},
		{"double reception", func(e []Event) []Event { e[2].To = 1; return e }},
		{"uninjected packet", func(e []Event) []Event { e[1].Packet = 3; return e }},
		{"double coverage", func(e []Event) []Event { return append(e, Event{Kind: KindCovered, T: 3, Packet: 0}) }},
		{"overhear already held", func(e []Event) []Event {
			return append(e, Event{Kind: KindOverhear, T: 3, From: 0, To: 1, Packet: 0})
		}},
		{"transmit and receive same slot", func(e []Event) []Event {
			e[2].T = 1
			e[2].From = 1
			e[3].T = 1
			return e
		}},
	}
	for _, c := range cases {
		if err := Validate(c.mutate(mk())); err == nil {
			t.Fatalf("%s not detected", c.name)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Events != 0 || s.FirstSlot != -1 {
		t.Fatalf("empty summary: %+v", s)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	return 0, &writeError{}
}

type writeError struct{}

func (*writeError) Error() string { return "synthetic write failure" }

func TestLoggerLatchesWriteError(t *testing.T) {
	l := NewLogger(&failWriter{})
	// Fill the bufio buffer to force the underlying write to happen.
	for i := 0; i < 10000; i++ {
		l.OnInject(int64(i), i)
	}
	if l.Flush() == nil {
		t.Fatal("write error not surfaced")
	}
	if l.Err() == nil {
		t.Fatal("Err not latched")
	}
}

func TestOutcomeString(t *testing.T) {
	for _, o := range []sim.TxOutcome{sim.TxSuccess, sim.TxLoss, sim.TxCollision, sim.TxBusy, sim.TxRedundant} {
		if o.String() == "" || strings.HasPrefix(o.String(), "outcome(") {
			t.Fatalf("bad name for %d", int(o))
		}
	}
	if sim.TxOutcome(99).String() != "outcome(99)" {
		t.Fatal("unknown outcome should render numerically")
	}
}

package tracelog

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse asserts the trace parser never panics and that accepted traces
// survive a write/parse round trip with the same event count.
func FuzzParse(f *testing.F) {
	f.Add("I 0 0\nT 1 2 3 0 0\nO 3 2 7 0\nC 9 0\n")
	f.Add("# comment\n\nI 5 1\n")
	f.Add("T 1 2 3 4\n")
	f.Add("Z 1 2\n")
	f.Add("T -1 -2 -3 -4 -5\n")
	f.Fuzz(func(t *testing.T, input string) {
		events, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		l := NewLogger(&buf)
		for _, ev := range events {
			switch ev.Kind {
			case KindInject:
				l.OnInject(ev.T, ev.Packet)
			case KindTransmit:
				l.OnTransmit(ev.T, ev.From, ev.To, ev.Packet, ev.Outcome)
			case KindOverhear:
				l.OnOverhear(ev.T, ev.From, ev.To, ev.Packet)
			case KindCovered:
				l.OnCovered(ev.T, ev.Packet)
			}
		}
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back) != len(events) {
			t.Fatalf("round trip changed event count: %d vs %d", len(back), len(events))
		}
		for i := range back {
			if back[i] != events[i] {
				t.Fatalf("event %d changed: %+v vs %+v", i, back[i], events[i])
			}
		}
	})
}

package optimize

import (
	"errors"
	"math"
	"testing"

	"ldcflood/internal/metrics"
)

// syntheticDelay has a floor plus a super-linear duty blow-up, giving an
// interior gain peak.
func syntheticDelay(duty float64) (float64, error) {
	return 2000 + 100/(duty*duty), nil
}

func TestMaximizeFindsInteriorPeak(t *testing.T) {
	res, err := Maximize(Config{TxPerSecond: 0.1}, syntheticDelay)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Duty <= 0.006 || res.Best.Duty >= 0.9 {
		t.Fatalf("peak at boundary: %+v", res.Best)
	}
	// The best point must beat every coarse sample.
	for _, p := range res.Curve {
		if !math.IsNaN(p.Gain) && p.Gain > res.Best.Gain+1e-9 {
			t.Fatalf("curve point %+v beats reported best %+v", p, res.Best)
		}
	}
	if res.Best.Period < 1 || res.Best.Delay <= 0 || res.Best.Lifetime <= 0 {
		t.Fatalf("degenerate best: %+v", res.Best)
	}
}

func TestMaximizeCurveSortedAndSized(t *testing.T) {
	res, err := Maximize(Config{Samples: 10, Refinements: 5}, syntheticDelay)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) != 10 {
		t.Fatalf("curve size %d", len(res.Curve))
	}
	for i := 1; i < len(res.Curve); i++ {
		if res.Curve[i].Duty <= res.Curve[i-1].Duty {
			t.Fatal("curve not sorted by duty")
		}
	}
}

func TestMaximizeMonotoneDelayPushesHighDuty(t *testing.T) {
	// If delay is flat, lifetime dominates and the lowest duty wins.
	flat := func(duty float64) (float64, error) { return 1000, nil }
	res, err := Maximize(Config{}, flat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Duty > 0.01 {
		t.Fatalf("flat delay should favor minimum duty, got %v", res.Best.Duty)
	}
}

func TestMaximizeErrors(t *testing.T) {
	if _, err := Maximize(Config{}, nil); err == nil {
		t.Fatal("nil delay accepted")
	}
	if _, err := Maximize(Config{MinDuty: 0.5, MaxDuty: 0.1}, syntheticDelay); err == nil {
		t.Fatal("inverted bracket accepted")
	}
	if _, err := Maximize(Config{TxPerSecond: -1}, syntheticDelay); err == nil {
		t.Fatal("negative tx rate accepted")
	}
	boom := errors.New("boom")
	failing := func(duty float64) (float64, error) { return 0, boom }
	if _, err := Maximize(Config{}, failing); !errors.Is(err, boom) {
		t.Fatalf("delay error not propagated: %v", err)
	}
}

func TestAnalyticDelayValidation(t *testing.T) {
	cases := []struct {
		n       int
		quality float64
		cov     float64
		m       int
	}{
		{0, 0.8, 0.99, 10},
		{10, 0, 0.99, 10},
		{10, 1.5, 0.99, 10},
		{10, 0.8, 0, 10},
		{10, 0.8, 0.99, 0},
	}
	for i, c := range cases {
		if _, err := AnalyticDelay(c.n, c.quality, c.cov, c.m); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestAnalyticDelayShape(t *testing.T) {
	d, err := AnalyticDelay(298, 0.85, 0.99, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Decreasing in duty.
	prev := math.Inf(1)
	for _, duty := range []float64{0.02, 0.05, 0.10, 0.20, 0.50} {
		v, err := d(duty)
		if err != nil {
			t.Fatal(err)
		}
		if v <= 0 || v >= prev {
			t.Fatalf("delay not decreasing in duty: %v at %v (prev %v)", v, duty, prev)
		}
		prev = v
	}
	if _, err := d(0); err == nil {
		t.Fatal("duty 0 accepted")
	}
	// More packets mean more queueing delay.
	d1, _ := AnalyticDelay(298, 0.85, 0.99, 1)
	d50, _ := AnalyticDelay(298, 0.85, 0.99, 50)
	v1, _ := d1(0.05)
	v50, _ := d50(0.05)
	if v50 <= v1 {
		t.Fatalf("M=50 delay %v should exceed M=1 delay %v", v50, v1)
	}
}

func TestEndToEndAnalyticOptimum(t *testing.T) {
	// With the analytic (contention-free) delay model, delay grows ~T while
	// radio-on lifetime grows ~1/duty, so the networking gain only turns
	// over once the sleep-power floor caps the lifetime — the optimum is
	// interior over a wide bracket, and far from always-on.
	d, err := AnalyticDelay(298, 0.85, 0.99, 100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Maximize(Config{TxPerSecond: 0.05, MinDuty: 1e-6, MaxDuty: 1}, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Duty < 2e-6 || res.Best.Duty > 0.5 {
		t.Fatalf("optimum at boundary: %+v", res.Best)
	}
	t.Logf("analytic optimum: duty %.4f%% (period %d), delay %.0f slots, lifetime %.0f days, gain %.0f",
		res.Best.Duty*100, res.Best.Period, res.Best.Delay, res.Best.Lifetime/86400, res.Best.Gain)
}

func TestMinDutyForDelayBudget(t *testing.T) {
	d, err := AnalyticDelay(298, 0.85, 0.99, 20)
	if err != nil {
		t.Fatal(err)
	}
	budget := 200.0
	p, err := MinDutyForDelayBudget(Config{TxPerSecond: 0.05}, d, budget)
	if err != nil {
		t.Fatal(err)
	}
	if p.Delay > budget {
		t.Fatalf("returned duty %v violates budget: delay %v", p.Duty, p.Delay)
	}
	// A slightly lower duty must violate the budget (minimality), unless
	// we're pinned at the bracket minimum.
	if p.Duty > 0.0051 {
		v, err := d(p.Duty * 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if v <= budget {
			t.Fatalf("duty %v not minimal: %v also meets budget %v", p.Duty, p.Duty*0.9, budget)
		}
	}
	// Unreachable budget errors.
	if _, err := MinDutyForDelayBudget(Config{}, d, 1); err == nil {
		t.Fatal("impossible budget accepted")
	}
	// Trivial budget returns the bracket minimum.
	p2, err := MinDutyForDelayBudget(Config{MinDuty: 0.01}, d, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Duty != 0.01 {
		t.Fatalf("trivial budget should pin to MinDuty, got %v", p2.Duty)
	}
}

func TestMinDutyForDelayBudgetErrors(t *testing.T) {
	if _, err := MinDutyForDelayBudget(Config{}, nil, 10); err == nil {
		t.Fatal("nil delay accepted")
	}
	d, _ := AnalyticDelay(298, 0.85, 0.99, 20)
	if _, err := MinDutyForDelayBudget(Config{}, d, 0); err == nil {
		t.Fatal("zero budget accepted")
	}
	boom := errors.New("boom")
	failing := func(duty float64) (float64, error) { return 0, boom }
	if _, err := MinDutyForDelayBudget(Config{}, failing, 10); !errors.Is(err, boom) {
		t.Fatalf("delay error not propagated: %v", err)
	}
}

func BenchmarkMaximizeAnalytic(b *testing.B) {
	d, err := AnalyticDelay(298, 0.85, 0.99, 100)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Maximize(Config{TxPerSecond: 0.05}, d); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMaximizeUsesCustomEnergyModel(t *testing.T) {
	small := metrics.EnergyModel{
		BatteryJoules: 1000, ActiveWatts: 0.1, SleepWatts: 1e-6,
		TxJoules: 1e-4, SlotSeconds: 0.01,
	}
	res, err := Maximize(Config{Energy: small}, syntheticDelay)
	if err != nil {
		t.Fatal(err)
	}
	big := metrics.DefaultEnergyModel()
	res2, err := Maximize(Config{Energy: big}, syntheticDelay)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Lifetime >= res2.Best.Lifetime {
		t.Fatal("smaller battery should shorten best lifetime")
	}
}
